// Soundness of the exact-synthesis symmetry breaking: none of the search-
// space reductions (operand ordering, all-gates-used, step ordering, polarity
// normalization) may change the computed minimum -- they must only prune
// redundant parts of the space.  Each option combination is checked against
// the all-options-off reference on a set of 3-variable functions (where the
// unpruned search is still fast).

#include <gtest/gtest.h>

#include "exact/exact_synthesis.hpp"
#include "npn/npn.hpp"

namespace mighty::exact {
namespace {

struct OptionCombo {
  bool operand_ordering;
  bool all_gates_used;
  bool step_ordering;
  bool polarity_normalization;
};

class EncodingOptionsTest : public ::testing::TestWithParam<int> {};

TEST_P(EncodingOptionsTest, OptionsPreserveMinimum) {
  const int mask = GetParam();
  const OptionCombo combo{(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0,
                          (mask & 8) != 0};

  // Reference: completely unpruned encoding; computed once and shared across
  // all option combinations.
  static const std::vector<uint32_t> reference_sizes = [] {
    SynthesisOptions reference;
    reference.encode.operand_ordering = false;
    reference.encode.all_gates_used = false;
    reference.encode.step_ordering = false;
    reference.encode.polarity_normalization = false;
    std::vector<uint32_t> sizes;
    for (const auto& f : npn::enumerate_classes(3)) {
      const auto r = synthesize_minimum_mig(f, reference);
      EXPECT_EQ(r.status, SynthesisStatus::success);
      sizes.push_back(r.chain.size());
    }
    return sizes;
  }();

  SynthesisOptions tested;
  tested.encode.operand_ordering = combo.operand_ordering;
  tested.encode.all_gates_used = combo.all_gates_used;
  tested.encode.step_ordering = combo.step_ordering;
  tested.encode.polarity_normalization = combo.polarity_normalization;

  const auto classes = npn::enumerate_classes(3);
  for (size_t i = 0; i < classes.size(); ++i) {
    const auto& f = classes[i];
    const auto r_test = synthesize_minimum_mig(f, tested);
    ASSERT_EQ(r_test.status, SynthesisStatus::success);
    EXPECT_EQ(r_test.chain.size(), reference_sizes[i])
        << "f=0x" << f.to_hex() << " combo mask " << mask;
    EXPECT_EQ(r_test.chain.simulate(), f);
  }
}

// Each pruning alone, none, and all together (the pairwise interactions are
// covered by the database histogram check against the paper's Table I).
INSTANTIATE_TEST_SUITE_P(KeyCombos, EncodingOptionsTest,
                         ::testing::Values(0, 1, 2, 4, 8, 15));

TEST(EncodingOptionsTest, FourVariableSpotCheckWithFullPruning) {
  // The paper's hardest class S_{0,2} must still come out at 7 gates with
  // every pruning enabled (cross-validated against Table I).
  tt::TruthTable s02(4);
  for (uint32_t m = 0; m < 16; ++m) {
    const int w = __builtin_popcount(m);
    s02.set_bit(m, w == 0 || w == 2);
  }
  const auto r = synthesize_minimum_mig(s02);
  ASSERT_EQ(r.status, SynthesisStatus::success);
  EXPECT_EQ(r.chain.size(), 7u);
}

TEST(EncodingOptionsTest, SmtEncoderHonorsOptionToggles) {
  SynthesisOptions smt;
  smt.encoder = EncoderKind::smt;
  smt.encode.operand_ordering = false;
  const auto xor3 = tt::TruthTable::projection(3, 0) ^ tt::TruthTable::projection(3, 1) ^
                    tt::TruthTable::projection(3, 2);
  const auto r = synthesize_minimum_mig(xor3, smt);
  ASSERT_EQ(r.status, SynthesisStatus::success);
  EXPECT_EQ(r.chain.size(), 3u);
}

}  // namespace
}  // namespace mighty::exact
