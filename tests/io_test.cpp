#include "io/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cec/cec.hpp"
#include "gen/arith.hpp"
#include "mig/simulation.hpp"
#include "test_util.hpp"

namespace mighty::io {
namespace {

TEST(BlifTest, RoundTripPreservesFunction) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    const auto m = testutil::random_mig(5, 40, 4, 100 + seed);
    std::stringstream ss;
    write_blif(ss, m);
    const auto back = read_blif(ss);
    ASSERT_EQ(back.num_pis(), m.num_pis());
    ASSERT_EQ(back.num_pos(), m.num_pos());
    EXPECT_EQ(cec::check_equivalence(m, back).status, cec::CecStatus::equivalent)
        << "seed " << seed;
  }
}

TEST(BlifTest, RoundTripWithConstantsAndComplementedOutputs) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  m.create_po(!m.create_and(a, b));
  m.create_po(m.get_constant(true));
  m.create_po(m.create_or(m.get_constant(false), a));  // collapses to a
  std::stringstream ss;
  write_blif(ss, m);
  const auto back = read_blif(ss);
  EXPECT_EQ(cec::check_equivalence(m, back).status, cec::CecStatus::equivalent);
}

TEST(BlifTest, ReadsForeignBlif) {
  // A hand-written BLIF with a 3-input table and don't-cares.
  const std::string text = R"(
# a comment
.model test
.inputs a b c
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names a g
0 1
.end
)";
  std::stringstream ss(text);
  const auto m = read_blif(ss);
  ASSERT_EQ(m.num_pis(), 3u);
  ASSERT_EQ(m.num_pos(), 2u);
  const auto tts = mig::output_truth_tables(m);
  const auto ta = tt::TruthTable::projection(3, 0);
  const auto tb = tt::TruthTable::projection(3, 1);
  const auto tc = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], (ta & tb) | tc);
  EXPECT_EQ(tts[1], ~ta);
}

TEST(BlifTest, ReadsCrlfLineEndings) {
  // The same model as ReadsForeignBlif, exported with \r\n line endings and
  // a backslash continuation followed by a carriage return — the shape
  // Windows tools produce.
  const std::string text =
      ".model test\r\n"
      ".inputs a \\\r\n"
      "b c\r\n"
      ".outputs f\r\n"
      ".names a b t\r\n"
      "11 1\r\n"
      ".names t c f\r\n"
      "1- 1\r\n"
      "-1 1\r\n"
      ".end\r\n";
  std::stringstream ss(text);
  const auto m = read_blif(ss);
  ASSERT_EQ(m.num_pis(), 3u);
  ASSERT_EQ(m.num_pos(), 1u);
  const auto tts = mig::output_truth_tables(m);
  const auto ta = tt::TruthTable::projection(3, 0);
  const auto tb = tt::TruthTable::projection(3, 1);
  const auto tc = tt::TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], (ta & tb) | tc);
}

TEST(BlifTest, ContinuationDoesNotFuseTokens) {
  // "a\" + newline + "b" lists two signals, not one called "ab"; trailing
  // whitespace after the backslash must not defeat the continuation.
  const std::string text =
      ".model test\n"
      ".inputs a\\ \n"
      "b\n"
      ".outputs f\n"
      ".names a b f\n"
      "11 1\n"
      ".end\n";
  std::stringstream ss(text);
  const auto m = read_blif(ss);
  EXPECT_EQ(m.num_pis(), 2u);
}

TEST(BlifTest, ErrorsCarryLineNumbers) {
  const auto message_of = [](const std::string& text) {
    std::stringstream ss(text);
    try {
      read_blif(ss);
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string("(no error)");
  };
  EXPECT_NE(message_of(".model x\n.inputs a\n.outputs q\n.latch a q\n.end\n")
                .find("BLIF line 4"),
            std::string::npos);
  // Undriven output: the error points at the .outputs line that demands it.
  EXPECT_NE(message_of(".model x\n.inputs a\n.outputs q\n.end\n")
                .find("BLIF line 3"),
            std::string::npos);
  // Malformed cover row: attributed to the table's .names line.
  EXPECT_NE(message_of(".model x\n.inputs a b\n.outputs q\n.names a b q\n1 1\n.end\n")
                .find("BLIF line 4"),
            std::string::npos);
  EXPECT_NE(message_of(".model x\n.inputs a\n.outputs q\n.names a q\n1 1\n1\\\n"),
            "(no error)");
}

TEST(BlifTest, FileErrorsNameTheFile) {
  // Unique per process: concurrent suite runs (Debug + TSan trees on one
  // machine) must not race on a shared fixture file.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("mighty_io_bad_" + std::to_string(::getpid()) + ".blif"))
          .string();
  std::ofstream os(path);
  os << ".model x\n.inputs a\n.outputs q\n.end\n";
  os.close();
  try {
    read_blif_file(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("BLIF line"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(BlifTest, RejectsLatches) {
  std::stringstream ss(".model x\n.inputs a\n.outputs q\n.latch a q\n.end\n");
  EXPECT_THROW(read_blif(ss), std::runtime_error);
}

TEST(BlifTest, RejectsUndrivenSignal) {
  std::stringstream ss(".model x\n.inputs a\n.outputs q\n.end\n");
  EXPECT_THROW(read_blif(ss), std::runtime_error);
}

TEST(VerilogTest, EmitsStructuralMajority) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  m.create_po(!m.create_maj(a, b, c));
  std::stringstream ss;
  write_verilog(ss, m, "test_mod");
  const std::string v = ss.str();
  EXPECT_NE(v.find("module test_mod"), std::string::npos);
  EXPECT_NE(v.find("(x0 & x1) | (x0 & x2) | (x1 & x2)"), std::string::npos);
  EXPECT_NE(v.find("assign y0 = ~n"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(DotTest, EmitsGraph) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  m.create_po(m.create_and(a, !b));
  std::stringstream ss;
  write_dot(ss, m);
  const std::string d = ss.str();
  EXPECT_NE(d.find("digraph mig"), std::string::npos);
  EXPECT_NE(d.find("MAJ"), std::string::npos);
  EXPECT_NE(d.find("style=dashed"), std::string::npos);
}

TEST(BlifTest, FileRoundTrip) {
  const auto m = gen::make_adder_n(4);
  const std::string path = "/tmp/mighty_io_test.blif";
  write_blif_file(path, m);
  const auto back = read_blif_file(path);
  EXPECT_EQ(cec::check_equivalence(m, back).status, cec::CecStatus::equivalent);
}

}  // namespace
}  // namespace mighty::io
