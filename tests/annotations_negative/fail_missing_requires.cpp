// Negative-compile case: calling a MIGHTY_REQUIRES(mu) function without
// holding mu must be rejected by -Wthread-safety.  This is the `_locked`
// helper convention — a caller that forgets the lock fails to compile.
#include "util/mutex.hpp"

namespace {

struct Table {
  mighty::util::Mutex mu;
  int entries MIGHTY_GUARDED_BY(mu) = 0;

  void insert_locked() MIGHTY_REQUIRES(mu) { ++entries; }

  void insert() {
    insert_locked();  // BAD: caller does not hold mu
  }
};

}  // namespace

int main() {
  Table table;
  table.insert();
  return 0;
}
