// Positive control: the same patterns the fail_* cases break, written
// correctly, must compile clean under the full analysis flag set.  If this
// case ever fails, the negative cases are failing for the wrong reason
// (broken headers or flags), not because the analysis caught the bug.
#include "util/mutex.hpp"

namespace {

struct Contract {
  mighty::util::Mutex outer;
  mighty::util::Mutex inner MIGHTY_ACQUIRED_AFTER(outer);
  int value MIGHTY_GUARDED_BY(outer) = 0;

  void bump_locked() MIGHTY_REQUIRES(outer) { ++value; }

  int use() {
    mighty::util::MutexLock hold_outer(outer);
    mighty::util::MutexLock hold_inner(inner);  // documented order
    bump_locked();
    return value;
  }
};

}  // namespace

int main() {
  Contract contract;
  return contract.use();
}
