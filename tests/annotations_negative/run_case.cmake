# Drives one annotations_negative case at ctest time.
#
#   cmake -DCOMPILER=<clang++> -DCASE=<case.cpp> -DINCLUDE_DIR=<repo>/src
#         -DEXPECT=fail|pass -P run_case.cmake
#
# Every case is compiled twice:
#
#   1. WITHOUT the analysis flags — must always succeed.  This proves the
#      case is valid C++, so a failure in step 2 can only come from the
#      thread-safety analysis, never from an unrelated compile error.
#   2. WITH -Wthread-safety -Wthread-safety-beta -Werror — an EXPECT=fail
#      case must fail here *and* the diagnostic must name -Wthread-safety;
#      an EXPECT=pass case (the positive control) must stay clean.
#
# The double compile plus the diagnostic match is what keeps the analysis
# from rotting into a no-op: if the macros ever expand to nothing under
# Clang, or the CI leg loses its flags, the fail cases compile clean and
# ctest goes red.

foreach(var COMPILER CASE INCLUDE_DIR EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_case.cmake: missing -D${var}=...")
  endif()
endforeach()

set(base_flags -std=c++20 -fsyntax-only -I${INCLUDE_DIR})
set(analysis_flags -Wthread-safety -Wthread-safety-beta -Werror)

execute_process(
  COMMAND ${COMPILER} ${base_flags} ${CASE}
  RESULT_VARIABLE plain_rc
  ERROR_VARIABLE plain_err)
if(NOT plain_rc EQUAL 0)
  message(FATAL_ERROR
    "${CASE} does not compile even without the analysis flags — the case is "
    "broken, not the contract:\n${plain_err}")
endif()

execute_process(
  COMMAND ${COMPILER} ${base_flags} ${analysis_flags} ${CASE}
  RESULT_VARIABLE analysis_rc
  ERROR_VARIABLE analysis_err)

if(EXPECT STREQUAL "pass")
  if(NOT analysis_rc EQUAL 0)
    message(FATAL_ERROR
      "positive control ${CASE} was rejected by the analysis flags:\n"
      "${analysis_err}")
  endif()
else()
  if(analysis_rc EQUAL 0)
    message(FATAL_ERROR
      "${CASE} compiled clean under ${analysis_flags} — the thread-safety "
      "analysis has rotted into a no-op")
  endif()
  if(NOT analysis_err MATCHES "Wthread-safety")
    message(FATAL_ERROR
      "${CASE} failed, but not with a -Wthread-safety diagnostic — it is "
      "failing for the wrong reason:\n${analysis_err}")
  endif()
endif()
