// Negative-compile case: violating a declared MIGHTY_ACQUIRED_AFTER
// ordering edge must be rejected under -Wthread-safety-beta (the static
// twin of the Debug runtime acquisition-order graph in util::Mutex).
#include "util/mutex.hpp"

namespace {

struct TwoLocks {
  mighty::util::Mutex outer;
  mighty::util::Mutex inner MIGHTY_ACQUIRED_AFTER(outer);

  void wrong_order() {
    mighty::util::MutexLock hold_inner(inner);
    mighty::util::MutexLock hold_outer(outer);  // BAD: outer must come first
  }
};

}  // namespace

int main() {
  TwoLocks locks;
  locks.wrong_order();
  return 0;
}
