// Negative-compile case: reading a MIGHTY_GUARDED_BY member without holding
// its mutex must be rejected by -Wthread-safety.  run_case.cmake first
// proves this file is valid C++ *without* the analysis flags, so the only
// way it can fail is the thread-safety diagnostic itself.
#include "util/mutex.hpp"

namespace {

struct Counter {
  mighty::util::Mutex mu;
  int value MIGHTY_GUARDED_BY(mu) = 0;

  int read_without_lock() {
    return value;  // BAD: mu is not held
  }
};

}  // namespace

int main() {
  Counter counter;
  return counter.read_without_lock();
}
