#include "cec/cec.hpp"

#include <gtest/gtest.h>

#include "gen/arith.hpp"
#include "mig/simulation.hpp"
#include "test_util.hpp"

namespace mighty::cec {
namespace {

TEST(CecTest, IdenticalNetworksAreEquivalent) {
  const auto m = testutil::random_mig(5, 30, 3, 1);
  const auto r = check_equivalence(m, m);
  EXPECT_EQ(r.status, CecStatus::equivalent);
}

TEST(CecTest, StructurallyDifferentButEquivalent) {
  // Build xor three ways.
  mig::Mig m1;
  {
    const auto a = m1.create_pi();
    const auto b = m1.create_pi();
    m1.create_po(m1.create_xor(a, b));
  }
  mig::Mig m2;
  {
    const auto a = m2.create_pi();
    const auto b = m2.create_pi();
    // (a & !b) | (!a & b)
    m2.create_po(m2.create_or(m2.create_and(a, !b), m2.create_and(!a, b)));
  }
  const auto r = check_equivalence(m1, m2);
  EXPECT_EQ(r.status, CecStatus::equivalent);
}

TEST(CecTest, DetectsDifferenceWithCounterexample) {
  mig::Mig m1;
  {
    const auto a = m1.create_pi();
    const auto b = m1.create_pi();
    m1.create_po(m1.create_and(a, b));
  }
  mig::Mig m2;
  {
    const auto a = m2.create_pi();
    const auto b = m2.create_pi();
    m2.create_po(m2.create_or(a, b));
  }
  const auto r = check_equivalence(m1, m2);
  ASSERT_EQ(r.status, CecStatus::not_equivalent);
  ASSERT_EQ(r.counterexample.size(), 2u);
  // The counterexample must actually distinguish AND from OR.
  const bool a = r.counterexample[0];
  const bool b = r.counterexample[1];
  EXPECT_NE(a && b, a || b);
}

TEST(CecTest, SubtleSingleMintermDifference) {
  // Differ in exactly one of 64 minterms: random simulation may miss it, the
  // SAT stage must find it.
  mig::Mig m1;
  mig::Mig m2;
  {
    const auto pis = m1.create_pis(6);
    mig::Signal acc = m1.get_constant(true);
    for (const auto p : pis) acc = m1.create_and(acc, p);
    m1.create_po(acc);  // AND of all six
  }
  {
    m2.create_pis(6);
    m2.create_po(m2.get_constant(false));  // constant 0
  }
  const auto r = check_equivalence(m1, m2);
  ASSERT_EQ(r.status, CecStatus::not_equivalent);
  for (const bool bit : r.counterexample) EXPECT_TRUE(bit);
}

TEST(CecTest, SimulationOnlyModeReportsUnknown) {
  const auto m = testutil::random_mig(5, 20, 2, 3);
  CecOptions options;
  options.simulation_only = true;
  const auto r = check_equivalence(m, m, options);
  EXPECT_EQ(r.status, CecStatus::unknown);
}

TEST(CecTest, RandomSimulationAgreesOnEquivalentNetworks) {
  const auto m = testutil::random_mig(6, 40, 4, 4);
  const auto clean = m.cleanup();
  EXPECT_TRUE(random_simulation_equal(m, clean, 8, 99));
}

TEST(CecTest, MismatchedInterfacesThrow) {
  mig::Mig m1;
  m1.create_pis(2);
  m1.create_po(m1.get_constant(false));
  mig::Mig m2;
  m2.create_pis(3);
  m2.create_po(m2.get_constant(false));
  EXPECT_THROW(check_equivalence(m1, m2), std::invalid_argument);
}

TEST(CecTest, LargeArithmeticEquivalenceViaCleanup) {
  const auto m = gen::make_multiplier_n(8);
  const auto clean = m.cleanup();
  const auto r = check_equivalence(m, clean);
  EXPECT_EQ(r.status, CecStatus::equivalent);
}

TEST(CecTest, EncodeMigRespectsOutputPolarity) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  m.create_po(!m.create_and(a, b));

  sat::Solver solver;
  const auto lits = encode_mig(m, solver);
  // Force a = b = 1; the node literal must then be true (and the PO false).
  const auto out = m.output(0);
  solver.add_clause({lits[1]});
  solver.add_clause({lits[2]});
  ASSERT_EQ(solver.solve(), sat::Result::sat);
  EXPECT_TRUE(solver.model_value_lit(lits[out.index()]));
}

}  // namespace
}  // namespace mighty::cec
