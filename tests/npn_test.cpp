#include "npn/npn.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace mighty::npn {
namespace {

using tt::TruthTable;

TEST(NpnTest, IdentityTransformIsNoOp) {
  Transform t;
  t.num_vars = 4;
  std::mt19937 rng(1);
  for (int i = 0; i < 50; ++i) {
    const TruthTable f(4, rng());
    EXPECT_EQ(apply(f, t), f);
  }
}

TEST(NpnTest, OutputNegation) {
  Transform t;
  t.num_vars = 4;
  t.output_negation = true;
  const TruthTable f(4, 0x1234);
  EXPECT_EQ(apply(f, t), ~f);
}

TEST(NpnTest, InputNegationMatchesFlip) {
  Transform t;
  t.num_vars = 4;
  t.input_negations = 0b0101;
  std::mt19937 rng(2);
  const TruthTable f(4, rng());
  EXPECT_EQ(apply(f, t), f.flip(0).flip(2));
}

TEST(NpnTest, InverseRoundTripRandom) {
  std::mt19937 rng(3);
  const auto perms = all_permutations(4);
  for (int i = 0; i < 500; ++i) {
    Transform t;
    t.num_vars = 4;
    t.perm = perms[rng() % perms.size()];
    t.input_negations = static_cast<uint8_t>(rng() & 0xf);
    t.output_negation = (rng() & 1) != 0;
    const TruthTable f(4, rng());
    EXPECT_EQ(apply(apply(f, t), inverse(t)), f);
    EXPECT_EQ(apply(apply(f, inverse(t)), t), f);
  }
}

TEST(NpnTest, CanonizeIsIdempotent) {
  std::mt19937 rng(4);
  for (int i = 0; i < 200; ++i) {
    const TruthTable f(4, rng());
    const auto r1 = canonize(f);
    const auto r2 = canonize(r1.representative);
    EXPECT_EQ(r2.representative, r1.representative);
  }
}

TEST(NpnTest, CanonizeRelatesFunctionAndRepresentative) {
  std::mt19937 rng(5);
  for (int i = 0; i < 200; ++i) {
    const TruthTable f(4, rng());
    const auto r = canonize(f);
    EXPECT_EQ(apply(f, r.transform), r.representative);
    EXPECT_EQ(apply(r.representative, inverse(r.transform)), f);
  }
}

TEST(NpnTest, EquivalentFunctionsShareRepresentative) {
  std::mt19937 rng(6);
  const auto perms = all_permutations(4);
  for (int i = 0; i < 100; ++i) {
    const TruthTable f(4, rng());
    Transform t;
    t.num_vars = 4;
    t.perm = perms[rng() % perms.size()];
    t.input_negations = static_cast<uint8_t>(rng() & 0xf);
    t.output_negation = (rng() & 1) != 0;
    const TruthTable g = apply(f, t);
    EXPECT_EQ(canonize(f).representative, canonize(g).representative);
  }
}

TEST(NpnTest, RepresentativeIsSmallestInOrbit) {
  std::mt19937 rng(7);
  const auto perms = all_permutations(4);
  for (int i = 0; i < 10; ++i) {
    const TruthTable f(4, rng());
    const auto rep = canonize(f).representative;
    Transform t;
    t.num_vars = 4;
    for (const auto& perm : perms) {
      t.perm = perm;
      for (uint32_t neg = 0; neg < 16; ++neg) {
        t.input_negations = static_cast<uint8_t>(neg);
        for (int out = 0; out < 2; ++out) {
          t.output_negation = out != 0;
          EXPECT_FALSE(apply(f, t) < rep);
        }
      }
    }
  }
}

// The published NPN class counts (paper Sec. II-D): 2, 2, 4, 14, 222 classes
// for n = 0 (constants treated over 0 vars), 1, 2, 3, 4.
TEST(NpnTest, ClassCountsMatchLiterature) {
  EXPECT_EQ(enumerate_classes(0).size(), 1u);  // over zero variables: 0 and 1 collapse
  EXPECT_EQ(enumerate_classes(1).size(), 2u);
  EXPECT_EQ(enumerate_classes(2).size(), 4u);
  EXPECT_EQ(enumerate_classes(3).size(), 14u);
  EXPECT_EQ(enumerate_classes(4).size(), 222u);
}

TEST(NpnTest, ClassOrbitsPartitionAllFunctions) {
  const auto reps = enumerate_classes(3);
  std::set<uint64_t> seen;
  const auto perms = all_permutations(3);
  for (const auto& rep : reps) {
    Transform t;
    t.num_vars = 3;
    for (const auto& perm : perms) {
      t.perm = perm;
      for (uint32_t neg = 0; neg < 8; ++neg) {
        t.input_negations = static_cast<uint8_t>(neg);
        for (int out = 0; out < 2; ++out) {
          t.output_negation = out != 0;
          seen.insert(apply(rep, t).bits());
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(NpnTest, RepresentativesCanonizeToThemselves) {
  for (const auto& rep : enumerate_classes(3)) {
    EXPECT_EQ(canonize(rep).representative, rep);
  }
}

TEST(NpnTest, PermutationCount) {
  EXPECT_EQ(all_permutations(4).size(), 24u);
  EXPECT_EQ(all_permutations(3).size(), 6u);
  EXPECT_EQ(all_permutations(1).size(), 1u);
}

}  // namespace
}  // namespace mighty::npn
