#include "flow/flow.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cec/cec.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "mig/algebra/algebra.hpp"
#include "mig/simulation.hpp"
#include "opt/rewrite.hpp"
#include "test_util.hpp"

namespace mighty::flow {
namespace {

const exact::Database& db() {
  static const exact::Database instance =
      exact::Database::load_or_build(exact::default_database_path());
  return instance;
}

/// A session over the shared test database (copied; the copy is cheap).
Session make_session() { return Session(db()); }

// --- flow-script parsing -----------------------------------------------------

TEST(FlowParseTest, SingleVariant) {
  const auto p = Pipeline::parse("TF");
  EXPECT_EQ(p.num_passes(), 1u);
  EXPECT_EQ(p.to_string(), "TF");
}

TEST(FlowParseTest, CaseAndWhitespaceInsensitive) {
  EXPECT_EQ(Pipeline::parse("  tf ;\tBfD * 3 ; size ").to_string(), "TF;BFD*3;size");
  EXPECT_EQ(Pipeline::parse("DEPTH;Map").to_string(), "depth;map");
}

TEST(FlowParseTest, GroupsRepeatsAndConvergence) {
  EXPECT_EQ(Pipeline::parse("(TF;size)*;map4").to_string(), "(TF;size)*;map4");
  EXPECT_EQ(Pipeline::parse("(BFD;size)*2").to_string(), "(BFD;size)*2");
  EXPECT_EQ(Pipeline::parse("TF*").to_string(), "TF*");
  EXPECT_EQ(Pipeline::parse("((T;B)*2;size)*3").to_string(), "((T;B)*2;size)*3");
  EXPECT_EQ(Pipeline::parse("(BF;size)*<4").to_string(), "(BF;size)*<4");
  EXPECT_EQ(Pipeline::parse("TF*<16").to_string(), "TF*");  // the default cap
}

TEST(FlowParseTest, NestedCombinatorsRoundTrip) {
  const auto nested = Pipeline().rewrite("BF").until_convergence().repeat(3);
  EXPECT_EQ(nested.to_string(), "(BF*)*3");
  EXPECT_EQ(Pipeline::parse(nested.to_string()).to_string(), nested.to_string());

  const auto stacked = Pipeline().rewrite("BF").repeat(2).repeat(3);
  EXPECT_EQ(stacked.to_string(), "(BF*2)*3");
  EXPECT_EQ(Pipeline::parse(stacked.to_string()).to_string(), stacked.to_string());

  const auto capped = Pipeline().rewrite("TF").size_opt().until_convergence(4);
  EXPECT_EQ(capped.to_string(), "(TF;size)*<4");
  EXPECT_EQ(Pipeline::parse(capped.to_string()).to_string(), capped.to_string());
}

TEST(FlowParseTest, EmptyItemsAreSkipped) {
  EXPECT_EQ(Pipeline::parse("TF;;BF;").to_string(), "TF;BF");
  EXPECT_TRUE(Pipeline::parse("").empty());
  EXPECT_TRUE(Pipeline::parse(" ; ; ").empty());
}

TEST(FlowParseTest, RoundTripsThroughToString) {
  for (const auto* script :
       {"TF", "TF;BFD", "(TF;size)*;map", "B*4;depth;map8", "TFD;(BD;size)*2"}) {
    const auto once = Pipeline::parse(script).to_string();
    EXPECT_EQ(Pipeline::parse(once).to_string(), once) << script;
  }
}

TEST(FlowParseTest, RejectsMalformedScripts) {
  EXPECT_THROW(Pipeline::parse("XY"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("TF BFD"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("TF**"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("TF*0"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("(TF"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("TF)"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("()"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("*3"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("map1"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("7"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("TF*<0"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("TF*<"), std::invalid_argument);
}

TEST(FlowParseTest, ErrorsNameTheOffendingToken) {
  try {
    Pipeline::parse("TF;frob;BF");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("frob"), std::string::npos) << e.what();
  }
}

// --- parser negative paths (overflow, error positions) ------------------------

/// The "position N" a parse error reports, or SIZE_MAX when none/unparseable.
size_t error_position(const std::string& script) {
  try {
    Pipeline::parse(script);
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    const auto at = what.find("position ");
    if (at == std::string::npos) return SIZE_MAX;
    return static_cast<size_t>(std::stoul(what.substr(at + 9)));
  }
  return SIZE_MAX;
}

TEST(FlowParseTest, RejectsCountsThatOverflowUint32) {
  // 2^32 exactly: silently wrapping to 0 would turn "repeat 4294967296
  // times" into a parse of "TF*0" — it must be rejected as too large.
  EXPECT_THROW(Pipeline::parse("TF*4294967296"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("TF*<4294967296"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("TF*18446744073709551616"), std::invalid_argument);
  // A thousand digits must neither overflow the accumulator nor crash.
  EXPECT_THROW(Pipeline::parse("TF*1" + std::string(1000, '0')),
               std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("parallel:4294967296"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("map4294967296"), std::invalid_argument);
  try {
    Pipeline::parse("TF*4294967296");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("too large"), std::string::npos)
        << e.what();
  }
}

TEST(FlowParseTest, ErrorPositionsPointAtTheTokenStart) {
  // Unknown pass: at the word's first character, also behind padding.
  EXPECT_EQ(error_position("frob"), 0u);
  EXPECT_EQ(error_position("   frob"), 3u);
  EXPECT_EQ(error_position("TF;  frob;BF"), 5u);
  // Count errors: at the count's first digit, never past the digits.
  EXPECT_EQ(error_position("TF*0"), 3u);
  EXPECT_EQ(error_position("  TF*0"), 5u);
  EXPECT_EQ(error_position("TF*< 0"), 5u);
  EXPECT_EQ(error_position("TF*4294967296"), 3u);
  EXPECT_EQ(error_position("  TF * 4294967296 ; BF"), 7u);
  EXPECT_EQ(error_position("map99"), 3u);
  EXPECT_EQ(error_position("parallel:0"), 9u);
  // Structural errors: at the offending character.
  EXPECT_EQ(error_position("TF)"), 2u);
  EXPECT_EQ(error_position("TF  )"), 4u);
  EXPECT_EQ(error_position("TF BF"), 3u);
}

TEST(FlowParseTest, ToScriptRoundTripsEveryProduction) {
  // parse(p.to_script()) must be structurally identical to p for every
  // grammar production — canonical scripts are the autotuner's dedup key and
  // the reproducibility contract of every report.
  for (const auto* script : {
           "TF", "T", "TD", "TFD", "B", "BD", "BF", "BFD",  // variants
           "TF5", "BFD5",                                   // 5-cut extensions
           "size", "depth",                                 // algebraic
           "map", "map4", "map16",                          // mapping
           "parallel:1", "parallel:8",                      // session directives
           "cache:/tmp/c5.db", "cache:rel/Mixed.Case",      //
           "TF*3", "TF*", "TF*<2",                          // modifiers
           "(TF;size)*", "(BFD;size)*2", "(BF;size)*<4",    // groups
           "((T;B)*2;size)*3", "(TF;(BFD;size)*<3)*",       // nesting
           "parallel:2;cache:/tmp/x;TF5;(BFD;size)*<3;map8;depth*2",
       }) {
    const Pipeline first = Pipeline::parse(script);
    const std::string canonical = first.to_script();
    const Pipeline second = Pipeline::parse(canonical);
    EXPECT_EQ(second.to_script(), canonical) << script;
    ASSERT_EQ(second.num_passes(), first.num_passes()) << script;
    for (size_t i = 0; i < first.num_passes(); ++i) {
      EXPECT_EQ(second.pass(i).name(), first.pass(i).name()) << script;
    }
  }
  // to_string stays an alias of to_script.
  EXPECT_EQ(Pipeline::parse("(TF;size)*;map").to_string(),
            Pipeline::parse("(TF;size)*;map").to_script());
}

// --- variant_params satellite (case handling, error message) -----------------

TEST(FlowParseTest, VariantParamsAcceptsLowerAndMixedCase) {
  EXPECT_EQ(opt::variant_params("bfd").direction, opt::Direction::bottom_up);
  EXPECT_TRUE(opt::variant_params("bfd").ffr_partition);
  EXPECT_TRUE(opt::variant_params("bfd").depth_preserving);
  EXPECT_EQ(opt::variant_params("Tf").direction, opt::Direction::top_down);
  EXPECT_TRUE(opt::variant_params("tF").ffr_partition);
}

TEST(FlowParseTest, VariantParamsErrorsIncludeOffendingString) {
  try {
    opt::variant_params("TQX");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("TQX"), std::string::npos) << e.what();
  }
  try {
    opt::variant_params("FD");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("FD"), std::string::npos) << e.what();
  }
}

// --- session -----------------------------------------------------------------

TEST(FlowSessionTest, DatabasePathHonorsEnvironment) {
  // Materialize the shared database first so no later test rebuilds it.
  ASSERT_EQ(db().num_entries(), 222u);
  const char* saved = std::getenv("MIGHTY_DB_PATH");
  const std::string saved_value = saved ? saved : "";
  setenv("MIGHTY_DB_PATH", "/tmp/mighty_env_test.db", 1);
  EXPECT_EQ(exact::default_database_path(), "/tmp/mighty_env_test.db");
  EXPECT_EQ(Session().database_path(), "/tmp/mighty_env_test.db");
  if (saved) {
    setenv("MIGHTY_DB_PATH", saved_value.c_str(), 1);
  } else {
    unsetenv("MIGHTY_DB_PATH");
    EXPECT_EQ(exact::default_database_path(), "data/mig_npn4.db");
  }
}

TEST(FlowSessionTest, OracleMaterializesLazilyAndIsShared) {
  auto session = make_session();
  EXPECT_EQ(session.oracle_if_created(), nullptr);
  const auto m = testutil::random_mig(5, 30, 3, 7);
  Pipeline().rewrite("T").run(m, session);
  ASSERT_NE(session.oracle_if_created(), nullptr);
  const uint64_t queries_after_first = session.oracle_if_created()->queries();
  EXPECT_GT(queries_after_first, 0u);
  Pipeline().rewrite("T").run(m, session);
  EXPECT_GT(session.oracle_if_created()->queries(), queries_after_first);
}

// --- persistent oracle cache through the flow layer --------------------------

TEST(FlowParseTest, CacheDirectiveParsesAndRoundTrips) {
  const auto p = Pipeline::parse("cache:/tmp/c5.db; TF5; size");
  EXPECT_EQ(p.num_passes(), 3u);
  EXPECT_EQ(p.to_string(), "cache:/tmp/c5.db;TF5;size");
  EXPECT_TRUE(p.mutates_session());
  // The path keeps its case even though pass words are case-insensitive.
  EXPECT_EQ(Pipeline::parse("CACHE:/tmp/MixedCase.db").to_string(),
            "cache:/tmp/MixedCase.db");
  EXPECT_THROW(Pipeline::parse("cache"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("cache:"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("cache:;TF"), std::invalid_argument);
  // '*' is a repeat suffix, never part of the filename.
  EXPECT_EQ(Pipeline::parse("cache:/tmp/x*2").to_string(), "cache:/tmp/x*2");
  EXPECT_EQ(Pipeline::parse("cache:/tmp/x*2").num_passes(), 1u);  // a repeat group
}

TEST(FlowSessionTest, SetCachePathRecordsWithoutMerging) {
  testutil::ScratchDir scratch("mighty_set_cache_path");
  const auto path = (scratch.dir / "c5.db").string();
  {
    SessionParams params;
    params.oracle_cache_path = path;
    Session writer(exact::Database(db()), std::move(params));
    Pipeline::parse("TF5").run(algebra::depth_optimize(gen::make_adder_n(8)), writer);
  }  // autosave

  // On a session whose oracle is already live, set_cache_path is recording
  // only — `cache save <path>` must not read the destination file; merging
  // is load_cache()'s (or materialization's) job.
  auto session = make_session();
  Pipeline::parse("TF").run(testutil::random_mig(5, 20, 2, 9), session);
  ASSERT_NE(session.oracle_if_created(), nullptr);
  ASSERT_EQ(session.oracle_if_created()->cache_stats().entries, 0u);
  session.set_cache_path(path);
  EXPECT_EQ(session.oracle_if_created()->cache_stats().entries, 0u)
      << "set_cache_path performed a merge";
  const auto r = session.load_cache();
  EXPECT_EQ(r.status, opt::ReplacementOracle::CacheLoadStatus::loaded);
  EXPECT_GT(r.adopted, 0u);
  EXPECT_EQ(session.oracle_if_created()->cache_stats().entries, r.adopted);
  session.set_cache_path("");  // keep the autosave off this scratch dir
}

TEST(FlowSessionTest, CachePersistsAcrossSessions) {
  const auto dir = std::filesystem::temp_directory_path() / "mighty_flow_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto path = (dir / "c5.db").string();

  const auto to_blif = [](const mig::Mig& m) {
    std::ostringstream os;
    io::write_blif(os, m);
    return os.str();
  };
  const auto network = algebra::depth_optimize(gen::make_adder_n(10));
  const auto pipeline = Pipeline::parse("TF5;size");

  std::string first_result;
  uint64_t first_syntheses = 0;
  {
    SessionParams params;
    params.oracle_cache_path = path;
    Session session(exact::Database(db()), std::move(params));
    FlowReport report;
    first_result = to_blif(pipeline.run(network, session, &report));
    first_syntheses = report.oracle_synthesized;
    // Destruction autosaves the dirty cache — no explicit save_cache here.
  }
  EXPECT_GT(first_syntheses, 0u);
  ASSERT_TRUE(std::filesystem::exists(path)) << "autosave did not write " << path;

  // A process-equivalent second session: fresh oracle, same file.
  SessionParams params;
  params.oracle_cache_path = path;
  Session session(exact::Database(db()), std::move(params));
  FlowReport report;
  const auto second_result = to_blif(pipeline.run(network, session, &report));
  EXPECT_EQ(second_result, first_result) << "persisted cache changed the result";
  EXPECT_EQ(report.oracle_synthesized, 0u)
      << "cached functions were re-synthesized after reload";
  EXPECT_GT(report.oracle_cache5_hits, 0u);
  std::filesystem::remove_all(dir);
}

TEST(FlowSessionTest, CacheDirectiveAttachesMidFlow) {
  const auto dir = std::filesystem::temp_directory_path() / "mighty_flow_cache_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto path = (dir / "c5.db").string();

  auto session = make_session();
  EXPECT_TRUE(session.cache_path().empty());
  const auto network = algebra::depth_optimize(gen::make_adder_n(8));
  Pipeline::parse("cache:" + path + ";TF5").run(network, session);
  EXPECT_EQ(session.cache_path(), path);
  EXPECT_GT(session.save_cache(), 0u);
  EXPECT_TRUE(std::filesystem::exists(path));
  // Second save with nothing new: dirty tracking skips the write.
  EXPECT_EQ(session.save_cache(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(FlowSessionTest, MalformedCacheFileIsIgnoredNotFatal) {
  const auto dir = std::filesystem::temp_directory_path() / "mighty_flow_cache_bad";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto path = (dir / "c5.db").string();
  std::ofstream(path) << "this is not a cache file\n";

  SessionParams params;
  params.oracle_cache_path = path;
  Session session(exact::Database(db()), std::move(params));
  EXPECT_EQ(session.load_cache().status,
            opt::ReplacementOracle::CacheLoadStatus::malformed);
  // The flow still runs, and the next save overwrites the bad file wholesale.
  const auto network = algebra::depth_optimize(gen::make_adder_n(8));
  Pipeline::parse("TF5").run(network, session);
  EXPECT_GT(session.save_cache(), 0u);
  SessionParams reload_params;
  reload_params.oracle_cache_path = path;
  Session reload(exact::Database(db()), std::move(reload_params));
  EXPECT_EQ(reload.load_cache().status,
            opt::ReplacementOracle::CacheLoadStatus::loaded);
  std::filesystem::remove_all(dir);
}

TEST(FlowBatchTest, BatchRejectsCacheDirectiveAndSavesOncePerBatch) {
  const auto dir = std::filesystem::temp_directory_path() / "mighty_batch_cache";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto path = (dir / "c5.db").string();

  Corpus corpus;
  corpus.add("a", algebra::depth_optimize(gen::make_adder_n(6)));
  corpus.add("b", algebra::depth_optimize(gen::make_adder_n(8)));

  auto session = make_session();
  // Session directives are rejected inside batch pipelines...
  EXPECT_THROW(BatchRunner(session).run(corpus, Pipeline::parse("cache:" + path + ";TF")),
               std::invalid_argument);
  // ...the session-level path is the supported route; the runner saves once,
  // after the concurrent part of the batch has quiesced (threads=2 runs the
  // real two-level scheduler over the shared, persistable oracle).
  session.set_cache_path(path);
  session.set_threads(2);
  BatchReport report;
  BatchRunner(session).run(corpus, Pipeline::parse("TF5;size"), &report);
  EXPECT_EQ(report.failures(), 0u);
  EXPECT_TRUE(std::filesystem::exists(path)) << "batch did not persist the cache";
  EXPECT_EQ(session.save_cache(), 0u) << "batch left dirty entries unsaved";
  std::filesystem::remove_all(dir);
}

// --- combinators -------------------------------------------------------------

TEST(FlowPipelineTest, RepeatRunsExactlyNTimes) {
  auto session = make_session();
  const auto m = testutil::random_mig(6, 40, 4, 11);
  FlowReport report;
  Pipeline().rewrite("TF").repeat(3).run(m, session, &report);
  EXPECT_EQ(report.passes.size(), 3u);
  for (const auto& pass : report.passes) EXPECT_EQ(pass.name, "TF");
}

TEST(FlowPipelineTest, UntilConvergenceStopsAtFixpoint) {
  auto session = make_session();
  // 4-input parity from three XORs: the first global top-down pass reaches
  // the database optimum, the second proves the fixpoint, and the loop must
  // stop there.
  mig::Mig m;
  const auto pis = m.create_pis(4);
  const auto x01 = m.create_xor(pis[0], pis[1]);
  const auto x23 = m.create_xor(pis[2], pis[3]);
  m.create_po(m.create_xor(x01, x23));

  FlowReport report;
  const auto optimized =
      Pipeline().rewrite("T").until_convergence(50).run(m, session, &report);
  // The first round reaches the optimum; the round proving the fixpoint is
  // rolled back, so the trajectory holds exactly the one improving round.
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_LT(report.passes.back().size_after, report.passes.back().size_before);
  EXPECT_EQ(optimized.count_live_gates(), report.size_after);
  EXPECT_EQ(report.passes.back().size_after, report.size_after);
}

TEST(FlowPipelineTest, UntilConvergenceHonorsMaxRounds) {
  auto session = make_session();
  const auto m = algebra::depth_optimize(gen::make_sqrt_n(8));
  FlowReport report;
  Pipeline().rewrite("BF").until_convergence(2).run(m, session, &report);
  EXPECT_LE(report.passes.size(), 2u);
}

TEST(FlowPipelineTest, UntilConvergenceNeverReturnsAGrownNetwork) {
  auto session = make_session();
  // "depth" can grow the network to cut levels; a non-improving round must be
  // rolled back (output and trajectory), so the report chains cleanly and the
  // result equals the last surviving round's end state.
  const auto m = gen::make_multiplier_n(6);
  FlowReport report;
  const auto out =
      Pipeline().rewrite("TF").depth_opt().until_convergence(5).run(m, session,
                                                                    &report);
  EXPECT_EQ(report.passes.size() % 2, 0u);  // only whole surviving rounds
  if (!report.passes.empty()) {
    EXPECT_EQ(out.count_live_gates(), report.passes.back().size_after);
  } else {
    EXPECT_EQ(out.count_live_gates(), m.count_live_gates());
  }
  EXPECT_LE(out.count_live_gates(), m.count_live_gates());
}

TEST(FlowPipelineTest, InterleaveRoundRobinsPasses) {
  Pipeline a;
  a.rewrite("TF").rewrite("TD");
  Pipeline b;
  b.size_opt();
  EXPECT_EQ(Pipeline::interleave({a, b}).to_string(), "TF;size;TD");
}

// --- stats aggregation -------------------------------------------------------

TEST(FlowReportTest, TrajectoryChainsAndTotalsMatch) {
  auto session = make_session();
  const auto m = algebra::depth_optimize(gen::make_multiplier_n(6));
  FlowReport report;
  const auto optimized =
      Pipeline::parse("TF;size;BFD").run(m, session, &report);

  ASSERT_EQ(report.passes.size(), 3u);
  EXPECT_EQ(report.size_before, m.count_live_gates());
  EXPECT_EQ(report.depth_before, m.depth());
  EXPECT_EQ(report.size_after, optimized.count_live_gates());
  EXPECT_EQ(report.depth_after, optimized.depth());
  EXPECT_EQ(report.passes.front().size_before, report.size_before);
  EXPECT_EQ(report.passes.back().size_after, report.size_after);
  for (size_t i = 1; i < report.passes.size(); ++i) {
    EXPECT_EQ(report.passes[i].size_before, report.passes[i - 1].size_after) << i;
  }

  uint64_t cuts = 0, replacements = 0;
  for (const auto& pass : report.passes) {
    cuts += pass.cuts_evaluated;
    replacements += pass.replacements;
  }
  EXPECT_EQ(report.cuts_evaluated(), cuts);
  EXPECT_EQ(report.replacements(), replacements);
  EXPECT_GT(report.cuts_evaluated(), 0u);
  EXPECT_GT(report.oracle_queries, 0u);
  EXPECT_EQ(report.oracle_answered, report.oracle_queries);  // 4-cut flows always hit
  EXPECT_DOUBLE_EQ(report.oracle_hit_rate(), 1.0);
  EXPECT_GE(report.seconds, 0.0);
  EXPECT_FALSE(report.summary().empty());
}

TEST(FlowReportTest, ReportIsResetBetweenRuns) {
  auto session = make_session();
  const auto m = testutil::random_mig(6, 40, 4, 3);
  FlowReport report;
  Pipeline().rewrite("TF").run(m, session, &report);
  const auto first_queries = report.oracle_queries;
  ASSERT_EQ(report.passes.size(), 1u);
  Pipeline().rewrite("TF").run(m, session, &report);
  EXPECT_EQ(report.passes.size(), 1u);  // not accumulated across runs
  // Re-running the identical pass replays the same queries; the delta
  // accounting must not leak the first run's counters into the second.
  EXPECT_EQ(report.oracle_queries, first_queries);
}

TEST(FlowReportTest, MappingPassReportsLutsAndPreservesNetwork) {
  auto session = make_session();
  const auto m = gen::make_adder_n(8);
  FlowReport report;
  const auto out = Pipeline::parse("map4").run(m, session, &report);
  ASSERT_NE(report.last_mapping(), nullptr);
  EXPECT_GT(report.last_mapping()->num_luts, 0u);
  EXPECT_GT(report.last_mapping()->lut_depth, 0u);
  EXPECT_EQ(report.size_after, report.size_before);
  EXPECT_TRUE(cec::random_simulation_equal(m, out, 8, 99));
}

TEST(FlowReportTest, EmptyPipelineIsIdentity) {
  auto session = make_session();
  const auto m = testutil::random_mig(5, 20, 3, 21);
  FlowReport report;
  const auto out = Pipeline().run(m, session, &report);
  EXPECT_TRUE(report.passes.empty());
  EXPECT_EQ(report.size_before, report.size_after);
  EXPECT_TRUE(cec::random_simulation_equal(m, out, 8, 5));
}

// --- equivalence with the legacy single-shot API -----------------------------

TEST(FlowEquivalenceTest, ParsedPipelineMatchesLegacySequentialCalls) {
  auto session = make_session();
  const auto m = algebra::depth_optimize(gen::make_multiplier_n(6));

  // Legacy: two independent single-shot calls, each with a private oracle.
  const auto legacy = opt::functional_hashing(
      opt::functional_hashing(m, db(), opt::variant_params("TF")), db(),
      opt::variant_params("BFD"));

  FlowReport report;
  const auto piped = Pipeline::parse("TF;BFD").run(m, session, &report);

  // The flow must be functionally equivalent to the input (full SAT proof)
  // and at least as small as the legacy composition.
  EXPECT_EQ(cec::check_equivalence(m, piped).status, cec::CecStatus::equivalent);
  EXPECT_EQ(cec::check_equivalence(legacy, piped).status,
            cec::CecStatus::equivalent);
  EXPECT_LE(piped.count_live_gates(), legacy.count_live_gates());
  EXPECT_EQ(report.size_after, piped.count_live_gates());
}

TEST(FlowEquivalenceTest, ScriptedConvergenceFlowStaysEquivalent) {
  auto session = make_session();
  const auto m = gen::make_adder_n(16);
  const auto out = Pipeline::parse("depth;(TF;size)*;map").run(m, session);
  EXPECT_EQ(cec::check_equivalence(m, out).status, cec::CecStatus::equivalent);
}

}  // namespace
}  // namespace mighty::flow
