#include "flow/autotune.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "flow/flow.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "mig/algebra/algebra.hpp"
#include "test_util.hpp"

namespace mighty::flow {
namespace {

const exact::Database& db() {
  static const exact::Database instance =
      exact::Database::load_or_build(exact::default_database_path());
  return instance;
}

Session make_session() { return Session(db()); }

/// A two-network corpus small enough that a whole search stays test-sized
/// (the TSan leg runs this file too), large enough that flows differ.
Corpus small_corpus() {
  Corpus corpus;
  corpus.add("adder10", algebra::depth_optimize(gen::make_adder_n(10)));
  corpus.add("mult4", algebra::depth_optimize(gen::make_multiplier_n(4)));
  return corpus;
}

/// Small deterministic search parameters shared by the tests below.
TuneParams small_params(Objective objective = Objective::size) {
  TuneParams params;
  params.objective = objective;
  params.population = 6;
  params.generations = 1;
  params.seed = 7;
  return params;
}

// --- objective parsing --------------------------------------------------------

TEST(AutotuneObjectiveTest, ParsesNamesCaseInsensitively) {
  EXPECT_EQ(parse_objective("size"), Objective::size);
  EXPECT_EQ(parse_objective("Depth"), Objective::depth);
  EXPECT_EQ(parse_objective("PRODUCT"), Objective::product);
  EXPECT_EQ(parse_objective("size*depth"), Objective::product);
  EXPECT_THROW(parse_objective("area"), std::invalid_argument);
  EXPECT_STREQ(objective_name(Objective::depth), "depth");
}

// --- parameter validation -----------------------------------------------------

TEST(AutotuneTest, RejectsMalformedInputs) {
  auto session = make_session();
  TuneReport report;

  EXPECT_THROW(Autotuner(session).tune(Corpus{}, &report), std::invalid_argument);

  TuneParams zero_pop = small_params();
  zero_pop.population = 0;
  EXPECT_THROW(Autotuner(session, zero_pop).tune(small_corpus()),
               std::invalid_argument);

  TuneParams bad_seed = small_params();
  bad_seed.seed_scripts = {"TF;frob"};
  EXPECT_THROW(Autotuner(session, bad_seed).tune(small_corpus()),
               std::invalid_argument);

  // Session directives reconfigure the engine mid-batch; the search space
  // excludes them up front rather than failing a generation in.
  TuneParams directive_seed = small_params();
  directive_seed.seed_scripts = {"parallel:2;TF"};
  EXPECT_THROW(Autotuner(session, directive_seed).tune(small_corpus()),
               std::invalid_argument);

  TuneParams bad_vocabulary = small_params();
  bad_vocabulary.vocabulary = {"TF", "frob"};
  EXPECT_THROW(Autotuner(session, bad_vocabulary).tune(small_corpus()),
               std::invalid_argument);

  // Oversized counts in a seed script fail as "too large" — never wrap, and
  // never stop mid-number with a misleading error (mirrors the main parser).
  TuneParams huge_count = small_params();
  huge_count.seed_scripts = {"TF*4294967296"};
  try {
    Autotuner(session, huge_count).tune(small_corpus());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("too large"), std::string::npos)
        << e.what();
  }
}

// --- search invariants --------------------------------------------------------

TEST(AutotuneTest, BaselineIsAlwaysEvaluatedAndNeverBeaten) {
  auto session = make_session();
  TuneReport report;
  Autotuner(session, small_params()).tune(small_corpus(), &report);

  // The baseline graduates unconditionally and is the bar to beat.
  EXPECT_EQ(report.baseline.script, Pipeline::parse(kBaselineScript).to_script());
  EXPECT_GT(report.baseline.size, 0u);
  EXPECT_GT(report.baseline.objective, 0u);

  // best() minimizes the objective over everything evaluated — the baseline
  // is in that set, so the winner can only tie or beat it.
  EXPECT_LE(report.best().objective, report.baseline.objective);

  // evaluated is sorted best-first with deterministic tie-breaks.
  ASSERT_FALSE(report.evaluated.empty());
  for (size_t i = 1; i < report.evaluated.size(); ++i) {
    const auto& a = report.evaluated[i - 1];
    const auto& b = report.evaluated[i];
    EXPECT_LE(std::make_pair(a.objective, a.script),
              std::make_pair(b.objective, b.script));
  }

  // Scripts are canonical (round-trip stable) and unique after dedup.
  for (const auto& entry : report.evaluated) {
    EXPECT_EQ(Pipeline::parse(entry.script).to_script(), entry.script);
  }
  for (size_t i = 1; i < report.evaluated.size(); ++i) {
    EXPECT_NE(report.evaluated[i].script, report.evaluated[i - 1].script);
  }
  EXPECT_GE(report.evaluations, report.evaluated.size());
  EXPECT_GE(report.candidates_generated, report.evaluated.size());
  EXPECT_FALSE(report.summary().empty());

  // The standalone baseline copy carries the same Pareto flag as its twin
  // in `evaluated`.
  const auto twin = std::find_if(
      report.evaluated.begin(), report.evaluated.end(),
      [&](const TuneEntry& e) { return e.script == report.baseline.script; });
  ASSERT_NE(twin, report.evaluated.end());
  EXPECT_EQ(report.baseline.pareto, twin->pareto);
}

TEST(AutotuneTest, ParetoFrontIsMutuallyNonDominating) {
  auto session = make_session();
  TuneReport report;
  Autotuner(session, small_params()).tune(small_corpus(), &report);

  const auto front = report.pareto_front();
  ASSERT_FALSE(front.empty());
  for (const auto& a : front) {
    for (const auto& b : front) {
      const bool dominates = a.size <= b.size && a.depth <= b.depth &&
                             (a.size < b.size || a.depth < b.depth);
      EXPECT_FALSE(dominates) << a.script << " dominates " << b.script;
    }
  }
  // Every non-front entry is dominated by some front entry.
  for (const auto& entry : report.evaluated) {
    if (entry.pareto) continue;
    const bool dominated = std::any_of(
        front.begin(), front.end(), [&](const TuneEntry& f) {
          return f.size <= entry.size && f.depth <= entry.depth &&
                 (f.size < entry.size || f.depth < entry.depth);
        });
    EXPECT_TRUE(dominated) << entry.script;
  }
}

TEST(AutotuneTest, WinnerReproducesBitIdentically) {
  auto session = make_session();
  const auto corpus = small_corpus();
  TuneReport report;
  Pipeline best = Autotuner(session, small_params()).tune(corpus, &report);

  // The returned pipeline is the winner's canonical script.
  EXPECT_EQ(best.to_script(), report.best().script);

  // Re-parsing the reported script and re-running it reproduces the
  // reported metrics and the exact networks — the reproducibility contract.
  const auto reparsed = Pipeline::parse(report.best().script);
  BatchReport first, second;
  const auto a = BatchRunner(session).run(corpus, best, &first);
  const auto b = BatchRunner(session).run(corpus, reparsed, &second);
  EXPECT_EQ(first.size_after, report.best().size);
  EXPECT_EQ(first.depth_after, report.best().depth);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    std::ostringstream osa, osb;
    io::write_blif(osa, a[i]);
    io::write_blif(osb, b[i]);
    EXPECT_EQ(osa.str(), osb.str()) << corpus[i].name;
  }
}

TEST(AutotuneTest, SingleNetworkOverloadMatchesSingletonCorpus) {
  const auto network = algebra::depth_optimize(gen::make_adder_n(8));

  auto session_a = make_session();
  TuneReport direct;
  Autotuner(session_a, small_params()).tune(network, &direct);

  Corpus corpus;
  corpus.add("network", network);
  auto session_b = make_session();
  TuneReport wrapped;
  Autotuner(session_b, small_params()).tune(corpus, &wrapped);

  ASSERT_EQ(direct.evaluated.size(), wrapped.evaluated.size());
  for (size_t i = 0; i < direct.evaluated.size(); ++i) {
    EXPECT_EQ(direct.evaluated[i].script, wrapped.evaluated[i].script);
    EXPECT_EQ(direct.evaluated[i].size, wrapped.evaluated[i].size);
  }
}

// --- determinism across thread counts (the `parallel` surface) ----------------

TEST(AutotuneTest, SearchIsDeterministicAcrossThreadCounts) {
  // `threads=N` evaluations are bit-identical to `threads=1` (PR 2/3), the
  // mutation RNG is seeded, and ties break on canonical scripts — so the
  // whole search, including the Pareto front, must not depend on the thread
  // count (only wall time may).
  const auto corpus = small_corpus();

  auto run = [&](uint32_t threads) {
    auto session = make_session();
    session.set_threads(threads);
    TuneReport report;
    Autotuner(session, small_params()).tune(corpus, &report);
    return report;
  };
  const TuneReport sequential = run(1);
  const TuneReport parallel = run(3);

  ASSERT_EQ(sequential.evaluated.size(), parallel.evaluated.size());
  for (size_t i = 0; i < sequential.evaluated.size(); ++i) {
    const auto& a = sequential.evaluated[i];
    const auto& b = parallel.evaluated[i];
    EXPECT_EQ(a.script, b.script);
    EXPECT_EQ(a.size, b.size);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.pareto, b.pareto);
  }
  EXPECT_EQ(sequential.best().script, parallel.best().script);
  EXPECT_EQ(sequential.baseline.objective, parallel.baseline.objective);

  const auto front_a = sequential.pareto_front();
  const auto front_b = parallel.pareto_front();
  ASSERT_EQ(front_a.size(), front_b.size());
  for (size_t i = 0; i < front_a.size(); ++i) {
    EXPECT_EQ(front_a[i].script, front_b[i].script);
  }
}

TEST(AutotuneTest, NonDefaultRoundCapAppliesToBaselineToo) {
  // The bar to beat runs under the same convergence budget as the
  // candidates; a 16-round baseline against 2-round candidates would make
  // "strictly beats the baseline" unwinnable.
  auto session = make_session();
  TuneParams params = small_params();
  params.full_round_cap = 2;
  TuneReport report;
  Autotuner(session, params).tune(small_corpus(), &report);
  EXPECT_EQ(report.baseline.script, "(TF;BFD;size)*<2");
  const auto count_script = [&](const std::string& script) {
    return std::count_if(
        report.evaluated.begin(), report.evaluated.end(),
        [&](const TuneEntry& e) { return e.script == script; });
  };
  EXPECT_EQ(count_script("(TF;BFD;size)*<2"), 1);
  EXPECT_EQ(count_script("(TF;BFD;size)*"), 0)
      << "baseline evaluated at the 16-round default despite the cap";
}

// --- objectives ---------------------------------------------------------------

TEST(AutotuneTest, DepthObjectiveRanksByDepth) {
  auto session = make_session();
  TuneReport report;
  Autotuner(session, small_params(Objective::depth)).tune(small_corpus(), &report);
  for (const auto& entry : report.evaluated) {
    EXPECT_EQ(entry.objective, entry.depth) << entry.script;
  }
}

TEST(AutotuneTest, ProductObjectiveIsPerNetworkNotCorpusWide) {
  // product must sum size*depth per network; summing the corpus-wide totals
  // first would let one network's depth multiply another's size.
  auto session = make_session();
  const auto corpus = small_corpus();
  TuneReport report;
  Autotuner(session, small_params(Objective::product)).tune(corpus, &report);

  const auto& entry = report.baseline;
  BatchReport batch;
  BatchRunner(session).run(corpus, Pipeline::parse(entry.script), &batch);
  uint64_t expected = 0;
  for (const auto& network : batch.networks) {
    expected += static_cast<uint64_t>(network.flow.size_after) *
                network.flow.depth_after;
  }
  EXPECT_EQ(entry.objective, expected);
  const uint64_t corpus_wide =
      static_cast<uint64_t>(batch.size_after) * batch.depth_after;
  EXPECT_NE(expected, corpus_wide);  // the distinction is observable
}

}  // namespace
}  // namespace mighty::flow
