#pragma once

#include <filesystem>
#include <random>
#include <vector>

#include "mig/mig.hpp"

/// Shared helpers for the test suite.

namespace mighty::testutil {

/// A throwaway directory under the system temp root, recreated empty on
/// construction and removed on destruction.
struct ScratchDir {
  std::filesystem::path dir;
  explicit ScratchDir(const char* name)
      : dir(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~ScratchDir() { std::filesystem::remove_all(dir); }
};

/// Builds a pseudo-random MIG with the given number of PIs and (attempted)
/// gates; gate fanins are random signals over already-created nodes, so the
/// result is a valid topologically ordered network.  Some creations may be
/// absorbed by structural hashing or the trivial rules.
inline mig::Mig random_mig(uint32_t num_pis, uint32_t num_gates, uint32_t num_pos,
                           uint32_t seed) {
  std::mt19937 rng(seed);
  mig::Mig m;
  std::vector<mig::Signal> pool;
  pool.push_back(m.get_constant(false));
  for (uint32_t i = 0; i < num_pis; ++i) pool.push_back(m.create_pi());

  for (uint32_t g = 0; g < num_gates; ++g) {
    auto pick = [&]() {
      const auto s = pool[rng() % pool.size()];
      return (rng() & 1) != 0 ? !s : s;
    };
    const auto s = m.create_maj(pick(), pick(), pick());
    pool.push_back(s);
  }
  for (uint32_t o = 0; o < num_pos; ++o) {
    const auto s = pool[pool.size() - 1 - (rng() % std::min<size_t>(pool.size(), 8))];
    m.create_po((rng() & 1) != 0 ? !s : s);
  }
  return m;
}

}  // namespace mighty::testutil
