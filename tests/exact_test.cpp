#include "exact/exact_synthesis.hpp"

#include <gtest/gtest.h>

#include <random>

#include "mig/simulation.hpp"
#include "npn/npn.hpp"

namespace mighty::exact {
namespace {

using tt::TruthTable;

TEST(ChainTest, TrivialChains) {
  const auto c0 = trivial_chain(TruthTable::constant(3, false));
  ASSERT_TRUE(c0.has_value());
  EXPECT_EQ(c0->size(), 0u);
  EXPECT_EQ(c0->simulate(), TruthTable::constant(3, false));

  const auto c1 = trivial_chain(TruthTable::constant(3, true));
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->simulate(), TruthTable::constant(3, true));

  const auto px = trivial_chain(TruthTable::projection(4, 2));
  ASSERT_TRUE(px.has_value());
  EXPECT_EQ(px->simulate(), TruthTable::projection(4, 2));

  const auto pnx = trivial_chain(~TruthTable::projection(4, 1));
  ASSERT_TRUE(pnx.has_value());
  EXPECT_EQ(pnx->simulate(), ~TruthTable::projection(4, 1));

  EXPECT_FALSE(trivial_chain(TruthTable(2, 0x8)).has_value());
}

TEST(ChainTest, SerializationRoundTrip) {
  MigChain chain;
  chain.num_vars = 3;
  chain.steps.push_back({{make_ref_lit(1, false), make_ref_lit(2, true), make_ref_lit(3, false)}});
  chain.steps.push_back({{make_ref_lit(0, false), make_ref_lit(4, false), make_ref_lit(2, false)}});
  chain.output = make_ref_lit(5, true);
  const auto back = MigChain::from_string(chain.to_string());
  EXPECT_EQ(back, chain);
}

TEST(ChainTest, InstantiateMatchesSimulation) {
  // Chain for <x1 !x2 x3>.
  MigChain chain;
  chain.num_vars = 3;
  chain.steps.push_back({{make_ref_lit(1, false), make_ref_lit(2, true), make_ref_lit(3, false)}});
  chain.output = make_ref_lit(4, false);

  mig::Mig m;
  const auto pis = m.create_pis(3);
  m.create_po(chain.instantiate(m, pis));
  EXPECT_EQ(mig::output_truth_tables(m)[0], chain.simulate());
}

TEST(ChainTest, DepthOfFullAdderSumChain) {
  // carry = <abc>; mid = <ab!c>; sum = <!carry mid c> -- depth 2 (Fig. 1).
  MigChain chain;
  chain.num_vars = 3;
  chain.steps.push_back({{make_ref_lit(1, false), make_ref_lit(2, false), make_ref_lit(3, false)}});
  chain.steps.push_back({{make_ref_lit(1, false), make_ref_lit(2, false), make_ref_lit(3, true)}});
  chain.steps.push_back({{make_ref_lit(4, true), make_ref_lit(5, false), make_ref_lit(3, false)}});
  chain.output = make_ref_lit(6, false);
  EXPECT_EQ(chain.depth(), 2u);
  EXPECT_EQ(chain.simulate(), TruthTable::projection(3, 0) ^ TruthTable::projection(3, 1) ^
                                  TruthTable::projection(3, 2));
}

TEST(ExactSynthesisTest, SingleGateFunctions) {
  // AND needs one gate.
  const auto and2 = TruthTable::projection(2, 0) & TruthTable::projection(2, 1);
  const auto r = synthesize_minimum_mig(and2);
  ASSERT_EQ(r.status, SynthesisStatus::success);
  EXPECT_EQ(r.chain.size(), 1u);

  // MAJ needs one gate.
  const auto maj3 = TruthTable::maj(TruthTable::projection(3, 0), TruthTable::projection(3, 1),
                                    TruthTable::projection(3, 2));
  const auto rm = synthesize_minimum_mig(maj3);
  ASSERT_EQ(rm.status, SynthesisStatus::success);
  EXPECT_EQ(rm.chain.size(), 1u);
}

TEST(ExactSynthesisTest, XorSizes) {
  // The optimal MIG for x1 ^ x2 has 3 gates; for x1 ^ x2 ^ x3 also 3 (the
  // full-adder sum structure of Fig. 1).
  const auto xor2 = TruthTable::projection(2, 0) ^ TruthTable::projection(2, 1);
  const auto r2 = synthesize_minimum_mig(xor2);
  ASSERT_EQ(r2.status, SynthesisStatus::success);
  EXPECT_EQ(r2.chain.size(), 3u);

  const auto xor3 = TruthTable::projection(3, 0) ^ TruthTable::projection(3, 1) ^
                    TruthTable::projection(3, 2);
  const auto r3 = synthesize_minimum_mig(xor3);
  ASSERT_EQ(r3.status, SynthesisStatus::success);
  EXPECT_EQ(r3.chain.size(), 3u);
}

TEST(ExactSynthesisTest, OutputComplementDoesNotChangeSize) {
  std::mt19937 rng(3);
  for (int i = 0; i < 5; ++i) {
    const TruthTable f(3, rng() & 0xff);
    if (trivial_chain(f)) continue;
    const auto r = synthesize_minimum_mig(f);
    const auto rc = synthesize_minimum_mig(~f);
    ASSERT_EQ(r.status, SynthesisStatus::success);
    ASSERT_EQ(rc.status, SynthesisStatus::success);
    EXPECT_EQ(r.chain.size(), rc.chain.size());
  }
}

TEST(ExactSynthesisTest, NpnEquivalentFunctionsHaveSameSize) {
  std::mt19937 rng(4);
  const auto perms = npn::all_permutations(3);
  for (int i = 0; i < 3; ++i) {
    const TruthTable f(3, rng() & 0xff);
    if (trivial_chain(f)) continue;
    npn::Transform t;
    t.num_vars = 3;
    t.perm = perms[rng() % perms.size()];
    t.input_negations = static_cast<uint8_t>(rng() & 7);
    t.output_negation = (rng() & 1) != 0;
    const auto g = npn::apply(f, t);
    const auto rf = synthesize_minimum_mig(f);
    const auto rg = synthesize_minimum_mig(g);
    ASSERT_EQ(rf.status, SynthesisStatus::success);
    ASSERT_EQ(rg.status, SynthesisStatus::success);
    EXPECT_EQ(rf.chain.size(), rg.chain.size());
  }
}

// Every 3-variable NPN class synthesizes successfully with both encoders and
// the two agree on the minimum size.
class EncoderAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EncoderAgreementTest, OnehotAndSmtAgree) {
  const auto classes = npn::enumerate_classes(3);
  const auto& f = classes[static_cast<size_t>(GetParam())];

  SynthesisOptions onehot;
  onehot.encoder = EncoderKind::onehot;
  SynthesisOptions smt;
  smt.encoder = EncoderKind::smt;

  const auto r1 = synthesize_minimum_mig(f, onehot);
  const auto r2 = synthesize_minimum_mig(f, smt);
  ASSERT_EQ(r1.status, SynthesisStatus::success);
  ASSERT_EQ(r2.status, SynthesisStatus::success);
  EXPECT_EQ(r1.chain.size(), r2.chain.size());
  EXPECT_EQ(r1.chain.simulate(), f);
  EXPECT_EQ(r2.chain.simulate(), f);
}

INSTANTIATE_TEST_SUITE_P(All3VarClasses, EncoderAgreementTest, ::testing::Range(0, 14));

TEST(ExactSynthesisTest, TimeoutIsReported) {
  // The 4-input parity with a conflict budget of 1 cannot complete.
  const auto parity = TruthTable(4, 0x6996);
  SynthesisOptions options;
  options.conflict_limit = 1;
  const auto r = synthesize_minimum_mig(parity, options);
  EXPECT_EQ(r.status, SynthesisStatus::timeout);
}

TEST(DepthSynthesisTest, SimpleDepths) {
  // Single-gate functions have depth 1.
  const auto and2 = TruthTable::projection(2, 0) & TruthTable::projection(2, 1);
  const auto r1 = synthesize_minimum_depth_mig(and2);
  ASSERT_EQ(r1.status, SynthesisStatus::success);
  EXPECT_EQ(r1.depth, 1u);

  // XOR2 has depth 2.
  const auto xor2 = TruthTable::projection(2, 0) ^ TruthTable::projection(2, 1);
  const auto r2 = synthesize_minimum_depth_mig(xor2);
  ASSERT_EQ(r2.status, SynthesisStatus::success);
  EXPECT_EQ(r2.depth, 2u);

  // XOR3 has depth 2 (Fig. 1).
  const auto xor3 = TruthTable::projection(3, 0) ^ TruthTable::projection(3, 1) ^
                    TruthTable::projection(3, 2);
  const auto r3 = synthesize_minimum_depth_mig(xor3);
  ASSERT_EQ(r3.status, SynthesisStatus::success);
  EXPECT_EQ(r3.depth, 2u);
}

TEST(DepthSynthesisTest, TrivialFunctionsHaveDepthZero) {
  const auto r = synthesize_minimum_depth_mig(TruthTable::projection(4, 3));
  ASSERT_EQ(r.status, SynthesisStatus::success);
  EXPECT_EQ(r.depth, 0u);
}

TEST(DepthSynthesisTest, DepthNeverExceedsSizeOptimalDepth) {
  std::mt19937 rng(9);
  for (int i = 0; i < 4; ++i) {
    const TruthTable f(3, rng() & 0xff);
    const auto rs = synthesize_minimum_mig(f);
    const auto rd = synthesize_minimum_depth_mig(f);
    ASSERT_EQ(rs.status, SynthesisStatus::success);
    ASSERT_EQ(rd.status, SynthesisStatus::success);
    EXPECT_LE(rd.depth, rs.chain.depth());
    // The depth-table path returns witnesses over four variables.
    EXPECT_EQ(rd.chain.simulate(), f.extend(rd.chain.num_vars));
  }
}

TEST(DepthSynthesisTest, SatTreeAgreesWithDepthTable) {
  // Cross-check the SAT tree formulation against the function-space table on
  // shallow functions (the SAT instances are small for depth <= 2).
  std::mt19937 rng(21);
  int checked = 0;
  while (checked < 5) {
    const TruthTable f(3, rng() & 0xff);
    DepthSynthesisOptions table_path;
    const auto rt = synthesize_minimum_depth_mig(f, table_path);
    ASSERT_EQ(rt.status, SynthesisStatus::success);
    if (rt.depth > 2) continue;  // keep the SAT instances small
    DepthSynthesisOptions sat_path;
    sat_path.use_sat = true;
    const auto rs = synthesize_minimum_depth_mig(f, sat_path);
    ASSERT_EQ(rs.status, SynthesisStatus::success);
    EXPECT_EQ(rs.depth, rt.depth) << "f=0x" << f.to_hex();
    ++checked;
  }
}

}  // namespace
}  // namespace mighty::exact
