// Integration sweep: every functional-hashing variant on every (width-reduced)
// arithmetic benchmark, through the full paper pipeline
// (generate -> algebraic depth optimization -> rewrite), with equivalence
// checked by random word simulation plus a budgeted SAT proof.

#include <gtest/gtest.h>

#include "cec/cec.hpp"
#include "exact/database.hpp"
#include "gen/arith.hpp"
#include "mig/algebra/algebra.hpp"
#include "opt/rewrite.hpp"

namespace mighty {
namespace {

const exact::Database& db() {
  static const exact::Database instance =
      exact::Database::load_or_build(exact::default_database_path());
  return instance;
}

struct Case {
  const char* name;
  mig::Mig (*make)();
};

mig::Mig small_adder() { return gen::make_adder_n(12); }
mig::Mig small_divisor() { return gen::make_divisor_n(6); }
mig::Mig small_log2() { return gen::make_log2_n(3); }
mig::Mig small_max() { return gen::make_max_n(8); }
mig::Mig small_multiplier() { return gen::make_multiplier_n(6); }
mig::Mig small_sine() { return gen::make_sine_n(6); }
mig::Mig small_sqrt() { return gen::make_sqrt_n(5); }
mig::Mig small_square() { return gen::make_square_n(8); }

const Case kCases[] = {
    {"Adder", small_adder},         {"Divisor", small_divisor},
    {"Log2", small_log2},           {"Max", small_max},
    {"Multiplier", small_multiplier}, {"Sine", small_sine},
    {"Sqrt", small_sqrt},           {"Square", small_square},
};

class SuiteVariantTest
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(SuiteVariantTest, PipelinePreservesFunction) {
  const auto& benchmark = kCases[std::get<0>(GetParam())];
  const auto& variant = std::get<1>(GetParam());

  const auto original = benchmark.make();
  const auto baseline = algebra::depth_optimize(original);
  opt::RewriteStats stats;
  const auto optimized = opt::functional_hashing(
      baseline, db(), opt::variant_params(variant), &stats);

  // Strong random filter first (cheap), then a budgeted SAT proof; the
  // budget is generous for these widths except multiplier-like miters, where
  // unknown is acceptable as long as simulation found no difference.
  ASSERT_TRUE(cec::random_simulation_equal(original, optimized, 64, 2025))
      << benchmark.name << " " << variant;
  cec::CecOptions options;
  options.conflict_limit = 50000;
  const auto r = cec::check_equivalence(original, optimized, options);
  EXPECT_NE(r.status, cec::CecStatus::not_equivalent)
      << benchmark.name << " " << variant;

  // Size must not explode; the global bottom-up variant gets extra slack
  // because its tree-style candidate accounting ignores sharing and can
  // duplicate logic across fanout boundaries -- the very effect that
  // motivates the paper's fanout-free-region partitioning (Sec. IV-C), and
  // the reason Table III evaluates BF rather than B.
  const uint32_t slack =
      variant == "B" ? stats.size_before / 4 : stats.size_before / 10;
  EXPECT_LE(stats.size_after, stats.size_before + slack)
      << benchmark.name << " " << variant;
  if (variant.find('D') != std::string::npos) {
    EXPECT_LE(stats.depth_after, stats.depth_before)
        << benchmark.name << " " << variant;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteVariantTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values("TF", "T", "TFD", "TD", "BF", "B")),
    [](const ::testing::TestParamInfo<SuiteVariantTest::ParamType>& info) {
      return std::string(kCases[std::get<0>(info.param)].name) + "_" +
             std::get<1>(info.param);
    });

TEST(SuitePipelineTest, DepthOptimizationNeverIncreasesDepth) {
  for (const auto& benchmark : kCases) {
    const auto original = benchmark.make();
    const auto optimized = algebra::depth_optimize(original);
    EXPECT_LE(optimized.depth(), original.depth()) << benchmark.name;
  }
}

TEST(SuitePipelineTest, RewritingAfterRewritingConverges) {
  // A second pass must not undo the first one's gains.
  const auto baseline = algebra::depth_optimize(gen::make_multiplier_n(8));
  opt::RewriteStats first, second;
  const auto once = opt::functional_hashing(baseline, db(), opt::variant_params("TF"),
                                            &first);
  const auto twice = opt::functional_hashing(once, db(), opt::variant_params("TF"),
                                             &second);
  EXPECT_LE(second.size_after, first.size_after);
  EXPECT_TRUE(cec::random_simulation_equal(baseline, twice, 32, 5));
}

}  // namespace
}  // namespace mighty
