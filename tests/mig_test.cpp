#include "mig/mig.hpp"

#include <gtest/gtest.h>

#include <random>

#include "mig/simulation.hpp"
#include "test_util.hpp"
#include "tt/truth_table.hpp"

namespace mighty::mig {
namespace {

using tt::TruthTable;

TEST(MigTest, EmptyNetwork) {
  Mig m;
  EXPECT_EQ(m.num_nodes(), 1u);  // the constant node
  EXPECT_EQ(m.num_pis(), 0u);
  EXPECT_EQ(m.num_gates(), 0u);
  EXPECT_TRUE(m.is_constant(0));
}

TEST(MigTest, ConstantSignals) {
  Mig m;
  EXPECT_EQ(m.get_constant(false).index(), 0u);
  EXPECT_FALSE(m.get_constant(false).is_complemented());
  EXPECT_TRUE(m.get_constant(true).is_complemented());
  EXPECT_EQ(!m.get_constant(false), m.get_constant(true));
}

TEST(MigTest, SignalOperations) {
  const Signal s(5, false);
  EXPECT_EQ(s.index(), 5u);
  EXPECT_FALSE(s.is_complemented());
  EXPECT_TRUE((!s).is_complemented());
  EXPECT_EQ(!!s, s);
  EXPECT_EQ(s ^ true, !s);
  EXPECT_EQ(s ^ false, s);
}

TEST(MigTest, PiCreation) {
  Mig m;
  const auto pis = m.create_pis(3);
  EXPECT_EQ(m.num_pis(), 3u);
  EXPECT_EQ(m.num_nodes(), 4u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(m.is_pi(pis[i].index()));
    EXPECT_EQ(m.pi_index(pis[i].index()), i);
  }
}

TEST(MigTest, TrivialRules) {
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  EXPECT_EQ(m.create_maj(a, a, b), a);     // <aab> = a
  EXPECT_EQ(m.create_maj(a, !a, b), b);    // <a!ab> = b
  EXPECT_EQ(m.create_maj(b, a, a), a);     // symmetry
  EXPECT_EQ(m.create_maj(!a, b, a), b);
  EXPECT_EQ(m.num_gates(), 0u);
  // <0 1 x> = x via the index-equality rule on constants.
  EXPECT_EQ(m.create_maj(m.get_constant(false), m.get_constant(true), a), a);
}

TEST(MigTest, StructuralHashingSharesNodes) {
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_maj(c, a, b);  // permuted operands
  const auto g3 = m.create_maj(b, c, a);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(g1, g3);
  EXPECT_EQ(m.num_gates(), 1u);
}

TEST(MigTest, SelfDualityNormalization) {
  // <!a !b c> should create the same node as <a b !c> with complemented output.
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto g1 = m.create_maj(!a, !b, c);
  const auto g2 = m.create_maj(a, b, !c);
  EXPECT_EQ(m.num_gates(), 1u);
  EXPECT_EQ(g1.index(), g2.index());
  EXPECT_NE(g1.is_complemented(), g2.is_complemented());
}

TEST(MigTest, DerivedOperatorsComputeCorrectFunctions) {
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto s = m.create_pi();
  m.create_po(m.create_and(a, b));
  m.create_po(m.create_or(a, b));
  m.create_po(m.create_xor(a, b));
  m.create_po(m.create_ite(s, a, b));
  m.create_po(m.create_xor3(a, b, s));

  const auto tts = output_truth_tables(m);
  const auto ta = TruthTable::projection(3, 0);
  const auto tb = TruthTable::projection(3, 1);
  const auto ts = TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], ta & tb);
  EXPECT_EQ(tts[1], ta | tb);
  EXPECT_EQ(tts[2], ta ^ tb);
  EXPECT_EQ(tts[3], TruthTable::ite(ts, ta, tb));
  EXPECT_EQ(tts[4], ta ^ tb ^ ts);
}

// Fig. 1 of the paper: the full adder has size 3 and depth 2.
TEST(MigTest, FullAdderMatchesFig1) {
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto cin = m.create_pi();
  const auto cout = m.create_maj(a, b, cin);
  const auto sum = m.create_xor3(a, b, cin);
  m.create_po(sum);
  m.create_po(cout);

  EXPECT_EQ(m.count_live_gates(), 3u);
  EXPECT_EQ(m.depth(), 2u);

  const auto tts = output_truth_tables(m);
  const auto ta = TruthTable::projection(3, 0);
  const auto tb = TruthTable::projection(3, 1);
  const auto tc = TruthTable::projection(3, 2);
  EXPECT_EQ(tts[0], ta ^ tb ^ tc);
  EXPECT_EQ(tts[1], TruthTable::maj(ta, tb, tc));
}

TEST(MigTest, LevelsAndDepth) {
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_and(g1, a);
  m.create_po(g2);
  const auto levels = m.compute_levels();
  EXPECT_EQ(levels[a.index()], 0u);
  EXPECT_EQ(levels[g1.index()], 1u);
  EXPECT_EQ(levels[g2.index()], 2u);
  EXPECT_EQ(m.depth(), 2u);
}

TEST(MigTest, FanoutCounts) {
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_and(g1, a);
  const auto g3 = m.create_or(g1, b);
  m.create_po(g2);
  m.create_po(g3);
  const auto fanout = m.compute_fanout_counts();
  EXPECT_EQ(fanout[g1.index()], 2u);
  EXPECT_EQ(fanout[a.index()], 2u);
  EXPECT_EQ(fanout[g2.index()], 1u);
}

TEST(MigTest, CleanupDropsDeadGates) {
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto used = m.create_maj(a, b, c);
  m.create_maj(a, !b, c);  // dead gate
  m.create_po(used);
  EXPECT_EQ(m.num_gates(), 2u);
  EXPECT_EQ(m.count_live_gates(), 1u);

  const Mig clean = m.cleanup();
  EXPECT_EQ(clean.num_gates(), 1u);
  EXPECT_EQ(clean.num_pis(), 3u);
  EXPECT_EQ(clean.num_pos(), 1u);
}

TEST(MigTest, CleanupPreservesFunction) {
  for (uint32_t seed = 0; seed < 20; ++seed) {
    const auto m = testutil::random_mig(5, 30, 4, seed);
    const auto clean = m.cleanup();
    EXPECT_EQ(output_truth_tables(m), output_truth_tables(clean)) << "seed " << seed;
  }
}

TEST(MigTest, WordSimulationMatchesTruthTables) {
  const auto m = testutil::random_mig(4, 20, 3, 99);
  // Drive PIs with their projection patterns; word simulation must equal
  // truth-table simulation.
  std::vector<uint64_t> pi_words;
  for (uint32_t i = 0; i < 4; ++i) {
    pi_words.push_back(tt::TruthTable::var_mask(i) & tt::TruthTable::length_mask(4));
  }
  const auto words = simulate_words(m, pi_words);
  const auto tts = simulate_truth_tables(m);
  for (uint32_t n = 0; n < m.num_nodes(); ++n) {
    EXPECT_EQ(words[n] & tt::TruthTable::length_mask(4), tts[n].bits());
  }
}

TEST(MigTest, SimulationSelfDualProperty) {
  // Complementing all PI words complements all gate outputs (majority network
  // self-duality) when the network has no constant fanins.
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto d = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_maj(b, c, d);
  const auto g3 = m.create_maj(g1, g2, a);
  m.create_po(g3);

  std::mt19937_64 rng(5);
  const std::vector<uint64_t> w{rng(), rng(), rng(), rng()};
  const std::vector<uint64_t> wn{~w[0], ~w[1], ~w[2], ~w[3]};
  const auto r1 = simulate_words(m, w);
  const auto r2 = simulate_words(m, wn);
  EXPECT_EQ(r2[g3.index()], ~r1[g3.index()]);
}

TEST(MigTest, PoPolarityRespectedInOutputTables) {
  Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto g = m.create_and(a, b);
  m.create_po(!g);
  const auto tts = output_truth_tables(m);
  EXPECT_EQ(tts[0], ~(TruthTable::projection(2, 0) & TruthTable::projection(2, 1)));
}

}  // namespace
}  // namespace mighty::mig
