// Lint fixture: nondeterministic-iteration MUST fire.  Hash-order iteration
// feeds the result, so the output depends on the hasher, the libstdc++
// version, and insertion history — which breaks the bit-identical
// determinism contract (threads=N must equal threads=1).

#include <string>
#include <unordered_map>

namespace fixture {

inline int sum_counts(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [name, value] : counts) {
    total += value * static_cast<int>(name.size());
  }
  return total;
}

inline int first_value(const std::unordered_map<std::string, int>& table) {
  for (auto it = table.begin(); it != table.end(); ++it) {
    return it->second;
  }
  return 0;
}

}  // namespace fixture
