// Lint fixture: nonatomic-persist MUST fire on both raw write paths —
// std::ofstream and fopen().  Either truncates the target in place, so a
// crash mid-write leaves a partial artifact that a concurrent reader can
// observe.

#include <cstdio>
#include <fstream>
#include <string>

namespace fixture {

inline void dump_text(const std::string& path, const std::string& body) {
  std::ofstream os(path);
  os << body;
}

inline void dump_binary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f != nullptr) std::fclose(f);
}

}  // namespace fixture
