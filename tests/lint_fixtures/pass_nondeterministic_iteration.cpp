// Lint fixture: positive control for nondeterministic-iteration.  Lookups
// into unordered containers are fine — only visit order is hazardous — and
// ordered traversal goes through a sorted snapshot, the pattern the check's
// message prescribes.

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

inline int lookup(const std::unordered_map<std::string, int>& counts,
                  const std::string& key) {
  const auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}

inline int sum_sorted(const std::unordered_map<std::string, int>& counts) {
  const std::map<std::string, int> sorted(counts.begin(), counts.end());
  int total = 0;
  for (const auto& [name, value] : sorted) {
    total += value * static_cast<int>(name.size());
  }
  return total;
}

inline int sum_vector(const std::vector<int>& items) {
  int total = 0;
  for (const int v : items) total += v;
  return total;
}

}  // namespace fixture
