// Lint fixture: raw-sync-primitive MUST fire.  A std::mutex declared outside
// src/util/mutex.* is invisible to -Wthread-safety and to the Debug
// lock-order checker.  Never compiled — linted as src/lint_fixture.cpp by
// run_case.cmake.

#include <mutex>

namespace fixture {

struct Counter {
  int bump() {
    std::lock_guard<std::mutex> hold(guard);
    return ++value;
  }

  std::mutex guard;
  int value = 0;
};

}  // namespace fixture
