// Lint fixture: positive control for nonatomic-persist.  Reading is free;
// persistent writes go through util::write_file_atomically (temp file +
// atomic rename), so readers never observe a half-written state.

#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"

namespace fixture {

inline std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

inline void persist(const std::string& path, const std::string& body) {
  util::write_file_atomically(path, [&](std::ostream& os) { os << body; });
}

}  // namespace fixture
