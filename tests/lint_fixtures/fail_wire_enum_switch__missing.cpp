// Lint fixture: wire-enum-switch MUST fire on missing enumerators.  The
// switch below compiles clean (it just falls through for io_error) while
// ignoring a real wire value — the check forces every enumerator of a frozen
// wire enum to appear.

namespace fixture {

enum class ErrorCode : unsigned {
  ok = 0,
  parse_error = 1,
  io_error = 2,
};

inline const char* name_of(ErrorCode code) {
  switch (code) {
    case ErrorCode::ok: return "ok";
    case ErrorCode::parse_error: return "parse_error";
  }
  return "?";
}

}  // namespace fixture
