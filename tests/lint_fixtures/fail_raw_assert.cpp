// Lint fixture: raw-assert MUST fire.  assert() compiles out under NDEBUG —
// exactly the build the benches and any production binary run — so the
// invariant below would only ever be checked in the Debug CI leg.

#include <cassert>

namespace fixture {

inline int clamp_positive(int v) {
  assert(v >= 0);
  return v < 0 ? 0 : v;
}

}  // namespace fixture
