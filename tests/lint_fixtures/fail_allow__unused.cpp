// Lint fixture: a stale suppression MUST be flagged.  The comment below
// claims to cover the next code line, but that line triggers nothing — the
// drifted allow is reported under [allow] so dead suppressions cannot rot in
// place and silently swallow a future real finding.

namespace fixture {

inline int identity(int v) {
  // mighty-lint: allow(raw-assert): the guarded code was removed, this allow now covers nothing
  return v;
}

}  // namespace fixture
