// Lint fixture: positive control for raw-sync-primitive.  Locking goes
// through the capability-annotated util::Mutex layer; identifiers that merely
// contain the raw type names (mutex_count) carry no std:: qualifier and must
// not trip the matcher.

#include "util/mutex.hpp"

namespace fixture {

struct Counter {
  int bump() {
    util::LockGuard hold(guard);
    return ++value;
  }

  util::Mutex guard{util::LockRank::leaf};
  int value = 0;
  int mutex_count = 0;
};

}  // namespace fixture
