// Lint fixture: positive control for raw-assert.  MIGHTY_ASSERT is the
// project macro; member and qualified spellings of `assert` are not the
// <cassert> macro and must not be flagged.

#include "util/assert.hpp"

namespace fixture {

struct Checker {
  void check(bool ok);
};

inline int clamp_positive(Checker& checker, int v) {
  MIGHTY_ASSERT(v >= 0);
  checker.check(v >= 0);
  return v < 0 ? 0 : v;
}

inline void qualified_spellings(Checker& c) {
  c.assert(true);
  Checker::assert(true);
}

}  // namespace fixture
