// Lint fixture: positive control for the suppression path.  Both placements
// appear — trailing on the offending line, and standalone on the line above
// it — each with the required reason.  Expected outcome: zero findings (both
// diagnostics suppressed) and zero stale-allow reports (both allows used).

#include <cassert>
#include <fstream>
#include <string>

namespace fixture {

inline void checked(int v) {
  assert(v >= 0);  // mighty-lint: allow(raw-assert): fixture exercising the trailing-comment suppression path
}

inline void probe(const std::string& path) {
  // mighty-lint: allow(nonatomic-persist): fixture exercising the standalone-comment suppression path
  std::ofstream os(path);
  os << "x";
}

}  // namespace fixture
