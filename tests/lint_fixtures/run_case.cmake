# Drives one lint fixture case at ctest time.
#
#   cmake -DLINT=<mighty-lint> -DCASE=<case.cpp> -DEXPECT=fail|pass
#         -DCHECK=<check-name> -P run_case.cmake
#
# Every fixture is linted as though it lived at src/lint_fixture.cpp (--as),
# so path-scoped checks (raw-assert, nondeterministic-iteration) fire the
# same way they do on production sources.  An EXPECT=fail case must exit
# nonzero AND the output must carry the expected check's [tag] — that is the
# proof the check is live, not just that *something* complained; an
# EXPECT=pass case must exit 0.  If a check ever rots into a no-op, its
# fail_ fixture lints clean and ctest goes red.

foreach(var LINT CASE EXPECT CHECK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_case.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${LINT} --as src/lint_fixture.cpp ${CASE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "pass")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "positive control ${CASE} produced diagnostics (exit ${rc}):\n${out}${err}")
  endif()
else()
  if(rc EQUAL 0)
    message(FATAL_ERROR
      "${CASE} linted clean — check '${CHECK}' has rotted into a no-op:\n${out}")
  endif()
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
      "${CASE} failed with exit ${rc} (usage/IO error), not a finding:\n${out}${err}")
  endif()
  if(NOT out MATCHES "\\[${CHECK}\\]")
    message(FATAL_ERROR
      "${CASE} produced diagnostics, but none tagged [${CHECK}] — it is "
      "failing for the wrong reason:\n${out}")
  endif()
endif()
