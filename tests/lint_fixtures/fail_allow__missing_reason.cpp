// Lint fixture: the suppression syntax REQUIRES a reason.  A bare
// allow(check) and an allow naming an unknown check must each produce a
// diagnostic under [allow] — and must NOT suppress the underlying finding.

#include <cassert>

namespace fixture {

inline void unreasoned(int v) {
  assert(v >= 0);  // mighty-lint: allow(raw-assert)
}

inline void unknown_check(int v) {
  assert(v > 0);  // mighty-lint: allow(no-such-check): the registry has no check by this name
}

}  // namespace fixture
