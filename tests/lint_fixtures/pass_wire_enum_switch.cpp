// Lint fixture: positive control for wire-enum-switch.  The prescribed
// shape: validate the raw byte BEFORE the switch, then switch exhaustively
// with no default (so -Wswitch also flags appended values at compile time).
// Enums outside the watched set may use default: freely.

namespace fixture {

enum class Tag : unsigned char {
  hello = 0x01,
  submit = 0x02,
  shutdown = 0x07,
};

inline bool is_known_tag(unsigned char raw) {
  switch (static_cast<Tag>(raw)) {
    case Tag::hello:
    case Tag::submit:
    case Tag::shutdown:
      return true;
  }
  return false;
}

enum class Mode { fast, thorough };

inline int cost(Mode mode) {
  switch (mode) {
    case Mode::fast: return 1;
    default: return 10;
  }
}

}  // namespace fixture
