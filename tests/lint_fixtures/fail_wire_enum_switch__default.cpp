// Lint fixture: wire-enum-switch MUST fire on the default: label.  Tag is a
// watched wire-enum name; docs/protocol.md freezes its values append-only,
// and a default: silently swallows every newly appended frame tag.

namespace fixture {

enum class Tag : unsigned char {
  hello = 0x01,
  submit = 0x02,
  shutdown = 0x07,
};

inline int dispatch(Tag tag) {
  switch (tag) {
    case Tag::hello: return 1;
    case Tag::submit: return 2;
    case Tag::shutdown: return 3;
    default: return -1;
  }
}

}  // namespace fixture
