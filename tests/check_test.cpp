#include "check/check.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "exact/database.hpp"
#include "gen/arith.hpp"
#include "mig/ffr.hpp"
#include "mig/mig.hpp"
#include "mig/shard.hpp"
#include "test_util.hpp"

namespace mighty::check {
namespace {

/// A small deterministic network with two regions and a cross-region edge:
/// g1 = <a,b,c> drives a PO *and* feeds g2 = <a,b,g1>, so g1 is a
/// multi-fanout root and g2 a single-gate root region fed by g1's region.
mig::Mig two_region_mig() {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_maj(a, b, g1);
  m.create_po(g1);
  m.create_po(g2);
  return m;
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream os(path);
  os << text;
}

// --- clean inputs validate ---------------------------------------------------

TEST(CheckStructureTest, CleanNetworksValidate) {
  for (uint32_t seed = 0; seed < 8; ++seed) {
    const auto m = testutil::random_mig(6, 40, 3, seed);
    const auto report = validate(m);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
  }
  EXPECT_TRUE(validate_at(gen::make_adder_n(8), /*full=*/true).ok());
  EXPECT_TRUE(validate_at(two_region_mig(), /*full=*/true).ok());
}

TEST(CheckStructureTest, EmptyViewIsCorrupt) {
  const MigView empty;
  const auto report = validate_structure(empty);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::terminal_fanin_corrupt));
}

// --- corrupted-MIG negative suite: each diagnostic fires with the right node

TEST(CheckStructureTest, FaninOutOfRange) {
  auto view = MigView::of(two_region_mig());
  const uint32_t gate = 4;  // g1: node 0 constant, 1..3 PIs
  view.fanins[gate][1] = mig::Signal(999, false);
  const auto report = validate_structure(view);
  ASSERT_TRUE(report.has(Code::fanin_out_of_range)) << report.summary();
  EXPECT_EQ(report.find(Code::fanin_out_of_range)->node, gate);
}

TEST(CheckStructureTest, FaninSelfReference) {
  auto view = MigView::of(two_region_mig());
  const uint32_t gate = 5;  // g2
  view.fanins[gate][2] = mig::Signal(gate, false);
  const auto report = validate_structure(view);
  ASSERT_TRUE(report.has(Code::fanin_self_reference)) << report.summary();
  EXPECT_EQ(report.find(Code::fanin_self_reference)->node, gate);
}

TEST(CheckStructureTest, FaninNotTopological) {
  auto view = MigView::of(two_region_mig());
  const uint32_t gate = 4;           // g1 ...
  view.fanins[gate][0] = mig::Signal(5, false);  // ... fed by the later g2
  const auto report = validate_structure(view);
  ASSERT_TRUE(report.has(Code::fanin_not_topological)) << report.summary();
  EXPECT_EQ(report.find(Code::fanin_not_topological)->node, gate);
}

TEST(CheckStructureTest, FaninNotSorted) {
  auto view = MigView::of(two_region_mig());
  const uint32_t gate = 4;
  std::swap(view.fanins[gate][0], view.fanins[gate][2]);
  const auto report = validate_structure(view);
  ASSERT_TRUE(report.has(Code::fanin_not_sorted)) << report.summary();
  EXPECT_EQ(report.find(Code::fanin_not_sorted)->node, gate);
}

TEST(CheckStructureTest, FaninDuplicateIndex) {
  auto view = MigView::of(two_region_mig());
  const uint32_t gate = 4;
  view.fanins[gate][1] = view.fanins[gate][0];
  const auto report = validate_structure(view);
  ASSERT_TRUE(report.has(Code::fanin_duplicate_index)) << report.summary();
  EXPECT_EQ(report.find(Code::fanin_duplicate_index)->node, gate);
}

TEST(CheckStructureTest, FaninPolarityNotNormalized) {
  auto view = MigView::of(two_region_mig());
  const uint32_t gate = 4;
  view.fanins[gate][0] = !view.fanins[gate][0];
  view.fanins[gate][1] = !view.fanins[gate][1];
  const auto report = validate_structure(view);
  ASSERT_TRUE(report.has(Code::fanin_polarity_not_normalized)) << report.summary();
  EXPECT_EQ(report.find(Code::fanin_polarity_not_normalized)->node, gate);
}

TEST(CheckStructureTest, TerminalFaninCorrupt) {
  auto view = MigView::of(two_region_mig());
  view.fanins[2][0] = mig::Signal(1, true);  // scribble over PI b
  const auto report = validate_structure(view);
  ASSERT_TRUE(report.has(Code::terminal_fanin_corrupt)) << report.summary();
  EXPECT_EQ(report.find(Code::terminal_fanin_corrupt)->node, 2u);
}

TEST(CheckStructureTest, PoTargetOutOfRange) {
  auto view = MigView::of(two_region_mig());
  view.outputs[1] = mig::Signal(77, false);
  const auto report = validate_structure(view);
  ASSERT_TRUE(report.has(Code::po_target_out_of_range)) << report.summary();
  EXPECT_EQ(report.find(Code::po_target_out_of_range)->node, 1u);  // PO position
}

// --- derived-data consistency ------------------------------------------------

TEST(CheckConsistencyTest, LevelMismatchNamesTheNode) {
  const auto m = two_region_mig();
  const auto view = MigView::of(m);
  auto levels = m.compute_levels();
  EXPECT_TRUE(validate_levels(view, levels).ok());
  levels[5] += 3;
  const auto report = validate_levels(view, levels);
  ASSERT_TRUE(report.has(Code::level_mismatch)) << report.summary();
  EXPECT_EQ(report.find(Code::level_mismatch)->node, 5u);

  levels.pop_back();  // wrong-size arrays are a single global diagnostic
  const auto sized = validate_levels(view, levels);
  ASSERT_TRUE(sized.has(Code::level_mismatch));
  EXPECT_EQ(sized.find(Code::level_mismatch)->node, kNoNode);
}

TEST(CheckConsistencyTest, FanoutMismatchNamesTheNode) {
  const auto m = two_region_mig();
  const auto view = MigView::of(m);
  auto fanouts = m.compute_fanout_counts();
  EXPECT_TRUE(validate_fanouts(view, fanouts).ok());
  fanouts[4] = 0;  // g1 actually has fanout 2 (PO + g2)
  const auto report = validate_fanouts(view, fanouts);
  ASSERT_TRUE(report.has(Code::fanout_mismatch)) << report.summary();
  EXPECT_EQ(report.find(Code::fanout_mismatch)->node, 4u);
}

// --- FFR partition -----------------------------------------------------------

TEST(CheckPartitionTest, CleanPartitionValidates) {
  const auto m = testutil::random_mig(6, 40, 3, 7);
  const auto partition = ffr::compute_ffrs(m);
  const auto report = validate_partition(m, partition);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(CheckPartitionTest, UnmarkedRootIsReported) {
  const auto m = two_region_mig();
  auto partition = ffr::compute_ffrs(m);
  ASSERT_FALSE(partition.roots.empty());
  partition.is_root[partition.roots[0]] = false;
  const auto report = validate_partition(m, partition);
  ASSERT_TRUE(report.has(Code::region_root_not_root)) << report.summary();
  EXPECT_EQ(report.find(Code::region_root_not_root)->node, partition.roots[0]);
}

TEST(CheckPartitionTest, UnsortedRootsAreReported) {
  const auto m = two_region_mig();
  auto partition = ffr::compute_ffrs(m);
  ASSERT_GE(partition.roots.size(), 2u);
  std::swap(partition.roots[0], partition.roots[1]);
  const auto report = validate_partition(m, partition);
  EXPECT_TRUE(report.has(Code::region_roots_not_topological)) << report.summary();
}

TEST(CheckPartitionTest, RootMappedElsewhereBreaksMembership) {
  const auto m = two_region_mig();
  auto partition = ffr::compute_ffrs(m);
  partition.region_root[4] = 5;  // root g1 claimed by g2's region
  const auto report = validate_partition(m, partition);
  ASSERT_TRUE(report.has(Code::region_membership_broken)) << report.summary();
  EXPECT_EQ(report.find(Code::region_membership_broken)->node, 4u);
}

TEST(CheckPartitionTest, RegionRootOutOfRange) {
  const auto m = two_region_mig();
  auto partition = ffr::compute_ffrs(m);
  partition.region_root[5] = 1000;
  const auto report = validate_partition(m, partition);
  ASSERT_TRUE(report.has(Code::region_root_out_of_range)) << report.summary();
  EXPECT_EQ(report.find(Code::region_root_out_of_range)->node, 5u);

  partition.region_root.pop_back();  // mismatched arrays: one global error
  const auto sized = validate_partition(m, partition);
  ASSERT_TRUE(sized.has(Code::region_root_out_of_range));
  EXPECT_EQ(sized.find(Code::region_root_out_of_range)->node, kNoNode);
}

// --- shard plans -------------------------------------------------------------

TEST(CheckShardTest, CleanPlanValidates) {
  const auto m = testutil::random_mig(6, 60, 4, 11);
  const auto partition = ffr::compute_ffrs(m);
  for (const uint32_t shards : {1u, 2u, 4u, 16u}) {
    const auto plan = shard::plan_ffr_shards(m, partition, shards);
    const auto report = validate_shard_plan(m, partition, plan);
    EXPECT_TRUE(report.ok()) << "shards=" << shards << "\n" << report.summary();
  }
}

TEST(CheckShardTest, DuplicatedShardOverlaps) {
  const auto m = two_region_mig();
  const auto partition = ffr::compute_ffrs(m);
  auto plan = shard::plan_ffr_shards(m, partition, 2);
  ASSERT_FALSE(plan.shards.empty());
  plan.shards.push_back(plan.shards[0]);
  const auto report = validate_shard_plan(m, partition, plan);
  EXPECT_TRUE(report.has(Code::shard_overlap)) << report.summary();
}

TEST(CheckShardTest, EmptyPlanIsIncomplete) {
  const auto m = two_region_mig();
  const auto partition = ffr::compute_ffrs(m);
  const auto report = validate_shard_plan(m, partition, shard::ShardPlan{});
  ASSERT_TRUE(report.has(Code::shard_incomplete)) << report.summary();
  EXPECT_EQ(report.find(Code::shard_incomplete)->node, 4u);  // first live gate
}

TEST(CheckShardTest, UnsortedNodesAreReported) {
  const auto m = testutil::random_mig(6, 60, 4, 11);
  const auto partition = ffr::compute_ffrs(m);
  auto plan = shard::plan_ffr_shards(m, partition, 1);
  ASSERT_FALSE(plan.shards.empty());
  ASSERT_GE(plan.shards[0].nodes.size(), 2u);
  std::swap(plan.shards[0].nodes.front(), plan.shards[0].nodes.back());
  const auto report = validate_shard_plan(m, partition, plan);
  EXPECT_TRUE(report.has(Code::shard_not_sorted)) << report.summary();
}

TEST(CheckShardTest, ForeignNodeIsReported) {
  const auto m = two_region_mig();
  const auto partition = ffr::compute_ffrs(m);
  auto plan = shard::plan_ffr_shards(m, partition, 1);
  ASSERT_FALSE(plan.shards.empty());
  plan.shards[0].nodes.push_back(4000);
  const auto report = validate_shard_plan(m, partition, plan);
  ASSERT_TRUE(report.has(Code::shard_foreign_node)) << report.summary();
  EXPECT_EQ(report.find(Code::shard_foreign_node)->node, 4000u);
}

TEST(CheckShardTest, WaveOrderDetectsLevelInversion) {
  const auto m = two_region_mig();
  const auto partition = ffr::compute_ffrs(m);
  auto levels = shard::region_levels(m, partition);
  EXPECT_TRUE(validate_wave_order(m, partition, levels).ok());
  // g2's region (root 5) is fed by g1's region (root 4); equal levels break
  // the strictly-increasing wave property.
  levels[4] = levels[5];
  const auto report = validate_wave_order(m, partition, levels);
  ASSERT_TRUE(report.has(Code::wave_order_broken)) << report.summary();
  EXPECT_EQ(report.find(Code::wave_order_broken)->node, 5u);
}

// --- flow report accounting --------------------------------------------------

flow::FlowReport consistent_report() {
  flow::FlowReport report;
  flow::PassStats a;
  a.name = "TF";
  a.oracle_queries = 10;
  a.oracle_answered = 7;
  a.oracle_cache5_hits = 4;
  a.oracle_synthesized = 3;
  a.oracle_failures = 1;
  flow::PassStats b;
  b.name = "BFD";
  b.oracle_queries = 5;
  b.oracle_answered = 5;
  report.passes = {a, b};
  report.accumulate_oracle_totals();
  return report;
}

TEST(CheckReportTest, ConsistentReportValidates) {
  EXPECT_TRUE(validate_report(consistent_report()).ok());
}

TEST(CheckReportTest, RollupMismatchIsReported) {
  auto report = consistent_report();
  report.oracle_queries += 1;
  const auto out = validate_report(report);
  EXPECT_TRUE(out.has(Code::report_rollup_mismatch)) << out.summary();
}

TEST(CheckReportTest, PassCounterConservation) {
  auto report = consistent_report();
  report.passes[1].oracle_answered = 6;  // answered > queries
  report.accumulate_oracle_totals();
  auto out = validate_report(report);
  ASSERT_TRUE(out.has(Code::report_pass_inconsistent)) << out.summary();
  EXPECT_EQ(out.find(Code::report_pass_inconsistent)->node, 1u);  // pass index

  report = consistent_report();
  report.passes[0].oracle_failures = 4;  // failures > syntheses
  report.accumulate_oracle_totals();
  out = validate_report(report);
  ASSERT_TRUE(out.has(Code::report_pass_inconsistent)) << out.summary();
  EXPECT_EQ(out.find(Code::report_pass_inconsistent)->node, 0u);

  report = consistent_report();
  report.passes[0].oracle_cache5_hits = 9;  // cache5 + synthesized > queries
  report.accumulate_oracle_totals();
  EXPECT_TRUE(validate_report(report).has(Code::report_pass_inconsistent));
}

TEST(CheckReportTest, TallyConservation) {
  const auto report = consistent_report();
  opt::OracleTally tally;
  tally.queries = report.oracle_queries;
  tally.answered = report.oracle_answered;
  tally.cache5_hits = report.oracle_cache5_hits;
  tally.synthesized = report.oracle_synthesized;
  tally.failures = report.oracle_failures;
  EXPECT_TRUE(validate_tally(report, tally).ok());
  tally.queries += 2;
  const auto out = validate_tally(report, tally);
  EXPECT_TRUE(out.has(Code::report_tally_mismatch)) << out.summary();
}

// --- cache file lint ---------------------------------------------------------

class CacheLintTest : public ::testing::Test {
protected:
  testutil::ScratchDir scratch{"mighty_check_test"};

  CheckReport lint(const std::string& text) {
    const auto path = scratch.dir / "test.cache";
    write_file(path, text);
    return lint_cache_file(path.string());
  }
};

TEST_F(CacheLintTest, MissingFile) {
  const auto report = lint_cache_file((scratch.dir / "absent.cache").string());
  EXPECT_TRUE(report.has(Code::artifact_io));
}

TEST_F(CacheLintTest, CleanFilePasses) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 3\n"
      "0000ffff fail 20000 17\n"
      "aaaaaaaa ok -1 0 5 0 2\n"
      "e8e8e8e8 ok 20000 137 5 1 12 2 4 6\n");
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
}

TEST_F(CacheLintTest, BadHeader) {
  const auto report = lint("not-a-cache v1 0\n");
  ASSERT_TRUE(report.has(Code::artifact_header)) << report.summary();
  EXPECT_EQ(report.find(Code::artifact_header)->node, 1u);
}

TEST_F(CacheLintTest, MalformedEntryNamesTheLine) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 2\n"
      "aaaaaaaa ok -1 0 5 0 2\n"
      "garbage\n");
  ASSERT_TRUE(report.has(Code::artifact_entry)) << report.summary();
  EXPECT_EQ(report.find(Code::artifact_entry)->node, 3u);  // 1-based file line
}

TEST_F(CacheLintTest, ShortAndUnparsableKeys) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 2\n"
      "abc fail 100 0\n"
      "zzzzzzzz fail 100 0\n");
  EXPECT_EQ(report.num_errors(), 2u) << report.summary();
  EXPECT_TRUE(report.has(Code::artifact_entry));
}

TEST_F(CacheLintTest, DuplicateKey) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 2\n"
      "aaaaaaaa ok -1 0 5 0 2\n"
      "aaaaaaaa ok -1 0 5 0 2\n");
  ASSERT_TRUE(report.has(Code::artifact_entry)) << report.summary();
  EXPECT_EQ(report.find(Code::artifact_entry)->node, 3u);
}

TEST_F(CacheLintTest, ChainMustRealizeKey) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 1\n"
      "00000000 ok -1 0 5 0 2\n");  // chain computes x1, key says constant 0
  ASSERT_TRUE(report.has(Code::artifact_entry)) << report.summary();
  EXPECT_EQ(report.find(Code::artifact_entry)->node, 2u);
}

TEST_F(CacheLintTest, ChainMustBeCanonicallySerialized) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 1\n"
      "aaaaaaaa ok -1 0 5  0 2\n");  // doubled space: same chain, different text
  EXPECT_TRUE(report.has(Code::artifact_not_canonical)) << report.summary();
}

TEST_F(CacheLintTest, FrozenFailureBudget) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 1\n"
      "0000ffff fail 0 5\n");  // budget 0: failure that never ran the solver
  ASSERT_TRUE(report.has(Code::artifact_budget)) << report.summary();
  EXPECT_EQ(report.find(Code::artifact_budget)->node, 2u);
}

TEST_F(CacheLintTest, TrailingTokensAfterFailure) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 1\n"
      "0000ffff fail 20000 17 junk\n");
  EXPECT_TRUE(report.has(Code::artifact_entry)) << report.summary();
}

TEST_F(CacheLintTest, UnknownStatus) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 1\n"
      "0000ffff bogus 1 2\n");
  EXPECT_TRUE(report.has(Code::artifact_entry)) << report.summary();
}

TEST_F(CacheLintTest, CountMismatch) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 5\n"
      "aaaaaaaa ok -1 0 5 0 2\n");
  EXPECT_TRUE(report.has(Code::artifact_header)) << report.summary();
}

TEST_F(CacheLintTest, UnsortedKeysWarnOnly) {
  const auto report = lint(
      "mighty-mig-5cut-cache v1 2\n"
      "e8e8e8e8 ok 20000 137 5 1 12 2 4 6\n"
      "aaaaaaaa ok -1 0 5 0 2\n");
  EXPECT_TRUE(report.ok()) << report.summary();  // a warning, not an error
  EXPECT_EQ(report.num_warnings(), 1u);
  ASSERT_TRUE(report.has(Code::artifact_order));
  EXPECT_EQ(report.find(Code::artifact_order)->severity, Severity::warning);
}

// --- database lint (small in-memory databases; the full 222-class database
// --- is linted by the db-labeled check_flow_test and build_npn_db --lint) ----

TEST(DatabaseLintTest, SmallDatabaseFlagsClassCountAndNonCanonicalKeys) {
  // Two loadable entries from the *same* NPN class (x1 and !x1): at most one
  // of them can be its own canonization, so the canonical-form-keys check
  // must flag at least one; and 2 != 222 classes trips the header check.
  std::istringstream is(
      "mighty-mig-npn4-db v1 2\n"
      "aaaa 0 0.5 4 0 2\n"
      "5555 0 0.5 4 0 3\n");
  const auto db = exact::Database::load(is);
  ASSERT_TRUE(db.has_value());
  const auto report = lint_database(*db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Code::artifact_header)) << report.summary();
  EXPECT_TRUE(report.has(Code::artifact_not_canonical)) << report.summary();
}

TEST(DatabaseLintTest, LoaderRejectsMalformedStreams) {
  for (const auto* text : {
           "wrong-magic v1 0\n",
           "mighty-mig-npn4-db v2 0\n",
           "mighty-mig-npn4-db v1 2\naaaa 0 0.5 4 0 2\n",  // count mismatch
           "mighty-mig-npn4-db v1 1\nzzzz 0 0.5 4 0 2\n",  // bad hex key
           "mighty-mig-npn4-db v1 1\naaaa 0 0.5 4 0 3\n",  // chain != key
           "mighty-mig-npn4-db v1 2\naaaa 0 0.5 4 0 2\naaaa 0 0.5 4 0 2\n",
       }) {
    std::istringstream is(text);
    EXPECT_FALSE(exact::Database::load(is).has_value()) << text;
  }
}

// --- validate_at layering ----------------------------------------------------

TEST(CheckValidateAtTest, FastStopsAtStructure) {
  const auto m = testutil::random_mig(5, 25, 2, 3);
  EXPECT_TRUE(validate_at(m, /*full=*/false).ok());
  EXPECT_TRUE(validate_at(m, /*full=*/true).ok());
}

TEST(CheckReportApiTest, SummaryNamesCodesAndNodes) {
  CheckReport report;
  EXPECT_EQ(report.summary(), "check: ok\n");
  report.add(Code::fanin_not_topological, 7, "test message");
  report.add(Code::artifact_order, kNoNode, "disorder", Severity::warning);
  const auto text = report.summary();
  EXPECT_NE(text.find("error[fanin_not_topological] node 7"), std::string::npos);
  EXPECT_NE(text.find("warning[artifact_order]"), std::string::npos);
  EXPECT_EQ(report.num_errors(), 1u);
  EXPECT_EQ(report.num_warnings(), 1u);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace mighty::check
