// Tests for the mighty-serve wire protocol (serve/protocol.hpp): frame
// assembly over arbitrary chunking, the payload codecs, and — most
// importantly — the edge cases a hostile or buggy peer can produce:
// truncated frames, oversized declared lengths, trailing garbage, out-of-
// range enum values.  Every rejection must be the right stable ErrorCode,
// never a crash or a silent misparse.

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mighty::serve {
namespace {

using api::ErrorCode;

/// Runs `call` and returns the ErrorCode it threw (ok when it did not).
template <typename Call>
ErrorCode code_of(Call&& call) {
  try {
    call();
    return ErrorCode::ok;
  } catch (const api::Error& e) {
    return e.code();
  }
}

/// Decodes `bytes` in one feed, expecting exactly one complete frame.
Frame one_frame(const std::vector<uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto frame = decoder.next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_FALSE(decoder.next().has_value());
  return frame.value_or(Frame{});
}

TEST(ProtocolTest, FrameRoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  const auto bytes = encode_frame(Tag::submit, payload);
  ASSERT_EQ(bytes.size(), 1 + 4 + payload.size());
  const Frame frame = one_frame(bytes);
  EXPECT_EQ(frame.tag, static_cast<uint8_t>(Tag::submit));
  EXPECT_EQ(frame.payload, payload);
}

TEST(ProtocolTest, DecoderReassemblesByteByByte) {
  const auto bytes = encode_frame(Tag::hello, encode_hello(kProtocolVersion));
  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);
    EXPECT_FALSE(decoder.next().has_value()) << "frame complete too early";
  }
  decoder.feed(&bytes[bytes.size() - 1], 1);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(decode_hello(frame->payload), kProtocolVersion);
}

TEST(ProtocolTest, DecoderYieldsBackToBackFrames) {
  auto bytes = encode_frame(Tag::status, encode_job_id(7));
  const auto second = encode_frame(Tag::cancel, encode_job_id(9));
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  auto a = decoder.next();
  auto b = decoder.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(decode_job_id(a->payload), 7u);
  EXPECT_EQ(decode_job_id(b->payload), 9u);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.pending(), 0u);
}

TEST(ProtocolTest, TruncatedFrameWaitsInsteadOfFailing) {
  const auto bytes = encode_frame(Tag::submit, std::vector<uint8_t>(100, 0xAB));
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 1);  // everything but the last byte
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.pending(), bytes.size() - 1);
}

TEST(ProtocolTest, OversizedHeaderRejectedBeforeBuffering) {
  // Header declaring 4 GiB: must throw from the 5 header bytes alone.
  const std::vector<uint8_t> header = {0x02, 0xFF, 0xFF, 0xFF, 0xFF};
  FrameDecoder decoder;
  decoder.feed(header.data(), header.size());
  EXPECT_EQ(code_of([&] { decoder.next(); }), ErrorCode::oversized_frame);

  // Just past the cap is rejected; exactly at the cap is not oversized.
  const uint32_t limit = kMaxPayloadBytes;
  std::vector<uint8_t> boundary = {0x02,
                                   static_cast<uint8_t>((limit + 1) & 0xFF),
                                   static_cast<uint8_t>(((limit + 1) >> 8) & 0xFF),
                                   static_cast<uint8_t>(((limit + 1) >> 16) & 0xFF),
                                   static_cast<uint8_t>(((limit + 1) >> 24) & 0xFF)};
  FrameDecoder rejecting;
  rejecting.feed(boundary.data(), boundary.size());
  EXPECT_EQ(code_of([&] { rejecting.next(); }), ErrorCode::oversized_frame);

  boundary = {0x02, static_cast<uint8_t>(limit & 0xFF),
              static_cast<uint8_t>((limit >> 8) & 0xFF),
              static_cast<uint8_t>((limit >> 16) & 0xFF),
              static_cast<uint8_t>((limit >> 24) & 0xFF)};
  FrameDecoder accepting;
  accepting.feed(boundary.data(), boundary.size());
  EXPECT_FALSE(accepting.next().has_value());  // legal, just incomplete
}

TEST(ProtocolTest, HelloRoundTripAndRejection) {
  EXPECT_EQ(decode_hello(encode_hello(3)), 3u);
  EXPECT_EQ(code_of([] { decode_hello({1, 2}); }), ErrorCode::malformed_frame);
  // Trailing bytes are not ignored: a message is exactly its layout.
  auto padded = encode_hello(1);
  padded.push_back(0);
  EXPECT_EQ(code_of([&] { decode_hello(padded); }), ErrorCode::malformed_frame);
}

TEST(ProtocolTest, SubmitRoundTrip) {
  api::JobRequest request;
  request.name = "mult16";
  request.script = "TF5; (BFD; size)*; map";
  request.network_blif = ".model m\n.inputs a\n.outputs y\n.end\n";
  request.node_budget = 123;
  request.conflict_budget = 456789;
  request.wall_budget_seconds = 2.5;

  const auto decoded = decode_submit(encode_submit(request));
  EXPECT_EQ(decoded.name, request.name);
  EXPECT_EQ(decoded.script, request.script);
  EXPECT_EQ(decoded.network_blif, request.network_blif);
  EXPECT_EQ(decoded.node_budget, request.node_budget);
  EXPECT_EQ(decoded.conflict_budget, request.conflict_budget);
  EXPECT_EQ(decoded.wall_budget_seconds, request.wall_budget_seconds);
}

TEST(ProtocolTest, StringLengthOverrunIsMalformed) {
  // A string declaring 1000 bytes with 2 present must not read out of
  // bounds or adopt garbage.
  Writer w;
  w.u32(1000);
  w.u8('x');
  w.u8('y');
  const auto payload = w.take();
  EXPECT_EQ(code_of([&] { decode_submit(payload); }), ErrorCode::malformed_frame);
}

TEST(ProtocolTest, StatusRoundTripAndBadState) {
  for (const auto state :
       {api::JobState::queued, api::JobState::running, api::JobState::done,
        api::JobState::failed, api::JobState::cancelled}) {
    EXPECT_EQ(decode_status_ok(encode_status_ok(api::JobStatus{state})).state, state);
  }
  Writer w;
  w.u8(99);  // not a JobState
  const auto payload = w.take();
  EXPECT_EQ(code_of([&] { decode_status_ok(payload); }), ErrorCode::malformed_frame);
}

TEST(ProtocolTest, ResultRoundTripCarriesReport) {
  api::JobResult result;
  result.code = ErrorCode::ok;
  result.network_blif = ".model mig\n.end\n";
  result.report.size_before = 100;
  result.report.size_after = 80;
  result.report.depth_before = 12;
  result.report.depth_after = 9;
  result.report.seconds = 0.25;
  result.report.oracle_queries = 42;
  result.report.oracle_cache5_hits = 17;
  flow::PassStats pass;
  pass.name = "TF";
  pass.size_before = 100;
  pass.size_after = 80;
  result.report.passes.push_back(pass);

  const auto decoded = decode_result_ok(encode_result_ok(result));
  EXPECT_EQ(decoded.code, ErrorCode::ok);
  EXPECT_EQ(decoded.network_blif, result.network_blif);
  EXPECT_EQ(decoded.report.size_before, 100u);
  EXPECT_EQ(decoded.report.size_after, 80u);
  EXPECT_EQ(decoded.report.seconds, 0.25);
  EXPECT_EQ(decoded.report.oracle_queries, 42u);
  EXPECT_EQ(decoded.report.oracle_cache5_hits, 17u);
  ASSERT_EQ(decoded.report.passes.size(), 1u);
  EXPECT_EQ(decoded.report.passes[0].name, "TF");
  EXPECT_EQ(decoded.report.passes[0].size_after, 80u);
}

TEST(ProtocolTest, ResultWithAbsurdPassCountIsMalformed) {
  // A tiny payload claiming millions of passes must be rejected from the
  // count alone, before any per-pass allocation.
  Writer w;
  w.u32(static_cast<uint32_t>(ErrorCode::ok));
  w.str("");  // message
  w.str("");  // blif
  w.u32(0);   // size_before
  w.u32(0);
  w.u32(0);
  w.u32(0);
  w.f64(0.0);
  w.u64(0);
  w.u64(0);
  w.u64(0);
  w.u64(0);
  w.u64(0);
  w.u32(50'000'000);  // pass count
  const auto payload = w.take();
  EXPECT_EQ(code_of([&] { decode_result_ok(payload); }), ErrorCode::malformed_frame);
}

TEST(ProtocolTest, StatsRoundTrip) {
  api::ServiceStats stats;
  stats.submitted = 10;
  stats.completed = 7;
  stats.failed = 2;
  stats.cancelled = 1;
  stats.queued = 3;
  stats.running = 2;
  stats.oracle_queries = 1000;
  stats.oracle_cache5_hits = 900;
  stats.oracle_synthesized = 50;
  stats.cache_entries = 777;
  stats.cache_dirty = 5;
  stats.threads = 8;
  stats.job_workers = 2;

  const auto decoded = decode_stats_ok(encode_stats_ok(stats));
  EXPECT_EQ(decoded.submitted, 10u);
  EXPECT_EQ(decoded.completed, 7u);
  EXPECT_EQ(decoded.failed, 2u);
  EXPECT_EQ(decoded.cancelled, 1u);
  EXPECT_EQ(decoded.queued, 3u);
  EXPECT_EQ(decoded.running, 2u);
  EXPECT_EQ(decoded.oracle_queries, 1000u);
  EXPECT_EQ(decoded.oracle_cache5_hits, 900u);
  EXPECT_EQ(decoded.oracle_synthesized, 50u);
  EXPECT_EQ(decoded.cache_entries, 777u);
  EXPECT_EQ(decoded.cache_dirty, 5u);
  EXPECT_EQ(decoded.threads, 8u);
  EXPECT_EQ(decoded.job_workers, 2u);
}

TEST(ProtocolTest, CancelRoundTrip) {
  EXPECT_TRUE(decode_cancel_ok(encode_cancel_ok(true)));
  EXPECT_FALSE(decode_cancel_ok(encode_cancel_ok(false)));
  EXPECT_EQ(code_of([] { decode_cancel_ok({}); }), ErrorCode::malformed_frame);
}

TEST(ProtocolTest, ErrorRoundTripClampsUnknownCodes) {
  const auto decoded =
      decode_error(encode_error(ErrorCode::wall_budget_exceeded, "too slow"));
  EXPECT_EQ(decoded.code(), ErrorCode::wall_budget_exceeded);
  EXPECT_STREQ(decoded.what(), "too slow");

  // A peer speaking a future protocol may send codes we do not know; they
  // clamp to `internal` instead of faulting the connection.
  Writer w;
  w.u32(999);
  w.str("from the future");
  const auto future = decode_error(w.take());
  EXPECT_EQ(future.code(), ErrorCode::internal);
}

TEST(ProtocolTest, EmptyPayloadsAreMalformedForEveryTypedDecoder) {
  const std::vector<uint8_t> empty;
  EXPECT_EQ(code_of([&] { decode_hello(empty); }), ErrorCode::malformed_frame);
  EXPECT_EQ(code_of([&] { decode_submit(empty); }), ErrorCode::malformed_frame);
  EXPECT_EQ(code_of([&] { decode_job_id(empty); }), ErrorCode::malformed_frame);
  EXPECT_EQ(code_of([&] { decode_status_ok(empty); }), ErrorCode::malformed_frame);
  EXPECT_EQ(code_of([&] { decode_result_ok(empty); }), ErrorCode::malformed_frame);
  EXPECT_EQ(code_of([&] { decode_cancel_ok(empty); }), ErrorCode::malformed_frame);
  EXPECT_EQ(code_of([&] { decode_stats_ok(empty); }), ErrorCode::malformed_frame);
  EXPECT_EQ(code_of([&] { decode_error(empty); }), ErrorCode::malformed_frame);
}

}  // namespace
}  // namespace mighty::serve
