#include "map/lut_mapper.hpp"

#include <gtest/gtest.h>

#include "gen/arith.hpp"
#include "mig/simulation.hpp"
#include "test_util.hpp"

namespace mighty::map {
namespace {

TEST(MapTest, SingleGateIsOneLut) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  m.create_po(m.create_maj(a, b, c));
  const auto result = map_luts(m);
  EXPECT_EQ(result.num_luts, 1u);
  EXPECT_EQ(result.depth, 1u);
}

TEST(MapTest, FullAdderFitsInTwoLuts) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  m.create_po(m.create_xor3(a, b, c));
  m.create_po(m.create_maj(a, b, c));
  const auto result = map_luts(m);
  EXPECT_EQ(result.num_luts, 2u);
  EXPECT_EQ(result.depth, 1u);
}

TEST(MapTest, SixInputConeIsOneLut) {
  // Any single-output cone over six PIs fits one 6-LUT.
  mig::Mig m;
  const auto pis = m.create_pis(6);
  auto acc = pis[0];
  for (int i = 1; i < 6; ++i) acc = m.create_and(acc, pis[static_cast<size_t>(i)]);
  m.create_po(acc);
  const auto result = map_luts(m);
  EXPECT_EQ(result.num_luts, 1u);
  EXPECT_EQ(result.depth, 1u);
}

TEST(MapTest, SevenInputConeNeedsTwoLuts) {
  mig::Mig m;
  const auto pis = m.create_pis(7);
  auto acc = pis[0];
  for (int i = 1; i < 7; ++i) acc = m.create_and(acc, pis[static_cast<size_t>(i)]);
  m.create_po(acc);
  const auto result = map_luts(m);
  EXPECT_EQ(result.num_luts, 2u);
  EXPECT_EQ(result.depth, 2u);
}

TEST(MapTest, CoverIsAValidMapping) {
  // Re-evaluate the mapping as a LUT network and compare with the original
  // MIG on random patterns.
  for (uint32_t seed = 0; seed < 5; ++seed) {
    const auto m = testutil::random_mig(8, 80, 5, 31 + seed);
    const auto result = map_luts(m);

    std::mt19937_64 rng(seed);
    std::vector<uint64_t> pi_words(m.num_pis());
    for (auto& w : pi_words) w = rng();
    const auto words = mig::simulate_words(m, pi_words);

    // Evaluate each LUT from its cut function over leaf values; mapped roots
    // must reproduce the MIG node values.
    for (const auto& [root, leaves] : result.cover) {
      const auto local = mig::simulate_cut(m, root, leaves);
      uint64_t expected = words[root];
      uint64_t computed = 0;
      for (uint32_t bit = 0; bit < 64; ++bit) {
        uint32_t assignment = 0;
        for (size_t i = 0; i < leaves.size(); ++i) {
          if ((words[leaves[i]] >> bit) & 1) assignment |= 1u << i;
        }
        if (local.get_bit(assignment)) computed |= uint64_t{1} << bit;
      }
      EXPECT_EQ(computed, expected) << "seed " << seed << " root " << root;
    }
  }
}

TEST(MapTest, MapsAdderReasonably) {
  const auto m = gen::make_adder_n(32);
  const auto result = map_luts(m);
  // 33 outputs cannot fit fewer than ~ceil(33/...) LUTs; sanity bounds.
  EXPECT_GE(result.num_luts, 10u);
  EXPECT_LT(result.num_luts, m.count_live_gates());
  EXPECT_LE(result.depth, m.depth());
  EXPECT_GE(result.depth, 2u);
}

TEST(MapTest, AreaRecoveryDoesNotHurtDepth) {
  const auto m = gen::make_multiplier_n(8);
  MapParams no_recovery;
  no_recovery.area_rounds = 0;
  MapParams with_recovery;
  with_recovery.area_rounds = 2;
  const auto r0 = map_luts(m, no_recovery);
  const auto r2 = map_luts(m, with_recovery);
  EXPECT_LE(r2.depth, r0.depth + 1);
  EXPECT_LE(r2.num_luts, r0.num_luts + 2);
}

TEST(MapTest, LutSizeFourWorks) {
  const auto m = gen::make_adder_n(16);
  MapParams params;
  params.lut_size = 4;
  const auto r4 = map_luts(m, params);
  const auto r6 = map_luts(m);
  EXPECT_GE(r4.num_luts, r6.num_luts);  // smaller LUTs need at least as many
}

TEST(MapTest, ConstantOutputNeedsNoLut) {
  mig::Mig m;
  m.create_pis(2);
  m.create_po(m.get_constant(true));
  const auto result = map_luts(m);
  EXPECT_EQ(result.num_luts, 0u);
  EXPECT_EQ(result.depth, 0u);
}

}  // namespace
}  // namespace mighty::map
