#include "mig/shard.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

#include "gen/arith.hpp"
#include "mig/algebra/algebra.hpp"
#include "mig/ffr.hpp"
#include "test_util.hpp"
#include "util/thread_pool.hpp"

namespace mighty {
namespace {

/// The invariants every shard plan must satisfy: shards are disjoint, cover
/// exactly the live gates, keep whole regions together, and stay sorted.
void check_plan_invariants(const mig::Mig& m, const ffr::FfrPartition& partition,
                           const shard::ShardPlan& plan) {
  const auto live = m.live_mask();
  std::vector<int> owner(m.num_nodes(), -1);
  std::set<uint32_t> seen_roots;

  for (size_t s = 0; s < plan.shards.size(); ++s) {
    const auto& sh = plan.shards[s];
    // Node and root lists ascending => topologically ordered.
    EXPECT_TRUE(std::is_sorted(sh.nodes.begin(), sh.nodes.end()));
    EXPECT_TRUE(std::is_sorted(sh.roots.begin(), sh.roots.end()));
    for (const uint32_t root : sh.roots) {
      EXPECT_TRUE(partition.is_root[root]) << root;
      EXPECT_TRUE(seen_roots.insert(root).second) << "root in two shards";
    }
    for (const uint32_t n : sh.nodes) {
      ASSERT_TRUE(m.is_gate(n));
      EXPECT_TRUE(live[n]) << "dead gate planned";
      EXPECT_EQ(owner[n], -1) << "node in two shards";
      owner[n] = static_cast<int>(s);
    }
    // Whole regions: every member's root rides in the same shard.
    for (const uint32_t n : sh.nodes) {
      const uint32_t root = partition.region_root[n];
      EXPECT_TRUE(std::binary_search(sh.roots.begin(), sh.roots.end(), root))
          << "node " << n << " separated from its region root " << root;
    }
  }

  // Full coverage of the output-reachable gates.
  for (uint32_t n = 0; n < m.num_nodes(); ++n) {
    if (m.is_gate(n) && live[n]) {
      EXPECT_NE(owner[n], -1) << "live gate " << n << " not planned";
    }
  }
}

TEST(ShardPlanTest, InvariantsOnRandomNetworks) {
  for (const uint32_t seed : {1u, 7u, 42u}) {
    const auto m = testutil::random_mig(8, 120, 6, seed);
    const auto partition = ffr::compute_ffrs(m);
    for (const uint32_t shards : {1u, 2u, 4u, 16u}) {
      check_plan_invariants(m, partition, shard::plan_ffr_shards(m, partition, shards));
    }
  }
}

TEST(ShardPlanTest, InvariantsOnArithmeticNetworks) {
  for (const auto& m : {gen::make_adder_n(16), gen::make_multiplier_n(8),
                        gen::make_sqrt_n(8)}) {
    const auto partition = ffr::compute_ffrs(m);
    check_plan_invariants(m, partition, shard::plan_ffr_shards(m, partition, 8));
  }
}

TEST(ShardPlanTest, IsDeterministic) {
  const auto m = gen::make_multiplier_n(8);
  const auto partition = ffr::compute_ffrs(m);
  const auto a = shard::plan_ffr_shards(m, partition, 8);
  const auto b = shard::plan_ffr_shards(m, partition, 8);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].roots, b.shards[s].roots);
    EXPECT_EQ(a.shards[s].nodes, b.shards[s].nodes);
  }
}

TEST(ShardPlanTest, BalancesShardLoads) {
  const auto m = gen::make_multiplier_n(16);
  const auto partition = ffr::compute_ffrs(m);
  const auto plan = shard::plan_ffr_shards(m, partition, 8);
  ASSERT_EQ(plan.shards.size(), 8u);
  size_t largest = 0;
  for (const auto& sh : plan.shards) largest = std::max(largest, sh.nodes.size());
  // Greedy LPT cannot be perfect, but no shard may dwarf the ideal share.
  const double ideal = static_cast<double>(plan.total_nodes()) / 8.0;
  EXPECT_LE(static_cast<double>(largest), 2.0 * ideal + 8.0);
  EXPECT_EQ(plan.total_nodes(), m.count_live_gates());
}

TEST(ShardPlanTest, NeverMakesMoreShardsThanRegions) {
  mig::Mig m;  // two gates in one region: a single live region
  const auto pis = m.create_pis(3);
  const auto inner = m.create_and(pis[0], pis[1]);
  m.create_po(m.create_and(inner, pis[2]));
  const auto partition = ffr::compute_ffrs(m);
  const auto plan = shard::plan_ffr_shards(m, partition, 8);
  EXPECT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.total_nodes(), 2u);
}

TEST(ShardRegionTest, MembersEndWithTheirRoot) {
  const auto m = gen::make_sqrt_n(8);
  const auto partition = ffr::compute_ffrs(m);
  const auto regions = shard::collect_region_members(m, partition);
  ASSERT_FALSE(regions.live_roots.empty());
  uint64_t total = 0;
  for (size_t r = 0; r < regions.live_roots.size(); ++r) {
    const auto& members = regions.members[r];
    ASSERT_FALSE(members.empty());
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    EXPECT_EQ(members.back(), regions.live_roots[r]);
    for (const uint32_t n : members) {
      EXPECT_EQ(partition.region_root[n], regions.live_roots[r]);
    }
    total += members.size();
  }
  EXPECT_EQ(total, m.count_live_gates());
}

TEST(ShardRegionTest, LevelsRespectDependencies) {
  const auto m = algebra::depth_optimize(gen::make_multiplier_n(8));
  const auto partition = ffr::compute_ffrs(m);
  const auto level = shard::region_levels(m, partition);
  // Every in-region gate's cross-region fanin must come from a strictly
  // lower level, or the wave schedule would race.
  for (uint32_t n = 0; n < m.num_nodes(); ++n) {
    if (!m.is_gate(n)) continue;
    const uint32_t root = partition.region_root[n];
    for (const mig::Signal s : m.fanins(n)) {
      if (!m.is_gate(s.index())) continue;
      const uint32_t f_root = partition.region_root[s.index()];
      if (f_root == root) continue;
      EXPECT_LT(level[f_root], level[root]);
    }
  }
}

// --- thread pool -------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.parallelism(), 4u);
  std::vector<std::atomic<uint32_t>> hits(1000);
  pool.parallel_for(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.parallelism(), 1u);
  std::vector<uint32_t> hits(64, 0);
  pool.parallel_for(hits.size(), [&](size_t i) { ++hits[i]; });
  for (const auto h : hits) EXPECT_EQ(h, 1u);
}

TEST(ThreadPoolTest, IsReusableAcrossJobs) {
  util::ThreadPool pool(3);
  uint64_t expected = 0;
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    const size_t count = 1 + static_cast<size_t>(round) * 3 % 97;
    for (size_t i = 0; i < count; ++i) expected += i;
    pool.parallel_for(count, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a failed job.
  std::atomic<uint32_t> ran{0};
  pool.parallel_for(10, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10u);
}

TEST(ThreadPoolTest, HandlesZeroAndOversizedCounts) {
  util::ThreadPool pool(4);
  pool.parallel_for(0, [&](size_t) { FAIL() << "no items to run"; });
  std::atomic<uint32_t> ran{0};
  pool.parallel_for(3, [&](size_t) { ran.fetch_add(1); });  // fewer than threads
  EXPECT_EQ(ran.load(), 3u);
}

// --- task groups (the batch runner's outer scheduling level) ------------------

TEST(TaskGroupTest, RunsEverySubmittedTask) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<uint32_t>> hits(200);
  util::ThreadPool::TaskGroup group(pool);
  for (size_t i = 0; i < hits.size(); ++i) {
    group.submit([&hits, i] { hits[i].fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(TaskGroupTest, TasksMaySubmitSuccessors) {
  // The batch pattern: a (network, pass) task enqueues its network's next
  // pass.  Eight chains of twelve links each must all complete.
  util::ThreadPool pool(4);
  constexpr size_t kChains = 8, kLinks = 12;
  std::vector<std::atomic<uint32_t>> progress(kChains);
  util::ThreadPool::TaskGroup group(pool);
  std::function<void(size_t, size_t)> step = [&](size_t chain, size_t link) {
    progress[chain].fetch_add(1, std::memory_order_relaxed);
    if (link + 1 < kLinks) {
      group.submit([&step, chain, link] { step(chain, link + 1); });
    }
  };
  for (size_t c = 0; c < kChains; ++c) {
    group.submit([&step, c] { step(c, 0); });
  }
  group.wait();
  for (const auto& p : progress) EXPECT_EQ(p.load(), kLinks);
}

TEST(TaskGroupTest, SingleThreadRunsInlineInSubmissionOrder) {
  util::ThreadPool pool(1);
  std::vector<int> order;
  util::ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 5; ++i) {
    group.submit([&order, i] { order.push_back(i); });
  }
  group.wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGroupTest, WaitRethrowsTaskException) {
  util::ThreadPool pool(4);
  util::ThreadPool::TaskGroup group(pool);
  std::atomic<uint32_t> ran{0};
  for (int i = 0; i < 20; ++i) {
    group.submit([&ran, i] {
      if (i == 7) throw std::runtime_error("boom");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The pool survives; a fresh group works.
  util::ThreadPool::TaskGroup next(pool);
  next.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  next.wait();
  EXPECT_GE(ran.load(), 20u);
}

TEST(TaskGroupTest, TasksMayFanOutWithParallelFor) {
  // Two-level composition: an outer task runs an inner parallel_for on the
  // same pool — exactly what a shard-parallel pass does inside a batch task.
  util::ThreadPool pool(4);
  std::vector<std::atomic<uint32_t>> hits(4 * 64);
  util::ThreadPool::TaskGroup group(pool);
  for (size_t outer = 0; outer < 4; ++outer) {
    group.submit([&pool, &hits, outer] {
      pool.parallel_for(64, [&hits, outer](size_t inner) {
        hits[outer * 64 + inner].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  group.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

}  // namespace
}  // namespace mighty
