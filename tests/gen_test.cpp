#include "gen/arith.hpp"

#include <gtest/gtest.h>

#include <random>

#include "mig/simulation.hpp"

namespace mighty::gen {
namespace {

/// Drives a network with 64 random test vectors in parallel (one per word
/// lane) and returns the outputs per lane.
class LaneHarness {
public:
  explicit LaneHarness(const mig::Mig& m) : mig_(m), pi_words_(m.num_pis(), 0) {}

  void set_input(uint32_t offset, uint32_t width, uint32_t lane, uint64_t value) {
    for (uint32_t i = 0; i < width; ++i) {
      if ((value >> i) & 1) pi_words_[offset + i] |= uint64_t{1} << lane;
    }
  }

  void run() { words_ = mig::simulate_words(mig_, pi_words_); }

  uint64_t output(uint32_t offset, uint32_t width, uint32_t lane) const {
    uint64_t value = 0;
    for (uint32_t i = 0; i < width; ++i) {
      const uint64_t w = mig::resolve(words_, mig_.output(offset + i));
      if ((w >> lane) & 1) value |= uint64_t{1} << i;
    }
    return value;
  }

private:
  const mig::Mig& mig_;
  std::vector<uint64_t> pi_words_;
  std::vector<uint64_t> words_;
};

TEST(GenTest, AdderMatchesArithmetic) {
  const auto m = make_adder_n(16);
  EXPECT_EQ(m.num_pis(), 32u);
  EXPECT_EQ(m.num_pos(), 17u);
  std::mt19937_64 rng(1);
  LaneHarness h(m);
  std::vector<std::pair<uint64_t, uint64_t>> cases;
  for (uint32_t lane = 0; lane < 64; ++lane) {
    const uint64_t a = rng() & 0xffff;
    const uint64_t b = rng() & 0xffff;
    cases.emplace_back(a, b);
    h.set_input(0, 16, lane, a);
    h.set_input(16, 16, lane, b);
  }
  h.run();
  for (uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(h.output(0, 17, lane), cases[lane].first + cases[lane].second);
  }
}

TEST(GenTest, AdderKoggeStoneHasLogDepth) {
  const auto m = make_adder_n(64);
  EXPECT_LE(m.depth(), 30u);  // ripple would be ~130
}

TEST(GenTest, MultiplierMatchesArithmetic) {
  const auto m = make_multiplier_n(10);
  std::mt19937_64 rng(2);
  LaneHarness h(m);
  std::vector<std::pair<uint64_t, uint64_t>> cases;
  for (uint32_t lane = 0; lane < 64; ++lane) {
    const uint64_t a = rng() & 0x3ff;
    const uint64_t b = rng() & 0x3ff;
    cases.emplace_back(a, b);
    h.set_input(0, 10, lane, a);
    h.set_input(10, 10, lane, b);
  }
  h.run();
  for (uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(h.output(0, 20, lane), cases[lane].first * cases[lane].second);
  }
}

TEST(GenTest, SquareMatchesArithmetic) {
  const auto m = make_square_n(12);
  std::mt19937_64 rng(3);
  LaneHarness h(m);
  std::vector<uint64_t> cases;
  for (uint32_t lane = 0; lane < 64; ++lane) {
    const uint64_t x = rng() & 0xfff;
    cases.push_back(x);
    h.set_input(0, 12, lane, x);
  }
  h.run();
  for (uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(h.output(0, 24, lane), cases[lane] * cases[lane]);
  }
}

TEST(GenTest, DivisorMatchesArithmetic) {
  const auto m = make_divisor_n(10);
  std::mt19937_64 rng(4);
  LaneHarness h(m);
  std::vector<std::pair<uint64_t, uint64_t>> cases;
  for (uint32_t lane = 0; lane < 64; ++lane) {
    const uint64_t a = rng() & 0x3ff;
    uint64_t b = rng() & 0x3ff;
    if (lane < 60 && b == 0) b = 1;
    if (lane >= 60) b = 0;  // exercise the division-by-zero corner
    cases.emplace_back(a, b);
    h.set_input(0, 10, lane, a);
    h.set_input(10, 10, lane, b);
  }
  h.run();
  for (uint32_t lane = 0; lane < 64; ++lane) {
    const auto [a, b] = cases[lane];
    const uint64_t q = h.output(0, 10, lane);
    const uint64_t r = h.output(10, 10, lane);
    if (b != 0) {
      EXPECT_EQ(q, a / b) << "lane " << lane;
      EXPECT_EQ(r, a % b) << "lane " << lane;
    } else {
      // Restoring array with zero divisor: all-ones quotient, remainder = a.
      EXPECT_EQ(q, 0x3ffu);
      EXPECT_EQ(r, a);
    }
  }
}

TEST(GenTest, SqrtMatchesArithmetic) {
  const auto m = make_sqrt_n(8);  // 16-bit radicand, 8-bit root
  std::mt19937_64 rng(5);
  LaneHarness h(m);
  std::vector<uint64_t> cases;
  for (uint32_t lane = 0; lane < 64; ++lane) {
    const uint64_t x = rng() & 0xffff;
    cases.push_back(x);
    h.set_input(0, 16, lane, x);
  }
  h.run();
  for (uint32_t lane = 0; lane < 64; ++lane) {
    uint64_t expected = 0;
    while ((expected + 1) * (expected + 1) <= cases[lane]) ++expected;
    EXPECT_EQ(h.output(0, 8, lane), expected) << "x=" << cases[lane];
  }
}

TEST(GenTest, MaxMatchesArithmetic) {
  const auto m = make_max_n(12);
  std::mt19937_64 rng(6);
  LaneHarness h(m);
  std::vector<std::array<uint64_t, 4>> cases;
  for (uint32_t lane = 0; lane < 64; ++lane) {
    std::array<uint64_t, 4> v{};
    for (int i = 0; i < 4; ++i) {
      v[static_cast<size_t>(i)] = rng() & 0xfff;
      h.set_input(static_cast<uint32_t>(i) * 12, 12, lane, v[static_cast<size_t>(i)]);
    }
    if (lane == 0) v = {5, 5, 5, 5};  // tie corner
    if (lane == 0) {
      for (int i = 0; i < 4; ++i) h.set_input(static_cast<uint32_t>(i) * 12, 12, 0, 0);
    }
    cases.push_back(v);
  }
  h.run();
  for (uint32_t lane = 1; lane < 64; ++lane) {
    const auto& v = cases[lane];
    const uint64_t expected = std::max({v[0], v[1], v[2], v[3]});
    EXPECT_EQ(h.output(0, 12, lane), expected);
    const uint64_t index = h.output(12, 2, lane);
    EXPECT_EQ(v[index], expected);  // reported index holds the maximum
  }
}

TEST(GenTest, Log2MatchesModel) {
  const uint32_t frac = 6;
  const auto m = make_log2_n(frac);
  EXPECT_EQ(m.num_pis(), 32u);
  EXPECT_EQ(m.num_pos(), frac + 5);
  std::mt19937_64 rng(7);
  LaneHarness h(m);
  std::vector<uint32_t> cases;
  for (uint32_t lane = 0; lane < 64; ++lane) {
    uint32_t x = static_cast<uint32_t>(rng());
    if (lane < 8) x >>= (lane * 4);  // cover small magnitudes
    if (lane == 8) x = 0;
    if (lane == 9) x = 1;
    cases.push_back(x);
    h.set_input(0, 32, lane, x);
  }
  h.run();
  for (uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(h.output(0, frac + 5, lane), log2_model(cases[lane], frac))
        << "x=" << cases[lane];
  }
}

TEST(GenTest, Log2IntegerPartIsMsbPosition) {
  // The top five output bits are floor(log2(x)).
  for (uint32_t k = 1; k < 32; ++k) {
    EXPECT_EQ(log2_model(1u << k, 6) >> 6, k);
  }
}

TEST(GenTest, SineMatchesModel) {
  const uint32_t bits = 10;
  const auto m = make_sine_n(bits);
  EXPECT_EQ(m.num_pis(), bits);
  EXPECT_EQ(m.num_pos(), bits + 1);
  std::mt19937_64 rng(8);
  LaneHarness h(m);
  std::vector<uint64_t> cases;
  for (uint32_t lane = 0; lane < 64; ++lane) {
    const uint64_t z = rng() & ((1u << bits) - 1);
    cases.push_back(z);
    h.set_input(0, bits, lane, z);
  }
  h.run();
  for (uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(h.output(0, bits + 1, lane), sine_model(cases[lane], bits))
        << "z=" << cases[lane];
  }
}

TEST(GenTest, SineApproximatesSine) {
  // The CORDIC output must be close to the real sine (sanity on semantics,
  // not just self-consistency).
  const uint32_t bits = 16;
  for (const double angle : {0.1, 0.5, 0.9}) {
    const auto z = static_cast<uint64_t>(angle * (1 << bits));
    const double computed =
        static_cast<double>(sine_model(z, bits)) / static_cast<double>(1 << bits);
    EXPECT_NEAR(computed, std::sin(static_cast<double>(z) / (1 << bits)), 1e-3);
  }
}

TEST(GenTest, SuiteHasPaperSignatures) {
  // I/O signatures from Table III of the paper.
  struct Expected {
    const char* name;
    uint32_t ins, outs;
  };
  const Expected expected[] = {
      {"Adder", 256, 129},      {"Divisor", 128, 128}, {"Log2", 32, 32},
      {"Max", 512, 130},        {"Multiplier", 128, 128}, {"Sine", 24, 25},
      {"Square-root", 128, 64}, {"Square", 64, 128},
  };
  const auto suite = epfl_arithmetic_suite();
  ASSERT_EQ(suite.size(), 8u);
  for (size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, expected[i].name);
    EXPECT_EQ(suite[i].mig.num_pis(), expected[i].ins) << expected[i].name;
    EXPECT_EQ(suite[i].mig.num_pos(), expected[i].outs) << expected[i].name;
    EXPECT_GT(suite[i].mig.count_live_gates(), 100u) << expected[i].name;
  }
}

TEST(GenTest, HelpersBehave) {
  mig::Mig m;
  const Word a = {m.create_pi(), m.create_pi()};
  const Word b = {m.create_pi(), m.create_pi()};
  const auto lt = less_than(m, a, b);
  const auto sum = ripple_add(m, a, b, m.get_constant(false));
  for (const auto s : sum) m.create_po(s);
  m.create_po(lt);
  const auto tts = mig::output_truth_tables(m);
  for (uint32_t av = 0; av < 4; ++av) {
    for (uint32_t bv = 0; bv < 4; ++bv) {
      const uint32_t assignment = av | (bv << 2);
      uint32_t s = 0;
      for (uint32_t i = 0; i < 3; ++i) {
        if (tts[i].get_bit(assignment)) s |= 1u << i;
      }
      EXPECT_EQ(s, av + bv);
      EXPECT_EQ(tts[3].get_bit(assignment), av < bv);
    }
  }
}

}  // namespace
}  // namespace mighty::gen
