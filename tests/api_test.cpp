// Tests for the public job API (api/api.hpp): the in-process LocalService
// lifecycle, the stable error taxonomy, and per-job budget enforcement.
//
// Everything here runs algebraic-only scripts ("size", "depth", "check",
// "map"), which never materialize the NPN database — so this suite stays in
// the quick `unit` loop.  The oracle-backed end-to-end paths (bit-identical
// daemon results, cache reuse, Session::persist) live in serve_test.cpp
// behind the database fixture.

#include "api/api.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "gen/arith.hpp"
#include "io/io.hpp"
#include "opt/oracle.hpp"

namespace mighty::api {
namespace {

std::string blif_of(const mig::Mig& m) {
  std::ostringstream os;
  io::write_blif(os, m);
  return os.str();
}

JobRequest request_for(const mig::Mig& m, const std::string& script) {
  JobRequest request;
  request.name = "test";
  request.script = script;
  request.network_blif = blif_of(m);
  return request;
}

/// A script slow enough that jobs submitted behind it are still queued when
/// we act on them (each repetition walks the whole network; the multiplier
/// gives it thousands of gates to chew on).
JobRequest slow_request() {
  return request_for(gen::make_multiplier_n(10), "(depth; size)*20");
}

TEST(ApiTest, SubmitAndResultRoundTrip) {
  LocalService service;
  const auto m = gen::make_adder_n(8);
  const JobId id = service.submit(request_for(m, "size"));
  const JobResult result = service.result(id);

  ASSERT_EQ(result.code, ErrorCode::ok) << result.message;
  EXPECT_EQ(service.status(id).state, JobState::done);
  EXPECT_EQ(result.report.passes.size(), 1u);
  EXPECT_GT(result.report.size_before, 0u);
  EXPECT_LE(result.report.size_after, result.report.size_before);

  // The artifact parses back to a network with the same interface.
  std::istringstream blif(result.network_blif);
  const auto optimized = io::read_blif(blif);
  EXPECT_EQ(optimized.num_pis(), m.num_pis());
  EXPECT_EQ(optimized.num_pos(), m.num_pos());
}

TEST(ApiTest, ResultsAreDeterministic) {
  LocalService service;
  const auto request = request_for(gen::make_adder_n(8), "depth; size");
  const JobResult first = service.result(service.submit(request));
  const JobResult second = service.result(service.submit(request));
  ASSERT_EQ(first.code, ErrorCode::ok);
  ASSERT_EQ(second.code, ErrorCode::ok);
  EXPECT_EQ(first.network_blif, second.network_blif);
}

TEST(ApiTest, InvalidScriptThrowsSynchronously) {
  LocalService service;
  const auto request = request_for(gen::make_adder_n(4), "definitely not a script");
  // The documented contract: still a std::invalid_argument...
  EXPECT_THROW(service.submit(request), std::invalid_argument);
  // ...now carrying the stable code.
  try {
    service.submit(request);
    FAIL() << "submit accepted a bogus script";
  } catch (const CodedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_script);
  }
}

TEST(ApiTest, MalformedNetworkFailsTheJob) {
  LocalService service;
  JobRequest request;
  request.script = "size";
  request.network_blif =
      ".model broken\n.inputs a\n.outputs b\n.names a b\nnot a cover\n.end\n";
  const JobResult result = service.result(service.submit(request));
  EXPECT_EQ(result.code, ErrorCode::invalid_network);
  EXPECT_FALSE(result.message.empty());
  EXPECT_TRUE(result.network_blif.empty());
}

TEST(ApiTest, NodeBudgetExceeded) {
  LocalService service;
  auto request = request_for(gen::make_adder_n(8), "size");
  request.node_budget = 3;  // the adder is far bigger than 3 gates
  const JobResult result = service.result(service.submit(request));
  EXPECT_EQ(result.code, ErrorCode::node_budget_exceeded);
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(ApiTest, WallBudgetExceeded) {
  LocalService service;
  auto request = slow_request();
  request.wall_budget_seconds = 1e-9;
  const JobResult result = service.result(service.submit(request));
  EXPECT_EQ(result.code, ErrorCode::wall_budget_exceeded);
}

TEST(ApiTest, UnknownJobIdsThrowEverywhere) {
  LocalService service;
  const auto expect_not_found = [](auto&& call) {
    try {
      call();
      FAIL() << "unknown job id accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::job_not_found);
    }
  };
  expect_not_found([&] { service.status(12345); });
  expect_not_found([&] { service.result(12345); });
  expect_not_found([&] { service.cancel(12345); });
}

TEST(ApiTest, CancelAfterCompletionReturnsFalse) {
  LocalService service;
  const JobId id = service.submit(request_for(gen::make_adder_n(4), "size"));
  ASSERT_EQ(service.result(id).code, ErrorCode::ok);
  EXPECT_FALSE(service.cancel(id));
  // The terminal result is unchanged by the attempt.
  EXPECT_EQ(service.result(id).code, ErrorCode::ok);
}

TEST(ApiTest, CancelQueuedAndRunningJobs) {
  LocalService service;  // one worker: the second job must queue
  const JobId running = service.submit(slow_request());
  const JobId queued = service.submit(request_for(gen::make_adder_n(4), "size"));

  EXPECT_TRUE(service.cancel(queued));
  const JobResult queued_result = service.result(queued);
  EXPECT_EQ(queued_result.code, ErrorCode::cancelled);
  EXPECT_EQ(service.status(queued).state, JobState::cancelled);

  EXPECT_TRUE(service.cancel(running));
  const JobResult running_result = service.result(running);
  EXPECT_EQ(running_result.code, ErrorCode::cancelled);
}

TEST(ApiTest, ShutdownCancelsQueuedAndRefusesNewWork) {
  LocalService service;
  const JobId running = service.submit(slow_request());
  const JobId queued = service.submit(request_for(gen::make_adder_n(4), "size"));
  service.shutdown();

  // The running job was allowed to finish; the queued one never started.
  EXPECT_TRUE(is_terminal(service.status(running).state));
  EXPECT_EQ(service.result(queued).code, ErrorCode::shutting_down);

  try {
    service.submit(request_for(gen::make_adder_n(4), "size"));
    FAIL() << "submit accepted after shutdown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::shutting_down);
  }
  // Idempotent: a second shutdown (and the destructor's) is a no-op.
  EXPECT_NO_THROW(service.shutdown());
}

TEST(ApiTest, MutatingScriptsRejectedOnMultiWorkerService) {
  LocalService::Params params;
  params.job_workers = 2;
  LocalService service(params);
  try {
    service.submit(request_for(gen::make_adder_n(4), "parallel:2; size"));
    FAIL() << "multi-worker service accepted a session-mutating script";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_request);
  }
  // The same script is fine on the default single-worker service.
  LocalService single;
  EXPECT_EQ(single.result(single.submit(
                    request_for(gen::make_adder_n(4), "parallel:2; size")))
                .code,
            ErrorCode::ok);
}

TEST(ApiTest, ConcurrentJobsOnMultiWorkerService) {
  LocalService::Params params;
  params.job_workers = 4;
  LocalService service(params);
  const auto request = request_for(gen::make_adder_n(8), "depth; size");

  std::vector<JobId> ids;
  ids.reserve(16);
  for (int i = 0; i < 16; ++i) ids.push_back(service.submit(request));
  std::string expected;
  for (const JobId id : ids) {
    const JobResult result = service.result(id);
    ASSERT_EQ(result.code, ErrorCode::ok) << result.message;
    if (expected.empty()) expected = result.network_blif;
    // Concurrency must not perturb the artifact.
    EXPECT_EQ(result.network_blif, expected);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 16u);
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ApiTest, StatsTrackOutcomes) {
  LocalService service;
  ASSERT_EQ(service.result(service.submit(request_for(gen::make_adder_n(4), "size")))
                .code,
            ErrorCode::ok);
  JobRequest bad;
  bad.script = "size";
  bad.network_blif = "not blif";
  service.result(service.submit(bad));
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.job_workers, 1u);
}

TEST(ApiTest, CacheCommandsWithoutPathAreInvalidRequests) {
  LocalService service;
  try {
    service.cache_save("");
    FAIL() << "cache_save accepted an empty path on a path-less session";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_request);
  }
  // cache_stats is always available; without a materialized oracle it
  // reports an empty cache rather than touching the database.
  const auto info = service.cache_stats();
  EXPECT_EQ(info.entries, 0u);
  EXPECT_EQ(info.dirty, 0u);
}

// The oracle-level half of the persistence fix: an in-memory cache that
// diverged from its file persists once, then goes quiet.  (The full
// Session::persist path — destructor, service shutdown and daemon SIGTERM
// funneling into one idempotent save — is exercised with a real database in
// serve_test.cpp.)
TEST(ApiTest, OracleSaveIsIdempotentOnCleanCache) {
  const exact::Database empty_db;
  opt::OracleParams params;
  params.enable_five_input = true;
  opt::ReplacementOracle oracle(empty_db, params);

  // Adopt one (failure) entry from a stream: content is clean, but it has
  // never been written to *this* target file.
  std::istringstream cache("mighty-mig-5cut-cache v1 1\ndeadbeef fail 300 42\n");
  const auto loaded = oracle.load_cache(cache);
  ASSERT_EQ(loaded.status, opt::ReplacementOracle::CacheLoadStatus::loaded);
  ASSERT_EQ(loaded.entries, 1u);

  const std::string path =
      ::testing::TempDir() + "api_persist_" + std::to_string(::getpid()) + ".db";
  // First save targets a file with unknown contents: must write.
  EXPECT_EQ(oracle.save_cache(path), 1u);
  // Second save: nothing dirty, same file — the guard makes it a no-op.
  EXPECT_EQ(oracle.save_cache(path), 0u);
  std::remove(path.c_str());
}

TEST(ApiTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::ok), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::invalid_script), "invalid_script");
  EXPECT_STREQ(error_code_name(ErrorCode::shutting_down), "shutting_down");
  EXPECT_STREQ(error_code_name(ErrorCode::internal), "internal");
  EXPECT_STREQ(error_code_name(static_cast<ErrorCode>(999)), "?");
}

TEST(ApiTest, ClassifyMapsExceptionFamilies) {
  EXPECT_EQ(classify(Error(ErrorCode::io_error, "x")), ErrorCode::io_error);
  EXPECT_EQ(classify(ScriptError("x")), ErrorCode::invalid_script);
  EXPECT_EQ(classify(std::invalid_argument("x")), ErrorCode::invalid_request);
  EXPECT_EQ(classify(std::logic_error("x")), ErrorCode::check_failed);
  EXPECT_EQ(classify(std::runtime_error("x")), ErrorCode::internal);
}

}  // namespace
}  // namespace mighty::api
