#include "smt/bitvector.hpp"

#include <gtest/gtest.h>

#include <random>

namespace mighty::smt {
namespace {

TEST(SmtTest, TrueAndFalseLiterals) {
  sat::Solver solver;
  Context ctx(solver);
  ASSERT_EQ(solver.solve(), sat::Result::sat);
  EXPECT_TRUE(solver.model_value_lit(ctx.true_lit()));
  EXPECT_FALSE(solver.model_value_lit(ctx.false_lit()));
}

TEST(SmtTest, ConstantsHaveExpectedModelValues) {
  sat::Solver solver;
  Context ctx(solver);
  const auto v = ctx.bv_constant(0b1011, 4);
  ASSERT_EQ(solver.solve(), sat::Result::sat);
  EXPECT_EQ(ctx.model_value(v), 0b1011u);
}

TEST(SmtTest, EqForcesEquality) {
  sat::Solver solver;
  Context ctx(solver);
  const auto a = ctx.bv_variable(5);
  const auto b = ctx.bv_constant(19, 5);
  ctx.assert_lit(ctx.eq(a, b));
  ASSERT_EQ(solver.solve(), sat::Result::sat);
  EXPECT_EQ(ctx.model_value(a), 19u);
}

TEST(SmtTest, UltSemantics) {
  std::mt19937 rng(5);
  for (int i = 0; i < 20; ++i) {
    const uint64_t x = rng() & 0xff;
    const uint64_t y = rng() & 0xff;
    sat::Solver solver;
    Context ctx(solver);
    const auto a = ctx.bv_constant(x, 8);
    const auto b = ctx.bv_constant(y, 8);
    ctx.assert_lit(ctx.ult(a, b));
    EXPECT_EQ(solver.solve(), x < y ? sat::Result::sat : sat::Result::unsat)
        << x << " < " << y;
  }
}

TEST(SmtTest, UleSemantics) {
  sat::Solver solver;
  Context ctx(solver);
  const auto a = ctx.bv_variable(4);
  ctx.assert_lit(ctx.ule(a, ctx.bv_constant(3, 4)));
  ctx.assert_lit(ctx.ult(ctx.bv_constant(2, 4), a));
  ASSERT_EQ(solver.solve(), sat::Result::sat);
  EXPECT_EQ(ctx.model_value(a), 3u);
}

TEST(SmtTest, UnsatRangeConflict) {
  sat::Solver solver;
  Context ctx(solver);
  const auto a = ctx.bv_variable(3);
  ctx.assert_lit(ctx.ult_const(a, 2));
  ctx.assert_lit(ctx.ult(ctx.bv_constant(5, 3), a));
  EXPECT_EQ(solver.solve(), sat::Result::unsat);
}

TEST(SmtTest, BooleanGadgets) {
  std::mt19937 rng(6);
  for (int i = 0; i < 16; ++i) {
    const bool x = (i & 1) != 0;
    const bool y = (i & 2) != 0;
    const bool z = (i & 4) != 0;
    sat::Solver solver;
    Context ctx(solver);
    const auto lx = ctx.literal(x);
    const auto ly = ctx.literal(y);
    const auto lz = ctx.literal(z);
    const auto g_and = ctx.make_and(lx, ly);
    const auto g_or = ctx.make_or(lx, ly);
    const auto g_xor = ctx.make_xor(lx, ly);
    const auto g_maj = ctx.make_maj(lx, ly, lz);
    ASSERT_EQ(solver.solve(), sat::Result::sat);
    EXPECT_EQ(solver.model_value_lit(g_and), x && y);
    EXPECT_EQ(solver.model_value_lit(g_or), x || y);
    EXPECT_EQ(solver.model_value_lit(g_xor), x != y);
    EXPECT_EQ(solver.model_value_lit(g_maj), (x && y) || (x && z) || (y && z));
  }
}

TEST(SmtTest, GadgetsWithFreeVariables) {
  // maj(a, b, c) = 1 and a = 0 forces b = c = 1.
  sat::Solver solver;
  Context ctx(solver);
  const auto a = ctx.fresh();
  const auto b = ctx.fresh();
  const auto c = ctx.fresh();
  ctx.assert_lit(ctx.make_maj(a, b, c));
  ctx.assert_lit(sat::negate(a));
  ASSERT_EQ(solver.solve(), sat::Result::sat);
  EXPECT_TRUE(solver.model_value_lit(b));
  EXPECT_TRUE(solver.model_value_lit(c));
}

TEST(SmtTest, ImpliesEq) {
  sat::Solver solver;
  Context ctx(solver);
  const auto cond = ctx.fresh();
  const auto x = ctx.fresh();
  const auto y = ctx.fresh();
  ctx.assert_implies_eq(cond, x, y);
  ctx.assert_lit(cond);
  ctx.assert_lit(x);
  ASSERT_EQ(solver.solve(), sat::Result::sat);
  EXPECT_TRUE(solver.model_value_lit(y));
}

}  // namespace
}  // namespace mighty::smt
