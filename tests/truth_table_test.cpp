#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

#include <random>

namespace mighty::tt {
namespace {

TEST(TruthTableTest, ConstantsHaveExpectedBits) {
  EXPECT_EQ(TruthTable::constant(4, false).bits(), 0u);
  EXPECT_EQ(TruthTable::constant(4, true).bits(), 0xffffu);
  EXPECT_EQ(TruthTable::constant(6, true).bits(), ~uint64_t{0});
  EXPECT_TRUE(TruthTable::constant(3, false).is_const0());
  EXPECT_TRUE(TruthTable::constant(3, true).is_const1());
}

TEST(TruthTableTest, ProjectionsMatchDefinition) {
  for (uint32_t n = 1; n <= 6; ++n) {
    for (uint32_t v = 0; v < n; ++v) {
      const auto p = TruthTable::projection(n, v);
      for (uint32_t m = 0; m < p.num_bits(); ++m) {
        EXPECT_EQ(p.get_bit(m), ((m >> v) & 1) != 0);
      }
    }
  }
}

TEST(TruthTableTest, ComplementedProjection) {
  const auto p = TruthTable::projection(3, 1, /*complemented=*/true);
  for (uint32_t m = 0; m < 8; ++m) {
    EXPECT_EQ(p.get_bit(m), ((m >> 1) & 1) == 0);
  }
}

TEST(TruthTableTest, MajorityOfProjectionsIsMajorityFunction) {
  const auto a = TruthTable::projection(3, 0);
  const auto b = TruthTable::projection(3, 1);
  const auto c = TruthTable::projection(3, 2);
  const auto m = TruthTable::maj(a, b, c);
  // <abc> = 0xe8 for three variables.
  EXPECT_EQ(m.bits(), 0xe8u);
}

TEST(TruthTableTest, MajoritySpecialCases) {
  const auto a = TruthTable::projection(3, 0);
  const auto b = TruthTable::projection(3, 1);
  const auto c0 = TruthTable::constant(3, false);
  const auto c1 = TruthTable::constant(3, true);
  EXPECT_EQ(TruthTable::maj(c0, a, b), a & b);
  EXPECT_EQ(TruthTable::maj(c1, a, b), a | b);
  EXPECT_EQ(TruthTable::maj(a, a, b), a);
  EXPECT_EQ(TruthTable::maj(a, ~a, b), b);
}

TEST(TruthTableTest, MajorityIsSelfDual) {
  std::mt19937 rng(42);
  for (int i = 0; i < 100; ++i) {
    const TruthTable a(4, rng());
    const TruthTable b(4, rng());
    const TruthTable c(4, rng());
    EXPECT_EQ(TruthTable::maj(~a, ~b, ~c), ~TruthTable::maj(a, b, c));
  }
}

TEST(TruthTableTest, BitAccessRoundTrip) {
  TruthTable t(4);
  t.set_bit(5, true);
  t.set_bit(12, true);
  EXPECT_TRUE(t.get_bit(5));
  EXPECT_TRUE(t.get_bit(12));
  EXPECT_FALSE(t.get_bit(4));
  t.set_bit(5, false);
  EXPECT_FALSE(t.get_bit(5));
  EXPECT_EQ(t.count_ones(), 1u);
}

TEST(TruthTableTest, CofactorFixesVariable) {
  std::mt19937 rng(7);
  for (int i = 0; i < 50; ++i) {
    const TruthTable f(4, rng());
    for (uint32_t v = 0; v < 4; ++v) {
      const auto f0 = f.cofactor(v, false);
      const auto f1 = f.cofactor(v, true);
      for (uint32_t m = 0; m < 16; ++m) {
        const bool bit_v = (m >> v) & 1;
        EXPECT_EQ(f0.get_bit(m), f.get_bit(m & ~(1u << v)));
        EXPECT_EQ(f1.get_bit(m), f.get_bit(m | (1u << v)));
        (void)bit_v;
      }
      EXPECT_FALSE(f0.depends_on(v));
      EXPECT_FALSE(f1.depends_on(v));
    }
  }
}

TEST(TruthTableTest, SupportDetection) {
  // f = x0 xor x2 over four variables: support is {x0, x2}.
  const auto f = TruthTable::projection(4, 0) ^ TruthTable::projection(4, 2);
  EXPECT_EQ(f.support_mask(), 0b0101u);
  EXPECT_EQ(f.support_size(), 2u);
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_FALSE(f.depends_on(1));
}

TEST(TruthTableTest, FlipIsInvolution) {
  std::mt19937 rng(11);
  for (int i = 0; i < 50; ++i) {
    const TruthTable f(5, (static_cast<uint64_t>(rng()) << 32) | rng());
    for (uint32_t v = 0; v < 5; ++v) {
      EXPECT_EQ(f.flip(v).flip(v), f);
    }
  }
}

TEST(TruthTableTest, FlipMatchesPointwiseDefinition) {
  std::mt19937 rng(12);
  const TruthTable f(4, rng());
  for (uint32_t v = 0; v < 4; ++v) {
    const auto g = f.flip(v);
    for (uint32_t m = 0; m < 16; ++m) {
      EXPECT_EQ(g.get_bit(m), f.get_bit(m ^ (1u << v)));
    }
  }
}

TEST(TruthTableTest, SwapVarsMatchesPointwiseDefinition) {
  std::mt19937 rng(13);
  const TruthTable f(4, rng());
  const auto g = f.swap_vars(1, 3);
  for (uint32_t m = 0; m < 16; ++m) {
    uint32_t swapped = m & ~0b1010u;
    if (m & 0b0010u) swapped |= 0b1000u;
    if (m & 0b1000u) swapped |= 0b0010u;
    EXPECT_EQ(g.get_bit(m), f.get_bit(swapped));
  }
}

TEST(TruthTableTest, PermuteIdentity) {
  std::mt19937 rng(14);
  const TruthTable f(4, rng());
  EXPECT_EQ(f.permute({0, 1, 2, 3, 4, 5}), f);
}

TEST(TruthTableTest, PermuteMatchesSwaps) {
  std::mt19937 rng(15);
  const TruthTable f(4, rng());
  // The permutation sending variable i to perm[i] = (1,0,3,2) equals two swaps.
  EXPECT_EQ(f.permute({1, 0, 3, 2, 4, 5}), f.swap_vars(0, 1).swap_vars(2, 3));
}

TEST(TruthTableTest, ExtendKeepsFunction) {
  const auto f3 = TruthTable::projection(3, 1) & TruthTable::projection(3, 2);
  const auto f5 = f3.extend(5);
  EXPECT_EQ(f5.num_vars(), 5u);
  for (uint32_t m = 0; m < 32; ++m) {
    EXPECT_EQ(f5.get_bit(m), f3.get_bit(m & 7));
  }
  EXPECT_EQ(f5.support_mask(), f3.support_mask());
}

TEST(TruthTableTest, ShrinkToSupport) {
  // x1 and x3 over 4 vars shrinks to x0 and x1 over 2 vars.
  const auto f = TruthTable::projection(4, 1) & TruthTable::projection(4, 3);
  std::vector<uint32_t> old_vars;
  const auto g = f.shrink_to_support(old_vars);
  EXPECT_EQ(g.num_vars(), 2u);
  EXPECT_EQ(old_vars, (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(g, TruthTable::projection(2, 0) & TruthTable::projection(2, 1));
}

TEST(TruthTableTest, ShrinkThenExtendRoundTrip) {
  std::mt19937 rng(16);
  for (int i = 0; i < 200; ++i) {
    const TruthTable f(4, rng());
    std::vector<uint32_t> old_vars;
    const auto g = f.shrink_to_support(old_vars);
    // Rebuild f from g by re-expanding onto the original variables.
    TruthTable rebuilt(4);
    for (uint32_t m = 0; m < 16; ++m) {
      uint32_t gm = 0;
      for (uint32_t v = 0; v < old_vars.size(); ++v) {
        if ((m >> old_vars[v]) & 1) gm |= 1u << v;
      }
      rebuilt.set_bit(m, g.get_bit(gm));
    }
    EXPECT_EQ(rebuilt, f);
  }
}

TEST(TruthTableTest, HexRoundTrip) {
  std::mt19937 rng(17);
  for (int i = 0; i < 100; ++i) {
    const TruthTable f(4, rng());
    EXPECT_EQ(TruthTable::from_hex(4, f.to_hex()), f);
  }
  EXPECT_EQ(TruthTable::from_hex(3, "e8").bits(), 0xe8u);
  EXPECT_EQ(TruthTable::projection(3, 0).to_hex(), "aa");
}

TEST(TruthTableTest, BinaryString) {
  EXPECT_EQ(TruthTable(2, 0b0110).to_binary(), "0110");
}

TEST(TruthTableTest, IteMatchesDefinition) {
  std::mt19937 rng(18);
  for (int i = 0; i < 50; ++i) {
    const TruthTable s(4, rng()), t(4, rng()), e(4, rng());
    const auto r = TruthTable::ite(s, t, e);
    for (uint32_t m = 0; m < 16; ++m) {
      EXPECT_EQ(r.get_bit(m), s.get_bit(m) ? t.get_bit(m) : e.get_bit(m));
    }
  }
}

}  // namespace
}  // namespace mighty::tt
