#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "sat/dimacs.hpp"

namespace mighty::sat {
namespace {

TEST(SatTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::sat);
}

TEST(SatTest, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({lit(v)}));
  EXPECT_EQ(s.solve(), Result::sat);
  EXPECT_TRUE(s.model_value(v));
}

TEST(SatTest, ContradictoryUnits) {
  Solver s;
  const Var v = s.new_var();
  s.add_clause({lit(v)});
  EXPECT_FALSE(s.add_clause({lit(v, true)}));
  EXPECT_EQ(s.solve(), Result::unsat);
}

TEST(SatTest, SimpleImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) {
    s.add_clause({lit(v[static_cast<size_t>(i)], true), lit(v[static_cast<size_t>(i + 1)])});
  }
  s.add_clause({lit(v[0])});
  EXPECT_EQ(s.solve(), Result::sat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.model_value(v[static_cast<size_t>(i)]));
}

TEST(SatTest, XorChainUnsat) {
  // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable (odd cycle).
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  auto add_xor1 = [&](Var x, Var y) {
    s.add_clause({lit(x), lit(y)});
    s.add_clause({lit(x, true), lit(y, true)});
  };
  add_xor1(a, b);
  add_xor1(b, c);
  add_xor1(a, c);
  EXPECT_EQ(s.solve(), Result::unsat);
}

TEST(SatTest, PigeonholeUnsat) {
  // 5 pigeons, 4 holes.
  constexpr int P = 5, H = 4;
  Solver s;
  std::vector<Var> x(P * H);
  for (auto& v : x) v = s.new_var();
  auto at = [&](int p, int h) { return x[static_cast<size_t>(p * H + h)]; };
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(lit(at(p, h)));
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_clause({lit(at(p1, h), true), lit(at(p2, h), true)});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::unsat);
}

TEST(SatTest, PigeonholeSatWhenEnoughHoles) {
  constexpr int P = 4, H = 4;
  Solver s;
  std::vector<Var> x(P * H);
  for (auto& v : x) v = s.new_var();
  auto at = [&](int p, int h) { return x[static_cast<size_t>(p * H + h)]; };
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(lit(at(p, h)));
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_clause({lit(at(p1, h), true), lit(at(p2, h), true)});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::sat);
  // Verify the model is a valid assignment.
  for (int p = 0; p < P; ++p) {
    int holes = 0;
    for (int h = 0; h < H; ++h) holes += s.model_value(at(p, h)) ? 1 : 0;
    EXPECT_GE(holes, 1);
  }
}

TEST(SatTest, AssumptionsSelectBranch) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause({lit(a), lit(b)});
  EXPECT_EQ(s.solve({lit(a, true)}), Result::sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({lit(b, true)}), Result::sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_EQ(s.solve({lit(a, true), lit(b, true)}), Result::unsat);
  // Solver state is not poisoned by unsat assumptions.
  EXPECT_EQ(s.solve(), Result::sat);
}

TEST(SatTest, ConflictLimitYieldsUnknown) {
  // A hard-ish pigeonhole instance with a conflict budget of 1.
  constexpr int P = 8, H = 7;
  Solver s;
  std::vector<Var> x(P * H);
  for (auto& v : x) v = s.new_var();
  auto at = [&](int p, int h) { return x[static_cast<size_t>(p * H + h)]; };
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < H; ++h) clause.push_back(lit(at(p, h)));
    s.add_clause(clause);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) {
        s.add_clause({lit(at(p1, h), true), lit(at(p2, h), true)});
      }
    }
  }
  EXPECT_EQ(s.solve({}, 1), Result::unknown);
}

// Brute-force reference check on random 3-SAT instances.
class RandomCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfTest, AgreesWithBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  constexpr int kVars = 10;
  std::uniform_int_distribution<int> num_clauses_dist(20, 60);
  const int num_clauses = num_clauses_dist(rng);

  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      const int v = static_cast<int>(rng() % kVars);
      clause.push_back(lit(v, (rng() & 1) != 0));
    }
    clauses.push_back(clause);
  }

  bool brute_sat = false;
  for (uint32_t m = 0; m < (1u << kVars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit l : clause) {
        const bool val = ((m >> var_of(l)) & 1) != 0;
        if (val != is_negated(l)) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  Solver s;
  for (int v = 0; v < kVars; ++v) s.new_var();
  for (const auto& clause : clauses) s.add_clause(clause);
  const Result r = s.solve();
  EXPECT_EQ(r, brute_sat ? Result::sat : Result::unsat);

  if (r == Result::sat) {
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit l : clause) any = any || s.model_value_lit(l);
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest, ::testing::Range(0, 50));

TEST(SatTest, TautologyAndDuplicateLiteralsHandled) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({lit(a), lit(a, true)}));  // tautology dropped
  EXPECT_TRUE(s.add_clause({lit(a), lit(a)}));        // duplicate collapses to unit
  EXPECT_EQ(s.solve(), Result::sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(SatTest, StatsAreTracked) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause({lit(a), lit(b)});
  s.solve();
  EXPECT_GE(s.stats().decisions, 1u);
}

TEST(DimacsTest, RoundTrip) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{lit(0), lit(1, true)}, {lit(2)}};
  std::stringstream ss;
  write_dimacs(ss, cnf);
  const Cnf back = read_dimacs(ss);
  EXPECT_EQ(back.num_vars, 3);
  ASSERT_EQ(back.clauses.size(), 2u);
  EXPECT_EQ(back.clauses[0], cnf.clauses[0]);
  EXPECT_EQ(back.clauses[1], cnf.clauses[1]);
}

TEST(DimacsTest, LoadIntoSolver) {
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{lit(0)}, {lit(0, true), lit(1)}};
  Solver s;
  EXPECT_TRUE(load_into_solver(cnf, s));
  EXPECT_EQ(s.solve(), Result::sat);
  EXPECT_TRUE(s.model_value(0));
  EXPECT_TRUE(s.model_value(1));
}

TEST(DimacsTest, RejectsMalformedHeader) {
  std::stringstream ss("p dnf 2 1\n1 0\n");
  EXPECT_THROW(read_dimacs(ss), std::runtime_error);
}

}  // namespace
}  // namespace mighty::sat
