// End-to-end tests for the mighty-serve stack: Server + RemoteService
// against a real api::LocalService (and therefore a real NPN database, so
// this suite runs behind the `npndb` fixture).
//
// The headline property is the ISSUE's acceptance criterion: a cold client
// talking to a warm daemon receives a bit-identical optimized BLIF to an
// in-process run, and a second identical submission is served entirely from
// the shared oracle cache — zero new SAT syntheses.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace mighty::serve {
namespace {

using api::ErrorCode;

std::string unique_socket_path(const char* tag) {
  return ::testing::TempDir() + "mighty_" + tag + "_" + std::to_string(::getpid()) +
         ".sock";
}

api::JobRequest oracle_request() {
  api::JobRequest request;
  request.name = "adder";
  request.script = "TF5; size";  // 5-cut extension: exercises SAT synthesis
  std::ostringstream blif;
  io::write_blif(blif, gen::make_adder_n(16));
  request.network_blif = blif.str();
  return request;
}

/// A raw client speaking bytes, for the protocol edge cases RemoteService
/// can never produce (wrong version, unknown tags, garbage payloads).
class RawClient {
 public:
  explicit RawClient(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
      ADD_FAILURE() << "connect failed";
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::vector<uint8_t>& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  void send_frame(Tag tag, const std::vector<uint8_t>& payload) {
    send_bytes(encode_frame(tag, payload));
  }

  /// Blocks for the next whole frame; fails the test on EOF.
  Frame recv_frame() {
    uint8_t buffer[4096];
    for (;;) {
      if (auto frame = decoder_.next()) return *frame;
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while expecting a frame";
        return {};
      }
      decoder_.feed(buffer, static_cast<size_t>(n));
    }
  }

  /// True when the server hangs up (EOF) with no further frames.
  bool at_eof() {
    if (decoder_.next()) return false;
    uint8_t byte = 0;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

  void hello() {
    send_frame(Tag::hello, encode_hello(kProtocolVersion));
    const Frame reply = recv_frame();
    ASSERT_EQ(reply.tag, static_cast<uint8_t>(Tag::hello_ok));
  }

  ErrorCode recv_error() {
    const Frame reply = recv_frame();
    EXPECT_EQ(reply.tag, static_cast<uint8_t>(Tag::error));
    return decode_error(reply.payload).code();
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// One daemon-in-a-test: service + server on a unique socket.
struct TestDaemon {
  explicit TestDaemon(const char* tag) {
    ServerParams server_params;
    server_params.socket_path = unique_socket_path(tag);
    server.emplace(service, server_params);
  }
  ~TestDaemon() {
    service.shutdown();  // first: wakes connections blocked in result()
    server->stop();      // then: unblocks recv/accept and joins
  }
  const std::string& socket() const { return server->socket_path(); }

  api::LocalService service;
  std::optional<Server> server;
};

TEST(ServeTest, RemoteMatchesInProcessBitForBit) {
  const api::JobRequest request = oracle_request();

  // In-process reference run on a cold service.
  api::LocalService local;
  const api::JobResult expected = local.result(local.submit(request));
  ASSERT_EQ(expected.code, ErrorCode::ok) << expected.message;
  ASSERT_FALSE(expected.network_blif.empty());

  // The same request through a cold daemon over the wire.
  TestDaemon daemon("e2e");
  RemoteService client(daemon.socket());
  const api::JobResult remote = client.result(client.submit(request));
  ASSERT_EQ(remote.code, ErrorCode::ok) << remote.message;

  EXPECT_EQ(remote.network_blif, expected.network_blif);
  EXPECT_EQ(remote.report.size_after, expected.report.size_after);
  EXPECT_EQ(remote.report.depth_after, expected.report.depth_after);

  // Second identical submission: the warm oracle answers every 5-input cut
  // from cache — zero new SAT syntheses, bit-identical artifact again.
  const auto synthesized_after_first = client.stats().oracle_synthesized;
  const api::JobResult again = client.result(client.submit(request));
  ASSERT_EQ(again.code, ErrorCode::ok);
  EXPECT_EQ(again.network_blif, expected.network_blif);
  EXPECT_EQ(client.stats().oracle_synthesized, synthesized_after_first);
  EXPECT_GT(again.report.oracle_queries, 0u);
}

TEST(ServeTest, StatusCancelAndErrorsOverTheWire) {
  TestDaemon daemon("errors");
  RemoteService client(daemon.socket());

  // A completed job: status done, cancel-after-complete returns false.
  api::JobRequest request;
  request.script = "size";
  std::ostringstream blif;
  io::write_blif(blif, gen::make_adder_n(8));
  request.network_blif = blif.str();
  const api::JobId id = client.submit(request);
  ASSERT_EQ(client.result(id).code, ErrorCode::ok);
  EXPECT_EQ(client.status(id).state, api::JobState::done);
  EXPECT_FALSE(client.cancel(id));

  // Server-side exceptions arrive as coded errors, connection intact.
  try {
    client.result(999);
    FAIL() << "unknown job accepted";
  } catch (const api::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::job_not_found);
  }
  try {
    request.script = "not a script";
    client.submit(request);
    FAIL() << "bogus script accepted";
  } catch (const api::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_script);
  }
  // The connection survived both errors.
  EXPECT_EQ(client.stats().completed, 1u);

  // Cache management is the daemon's own business.
  try {
    client.cache_load("/tmp/nope");
    FAIL() << "remote cache_load accepted";
  } catch (const api::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::unsupported);
  }
}

TEST(ServeTest, HelloDiscipline) {
  TestDaemon daemon("hello");

  {  // First frame not HELLO: invalid_request, then hang up.
    RawClient raw(daemon.socket());
    raw.send_frame(Tag::stats, {});
    EXPECT_EQ(raw.recv_error(), ErrorCode::invalid_request);
    EXPECT_TRUE(raw.at_eof());
  }
  {  // Wrong version: version_mismatch, then hang up.
    RawClient raw(daemon.socket());
    raw.send_frame(Tag::hello, encode_hello(kProtocolVersion + 7));
    EXPECT_EQ(raw.recv_error(), ErrorCode::version_mismatch);
    EXPECT_TRUE(raw.at_eof());
  }
  {  // Malformed HELLO payload: malformed_frame, then hang up.
    RawClient raw(daemon.socket());
    raw.send_frame(Tag::hello, {1, 2});
    EXPECT_EQ(raw.recv_error(), ErrorCode::malformed_frame);
    EXPECT_TRUE(raw.at_eof());
  }
}

TEST(ServeTest, ProtocolEdgeCasesKeepOrCloseTheConnectionCorrectly) {
  TestDaemon daemon("edges");

  {  // Unknown tag after HELLO: survivable — the connection stays up.
    RawClient raw(daemon.socket());
    raw.hello();
    raw.send_frame(static_cast<Tag>(0x42), {});
    EXPECT_EQ(raw.recv_error(), ErrorCode::unknown_message);
    raw.send_frame(Tag::stats, {});
    EXPECT_EQ(raw.recv_frame().tag, static_cast<uint8_t>(Tag::stats_ok));
  }
  {  // Garbage payload for a known tag: malformed_frame, connection stays up.
    RawClient raw(daemon.socket());
    raw.hello();
    raw.send_frame(Tag::submit, {1, 2, 3});
    EXPECT_EQ(raw.recv_error(), ErrorCode::malformed_frame);
    raw.send_frame(Tag::stats, {});
    EXPECT_EQ(raw.recv_frame().tag, static_cast<uint8_t>(Tag::stats_ok));
  }
  {  // Oversized declared length: the stream is poisoned — error, hang up.
    RawClient raw(daemon.socket());
    raw.hello();
    raw.send_bytes({0x02, 0xFF, 0xFF, 0xFF, 0xFF});
    EXPECT_EQ(raw.recv_error(), ErrorCode::oversized_frame);
    EXPECT_TRUE(raw.at_eof());
  }
}

TEST(ServeTest, ShutdownFrameIsSingleUse) {
  bool requested = false;
  api::LocalService service;
  ServerParams params;
  params.socket_path = unique_socket_path("shutdown");
  params.on_shutdown_request = [&requested] { requested = true; };
  Server server(service, params);

  RawClient first(server.socket_path());
  first.hello();
  RawClient second(server.socket_path());
  second.hello();

  first.send_frame(Tag::shutdown, {});
  EXPECT_EQ(first.recv_frame().tag, static_cast<uint8_t>(Tag::shutdown_ok));
  EXPECT_TRUE(first.at_eof());
  EXPECT_TRUE(requested);

  // The second SHUTDOWN — and any other request — is refused.
  second.send_frame(Tag::shutdown, {});
  EXPECT_EQ(second.recv_error(), ErrorCode::shutting_down);
  EXPECT_TRUE(second.at_eof());

  service.shutdown();
  server.stop();
  EXPECT_NO_THROW(server.stop());  // idempotent
}

TEST(ServeTest, ConnectionToDeadSocketFails) {
  try {
    RemoteService client(unique_socket_path("nobody-home"));
    FAIL() << "connected to nothing";
  } catch (const api::Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::io_error);
  }
}

// The Session::persist fix, end to end: after a job dirtied the 5-input
// cache, every shutdown path funnels into one idempotent save — the first
// persist writes, the second is a no-op (and so is the destructor's).
TEST(ServeTest, SessionPersistIsIdempotent) {
  const std::string cache_path =
      ::testing::TempDir() + "persist_" + std::to_string(::getpid()) + ".db";
  std::remove(cache_path.c_str());
  {
    api::LocalService::Params params;
    params.session.oracle_cache_path = cache_path;
    api::LocalService service(params);
    const api::JobResult result =
        service.result(service.submit(oracle_request()));
    ASSERT_EQ(result.code, ErrorCode::ok) << result.message;
    ASSERT_GT(service.stats().oracle_synthesized, 0u)
        << "script never touched the 5-input path; the test is vacuous";

    const size_t written = service.session().persist();
    EXPECT_GT(written, 0u);
    EXPECT_EQ(service.session().persist(), 0u) << "second persist must no-op";
    // shutdown() persists again through the same choke point: still a no-op,
    // and the file survives untouched.
    service.shutdown();
    EXPECT_EQ(service.cache_stats().dirty, 0u);
  }
  // Destructor ran (one more persist). The file must exist and load warm.
  api::LocalService::Params params;
  params.session.oracle_cache_path = cache_path;
  api::LocalService warm(params);
  const auto info = warm.cache_load(cache_path);
  EXPECT_EQ(info.status, "loaded");
  EXPECT_GT(info.entries, 0u);
  std::remove(cache_path.c_str());
}

}  // namespace
}  // namespace mighty::serve
