#include "mig/cuts.hpp"

#include <gtest/gtest.h>

#include <set>

#include "mig/ffr.hpp"
#include "mig/simulation.hpp"
#include "test_util.hpp"

namespace mighty::cuts {
namespace {

TEST(CutsTest, MergeWithinLimit) {
  Cut a;
  a.size = 2;
  a.leaves = {1, 3};
  a.signature = Cut::hash_leaf(1) | Cut::hash_leaf(3);
  Cut b;
  b.size = 2;
  b.leaves = {2, 3};
  b.signature = Cut::hash_leaf(2) | Cut::hash_leaf(3);
  Cut out;
  ASSERT_TRUE(merge_cuts(a, b, 4, out));
  EXPECT_EQ(out.size, 3);
  EXPECT_EQ(out.leaves[0], 1u);
  EXPECT_EQ(out.leaves[1], 2u);
  EXPECT_EQ(out.leaves[2], 3u);
}

TEST(CutsTest, MergeOverflows) {
  Cut a;
  a.size = 3;
  a.leaves = {1, 2, 3};
  Cut b;
  b.size = 3;
  b.leaves = {4, 5, 6};
  Cut out;
  EXPECT_FALSE(merge_cuts(a, b, 4, out));
}

TEST(CutsTest, SubsetDetection) {
  Cut a;
  a.size = 2;
  a.leaves = {1, 3};
  a.signature = Cut::hash_leaf(1) | Cut::hash_leaf(3);
  Cut b;
  b.size = 3;
  b.leaves = {1, 2, 3};
  b.signature = Cut::hash_leaf(1) | Cut::hash_leaf(2) | Cut::hash_leaf(3);
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
}

TEST(CutsTest, SingleGateCuts) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto g = m.create_maj(a, b, c);
  m.create_po(g);

  const auto sets = enumerate_cuts(m);
  const auto& gc = sets[g.index()];
  // Expected cuts of g: {a,b,c} and the trivial {g}.
  ASSERT_EQ(gc.size(), 2u);
  std::set<std::vector<uint32_t>> leaves;
  for (const auto& cut : gc) leaves.insert(cut.leaf_vector());
  EXPECT_TRUE(leaves.count({a.index(), b.index(), c.index()}));
  EXPECT_TRUE(leaves.count({g.index()}));
}

TEST(CutsTest, ConstantFaninExemptFromLeaves) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto g = m.create_and(a, b);  // <0ab>
  m.create_po(g);
  const auto sets = enumerate_cuts(m);
  for (const auto& cut : sets[g.index()]) {
    for (uint8_t i = 0; i < cut.size; ++i) {
      EXPECT_NE(cut.leaves[i], mig::Mig::constant_node);
    }
  }
}

TEST(CutsTest, TwoLevelNetworkCutSet) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto d = m.create_pi();
  const auto e = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_maj(g1, d, e);
  m.create_po(g2);

  const auto sets = enumerate_cuts(m, {.cut_size = 4});
  std::set<std::vector<uint32_t>> leaves;
  for (const auto& cut : sets[g2.index()]) leaves.insert(cut.leaf_vector());
  // {d,e,g1}, {g2} are 4-feasible; {a,b,c,d,e} is not (5 leaves).
  EXPECT_TRUE(leaves.count({d.index(), e.index(), g1.index()}));
  EXPECT_TRUE(leaves.count({g2.index()}));
  EXPECT_EQ(leaves.size(), 2u);

  const auto sets5 = enumerate_cuts(m, {.cut_size = 5});
  std::set<std::vector<uint32_t>> leaves5;
  for (const auto& cut : sets5[g2.index()]) leaves5.insert(cut.leaf_vector());
  EXPECT_TRUE(
      leaves5.count({a.index(), b.index(), c.index(), d.index(), e.index()}));
}

TEST(CutsTest, EveryCutFunctionIsConsistent) {
  // For random networks, the function computed over any cut's leaves must
  // reproduce the node's global function when composed with the leaves'
  // global functions.
  for (uint32_t seed = 0; seed < 10; ++seed) {
    const auto m = testutil::random_mig(5, 25, 3, 1000 + seed);
    const auto node_tts = mig::simulate_truth_tables(m);
    const auto sets = enumerate_cuts(m);
    for (uint32_t n = 0; n < m.num_nodes(); ++n) {
      if (!m.is_gate(n)) continue;
      for (const auto& cut : sets[n]) {
        if (cut.size == 1 && cut.leaves[0] == n) continue;  // trivial
        const auto local = mig::simulate_cut(m, n, cut.leaf_vector());
        // Compose: evaluate local over the leaves' global tables.
        tt::TruthTable composed(m.num_pis());
        for (uint32_t a = 0; a < composed.num_bits(); ++a) {
          uint32_t leaf_assignment = 0;
          for (uint8_t l = 0; l < cut.size; ++l) {
            if (node_tts[cut.leaves[l]].get_bit(a)) leaf_assignment |= 1u << l;
          }
          composed.set_bit(a, local.get_bit(leaf_assignment));
        }
        EXPECT_EQ(composed, node_tts[n]) << "seed " << seed << " node " << n;
      }
    }
  }
}

TEST(CutsTest, MaxCutsCapIsRespected) {
  const auto m = testutil::random_mig(6, 60, 3, 7);
  const auto sets = enumerate_cuts(m, {.cut_size = 4, .max_cuts = 5});
  for (uint32_t n = 0; n < m.num_nodes(); ++n) {
    if (!m.is_gate(n)) continue;
    EXPECT_LE(sets[n].size(), 6u);  // cap + trivial cut
  }
}

TEST(CutsTest, NoDominatedCutsStored) {
  const auto m = testutil::random_mig(6, 40, 3, 8);
  const auto sets = enumerate_cuts(m);
  for (const auto& set : sets) {
    for (size_t i = 0; i < set.size(); ++i) {
      for (size_t j = 0; j < set.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(set[i].subset_of(set[j]) && set[j].subset_of(set[i]));
        if (i < j) {
          EXPECT_FALSE(set[i] == set[j]);
        }
      }
    }
  }
}

TEST(FfrTest, ChainIsSingleRegion) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_and(g1, c);
  const auto g3 = m.create_or(g2, a);
  m.create_po(g3);

  const auto p = ffr::compute_ffrs(m);
  EXPECT_EQ(p.roots.size(), 1u);
  EXPECT_EQ(p.roots[0], g3.index());
  EXPECT_EQ(p.region_root[g1.index()], g3.index());
  EXPECT_EQ(p.region_root[g2.index()], g3.index());
}

TEST(FfrTest, MultiFanoutSplitsRegions) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto shared = m.create_maj(a, b, c);
  const auto g2 = m.create_and(shared, a);
  const auto g3 = m.create_or(shared, b);
  m.create_po(g2);
  m.create_po(g3);

  const auto p = ffr::compute_ffrs(m);
  EXPECT_TRUE(p.is_root[shared.index()]);
  EXPECT_TRUE(p.is_root[g2.index()]);
  EXPECT_TRUE(p.is_root[g3.index()]);
  EXPECT_EQ(p.region_root[shared.index()], shared.index());
  EXPECT_EQ(p.roots.size(), 3u);
}

TEST(FfrTest, EveryGateBelongsToExactlyOneRegion) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    const auto m = testutil::random_mig(6, 50, 4, 2000 + seed);
    const auto p = ffr::compute_ffrs(m);
    for (uint32_t n = 0; n < m.num_nodes(); ++n) {
      if (!m.is_gate(n)) continue;
      const uint32_t root = p.region_root[n];
      EXPECT_TRUE(p.is_root[root]);
      // The region root must be reachable by following unique fanouts.
      EXPECT_EQ(p.region_root[root], root);
    }
  }
}

TEST(FfrTest, BoundaryRestrictsCuts) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto shared = m.create_maj(a, b, c);
  const auto g2 = m.create_and(shared, a);
  const auto g3 = m.create_or(shared, b);
  m.create_po(g2);
  m.create_po(g3);

  const auto p = ffr::compute_ffrs(m);
  const auto boundary = ffr::ffr_boundary(p);
  const auto sets = enumerate_cuts(m, {.cut_size = 4, .boundary = &boundary});
  // Cuts of g2 must treat `shared` as a leaf: no cut may expand beyond it.
  for (const auto& cut : sets[g2.index()]) {
    for (uint8_t i = 0; i < cut.size; ++i) {
      EXPECT_TRUE(cut.leaves[i] == shared.index() || cut.leaves[i] == a.index() ||
                  cut.leaves[i] == g2.index());
    }
  }
}

}  // namespace
}  // namespace mighty::cuts
