#include "exact/depth_table.hpp"

#include <gtest/gtest.h>

#include <random>

#include "npn/npn.hpp"

namespace mighty::exact {
namespace {

const DepthTable& table() { return DepthTable::instance(); }

TEST(DepthTableTest, HistogramMatchesPaperTable2) {
  // D(f) function counts of Table II: 10, 80, 10260, 55184, 2.
  const auto histogram = table().function_histogram();
  ASSERT_EQ(histogram.size(), 5u);
  EXPECT_EQ(histogram[0], 10u);
  EXPECT_EQ(histogram[1], 80u);
  EXPECT_EQ(histogram[2], 10260u);
  EXPECT_EQ(histogram[3], 55184u);
  EXPECT_EQ(histogram[4], 2u);
}

TEST(DepthTableTest, OnlyParityHasDepthFour) {
  EXPECT_EQ(table().depth(tt::TruthTable(4, 0x6996)), 4u);
  EXPECT_EQ(table().depth(tt::TruthTable(4, 0x9669)), 4u);
}

TEST(DepthTableTest, TrivialAndSingleGateDepths) {
  EXPECT_EQ(table().depth(tt::TruthTable::constant(4, false)), 0u);
  EXPECT_EQ(table().depth(tt::TruthTable::projection(4, 2)), 0u);
  const auto maj = tt::TruthTable::maj(tt::TruthTable::projection(4, 0),
                                       tt::TruthTable::projection(4, 1),
                                       tt::TruthTable::projection(4, 2));
  EXPECT_EQ(table().depth(maj), 1u);
  const auto and2 = tt::TruthTable::projection(4, 0) & tt::TruthTable::projection(4, 1);
  EXPECT_EQ(table().depth(and2), 1u);
  const auto xor2 = tt::TruthTable::projection(4, 0) ^ tt::TruthTable::projection(4, 1);
  EXPECT_EQ(table().depth(xor2), 2u);
}

TEST(DepthTableTest, WitnessRealizesFunctionAtTabulatedDepth) {
  std::mt19937 rng(17);
  for (int i = 0; i < 200; ++i) {
    const tt::TruthTable f(4, rng());
    const auto chain = table().witness(f);
    EXPECT_EQ(chain.simulate(), f);
    EXPECT_EQ(chain.depth(), table().depth(f)) << "f=0x" << f.to_hex();
  }
}

TEST(DepthTableTest, DepthIsNpnInvariant) {
  std::mt19937 rng(18);
  const auto perms = npn::all_permutations(4);
  for (int i = 0; i < 100; ++i) {
    const tt::TruthTable f(4, rng());
    npn::Transform t;
    t.num_vars = 4;
    t.perm = perms[rng() % perms.size()];
    t.input_negations = static_cast<uint8_t>(rng() & 0xf);
    t.output_negation = (rng() & 1) != 0;
    EXPECT_EQ(table().depth(f), table().depth(npn::apply(f, t)));
  }
}

TEST(DepthTableTest, DepthNeverExceedsFour) {
  std::mt19937 rng(19);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LE(table().depth(tt::TruthTable(4, rng())), 4u);
  }
}

TEST(DepthTableTest, SmallerFunctionsExtendTransparently) {
  const auto xor3 = tt::TruthTable::projection(3, 0) ^ tt::TruthTable::projection(3, 1) ^
                    tt::TruthTable::projection(3, 2);
  EXPECT_EQ(table().depth(xor3), 2u);  // Fig. 1 sum structure
}

TEST(DepthTableTest, DepthLowerBoundedBySupport) {
  // A function depending on more than 3 variables cannot have depth 1.
  std::mt19937 rng(20);
  for (int i = 0; i < 200; ++i) {
    const tt::TruthTable f(4, rng());
    if (f.support_size() == 4) {
      EXPECT_GE(table().depth(f), 2u) << "f=0x" << f.to_hex();
    }
  }
}

}  // namespace
}  // namespace mighty::exact
