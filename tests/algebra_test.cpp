#include "mig/algebra/algebra.hpp"

#include <gtest/gtest.h>

#include "cec/cec.hpp"
#include "gen/arith.hpp"
#include "mig/simulation.hpp"
#include "test_util.hpp"

namespace mighty::algebra {
namespace {

TEST(LevelTrackerTest, TracksLevelsIncrementally) {
  mig::Mig m;
  LevelTracker tracker(m);
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  // The tracker must pick up nodes created both through it and directly.
  const auto g1 = tracker.maj(a, b, c);
  EXPECT_EQ(tracker.level(g1), 1u);
  const auto g2 = tracker.maj(g1, a, b);
  EXPECT_EQ(tracker.level(g2), 2u);
  EXPECT_EQ(tracker.level(a), 0u);
}

TEST(DepthOptTest, ReducesRippleCarryDepth) {
  // A ripple structure has linear depth; associativity/distributivity moves
  // must reduce it.
  mig::Mig m;
  gen::Word a, b;
  for (int i = 0; i < 16; ++i) a.push_back(m.create_pi());
  for (int i = 0; i < 16; ++i) b.push_back(m.create_pi());
  const auto sum = gen::ripple_add(m, a, b, m.get_constant(false));
  for (const auto s : sum) m.create_po(s);

  const uint32_t depth_before = m.depth();
  const auto optimized = depth_optimize(m);
  EXPECT_LT(optimized.depth(), depth_before);
  EXPECT_EQ(cec::check_equivalence(m, optimized).status, cec::CecStatus::equivalent);
}

TEST(DepthOptTest, PreservesFunctionOnRandomNetworks) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    const auto m = testutil::random_mig(6, 50, 4, 777 + seed);
    const auto optimized = depth_optimize(m);
    EXPECT_EQ(cec::check_equivalence(m, optimized).status, cec::CecStatus::equivalent)
        << "seed " << seed;
    EXPECT_LE(optimized.depth(), m.depth()) << "seed " << seed;
  }
}

TEST(DepthOptTest, StatsAreFilled) {
  const auto m = gen::make_adder_n(8);
  AlgebraStats stats;
  depth_optimize(m, {}, &stats);
  EXPECT_EQ(stats.size_before, m.count_live_gates());
  EXPECT_GE(stats.rounds, 1u);
}

TEST(SizeOptTest, ReversesDistributivity) {
  // <<xyu><xyv>z> must fold to <xy<uvz>> (4 gates -> 2... 3 -> 2 here).
  mig::Mig m;
  const auto x = m.create_pi();
  const auto y = m.create_pi();
  const auto u = m.create_pi();
  const auto v = m.create_pi();
  const auto z = m.create_pi();
  const auto a = m.create_maj(x, y, u);
  const auto b = m.create_maj(x, y, v);
  m.create_po(m.create_maj(a, b, z));
  ASSERT_EQ(m.count_live_gates(), 3u);

  const auto optimized = size_optimize(m);
  EXPECT_EQ(optimized.count_live_gates(), 2u);
  EXPECT_EQ(cec::check_equivalence(m, optimized).status, cec::CecStatus::equivalent);
}

TEST(SizeOptTest, KeepsSharedGates) {
  // When the inner gates have other fanout, folding would not pay off; the
  // pass must not increase the size.
  mig::Mig m;
  const auto x = m.create_pi();
  const auto y = m.create_pi();
  const auto u = m.create_pi();
  const auto v = m.create_pi();
  const auto z = m.create_pi();
  const auto a = m.create_maj(x, y, u);
  const auto b = m.create_maj(x, y, v);
  m.create_po(m.create_maj(a, b, z));
  m.create_po(a);  // external use of a
  const uint32_t before = m.count_live_gates();
  const auto optimized = size_optimize(m);
  EXPECT_LE(optimized.count_live_gates(), before);
  EXPECT_EQ(cec::check_equivalence(m, optimized).status, cec::CecStatus::equivalent);
}

TEST(SizeOptTest, PreservesFunctionOnRandomNetworks) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    const auto m = testutil::random_mig(6, 50, 4, 888 + seed);
    const auto optimized = size_optimize(m);
    EXPECT_EQ(cec::check_equivalence(m, optimized).status, cec::CecStatus::equivalent)
        << "seed " << seed;
    EXPECT_LE(optimized.count_live_gates(), m.count_live_gates());
  }
}

TEST(BaselineTest, OptimizesAndPreservesFunction) {
  const auto m = gen::make_max_n(8);
  AlgebraStats stats;
  const auto optimized = baseline_optimize(m, &stats);
  EXPECT_EQ(cec::check_equivalence(m, optimized).status, cec::CecStatus::equivalent);
  EXPECT_EQ(stats.size_before, m.count_live_gates());
  EXPECT_EQ(stats.depth_after, optimized.depth());
}

TEST(DepthOptTest, AssociativityIdentityHolds) {
  // Sanity-check the axiom itself on truth tables: <xu<yuz>> = <zu<yux>>.
  mig::Mig m;
  const auto x = m.create_pi();
  const auto u = m.create_pi();
  const auto y = m.create_pi();
  const auto z = m.create_pi();
  const auto lhs = m.create_maj(x, u, m.create_maj(y, u, z));
  const auto rhs = m.create_maj(z, u, m.create_maj(y, u, x));
  m.create_po(lhs);
  m.create_po(rhs);
  const auto tts = mig::output_truth_tables(m);
  EXPECT_EQ(tts[0], tts[1]);
}

TEST(DepthOptTest, DistributivityIdentityHolds) {
  // <xy<uvz>> = <<xyu><xyv>z>.
  mig::Mig m;
  const auto x = m.create_pi();
  const auto y = m.create_pi();
  const auto u = m.create_pi();
  const auto v = m.create_pi();
  const auto z = m.create_pi();
  const auto lhs = m.create_maj(x, y, m.create_maj(u, v, z));
  const auto rhs = m.create_maj(m.create_maj(x, y, u), m.create_maj(x, y, v), z);
  m.create_po(lhs);
  m.create_po(rhs);
  const auto tts = mig::output_truth_tables(m);
  EXPECT_EQ(tts[0], tts[1]);
}

TEST(DepthOptTest, ComplementaryAssociativityIdentityHolds) {
  // <xu<y!uz>> = <xu<yxz>>.
  mig::Mig m;
  const auto x = m.create_pi();
  const auto u = m.create_pi();
  const auto y = m.create_pi();
  const auto z = m.create_pi();
  const auto lhs = m.create_maj(x, u, m.create_maj(y, !u, z));
  const auto rhs = m.create_maj(x, u, m.create_maj(y, x, z));
  m.create_po(lhs);
  m.create_po(rhs);
  const auto tts = mig::output_truth_tables(m);
  EXPECT_EQ(tts[0], tts[1]);
}

}  // namespace
}  // namespace mighty::algebra
