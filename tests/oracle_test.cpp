#include "opt/oracle.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "cec/cec.hpp"
#include "gen/arith.hpp"
#include "mig/algebra/algebra.hpp"
#include "mig/simulation.hpp"
#include "opt/rewrite.hpp"
#include "test_util.hpp"

namespace mighty::opt {
namespace {

const exact::Database& db() {
  static const exact::Database instance =
      exact::Database::load_or_build(exact::default_database_path());
  return instance;
}

TEST(OracleTest, FourInputPathMatchesDatabase) {
  ReplacementOracle oracle(db());
  std::mt19937 rng(1);
  for (int i = 0; i < 100; ++i) {
    const tt::TruthTable f(4, rng());
    const auto info = oracle.query(f);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->size, db().lookup(f).entry->chain.size());
  }
}

TEST(OracleTest, InstantiateReconstructsFunction) {
  ReplacementOracle oracle(db());
  std::mt19937 rng(2);
  for (int i = 0; i < 200; ++i) {
    const tt::TruthTable f(4, rng());
    ASSERT_TRUE(oracle.query(f).has_value());
    mig::Mig m;
    const auto pis = m.create_pis(4);
    m.create_po(oracle.instantiate(f, m, pis));
    EXPECT_EQ(mig::output_truth_tables(m)[0], f) << "f=0x" << f.to_hex();
  }
}

TEST(OracleTest, SmallSupportShrinksToDatabase) {
  ReplacementOracle oracle(db());
  // A 5-variable function whose support is only 3 variables must go through
  // the 4-input database, not on-demand synthesis.
  const auto f = (tt::TruthTable::projection(5, 1) & tt::TruthTable::projection(5, 3)) ^
                 tt::TruthTable::projection(5, 4);
  const auto info = oracle.query(f);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(oracle.synthesized_count(), 0u);
  EXPECT_EQ(info->input_depths[0], -1);
  EXPECT_EQ(info->input_depths[2], -1);
  EXPECT_GE(info->input_depths[1], 1);

  mig::Mig m;
  const auto pis = m.create_pis(5);
  m.create_po(oracle.instantiate(f, m, pis));
  EXPECT_EQ(mig::output_truth_tables(m)[0], f);
}

TEST(OracleTest, FiveInputDisabledByDefault) {
  ReplacementOracle oracle(db());
  // Full 5-variable support: majority of five.
  tt::TruthTable maj5(5);
  for (uint32_t m = 0; m < 32; ++m) maj5.set_bit(m, __builtin_popcount(m) >= 3);
  EXPECT_FALSE(oracle.query(maj5).has_value());
}

TEST(OracleTest, FiveInputSynthesisOnDemand) {
  OracleParams params;
  params.enable_five_input = true;
  ReplacementOracle oracle(db(), params);

  tt::TruthTable maj5(5);
  for (uint32_t m = 0; m < 32; ++m) maj5.set_bit(m, __builtin_popcount(m) >= 3);
  const auto info = oracle.query(maj5);
  ASSERT_TRUE(info.has_value());
  EXPECT_GE(oracle.synthesized_count(), 1u);
  // <x1..x5> is known to need 4 majority gates.
  EXPECT_EQ(info->size, 4u);

  mig::Mig m;
  const auto pis = m.create_pis(5);
  m.create_po(oracle.instantiate(maj5, m, pis));
  EXPECT_EQ(mig::output_truth_tables(m)[0], maj5);

  // Second query must be served from the cache.
  const auto before = oracle.synthesized_count();
  ASSERT_TRUE(oracle.query(maj5).has_value());
  EXPECT_EQ(oracle.synthesized_count(), before);
}

TEST(OracleTest, FiveInputStructuredFunctionsRoundTrip) {
  // Structured functions, the kind real cuts produce (random 5-variable
  // functions need ~10+ gates and routinely exhaust the synthesis budget,
  // which the oracle reports as "no replacement" -- see the next test).
  OracleParams params;
  params.enable_five_input = true;
  ReplacementOracle oracle(db(), params);
  const auto x = [](uint32_t v) { return tt::TruthTable::projection(5, v); };
  const std::vector<tt::TruthTable> functions = {
      x(0) & x(1) & x(2) & x(3) & x(4),                       // and5
      (x(0) & x(1)) | (x(2) & x(3) & x(4)),                   // and-or
      tt::TruthTable::maj(x(0), x(1), tt::TruthTable::maj(x(2), x(3), x(4))),
      tt::TruthTable::ite(x(4), x(0) & x(1), x(2) | x(3)),    // mux of and/or
      (x(0) ^ x(1)) & (x(2) | x(3)) & x(4),
  };
  for (const auto& f : functions) {
    const auto info = oracle.query(f);
    ASSERT_TRUE(info.has_value()) << "f=0x" << f.to_hex();
    mig::Mig m;
    const auto pis = m.create_pis(5);
    m.create_po(oracle.instantiate(f, m, pis));
    EXPECT_EQ(mig::output_truth_tables(m)[0], f) << "f=0x" << f.to_hex();
  }
  EXPECT_GT(oracle.synthesized_count(), 0u);
}

TEST(OracleTest, BudgetExhaustionIsReportedAsNoReplacement) {
  OracleParams params;
  params.enable_five_input = true;
  params.synthesis_conflict_limit = 1;  // starve the solver
  params.max_gates = 12;
  ReplacementOracle oracle(db(), params);
  std::mt19937_64 rng(3);
  tt::TruthTable f(5, rng());
  while (f.support_size() < 5) f = tt::TruthTable(5, rng());
  EXPECT_FALSE(oracle.query(f).has_value());
  EXPECT_GE(oracle.synthesis_failures(), 1u);
}

// --- persistent 5-input cache ------------------------------------------------

namespace fs = std::filesystem;
using testutil::ScratchDir;

tt::TruthTable maj5_table() {
  tt::TruthTable maj5(5);
  for (uint32_t m = 0; m < 32; ++m) maj5.set_bit(m, __builtin_popcount(m) >= 3);
  return maj5;
}

std::vector<tt::TruthTable> structured_five_input_functions() {
  const auto x = [](uint32_t v) { return tt::TruthTable::projection(5, v); };
  return {
      x(0) & x(1) & x(2) & x(3) & x(4),
      (x(0) & x(1)) | (x(2) & x(3) & x(4)),
      tt::TruthTable::maj(x(0), x(1), tt::TruthTable::maj(x(2), x(3), x(4))),
      tt::TruthTable::ite(x(4), x(0) & x(1), x(2) | x(3)),
      (x(0) ^ x(1)) & (x(2) | x(3)) & x(4),
  };
}

TEST(OracleCacheTest, SaveLoadRoundTripServesWithoutSynthesis) {
  ScratchDir scratch("mighty_oracle_roundtrip");
  const auto path = (scratch.dir / "c5.db").string();
  OracleParams params;
  params.enable_five_input = true;

  std::vector<ReplacementOracle::Info> expected;
  {
    ReplacementOracle oracle(db(), params);
    for (const auto& f : structured_five_input_functions()) {
      const auto info = oracle.query(f);
      ASSERT_TRUE(info.has_value());
      expected.push_back(*info);
    }
    EXPECT_GT(oracle.synthesized_count(), 0u);
    const auto stats = oracle.cache_stats();
    EXPECT_EQ(stats.dirty, stats.entries);
    EXPECT_EQ(oracle.save_cache(path), stats.entries);
    EXPECT_EQ(oracle.cache_stats().dirty, 0u);
  }

  // A process-equivalent fresh oracle: only the file is shared.
  ReplacementOracle oracle(db(), params);
  const auto loaded = oracle.load_cache(path);
  EXPECT_EQ(loaded.status, ReplacementOracle::CacheLoadStatus::loaded);
  EXPECT_EQ(loaded.adopted, loaded.entries);
  const auto functions = structured_five_input_functions();
  for (size_t i = 0; i < functions.size(); ++i) {
    const auto info = oracle.query(functions[i]);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->size, expected[i].size);
    EXPECT_EQ(info->depth, expected[i].depth);
    EXPECT_EQ(info->input_depths, expected[i].input_depths);
    // The loaded chain must still realize the function when instantiated.
    mig::Mig m;
    const auto pis = m.create_pis(5);
    m.create_po(oracle.instantiate(functions[i], m, pis));
    EXPECT_EQ(mig::output_truth_tables(m)[0], functions[i]);
  }
  EXPECT_EQ(oracle.synthesized_count(), 0u) << "cached functions were re-synthesized";
  // Nothing changed, so a re-save to the same file is skipped entirely.
  EXPECT_EQ(oracle.save_cache(path), 0u);
}

TEST(OracleCacheTest, MissingFileIsNotAnError) {
  OracleParams params;
  params.enable_five_input = true;
  ReplacementOracle oracle(db(), params);
  const auto result = oracle.load_cache("/nonexistent/mighty/c5.db");
  EXPECT_EQ(result.status, ReplacementOracle::CacheLoadStatus::missing);
  EXPECT_EQ(oracle.cache_stats().entries, 0u);
}

TEST(OracleCacheTest, CorruptedFilesRejectedWithoutMerging) {
  ScratchDir scratch("mighty_oracle_corrupt");
  OracleParams params;
  params.enable_five_input = true;

  // A valid one-entry file to mutate.
  const auto valid = (scratch.dir / "valid.db").string();
  {
    ReplacementOracle oracle(db(), params);
    ASSERT_TRUE(oracle.query(maj5_table()).has_value());
    ASSERT_EQ(oracle.save_cache(valid), 1u);
  }
  std::string body;
  {
    std::ifstream is(valid);
    std::stringstream ss;
    ss << is.rdbuf();
    body = ss.str();
  }
  const auto entry_line = body.substr(body.find('\n') + 1);

  const auto expect_rejected = [&](const char* name, const std::string& contents) {
    const auto path = (scratch.dir / name).string();
    std::ofstream(path) << contents;
    ReplacementOracle oracle(db(), params);
    const auto result = oracle.load_cache(path);
    EXPECT_EQ(result.status, ReplacementOracle::CacheLoadStatus::malformed) << name;
    EXPECT_EQ(oracle.cache_stats().entries, 0u)
        << name << ": rejected file partially merged";
  };

  expect_rejected("bad_magic.db", "not-a-cache v1 0\n");
  expect_rejected("bad_version.db", "mighty-mig-5cut-cache v99 0\n");
  // A garbage header count must come back malformed, not throw from an
  // attempted petabyte reserve.
  expect_rejected("huge_count.db", "mighty-mig-5cut-cache v1 10000000000000000\n");
  expect_rejected("hex_too_long.db",
                  "mighty-mig-5cut-cache v1 1\nfffffffff fail 100 0\n");
  expect_rejected("hex_too_short.db", "mighty-mig-5cut-cache v1 1\nff fail 100 0\n");
  expect_rejected("fail_trailing_garbage.db",
                  "mighty-mig-5cut-cache v1 1\nffffffff fail 100 0 junk\n");
  {
    // Trailing tokens after a valid chain must not round-trip silently.
    std::string ok_line = entry_line;
    while (!ok_line.empty() && ok_line.back() == '\n') ok_line.pop_back();
    expect_rejected("ok_trailing_garbage.db",
                    "mighty-mig-5cut-cache v1 1\n" + ok_line + " 7 7 7\n");
  }
  expect_rejected("truncated.db",
                  body.substr(0, body.size() - entry_line.size() / 2));
  expect_rejected("count_mismatch.db", "mighty-mig-5cut-cache v1 2\n" + entry_line);
  expect_rejected("duplicate.db",
                  "mighty-mig-5cut-cache v1 2\n" + entry_line + entry_line);
  expect_rejected("garbage_line.db",
                  "mighty-mig-5cut-cache v1 1\nzzzz nope 1 2\n");
  // A chain filed under the wrong function must fail the simulation check:
  // swap the truth-table hex of the valid entry for a different function.
  const auto other = maj5_table() ^ tt::TruthTable::projection(5, 0);
  expect_rejected("wrong_function.db",
                  "mighty-mig-5cut-cache v1 1\n" + other.to_hex() +
                      entry_line.substr(entry_line.find(' ')));
}

TEST(OracleCacheTest, SuccessBeatsFailureOnMerge) {
  ScratchDir scratch("mighty_oracle_merge");
  const auto path = (scratch.dir / "c5.db").string();
  const auto f = maj5_table();

  // A rich session knows the answer and persists it...
  OracleParams rich;
  rich.enable_five_input = true;
  {
    ReplacementOracle oracle(db(), rich);
    ASSERT_TRUE(oracle.query(f).has_value());
    ASSERT_EQ(oracle.save_cache(path), 1u);
  }

  // ...a starved oracle records a failure for the same function, then loads
  // the file: the cached success must win and answer future queries.
  OracleParams starved = rich;
  starved.synthesis_conflict_limit = 1;
  ReplacementOracle oracle(db(), starved);
  EXPECT_FALSE(oracle.query(f).has_value());
  const auto loaded = oracle.load_cache(path);
  EXPECT_EQ(loaded.status, ReplacementOracle::CacheLoadStatus::loaded);
  EXPECT_EQ(loaded.adopted, 1u);
  const auto info = oracle.query(f);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->size, 4u);
  const auto stats = oracle.cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.successes, 1u);
}

TEST(OracleCacheTest, BudgetUpgradeRetriesPersistedFailure) {
  ScratchDir scratch("mighty_oracle_budget");
  const auto path = (scratch.dir / "c5.db").string();
  const auto f = maj5_table();

  // A starved session caches (and persists) a conflict-limit failure.
  OracleParams starved;
  starved.enable_five_input = true;
  starved.synthesis_conflict_limit = 1;
  {
    ReplacementOracle oracle(db(), starved);
    EXPECT_FALSE(oracle.query(f).has_value());
    EXPECT_GE(oracle.synthesis_failures(), 1u);
    ASSERT_EQ(oracle.save_cache(path), 1u);
  }

  // Same budget: the failure is an authoritative cache hit, no retry.
  {
    ReplacementOracle oracle(db(), starved);
    ASSERT_EQ(oracle.load_cache(path).status, ReplacementOracle::CacheLoadStatus::loaded);
    EXPECT_FALSE(oracle.query(f).has_value());
    EXPECT_EQ(oracle.synthesized_count(), 0u);
  }

  // Larger budget: the persisted failure must not freeze the answer — the
  // oracle re-attempts and succeeds, and persists the upgrade.
  OracleParams rich = starved;
  rich.synthesis_conflict_limit = 200000;
  {
    ReplacementOracle oracle(db(), rich);
    ASSERT_EQ(oracle.load_cache(path).status, ReplacementOracle::CacheLoadStatus::loaded);
    const auto info = oracle.query(f);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->size, 4u);
    EXPECT_EQ(oracle.synthesized_count(), 1u);
    EXPECT_EQ(oracle.save_cache(path), 1u);  // upgraded entry is dirty again
  }

  // The upgraded success now serves even a starved session from the file.
  {
    ReplacementOracle oracle(db(), starved);
    ASSERT_EQ(oracle.load_cache(path).status, ReplacementOracle::CacheLoadStatus::loaded);
    EXPECT_TRUE(oracle.query(f).has_value());
    EXPECT_EQ(oracle.synthesized_count(), 0u);
  }
}

TEST(OracleCacheTest, SaveToNewPathAfterCleanLoadStillWrites) {
  ScratchDir scratch("mighty_oracle_newpath");
  const auto path_a = (scratch.dir / "a.db").string();
  const auto path_b = (scratch.dir / "b.db").string();
  OracleParams params;
  params.enable_five_input = true;

  {
    ReplacementOracle oracle(db(), params);
    ASSERT_TRUE(oracle.query(maj5_table()).has_value());
    ASSERT_EQ(oracle.save_cache(path_a), 1u);
  }
  {
    // A stale file at b: a different function's cache from another session.
    ReplacementOracle oracle(db(), params);
    ASSERT_TRUE(oracle.query(structured_five_input_functions()[0]).has_value());
    ASSERT_EQ(oracle.save_cache(path_b), 1u);
  }

  // Loading a leaves the cache clean — but saving to b must still write:
  // the clean-skip only applies to the path the cache is known to live at.
  ReplacementOracle oracle(db(), params);
  ASSERT_EQ(oracle.load_cache(path_a).status, ReplacementOracle::CacheLoadStatus::loaded);
  EXPECT_EQ(oracle.cache_stats().dirty, 0u);
  EXPECT_EQ(oracle.save_cache(path_b), 1u) << "stale file at new path kept";
  // b now holds a's contents: a fresh oracle must answer maj5 from it.
  ReplacementOracle check(db(), params);
  ASSERT_EQ(check.load_cache(path_b).status, ReplacementOracle::CacheLoadStatus::loaded);
  EXPECT_TRUE(check.query(maj5_table()).has_value());
  EXPECT_EQ(check.synthesized_count(), 0u);
}

TEST(OracleCacheTest, SaveIsAtomicAndSkipsCleanCaches) {
  ScratchDir scratch("mighty_oracle_atomic");
  const auto path = (scratch.dir / "c5.db").string();
  OracleParams params;
  params.enable_five_input = true;
  ReplacementOracle oracle(db(), params);
  ASSERT_TRUE(oracle.query(maj5_table()).has_value());
  EXPECT_EQ(oracle.save_cache(path), 1u);
  EXPECT_EQ(oracle.save_cache(path), 0u);  // clean cache: file untouched
  // Dirty it again: a new function forces a full (atomic) rewrite.
  ASSERT_TRUE(oracle.query(structured_five_input_functions()[0]).has_value());
  EXPECT_EQ(oracle.save_cache(path), 2u);
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(scratch.dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u) << "temp files left behind";
}

TEST(OracleTest, FiveInputRewritingPreservesFunction) {
  const auto baseline = algebra::depth_optimize(gen::make_adder_n(10));
  auto params = variant_params("TF");
  params.five_input_cuts = true;
  RewriteStats stats;
  const auto optimized = functional_hashing(baseline, db(), params, &stats);
  EXPECT_EQ(cec::check_equivalence(baseline, optimized).status,
            cec::CecStatus::equivalent);
  EXPECT_LE(stats.size_after, stats.size_before);
}

TEST(OracleTest, FiveInputRewritingAtLeastMatchesFourInput) {
  const auto baseline = algebra::depth_optimize(gen::make_sine_n(8));
  RewriteStats four, five;
  functional_hashing(baseline, db(), variant_params("TF"), &four);
  auto params = variant_params("TF");
  params.five_input_cuts = true;
  functional_hashing(baseline, db(), params, &five);
  // Wider cuts see strictly more replacement opportunities.
  EXPECT_LE(five.size_after, four.size_after);
}

}  // namespace
}  // namespace mighty::opt
