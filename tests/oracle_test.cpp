#include "opt/oracle.hpp"

#include <gtest/gtest.h>

#include <random>

#include "cec/cec.hpp"
#include "gen/arith.hpp"
#include "mig/algebra/algebra.hpp"
#include "mig/simulation.hpp"
#include "opt/rewrite.hpp"

namespace mighty::opt {
namespace {

const exact::Database& db() {
  static const exact::Database instance =
      exact::Database::load_or_build(exact::default_database_path());
  return instance;
}

TEST(OracleTest, FourInputPathMatchesDatabase) {
  ReplacementOracle oracle(db());
  std::mt19937 rng(1);
  for (int i = 0; i < 100; ++i) {
    const tt::TruthTable f(4, rng());
    const auto info = oracle.query(f);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->size, db().lookup(f).entry->chain.size());
  }
}

TEST(OracleTest, InstantiateReconstructsFunction) {
  ReplacementOracle oracle(db());
  std::mt19937 rng(2);
  for (int i = 0; i < 200; ++i) {
    const tt::TruthTable f(4, rng());
    ASSERT_TRUE(oracle.query(f).has_value());
    mig::Mig m;
    const auto pis = m.create_pis(4);
    m.create_po(oracle.instantiate(f, m, pis));
    EXPECT_EQ(mig::output_truth_tables(m)[0], f) << "f=0x" << f.to_hex();
  }
}

TEST(OracleTest, SmallSupportShrinksToDatabase) {
  ReplacementOracle oracle(db());
  // A 5-variable function whose support is only 3 variables must go through
  // the 4-input database, not on-demand synthesis.
  const auto f = (tt::TruthTable::projection(5, 1) & tt::TruthTable::projection(5, 3)) ^
                 tt::TruthTable::projection(5, 4);
  const auto info = oracle.query(f);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(oracle.synthesized_count(), 0u);
  EXPECT_EQ(info->input_depths[0], -1);
  EXPECT_EQ(info->input_depths[2], -1);
  EXPECT_GE(info->input_depths[1], 1);

  mig::Mig m;
  const auto pis = m.create_pis(5);
  m.create_po(oracle.instantiate(f, m, pis));
  EXPECT_EQ(mig::output_truth_tables(m)[0], f);
}

TEST(OracleTest, FiveInputDisabledByDefault) {
  ReplacementOracle oracle(db());
  // Full 5-variable support: majority of five.
  tt::TruthTable maj5(5);
  for (uint32_t m = 0; m < 32; ++m) maj5.set_bit(m, __builtin_popcount(m) >= 3);
  EXPECT_FALSE(oracle.query(maj5).has_value());
}

TEST(OracleTest, FiveInputSynthesisOnDemand) {
  OracleParams params;
  params.enable_five_input = true;
  ReplacementOracle oracle(db(), params);

  tt::TruthTable maj5(5);
  for (uint32_t m = 0; m < 32; ++m) maj5.set_bit(m, __builtin_popcount(m) >= 3);
  const auto info = oracle.query(maj5);
  ASSERT_TRUE(info.has_value());
  EXPECT_GE(oracle.synthesized_count(), 1u);
  // <x1..x5> is known to need 4 majority gates.
  EXPECT_EQ(info->size, 4u);

  mig::Mig m;
  const auto pis = m.create_pis(5);
  m.create_po(oracle.instantiate(maj5, m, pis));
  EXPECT_EQ(mig::output_truth_tables(m)[0], maj5);

  // Second query must be served from the cache.
  const auto before = oracle.synthesized_count();
  ASSERT_TRUE(oracle.query(maj5).has_value());
  EXPECT_EQ(oracle.synthesized_count(), before);
}

TEST(OracleTest, FiveInputStructuredFunctionsRoundTrip) {
  // Structured functions, the kind real cuts produce (random 5-variable
  // functions need ~10+ gates and routinely exhaust the synthesis budget,
  // which the oracle reports as "no replacement" -- see the next test).
  OracleParams params;
  params.enable_five_input = true;
  ReplacementOracle oracle(db(), params);
  const auto x = [](uint32_t v) { return tt::TruthTable::projection(5, v); };
  const std::vector<tt::TruthTable> functions = {
      x(0) & x(1) & x(2) & x(3) & x(4),                       // and5
      (x(0) & x(1)) | (x(2) & x(3) & x(4)),                   // and-or
      tt::TruthTable::maj(x(0), x(1), tt::TruthTable::maj(x(2), x(3), x(4))),
      tt::TruthTable::ite(x(4), x(0) & x(1), x(2) | x(3)),    // mux of and/or
      (x(0) ^ x(1)) & (x(2) | x(3)) & x(4),
  };
  for (const auto& f : functions) {
    const auto info = oracle.query(f);
    ASSERT_TRUE(info.has_value()) << "f=0x" << f.to_hex();
    mig::Mig m;
    const auto pis = m.create_pis(5);
    m.create_po(oracle.instantiate(f, m, pis));
    EXPECT_EQ(mig::output_truth_tables(m)[0], f) << "f=0x" << f.to_hex();
  }
  EXPECT_GT(oracle.synthesized_count(), 0u);
}

TEST(OracleTest, BudgetExhaustionIsReportedAsNoReplacement) {
  OracleParams params;
  params.enable_five_input = true;
  params.synthesis_conflict_limit = 1;  // starve the solver
  params.max_gates = 12;
  ReplacementOracle oracle(db(), params);
  std::mt19937_64 rng(3);
  tt::TruthTable f(5, rng());
  while (f.support_size() < 5) f = tt::TruthTable(5, rng());
  EXPECT_FALSE(oracle.query(f).has_value());
  EXPECT_GE(oracle.synthesis_failures(), 1u);
}

TEST(OracleTest, FiveInputRewritingPreservesFunction) {
  const auto baseline = algebra::depth_optimize(gen::make_adder_n(10));
  auto params = variant_params("TF");
  params.five_input_cuts = true;
  RewriteStats stats;
  const auto optimized = functional_hashing(baseline, db(), params, &stats);
  EXPECT_EQ(cec::check_equivalence(baseline, optimized).status,
            cec::CecStatus::equivalent);
  EXPECT_LE(stats.size_after, stats.size_before);
}

TEST(OracleTest, FiveInputRewritingAtLeastMatchesFourInput) {
  const auto baseline = algebra::depth_optimize(gen::make_sine_n(8));
  RewriteStats four, five;
  functional_hashing(baseline, db(), variant_params("TF"), &four);
  auto params = variant_params("TF");
  params.five_input_cuts = true;
  functional_hashing(baseline, db(), params, &five);
  // Wider cuts see strictly more replacement opportunities.
  EXPECT_LE(five.size_after, four.size_after);
}

}  // namespace
}  // namespace mighty::opt
