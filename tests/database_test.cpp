#include "exact/database.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hpp"

/// File I/O behavior of the NPN-4 database: crash-safe (atomic) saves,
/// lossless build_seconds round trips, and rejection of corrupted files.
/// Loads the shared prebuilt database (npndb fixture) and re-saves it into
/// a scratch directory, so no synthesis runs here.

namespace mighty::exact {
namespace {

namespace fs = std::filesystem;

const Database& db() {
  static const Database instance = Database::load_or_build(default_database_path());
  return instance;
}

std::string read_file(const fs::path& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream is(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

void write_lines(const fs::path& path, const std::vector<std::string>& lines) {
  std::ofstream os(path);
  for (const auto& line : lines) os << line << '\n';
}

using testutil::ScratchDir;

TEST(DatabaseIoTest, SaveLoadRoundTripIsExact) {
  ScratchDir scratch("mighty_db_roundtrip");
  const auto path = (scratch.dir / "db.txt").string();
  db().save(path);
  const auto loaded = Database::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_entries(), db().num_entries());
  for (size_t i = 0; i < db().num_entries(); ++i) {
    const auto& a = db().entries()[i];
    const auto& b = loaded->entries()[i];
    EXPECT_EQ(a.representative, b.representative);
    EXPECT_EQ(a.chain, b.chain);
    EXPECT_EQ(a.conflicts, b.conflicts);
    // max_digits10 precision: the stored wall time round-trips bit-exactly
    // (the old default precision truncated to 6 significant digits).
    EXPECT_EQ(a.build_seconds, b.build_seconds);
  }
  // Saving the loaded copy must reproduce the file byte for byte.
  const auto path2 = (scratch.dir / "db2.txt").string();
  loaded->save(path2);
  EXPECT_EQ(read_file(path), read_file(path2));
}

TEST(DatabaseIoTest, SaveIsAtomicAndLeavesNoTemporaries) {
  ScratchDir scratch("mighty_db_atomic");
  const auto path = (scratch.dir / "db.txt").string();
  db().save(path);
  db().save(path);  // overwriting an existing file must also work
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(scratch.dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u) << "temp files left behind in " << scratch.dir;
  EXPECT_TRUE(Database::load(path).has_value());
}

TEST(DatabaseIoTest, DuplicateRepresentativeLineRejected) {
  ScratchDir scratch("mighty_db_dup");
  const auto path = (scratch.dir / "db.txt").string();
  db().save(path);
  auto lines = read_lines(path);
  ASSERT_GT(lines.size(), 2u);
  // Duplicate the first entry line and fix up the header count so only the
  // duplication itself can be the reason for rejection.
  lines.push_back(lines[1]);
  std::istringstream hs(lines[0]);
  std::string magic, version;
  size_t count = 0;
  hs >> magic >> version >> count;
  lines[0] = magic + " " + version + " " + std::to_string(count + 1);
  write_lines(path, lines);
  EXPECT_FALSE(Database::load(path).has_value());
}

TEST(DatabaseIoTest, TruncatedFileRejected) {
  ScratchDir scratch("mighty_db_trunc");
  const auto path = (scratch.dir / "db.txt").string();
  db().save(path);
  const auto full = read_file(path);
  // Cut mid-file: either a short entry line or a count mismatch, both of
  // which a crashed in-place writer used to leave behind.
  std::ofstream os(path, std::ios::trunc);
  os << full.substr(0, full.size() / 2);
  os.close();
  EXPECT_FALSE(Database::load(path).has_value());
}

TEST(DatabaseIoTest, LoadOrBuildPrefersExistingFile) {
  ScratchDir scratch("mighty_db_existing");
  const auto path = (scratch.dir / "db.txt").string();
  db().save(path);
  // With a valid file present, load_or_build must not synthesize anything;
  // a rebuild of all 222 classes would blow the test timeout.
  const Database loaded = Database::load_or_build(path);
  EXPECT_EQ(loaded.num_entries(), db().num_entries());
}

}  // namespace
}  // namespace mighty::exact
