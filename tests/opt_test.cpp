#include "opt/rewrite.hpp"

#include <gtest/gtest.h>

#include <random>

#include "cec/cec.hpp"
#include "gen/arith.hpp"
#include "mig/algebra/algebra.hpp"
#include "mig/simulation.hpp"
#include "test_util.hpp"

namespace mighty::opt {
namespace {

const exact::Database& db() {
  static const exact::Database instance = [] {
    auto loaded = exact::Database::load(exact::default_database_path());
    if (!loaded) {
      // First run on a fresh checkout: build and cache (a few minutes).
      return exact::Database::load_or_build(exact::default_database_path());
    }
    return std::move(*loaded);
  }();
  return instance;
}

TEST(DatabaseTest, HistogramMatchesPaperTable1) {
  const auto histogram = db().size_histogram();
  const std::vector<uint32_t> expected{2, 2, 5, 18, 42, 117, 35, 1};
  EXPECT_EQ(histogram, expected);
}

TEST(DatabaseTest, EveryEntrySimulatesToItsRepresentative) {
  for (const auto& entry : db().entries()) {
    EXPECT_EQ(entry.chain.simulate(), entry.representative);
  }
}

TEST(DatabaseTest, LookupFindsEveryFunction) {
  std::mt19937 rng(1);
  for (int i = 0; i < 300; ++i) {
    const tt::TruthTable f(4, rng());
    const auto result = db().lookup(f);
    EXPECT_EQ(npn::apply(f, result.transform), result.entry->representative);
  }
}

TEST(DatabaseTest, InstantiateReconstructsFunction) {
  std::mt19937 rng(2);
  for (int i = 0; i < 300; ++i) {
    const tt::TruthTable f(4, rng());
    mig::Mig m;
    const auto pis = m.create_pis(4);
    m.create_po(db().instantiate(f, m, pis));
    EXPECT_EQ(mig::output_truth_tables(m)[0], f) << "f=0x" << f.to_hex();
  }
}

TEST(DatabaseTest, InstantiateHandlesSmallSupport) {
  std::mt19937 rng(3);
  for (int i = 0; i < 100; ++i) {
    const tt::TruthTable f2(2, rng() & 0xf);
    mig::Mig m;
    const auto pis = m.create_pis(4);
    m.create_po(db().instantiate(f2.extend(4), m, pis));
    EXPECT_EQ(mig::output_truth_tables(m)[0], f2.extend(4));
  }
}

TEST(DatabaseTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/mighty_db_roundtrip.db";
  db().save(path);
  const auto loaded = exact::Database::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_entries(), db().num_entries());
  EXPECT_EQ(loaded->size_histogram(), db().size_histogram());
}

TEST(RewriteUtilTest, CutConeCountsInternalNodes) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto d = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_maj(g1, c, d);
  m.create_po(g2);
  const auto cone =
      cut_cone(m, g2.index(), {a.index(), b.index(), c.index(), d.index()});
  EXPECT_EQ(cone.size(), 2u);
}

TEST(RewriteUtilTest, ConeReplaceabilityDetectsExternalFanout) {
  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto c = m.create_pi();
  const auto g1 = m.create_maj(a, b, c);
  const auto g2 = m.create_and(g1, a);
  const auto g3 = m.create_or(g1, b);  // external fanout of g1
  m.create_po(g2);
  m.create_po(g3);
  const auto fanout = m.compute_fanout_counts();
  const auto cone = cut_cone(m, g2.index(), {a.index(), b.index(), c.index()});
  EXPECT_FALSE(cone_is_replaceable(m, cone, g2.index(), fanout));
  const auto cone2 = cut_cone(m, g2.index(), {g1.index(), a.index()});
  EXPECT_TRUE(cone_is_replaceable(m, cone2, g2.index(), fanout));
}

TEST(RewriteUtilTest, ChainInputDepths) {
  // carry = <x1 x2 x3>, sum = <!carry <x1 x2 !x3> x3>: x3 reaches the output
  // directly (depth 1 via mid) and through two levels.
  exact::MigChain chain;
  chain.num_vars = 3;
  chain.steps.push_back({{exact::make_ref_lit(1, false), exact::make_ref_lit(2, false),
                          exact::make_ref_lit(3, false)}});
  chain.steps.push_back({{exact::make_ref_lit(1, false), exact::make_ref_lit(2, false),
                          exact::make_ref_lit(3, true)}});
  chain.steps.push_back({{exact::make_ref_lit(4, true), exact::make_ref_lit(5, false),
                          exact::make_ref_lit(3, false)}});
  chain.output = exact::make_ref_lit(6, false);
  const auto depths = chain_input_depths(chain);
  EXPECT_EQ(depths, (std::vector<int>{2, 2, 2}));
}

TEST(RewriteUtilTest, VariantParamsParse) {
  EXPECT_EQ(variant_params("T").direction, Direction::top_down);
  EXPECT_EQ(variant_params("BF").direction, Direction::bottom_up);
  EXPECT_TRUE(variant_params("BF").ffr_partition);
  EXPECT_TRUE(variant_params("TFD").depth_preserving);
  EXPECT_TRUE(variant_params("TFD").ffr_partition);
  EXPECT_FALSE(variant_params("TD").ffr_partition);
  EXPECT_THROW(variant_params("X"), std::invalid_argument);
  EXPECT_THROW(variant_params("FD"), std::invalid_argument);
  EXPECT_EQ(all_variants().size(), 8u);
}

TEST(RewriteTest, ReducesRedundantParityToOptimum) {
  // 4-input parity built from three 3-gate XORs (9 gates); one 4-cut
  // replacement must reach the database optimum for the whole function.
  mig::Mig m;
  const auto pis = m.create_pis(4);
  const auto x01 = m.create_xor(pis[0], pis[1]);
  const auto x23 = m.create_xor(pis[2], pis[3]);
  m.create_po(m.create_xor(x01, x23));
  ASSERT_EQ(m.count_live_gates(), 9u);

  const auto parity = mig::output_truth_tables(m)[0];
  const uint32_t optimum = db().lookup(parity).entry->chain.size();

  RewriteStats stats;
  const auto optimized = functional_hashing(m, db(), variant_params("T"), &stats);
  EXPECT_EQ(optimized.count_live_gates(), optimum);
  EXPECT_EQ(mig::output_truth_tables(optimized)[0], parity);
  EXPECT_GE(stats.replacements, 1u);
  EXPECT_EQ(stats.size_before, 9u);
  EXPECT_EQ(stats.size_after, optimum);
}

class VariantTest : public ::testing::TestWithParam<std::string> {};

TEST_P(VariantTest, PreservesFunctionOnRandomNetworks) {
  const auto params = variant_params(GetParam());
  for (uint32_t seed = 0; seed < 6; ++seed) {
    const auto m = testutil::random_mig(6, 60, 5, 42 + seed);
    RewriteStats stats;
    const auto optimized = functional_hashing(m, db(), params, &stats);
    const auto r = cec::check_equivalence(m, optimized);
    EXPECT_EQ(r.status, cec::CecStatus::equivalent)
        << GetParam() << " seed " << seed;
    if (params.direction == Direction::top_down) {
      EXPECT_LE(stats.size_after, stats.size_before) << GetParam();
    }
  }
}

TEST_P(VariantTest, PreservesFunctionOnArithmetic) {
  const auto params = variant_params(GetParam());
  const auto m = gen::make_multiplier_n(6);
  RewriteStats stats;
  const auto optimized = functional_hashing(m, db(), params, &stats);
  const auto r = cec::check_equivalence(m, optimized);
  EXPECT_EQ(r.status, cec::CecStatus::equivalent) << GetParam();
  EXPECT_GT(stats.size_before, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantTest,
                         ::testing::Values("T", "TD", "TF", "TFD", "B", "BD", "BF",
                                           "BFD"));

TEST(RewriteTest, TopDownReducesDepthOptimizedMultiplier) {
  // Paper pipeline: the functional-hashing input is a depth-optimized MIG
  // (Sec. V-C: "Most of the best results were obtained using the depth
  // reduction proposed in [3] and [4]").
  const auto baseline = algebra::depth_optimize(gen::make_multiplier_n(8));
  RewriteStats stats;
  const auto optimized = functional_hashing(baseline, db(), variant_params("TF"), &stats);
  EXPECT_LT(stats.size_after, stats.size_before);
}

TEST(RewriteTest, BottomUpReducesDepthOptimizedMultiplier) {
  const auto baseline = algebra::depth_optimize(gen::make_multiplier_n(8));
  RewriteStats stats;
  functional_hashing(baseline, db(), variant_params("B"), &stats);
  EXPECT_LT(stats.size_after, stats.size_before);
}

TEST(RewriteTest, PipelineEquivalenceOnAdder) {
  // End-to-end: generate -> algebraic depth optimization -> functional
  // hashing, then prove equivalence against the original generator output
  // with the SAT miter (adder miters are easy).
  const auto m = gen::make_adder_n(16);
  const auto baseline = algebra::depth_optimize(m);
  for (const auto& variant : {"TF", "BF"}) {
    const auto optimized = functional_hashing(baseline, db(), variant_params(variant));
    EXPECT_EQ(cec::check_equivalence(m, optimized).status, cec::CecStatus::equivalent)
        << variant;
  }
}

TEST(RewriteTest, DepthPreservingVariantKeepsDepthOnMultiplier) {
  const auto baseline = algebra::depth_optimize(gen::make_multiplier_n(8));
  RewriteStats stats;
  functional_hashing(baseline, db(), variant_params("TD"), &stats);
  EXPECT_EQ(stats.depth_after, stats.depth_before);
  EXPECT_LE(stats.size_after, stats.size_before);
}

TEST(RewriteTest, DepthPreservingVariantLimitsDepthGrowth) {
  const auto m = gen::make_adder_n(16);
  RewriteStats t_stats, td_stats;
  functional_hashing(m, db(), variant_params("T"), &t_stats);
  functional_hashing(m, db(), variant_params("TD"), &td_stats);
  // The depth-preserving heuristic must never be worse in depth than the
  // unconstrained variant on this structured input.
  EXPECT_LE(td_stats.depth_after, t_stats.depth_after + 1);
}

TEST(RewriteTest, IdempotentOnDatabaseOptimum) {
  // A network that is already a database optimum cannot shrink further.
  std::mt19937 rng(11);
  for (int i = 0; i < 20; ++i) {
    const tt::TruthTable f(4, rng());
    mig::Mig m;
    const auto pis = m.create_pis(4);
    m.create_po(db().instantiate(f, m, pis));
    const uint32_t before = m.count_live_gates();
    const auto optimized = functional_hashing(m, db(), variant_params("T"));
    EXPECT_EQ(optimized.count_live_gates(), before) << "f=0x" << f.to_hex();
  }
}

}  // namespace
}  // namespace mighty::opt
