#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cec/cec.hpp"
#include "flow/flow.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "mig/algebra/algebra.hpp"
#include "test_util.hpp"

/// Corpus-level batch execution (flow::Corpus + flow::BatchRunner): a
/// network's result in a `threads=N` batch must be bit-identical to its
/// standalone `threads=1` pipeline run (checked structurally via BLIF
/// serialization), every optimized network must be SAT-equivalent to its
/// input, and the BatchReport roll-up must equal the sum of the per-network
/// reports.  These tests carry the `parallel` ctest label: the batch runner
/// plus the shared oracle are exactly the concurrency surface the
/// ThreadSanitizer CI leg exists for.

namespace mighty::flow {
namespace {

const exact::Database& db() {
  static const exact::Database instance =
      exact::Database::load_or_build(exact::default_database_path());
  return instance;
}

Session make_session(uint32_t threads = 1) {
  SessionParams params;
  params.threads = threads;
  return Session(exact::Database(db()), std::move(params));
}

std::string to_blif(const mig::Mig& m) {
  std::ostringstream os;
  io::write_blif(os, m);
  return os.str();
}

/// Four small depth-optimized networks: nontrivial cut structure, test-sized.
const Corpus& small_corpus() {
  static const Corpus corpus = [] {
    Corpus c;
    c.add("adder12", algebra::depth_optimize(gen::make_adder_n(12)));
    c.add("max8", algebra::depth_optimize(gen::make_max_n(8)));
    c.add("mult6", algebra::depth_optimize(gen::make_multiplier_n(6)));
    c.add("sqrt6", algebra::depth_optimize(gen::make_sqrt_n(6)));
    return c;
  }();
  return corpus;
}

constexpr const char* kScript = "TF;BFD;size";

// --- Corpus ------------------------------------------------------------------

TEST(CorpusTest, AddKeepsOrderAndRejectsDuplicates) {
  Corpus corpus;
  corpus.add("b", testutil::random_mig(3, 10, 2, 1)).add("a", testutil::random_mig(3, 10, 2, 2));
  ASSERT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus[0].name, "b");  // insertion order, not sorted
  EXPECT_EQ(corpus[1].name, "a");
  EXPECT_EQ(corpus.find("a"), 1u);
  EXPECT_EQ(corpus.find("missing"), corpus.size());
  EXPECT_THROW(corpus.add("a", testutil::random_mig(3, 10, 2, 3)),
               std::invalid_argument);
}

TEST(CorpusTest, FromDirectorySortsByFilename) {
  const auto dir = std::filesystem::temp_directory_path() / "mighty_corpus_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  // Written out of order; the loader must sort by filename.
  io::write_blif_file((dir / "zeta.blif").string(), gen::make_adder_n(2), "zeta");
  io::write_blif_file((dir / "alpha.blif").string(), gen::make_adder_n(3), "alpha");
  std::ofstream(dir / "notes.txt") << "not a network\n";  // ignored
  const auto corpus = Corpus::from_directory(dir.string());
  ASSERT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus[0].name, "alpha");
  EXPECT_EQ(corpus[1].name, "zeta");
  EXPECT_EQ(corpus[0].mig.num_pis(), 6u);
  EXPECT_TRUE(cec::random_simulation_equal(corpus[1].mig, gen::make_adder_n(2), 8, 7));
  std::filesystem::remove_all(dir);
}

TEST(CorpusTest, FromMissingDirectoryThrows) {
  EXPECT_THROW(Corpus::from_directory("/nonexistent/mighty/corpus"),
               std::runtime_error);
}

TEST(CorpusTest, ExportedCorpusMatchesGenerated) {
  // tools/make_corpus.cmake exports Corpus::generated_arithmetic to
  // $MIGHTY_CORPUS_DIR at build time; the ctest environment points here.
  const char* dir = std::getenv("MIGHTY_CORPUS_DIR");
  if (dir == nullptr) {
    GTEST_SKIP() << "MIGHTY_CORPUS_DIR not set (run under ctest)";
  }
  // Once the environment promises a corpus, a missing directory is a broken
  // export, not a reason to skip — the consistency check must stay red.
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "MIGHTY_CORPUS_DIR points at a missing directory: " << dir;
  const auto exported = Corpus::from_directory(dir);
  const auto generated = Corpus::generated_arithmetic();
  ASSERT_EQ(exported.size(), generated.size());
  for (size_t i = 0; i < generated.size(); ++i) {
    EXPECT_EQ(exported[i].name, generated[i].name);
    EXPECT_EQ(exported[i].mig.num_pis(), generated[i].mig.num_pis());
    EXPECT_EQ(exported[i].mig.num_pos(), generated[i].mig.num_pos());
  }
}

// --- batch == standalone determinism -----------------------------------------

TEST(BatchFlowTest, BatchMatchesStandaloneAtAnyThreadCount) {
  const Corpus& corpus = small_corpus();
  const auto pipeline = Pipeline::parse(kScript);

  // The reference: every network standalone, threads=1.
  std::vector<mig::Mig> reference;
  std::vector<FlowReport> reference_reports(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    auto session = make_session(1);
    reference.push_back(
        pipeline.run(corpus[i].mig, session, &reference_reports[i]));
  }

  for (const uint32_t threads : {1u, 4u}) {
    auto session = make_session(threads);
    BatchReport report;
    const auto results = BatchRunner(session).run(corpus, pipeline, &report);
    ASSERT_EQ(results.size(), corpus.size());
    ASSERT_EQ(report.networks.size(), corpus.size());
    EXPECT_EQ(report.failures(), 0u);
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(to_blif(results[i]), to_blif(reference[i]))
          << corpus[i].name << " diverges in a threads=" << threads << " batch";
      const FlowReport& batch_flow = report.networks[i].flow;
      const FlowReport& standalone = reference_reports[i];
      EXPECT_EQ(report.networks[i].name, corpus[i].name);
      ASSERT_EQ(batch_flow.passes.size(), standalone.passes.size());
      for (size_t p = 0; p < standalone.passes.size(); ++p) {
        EXPECT_EQ(batch_flow.passes[p].size_after, standalone.passes[p].size_after);
        EXPECT_EQ(batch_flow.passes[p].depth_after, standalone.passes[p].depth_after);
        EXPECT_EQ(batch_flow.passes[p].replacements, standalone.passes[p].replacements);
        EXPECT_EQ(batch_flow.passes[p].oracle_queries,
                  standalone.passes[p].oracle_queries);
      }
      EXPECT_EQ(batch_flow.size_after, standalone.size_after);
      EXPECT_EQ(batch_flow.depth_after, standalone.depth_after);
    }
  }
}

TEST(BatchFlowTest, OptimizedNetworksAreSatEquivalentToInputs) {
  const Corpus& corpus = small_corpus();
  auto session = make_session(4);
  const auto results =
      BatchRunner(session).run(corpus, Pipeline::parse(kScript));
  ASSERT_EQ(results.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(cec::check_equivalence(corpus[i].mig, results[i]).status,
              cec::CecStatus::equivalent)
        << corpus[i].name;
  }
}

// --- report roll-up ----------------------------------------------------------

TEST(BatchFlowTest, ReportTotalsEqualSumOfNetworkReports) {
  const Corpus& corpus = small_corpus();
  auto session = make_session(4);
  BatchReport report;
  BatchRunner(session).run(corpus, Pipeline::parse(kScript), &report);

  uint32_t size_before = 0, size_after = 0;
  uint64_t depth_before = 0, depth_after = 0;
  uint64_t queries = 0, answered = 0, cache5 = 0, synthesized = 0, failures = 0;
  for (const auto& network : report.networks) {
    size_before += network.flow.size_before;
    size_after += network.flow.size_after;
    depth_before += network.flow.depth_before;
    depth_after += network.flow.depth_after;
    queries += network.flow.oracle_queries;
    answered += network.flow.oracle_answered;
    cache5 += network.flow.oracle_cache5_hits;
    synthesized += network.flow.oracle_synthesized;
    failures += network.flow.oracle_failures;
    EXPECT_GT(network.flow.seconds, 0.0) << network.name;
  }
  EXPECT_EQ(report.size_before, size_before);
  EXPECT_EQ(report.size_after, size_after);
  EXPECT_EQ(report.depth_before, depth_before);
  EXPECT_EQ(report.depth_after, depth_after);
  EXPECT_EQ(report.oracle_queries, queries);
  EXPECT_EQ(report.oracle_answered, answered);
  EXPECT_EQ(report.oracle_cache5_hits, cache5);
  EXPECT_EQ(report.oracle_synthesized, synthesized);
  EXPECT_EQ(report.oracle_failures, failures);
  EXPECT_GT(report.oracle_queries, 0u);
  EXPECT_GE(report.seconds, 0.0);
  EXPECT_NE(report.summary().find("corpus"), std::string::npos);
}

// --- scheduling-surface edges ------------------------------------------------

TEST(BatchFlowTest, RejectsParallelDirectiveInPipelines) {
  auto session = make_session(2);
  BatchRunner runner(session);
  Corpus corpus;
  corpus.add("tiny", testutil::random_mig(4, 20, 2, 11));
  EXPECT_THROW(runner.run(corpus, Pipeline::parse("TF;parallel:2")),
               std::invalid_argument);
  // Nested inside a combinator too: the scan is recursive via to_string().
  EXPECT_THROW(runner.run(corpus, Pipeline::parse("(TF;parallel:2)*2")),
               std::invalid_argument);
}

/// A pass that fails on one specific network (identified by PI count).
class ExplodingPass final : public Pass {
public:
  explicit ExplodingPass(uint32_t pis) : pis_(pis) {}
  std::string name() const override { return "explode"; }
  mig::Mig run(const mig::Mig& mig, Session&, FlowReport& report) const override {
    if (mig.num_pis() == pis_) throw std::runtime_error("exploding on request");
    PassStats entry;
    entry.name = name();
    entry.size_before = entry.size_after = mig.count_live_gates();
    entry.depth_before = entry.depth_after = mig.depth();
    report.passes.push_back(std::move(entry));
    return mig;
  }
  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<ExplodingPass>(pis_);
  }

private:
  uint32_t pis_;
};

TEST(BatchFlowTest, FailedNetworkPassesThroughAndOthersComplete) {
  const Corpus& corpus = small_corpus();
  const size_t victim = corpus.find("max8");
  ASSERT_LT(victim, corpus.size());
  Pipeline pipeline;
  pipeline.rewrite("TF").add(
      std::make_unique<ExplodingPass>(corpus[victim].mig.num_pis()));
  for (const uint32_t threads : {1u, 4u}) {
    auto session = make_session(threads);
    BatchReport report;
    const auto results = BatchRunner(session).run(corpus, pipeline, &report);
    EXPECT_EQ(report.failures(), 1u);
    EXPECT_NE(report.networks[victim].error.find("exploding"), std::string::npos);
    // The failed network passes through unchanged; the rest optimized.
    EXPECT_EQ(to_blif(results[victim]), to_blif(corpus[victim].mig));
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (i == victim) continue;
      EXPECT_TRUE(report.networks[i].error.empty()) << corpus[i].name;
      EXPECT_LT(results[i].count_live_gates(), corpus[i].mig.count_live_gates());
    }
  }
}

// --- corpus-wide oracle sharing ----------------------------------------------

TEST(BatchFlowTest, SharedOracleAmortizesSynthesisAcrossNetworks) {
  // Two structurally similar networks: the 5-input functions the first one
  // synthesizes must be cache hits for the second, so the batch performs
  // strictly fewer syntheses than the sum of cold per-network sessions —
  // without changing any result.
  Corpus corpus;
  corpus.add("adder12", algebra::depth_optimize(gen::make_adder_n(12)));
  corpus.add("adder16", algebra::depth_optimize(gen::make_adder_n(16)));
  const auto pipeline = Pipeline::parse("TF5");
  EXPECT_EQ(pipeline.to_string(), "TF5");  // the 5-cut word round-trips

  uint64_t cold_synthesized = 0;
  std::vector<mig::Mig> cold_results;
  for (const auto& entry : corpus) {
    auto session = make_session(1);
    FlowReport report;
    cold_results.push_back(pipeline.run(entry.mig, session, &report));
    cold_synthesized += report.oracle_synthesized;
  }

  auto session = make_session(2);
  BatchReport report;
  const auto results = BatchRunner(session).run(corpus, pipeline, &report);
  EXPECT_GT(report.oracle_synthesized, 0u);
  EXPECT_LT(report.oracle_synthesized, cold_synthesized);
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(to_blif(results[i]), to_blif(cold_results[i])) << corpus[i].name;
  }
}

}  // namespace
}  // namespace mighty::flow
