#include "exact/complexity.hpp"

#include <gtest/gtest.h>

#include <random>

#include "exact/bounds.hpp"
#include "mig/simulation.hpp"

namespace mighty::exact {
namespace {

const Database& db() {
  static const Database instance =
      Database::load_or_build(default_database_path());
  return instance;
}

TEST(ComplexityTest, SizeDistributionMatchesPaperTable1) {
  const auto rows = size_distribution(db());
  ASSERT_EQ(rows.size(), 8u);
  // Classes column of Table I.
  const uint32_t classes[] = {2, 2, 5, 18, 42, 117, 35, 1};
  // Functions column of Table I.
  const uint64_t functions[] = {10, 80, 640, 3300, 10352, 40064, 11058, 32};
  uint64_t total_functions = 0;
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rows[i].classes, classes[i]) << "size " << i;
    EXPECT_EQ(rows[i].functions, functions[i]) << "size " << i;
    total_functions += rows[i].functions;
  }
  EXPECT_EQ(total_functions, 65536u);
}

TEST(ComplexityTest, FormulaLengthsThreeVariables) {
  const auto lengths = compute_formula_lengths(3);
  ASSERT_EQ(lengths.size(), 256u);
  // Everything is realizable.
  for (const uint8_t l : lengths) EXPECT_NE(l, 0xff);
  // Trivial functions have length 0.
  EXPECT_EQ(lengths[0x00], 0);
  EXPECT_EQ(lengths[0xff], 0);
  EXPECT_EQ(lengths[0xaa], 0);  // x0
  EXPECT_EQ(lengths[0x55], 0);  // !x0
  // Single majority / AND / OR have length 1.
  EXPECT_EQ(lengths[0xe8], 1);  // <x0 x1 x2>
  EXPECT_EQ(lengths[0x88], 1);  // x0 & x1
  EXPECT_EQ(lengths[0xee], 1);  // x0 | x1
  // XOR2 has length 3.
  EXPECT_EQ(lengths[0x66], 3);
}

TEST(ComplexityTest, FormulaLengthAtLeastCircuitSize) {
  // L(f) >= C(f): a formula is a circuit without sharing.
  const auto lengths = compute_formula_lengths(4);
  for (const auto& entry : db().entries()) {
    EXPECT_GE(lengths[entry.representative.bits()], entry.chain.size())
        << "0x" << entry.representative.to_hex();
  }
}

TEST(ComplexityTest, FormulaLengthDistributionMatchesPaperTable2) {
  const auto lengths = compute_formula_lengths(4);
  const auto rows = length_distribution(lengths);
  // L(f) columns of Table II: lengths 0..9.
  const uint32_t classes[] = {2, 2, 5, 18, 37, 84, 63, 7, 2, 2};
  const uint64_t functions[] = {10, 80, 640, 3300, 9312, 28680, 22568, 832, 80, 34};
  ASSERT_EQ(rows.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rows[i].classes, classes[i]) << "length " << i;
    EXPECT_EQ(rows[i].functions, functions[i]) << "length " << i;
  }
}

TEST(ComplexityTest, DepthOfParityIsFour) {
  // The parity class is the unique depth-4 class (paper Sec. V-A).
  const auto parity = tt::TruthTable(4, 0x6996);
  const auto r = synthesize_minimum_depth_mig(parity);
  ASSERT_EQ(r.status, SynthesisStatus::success);
  EXPECT_EQ(r.depth, 4u);
  EXPECT_EQ(r.chain.simulate(), parity);
}

TEST(ComplexityTest, DepthExamples) {
  // <abc>-like class: depth 1; S_{0,2}: depth 3 despite size 7.
  const auto maj = tt::TruthTable::maj(tt::TruthTable::projection(4, 0),
                                       tt::TruthTable::projection(4, 1),
                                       tt::TruthTable::projection(4, 2));
  const auto r1 = synthesize_minimum_depth_mig(maj);
  ASSERT_EQ(r1.status, SynthesisStatus::success);
  EXPECT_EQ(r1.depth, 1u);
}

TEST(BoundsTest, Theorem2Values) {
  EXPECT_EQ(theorem2_bound(4), 7u);
  EXPECT_EQ(theorem2_bound(5), 17u);
  EXPECT_EQ(theorem2_bound(6), 37u);
  EXPECT_EQ(theorem2_bound(7), 77u);
}

TEST(BoundsTest, ShannonConstructionIsCorrect) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 20; ++i) {
    const tt::TruthTable f(5, (static_cast<uint64_t>(rng()) << 32) | rng());
    mig::Mig m;
    const auto pis = m.create_pis(5);
    m.create_po(build_shannon(db(), f, m, pis));
    EXPECT_EQ(mig::output_truth_tables(m)[0], f);
  }
}

TEST(BoundsTest, ShannonSizesRespectTheorem2) {
  std::mt19937_64 rng(4);
  for (int i = 0; i < 20; ++i) {
    const tt::TruthTable f5(5, (static_cast<uint64_t>(rng()) << 32) | rng());
    EXPECT_LE(shannon_size(db(), f5), theorem2_bound(5));
  }
  for (int i = 0; i < 10; ++i) {
    const tt::TruthTable f6(6, (static_cast<uint64_t>(rng()) << 32) | rng());
    EXPECT_LE(shannon_size(db(), f6), theorem2_bound(6));
  }
}

TEST(BoundsTest, FourVariableBaseCase) {
  // For 4-variable functions the construction degenerates to the database
  // entry, whose worst case is exactly 7 gates.
  uint32_t worst = 0;
  std::mt19937 rng(5);
  for (int i = 0; i < 200; ++i) {
    const tt::TruthTable f(4, rng());
    worst = std::max(worst, shannon_size(db(), f));
  }
  EXPECT_LE(worst, 7u);
}

}  // namespace
}  // namespace mighty::exact
