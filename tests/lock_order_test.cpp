#include <gtest/gtest.h>

#include "util/mutex.hpp"

// The Debug lock-order checker (util/mutex.hpp): acquisitions in the
// documented order pass and record edges in the process-global graph; an
// acquisition that closes a cycle — or nests two locks of the same rank —
// aborts via MIGHTY_ASSERT.  The checker compiles out under NDEBUG /
// MIGHTY_UNCHECKED and under ThreadSanitizer, so every test skips itself
// when lock_order::kEnabled is false rather than silently passing.
//
// Death tests use the "threadsafe" style: the child re-executes the test
// from a fresh process, so each death statement must build the graph edge it
// needs before triggering the inversion — the parent's graph state does not
// carry over (and the parent never runs the statement).

namespace {

using mighty::util::LockRank;
using mighty::util::Mutex;
using mighty::util::MutexLock;
namespace lock_order = mighty::util::lock_order;

TEST(LockOrder, DocumentedOrderPassesAndRecordsEdges) {
  if (!lock_order::kEnabled) GTEST_SKIP() << "lock-order checker compiled out";
  Mutex outer(LockRank::test_outer);
  Mutex inner(LockRank::test_inner);
  {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
  }
  EXPECT_TRUE(lock_order::observed(LockRank::test_outer, LockRank::test_inner));
  EXPECT_FALSE(lock_order::observed(LockRank::test_inner, LockRank::test_outer));
  // Repeating the documented order is idempotent, not a violation.
  {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
  }
  EXPECT_TRUE(lock_order::observed(LockRank::test_outer, LockRank::test_inner));
}

TEST(LockOrder, UntrackedRankStaysOutOfTheGraph) {
  if (!lock_order::kEnabled) GTEST_SKIP() << "lock-order checker compiled out";
  Mutex tracked(LockRank::test_outer);
  Mutex untracked;  // LockRank::none
  {
    MutexLock hold_untracked(untracked);
    MutexLock hold_tracked(tracked);
  }
  {
    // The opposite nesting with an untracked lock must not trip the checker.
    MutexLock hold_tracked(tracked);
    MutexLock hold_untracked(untracked);
  }
  EXPECT_FALSE(lock_order::observed(LockRank::none, LockRank::test_outer));
}

TEST(LockOrder, AssertHeldPassesUnderTheLock) {
  Mutex mu(LockRank::test_outer);
  MutexLock hold(mu);
  mu.assert_held();  // must not abort
}

TEST(LockOrderDeathTest, InversionAborts) {
  if (!lock_order::kEnabled) GTEST_SKIP() << "lock-order checker compiled out";
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex outer(LockRank::test_outer);
        Mutex inner(LockRank::test_inner);
        {
          MutexLock hold_outer(outer);
          MutexLock hold_inner(inner);  // records test_outer -> test_inner
        }
        MutexLock hold_inner(inner);
        MutexLock hold_outer(outer);  // closes the cycle: must abort
      },
      "lock-order inversion");
}

TEST(LockOrderDeathTest, SameRankNestingAborts) {
  if (!lock_order::kEnabled) GTEST_SKIP() << "lock-order checker compiled out";
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex first(LockRank::test_outer);
        Mutex second(LockRank::test_outer);
        MutexLock hold_first(first);
        MutexLock hold_second(second);  // same rank nested: must abort
      },
      "same-rank nesting");
}

TEST(LockOrderDeathTest, AssertHeldAbortsWithoutTheLock) {
  if (!lock_order::kEnabled) GTEST_SKIP() << "lock-order checker compiled out";
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::test_outer);
        mu.assert_held();
      },
      "assert_held");
}

}  // namespace
