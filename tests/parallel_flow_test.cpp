#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "cec/cec.hpp"
#include "flow/flow.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "mig/algebra/algebra.hpp"
#include "mig/simulation.hpp"
#include "test_util.hpp"
#include "tt/truth_table.hpp"
#include "util/thread_pool.hpp"

/// Determinism and safety of the parallel flow engine: `threads=N` must
/// produce bit-identical networks to `threads=1` (checked structurally via
/// BLIF serialization, which is stronger than CEC), the shared oracle must
/// stay consistent under concurrent queries, and the "parallel:n" script
/// directive must round-trip.  These tests carry the `parallel` ctest label
/// so the ThreadSanitizer CI leg can select exactly the concurrency surface.

namespace mighty::flow {
namespace {

const exact::Database& db() {
  static const exact::Database instance =
      exact::Database::load_or_build(exact::default_database_path());
  return instance;
}

Session make_session(uint32_t threads = 1) {
  SessionParams params;
  params.threads = threads;
  return Session(exact::Database(db()), std::move(params));
}

std::string to_blif(const mig::Mig& m) {
  std::ostringstream os;
  io::write_blif(os, m);
  return os.str();
}

/// Runs `script` at both thread counts and checks the outputs are the same
/// network, gate for gate, with matching reports.
void expect_thread_count_invariance(const mig::Mig& m, const std::string& script,
                                    uint32_t threads) {
  auto s1 = make_session(1);
  auto sn = make_session(threads);
  FlowReport r1, rn;
  const auto o1 = Pipeline::parse(script).run(m, s1, &r1);
  const auto on = Pipeline::parse(script).run(m, sn, &rn);

  EXPECT_EQ(to_blif(o1), to_blif(on)) << script << " diverges at threads=" << threads;
  ASSERT_EQ(r1.passes.size(), rn.passes.size());
  for (size_t i = 0; i < r1.passes.size(); ++i) {
    EXPECT_EQ(r1.passes[i].size_after, rn.passes[i].size_after) << i;
    EXPECT_EQ(r1.passes[i].depth_after, rn.passes[i].depth_after) << i;
    EXPECT_EQ(r1.passes[i].replacements, rn.passes[i].replacements) << i;
    EXPECT_EQ(r1.passes[i].oracle_queries, rn.passes[i].oracle_queries) << i;
  }
  EXPECT_EQ(r1.size_after, rn.size_after);
  EXPECT_EQ(r1.depth_after, rn.depth_after);
  EXPECT_TRUE(cec::random_simulation_equal(m, on, 16, 0xA11CE));
}

// --- the acceptance networks: 32-bit multiplier and square root --------------

TEST(ParallelFlowTest, Multiplier32IsThreadCountInvariant) {
  const auto m = algebra::depth_optimize(gen::make_multiplier_n(32));
  expect_thread_count_invariance(m, "TF;BFD;size", 4);
}

TEST(ParallelFlowTest, Sqrt16ConvergenceFlowIsThreadCountInvariant) {
  const auto m = algebra::depth_optimize(gen::make_sqrt_n(16));
  expect_thread_count_invariance(m, "(TF;BFD;size)*<4", 4);
}

TEST(ParallelFlowTest, OddThreadCountsMatchToo) {
  const auto m = algebra::depth_optimize(gen::make_multiplier_n(8));
  expect_thread_count_invariance(m, "(TF;BFD;size)*<3", 3);
  expect_thread_count_invariance(m, "BF;size;TFD", 7);
}

TEST(ParallelFlowTest, ParallelResultIsSatProvenEquivalent) {
  const auto m = algebra::depth_optimize(gen::make_multiplier_n(8));
  auto session = make_session(4);
  const auto out = Pipeline::parse("TF;BFD;size").run(m, session);
  EXPECT_EQ(cec::check_equivalence(m, out).status, cec::CecStatus::equivalent);
}

// --- session / script surface ------------------------------------------------

TEST(ParallelFlowTest, WorkerPoolMaterializesOnlyWhenParallel) {
  auto session = make_session(1);
  EXPECT_EQ(session.worker_pool(), nullptr);
  session.set_threads(4);
  ASSERT_NE(session.worker_pool(), nullptr);
  EXPECT_EQ(session.worker_pool()->parallelism(), 4u);
  EXPECT_EQ(session.executor().threads(), 4u);
  session.set_threads(0);  // clamps to 1
  EXPECT_EQ(session.threads(), 1u);
  EXPECT_EQ(session.worker_pool(), nullptr);
}

TEST(ParallelFlowTest, ParallelDirectiveParsesAndRoundTrips) {
  EXPECT_EQ(Pipeline::parse("parallel:4").to_string(), "parallel:4");
  EXPECT_EQ(Pipeline::parse("parallel4;TF").to_string(), "parallel:4;TF");
  EXPECT_EQ(Pipeline::parse(" PARALLEL : 2 ; size ").to_string(), "parallel:2;size");
  EXPECT_EQ(Pipeline().parallel(8).to_string(), "parallel:8");
  EXPECT_THROW(Pipeline::parse("parallel"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("parallel:0"), std::invalid_argument);
  EXPECT_THROW(Pipeline::parse("parallel:9999"), std::invalid_argument);
}

TEST(ParallelFlowTest, ParallelDirectiveSetsSessionThreads) {
  auto session = make_session(1);
  const auto m = testutil::random_mig(6, 60, 4, 5);
  FlowReport report;
  const auto out = Pipeline::parse("parallel:2;TF").run(m, session, &report);
  EXPECT_EQ(session.threads(), 2u);
  // The directive adds no trajectory entry — only TF reports.
  ASSERT_EQ(report.passes.size(), 1u);
  EXPECT_EQ(report.passes[0].name, "TF");
  // And the directive changes throughput only, never the result.
  auto sequential = make_session(1);
  const auto expected = Pipeline::parse("TF").run(m, sequential);
  EXPECT_EQ(to_blif(out), to_blif(expected));
}

// --- concurrent oracle -------------------------------------------------------

TEST(ParallelOracleTest, ConcurrentQueriesKeepCountersConsistent) {
  auto session = make_session(1);
  auto& oracle = session.oracle();
  // Hammer the oracle from four threads with overlapping 4-input functions;
  // every query must be answered and accounted exactly once.
  util::ThreadPool pool(4);
  constexpr size_t kQueries = 2000;
  std::atomic<uint64_t> answered{0};
  pool.parallel_for(kQueries, [&](size_t i) {
    const auto f = tt::TruthTable(4, 0x0123456789abcdefull * (i % 97) + i % 11);
    if (oracle.query(f)) answered.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(oracle.queries(), kQueries);
  EXPECT_EQ(oracle.answered(), answered.load());
  EXPECT_EQ(oracle.answered(), kQueries);  // 4-input lookups always hit
  EXPECT_DOUBLE_EQ(oracle.hit_rate(), 1.0);
}

TEST(ParallelOracleTest, ConcurrentInstantiationMatchesQueries) {
  auto session = make_session(1);
  auto& oracle = session.oracle();
  util::ThreadPool pool(4);
  // Each task builds its own private network, as region tasks do.
  std::vector<uint32_t> sizes(64, 0);
  pool.parallel_for(sizes.size(), [&](size_t i) {
    const auto f = tt::TruthTable(4, 0x96696996u ^ (0x1111u * i));
    const auto info = oracle.query(f);
    ASSERT_TRUE(info.has_value());
    mig::Mig net;
    const auto pis = net.create_pis(4);
    net.create_po(oracle.instantiate(f, net, pis));
    sizes[i] = net.count_live_gates();
    EXPECT_EQ(mig::output_truth_tables(net)[0], f);
    EXPECT_EQ(net.count_live_gates(), info->size);
  });
}

}  // namespace
}  // namespace mighty::flow
