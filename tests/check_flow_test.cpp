// Integration of check/ with the flow layer, over the real NPN database:
// every pass of a real pipeline leaves a network the full validator accepts,
// the `check` script word runs as a pass, and the built 222-class database
// passes the artifact lint.  (The corrupted-input negative suite lives in
// check_test.cpp; this file needs the npndb fixture and is labeled `flow`.)

#include <gtest/gtest.h>

#include <stdexcept>

#include "check/check.hpp"
#include "exact/database.hpp"
#include "flow/flow.hpp"
#include "gen/arith.hpp"
#include "mig/mig.hpp"

namespace mighty::flow {
namespace {

const exact::Database& db() {
  static const exact::Database instance =
      exact::Database::load_or_build(exact::default_database_path());
  return instance;
}

Session make_session() { return Session(db()); }

TEST(CheckFlowTest, FullCheckLevelHoldsAcrossGeneratorCorpus) {
  auto session = make_session();
  session.set_check_level(CheckLevel::full);
  const auto pipeline = Pipeline::parse("TF;size;BFD;depth");
  for (const auto& [name, network] : {
           std::pair<const char*, mig::Mig>{"adder8", gen::make_adder_n(8)},
           {"mult4", gen::make_multiplier_n(4)},
           {"square5", gen::make_square_n(5)},
       }) {
    FlowReport report;
    mig::Mig optimized;
    // With check level `full`, run_into validates structure, derived data,
    // FFR partition, shard plan and wave order after *every* pass and throws
    // on the first violation — so a plain no-throw run is the assertion.
    ASSERT_NO_THROW(optimized = pipeline.run(network, session, &report)) << name;
    EXPECT_TRUE(check::validate_at(optimized, /*full=*/true).ok()) << name;
    EXPECT_TRUE(check::validate_report(report).ok()) << name;
  }
}

TEST(CheckFlowTest, CheckScriptWordRunsAsAPass) {
  const auto pipeline = Pipeline::parse("TF;check;size");
  EXPECT_EQ(pipeline.to_string(), "TF;check;size");
  EXPECT_EQ(Pipeline::parse(pipeline.to_string()).to_string(), "TF;check;size");

  auto session = make_session();
  session.set_check_level(CheckLevel::off);  // the explicit pass still checks
  FlowReport report;
  const auto optimized = pipeline.run(gen::make_adder_n(6), session, &report);
  EXPECT_TRUE(check::validate(optimized).ok());
  ASSERT_EQ(report.passes.size(), 3u);
  EXPECT_EQ(report.passes[1].name, "check");
  // An analysis pass: the network passes through untouched.
  EXPECT_EQ(report.passes[1].size_before, report.passes[1].size_after);
  EXPECT_EQ(report.passes[1].depth_before, report.passes[1].depth_after);
}

TEST(CheckFlowTest, CheckLevelDefaultsAndSetter) {
  auto session = make_session();
#ifdef NDEBUG
  EXPECT_EQ(session.check_level(), CheckLevel::off);
#else
  EXPECT_EQ(session.check_level(), CheckLevel::fast);
#endif
  session.set_check_level(CheckLevel::full);
  EXPECT_EQ(session.check_level(), CheckLevel::full);
  session.set_check_level(CheckLevel::off);
  EXPECT_EQ(session.check_level(), CheckLevel::off);
}

TEST(CheckFlowTest, BuiltDatabasePassesLint) {
  const auto report = check::lint_database(db());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
}

}  // namespace
}  // namespace mighty::flow
