#include "exact/depth_table.hpp"

#include "util/assert.hpp"
#include <stdexcept>

namespace mighty::exact {

namespace {

constexpr uint16_t maj_bits(uint16_t a, uint16_t b, uint16_t c) {
  return static_cast<uint16_t>((a & b) | (a & c) | (b & c));
}

/// Subcube-emptiness oracle over a set of 16-bit functions: answers "does the
/// set contain a member matching (must-one mask, must-zero mask)?" in O(1)
/// after a 3^16 sum-over-subsets sweep.
class SubcubeOracle {
public:
  explicit SubcubeOracle(const std::vector<uint8_t>& member) {
    // Ternary digit i of a cube index: 0 = bit forced 0, 1 = forced 1,
    // 2 = free.  Cubes without free digits are points; replacing the lowest
    // free digit by 0/1 yields smaller indices, so one ascending sweep works.
    pow3_[0] = 1;
    for (int i = 1; i <= 16; ++i) pow3_[i] = pow3_[i - 1] * 3;
    table_.assign(pow3_[16], 0);

    // Points first: index of a point cube is sum over set bits of 3^i.
    for (uint32_t f = 0; f < member.size(); ++f) {
      if (!member[f]) continue;
      uint32_t index = 0;
      for (int i = 0; i < 16; ++i) {
        if ((f >> i) & 1) index += pow3_[i];
      }
      table_[index] = 1;
    }
    // Ascending sweep: for cubes with a free digit, combine the two halves.
    std::array<uint8_t, 16> digits{};
    for (uint32_t index = 0; index < pow3_[16]; ++index) {
      // Decode digits incrementally (count in base 3).
      if (index > 0) {
        int i = 0;
        while (digits[static_cast<size_t>(i)] == 2) {
          digits[static_cast<size_t>(i)] = 0;
          ++i;
        }
        ++digits[static_cast<size_t>(i)];
      }
      int free_digit = -1;
      for (int i = 0; i < 16; ++i) {
        if (digits[static_cast<size_t>(i)] == 2) {
          free_digit = i;
          break;
        }
      }
      if (free_digit < 0) continue;  // point, already set
      const uint32_t base = index - 2 * pow3_[free_digit];
      table_[index] =
          static_cast<uint8_t>(table_[base] | table_[base + pow3_[free_digit]]);
    }
  }

  bool nonempty(uint16_t must_one, uint16_t must_zero) const {
    MIGHTY_ASSERT((must_one & must_zero) == 0);
    uint32_t index = 0;
    for (int i = 0; i < 16; ++i) {
      const uint32_t digit = (must_one >> i) & 1 ? 1u : ((must_zero >> i) & 1 ? 0u : 2u);
      index += digit * pow3_[i];
    }
    return table_[index] != 0;
  }

private:
  std::array<uint32_t, 17> pow3_{};
  std::vector<uint8_t> table_;
};

}  // namespace

DepthTable::DepthTable() {
  depth_.assign(kNumFunctions, kUnknown);
  decomposition_.assign(kNumFunctions, {0, 0, 0});

  // Depth 0: constants and (complemented) projections.
  std::vector<uint16_t> level_members;
  auto assign = [&](uint16_t f, uint8_t d) {
    if (depth_[f] == kUnknown) {
      depth_[f] = d;
      level_members.push_back(f);
    }
  };
  assign(0, 0);
  assign(0xffff, 0);
  for (uint32_t v = 0; v < 4; ++v) {
    const auto proj = static_cast<uint16_t>(tt::TruthTable::var_mask(v) & 0xffff);
    assign(proj, 0);
    assign(static_cast<uint16_t>(~proj), 0);
  }

  // Depth 1 and 2 by direct enumeration over the previous closure.
  std::vector<uint16_t> closure = level_members;
  uint64_t found = closure.size();
  for (uint8_t d = 1; d <= 2; ++d) {
    const std::vector<uint16_t> base = closure;
    level_members.clear();
    for (size_t i = 0; i < base.size(); ++i) {
      for (size_t j = i + 1; j < base.size(); ++j) {
        const uint16_t u = base[i] & base[j];
        const uint16_t x = base[i] ^ base[j];
        if (x == 0) continue;
        for (size_t k = j + 1; k < base.size(); ++k) {
          const auto f = static_cast<uint16_t>(u | (x & base[k]));
          if (depth_[f] == kUnknown) {
            depth_[f] = d;
            decomposition_[f] = {base[i], base[j], base[k]};
            level_members.push_back(f);
            ++found;
          }
        }
      }
    }
    closure.insert(closure.end(), level_members.begin(), level_members.end());
  }

  // Depth >= 3: reverse search per unknown function with the oracle.
  for (uint8_t d = 3; found < kNumFunctions && d < 16; ++d) {
    std::vector<uint8_t> member(kNumFunctions, 0);
    for (const uint16_t f : closure) member[f] = 1;
    const SubcubeOracle oracle(member);

    std::vector<uint16_t> next;
    for (uint32_t bits = 0; bits < kNumFunctions; ++bits) {
      if (depth_[bits] != kUnknown) continue;
      const auto f = static_cast<uint16_t>(bits);
      bool resolved = false;
      for (const uint16_t b : closure) {
        // f = <abc>: rows with b = 1 need f = a | c, rows with b = 0 need
        // f = a & c.  Fixing a then forces c on all but the "free" rows.
        const auto force1_a = static_cast<uint16_t>(~b & f);   // a = 1 (and c = 1)
        const auto force0_a = static_cast<uint16_t>(b & ~f);   // a = 0 (and c = 0)
        for (const uint16_t a : closure) {
          if ((a & force1_a) != force1_a || (a & force0_a) != 0) continue;
          const auto must1 = static_cast<uint16_t>(force1_a | (b & f & ~a));
          const auto must0 = static_cast<uint16_t>(force0_a | (~b & ~f & a));
          if (!oracle.nonempty(must1, must0)) continue;
          // Extract a concrete c for the witness decomposition.
          for (const uint16_t c : closure) {
            if ((c & must1) == must1 && (c & must0) == 0) {
              MIGHTY_ASSERT(maj_bits(a, b, c) == f);
              depth_[f] = d;
              decomposition_[f] = {a, b, c};
              resolved = true;
              break;
            }
          }
          MIGHTY_ASSERT(resolved);
          break;
        }
        if (resolved) break;
      }
      if (resolved) {
        next.push_back(f);
        ++found;
      }
    }
    closure.insert(closure.end(), next.begin(), next.end());
  }
  if (found != kNumFunctions) {
    throw std::logic_error("depth table incomplete");
  }
}

const DepthTable& DepthTable::instance() {
  static const DepthTable table;
  return table;
}

uint32_t DepthTable::depth(const tt::TruthTable& f) const {
  const auto f4 = f.num_vars() < 4 ? f.extend(4) : f;
  if (f4.num_vars() != 4) {
    throw std::invalid_argument("depth table covers up to 4 variables");
  }
  return depth_[f4.bits()];
}

RefLit DepthTable::build_witness(uint16_t bits, MigChain& chain) const {
  // Terminals.
  if (bits == 0) return make_ref_lit(0, false);
  if (bits == 0xffff) return make_ref_lit(0, true);
  for (uint32_t v = 0; v < 4; ++v) {
    const auto proj = static_cast<uint16_t>(tt::TruthTable::var_mask(v) & 0xffff);
    if (bits == proj) return make_ref_lit(1 + v, false);
    if (bits == static_cast<uint16_t>(~proj)) return make_ref_lit(1 + v, true);
  }
  const auto& [a, b, c] = decomposition_[bits];
  MigChain::Step step;
  step.fanin[0] = build_witness(a, chain);
  step.fanin[1] = build_witness(b, chain);
  step.fanin[2] = build_witness(c, chain);
  chain.steps.push_back(step);
  return make_ref_lit(4 + static_cast<uint32_t>(chain.steps.size()), false);
}

MigChain DepthTable::witness(const tt::TruthTable& f) const {
  const auto f4 = f.num_vars() < 4 ? f.extend(4) : f;
  MigChain chain;
  chain.num_vars = 4;
  chain.output = build_witness(static_cast<uint16_t>(f4.bits()), chain);
  MIGHTY_ASSERT(chain.simulate() == f4);
  return chain;
}

std::vector<uint64_t> DepthTable::function_histogram() const {
  std::vector<uint64_t> histogram;
  for (uint32_t bits = 0; bits < kNumFunctions; ++bits) {
    const uint8_t d = depth_[bits];
    if (histogram.size() <= d) histogram.resize(d + 1, 0);
    ++histogram[d];
  }
  return histogram;
}

}  // namespace mighty::exact
