#include "exact/encoding_smt.hpp"

#include "util/assert.hpp"

namespace mighty::exact {

using sat::Lit;
using sat::negate;

namespace {

uint32_t bits_for(uint32_t max_value) {
  uint32_t bits = 1;
  while ((uint64_t{1} << bits) <= max_value) ++bits;
  return bits;
}

}  // namespace

SmtEncoder::SmtEncoder(sat::Solver& solver, const tt::TruthTable& f, uint32_t num_gates,
                       const EncodeOptions& options)
    : ctx_(solver),
      f_(f),
      k_(num_gates),
      n_(f.num_vars()),
      rows_(1u << f.num_vars()),
      options_(options) {
  MIGHTY_ASSERT(k_ >= 1);
}

void SmtEncoder::encode() {
  s_.resize(k_);
  p_.resize(k_);
  a_.resize(k_);
  b_.resize(k_);

  for (uint32_t l = 0; l < k_; ++l) {
    const uint32_t dom = domain_size(l);
    const uint32_t width = bits_for(dom - 1);
    for (uint32_t c = 0; c < 3; ++c) {
      s_[l][c] = ctx_.bv_variable(width);
      p_[l][c] = ctx_.fresh();
      a_[l][c].resize(rows_);
      for (uint32_t j = 0; j < rows_; ++j) a_[l][c][j] = ctx_.fresh();
      // Range constraint s < n + l + 1 in our 0-based domain (paper eq. (5)).
      // When the domain exactly fills the bit-width the constraint is
      // vacuous (and the truncated constant would wrap to zero).
      if (dom < (uint64_t{1} << width)) {
        ctx_.assert_lit(ctx_.ult_const(s_[l][c], dom));
      }
    }

    // Operand ordering (paper eq. (10)).
    if (options_.operand_ordering) {
      ctx_.assert_lit(ctx_.ult(s_[l][0], s_[l][1]));
      ctx_.assert_lit(ctx_.ult(s_[l][1], s_[l][2]));
    }

    // Majority functionality (paper eq. (4)): bind b to <a1 a2 a3>.
    b_[l].resize(rows_);
    for (uint32_t j = 0; j < rows_; ++j) {
      b_[l][j] = ctx_.make_maj(a_[l][0][j], a_[l][1][j], a_[l][2][j]);
    }

    // Connection semantics (paper eqs. (6)-(8)).
    for (uint32_t c = 0; c < 3; ++c) {
      for (uint32_t i = 0; i < dom; ++i) {
        const Lit sel = ctx_.eq_const(s_[l][c], i);
        for (uint32_t j = 0; j < rows_; ++j) {
          const Lit av = a_[l][c][j];
          Lit target;  // value of the selected operand before polarity
          if (i == 0) {
            target = ctx_.false_lit();
          } else if (i <= n_) {
            target = ctx_.literal(((j >> (i - 1)) & 1) != 0);
          } else {
            target = b_[i - n_ - 1][j];
          }
          // sel -> (a <-> target xor p)
          ctx_.assert_implies_eq(sel, av, ctx_.make_xor(target, p_[l][c]));
        }
      }
    }
  }

  // Function semantics (paper eq. (9), output polarity folded away).
  for (uint32_t j = 0; j < rows_; ++j) {
    ctx_.assert_lit(f_.get_bit(j) ? b_[k_ - 1][j] : negate(b_[k_ - 1][j]));
  }

  if (options_.all_gates_used) {
    for (uint32_t l = 0; l + 1 < k_; ++l) {
      std::vector<Lit> used;
      for (uint32_t l2 = l + 1; l2 < k_; ++l2) {
        for (uint32_t c = 0; c < 3; ++c) {
          used.push_back(ctx_.eq_const(s_[l2][c], n_ + 1 + l));
        }
      }
      ctx_.solver().add_clause(used);
    }
  }
}

MigChain SmtEncoder::extract() const {
  MigChain chain;
  chain.num_vars = n_;
  for (uint32_t l = 0; l < k_; ++l) {
    MigChain::Step step;
    for (uint32_t c = 0; c < 3; ++c) {
      const auto selected = static_cast<uint32_t>(ctx_.model_value(s_[l][c]));
      MIGHTY_ASSERT(selected < domain_size(l));
      step.fanin[c] =
          make_ref_lit(selected, ctx_.solver().model_value_lit(p_[l][c]));
    }
    chain.steps.push_back(step);
  }
  chain.output = make_ref_lit(n_ + k_, false);
  return chain;
}

}  // namespace mighty::exact
