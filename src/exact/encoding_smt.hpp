#pragma once

#include <memory>
#include <vector>

#include "exact/encoding.hpp"
#include "smt/bitvector.hpp"

namespace mighty::exact {

/// The paper's SMT(QF_BV) formulation (Sec. III) built on the `smt::Context`
/// bit-blasting layer: select variables are bit-vectors s_{c,l} constrained
/// by s_{c,l} < n + l (eq. (5)), connections are implications guarded by
/// bit-vector equalities (eqs. (6)-(8)), and operand ordering uses bit-vector
/// comparisons (eq. (10)).
class SmtEncoder final : public Encoder {
public:
  SmtEncoder(sat::Solver& solver, const tt::TruthTable& f, uint32_t num_gates,
             const EncodeOptions& options = {});

  void encode() override;
  MigChain extract() const override;

private:
  uint32_t domain_size(uint32_t l) const { return 1 + n_ + l; }

  smt::Context ctx_;
  tt::TruthTable f_;
  uint32_t k_;
  uint32_t n_;
  uint32_t rows_;
  EncodeOptions options_;

  std::vector<std::array<smt::BitVector, 3>> s_;
  std::vector<std::array<sat::Lit, 3>> p_;
  std::vector<std::array<std::vector<sat::Lit>, 3>> a_;
  std::vector<std::vector<sat::Lit>> b_;
};

}  // namespace mighty::exact
