#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exact/chain.hpp"
#include "exact/exact_synthesis.hpp"
#include "npn/npn.hpp"
#include "tt/truth_table.hpp"
#include "util/mutex.hpp"

/// \file database.hpp
/// \brief The precomputed database of minimum MIGs for all 222 NPN classes of
/// 4-variable functions (paper Sec. IV, V-A).
///
/// Functional hashing replaces 4-input cuts with precomputed minimum
/// representations; since MIG size is invariant under input/output negation
/// and input permutation, one minimum chain per NPN class suffices.

namespace mighty::exact {

struct DatabaseEntry {
  tt::TruthTable representative;  ///< NPN class representative (4 variables)
  MigChain chain;                 ///< minimum-size chain for the representative
  /// Conflicts spent across the size loop when the entry was built.
  uint64_t conflicts = 0;
  /// Wall-clock seconds spent building the entry.
  double build_seconds = 0.0;
};

class Database {
public:
  Database() = default;
  /// Copies and moves transfer the entries but start with a cold lookup
  /// memo: cached LookupResults hold pointers into the source's entry
  /// storage, and the memo's stripe locks are not transferable anyway.
  Database(const Database& other) : entries_(other.entries_), index_(other.index_) {}
  Database(Database&& other) noexcept
      : entries_(std::move(other.entries_)), index_(std::move(other.index_)) {}
  Database& operator=(const Database& other) {
    if (this != &other) {
      entries_ = other.entries_;
      index_ = other.index_;
      clear_lookup_cache();
    }
    return *this;
  }
  Database& operator=(Database&& other) noexcept {
    entries_ = std::move(other.entries_);
    index_ = std::move(other.index_);
    clear_lookup_cache();
    return *this;
  }

  /// Builds the database by exact synthesis over all 222 class
  /// representatives.  `options` tunes the underlying synthesis (budget,
  /// encoder).  Throws std::runtime_error if any class fails to synthesize
  /// within the options' limits.
  static Database build(const SynthesisOptions& options = {});

  /// Loads from the text file written by save(); returns std::nullopt if the
  /// file does not exist or is malformed.
  static std::optional<Database> load(const std::string& path);
  /// Same validation over an already-open stream (in-memory buffers, fuzz
  /// harnesses, sockets); a stream is never "missing", only malformed.
  static std::optional<Database> load(std::istream& is);

  /// Loads `path` if present, otherwise builds and saves to `path`.
  static Database load_or_build(const std::string& path,
                                const SynthesisOptions& options = {});

  void save(const std::string& path) const;

  /// Looks up the minimum chain for an arbitrary function of up to 4
  /// variables.  Returns the NPN canonization result alongside the entry, so
  /// the caller can instantiate the stored chain with transformed leaves:
  ///   f == apply(entry.representative, inverse(transform)).
  /// Thread-safe: concurrent lookups share the striped canonization memo.
  struct LookupResult {
    const DatabaseEntry* entry;
    npn::Transform transform;  ///< canonizing transform of the query
  };
  LookupResult lookup(const tt::TruthTable& f) const;

  /// Builds f on top of the given leaf signals inside `mig`, using the stored
  /// minimum chain, honoring the NPN transform.  `leaves[i]` drives variable
  /// i of f.  Unused leaves are ignored.
  mig::Signal instantiate(const tt::TruthTable& f, mig::Mig& mig,
                          const std::vector<mig::Signal>& leaves) const;

  const std::vector<DatabaseEntry>& entries() const { return entries_; }
  size_t num_entries() const { return entries_.size(); }

  /// Histogram of entry sizes (index = number of majority gates); reproduces
  /// the "Classes" column of Table I.
  std::vector<uint32_t> size_histogram() const;

private:
  std::vector<DatabaseEntry> entries_;
  std::unordered_map<uint64_t, size_t> index_;  ///< representative bits -> entry
  /// Canonization memo: cut functions repeat massively during rewriting, so
  /// lookups cache the full result keyed by the query's bits.  Lookups are
  /// the hottest operation of every rewriting shard, so the memo is striped:
  /// each stripe guards its own map, canonization happens outside any lock
  /// (it is pure), and a racing duplicate insert is harmlessly dropped by
  /// emplace.  Results are returned by value, never by reference into a map.
  struct LookupStripe {
    util::Mutex mutex{util::LockRank::db_lookup_stripe};
    std::unordered_map<uint64_t, LookupResult> map MIGHTY_GUARDED_BY(mutex);
  };
  static constexpr size_t kLookupStripes = 64;
  mutable std::array<LookupStripe, kLookupStripes> lookup_cache_;

  LookupStripe& lookup_stripe(uint64_t bits) const {
    return lookup_cache_[(bits * 0x9e3779b97f4a7c15ull) >> 58 & (kLookupStripes - 1)];
  }
  void clear_lookup_cache() {
    for (auto& stripe : lookup_cache_) {
      util::MutexLock lock(stripe.mutex);
      stripe.map.clear();
    }
  }
};

/// Default on-disk location used by tools, benches and tests: the
/// MIGHTY_DB_PATH environment variable when set, else "data/mig_npn4.db"
/// relative to the current directory.
std::string default_database_path();

}  // namespace mighty::exact
