#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exact/chain.hpp"
#include "exact/exact_synthesis.hpp"
#include "npn/npn.hpp"
#include "tt/truth_table.hpp"

/// \file database.hpp
/// \brief The precomputed database of minimum MIGs for all 222 NPN classes of
/// 4-variable functions (paper Sec. IV, V-A).
///
/// Functional hashing replaces 4-input cuts with precomputed minimum
/// representations; since MIG size is invariant under input/output negation
/// and input permutation, one minimum chain per NPN class suffices.

namespace mighty::exact {

struct DatabaseEntry {
  tt::TruthTable representative;  ///< NPN class representative (4 variables)
  MigChain chain;                 ///< minimum-size chain for the representative
  /// Conflicts spent across the size loop when the entry was built.
  uint64_t conflicts = 0;
  /// Wall-clock seconds spent building the entry.
  double build_seconds = 0.0;
};

class Database {
public:
  /// Builds the database by exact synthesis over all 222 class
  /// representatives.  `options` tunes the underlying synthesis (budget,
  /// encoder).  Throws std::runtime_error if any class fails to synthesize
  /// within the options' limits.
  static Database build(const SynthesisOptions& options = {});

  /// Loads from the text file written by save(); returns std::nullopt if the
  /// file does not exist or is malformed.
  static std::optional<Database> load(const std::string& path);

  /// Loads `path` if present, otherwise builds and saves to `path`.
  static Database load_or_build(const std::string& path,
                                const SynthesisOptions& options = {});

  void save(const std::string& path) const;

  /// Looks up the minimum chain for an arbitrary function of up to 4
  /// variables.  Returns the NPN canonization result alongside the entry, so
  /// the caller can instantiate the stored chain with transformed leaves:
  ///   f == apply(entry.representative, inverse(transform)).
  struct LookupResult {
    const DatabaseEntry* entry;
    npn::Transform transform;  ///< canonizing transform of the query
  };
  LookupResult lookup(const tt::TruthTable& f) const;

  /// Builds f on top of the given leaf signals inside `mig`, using the stored
  /// minimum chain, honoring the NPN transform.  `leaves[i]` drives variable
  /// i of f.  Unused leaves are ignored.
  mig::Signal instantiate(const tt::TruthTable& f, mig::Mig& mig,
                          const std::vector<mig::Signal>& leaves) const;

  const std::vector<DatabaseEntry>& entries() const { return entries_; }
  size_t num_entries() const { return entries_.size(); }

  /// Histogram of entry sizes (index = number of majority gates); reproduces
  /// the "Classes" column of Table I.
  std::vector<uint32_t> size_histogram() const;

private:
  std::vector<DatabaseEntry> entries_;
  std::unordered_map<uint64_t, size_t> index_;  ///< representative bits -> entry
  /// Canonization memo: cut functions repeat massively during rewriting, so
  /// lookups cache the full result keyed by the query's bits.
  mutable std::unordered_map<uint64_t, LookupResult> lookup_cache_;
};

/// Default on-disk location used by tools, benches and tests: the
/// MIGHTY_DB_PATH environment variable when set, else "data/mig_npn4.db"
/// relative to the current directory.
std::string default_database_path();

}  // namespace mighty::exact
