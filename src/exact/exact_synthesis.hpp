#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "exact/chain.hpp"
#include "exact/encoding.hpp"
#include "tt/truth_table.hpp"

/// \file exact_synthesis.hpp
/// \brief Minimum-size and minimum-depth exact synthesis of MIGs (paper
/// Sec. III).
///
/// Size-minimum synthesis solves the decision problem "exists an MIG with k
/// gates for f" for k = 0, 1, 2, ... until satisfiable.  Depth-minimum
/// synthesis (used for the D(f) column of Table II) solves a complete-ternary-
/// tree formulation for increasing depth; sharing never reduces depth, so a
/// depth-optimal formula is also a depth-optimal circuit.

namespace mighty::exact {

enum class EncoderKind { onehot, smt };

struct SynthesisOptions {
  uint32_t max_gates = 20;
  /// Conflict budget per decision problem; -1 = unlimited.
  int64_t conflict_limit = -1;
  EncoderKind encoder = EncoderKind::onehot;
  EncodeOptions encode;
  /// If set, the chain is re-simulated and checked against f after
  /// extraction (cheap; on by default as a safety net).
  bool verify = true;
};

enum class SynthesisStatus {
  success,    ///< minimum chain found
  timeout,    ///< a decision problem exceeded the conflict budget
  exhausted,  ///< no solution within max_gates
};

struct SynthesisResult {
  SynthesisStatus status = SynthesisStatus::exhausted;
  MigChain chain;  ///< valid iff status == success
  /// Conflicts spent per decision problem, indexed by gate count offset.
  std::vector<uint64_t> conflicts_per_step;
};

/// Finds a size-minimum MIG chain for f (up to 6 variables).
SynthesisResult synthesize_minimum_mig(const tt::TruthTable& f,
                                       const SynthesisOptions& options = {});

/// If f is constant or (complemented) projection, returns the trivial
/// zero-gate chain.
std::optional<MigChain> trivial_chain(const tt::TruthTable& f);

struct DepthSynthesisOptions {
  uint32_t max_depth = 6;
  int64_t conflict_limit = -1;
  /// Force the SAT tree formulation even for <= 4 variables (slow; the
  /// default path uses the exhaustive function-space depth table).
  bool use_sat = false;
};

struct DepthSynthesisResult {
  SynthesisStatus status = SynthesisStatus::exhausted;
  uint32_t depth = 0;
  MigChain chain;  ///< a depth-minimal realization (as a tree)
};

/// Finds the minimum depth D(f) over all MIGs for f, together with a witness.
DepthSynthesisResult synthesize_minimum_depth_mig(const tt::TruthTable& f,
                                                  const DepthSynthesisOptions& options = {});

}  // namespace mighty::exact
