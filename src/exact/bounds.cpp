#include "exact/bounds.hpp"

#include "util/assert.hpp"

namespace mighty::exact {

mig::Signal build_shannon(const Database& db, const tt::TruthTable& f, mig::Mig& mig,
                          const std::vector<mig::Signal>& leaves) {
  MIGHTY_ASSERT(leaves.size() >= f.num_vars());
  if (f.num_vars() <= 4) {
    return db.instantiate(f, mig, leaves);
  }
  const uint32_t var = f.num_vars() - 1;
  // Reduce the cofactors to one fewer variable.
  auto drop_top = [&](const tt::TruthTable& g) {
    tt::TruthTable r(var);
    for (uint32_t m = 0; m < r.num_bits(); ++m) r.set_bit(m, g.get_bit(m));
    return r;
  };
  const auto f0 = drop_top(f.cofactor(var, false));
  const auto f1 = drop_top(f.cofactor(var, true));
  const mig::Signal s0 = build_shannon(db, f0, mig, leaves);
  const mig::Signal s1 = build_shannon(db, f1, mig, leaves);
  const mig::Signal x = leaves[var];

  // f = <1 <0 !x f0> <0 x f1>> (paper, proof of Theorem 2).
  const mig::Signal low = mig.create_and(!x, s0);
  const mig::Signal high = mig.create_and(x, s1);
  return mig.create_or(low, high);
}

uint32_t shannon_size(const Database& db, const tt::TruthTable& f) {
  mig::Mig m;
  const auto leaves = m.create_pis(f.num_vars());
  m.create_po(build_shannon(db, f, m, leaves));
  return m.count_live_gates();
}

}  // namespace mighty::exact
