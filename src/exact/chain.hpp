#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mig/mig.hpp"
#include "tt/truth_table.hpp"

/// \file chain.hpp
/// \brief Compact MIG "chains": the result format of exact synthesis.
///
/// A chain is a straight-line majority program: step m computes the majority
/// of three (possibly complemented) references to the constant, the input
/// variables, or earlier steps.  This mirrors the node list extracted from a
/// satisfying assignment in Theorem 1 of the paper, and is the storage format
/// of the precomputed-optimum database.

namespace mighty::exact {

/// Reference literal encoding: `2 * ref + complemented` with
/// ref 0 = constant 0, refs 1..n = inputs x_1..x_n, ref n+1+m = step m.
using RefLit = uint16_t;

constexpr RefLit make_ref_lit(uint32_t ref, bool complemented) {
  return static_cast<RefLit>(2 * ref + (complemented ? 1 : 0));
}
constexpr uint32_t ref_of(RefLit l) { return l >> 1; }
constexpr bool ref_complemented(RefLit l) { return (l & 1) != 0; }

struct MigChain {
  uint32_t num_vars = 0;
  struct Step {
    std::array<RefLit, 3> fanin{};
    bool operator==(const Step&) const = default;
  };
  std::vector<Step> steps;
  /// Output literal (for trivial functions it may reference a terminal).
  RefLit output = 0;

  bool operator==(const MigChain&) const = default;

  uint32_t size() const { return static_cast<uint32_t>(steps.size()); }

  /// Truth table over num_vars variables computed by the chain.
  tt::TruthTable simulate() const;

  /// Longest path from the output to a terminal, in visited steps; equals the
  /// MIG depth of the chain when instantiated as a tree/DAG.
  uint32_t depth() const;

  /// Per-step levels (terminals at level 0).
  std::vector<uint32_t> step_levels() const;

  /// Builds the chain inside an MIG, with `inputs[i]` standing for x_{i+1};
  /// `inputs` must provide at least num_vars signals.  Returns the output
  /// signal.  Structural hashing in the target MIG may share steps.
  mig::Signal instantiate(mig::Mig& mig, const std::vector<mig::Signal>& inputs) const;

  /// Serialization to/from one text line (used by the database file format).
  std::string to_string() const;
  static MigChain from_string(const std::string& line);
};

}  // namespace mighty::exact
