#include "exact/chain.hpp"

#include <algorithm>
#include "util/assert.hpp"
#include <sstream>
#include <stdexcept>

namespace mighty::exact {

tt::TruthTable MigChain::simulate() const {
  const uint32_t n = num_vars;
  std::vector<tt::TruthTable> values;
  values.reserve(1 + n + steps.size());
  values.push_back(tt::TruthTable::constant(n, false));
  for (uint32_t v = 0; v < n; ++v) values.push_back(tt::TruthTable::projection(n, v));
  auto value_of = [&](RefLit l) {
    const auto& t = values[ref_of(l)];
    return ref_complemented(l) ? ~t : t;
  };
  for (const Step& s : steps) {
    for (const RefLit l : s.fanin) {
      MIGHTY_ASSERT(ref_of(l) < values.size());
    }
    values.push_back(
        tt::TruthTable::maj(value_of(s.fanin[0]), value_of(s.fanin[1]), value_of(s.fanin[2])));
  }
  return value_of(output);
}

std::vector<uint32_t> MigChain::step_levels() const {
  std::vector<uint32_t> level(1 + num_vars + steps.size(), 0);
  for (uint32_t m = 0; m < steps.size(); ++m) {
    uint32_t max_level = 0;
    for (const RefLit l : steps[m].fanin) {
      max_level = std::max(max_level, level[ref_of(l)]);
    }
    level[1 + num_vars + m] = max_level + 1;
  }
  return level;
}

uint32_t MigChain::depth() const { return step_levels()[ref_of(output)]; }

mig::Signal MigChain::instantiate(mig::Mig& mig,
                                  const std::vector<mig::Signal>& inputs) const {
  MIGHTY_ASSERT(inputs.size() >= num_vars);
  std::vector<mig::Signal> values;
  values.reserve(1 + num_vars + steps.size());
  values.push_back(mig.get_constant(false));
  for (uint32_t v = 0; v < num_vars; ++v) values.push_back(inputs[v]);
  auto value_of = [&](RefLit l) { return values[ref_of(l)] ^ ref_complemented(l); };
  for (const Step& s : steps) {
    values.push_back(
        mig.create_maj(value_of(s.fanin[0]), value_of(s.fanin[1]), value_of(s.fanin[2])));
  }
  return value_of(output);
}

std::string MigChain::to_string() const {
  std::ostringstream os;
  os << num_vars << ' ' << steps.size() << ' ' << output;
  for (const Step& s : steps) {
    os << ' ' << s.fanin[0] << ' ' << s.fanin[1] << ' ' << s.fanin[2];
  }
  return os.str();
}

MigChain MigChain::from_string(const std::string& line) {
  std::istringstream is(line);
  MigChain chain;
  size_t num_steps = 0;
  uint32_t output = 0;
  if (!(is >> chain.num_vars >> num_steps >> output)) {
    throw std::runtime_error("malformed chain line: " + line);
  }
  chain.output = static_cast<RefLit>(output);
  for (size_t m = 0; m < num_steps; ++m) {
    Step s;
    uint32_t f0 = 0, f1 = 0, f2 = 0;
    if (!(is >> f0 >> f1 >> f2)) {
      throw std::runtime_error("truncated chain line: " + line);
    }
    s.fanin = {static_cast<RefLit>(f0), static_cast<RefLit>(f1), static_cast<RefLit>(f2)};
    chain.steps.push_back(s);
  }
  return chain;
}

}  // namespace mighty::exact
