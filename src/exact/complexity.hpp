#pragma once

#include <cstdint>
#include <vector>

#include "exact/database.hpp"
#include "tt/truth_table.hpp"

/// \file complexity.hpp
/// \brief Complexity measures of 4-variable MIGs (paper Table II).
///
/// Three measures over all NPN classes:
///   C(f)  combinational complexity: gates of a size-minimum MIG (Table I);
///   L(f)  length: operators in the smallest majority *expression* (tree);
///   D(f)  depth: longest root-to-terminal path of a depth-minimum MIG.
///
/// L is computed by dynamic programming in function space: cost-m functions
/// are exactly the majorities of three functions whose costs sum to m-1
/// (formulas share nothing, so costs add).  D uses the depth-constrained
/// exact synthesis of `exact_synthesis.hpp`.

namespace mighty::exact {

struct ComplexityRow {
  uint32_t value = 0;      ///< the measure (gate count / length / depth)
  uint32_t classes = 0;    ///< NPN classes with this value
  uint64_t functions = 0;  ///< functions (orbit sizes summed)
};

/// C(f) rows from the size-minimum database.
std::vector<ComplexityRow> size_distribution(const Database& db);

/// Minimum formula length of every function over `num_vars` variables
/// (num_vars <= 4), indexed by truth-table bits.
std::vector<uint8_t> compute_formula_lengths(uint32_t num_vars);

/// L(f) rows over the 4-variable NPN classes.
std::vector<ComplexityRow> length_distribution(const std::vector<uint8_t>& lengths);

struct DepthDistributionOptions {
  int64_t conflict_limit = -1;
};

/// D(f) rows over the 4-variable NPN classes (one depth synthesis each).
std::vector<ComplexityRow> depth_distribution(
    const DepthDistributionOptions& options = {});

}  // namespace mighty::exact
