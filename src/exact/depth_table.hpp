#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "exact/chain.hpp"
#include "tt/truth_table.hpp"

/// \file depth_table.hpp
/// \brief Exact minimum depth D(f) of every 4-variable function.
///
/// D(f) is computed in function space rather than by SAT: the set S_d of
/// functions realizable at depth <= d is grown level by level,
///   S_0 = constants and (complemented) projections,
///   S_{d+1} = { <abc> : a, b, c in S_d },
/// exploiting that sharing never reduces depth, so depth-optimal circuits may
/// be assumed to be trees.  Levels 1 and 2 are enumerated directly; from
/// level 3 on, each still-unknown function is tested by a reverse search:
/// f = <abc> constrains a, b, c bitwise once one operand is fixed
/// (rows where b = 1 force f = a|c, rows where b = 0 force f = a&c), and a
/// subcube-emptiness oracle over S_d (a 3^16 sum-over-subsets table) answers
/// the existence of the completing operand in O(1).
///
/// Every function also records one decomposition triple, so a witness chain
/// (a depth-optimal tree) can be reconstructed.

namespace mighty::exact {

class DepthTable {
public:
  /// Builds the table (a few seconds); prefer the shared instance().
  DepthTable();

  /// The process-wide table, built on first use.
  static const DepthTable& instance();

  /// Minimum depth of a function of up to 4 variables.
  uint32_t depth(const tt::TruthTable& f) const;

  /// A depth-optimal tree realization.
  MigChain witness(const tt::TruthTable& f) const;

  /// Distribution: index = depth, value = number of 4-variable functions.
  std::vector<uint64_t> function_histogram() const;

private:
  static constexpr uint32_t kNumFunctions = 1u << 16;
  static constexpr uint8_t kUnknown = 0xff;

  RefLit build_witness(uint16_t bits, MigChain& chain) const;

  std::vector<uint8_t> depth_;
  /// Decomposition triple <a b c> per non-trivial function (function bits).
  std::vector<std::array<uint16_t, 3>> decomposition_;
};

}  // namespace mighty::exact
