#pragma once

#include <cstdint>

#include "exact/chain.hpp"
#include "sat/solver.hpp"
#include "tt/truth_table.hpp"

/// \file encoding.hpp
/// \brief Common interface of the exact-synthesis decision-problem encoders.
///
/// Both encoders express the question "is there an MIG with k majority gates
/// computing f?" (paper Sec. III, constraints (4)-(10)):
///
///  * `OnehotEncoder` blasts the select variables one-hot, directly as CNF.
///  * `SmtEncoder` builds the paper's bit-vector formulation on the
///    `smt::Context` layer, which then bit-blasts onto the same SAT core --
///    the pipeline Z3 applies internally for QF_BV.
///
/// The output-polarity variable p of the paper is omitted: by self-duality
/// <x1 x2 x3> = !<!x1 !x2 !x3>, the complement of a function has an MIG of the
/// same size, obtained by complementing the root's fanins (the paper makes
/// the same observation).

namespace mighty::exact {

struct EncodeOptions {
  /// Enforce s1 < s2 < s3 (paper eq. (10)); also rules out duplicate operands.
  bool operand_ordering = true;
  /// Every non-root gate must be referenced by a later gate.
  bool all_gates_used = true;
  /// For consecutive gates where the later one does not reference the
  /// earlier, require the largest operands to be non-decreasing (a relaxation
  /// of the colexicographic step ordering used in SAT-based exact synthesis;
  /// sound because adjacent independent steps can always be swapped into
  /// order).
  bool step_ordering = true;
  /// Every variable in the functional support must be selected by some gate.
  bool support_usage = true;
  /// Restrict every non-root gate to at most one complemented fanin.  Sound
  /// by self-duality: <!x !y !z> = !<xyz>, so a gate with two or more
  /// complemented fanins can be flipped, toggling the polarity of its fanout
  /// edges; the root absorbs the final complement in its own fanin
  /// polarities.
  bool polarity_normalization = true;
};

class Encoder {
public:
  virtual ~Encoder() = default;
  /// Emits all clauses into the solver.
  virtual void encode() = 0;
  /// Reads the chain out of the solver model (only after Result::sat).
  virtual MigChain extract() const = 0;
};

}  // namespace mighty::exact
