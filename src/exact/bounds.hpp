#pragma once

#include <cstdint>

#include "exact/database.hpp"
#include "mig/mig.hpp"
#include "tt/truth_table.hpp"

/// \file bounds.hpp
/// \brief The size upper bound of Theorem 2 and its constructive witness.
///
/// Theorem 2 (paper Sec. V-B): for n >= 4,
///     C<>(n) <= 10 * (2^(n-4) - 1) + 7.
/// The proof is constructive: Shannon expansion
///     f = <1 <0 !x f_x0> <0 x f_x1>>
/// costs 3 gates per variable elimination (2 C(n) + 3 recurrence), bottoming
/// out at the exhaustive 4-variable database where the worst class needs 7
/// gates.  `build_shannon` realizes exactly this construction.

namespace mighty::exact {

/// The Theorem-2 bound for n >= 4.
constexpr uint64_t theorem2_bound(uint32_t n) {
  return 10 * ((uint64_t{1} << (n - 4)) - 1) + 7;
}

/// Builds f over `leaves` by Shannon expansion down to the 4-variable
/// database.  Returns the output signal; gate count can be read from the
/// target network.
mig::Signal build_shannon(const Database& db, const tt::TruthTable& f, mig::Mig& mig,
                          const std::vector<mig::Signal>& leaves);

/// Convenience: builds a fresh single-output MIG for f and returns its live
/// gate count.
uint32_t shannon_size(const Database& db, const tt::TruthTable& f);

}  // namespace mighty::exact
