#include "exact/encoding_onehot.hpp"

#include "util/assert.hpp"

namespace mighty::exact {

using sat::Lit;
using sat::lit;
using sat::negate;

OnehotEncoder::OnehotEncoder(sat::Solver& solver, const tt::TruthTable& f,
                             uint32_t num_gates, const EncodeOptions& options)
    : solver_(solver),
      f_(f),
      k_(num_gates),
      n_(f.num_vars()),
      rows_(1u << f.num_vars()),
      options_(options) {
  MIGHTY_ASSERT(k_ >= 1);
}

void OnehotEncoder::encode() {
  // --- variable allocation ---------------------------------------------------
  s_.resize(k_);
  p_.resize(k_);
  a_.resize(k_);
  b_.resize(k_);
  for (uint32_t l = 0; l < k_; ++l) {
    for (uint32_t c = 0; c < 3; ++c) {
      s_[l][c].resize(domain_size(l));
      for (uint32_t i = 0; i < domain_size(l); ++i) s_[l][c][i] = solver_.new_var();
      p_[l][c] = solver_.new_var();
      a_[l][c].resize(rows_);
      for (uint32_t j = 0; j < rows_; ++j) a_[l][c][j] = solver_.new_var();
    }
    b_[l].resize(rows_);
    for (uint32_t j = 0; j < rows_; ++j) b_[l][j] = solver_.new_var();
  }

  for (uint32_t l = 0; l < k_; ++l) {
    const uint32_t dom = domain_size(l);

    // Exactly-one selection per operand.
    for (uint32_t c = 0; c < 3; ++c) {
      std::vector<Lit> at_least_one;
      at_least_one.reserve(dom);
      for (uint32_t i = 0; i < dom; ++i) at_least_one.push_back(lit(s_[l][c][i]));
      solver_.add_clause(at_least_one);
      for (uint32_t i = 0; i < dom; ++i) {
        for (uint32_t i2 = i + 1; i2 < dom; ++i2) {
          solver_.add_clause({lit(s_[l][c][i], true), lit(s_[l][c][i2], true)});
        }
      }
    }

    // Operand ordering s1 < s2 < s3 (paper eq. (10)).
    if (options_.operand_ordering) {
      for (uint32_t c = 0; c + 1 < 3; ++c) {
        for (uint32_t i = 0; i < dom; ++i) {
          for (uint32_t i2 = 0; i2 <= i; ++i2) {
            solver_.add_clause({lit(s_[l][c][i], true), lit(s_[l][c + 1][i2], true)});
          }
        }
      }
    }

    for (uint32_t j = 0; j < rows_; ++j) {
      // Majority semantics b = <a1 a2 a3> (paper eq. (4)).
      const Lit a1 = lit(a_[l][0][j]);
      const Lit a2 = lit(a_[l][1][j]);
      const Lit a3 = lit(a_[l][2][j]);
      const Lit bb = lit(b_[l][j]);
      solver_.add_clause({negate(a1), negate(a2), bb});
      solver_.add_clause({negate(a1), negate(a3), bb});
      solver_.add_clause({negate(a2), negate(a3), bb});
      solver_.add_clause({a1, a2, negate(bb)});
      solver_.add_clause({a1, a3, negate(bb)});
      solver_.add_clause({a2, a3, negate(bb)});
    }

    // Connection constraints (paper eq. (6)-(8)); our polarity convention is
    // p = 1 <=> complemented edge.
    for (uint32_t c = 0; c < 3; ++c) {
      const Lit pol = lit(p_[l][c]);
      for (uint32_t i = 0; i < dom; ++i) {
        const Lit sel = lit(s_[l][c][i]);
        for (uint32_t j = 0; j < rows_; ++j) {
          const Lit av = lit(a_[l][c][j]);
          if (i == 0) {
            // Constant 0: a = 0 xor p = p.
            solver_.add_clause({negate(sel), negate(av), pol});
            solver_.add_clause({negate(sel), av, negate(pol)});
          } else if (i <= n_) {
            // Input x_i: a = bit_i(j) xor p.
            const bool bit = ((j >> (i - 1)) & 1) != 0;
            if (bit) {
              solver_.add_clause({negate(sel), av, pol});
              solver_.add_clause({negate(sel), negate(av), negate(pol)});
            } else {
              solver_.add_clause({negate(sel), negate(av), pol});
              solver_.add_clause({negate(sel), av, negate(pol)});
            }
          } else {
            // Gate m = i - n - 1: a = b_m xor p.
            const Lit bm = lit(b_[i - n_ - 1][j]);
            solver_.add_clause({negate(sel), pol, negate(av), bm});
            solver_.add_clause({negate(sel), pol, av, negate(bm)});
            solver_.add_clause({negate(sel), negate(pol), negate(av), negate(bm)});
            solver_.add_clause({negate(sel), negate(pol), av, bm});
          }
        }
      }
    }
  }

  // Function semantics on the root gate (paper eq. (9), without the output
  // polarity; see encoding.hpp).
  for (uint32_t j = 0; j < rows_; ++j) {
    solver_.add_clause({lit(b_[k_ - 1][j], !f_.get_bit(j))});
  }

  // Every non-root gate feeds some later gate.
  if (options_.all_gates_used) {
    for (uint32_t l = 0; l + 1 < k_; ++l) {
      std::vector<Lit> used;
      for (uint32_t l2 = l + 1; l2 < k_; ++l2) {
        for (uint32_t c = 0; c < 3; ++c) {
          used.push_back(lit(s_[l2][c][n_ + 1 + l]));
        }
      }
      solver_.add_clause(used);
    }
  }

  // Polarity normalization: non-root gates carry at most one complemented
  // fanin.
  if (options_.polarity_normalization) {
    for (uint32_t l = 0; l + 1 < k_; ++l) {
      solver_.add_clause({lit(p_[l][0], true), lit(p_[l][1], true)});
      solver_.add_clause({lit(p_[l][0], true), lit(p_[l][2], true)});
      solver_.add_clause({lit(p_[l][1], true), lit(p_[l][2], true)});
    }
  }

  // Every support variable must be read by some gate.
  if (options_.support_usage) {
    for (uint32_t v = 0; v < n_; ++v) {
      if (!f_.depends_on(v)) continue;
      std::vector<Lit> reads;
      for (uint32_t l = 0; l < k_; ++l) {
        for (uint32_t c = 0; c < 3; ++c) {
          reads.push_back(lit(s_[l][c][1 + v]));
        }
      }
      solver_.add_clause(reads);
    }
  }

  // Step ordering: for consecutive gates l, l+1 where gate l+1 does not
  // reference gate l, the largest operand must not decrease.
  if (options_.step_ordering) {
    for (uint32_t l = 0; l + 1 < k_; ++l) {
      const sat::Var u = solver_.new_var();  // u <-> gate l+1 references gate l
      std::vector<Lit> refs;
      for (uint32_t c = 0; c < 3; ++c) {
        const Lit ref = lit(s_[l + 1][c][n_ + 1 + l]);
        solver_.add_clause({negate(ref), lit(u)});
        refs.push_back(ref);
      }
      refs.push_back(lit(u, true));
      solver_.add_clause(refs);
      const uint32_t dom = domain_size(l);
      for (uint32_t i = 1; i < dom; ++i) {
        for (uint32_t i2 = 0; i2 < i; ++i2) {
          solver_.add_clause({lit(u), lit(s_[l][2][i], true), lit(s_[l + 1][2][i2], true)});
        }
      }
    }
  }

  // Branch on structure first: selects, then polarities.
  for (uint32_t l = 0; l < k_; ++l) {
    for (uint32_t c = 0; c < 3; ++c) {
      for (uint32_t i = 0; i < domain_size(l); ++i) {
        solver_.boost_activity(s_[l][c][i], 10.0);
      }
      solver_.boost_activity(p_[l][c], 5.0);
    }
  }
}

MigChain OnehotEncoder::extract() const {
  MigChain chain;
  chain.num_vars = n_;
  for (uint32_t l = 0; l < k_; ++l) {
    MigChain::Step step;
    for (uint32_t c = 0; c < 3; ++c) {
      uint32_t selected = domain_size(l);
      for (uint32_t i = 0; i < domain_size(l); ++i) {
        if (solver_.model_value(s_[l][c][i])) {
          selected = i;
          break;
        }
      }
      MIGHTY_ASSERT(selected < domain_size(l));
      step.fanin[c] = make_ref_lit(selected, solver_.model_value(p_[l][c]));
    }
    chain.steps.push_back(step);
  }
  chain.output = make_ref_lit(n_ + k_, false);
  return chain;
}

}  // namespace mighty::exact
