#include "exact/complexity.hpp"

#include <stdexcept>

#include "exact/depth_table.hpp"
#include "exact/exact_synthesis.hpp"

namespace mighty::exact {

namespace {

void accumulate(std::vector<ComplexityRow>& rows, uint32_t value, uint64_t functions) {
  if (rows.size() <= value) {
    const auto old = rows.size();
    rows.resize(value + 1);
    for (auto v = old; v < rows.size(); ++v) rows[v].value = static_cast<uint32_t>(v);
  }
  ++rows[value].classes;
  rows[value].functions += functions;
}

}  // namespace

std::vector<ComplexityRow> size_distribution(const Database& db) {
  std::vector<ComplexityRow> rows;
  for (const auto& entry : db.entries()) {
    accumulate(rows, entry.chain.size(), npn::orbit_size(entry.representative));
  }
  return rows;
}

std::vector<uint8_t> compute_formula_lengths(uint32_t num_vars) {
  if (num_vars > 4) throw std::invalid_argument("formula-length DP limited to 4 vars");
  const uint32_t num_bits = 1u << num_vars;
  const uint64_t total = uint64_t{1} << num_bits;
  const uint64_t mask = tt::TruthTable::length_mask(num_vars);

  constexpr uint8_t kUnknown = 0xff;
  std::vector<uint8_t> cost(total, kUnknown);
  std::vector<std::vector<uint32_t>> by_cost(1);

  // Cost 0: constants and (complemented) projections.
  auto assign = [&](uint64_t bits, uint8_t m) {
    if (cost[bits] == kUnknown) {
      cost[bits] = m;
      if (by_cost.size() <= m) by_cost.resize(m + 1);
      by_cost[m].push_back(static_cast<uint32_t>(bits));
    }
  };
  assign(0, 0);
  assign(mask, 0);
  for (uint32_t v = 0; v < num_vars; ++v) {
    const uint64_t proj = tt::TruthTable::var_mask(v) & mask;
    assign(proj, 0);
    assign(~proj & mask, 0);
  }

  uint64_t found = by_cost[0].size();
  for (uint8_t m = 1; found < total && m < 32; ++m) {
    by_cost.resize(std::max<size_t>(by_cost.size(), m + 1));
    // A cost-m formula is <f1 f2 f3> with cost(f1)+cost(f2)+cost(f3) = m-1.
    for (uint32_t i = 0; i <= static_cast<uint32_t>(m - 1) && found < total; ++i) {
      for (uint32_t j = i; i + j <= static_cast<uint32_t>(m - 1) && found < total; ++j) {
        const uint32_t t = (m - 1) - i - j;
        if (t < j) break;
        if (i >= by_cost.size() || j >= by_cost.size() || t >= by_cost.size()) continue;
        const auto& li = by_cost[i];
        const auto& lj = by_cost[j];
        const auto& lt = by_cost[t];
        for (size_t bi = 0; bi < li.size() && found < total; ++bi) {
          const uint64_t b = li[bi];
          const size_t cj_start = (i == j) ? bi : 0;
          for (size_t cj = cj_start; cj < lj.size() && found < total; ++cj) {
            const uint64_t c = lj[cj];
            const uint64_t u = b & c;
            const uint64_t d = b ^ c;
            if (d == 0) continue;  // <ffx> = f, never a new function
            for (const uint32_t a : lt) {
              const uint64_t f = u | (d & a);
              if (cost[f] == kUnknown) {
                cost[f] = m;
                by_cost[m].push_back(static_cast<uint32_t>(f));
                ++found;
              }
            }
          }
        }
      }
    }
  }
  return cost;
}

std::vector<ComplexityRow> length_distribution(const std::vector<uint8_t>& lengths) {
  std::vector<ComplexityRow> rows;
  for (const auto& rep : npn::enumerate_classes(4)) {
    accumulate(rows, lengths[rep.bits()], npn::orbit_size(rep));
  }
  return rows;
}

std::vector<ComplexityRow> depth_distribution(const DepthDistributionOptions&) {
  const auto& table = DepthTable::instance();
  std::vector<ComplexityRow> rows;
  for (const auto& rep : npn::enumerate_classes(4)) {
    accumulate(rows, table.depth(rep), npn::orbit_size(rep));
  }
  return rows;
}

}  // namespace mighty::exact
