#include "exact/database.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"

namespace mighty::exact {

Database Database::build(const SynthesisOptions& options) {
  Database db;
  const auto classes = npn::enumerate_classes(4);
  for (const auto& rep : classes) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = synthesize_minimum_mig(rep, options);
    if (result.status != SynthesisStatus::success) {
      throw std::runtime_error("database build failed for class 0x" + rep.to_hex());
    }
    DatabaseEntry entry;
    entry.representative = rep;
    entry.chain = result.chain;
    for (const uint64_t c : result.conflicts_per_step) entry.conflicts += c;
    entry.build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    db.index_.emplace(rep.bits(), db.entries_.size());
    db.entries_.push_back(std::move(entry));
  }
  return db;
}

void Database::save(const std::string& path) const {
  // Temp-file + atomic rename: a crash mid-write must not leave a truncated
  // database for the next load (which would silently trigger a full rebuild),
  // and a concurrent loader sees either the old or the new complete file.
  util::write_file_atomically(path, [this](std::ostream& os) {
    // max_digits10 makes build_seconds round-trip exactly; the default
    // precision (6 significant digits) was lossy.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "mighty-mig-npn4-db v1 " << entries_.size() << '\n';
    for (const auto& entry : entries_) {
      os << entry.representative.to_hex() << ' ' << entry.conflicts << ' '
         << entry.build_seconds << ' ' << entry.chain.to_string() << '\n';
    }
  });
}

std::optional<Database> Database::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return load(is);
}

std::optional<Database> Database::load(std::istream& is) {
  std::string header;
  std::getline(is, header);
  std::istringstream hs(header);
  std::string magic, version;
  size_t count = 0;
  if (!(hs >> magic >> version >> count) || magic != "mighty-mig-npn4-db" ||
      version != "v1") {
    return std::nullopt;
  }
  Database db;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string hex;
    DatabaseEntry entry;
    if (!(ls >> hex >> entry.conflicts >> entry.build_seconds)) return std::nullopt;
    std::string rest;
    std::getline(ls, rest);
    try {
      entry.representative = tt::TruthTable::from_hex(4, hex);
      entry.chain = MigChain::from_string(rest);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    // Consistency check: the stored chain must realize the representative.
    if (entry.chain.simulate() != entry.representative) return std::nullopt;
    // A duplicate representative means a corrupt or hand-mangled file; the
    // old last-wins emplace kept the first entry in the index but leaked the
    // second into entries_ (and past the header count check).
    if (!db.index_.emplace(entry.representative.bits(), db.entries_.size()).second) {
      return std::nullopt;
    }
    db.entries_.push_back(std::move(entry));
  }
  if (db.entries_.size() != count) return std::nullopt;
  return db;
}

Database Database::load_or_build(const std::string& path, const SynthesisOptions& options) {
  if (auto db = load(path)) return std::move(*db);
  Database db = build(options);
  // Two processes that both missed now race to save.  The build takes
  // minutes, so a concurrent builder may have finished meanwhile: prefer its
  // completed file over overwriting it (the contents are equivalent, and
  // skipping the save avoids rename churn).  Saves themselves are atomic
  // renames, so even a genuine collision leaves a complete file.
  if (auto concurrent = load(path)) return std::move(*concurrent);
  db.save(path);
  return db;
}

Database::LookupResult Database::lookup(const tt::TruthTable& f) const {
  const auto f4 = f.num_vars() < 4 ? f.extend(4) : f;
  if (f4.num_vars() != 4) {
    throw std::invalid_argument("database lookup requires at most 4 variables");
  }
  LookupStripe& stripe = lookup_stripe(f4.bits());
  {
    util::MutexLock lock(stripe.mutex);
    if (const auto cached = stripe.map.find(f4.bits()); cached != stripe.map.end()) {
      return cached->second;
    }
  }
  // Canonize outside the lock: it is pure, and it dominates the miss cost.
  // Two shards missing on the same function both compute the same result;
  // emplace keeps the first and the duplicate is discarded.
  auto canon = npn::canonize(f4);
  const auto it = index_.find(canon.representative.bits());
  if (it == index_.end()) {
    throw std::logic_error("NPN class missing from database");  // cannot happen when complete
  }
  const LookupResult result{&entries_[it->second], canon.transform};
  util::MutexLock lock(stripe.mutex);
  stripe.map.emplace(f4.bits(), result);
  return result;
}

mig::Signal Database::instantiate(const tt::TruthTable& f, mig::Mig& mig,
                                  const std::vector<mig::Signal>& leaves) const {
  const auto result = lookup(f);
  const auto inv = npn::inverse(result.transform);

  // f == apply(rep, inv): variable i of the representative is driven by leaf
  // inv.perm[i], complemented per inv's negation mask; the output picks up
  // inv's output negation.
  std::vector<mig::Signal> inputs(4, mig.get_constant(false));
  for (uint32_t i = 0; i < 4; ++i) {
    const uint32_t leaf = inv.perm[i];
    const mig::Signal base =
        leaf < leaves.size() ? leaves[leaf] : mig.get_constant(false);
    inputs[i] = base ^ (((inv.input_negations >> i) & 1) != 0);
  }
  return result.entry->chain.instantiate(mig, inputs) ^ inv.output_negation;
}

std::vector<uint32_t> Database::size_histogram() const {
  std::vector<uint32_t> histogram;
  for (const auto& entry : entries_) {
    const uint32_t size = entry.chain.size();
    if (histogram.size() <= size) histogram.resize(size + 1, 0);
    ++histogram[size];
  }
  return histogram;
}

std::string default_database_path() {
  // One switch for every tool, bench and test: point MIGHTY_DB_PATH at a
  // prebuilt database so repeated runs never re-synthesize the 222 classes.
  if (const char* env = std::getenv("MIGHTY_DB_PATH"); env != nullptr && *env != '\0') {
    return env;
  }
  return "data/mig_npn4.db";
}

}  // namespace mighty::exact
