#pragma once

#include <vector>

#include "exact/encoding.hpp"

namespace mighty::exact {

/// Direct CNF encoding of the exact-synthesis decision problem with one-hot
/// select variables.  Variable layout per gate l (0-based, k gates over n
/// inputs, rows j in [0, 2^n)):
///   s[l][c][i] : operand c of gate l selects domain value i, where
///                i = 0 is the constant, 1..n the inputs, n+1+m step m;
///   p[l][c]    : operand c of gate l is complemented;
///   a[l][c][j] : value of operand c of gate l on row j (paper eq. (6)-(8));
///   b[l][j]    : output value of gate l on row j (paper eq. (4), (9)).
class OnehotEncoder final : public Encoder {
public:
  OnehotEncoder(sat::Solver& solver, const tt::TruthTable& f, uint32_t num_gates,
                const EncodeOptions& options = {});

  void encode() override;
  MigChain extract() const override;

private:
  uint32_t domain_size(uint32_t l) const { return 1 + n_ + l; }

  sat::Solver& solver_;
  tt::TruthTable f_;
  uint32_t k_;
  uint32_t n_;
  uint32_t rows_;
  EncodeOptions options_;

  std::vector<std::array<std::vector<sat::Var>, 3>> s_;
  std::vector<std::array<sat::Var, 3>> p_;
  std::vector<std::array<std::vector<sat::Var>, 3>> a_;
  std::vector<std::vector<sat::Var>> b_;
};

}  // namespace mighty::exact
