#include "exact/exact_synthesis.hpp"

#include <memory>
#include <stdexcept>

#include "exact/depth_table.hpp"
#include "exact/encoding_onehot.hpp"
#include "exact/encoding_smt.hpp"
#include "mig/simulation.hpp"
#include "npn/npn.hpp"
#include "smt/bitvector.hpp"

namespace mighty::exact {

using sat::Lit;
using sat::negate;

std::optional<MigChain> trivial_chain(const tt::TruthTable& f) {
  MigChain chain;
  chain.num_vars = f.num_vars();
  if (f.is_const0()) {
    chain.output = make_ref_lit(0, false);
    return chain;
  }
  if (f.is_const1()) {
    chain.output = make_ref_lit(0, true);
    return chain;
  }
  for (uint32_t v = 0; v < f.num_vars(); ++v) {
    const auto proj = tt::TruthTable::projection(f.num_vars(), v);
    if (f == proj) {
      chain.output = make_ref_lit(v + 1, false);
      return chain;
    }
    if (f == ~proj) {
      chain.output = make_ref_lit(v + 1, true);
      return chain;
    }
  }
  return std::nullopt;
}

SynthesisResult synthesize_minimum_mig(const tt::TruthTable& f,
                                       const SynthesisOptions& options) {
  SynthesisResult result;
  if (const auto trivial = trivial_chain(f)) {
    result.status = SynthesisStatus::success;
    result.chain = *trivial;
    return result;
  }

  for (uint32_t k = 1; k <= options.max_gates; ++k) {
    sat::Solver solver;
    std::unique_ptr<Encoder> encoder;
    if (options.encoder == EncoderKind::onehot) {
      encoder = std::make_unique<OnehotEncoder>(solver, f, k, options.encode);
    } else {
      encoder = std::make_unique<SmtEncoder>(solver, f, k, options.encode);
    }
    encoder->encode();
    const sat::Result r = solver.solve({}, options.conflict_limit);
    result.conflicts_per_step.push_back(solver.stats().conflicts);
    if (r == sat::Result::unknown) {
      result.status = SynthesisStatus::timeout;
      return result;
    }
    if (r == sat::Result::sat) {
      result.chain = encoder->extract();
      if (options.verify && result.chain.simulate() != f) {
        throw std::logic_error("exact synthesis extracted a non-equivalent chain");
      }
      result.status = SynthesisStatus::success;
      return result;
    }
  }
  result.status = SynthesisStatus::exhausted;
  return result;
}

namespace {

/// Depth-d complete ternary tree formulation.  Position 0 is the root; the
/// children of position P are 3P+1, 3P+2, 3P+3; positions on the last level
/// must be terminals.  Option encoding per position: 0 = gate, 1 = constant,
/// 1+v = input x_v; a separate polarity literal complements terminals.
class TreeEncoder {
public:
  TreeEncoder(sat::Solver& solver, const tt::TruthTable& f, uint32_t depth)
      : ctx_(solver), f_(f), n_(f.num_vars()), rows_(1u << f.num_vars()), depth_(depth) {
    num_positions_ = 1;
    uint32_t level_size = 1;
    for (uint32_t d = 0; d < depth; ++d) {
      level_size *= 3;
      num_positions_ += level_size;
    }
  }

  void encode() {
    sel_.resize(num_positions_);
    pol_.resize(num_positions_);
    val_.resize(num_positions_);
    for (uint32_t pos = 0; pos < num_positions_; ++pos) {
      const bool is_leaf_level = leaf_level(pos);
      const uint32_t num_options = (is_leaf_level ? 0u : 1u) + 1u + n_;
      auto& sel = sel_[pos];
      for (uint32_t o = 0; o < num_options; ++o) sel.push_back(ctx_.fresh());
      // Exactly one option.
      ctx_.solver().add_clause(sel);
      for (uint32_t o = 0; o < num_options; ++o) {
        for (uint32_t o2 = o + 1; o2 < num_options; ++o2) {
          ctx_.solver().add_clause({negate(sel[o]), negate(sel[o2])});
        }
      }
      pol_[pos] = ctx_.fresh();
      val_[pos].resize(rows_);
      for (uint32_t j = 0; j < rows_; ++j) val_[pos][j] = ctx_.fresh();
    }

    // Children are defined before parents in the constraint below, so walk
    // positions bottom-up.
    for (uint32_t pos = num_positions_; pos-- > 0;) {
      const bool is_leaf_level = leaf_level(pos);
      const uint32_t gate_offset = is_leaf_level ? 0 : 1;
      for (uint32_t j = 0; j < rows_; ++j) {
        if (!is_leaf_level) {
          const Lit m = ctx_.make_maj(val_[3 * pos + 1][j], val_[3 * pos + 2][j],
                                      val_[3 * pos + 3][j]);
          ctx_.assert_implies_eq(sel_[pos][0], val_[pos][j], m);
        }
        // Constant option: val = pol.
        ctx_.assert_implies_eq(sel_[pos][gate_offset], val_[pos][j], pol_[pos]);
        // Variable options: val = bit xor pol.
        for (uint32_t v = 0; v < n_; ++v) {
          const bool bit = ((j >> v) & 1) != 0;
          ctx_.assert_implies_eq(sel_[pos][gate_offset + 1 + v], val_[pos][j],
                                 bit ? negate(pol_[pos]) : pol_[pos]);
        }
      }
    }

    for (uint32_t j = 0; j < rows_; ++j) {
      ctx_.assert_lit(f_.get_bit(j) ? val_[0][j] : negate(val_[0][j]));
    }

    // Sibling symmetry breaking: majority is fully symmetric, so the children
    // of every gate position can be sorted by their selected option index
    // (gate < constant < x_1 < ... < x_n).  This removes a 3!^(#internal)
    // redundancy that otherwise cripples the UNSAT proofs.
    for (uint32_t pos = 0; pos < num_positions_; ++pos) {
      if (leaf_level(pos)) continue;
      for (uint32_t sib = 0; sib < 2; ++sib) {
        const uint32_t left = 3 * pos + 1 + sib;
        const uint32_t right = left + 1;
        const auto& ls = sel_[left];
        const auto& rs = sel_[right];
        for (uint32_t i = 0; i < ls.size(); ++i) {
          for (uint32_t j = 0; j < std::min<uint32_t>(i, static_cast<uint32_t>(rs.size()));
               ++j) {
            ctx_.solver().add_clause({negate(ls[i]), negate(rs[j])});
          }
        }
      }
    }

    // Branch on the structural selections first, shallow positions foremost.
    for (uint32_t pos = 0; pos < num_positions_; ++pos) {
      for (const Lit l : sel_[pos]) {
        ctx_.solver().boost_activity(sat::var_of(l),
                                     10.0 + 10.0 / (1.0 + pos));
      }
    }
  }

  /// Extracts the realized tree as a chain (post-order steps).
  MigChain extract() const {
    MigChain chain;
    chain.num_vars = n_;
    chain.output = extract_position(0, chain);
    return chain;
  }

private:
  bool leaf_level(uint32_t pos) const {
    // Positions on the last level have no children inside the position range.
    return 3 * pos + 3 >= num_positions_;
  }

  RefLit extract_position(uint32_t pos, MigChain& chain) const {
    const bool is_leaf_level = leaf_level(pos);
    const uint32_t gate_offset = is_leaf_level ? 0 : 1;
    uint32_t selected = 0;
    for (uint32_t o = 0; o < sel_[pos].size(); ++o) {
      if (ctx_.solver().model_value_lit(sel_[pos][o])) {
        selected = o;
        break;
      }
    }
    const bool pol = ctx_.solver().model_value_lit(pol_[pos]);
    if (!is_leaf_level && selected == 0) {
      MigChain::Step step;
      step.fanin[0] = extract_position(3 * pos + 1, chain);
      step.fanin[1] = extract_position(3 * pos + 2, chain);
      step.fanin[2] = extract_position(3 * pos + 3, chain);
      chain.steps.push_back(step);
      return make_ref_lit(n_ + 1 + static_cast<uint32_t>(chain.steps.size()) - 1, false);
    }
    if (selected == gate_offset) return make_ref_lit(0, pol);
    const uint32_t v = selected - gate_offset - 1;
    return make_ref_lit(v + 1, pol);
  }

  smt::Context ctx_;
  tt::TruthTable f_;
  uint32_t n_;
  uint32_t rows_;
  uint32_t depth_;
  uint32_t num_positions_ = 0;
  std::vector<std::vector<Lit>> sel_;
  std::vector<Lit> pol_;
  std::vector<std::vector<Lit>> val_;
};

}  // namespace

DepthSynthesisResult synthesize_minimum_depth_mig(const tt::TruthTable& f,
                                                  const DepthSynthesisOptions& options) {
  DepthSynthesisResult result;
  if (const auto trivial = trivial_chain(f)) {
    result.status = SynthesisStatus::success;
    result.depth = 0;
    result.chain = *trivial;
    return result;
  }

  // Up to four variables the exhaustive function-space depth table answers
  // exactly and instantly, including a witness tree; the SAT formulation
  // below remains for wider functions (and for cross-checking in the tests,
  // via use_sat).
  if (f.num_vars() <= 4 && !options.use_sat) {
    const auto& table = DepthTable::instance();
    result.status = SynthesisStatus::success;
    result.depth = table.depth(f);
    result.chain = table.witness(f);
    return result;
  }

  for (uint32_t d = 1; d <= options.max_depth; ++d) {
    sat::Solver solver;
    TreeEncoder encoder(solver, f, d);
    encoder.encode();
    const sat::Result r = solver.solve({}, options.conflict_limit);
    if (r == sat::Result::unknown) {
      result.status = SynthesisStatus::timeout;
      return result;
    }
    if (r == sat::Result::sat) {
      result.chain = encoder.extract();
      if (result.chain.simulate() != f) {
        throw std::logic_error("depth synthesis extracted a non-equivalent chain");
      }
      if (result.chain.depth() > d) {
        throw std::logic_error("depth synthesis exceeded the requested depth");
      }
      result.status = SynthesisStatus::success;
      result.depth = d;
      return result;
    }
  }
  result.status = SynthesisStatus::exhausted;
  return result;
}

}  // namespace mighty::exact
