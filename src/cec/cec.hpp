#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mig/mig.hpp"
#include "sat/solver.hpp"

/// \file cec.hpp
/// \brief Combinational equivalence checking of MIGs.
///
/// Used throughout the test suite and the benchmark harness to prove that the
/// optimization passes preserve functionality: first fast random word
/// simulation as a filter, then a complete SAT check on the miter.

namespace mighty::cec {

struct CecOptions {
  /// Rounds of 64-pattern random simulation before the SAT proof.
  uint32_t random_rounds = 16;
  uint64_t seed = 0x5eed;
  /// Conflict budget for the SAT proof; -1 = unlimited.
  int64_t conflict_limit = -1;
  /// Skip the SAT proof (simulation only; sound for "not equivalent" answers,
  /// incomplete for "equivalent").
  bool simulation_only = false;
};

enum class CecStatus {
  equivalent,      ///< proven equivalent (SAT UNSAT result)
  not_equivalent,  ///< counterexample found
  unknown,         ///< budget exhausted or simulation-only pass succeeded
};

struct CecResult {
  CecStatus status = CecStatus::unknown;
  /// PI assignment distinguishing the networks when not_equivalent.
  std::vector<bool> counterexample;
};

/// Returns false iff some random pattern distinguishes the two networks.
bool random_simulation_equal(const mig::Mig& a, const mig::Mig& b, uint32_t rounds,
                             uint64_t seed);

/// Full check; networks must agree on PI and PO counts.
CecResult check_equivalence(const mig::Mig& a, const mig::Mig& b,
                            const CecOptions& options = {});

/// Encodes the network into the solver with one variable per node (Tseitin);
/// returns the literal of every node, with PIs bound to `pi_literals` when
/// given (otherwise fresh).
std::vector<sat::Lit> encode_mig(const mig::Mig& mig, sat::Solver& solver,
                                 const std::vector<sat::Lit>* pi_literals = nullptr);

}  // namespace mighty::cec
