#include "cec/cec.hpp"

#include <random>
#include <stdexcept>

#include "mig/simulation.hpp"

namespace mighty::cec {

using sat::Lit;
using sat::negate;

bool random_simulation_equal(const mig::Mig& a, const mig::Mig& b, uint32_t rounds,
                             uint64_t seed) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  std::mt19937_64 rng(seed);
  for (uint32_t r = 0; r < rounds; ++r) {
    std::vector<uint64_t> words(a.num_pis());
    for (auto& w : words) w = rng();
    if (r == 0) {
      // Include the all-zero and all-one corner patterns in the first round.
      if (!words.empty()) {
        words[0] = 0x00000000ffffffffull;
      }
    }
    const auto wa = mig::simulate_words(a, words);
    const auto wb = mig::simulate_words(b, words);
    for (uint32_t o = 0; o < a.num_pos(); ++o) {
      if (mig::resolve(wa, a.output(o)) != mig::resolve(wb, b.output(o))) return false;
    }
  }
  return true;
}

std::vector<Lit> encode_mig(const mig::Mig& mig, sat::Solver& solver,
                            const std::vector<Lit>* pi_literals) {
  std::vector<Lit> node_lit(mig.num_nodes());
  const sat::Var const_var = solver.new_var();
  solver.add_clause({sat::lit(const_var, true)});  // constant node is false
  node_lit[mig::Mig::constant_node] = sat::lit(const_var);

  for (uint32_t i = 0; i < mig.num_pis(); ++i) {
    if (pi_literals != nullptr) {
      node_lit[1 + i] = (*pi_literals)[i];
    } else {
      node_lit[1 + i] = sat::lit(solver.new_var());
    }
  }
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!mig.is_gate(n)) continue;
    const auto& f = mig.fanins(n);
    auto in = [&](int c) {
      const Lit l = node_lit[f[static_cast<size_t>(c)].index()];
      return f[static_cast<size_t>(c)].is_complemented() ? negate(l) : l;
    };
    const Lit a = in(0), b = in(1), c = in(2);
    const Lit y = sat::lit(solver.new_var());
    solver.add_clause({negate(a), negate(b), y});
    solver.add_clause({negate(a), negate(c), y});
    solver.add_clause({negate(b), negate(c), y});
    solver.add_clause({a, b, negate(y)});
    solver.add_clause({a, c, negate(y)});
    solver.add_clause({b, c, negate(y)});
    node_lit[n] = y;
  }
  return node_lit;
}

CecResult check_equivalence(const mig::Mig& a, const mig::Mig& b,
                            const CecOptions& options) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    throw std::invalid_argument("CEC requires matching interfaces");
  }
  CecResult result;

  if (!random_simulation_equal(a, b, options.random_rounds, options.seed)) {
    result.status = CecStatus::not_equivalent;
    // Recover a concrete counterexample bit by re-simulating.
    std::mt19937_64 rng(options.seed);
    for (uint32_t r = 0; r < options.random_rounds; ++r) {
      std::vector<uint64_t> words(a.num_pis());
      for (auto& w : words) w = rng();
      if (r == 0 && !words.empty()) words[0] = 0x00000000ffffffffull;
      const auto wa = mig::simulate_words(a, words);
      const auto wb = mig::simulate_words(b, words);
      for (uint32_t o = 0; o < a.num_pos(); ++o) {
        const uint64_t diff =
            mig::resolve(wa, a.output(o)) ^ mig::resolve(wb, b.output(o));
        if (diff != 0) {
          const int bit = __builtin_ctzll(diff);
          result.counterexample.resize(a.num_pis());
          for (uint32_t i = 0; i < a.num_pis(); ++i) {
            result.counterexample[i] = ((words[i] >> bit) & 1) != 0;
          }
          return result;
        }
      }
    }
    return result;
  }
  if (options.simulation_only) {
    result.status = CecStatus::unknown;
    return result;
  }

  // SAT miter: shared PI variables, outputs must differ somewhere.
  sat::Solver solver;
  std::vector<Lit> pis;
  for (uint32_t i = 0; i < a.num_pis(); ++i) pis.push_back(sat::lit(solver.new_var()));
  const auto la = encode_mig(a, solver, &pis);
  const auto lb = encode_mig(b, solver, &pis);

  std::vector<Lit> any_diff;
  for (uint32_t o = 0; o < a.num_pos(); ++o) {
    const Lit oa = a.output(o).is_complemented() ? negate(la[a.output(o).index()])
                                                 : la[a.output(o).index()];
    const Lit ob = b.output(o).is_complemented() ? negate(lb[b.output(o).index()])
                                                 : lb[b.output(o).index()];
    // diff <-> oa xor ob
    const Lit diff = sat::lit(solver.new_var());
    solver.add_clause({negate(diff), oa, ob});
    solver.add_clause({negate(diff), negate(oa), negate(ob)});
    solver.add_clause({diff, negate(oa), ob});
    solver.add_clause({diff, oa, negate(ob)});
    any_diff.push_back(diff);
  }
  solver.add_clause(any_diff);

  const sat::Result r = solver.solve({}, options.conflict_limit);
  switch (r) {
    case sat::Result::unsat:
      result.status = CecStatus::equivalent;
      break;
    case sat::Result::sat: {
      result.status = CecStatus::not_equivalent;
      result.counterexample.resize(a.num_pis());
      for (uint32_t i = 0; i < a.num_pis(); ++i) {
        result.counterexample[i] = solver.model_value_lit(pis[i]);
      }
      break;
    }
    case sat::Result::unknown:
      result.status = CecStatus::unknown;
      break;
  }
  return result;
}

}  // namespace mighty::cec
