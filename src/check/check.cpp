#include "check/check.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "exact/chain.hpp"
#include "npn/npn.hpp"
#include "tt/truth_table.hpp"

namespace mighty::check {

namespace {

/// Independent level recomputation over the raw view (never via
/// Mig::compute_levels — the point is to catch that function drifting).
/// Out-of-range and non-topological fanins contribute level 0, so the
/// recomputation is total even on corrupt views; validate_structure reports
/// those separately.
std::vector<uint32_t> recompute_levels(const MigView& view) {
  std::vector<uint32_t> level(view.num_nodes(), 0);
  for (uint32_t n = 0; n < view.num_nodes(); ++n) {
    if (!view.is_gate(n)) continue;
    uint32_t max_level = 0;
    for (const mig::Signal f : view.fanins[n]) {
      if (f.index() < n) max_level = std::max(max_level, level[f.index()]);
    }
    level[n] = max_level + 1;
  }
  return level;
}

std::vector<uint32_t> recompute_fanouts(const MigView& view) {
  std::vector<uint32_t> fanout(view.num_nodes(), 0);
  for (uint32_t n = 0; n < view.num_nodes(); ++n) {
    if (!view.is_gate(n)) continue;
    for (const mig::Signal f : view.fanins[n]) {
      if (f.index() < view.num_nodes()) ++fanout[f.index()];
    }
  }
  for (const mig::Signal s : view.outputs) {
    if (s.index() < view.num_nodes()) ++fanout[s.index()];
  }
  return fanout;
}

std::vector<bool> recompute_live(const MigView& view) {
  std::vector<bool> live(view.num_nodes(), false);
  std::vector<uint32_t> stack;
  for (const mig::Signal s : view.outputs) {
    if (s.index() < view.num_nodes() && !live[s.index()]) {
      live[s.index()] = true;
      stack.push_back(s.index());
    }
  }
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    if (!view.is_gate(n)) continue;
    for (const mig::Signal f : view.fanins[n]) {
      if (f.index() < view.num_nodes() && !live[f.index()]) {
        live[f.index()] = true;
        stack.push_back(f.index());
      }
    }
  }
  return live;
}

std::string signal_str(mig::Signal s) {
  return (s.is_complemented() ? "!" : "") + std::to_string(s.index());
}

}  // namespace

// --- CheckReport -------------------------------------------------------------

size_t CheckReport::num_errors() const {
  size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == Severity::error) ++n;
  }
  return n;
}

size_t CheckReport::num_warnings() const {
  return diagnostics.size() - num_errors();
}

bool CheckReport::has(Code code) const { return find(code) != nullptr; }

const Diagnostic* CheckReport::find(Code code) const {
  for (const auto& d : diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

void CheckReport::add(Code code, uint32_t node, std::string message,
                      Severity severity) {
  diagnostics.push_back({code, severity, node, std::move(message)});
}

void CheckReport::merge(CheckReport other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
}

std::string CheckReport::summary() const {
  if (diagnostics.empty()) return "check: ok\n";
  std::string out;
  for (const auto& d : diagnostics) {
    out += d.severity == Severity::error ? "error[" : "warning[";
    out += code_name(d.code);
    out += "]";
    if (d.node != kNoNode) out += " node " + std::to_string(d.node);
    out += ": " + d.message + "\n";
  }
  out += "check: " + std::to_string(num_errors()) + " error(s), " +
         std::to_string(num_warnings()) + " warning(s)\n";
  return out;
}

const char* code_name(Code code) {
  switch (code) {
    case Code::po_target_out_of_range: return "po_target_out_of_range";
    case Code::fanin_out_of_range: return "fanin_out_of_range";
    case Code::fanin_self_reference: return "fanin_self_reference";
    case Code::fanin_not_topological: return "fanin_not_topological";
    case Code::fanin_not_sorted: return "fanin_not_sorted";
    case Code::fanin_duplicate_index: return "fanin_duplicate_index";
    case Code::fanin_polarity_not_normalized: return "fanin_polarity_not_normalized";
    case Code::terminal_fanin_corrupt: return "terminal_fanin_corrupt";
    case Code::level_mismatch: return "level_mismatch";
    case Code::fanout_mismatch: return "fanout_mismatch";
    case Code::live_count_mismatch: return "live_count_mismatch";
    case Code::region_root_out_of_range: return "region_root_out_of_range";
    case Code::region_root_not_root: return "region_root_not_root";
    case Code::region_roots_not_topological: return "region_roots_not_topological";
    case Code::region_membership_broken: return "region_membership_broken";
    case Code::shard_overlap: return "shard_overlap";
    case Code::shard_incomplete: return "shard_incomplete";
    case Code::shard_not_sorted: return "shard_not_sorted";
    case Code::shard_foreign_node: return "shard_foreign_node";
    case Code::wave_order_broken: return "wave_order_broken";
    case Code::report_rollup_mismatch: return "report_rollup_mismatch";
    case Code::report_pass_inconsistent: return "report_pass_inconsistent";
    case Code::report_tally_mismatch: return "report_tally_mismatch";
    case Code::artifact_io: return "artifact_io";
    case Code::artifact_header: return "artifact_header";
    case Code::artifact_entry: return "artifact_entry";
    case Code::artifact_not_canonical: return "artifact_not_canonical";
    case Code::artifact_budget: return "artifact_budget";
    case Code::artifact_order: return "artifact_order";
  }
  return "unknown";
}

// --- MigView -----------------------------------------------------------------

MigView MigView::of(const mig::Mig& m) {
  MigView view;
  view.num_pis = m.num_pis();
  view.fanins.reserve(m.num_nodes());
  for (uint32_t n = 0; n < m.num_nodes(); ++n) view.fanins.push_back(m.fanins(n));
  view.outputs = m.outputs();
  return view;
}

// --- structural validation ---------------------------------------------------

CheckReport validate_structure(const MigView& view) {
  CheckReport report;
  const uint32_t n = view.num_nodes();
  if (n == 0) {
    report.add(Code::terminal_fanin_corrupt, kNoNode, "no constant node");
    return report;
  }

  // Terminals (constant + PIs) must carry the default all-constant fanins;
  // anything else means something scribbled over the node array.
  const mig::Signal zero(0, false);
  const uint32_t num_terminals = std::min(view.num_pis + 1, n);
  for (uint32_t t = 0; t < num_terminals; ++t) {
    for (const mig::Signal f : view.fanins[t]) {
      if (!(f == zero)) {
        report.add(Code::terminal_fanin_corrupt, t,
                   "terminal carries fanin " + signal_str(f));
        break;
      }
    }
  }

  for (uint32_t g = num_terminals; g < n; ++g) {
    const auto& f = view.fanins[g];
    bool indices_ok = true;
    for (uint32_t i = 0; i < 3; ++i) {
      if (f[i].index() >= n) {
        report.add(Code::fanin_out_of_range, g,
                   "fanin " + std::to_string(i) + " references node " +
                       std::to_string(f[i].index()) + " of " + std::to_string(n));
        indices_ok = false;
      } else if (f[i].index() == g) {
        report.add(Code::fanin_self_reference, g,
                   "fanin " + std::to_string(i) + " references the gate itself");
        indices_ok = false;
      } else if (f[i].index() > g) {
        // Nodes are stored in creation order, which is topological: a fanin
        // with a larger index is the only way an index-addressed MIG can
        // close a cycle.
        report.add(Code::fanin_not_topological, g,
                   "fanin " + std::to_string(i) + " references later node " +
                       std::to_string(f[i].index()));
        indices_ok = false;
      }
    }
    if (!indices_ok) continue;

    if (f[0].index() == f[1].index() || f[1].index() == f[2].index() ||
        f[0].index() == f[2].index()) {
      report.add(Code::fanin_duplicate_index, g,
                 "fanins <" + signal_str(f[0]) + "," + signal_str(f[1]) + "," +
                     signal_str(f[2]) +
                     "> share a node (trivial simplification was skipped)");
      continue;
    }
    if (!(f[0].raw() < f[1].raw() && f[1].raw() < f[2].raw())) {
      report.add(Code::fanin_not_sorted, g,
                 "fanins <" + signal_str(f[0]) + "," + signal_str(f[1]) + "," +
                     signal_str(f[2]) + "> not in canonical order");
    }
    const int complemented = (f[0].is_complemented() ? 1 : 0) +
                             (f[1].is_complemented() ? 1 : 0) +
                             (f[2].is_complemented() ? 1 : 0);
    if (complemented >= 2) {
      report.add(Code::fanin_polarity_not_normalized, g,
                 std::to_string(complemented) +
                     " complemented fanins (self-duality normalization skipped)");
    }
  }

  for (uint32_t o = 0; o < view.outputs.size(); ++o) {
    if (view.outputs[o].index() >= n) {
      report.add(Code::po_target_out_of_range, o,
                 "output " + std::to_string(o) + " targets node " +
                     std::to_string(view.outputs[o].index()) + " of " +
                     std::to_string(n));
    }
  }
  return report;
}

CheckReport validate_levels(const MigView& view, const std::vector<uint32_t>& levels) {
  CheckReport report;
  if (levels.size() != view.num_nodes()) {
    report.add(Code::level_mismatch, kNoNode,
               "level array has " + std::to_string(levels.size()) +
                   " entries for " + std::to_string(view.num_nodes()) + " nodes");
    return report;
  }
  const auto expected = recompute_levels(view);
  for (uint32_t i = 0; i < view.num_nodes(); ++i) {
    if (levels[i] != expected[i]) {
      report.add(Code::level_mismatch, i,
                 "level " + std::to_string(levels[i]) + ", recomputation says " +
                     std::to_string(expected[i]));
    }
  }
  return report;
}

CheckReport validate_fanouts(const MigView& view, const std::vector<uint32_t>& fanouts) {
  CheckReport report;
  if (fanouts.size() != view.num_nodes()) {
    report.add(Code::fanout_mismatch, kNoNode,
               "fanout array has " + std::to_string(fanouts.size()) +
                   " entries for " + std::to_string(view.num_nodes()) + " nodes");
    return report;
  }
  const auto expected = recompute_fanouts(view);
  for (uint32_t i = 0; i < view.num_nodes(); ++i) {
    if (fanouts[i] != expected[i]) {
      report.add(Code::fanout_mismatch, i,
                 "fanout " + std::to_string(fanouts[i]) + ", recomputation says " +
                     std::to_string(expected[i]));
    }
  }
  return report;
}

CheckReport validate(const mig::Mig& m) {
  const MigView view = MigView::of(m);
  CheckReport report = validate_structure(view);
  if (!report.ok()) return report;  // derived data is meaningless on a broken DAG

  report.merge(validate_levels(view, m.compute_levels()));
  report.merge(validate_fanouts(view, m.compute_fanout_counts()));

  // Dead-node accounting: the Mig's live-gate count must equal an
  // independent reachability sweep over the raw view.
  const auto live = recompute_live(view);
  uint32_t live_gates = 0;
  for (uint32_t n = 0; n < view.num_nodes(); ++n) {
    if (live[n] && view.is_gate(n)) ++live_gates;
  }
  if (m.count_live_gates() != live_gates) {
    report.add(Code::live_count_mismatch, kNoNode,
               "count_live_gates() says " + std::to_string(m.count_live_gates()) +
                   ", reachability sweep says " + std::to_string(live_gates));
  }
  return report;
}

CheckReport validate_at(const mig::Mig& m, bool full) {
  if (!full) return validate_structure(MigView::of(m));
  CheckReport report = validate(m);
  if (!report.ok()) return report;  // partitioning a broken DAG proves nothing
  const auto partition = ffr::compute_ffrs(m);
  report.merge(validate_partition(m, partition));
  if (!report.ok()) return report;
  // A small non-trivial shard count exercises the balancing path the
  // shard-parallel passes take without demanding real parallelism.
  report.merge(validate_shard_plan(m, partition, shard::plan_ffr_shards(m, partition, 4)));
  report.merge(validate_wave_order(m, partition, shard::region_levels(m, partition)));
  return report;
}

// --- FFR partition -----------------------------------------------------------

CheckReport validate_partition(const mig::Mig& m, const ffr::FfrPartition& partition) {
  CheckReport report;
  const uint32_t n = m.num_nodes();
  if (partition.region_root.size() != n || partition.is_root.size() != n) {
    report.add(Code::region_root_out_of_range, kNoNode,
               "partition arrays sized " + std::to_string(partition.region_root.size()) +
                   "/" + std::to_string(partition.is_root.size()) + " for " +
                   std::to_string(n) + " nodes");
    return report;
  }

  for (uint32_t i = 0; i + 1 < partition.roots.size(); ++i) {
    if (partition.roots[i] >= partition.roots[i + 1]) {
      report.add(Code::region_roots_not_topological, partition.roots[i + 1],
                 "roots list not strictly ascending at position " + std::to_string(i + 1));
    }
  }
  for (const uint32_t r : partition.roots) {
    if (r >= n) {
      report.add(Code::region_root_out_of_range, r, "roots list references node " +
                                                        std::to_string(r) + " of " +
                                                        std::to_string(n));
    } else if (!partition.is_root[r]) {
      report.add(Code::region_root_not_root, r, "listed root is not marked is_root");
    }
  }

  const auto fanout = m.compute_fanout_counts();
  std::vector<bool> drives_po(n, false);
  for (const mig::Signal s : m.outputs()) drives_po[s.index()] = true;

  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t root = partition.region_root[i];
    if (root >= n) {
      report.add(Code::region_root_out_of_range, i,
                 "region root " + std::to_string(root) + " of " + std::to_string(n));
      continue;
    }
    if (!m.is_gate(i)) {
      if (root != i) {
        report.add(Code::region_membership_broken, i,
                   "terminal mapped to region " + std::to_string(root));
      }
      continue;
    }
    // Roots by definition: PO drivers and gates whose fanout count is not
    // exactly one (multi-fanout, or dangling).
    const bool must_be_root = drives_po[i] || fanout[i] != 1;
    if (must_be_root && !partition.is_root[i]) {
      report.add(Code::region_root_not_root, i,
                 "gate with fanout " + std::to_string(fanout[i]) +
                     (drives_po[i] ? " driving a PO" : "") + " is not marked a root");
    }
    if (partition.is_root[i]) {
      if (root != i) {
        report.add(Code::region_membership_broken, i,
                   "root mapped to region " + std::to_string(root));
      }
    } else if (!partition.is_root[root]) {
      report.add(Code::region_root_not_root, i,
                 "region root " + std::to_string(root) + " is not marked is_root");
    }
  }

  // Region connectivity: a non-root gate fanin must belong to the same
  // region as its consumer (regions are fanout-free: the only way out of a
  // region is through its root).
  for (uint32_t g = 0; g < n; ++g) {
    if (!m.is_gate(g)) continue;
    for (const mig::Signal f : m.fanins(g)) {
      const uint32_t fi = f.index();
      if (fi >= n || !m.is_gate(fi) || partition.is_root[fi]) continue;
      if (partition.region_root[fi] != partition.region_root[g]) {
        report.add(Code::region_membership_broken, fi,
                   "non-root gate feeds node " + std::to_string(g) +
                       " of region " + std::to_string(partition.region_root[g]) +
                       " but belongs to region " +
                       std::to_string(partition.region_root[fi]));
      }
    }
  }
  return report;
}

// --- shard plans -------------------------------------------------------------

CheckReport validate_shard_plan(const mig::Mig& m, const ffr::FfrPartition& partition,
                                const shard::ShardPlan& plan) {
  CheckReport report;
  const uint32_t n = m.num_nodes();
  if (partition.region_root.size() != n) {
    report.add(Code::region_root_out_of_range, kNoNode,
               "partition does not match the network");
    return report;
  }

  std::vector<uint32_t> owner(n, kNoNode);
  for (uint32_t s = 0; s < plan.shards.size(); ++s) {
    const auto& sh = plan.shards[s];
    for (uint32_t i = 0; i + 1 < sh.roots.size(); ++i) {
      if (sh.roots[i] >= sh.roots[i + 1]) {
        report.add(Code::shard_not_sorted, s,
                   "shard " + std::to_string(s) + " roots not strictly ascending");
        break;
      }
    }
    for (uint32_t i = 0; i + 1 < sh.nodes.size(); ++i) {
      if (sh.nodes[i] >= sh.nodes[i + 1]) {
        report.add(Code::shard_not_sorted, s,
                   "shard " + std::to_string(s) + " nodes not strictly ascending");
        break;
      }
    }
    std::unordered_set<uint32_t> roots(sh.roots.begin(), sh.roots.end());
    for (const uint32_t node : sh.nodes) {
      if (node >= n) {
        report.add(Code::shard_foreign_node, node,
                   "shard " + std::to_string(s) + " references node " +
                       std::to_string(node) + " of " + std::to_string(n));
        continue;
      }
      if (owner[node] != kNoNode) {
        report.add(Code::shard_overlap, node,
                   "node in shard " + std::to_string(owner[node]) + " and shard " +
                       std::to_string(s));
        continue;
      }
      owner[node] = s;
      if (!m.is_gate(node)) {
        report.add(Code::shard_foreign_node, node,
                   "shard " + std::to_string(s) + " contains a terminal");
      } else if (roots.count(partition.region_root[node]) == 0) {
        // A shard is a group of whole regions: every member's region root
        // must be one of the shard's roots.
        report.add(Code::shard_foreign_node, node,
                   "member of region " + std::to_string(partition.region_root[node]) +
                       " whose root is not in shard " + std::to_string(s));
      }
    }
    for (const uint32_t r : sh.roots) {
      if (r < n && owner[r] != s) {
        report.add(Code::shard_foreign_node, r,
                   "shard " + std::to_string(s) + " lists root " + std::to_string(r) +
                       " without its node");
      }
    }
  }

  // Completeness: every output-reachable gate belongs to exactly one shard
  // (dead regions are deliberately not planned).
  const auto live = m.live_mask();
  for (uint32_t node = 0; node < n; ++node) {
    if (live[node] && m.is_gate(node) && owner[node] == kNoNode) {
      report.add(Code::shard_incomplete, node, "live gate missing from every shard");
    }
  }
  return report;
}

CheckReport validate_wave_order(const mig::Mig& m, const ffr::FfrPartition& partition,
                                const std::vector<uint32_t>& levels) {
  CheckReport report;
  const uint32_t n = m.num_nodes();
  if (partition.region_root.size() != n || levels.size() != n) {
    report.add(Code::wave_order_broken, kNoNode,
               "partition/levels do not match the network");
    return report;
  }
  const auto live = m.live_mask();
  for (uint32_t g = 0; g < n; ++g) {
    if (!live[g] || !m.is_gate(g)) continue;
    const uint32_t region = partition.region_root[g];
    if (region >= n) continue;  // validate_partition reports this
    for (const mig::Signal f : m.fanins(g)) {
      const uint32_t fi = f.index();
      if (fi >= n || !m.is_gate(fi)) continue;
      const uint32_t feeding = partition.region_root[fi];
      if (feeding >= n || feeding == region) continue;
      if (levels[feeding] >= levels[region]) {
        report.add(Code::wave_order_broken, g,
                   "region " + std::to_string(region) + " at level " +
                       std::to_string(levels[region]) + " fed by region " +
                       std::to_string(feeding) + " at level " +
                       std::to_string(levels[feeding]));
      }
    }
  }
  return report;
}

// --- flow report accounting --------------------------------------------------

CheckReport validate_report(const flow::FlowReport& report) {
  CheckReport out;
  uint64_t queries = 0, answered = 0, cache5 = 0, synthesized = 0, failures = 0;
  for (uint32_t i = 0; i < report.passes.size(); ++i) {
    const auto& p = report.passes[i];
    queries += p.oracle_queries;
    answered += p.oracle_answered;
    cache5 += p.oracle_cache5_hits;
    synthesized += p.oracle_synthesized;
    failures += p.oracle_failures;
    if (p.oracle_answered > p.oracle_queries) {
      out.add(Code::report_pass_inconsistent, i,
              "pass '" + p.name + "' answered " + std::to_string(p.oracle_answered) +
                  " of " + std::to_string(p.oracle_queries) + " queries");
    }
    if (p.oracle_cache5_hits + p.oracle_synthesized > p.oracle_queries) {
      out.add(Code::report_pass_inconsistent, i,
              "pass '" + p.name + "' resolved more 5-input lookups than queries");
    }
    if (p.oracle_failures > p.oracle_synthesized) {
      out.add(Code::report_pass_inconsistent, i,
              "pass '" + p.name + "' failed " + std::to_string(p.oracle_failures) +
                  " of " + std::to_string(p.oracle_synthesized) + " syntheses");
    }
  }
  const auto mismatch = [&](const char* name, uint64_t total, uint64_t sum) {
    if (total != sum) {
      out.add(Code::report_rollup_mismatch, kNoNode,
              std::string(name) + " roll-up " + std::to_string(total) +
                  " != per-pass sum " + std::to_string(sum));
    }
  };
  mismatch("oracle_queries", report.oracle_queries, queries);
  mismatch("oracle_answered", report.oracle_answered, answered);
  mismatch("oracle_cache5_hits", report.oracle_cache5_hits, cache5);
  mismatch("oracle_synthesized", report.oracle_synthesized, synthesized);
  mismatch("oracle_failures", report.oracle_failures, failures);
  return out;
}

CheckReport validate_tally(const flow::FlowReport& report, const opt::OracleTally& tally) {
  CheckReport out;
  const auto compare = [&](const char* name, uint64_t reported, uint64_t tallied) {
    if (reported != tallied) {
      out.add(Code::report_tally_mismatch, kNoNode,
              std::string(name) + ": report says " + std::to_string(reported) +
                  ", tally says " + std::to_string(tallied));
    }
  };
  compare("queries", report.oracle_queries,
          tally.queries.load(std::memory_order_relaxed));
  compare("answered", report.oracle_answered,
          tally.answered.load(std::memory_order_relaxed));
  compare("cache5_hits", report.oracle_cache5_hits,
          tally.cache5_hits.load(std::memory_order_relaxed));
  compare("synthesized", report.oracle_synthesized,
          tally.synthesized.load(std::memory_order_relaxed));
  compare("failures", report.oracle_failures,
          tally.failures.load(std::memory_order_relaxed));
  return out;
}

// --- on-disk artifacts -------------------------------------------------------

CheckReport lint_database(const exact::Database& db) {
  CheckReport report;
  if (db.num_entries() != 222) {
    report.add(Code::artifact_header, kNoNode,
               "expected 222 NPN-4 classes, found " + std::to_string(db.num_entries()));
  }
  std::unordered_set<uint64_t> seen;
  for (uint32_t i = 0; i < db.entries().size(); ++i) {
    const auto& entry = db.entries()[i];
    if (entry.representative.num_vars() != 4) {
      report.add(Code::artifact_entry, i, "representative is not a 4-variable function");
      continue;
    }
    if (!seen.insert(entry.representative.bits()).second) {
      report.add(Code::artifact_entry, i,
                 "duplicate representative 0x" + entry.representative.to_hex());
    }
    // Canonical-form keys: a representative that is not its own NPN
    // canonization would make lookups miss its whole class.
    const auto canon = npn::canonize(entry.representative);
    if (!(canon.representative == entry.representative)) {
      report.add(Code::artifact_not_canonical, i,
                 "representative 0x" + entry.representative.to_hex() +
                     " canonizes to 0x" + canon.representative.to_hex());
    }
    if (entry.chain.num_vars != 4) {
      report.add(Code::artifact_entry, i, "chain is not over 4 variables");
      continue;
    }
    if (!(entry.chain.simulate() == entry.representative)) {
      report.add(Code::artifact_entry, i,
                 "chain does not realize representative 0x" +
                     entry.representative.to_hex());
    }
    // Theorem 2: every 4-variable function needs at most 7 majority gates.
    if (entry.chain.size() > 7) {
      report.add(Code::artifact_entry, i,
                 "chain of " + std::to_string(entry.chain.size()) +
                     " gates exceeds the Theorem-2 bound of 7");
    }
  }
  return report;
}

CheckReport lint_cache_file(const std::string& path) {
  CheckReport report;
  std::ifstream is(path);
  if (!is) {
    report.add(Code::artifact_io, kNoNode, "cannot open " + path);
    return report;
  }

  std::string header;
  std::getline(is, header);
  std::istringstream hs(header);
  std::string magic, version;
  size_t count = 0;
  if (!(hs >> magic >> version >> count) || magic != "mighty-mig-5cut-cache" ||
      version != "v1") {
    report.add(Code::artifact_header, 1, "bad header: \"" + header + '"');
    return report;
  }

  std::unordered_set<uint64_t> seen;
  uint64_t previous_key = 0;
  bool have_previous = false;
  bool ordered = true;
  size_t entries = 0;
  std::string line;
  for (uint32_t line_number = 2; std::getline(is, line); ++line_number) {
    if (line.empty()) continue;
    ++entries;
    std::istringstream ls(line);
    std::string hex, status;
    int64_t budget = 0;
    uint64_t conflicts = 0;
    if (!(ls >> hex >> status >> budget >> conflicts)) {
      report.add(Code::artifact_entry, line_number, "malformed line: \"" + line + '"');
      continue;
    }
    if (hex.size() != 8) {
      report.add(Code::artifact_entry, line_number,
                 "truth table key must be 8 hex digits, got \"" + hex + '"');
      continue;
    }
    tt::TruthTable f(5);
    try {
      f = tt::TruthTable::from_hex(5, hex);
    } catch (const std::exception&) {
      report.add(Code::artifact_entry, line_number, "unparsable key \"" + hex + '"');
      continue;
    }
    if (!seen.insert(f.bits()).second) {
      report.add(Code::artifact_entry, line_number, "duplicate key 0x" + hex);
    }
    if (have_previous && f.bits() <= previous_key) ordered = false;
    previous_key = f.bits();
    have_previous = true;

    if (status == "ok") {
      std::string rest;
      std::getline(ls, rest);
      std::optional<exact::MigChain> chain;
      try {
        chain = exact::MigChain::from_string(rest);
      } catch (const std::exception&) {
        report.add(Code::artifact_entry, line_number, "unparsable chain for 0x" + hex);
        continue;
      }
      if (chain->num_vars != 5 || !(chain->simulate() == f)) {
        report.add(Code::artifact_entry, line_number,
                   "chain does not realize key 0x" + hex);
        continue;
      }
      // Canonical-form line: the chain must re-serialize to exactly the
      // stored text, so the file round-trips bit-identically.
      const auto canonical = chain->to_string();
      const auto start = rest.find_first_not_of(' ');
      if (start == std::string::npos || rest.substr(start) != canonical) {
        report.add(Code::artifact_not_canonical, line_number,
                   "chain for 0x" + hex + " is not in canonical serialization");
      }
    } else if (status == "fail") {
      std::string extra;
      if (ls >> extra) {
        report.add(Code::artifact_entry, line_number,
                   "trailing tokens after failure record for 0x" + hex);
      }
      // Budget monotonicity: failures are retried when queried under a
      // strictly larger budget, with -1 ranking above every finite value.
      // A zero or negative finite budget would freeze a failure that never
      // actually ran the solver.
      if (budget != -1 && budget < 1) {
        report.add(Code::artifact_budget, line_number,
                   "failure for 0x" + hex + " recorded under budget " +
                       std::to_string(budget) + " (must be -1 or >= 1)");
      }
    } else {
      report.add(Code::artifact_entry, line_number,
                 "unknown status \"" + status + "\" for 0x" + hex);
    }
  }
  if (entries != count) {
    report.add(Code::artifact_header, 1,
               "header promises " + std::to_string(count) + " entries, file has " +
                   std::to_string(entries));
  }
  if (!ordered) {
    report.add(Code::artifact_order, kNoNode,
               "entries not sorted by key (save_cache writes sorted files)",
               Severity::warning);
  }
  return report;
}

}  // namespace mighty::check
