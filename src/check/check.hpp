#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "exact/database.hpp"
#include "flow/pass.hpp"
#include "mig/ffr.hpp"
#include "mig/mig.hpp"
#include "mig/shard.hpp"
#include "opt/oracle.hpp"

/// \file check.hpp
/// \brief Structural invariant validation for every layer of the engine.
///
/// The rewriting loop is only sound while every intermediate network stays a
/// well-formed MIG; the shard-parallel passes are only deterministic while
/// every plan stays a disjoint, complete, wave-ordered cover; the CI gates
/// are only meaningful while every report's roll-up matches its trajectory.
/// This module states those invariants once, as executable checks with
/// precise diagnostics, so that
///
///   * the flow layer can run them between passes (Session::set_check_level),
///     turning every existing test into an invariant test;
///   * the `check` script word exposes them to shells and scripts;
///   * the fuzz harnesses (fuzz/) use them as the "accepted input must be
///     well-formed" half of their differential properties;
///   * `build_npn_db --lint` applies the artifact linters to the on-disk
///     NPN database and 5-input oracle cache beyond what a wholesale load
///     already validates.
///
/// Every validator returns a CheckReport rather than throwing, so callers
/// decide whether a finding is fatal; flow::Session throws std::logic_error
/// on the first failed between-pass check.

namespace mighty::check {

/// What went wrong.  Codes are stable identifiers: tests assert on them, and
/// diagnostics print them, so a failure names the violated invariant rather
/// than just a message string.
enum class Code {
  // --- structural MIG invariants (validate_structure) ---
  po_target_out_of_range,    ///< primary output points past the node array
  fanin_out_of_range,        ///< gate fanin index past the node array
  fanin_self_reference,      ///< gate feeds itself
  fanin_not_topological,     ///< fanin index >= gate index (breaks the
                             ///< creation-order-is-topological invariant; the
                             ///< only way an index-addressed MIG can cycle)
  fanin_not_sorted,          ///< majority fanins not in canonical raw order
  fanin_duplicate_index,     ///< two fanins share a node (a trivial
                             ///< simplification <xxy>/<x!xy> was skipped)
  fanin_polarity_not_normalized,  ///< two or more complemented fanins
                                  ///< (self-duality normalization skipped)
  terminal_fanin_corrupt,    ///< constant/PI node carries a non-default fanin
  // --- derived-data consistency vs. recomputation (validate) ---
  level_mismatch,       ///< stored/reported level != independent recomputation
  fanout_mismatch,      ///< fanout count != independent recomputation
  live_count_mismatch,  ///< live-gate accounting != independent recomputation
  // --- FFR partition invariants (validate_partition) ---
  region_root_out_of_range,  ///< region_root points past the node array
  region_root_not_root,      ///< a node's region root is not marked is_root
  region_roots_not_topological,  ///< roots list not ascending (= topological)
  region_membership_broken,  ///< member's fanout leaves the region before the
                             ///< root, or a root maps to a different region
  // --- shard plan invariants (validate_shard_plan) ---
  shard_overlap,      ///< a node appears in two shards (plans must be disjoint)
  shard_incomplete,   ///< a live gate missing from every shard
  shard_not_sorted,   ///< a shard's roots/nodes not ascending (= topological)
  shard_foreign_node, ///< a shard node whose region root is not in the shard
  wave_order_broken,  ///< a region at level L fed by a region at level >= L
  // --- flow report accounting (validate_report / validate_tally) ---
  report_rollup_mismatch,   ///< totals differ from the per-pass sums
  report_pass_inconsistent, ///< a pass entry violates counter conservation
  report_tally_mismatch,    ///< report totals differ from the OracleTally
  // --- on-disk artifacts (lint_database / lint_cache_file) ---
  artifact_io,            ///< file missing or unreadable
  artifact_header,        ///< bad magic/version/count header
  artifact_entry,         ///< malformed or inconsistent entry line
  artifact_not_canonical, ///< key is not its own canonical form, or a chain
                          ///< does not re-serialize to the stored line
  artifact_budget,        ///< cache budget field violates monotonicity rules
  artifact_order,         ///< entries not sorted by key (warning)
};

/// Stable name of a code ("fanin_not_topological", ...), for messages/tests.
const char* code_name(Code code);

enum class Severity { error, warning };

/// Sentinel for diagnostics that are not about one specific node/line.
inline constexpr uint32_t kNoNode = std::numeric_limits<uint32_t>::max();

struct Diagnostic {
  Code code;
  Severity severity = Severity::error;
  /// Node index, shard index, pass index, or 1-based file line — whichever
  /// the validator's context documents; kNoNode when not applicable.
  uint32_t node = kNoNode;
  std::string message;
};

struct CheckReport {
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return num_errors() == 0; }
  size_t num_errors() const;
  size_t num_warnings() const;
  bool has(Code code) const;
  /// First diagnostic with this code, or nullptr.
  const Diagnostic* find(Code code) const;

  void add(Code code, uint32_t node, std::string message,
           Severity severity = Severity::error);
  void merge(CheckReport other);

  /// One line per diagnostic: "error[fanin_not_topological] node 7: ...".
  std::string summary() const;
};

/// A raw, corruptible view of an MIG: the exact data the structural checks
/// judge, in a form tests can hand-mangle (Mig's own invariants are enforced
/// by construction, so a corrupted-MIG suite needs a representation that
/// admits corruption).  Node 0 is the constant; nodes 1..num_pis are PIs.
struct MigView {
  uint32_t num_pis = 0;
  /// Per-node fanin triples; terminals carry the all-constant default.
  std::vector<std::array<mig::Signal, 3>> fanins;
  std::vector<mig::Signal> outputs;

  static MigView of(const mig::Mig& m);

  uint32_t num_nodes() const { return static_cast<uint32_t>(fanins.size()); }
  bool is_gate(uint32_t n) const { return n > num_pis && n < num_nodes(); }
};

/// Structural invariants of the DAG itself, O(nodes): acyclicity via
/// topological fanin order, no dangling or self references, PO targets in
/// range, canonical (sorted, deduplicated, polarity-normalized) majority
/// fanins, intact terminals.
CheckReport validate_structure(const MigView& view);

/// Externally supplied per-node levels versus an independent recomputation
/// (the LevelTracker discipline: stale levels mean rewriting decisions
/// compare wrong depths).  `levels` must have one entry per node.
CheckReport validate_levels(const MigView& view, const std::vector<uint32_t>& levels);

/// Externally supplied fanout counts versus an independent recomputation.
CheckReport validate_fanouts(const MigView& view, const std::vector<uint32_t>& fanouts);

/// Full single-network validation: validate_structure plus the Mig's own
/// derived data (compute_levels, compute_fanout_counts, count_live_gates)
/// checked against independent recomputation over the raw view.
CheckReport validate(const mig::Mig& m);

/// What the flow's between-pass hook runs: validate_structure only when
/// `full` is false (O(nodes), cheap enough after every pass of a Debug test
/// run), otherwise validate() plus a fresh FFR partition, shard plan and
/// wave ordering validated end to end.
CheckReport validate_at(const mig::Mig& m, bool full);

/// FFR partition invariants: roots marked and topologically ordered, every
/// node's region root in range and marked, non-root members reaching their
/// root without crossing another root.
CheckReport validate_partition(const mig::Mig& m, const ffr::FfrPartition& partition);

/// Shard plan invariants: shards pairwise disjoint, together covering every
/// output-reachable gate, each shard's roots/nodes ascending, and every
/// shard node's region root grouped into the same shard.
CheckReport validate_shard_plan(const mig::Mig& m, const ffr::FfrPartition& partition,
                                const shard::ShardPlan& plan);

/// Wave ordering: for every live gate, any fanin in a *different* live
/// region must come from a region of strictly smaller level — the property
/// wave-parallel passes rely on to run regions of equal level concurrently.
/// `levels` is indexed by region root as produced by shard::region_levels.
CheckReport validate_wave_order(const mig::Mig& m, const ffr::FfrPartition& partition,
                                const std::vector<uint32_t>& levels);

/// FlowReport accounting: the whole-flow oracle roll-up must equal the sum
/// of the per-pass deltas, and every pass entry must conserve its counters
/// (answered <= queries; 5-input cache hits + syntheses <= queries;
/// failures <= syntheses).  Diagnostic `node` is the pass index.
CheckReport validate_report(const flow::FlowReport& report);

/// Oracle tally conservation: a report whose passes all tallied into
/// `tally` must agree with it exactly (the per-scope mirrors are bumped in
/// lockstep with the lifetime counters).
CheckReport validate_tally(const flow::FlowReport& report, const opt::OracleTally& tally);

// --- on-disk artifact linters -----------------------------------------------

/// NPN-4 database lint, beyond what Database::load validates wholesale:
/// exactly 222 classes, every representative its own NPN canonical form
/// ("canonical-form keys"), every chain over 4 variables realizing its
/// representative within the Theorem-2 bound of 7 gates.
CheckReport lint_database(const exact::Database& db);

/// 5-input oracle cache file lint, beyond the loader's wholesale accept/
/// reject: per-line diagnostics (`node` = 1-based line), canonical-form keys
/// (the stored chain must re-serialize to the stored line and realize the
/// key function), budget monotonicity (a failure must record either the
/// unlimited -1 budget — proved absent, never retry — or a positive conflict
/// budget; 0 would freeze a never-attempted failure forever), and sorted
/// keys (save_cache writes sorted; disorder flags hand-editing — warning).
CheckReport lint_cache_file(const std::string& path);

}  // namespace mighty::check
