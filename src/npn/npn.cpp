#include "npn/npn.hpp"

#include <algorithm>
#include "util/assert.hpp"
#include <numeric>

namespace mighty::npn {

tt::TruthTable apply(const tt::TruthTable& f, const Transform& t) {
  MIGHTY_ASSERT(f.num_vars() == t.num_vars);
  tt::TruthTable g = f;
  for (uint32_t v = 0; v < f.num_vars(); ++v) {
    if ((t.input_negations >> v) & 1) g = g.flip(v);
  }
  g = g.permute(t.perm);
  if (t.output_negation) g = ~g;
  return g;
}

Transform inverse(const Transform& t) {
  Transform r;
  r.num_vars = t.num_vars;
  r.output_negation = t.output_negation;
  r.input_negations = 0;
  for (uint32_t i = 0; i < t.num_vars; ++i) {
    // t.perm maps original variable i to result variable t.perm[i]; the
    // inverse permutation maps it back.
    r.perm[t.perm[i]] = static_cast<uint8_t>(i);
    if ((t.input_negations >> i) & 1) {
      r.input_negations = static_cast<uint8_t>(r.input_negations | (1u << t.perm[i]));
    }
  }
  for (uint32_t i = t.num_vars; i < tt::TruthTable::max_vars; ++i) {
    r.perm[i] = static_cast<uint8_t>(i);
  }
  // Derivation: h(x) = f(x_{p(i)} ^ n_i) ^ o.  Solving for f gives
  // f(u) = h(u_{p^{-1}(j)} ^ n_{p^{-1}(j)}) ^ o, i.e. the inverse permutation
  // with negations carried to the permuted positions and the same output
  // negation.
  return r;
}

std::vector<std::array<uint8_t, tt::TruthTable::max_vars>> all_permutations(uint32_t n) {
  std::array<uint8_t, tt::TruthTable::max_vars> base{0, 1, 2, 3, 4, 5};
  std::vector<std::array<uint8_t, tt::TruthTable::max_vars>> result;
  std::array<uint8_t, tt::TruthTable::max_vars> p = base;
  do {
    result.push_back(p);
  } while (std::next_permutation(p.begin(), p.begin() + n));
  return result;
}

CanonResult canonize(const tt::TruthTable& f) {
  const uint32_t n = f.num_vars();
  MIGHTY_ASSERT(n <= 4);
  const auto perms = all_permutations(n);

  CanonResult best;
  bool have_best = false;
  Transform t;
  t.num_vars = static_cast<uint8_t>(n);
  for (const auto& perm : perms) {
    t.perm = perm;
    for (uint32_t neg = 0; neg < (1u << n); ++neg) {
      t.input_negations = static_cast<uint8_t>(neg);
      for (uint32_t out = 0; out < 2; ++out) {
        t.output_negation = out != 0;
        tt::TruthTable candidate = apply(f, t);
        if (!have_best || candidate < best.representative) {
          best.representative = candidate;
          best.transform = t;
          have_best = true;
        }
      }
    }
  }
  return best;
}

uint64_t orbit_size(const tt::TruthTable& f) {
  const uint32_t n = f.num_vars();
  MIGHTY_ASSERT(n <= 4);
  std::vector<uint64_t> seen;
  Transform t;
  t.num_vars = static_cast<uint8_t>(n);
  for (const auto& perm : all_permutations(n)) {
    t.perm = perm;
    for (uint32_t neg = 0; neg < (1u << n); ++neg) {
      t.input_negations = static_cast<uint8_t>(neg);
      for (uint32_t out = 0; out < 2; ++out) {
        t.output_negation = out != 0;
        seen.push_back(apply(f, t).bits());
      }
    }
  }
  std::sort(seen.begin(), seen.end());
  return static_cast<uint64_t>(std::unique(seen.begin(), seen.end()) - seen.begin());
}

std::vector<tt::TruthTable> enumerate_classes(uint32_t num_vars) {
  MIGHTY_ASSERT(num_vars <= 4);
  const uint64_t total = uint64_t{1} << (uint64_t{1} << num_vars);
  std::vector<bool> seen(total, false);
  std::vector<tt::TruthTable> reps;

  const auto perms = all_permutations(num_vars);
  Transform t;
  t.num_vars = static_cast<uint8_t>(num_vars);

  for (uint64_t bits = 0; bits < total; ++bits) {
    if (seen[bits]) continue;
    const tt::TruthTable f(num_vars, bits);
    reps.push_back(f);  // first unseen function is numerically smallest in its orbit
    for (const auto& perm : perms) {
      t.perm = perm;
      for (uint32_t neg = 0; neg < (1u << num_vars); ++neg) {
        t.input_negations = static_cast<uint8_t>(neg);
        for (uint32_t out = 0; out < 2; ++out) {
          t.output_negation = out != 0;
          seen[apply(f, t).bits()] = true;
        }
      }
    }
  }
  return reps;
}

}  // namespace mighty::npn
