#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tt/truth_table.hpp"

/// \file npn.hpp
/// \brief Exact NPN classification for functions of up to four variables.
///
/// Two functions are NPN-equivalent if one can be obtained from the other by
/// Negating inputs, Permuting inputs and/or Negating the output (paper
/// Sec. II-D).  The canonical representative of a class is the member with the
/// numerically smallest truth table.  For n <= 4 the full transformation group
/// (n! * 2^n * 2 <= 768 elements) is enumerated, which is exact and fast.

namespace mighty::npn {

/// An NPN transformation.  Applying it to a function f yields
///   h(x_0, ..., x_{n-1}) = f(y_0, ..., y_{n-1}) ^ output_negation,
/// where y_i = x_{perm[i]} ^ input_negation_bit(i); i.e. original input i of f
/// is driven by (possibly complemented) variable perm[i] of the result.
struct Transform {
  std::array<uint8_t, tt::TruthTable::max_vars> perm{0, 1, 2, 3, 4, 5};
  uint8_t input_negations = 0;  ///< bit i complements original input i
  bool output_negation = false;
  uint8_t num_vars = 0;

  bool operator==(const Transform&) const = default;
};

/// Applies a transformation to a function.
tt::TruthTable apply(const tt::TruthTable& f, const Transform& t);

/// The transformation t' with apply(apply(f, t), t') == f for every f.
Transform inverse(const Transform& t);

/// Result of canonization: `representative == apply(f, transform)` and
/// `f == apply(representative, inverse(transform))`.
struct CanonResult {
  tt::TruthTable representative;
  Transform transform;
};

/// Exact (exhaustive) NPN canonization; requires f.num_vars() <= 4.
CanonResult canonize(const tt::TruthTable& f);

/// All NPN class representatives over exactly `num_vars` variables, sorted
/// numerically.  For num_vars = 0..4 the class counts are 2, 2, 4, 14, 222.
std::vector<tt::TruthTable> enumerate_classes(uint32_t num_vars);

/// All permutations of {0, ..., n-1} (identity-extended to max_vars entries).
std::vector<std::array<uint8_t, tt::TruthTable::max_vars>> all_permutations(uint32_t n);

/// Number of distinct functions in the NPN orbit of f (requires <= 4 vars).
uint64_t orbit_size(const tt::TruthTable& f);

}  // namespace mighty::npn
