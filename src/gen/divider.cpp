#include "gen/arith.hpp"

/// Divisor (128/128): 64-bit restoring array divider producing the quotient
/// and the remainder.  Division by zero yields an all-ones quotient and the
/// dividend as remainder (the natural output of the restoring array when the
/// subtraction never borrows... with divisor 0 the subtract always succeeds,
/// giving quotient all-ones and remainder equal to the running partial, which
/// the software model in the tests replicates).

namespace mighty::gen {

mig::Mig make_divisor_n(uint32_t bits) {
  mig::Mig m;
  Word dividend, divisor;
  for (uint32_t i = 0; i < bits; ++i) dividend.push_back(m.create_pi());
  for (uint32_t i = 0; i < bits; ++i) divisor.push_back(m.create_pi());

  // Restoring division, MSB first: shift the next dividend bit into the
  // partial remainder, try to subtract the divisor, keep the difference when
  // it does not borrow.
  Word remainder(bits + 1, m.get_constant(false));
  Word quotient(bits, m.get_constant(false));
  for (uint32_t step = 0; step < bits; ++step) {
    // remainder = (remainder << 1) | dividend[bits-1-step]
    Word shifted(bits + 1, m.get_constant(false));
    shifted[0] = dividend[bits - 1 - step];
    for (uint32_t i = 0; i + 1 < bits + 1; ++i) shifted[i + 1] = remainder[i];
    const Word divisor_ext = resize(m, divisor, bits + 1);
    const SubResult sub = subtract(m, shifted, divisor_ext);
    quotient[bits - 1 - step] = sub.no_borrow;
    remainder = mux_word(m, sub.no_borrow, sub.difference, shifted);
  }
  remainder.resize(bits);

  for (const mig::Signal s : quotient) m.create_po(s);
  for (const mig::Signal s : remainder) m.create_po(s);
  return m;
}

mig::Mig make_divisor() { return make_divisor_n(64); }

}  // namespace mighty::gen
