#include "gen/arith.hpp"

#include "util/assert.hpp"

namespace mighty::gen {

using mig::Mig;
using mig::Signal;

SumCarry full_adder(Mig& m, Signal a, Signal b, Signal c) {
  // Built the way an AND/OR/XOR-based flow would emit it (two half adders),
  // not in the MIG-optimal Fig.-1 form: the paper's starting points come from
  // such flows, and this leaves the majority-carry reconstruction to the
  // optimization algorithms under test.
  const Signal axb = m.create_xor(a, b);
  const Signal sum = m.create_xor(axb, c);
  const Signal carry = m.create_or(m.create_and(a, b), m.create_and(axb, c));
  return SumCarry{sum, carry};
}

Word ripple_add(Mig& m, const Word& a, const Word& b, Signal carry_in) {
  const size_t n = std::max(a.size(), b.size());
  Word sum;
  sum.reserve(n + 1);
  Signal carry = carry_in;
  for (size_t i = 0; i < n; ++i) {
    const Signal ai = i < a.size() ? a[i] : m.get_constant(false);
    const Signal bi = i < b.size() ? b[i] : m.get_constant(false);
    const auto fa = full_adder(m, ai, bi, carry);
    sum.push_back(fa.sum);
    carry = fa.carry;
  }
  sum.push_back(carry);
  return sum;
}

Word kogge_stone_add(Mig& m, const Word& a, const Word& b) {
  MIGHTY_ASSERT(a.size() == b.size());
  const size_t n = a.size();
  // Generate/propagate pairs; prefix-combine with doubling strides.
  std::vector<Signal> g(n), p(n);
  for (size_t i = 0; i < n; ++i) {
    g[i] = m.create_and(a[i], b[i]);
    p[i] = m.create_xor(a[i], b[i]);
  }
  std::vector<Signal> gg = g, pp = p;
  for (size_t stride = 1; stride < n; stride *= 2) {
    std::vector<Signal> g2 = gg, p2 = pp;
    for (size_t i = stride; i < n; ++i) {
      // (g, p) o (g', p') = (g | p & g', p & p')
      g2[i] = m.create_or(gg[i], m.create_and(pp[i], gg[i - stride]));
      p2[i] = m.create_and(pp[i], pp[i - stride]);
    }
    gg = std::move(g2);
    pp = std::move(p2);
  }
  // Carries: c_0 = 0, c_{i+1} = G_{0..i} = gg[i].
  Word sum(n + 1);
  Signal carry = m.get_constant(false);
  for (size_t i = 0; i < n; ++i) {
    sum[i] = m.create_xor(p[i], carry);
    carry = gg[i];
  }
  sum[n] = carry;
  return sum;
}

SubResult subtract(Mig& m, const Word& a, const Word& b) {
  // a - b = a + ~b + 1; the carry out of the addition is the no-borrow flag.
  Word b_not;
  b_not.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    b_not.push_back(i < b.size() ? !b[i] : m.get_constant(true));
  }
  Word sum = ripple_add(m, a, b_not, m.get_constant(true));
  SubResult r;
  r.no_borrow = sum.back();
  sum.pop_back();
  r.difference = std::move(sum);
  return r;
}

Signal less_than(Mig& m, const Word& a, const Word& b) {
  return !subtract(m, a, b).no_borrow;
}

Word mux_word(Mig& m, Signal sel, const Word& t, const Word& e) {
  MIGHTY_ASSERT(t.size() == e.size());
  Word r;
  r.reserve(t.size());
  for (size_t i = 0; i < t.size(); ++i) r.push_back(m.create_ite(sel, t[i], e[i]));
  return r;
}

Word shift_left_const(Mig& m, const Word& a, uint32_t amount, uint32_t width) {
  Word r(width, m.get_constant(false));
  for (uint32_t i = 0; i + amount < width && i < a.size(); ++i) {
    r[i + amount] = a[i];
  }
  return r;
}

Word constant_word(Mig& m, uint64_t value, uint32_t width) {
  Word r;
  r.reserve(width);
  for (uint32_t i = 0; i < width; ++i) r.push_back(m.get_constant(((value >> i) & 1) != 0));
  return r;
}

Word resize(Mig& m, const Word& a, uint32_t width) {
  Word r = a;
  r.resize(width, m.get_constant(false));
  return r;
}

Word add_many(Mig& m, std::vector<Word> addends, uint32_t width) {
  if (addends.empty()) return constant_word(m, 0, width);
  for (auto& w : addends) w = resize(m, w, width);
  // 3:2 carry-save compression until two rows remain, then one ripple add.
  while (addends.size() > 2) {
    std::vector<Word> next;
    size_t i = 0;
    for (; i + 2 < addends.size(); i += 3) {
      Word sums(width, m.get_constant(false));
      Word carries(width, m.get_constant(false));
      for (uint32_t bit = 0; bit < width; ++bit) {
        const auto fa = full_adder(m, addends[i][bit], addends[i + 1][bit],
                                   addends[i + 2][bit]);
        sums[bit] = fa.sum;
        if (bit + 1 < width) carries[bit + 1] = fa.carry;
      }
      next.push_back(std::move(sums));
      next.push_back(std::move(carries));
    }
    for (; i < addends.size(); ++i) next.push_back(std::move(addends[i]));
    addends = std::move(next);
  }
  if (addends.size() == 1) return resize(m, addends[0], width);
  Word sum = ripple_add(m, addends[0], addends[1], m.get_constant(false));
  sum.resize(width, m.get_constant(false));
  return sum;
}

std::vector<Benchmark> epfl_arithmetic_suite() {
  std::vector<Benchmark> suite;
  suite.push_back({"Adder", make_adder()});
  suite.push_back({"Divisor", make_divisor()});
  suite.push_back({"Log2", make_log2()});
  suite.push_back({"Max", make_max()});
  suite.push_back({"Multiplier", make_multiplier()});
  suite.push_back({"Sine", make_sine()});
  suite.push_back({"Square-root", make_sqrt()});
  suite.push_back({"Square", make_square()});
  return suite;
}

}  // namespace mighty::gen
