#include "gen/arith.hpp"

/// Adder (EPFL signature 256/129): two 128-bit operands, 129-bit sum.  The
/// Kogge-Stone prefix structure is used so that the pre-optimization baseline
/// already has logarithmic depth, mirroring the paper's setting where the
/// starting points are depth-optimized MIGs.

namespace mighty::gen {

mig::Mig make_adder_n(uint32_t bits) {
  mig::Mig m;
  Word a, b;
  for (uint32_t i = 0; i < bits; ++i) a.push_back(m.create_pi());
  for (uint32_t i = 0; i < bits; ++i) b.push_back(m.create_pi());
  const Word sum = kogge_stone_add(m, a, b);
  for (const mig::Signal s : sum) m.create_po(s);
  return m;
}

mig::Mig make_adder() { return make_adder_n(128); }

}  // namespace mighty::gen
