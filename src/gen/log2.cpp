#include "gen/arith.hpp"

/// Log2 (32/32): fixed-point base-2 logarithm of a 32-bit integer.  The
/// integer part (5 bits) is the position of the leading one; the fractional
/// part (27 bits) comes from the classic repeated-squaring method on a
/// 15-bit normalized mantissa:  with m in [1,2), square it; if m^2 >= 2 the
/// next fraction bit is 1 and m^2 is halved.  `log2_model` replicates the
/// computation bit-exactly.

namespace mighty::gen {

namespace {
constexpr uint32_t kMantissaBits = 15;  // 1 integer + 14 fraction bits
}

mig::Mig make_log2_n(uint32_t frac_bits) {
  constexpr uint32_t kInputBits = 32;
  mig::Mig m;
  Word x;
  for (uint32_t i = 0; i < kInputBits; ++i) x.push_back(m.create_pi());

  // Leading-one detection: none_above[i] = no input bit above i is set.
  std::vector<mig::Signal> none_above(kInputBits);
  std::vector<mig::Signal> is_msb(kInputBits);
  mig::Signal chain = m.get_constant(true);
  for (uint32_t i = kInputBits; i-- > 0;) {
    none_above[i] = chain;
    is_msb[i] = m.create_and(x[i], chain);
    chain = m.create_and(chain, !x[i]);
  }

  // Integer part: binary encoding of the leading-one position.
  Word int_part(5, m.get_constant(false));
  for (uint32_t j = 0; j < 5; ++j) {
    mig::Signal acc = m.get_constant(false);
    for (uint32_t i = 0; i < kInputBits; ++i) {
      if ((i >> j) & 1) acc = m.create_or(acc, is_msb[i]);
    }
    int_part[j] = acc;
  }

  // Normalized mantissa: the top kMantissaBits bits starting at the leading
  // one (one-hot select; zero when x == 0).
  Word mantissa(kMantissaBits, m.get_constant(false));
  for (uint32_t t = 0; t < kMantissaBits; ++t) {
    // mantissa bit t takes input bit (i - (kMantissaBits-1) + t) when the
    // leading one is at position i.
    mig::Signal acc = m.get_constant(false);
    for (uint32_t i = 0; i < kInputBits; ++i) {
      const int src = static_cast<int>(i) - static_cast<int>(kMantissaBits - 1) +
                      static_cast<int>(t);
      if (src < 0 || src > static_cast<int>(i)) continue;
      acc = m.create_or(acc, m.create_and(is_msb[i], x[static_cast<uint32_t>(src)]));
    }
    mantissa[t] = acc;
  }

  // Fraction bits by repeated squaring of the mantissa.
  Word frac(frac_bits, m.get_constant(false));
  Word y = mantissa;  // Q1.(kMantissaBits-1)
  for (uint32_t step = 0; step < frac_bits; ++step) {
    // s = y * y, a 2*kMantissaBits-bit square.
    std::vector<Word> rows;
    Word diag(2 * kMantissaBits, m.get_constant(false));
    for (uint32_t i = 0; i < kMantissaBits; ++i) diag[2 * i] = y[i];
    rows.push_back(std::move(diag));
    for (uint32_t j = 0; j < kMantissaBits; ++j) {
      Word row(2 * kMantissaBits, m.get_constant(false));
      bool any = false;
      for (uint32_t i = j + 1; i < kMantissaBits; ++i) {
        row[i + j + 1] = m.create_and(y[i], y[j]);
        any = true;
      }
      if (any) rows.push_back(std::move(row));
    }
    const Word s = add_many(m, std::move(rows), 2 * kMantissaBits);

    // s in Q2.(2*kMantissaBits-2); bit (2*kMantissaBits-1) means s >= 2.
    const mig::Signal ge2 = s[2 * kMantissaBits - 1];
    frac[frac_bits - 1 - step] = ge2;  // MSB-first fraction
    Word hi(kMantissaBits), lo(kMantissaBits);
    for (uint32_t i = 0; i < kMantissaBits; ++i) {
      hi[i] = s[i + kMantissaBits];      // s >> kMantissaBits (when >= 2)
      lo[i] = s[i + kMantissaBits - 1];  // s >> (kMantissaBits-1)
    }
    y = mux_word(m, ge2, hi, lo);
  }

  for (const mig::Signal s : frac) m.create_po(s);      // fraction, LSB first
  for (const mig::Signal s : int_part) m.create_po(s);  // integer part above
  return m;
}

mig::Mig make_log2() { return make_log2_n(27); }

uint64_t log2_model(uint32_t x, uint32_t frac_bits) {
  // Mirror the circuit exactly, including the x == 0 corner (k = 0, zero
  // mantissa, zero fraction).
  uint32_t k = 0;
  for (uint32_t i = 0; i < 32; ++i) {
    if ((x >> i) & 1) k = i;
  }
  uint64_t mantissa = 0;
  if (x != 0) {
    // Top kMantissaBits bits starting at the leading one.
    for (uint32_t t = 0; t < kMantissaBits; ++t) {
      const int src = static_cast<int>(k) - static_cast<int>(kMantissaBits - 1) +
                      static_cast<int>(t);
      if (src >= 0 && ((x >> src) & 1)) mantissa |= uint64_t{1} << t;
    }
  }
  uint64_t frac = 0;
  uint64_t y = mantissa;
  for (uint32_t step = 0; step < frac_bits; ++step) {
    const uint64_t s = y * y;
    const bool ge2 = ((s >> (2 * kMantissaBits - 1)) & 1) != 0;
    frac |= uint64_t{ge2} << (frac_bits - 1 - step);
    y = ge2 ? (s >> kMantissaBits) : (s >> (kMantissaBits - 1));
    y &= (uint64_t{1} << kMantissaBits) - 1;
  }
  return frac | (uint64_t{k} << frac_bits);
}

}  // namespace mighty::gen
