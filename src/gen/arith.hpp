#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mig/mig.hpp"

/// \file arith.hpp
/// \brief Generators for the eight arithmetic benchmarks of the EPFL suite.
///
/// The paper evaluates on the EPFL arithmetic benchmarks (Adder 256/129,
/// Divisor 128/128, Log2 32/32, Max 512/130, Multiplier 128/128, Sine 24/25,
/// Square-root 128/64, Square 64/128).  The original circuit files are not
/// redistributable here, so functionally equivalent MIGs are generated from
/// textbook structures with the same I/O signatures (see DESIGN.md for the
/// substitution rationale).  Every generator has a bit-exact software model
/// in `gen/arith.hpp` used by the validation tests.

namespace mighty::gen {

/// A little-endian word of signals (bit 0 first).
using Word = std::vector<mig::Signal>;

// --- word-level helper kit ----------------------------------------------------

/// Full adder (3 gates: shared carry plus Fig.-1 sum structure).
struct SumCarry {
  mig::Signal sum;
  mig::Signal carry;
};
SumCarry full_adder(mig::Mig& m, mig::Signal a, mig::Signal b, mig::Signal c);

/// Ripple-carry addition; result has max(|a|,|b|)+1 bits (carry out last).
Word ripple_add(mig::Mig& m, const Word& a, const Word& b, mig::Signal carry_in);

/// Kogge-Stone parallel-prefix adder: logarithmic depth, used to seed the
/// depth-optimized baselines.  Result has |a|+1 bits; |a| must equal |b|.
Word kogge_stone_add(mig::Mig& m, const Word& a, const Word& b);

/// a - b as a word of |a| bits plus the final borrow-free flag:
/// returns {difference, no_borrow} where no_borrow = (a >= b).
struct SubResult {
  Word difference;
  mig::Signal no_borrow;
};
SubResult subtract(mig::Mig& m, const Word& a, const Word& b);

/// Unsigned comparison a < b.
mig::Signal less_than(mig::Mig& m, const Word& a, const Word& b);

/// Per-bit multiplexer: sel ? t : e.
Word mux_word(mig::Mig& m, mig::Signal sel, const Word& t, const Word& e);

/// Left shift by a constant (zero fill), keeping `width` bits.
Word shift_left_const(mig::Mig& m, const Word& a, uint32_t amount, uint32_t width);

/// Constant word of `width` bits.
Word constant_word(mig::Mig& m, uint64_t value, uint32_t width);

/// Resizes a word (zero-extends or truncates).
Word resize(mig::Mig& m, const Word& a, uint32_t width);

/// Carry-save array reduction of addends into a single word of `width` bits
/// (each addend is a word that is added at bit offset 0).
Word add_many(mig::Mig& m, std::vector<Word> addends, uint32_t width);

// --- the eight benchmark circuits ---------------------------------------------

struct Benchmark {
  std::string name;
  mig::Mig mig;
};

mig::Mig make_adder();       ///< 256 in / 129 out: 128+128 -> 129-bit sum
mig::Mig make_divisor();     ///< 128 in / 128 out: 64/64 -> quotient, remainder
mig::Mig make_log2();        ///< 32 in / 32 out: fixed-point log2 (5 int, 27 frac)
mig::Mig make_max();         ///< 512 in / 130 out: max of four 128-bit words + index
mig::Mig make_multiplier();  ///< 128 in / 128 out: 64x64 -> 128-bit product
mig::Mig make_sine();        ///< 24 in / 25 out: CORDIC sine over a 24-bit angle
mig::Mig make_sqrt();        ///< 128 in / 64 out: integer square root
mig::Mig make_square();      ///< 64 in / 128 out: 64-bit squarer

/// The full suite in the paper's Table III order.
std::vector<Benchmark> epfl_arithmetic_suite();

/// Reduced-width variants for fast tests and smoke benches: every circuit's
/// structure generator parameterized by operand width.
mig::Mig make_adder_n(uint32_t bits);
mig::Mig make_divisor_n(uint32_t bits);
mig::Mig make_multiplier_n(uint32_t bits);
mig::Mig make_square_n(uint32_t bits);
mig::Mig make_sqrt_n(uint32_t bits);        ///< input 2*bits, output bits
mig::Mig make_max_n(uint32_t bits);         ///< four operands of `bits` bits
mig::Mig make_log2_n(uint32_t frac_bits);   ///< 32-bit input, 5 + frac_bits outputs
mig::Mig make_sine_n(uint32_t angle_bits);  ///< angle_bits input, angle_bits+1 outputs

// --- bit-exact software models (for validation) --------------------------------

/// Software model of make_log2_n: integer part = floor(log2(x)), fractional
/// bits by repeated squaring of a 15-bit mantissa.  x must be nonzero.
uint64_t log2_model(uint32_t x, uint32_t frac_bits);

/// Software model of make_sine_n: CORDIC with angle_bits iterations, input
/// angle in [0, pi/2) as a Q0.angle_bits fraction of pi/2, output sine as a
/// signed Q1.angle_bits value (always non-negative here).
uint64_t sine_model(uint64_t angle, uint32_t angle_bits);

}  // namespace mighty::gen
