#include "gen/arith.hpp"

/// Multiplier (128/128): 64x64 unsigned array multiplier with carry-save
/// reduction.  Square (64/128): dedicated squarer exploiting the symmetry
/// x_i x_j = x_j x_i (off-diagonal products are added once, shifted left).

namespace mighty::gen {

mig::Mig make_multiplier_n(uint32_t bits) {
  mig::Mig m;
  Word a, b;
  for (uint32_t i = 0; i < bits; ++i) a.push_back(m.create_pi());
  for (uint32_t i = 0; i < bits; ++i) b.push_back(m.create_pi());

  const uint32_t width = 2 * bits;
  std::vector<Word> rows;
  rows.reserve(bits);
  for (uint32_t j = 0; j < bits; ++j) {
    Word row(width, m.get_constant(false));
    for (uint32_t i = 0; i < bits; ++i) {
      row[i + j] = m.create_and(a[i], b[j]);
    }
    rows.push_back(std::move(row));
  }
  const Word product = add_many(m, std::move(rows), width);
  for (const mig::Signal s : product) m.create_po(s);
  return m;
}

mig::Mig make_multiplier() { return make_multiplier_n(64); }

mig::Mig make_square_n(uint32_t bits) {
  mig::Mig m;
  Word x;
  for (uint32_t i = 0; i < bits; ++i) x.push_back(m.create_pi());

  const uint32_t width = 2 * bits;
  std::vector<Word> rows;
  // Diagonal terms x_i^2 = x_i at weight 2i; off-diagonal pairs contribute
  // x_i x_j at weight i+j+1 (counted once, doubled by the shift).
  Word diag(width, m.get_constant(false));
  for (uint32_t i = 0; i < bits; ++i) diag[2 * i] = x[i];
  rows.push_back(std::move(diag));
  for (uint32_t j = 0; j < bits; ++j) {
    Word row(width, m.get_constant(false));
    bool any = false;
    for (uint32_t i = j + 1; i < bits; ++i) {
      if (i + j + 1 < width) {
        row[i + j + 1] = m.create_and(x[i], x[j]);
        any = true;
      }
    }
    if (any) rows.push_back(std::move(row));
  }
  const Word square = add_many(m, std::move(rows), width);
  for (const mig::Signal s : square) m.create_po(s);
  return m;
}

mig::Mig make_square() { return make_square_n(64); }

}  // namespace mighty::gen
