#include "gen/arith.hpp"

/// Max (512/130): maximum of four 128-bit unsigned words plus the 2-bit index
/// of the winner (ties resolved toward the lower index), computed as a
/// comparator/multiplexer tournament.

namespace mighty::gen {

mig::Mig make_max_n(uint32_t bits) {
  mig::Mig m;
  std::array<Word, 4> v;
  for (auto& word : v) {
    for (uint32_t i = 0; i < bits; ++i) word.push_back(m.create_pi());
  }

  // Round 1: winners of (v0, v1) and (v2, v3).
  const mig::Signal v1_wins = less_than(m, v[0], v[1]);
  const Word m01 = mux_word(m, v1_wins, v[1], v[0]);
  const mig::Signal v3_wins = less_than(m, v[2], v[3]);
  const Word m23 = mux_word(m, v3_wins, v[3], v[2]);

  // Final: winner of the two semifinals.
  const mig::Signal hi_wins = less_than(m, m01, m23);
  const Word winner = mux_word(m, hi_wins, m23, m01);

  // Index bits: bit1 selects the (v2, v3) bracket, bit0 the upper element of
  // the winning bracket.
  const mig::Signal index1 = hi_wins;
  const mig::Signal index0 = m.create_ite(hi_wins, v3_wins, v1_wins);

  for (const mig::Signal s : winner) m.create_po(s);
  m.create_po(index0);
  m.create_po(index1);
  return m;
}

mig::Mig make_max() { return make_max_n(128); }

}  // namespace mighty::gen
