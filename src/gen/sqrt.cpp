#include "gen/arith.hpp"

/// Square-root (128/64): restoring integer square root, digit-by-digit from
/// the most significant radicand pair downward.

namespace mighty::gen {

mig::Mig make_sqrt_n(uint32_t bits) {
  // Input has 2*bits bits, output has `bits` bits.
  mig::Mig m;
  Word x;
  for (uint32_t i = 0; i < 2 * bits; ++i) x.push_back(m.create_pi());

  // Classic restoring algorithm: in each of `bits` iterations, bring down the
  // next two radicand bits, form the trial subtrahend (root << 2) | 1, and
  // accept the subtraction when it does not borrow.
  const uint32_t rem_width = bits + 2;
  Word remainder(rem_width, m.get_constant(false));
  Word root;  // little-endian, grows by one accepted bit per step

  for (uint32_t step = 0; step < bits; ++step) {
    // remainder = (remainder << 2) | next two input bits (MSB first).
    Word shifted(rem_width, m.get_constant(false));
    shifted[1] = x[2 * (bits - 1 - step) + 1];
    shifted[0] = x[2 * (bits - 1 - step)];
    for (uint32_t i = 0; i + 2 < rem_width; ++i) shifted[i + 2] = remainder[i];

    // Trial value t = (root << 2) | 1.
    Word trial(rem_width, m.get_constant(false));
    trial[0] = m.get_constant(true);
    for (uint32_t i = 0; i < root.size() && i + 2 < rem_width; ++i) {
      trial[i + 2] = root[i];
    }

    const SubResult sub = subtract(m, shifted, trial);
    remainder = mux_word(m, sub.no_borrow, sub.difference, shifted);
    // Append the accepted bit to the root (as the new LSB).
    root.insert(root.begin(), sub.no_borrow);
  }

  for (const mig::Signal s : root) m.create_po(s);
  return m;
}

mig::Mig make_sqrt() { return make_sqrt_n(64); }

}  // namespace mighty::gen
