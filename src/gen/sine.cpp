#include "gen/arith.hpp"

#include <cmath>

/// Sine (24/25): CORDIC in circular rotation mode.  The input is an angle in
/// Q0.24 radians (range [0, 1)); the output is sin(angle) in Q1.24.  One
/// add/sub-rotate stage per angle bit; the arctangent constants and the gain
/// compensation are compile-time constants, so `sine_model` reproduces the
/// datapath bit-exactly with integer arithmetic.

namespace mighty::gen {

namespace {

/// atan(2^-i) scaled to Q0.`frac` fixed point.
int64_t atan_constant(uint32_t i, uint32_t frac) {
  return static_cast<int64_t>(std::llround(std::atan(std::ldexp(1.0, -static_cast<int>(i))) *
                                           std::ldexp(1.0, static_cast<int>(frac))));
}

/// CORDIC gain K = prod 1/sqrt(1+2^-2i), scaled to Q1.`frac`.
int64_t gain_constant(uint32_t iterations, uint32_t frac) {
  double k = 1.0;
  for (uint32_t i = 0; i < iterations; ++i) {
    k /= std::sqrt(1.0 + std::ldexp(1.0, -2 * static_cast<int>(i)));
  }
  return static_cast<int64_t>(std::llround(k * std::ldexp(1.0, static_cast<int>(frac))));
}

/// Conditional adder/subtractor: out = a + (b ^ sub) + sub, i.e. a+b when
/// sub = 0 and a-b when sub = 1; words are two's complement of equal width.
Word add_sub(mig::Mig& m, const Word& a, const Word& b, mig::Signal sub) {
  Word b_eff;
  b_eff.reserve(b.size());
  for (const mig::Signal s : b) b_eff.push_back(m.create_xor(s, sub));
  Word sum = ripple_add(m, a, b_eff, sub);
  sum.resize(a.size());  // two's complement: discard the carry out
  return sum;
}

/// Arithmetic shift right by `amount` (sign extension).
Word arith_shift_right(const Word& a, uint32_t amount) {
  Word r(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t src = i + amount;
    r[i] = src < a.size() ? a[src] : a.back();
  }
  return r;
}

}  // namespace

mig::Mig make_sine_n(uint32_t angle_bits) {
  // Datapath width: sign + 2 integer guard bits + angle_bits fraction.
  const uint32_t width = angle_bits + 3;
  mig::Mig m;
  Word z;
  for (uint32_t i = 0; i < angle_bits; ++i) z.push_back(m.create_pi());
  z = resize(m, z, width);  // non-negative angle

  Word x = constant_word(m, static_cast<uint64_t>(gain_constant(angle_bits, angle_bits)),
                         width);
  Word y = constant_word(m, 0, width);

  for (uint32_t i = 0; i < angle_bits; ++i) {
    const mig::Signal z_negative = z.back();
    // d = +1 when z >= 0 (rotate toward larger angle): then
    //   x' = x - (y >> i), y' = y + (x >> i), z' = z - atan(2^-i);
    // otherwise the signs flip.
    const Word xs = arith_shift_right(x, i);
    const Word ys = arith_shift_right(y, i);
    const Word atan_w = constant_word(
        m, static_cast<uint64_t>(atan_constant(i, angle_bits)), width);
    const Word x_next = add_sub(m, x, ys, !z_negative);
    const Word y_next = add_sub(m, y, xs, z_negative);
    const Word z_next = add_sub(m, z, atan_w, !z_negative);
    x = x_next;
    y = y_next;
    z = z_next;
  }

  // sin(angle) = y, non-negative for angles in [0, 1); emit Q1.angle_bits.
  for (uint32_t i = 0; i < angle_bits + 1; ++i) m.create_po(y[i]);
  return m;
}

mig::Mig make_sine() { return make_sine_n(24); }

uint64_t sine_model(uint64_t angle, uint32_t angle_bits) {
  const uint32_t width = angle_bits + 3;
  const int64_t mask = (int64_t{1} << width) - 1;
  auto sign_extend = [&](int64_t v) {
    v &= mask;
    if ((v >> (width - 1)) & 1) v -= int64_t{1} << width;
    return v;
  };
  int64_t x = gain_constant(angle_bits, angle_bits);
  int64_t y = 0;
  int64_t z = sign_extend(static_cast<int64_t>(angle));
  for (uint32_t i = 0; i < angle_bits; ++i) {
    const bool z_negative = z < 0;
    const int64_t xs = x >> i;
    const int64_t ys = y >> i;
    const int64_t at = atan_constant(i, angle_bits);
    if (!z_negative) {
      x = sign_extend(x - ys);
      y = sign_extend(y + xs);
      z = sign_extend(z - at);
    } else {
      x = sign_extend(x + ys);
      y = sign_extend(y - xs);
      z = sign_extend(z + at);
    }
  }
  return static_cast<uint64_t>(y) & ((uint64_t{1} << (angle_bits + 1)) - 1);
}

}  // namespace mighty::gen
