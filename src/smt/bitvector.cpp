#include "smt/bitvector.hpp"

#include "util/assert.hpp"

namespace mighty::smt {

using sat::Lit;
using sat::negate;

Context::Context(sat::Solver& solver) : solver_(solver) {
  true_lit_ = sat::lit(solver_.new_var());
  solver_.add_clause({true_lit_});
}

Lit Context::fresh() { return sat::lit(solver_.new_var()); }

BitVector Context::bv_constant(uint64_t value, uint32_t width) {
  BitVector v;
  v.bits.reserve(width);
  for (uint32_t i = 0; i < width; ++i) {
    v.bits.push_back(literal(((value >> i) & 1) != 0));
  }
  return v;
}

BitVector Context::bv_variable(uint32_t width) {
  BitVector v;
  v.bits.reserve(width);
  for (uint32_t i = 0; i < width; ++i) v.bits.push_back(fresh());
  return v;
}

Lit Context::make_and(Lit a, Lit b) {
  if (a == false_lit() || b == false_lit()) return false_lit();
  if (a == true_lit()) return b;
  if (b == true_lit()) return a;
  if (a == b) return a;
  if (a == negate(b)) return false_lit();
  const Lit y = fresh();
  solver_.add_clause({negate(y), a});
  solver_.add_clause({negate(y), b});
  solver_.add_clause({y, negate(a), negate(b)});
  return y;
}

Lit Context::make_or(Lit a, Lit b) { return negate(make_and(negate(a), negate(b))); }

Lit Context::make_xor(Lit a, Lit b) {
  if (a == false_lit()) return b;
  if (b == false_lit()) return a;
  if (a == true_lit()) return negate(b);
  if (b == true_lit()) return negate(a);
  if (a == b) return false_lit();
  if (a == negate(b)) return true_lit();
  const Lit y = fresh();
  solver_.add_clause({negate(y), a, b});
  solver_.add_clause({negate(y), negate(a), negate(b)});
  solver_.add_clause({y, negate(a), b});
  solver_.add_clause({y, a, negate(b)});
  return y;
}

Lit Context::make_maj(Lit a, Lit b, Lit c) {
  if (a == b) return a;
  if (b == c) return b;
  if (a == c) return a;
  if (a == negate(b)) return c;
  if (b == negate(c)) return a;
  if (a == negate(c)) return b;
  if (a == false_lit()) return make_and(b, c);
  if (a == true_lit()) return make_or(b, c);
  if (b == false_lit()) return make_and(a, c);
  if (b == true_lit()) return make_or(a, c);
  if (c == false_lit()) return make_and(a, b);
  if (c == true_lit()) return make_or(a, b);
  const Lit y = fresh();
  solver_.add_clause({negate(y), a, b});
  solver_.add_clause({negate(y), a, c});
  solver_.add_clause({negate(y), b, c});
  solver_.add_clause({y, negate(a), negate(b)});
  solver_.add_clause({y, negate(a), negate(c)});
  solver_.add_clause({y, negate(b), negate(c)});
  return y;
}

Lit Context::eq(const BitVector& a, const BitVector& b) {
  MIGHTY_ASSERT(a.width() == b.width());
  Lit acc = true_lit();
  for (uint32_t i = 0; i < a.width(); ++i) {
    acc = make_and(acc, make_eq(a.bits[i], b.bits[i]));
  }
  return acc;
}

Lit Context::ult(const BitVector& a, const BitVector& b) {
  MIGHTY_ASSERT(a.width() == b.width());
  // Ripple comparison from the least significant bit:
  // lt_i = (!a_i & b_i) | (a_i == b_i) & lt_{i-1}.
  Lit lt = false_lit();
  for (uint32_t i = 0; i < a.width(); ++i) {
    const Lit bit_lt = make_and(negate(a.bits[i]), b.bits[i]);
    const Lit bit_eq = make_eq(a.bits[i], b.bits[i]);
    lt = make_or(bit_lt, make_and(bit_eq, lt));
  }
  return lt;
}

Lit Context::ule(const BitVector& a, const BitVector& b) { return negate(ult(b, a)); }

Lit Context::eq_const(const BitVector& a, uint64_t value) {
  return eq(a, bv_constant(value, a.width()));
}

Lit Context::ult_const(const BitVector& a, uint64_t value) {
  return ult(a, bv_constant(value, a.width()));
}

void Context::assert_implies_eq(Lit a, Lit b, Lit c) {
  solver_.add_clause({negate(a), negate(b), c});
  solver_.add_clause({negate(a), b, negate(c)});
}

uint64_t Context::model_value(const BitVector& v) const {
  uint64_t value = 0;
  for (uint32_t i = 0; i < v.width(); ++i) {
    if (solver_.model_value_lit(v.bits[i])) value |= uint64_t{1} << i;
  }
  return value;
}

}  // namespace mighty::smt
