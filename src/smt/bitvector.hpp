#pragma once

#include <cstdint>
#include <vector>

#include "sat/solver.hpp"

/// \file bitvector.hpp
/// \brief A miniature QF_BV "SMT" layer bit-blasted onto the CDCL solver.
///
/// The paper formulates exact synthesis as an SMT problem over bit-vector
/// select variables (Sec. III) and solves it with Z3.  Z3 decides QF_BV by
/// bit-blasting to SAT; this module reproduces that pipeline: bit-vector
/// terms (constants, variables, comparisons, equalities) and Boolean
/// connectives are Tseitin-encoded into `sat::Solver` clauses.  The
/// `exact/encoding_smt.cpp` encoder expresses the paper's constraints (4)-(10)
/// directly on this layer; `exact/encoding_onehot.cpp` is the hand-blasted
/// alternative, and the two are cross-checked in the tests.

namespace mighty::smt {

/// A bit-vector term: little-endian vector of SAT literals.  Constant bits
/// are represented through the context's true/false literals, so constant
/// folding happens inside the solver's unit propagation.
struct BitVector {
  std::vector<sat::Lit> bits;
  uint32_t width() const { return static_cast<uint32_t>(bits.size()); }
};

class Context {
public:
  explicit Context(sat::Solver& solver);

  sat::Solver& solver() { return solver_; }
  const sat::Solver& solver() const { return solver_; }

  /// The always-true / always-false literals.
  sat::Lit true_lit() const { return true_lit_; }
  sat::Lit false_lit() const { return sat::negate(true_lit_); }
  sat::Lit literal(bool value) const { return value ? true_lit() : false_lit(); }

  /// A fresh Boolean variable as a literal.
  sat::Lit fresh();

  /// Bit-vector constructors.
  BitVector bv_constant(uint64_t value, uint32_t width);
  BitVector bv_variable(uint32_t width);

  // --- Boolean gadgets (Tseitin) ---------------------------------------------
  sat::Lit make_and(sat::Lit a, sat::Lit b);
  sat::Lit make_or(sat::Lit a, sat::Lit b);
  sat::Lit make_xor(sat::Lit a, sat::Lit b);
  sat::Lit make_maj(sat::Lit a, sat::Lit b, sat::Lit c);
  /// y <-> (a <-> b)
  sat::Lit make_eq(sat::Lit a, sat::Lit b) { return sat::negate(make_xor(a, b)); }

  // --- Bit-vector predicates ---------------------------------------------------
  /// Literal that is true iff a == b (widths must match).
  sat::Lit eq(const BitVector& a, const BitVector& b);
  /// Literal that is true iff a < b (unsigned).
  sat::Lit ult(const BitVector& a, const BitVector& b);
  sat::Lit ule(const BitVector& a, const BitVector& b);
  /// Comparison against a constant.
  sat::Lit eq_const(const BitVector& a, uint64_t value);
  sat::Lit ult_const(const BitVector& a, uint64_t value);

  // --- Assertions ---------------------------------------------------------------
  void assert_lit(sat::Lit l) { solver_.add_clause({l}); }
  /// a -> b
  void assert_implies(sat::Lit a, sat::Lit b) { solver_.add_clause({sat::negate(a), b}); }
  /// a -> (b <-> c)
  void assert_implies_eq(sat::Lit a, sat::Lit b, sat::Lit c);

  /// Model value of a bit-vector after a SAT result.
  uint64_t model_value(const BitVector& v) const;

private:
  sat::Solver& solver_;
  sat::Lit true_lit_;
};

}  // namespace mighty::smt
