#pragma once

#include <cstdint>
#include <vector>

#include "mig/cuts.hpp"
#include "mig/mig.hpp"

/// \file lut_mapper.hpp
/// \brief Priority-cut k-LUT technology mapping.
///
/// Table IV of the paper maps the optimized MIGs with ABC and reports
/// area/depth; the EPFL best-result protocol measures 6-input LUT count and
/// LUT depth.  This module implements the classic priority-cuts mapper
/// (Mishchenko, Cho, Chatterjee, Brayton, ICCAD'07 -- the paper's ref. [11]):
/// a delay-optimal first pass followed by area-flow recovery passes under
/// required-time constraints, and a cover extraction.

namespace mighty::map {

struct MapParams {
  uint32_t lut_size = 6;
  /// Priority cuts kept per node.
  uint32_t cut_limit = 8;
  /// Area-recovery passes after the delay-optimal pass.
  uint32_t area_rounds = 2;
};

struct MappingResult {
  uint32_t num_luts = 0;
  uint32_t depth = 0;
  /// Chosen cover: for every mapped root, its cut leaves (node indices).
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> cover;
};

MappingResult map_luts(const mig::Mig& mig, const MapParams& params = {});

}  // namespace mighty::map
