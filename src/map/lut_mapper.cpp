#include "map/lut_mapper.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mighty::map {

namespace {

using cuts::Cut;

struct CutCost {
  Cut cut;
  uint32_t arrival = 0;
  double area_flow = 0.0;
};

struct NodeData {
  std::vector<CutCost> cut_costs;
  uint32_t best = 0;  ///< index of the representative cut
  uint32_t arrival = 0;
  double area_flow = 0.0;
};

}  // namespace

MappingResult map_luts(const mig::Mig& mig, const MapParams& params) {
  const uint32_t n = mig.num_nodes();
  std::vector<NodeData> data(n);
  const auto fanout = mig.compute_fanout_counts();
  auto refs = [&](uint32_t v) { return std::max<uint32_t>(1, fanout[v]); };

  std::vector<uint32_t> required(n, std::numeric_limits<uint32_t>::max());
  std::vector<uint32_t> prev_arrival(n, 0);
  bool have_required = false;
  uint32_t target_depth = 0;

  // Extracts the cover induced by the current best cuts.
  auto extract_cover = [&]() {
    MappingResult result;
    std::vector<bool> needed(n, false);
    std::vector<uint32_t> stack;
    for (const mig::Signal o : mig.outputs()) {
      if (mig.is_gate(o.index()) && !needed[o.index()]) {
        needed[o.index()] = true;
        stack.push_back(o.index());
      }
    }
    while (!stack.empty()) {
      const uint32_t v = stack.back();
      stack.pop_back();
      const auto& cut = data[v].cut_costs[data[v].best].cut;
      std::vector<uint32_t> leaves;
      for (uint8_t i = 0; i < cut.size; ++i) {
        const uint32_t leaf = cut.leaves[i];
        leaves.push_back(leaf);
        if (mig.is_gate(leaf) && !needed[leaf]) {
          needed[leaf] = true;
          stack.push_back(leaf);
        }
      }
      result.cover.emplace_back(v, std::move(leaves));
    }
    result.num_luts = static_cast<uint32_t>(result.cover.size());
    // Depth over the cover (ascending node order = topological).
    std::sort(result.cover.begin(), result.cover.end());
    std::vector<uint32_t> level(n, 0);
    for (const auto& [v, leaves] : result.cover) {
      uint32_t max_level = 0;
      for (const uint32_t leaf : leaves) {
        max_level = std::max(max_level, level[leaf]);
      }
      level[v] = max_level + 1;
    }
    for (const mig::Signal o : mig.outputs()) {
      result.depth = std::max(result.depth, level[o.index()]);
    }
    return result;
  };

  // The best cover seen across all passes is returned: the area-flow
  // heuristic usually improves the cover, but on some structures a recovery
  // pass is a net loss, and taking the per-pass optimum makes the rounds
  // monotone.
  MappingResult best;
  bool have_best = false;

  const uint32_t total_passes = 1 + params.area_rounds;
  for (uint32_t pass = 0; pass < total_passes; ++pass) {
    const bool area_mode = pass > 0;

    for (uint32_t v = 0; v < n; ++v) {
      if (!mig.is_gate(v)) {
        data[v].arrival = 0;
        data[v].area_flow = 0.0;
        continue;
      }
      auto& nd = data[v];
      nd.cut_costs.clear();

      // Merge fanin cut sets (each fanin contributes its kept cuts plus its
      // trivial cut).
      auto fanin_cuts = [&](mig::Signal s) {
        std::vector<Cut> list;
        const uint32_t f = s.index();
        if (mig.is_constant(f)) {
          list.push_back(Cut{});  // empty cut: constant inputs are free
          return list;
        }
        Cut trivial;
        trivial.size = 1;
        trivial.leaves[0] = f;
        trivial.signature = Cut::hash_leaf(f);
        list.push_back(trivial);
        for (const auto& cc : data[f].cut_costs) list.push_back(cc.cut);
        return list;
      };
      const auto& f = mig.fanins(v);
      const auto set0 = fanin_cuts(f[0]);
      const auto set1 = fanin_cuts(f[1]);
      const auto set2 = fanin_cuts(f[2]);

      auto evaluate = [&](const Cut& cut) {
        CutCost cc;
        cc.cut = cut;
        uint32_t arrival = 0;
        double flow = 1.0;
        for (uint8_t i = 0; i < cut.size; ++i) {
          const uint32_t leaf = cut.leaves[i];
          arrival = std::max(arrival, mig.is_gate(leaf) ? data[leaf].arrival + 1 : 1);
          if (mig.is_gate(leaf)) {
            flow += data[leaf].area_flow / refs(leaf);
          }
        }
        cc.arrival = arrival;
        cc.area_flow = flow;
        return cc;
      };

      Cut ab;
      Cut abc;
      for (const Cut& c0 : set0) {
        for (const Cut& c1 : set1) {
          if (!cuts::merge_cuts(c0, c1, params.lut_size, ab)) continue;
          for (const Cut& c2 : set2) {
            if (!cuts::merge_cuts(ab, c2, params.lut_size, abc)) continue;
            bool duplicate = false;
            for (const auto& existing : nd.cut_costs) {
              if (existing.cut == abc) {
                duplicate = true;
                break;
              }
            }
            if (!duplicate) nd.cut_costs.push_back(evaluate(abc));
          }
        }
      }

      // Rank cuts for this pass; in area mode, cuts violating the required
      // time are pushed to the back.  Nodes outside the previous cover have
      // no propagated requirement; they are capped at their previous arrival
      // so that a later pass can still choose them as leaves without
      // degrading the mapping depth.
      const uint32_t req =
          !have_required
              ? std::numeric_limits<uint32_t>::max()
              : (required[v] == std::numeric_limits<uint32_t>::max() ? prev_arrival[v]
                                                                     : required[v]);
      std::sort(nd.cut_costs.begin(), nd.cut_costs.end(),
                [&](const CutCost& a, const CutCost& b) {
                  if (area_mode) {
                    const bool a_ok = a.arrival <= req;
                    const bool b_ok = b.arrival <= req;
                    if (a_ok != b_ok) return a_ok;
                    if (a.area_flow != b.area_flow) return a.area_flow < b.area_flow;
                    return a.arrival < b.arrival;
                  }
                  if (a.arrival != b.arrival) return a.arrival < b.arrival;
                  return a.area_flow < b.area_flow;
                });
      if (nd.cut_costs.size() > params.cut_limit) {
        nd.cut_costs.resize(params.cut_limit);
      }
      nd.best = 0;
      nd.arrival = nd.cut_costs.front().arrival;
      nd.area_flow = nd.cut_costs.front().area_flow;
    }

    // Compute the mapping depth and required times for the next pass.
    for (uint32_t v = 0; v < n; ++v) {
      prev_arrival[v] = data[v].arrival;
    }
    target_depth = 0;
    for (const mig::Signal o : mig.outputs()) {
      if (mig.is_gate(o.index())) target_depth = std::max(target_depth, data[o.index()].arrival);
    }
    required.assign(n, std::numeric_limits<uint32_t>::max());
    for (const mig::Signal o : mig.outputs()) {
      if (mig.is_gate(o.index())) required[o.index()] = target_depth;
    }
    for (uint32_t v = n; v-- > 0;) {
      if (!mig.is_gate(v) || required[v] == std::numeric_limits<uint32_t>::max()) continue;
      const auto& cut = data[v].cut_costs[data[v].best].cut;
      for (uint8_t i = 0; i < cut.size; ++i) {
        const uint32_t leaf = cut.leaves[i];
        if (!mig.is_gate(leaf)) continue;
        required[leaf] = std::min(required[leaf], required[v] - 1);
      }
    }
    have_required = true;

    const MappingResult cover = extract_cover();
    if (!have_best || cover.depth < best.depth ||
        (cover.depth == best.depth && cover.num_luts < best.num_luts)) {
      best = cover;
      have_best = true;
    }
  }

  return best;
}

}  // namespace mighty::map
