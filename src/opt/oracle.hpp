#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exact/database.hpp"
#include "mig/mig.hpp"
#include "tt/truth_table.hpp"
#include "util/mutex.hpp"

/// \file oracle.hpp
/// \brief Uniform replacement oracle for the rewriting drivers.
///
/// Answers "what is the minimum MIG for this cut function, and how deep is
/// each input in it?" for functions of up to five variables:
///
///  * support <= 4: the precomputed NPN database (exact minima, instant);
///  * support == 5: on-demand bounded exact synthesis with a per-function
///    cache.  The paper notes that enumerating all NPN classes beyond four
///    variables is impractical and that 5-input rewriting works on a
///    dynamically discovered subset (Sec. IV, ref. [9]); this oracle is that
///    mechanism.  Synthesis is budgeted both in gate count (it only needs to
///    beat the cut's cone) and in SAT conflicts; failures are cached as
///    "no replacement" together with the budget that produced them, and are
///    re-attempted when queried under a strictly larger conflict budget.
///
/// The 5-input cache persists to disk (save_cache / load_cache): a versioned
/// text file alongside the NPN-4 database, one line per function — hex truth
/// table, chain-or-failure record, the synthesis budget in force, and the
/// conflicts spent.  Loading unions the file with the in-memory cache (a
/// cached success always beats a cached failure; among failures the larger
/// budget wins), so sessions warm-start across processes the same way a
/// batch run warm-starts across networks.  Dirty-entry tracking lets
/// save_cache skip the write when nothing changed since the last save/load.
///
/// The oracle is shared by every shard of a parallel pass, so query() and
/// instantiate() are safe to call concurrently: the 5-input cache is striped
/// (each stripe a mutex-guarded map, with synthesis performed under the
/// stripe lock so a function is synthesized exactly once no matter how many
/// shards race for it), and the accounting is atomic.  Because answers are a
/// pure function of the queried truth table, cache behavior and every counter
/// are identical whether one thread queries or eight do.

namespace mighty::opt {

/// Caller-owned oracle accounting: the same counters the oracle keeps for its
/// lifetime, recorded additionally into this tally by every query/instantiate
/// that is handed one.  A pass (or one network of a batch run) owns a tally
/// for exact attribution — global before/after snapshots would interleave
/// arbitrarily once several networks mutate the shared counters concurrently.
/// Atomic because a single pass already fans out over FFR shards.
struct OracleTally {
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> cache5_hits{0};
  std::atomic<uint64_t> synthesized{0};
  std::atomic<uint64_t> failures{0};
};

struct OracleParams {
  /// Allow on-demand 5-input synthesis (otherwise only the 4-input database).
  bool enable_five_input = false;
  /// Conflict budget per synthesis decision problem.
  int64_t synthesis_conflict_limit = 20000;
  /// Gate bound for on-demand synthesis ("only useful if smaller than the
  /// cone" is applied on top by the caller through max_gates).
  uint32_t max_gates = 9;
};

class ReplacementOracle {
public:
  ReplacementOracle(const exact::Database& db, const OracleParams& params = {});

  struct Info {
    uint32_t size = 0;   ///< gates of the minimum (or best-known) realization
    uint32_t depth = 0;  ///< its depth
    /// Longest path from cut-function variable v to the output; -1 if unused.
    std::vector<int> input_depths;
  };

  /// Returns the replacement structure for a cut function over at most five
  /// variables (in cut-leaf order), or std::nullopt if no structure is known
  /// within the budgets.  Thread-safe.  When `tally` is given, the call's
  /// counter increments are mirrored into it.
  std::optional<Info> query(const tt::TruthTable& f, OracleTally* tally = nullptr);

  /// Builds the replacement in `mig`; `leaves[v]` drives variable v of f.
  /// Must only be called after a successful query for the same function.
  /// Thread-safe as long as no other thread touches the same `mig`.
  mig::Signal instantiate(const tt::TruthTable& f, mig::Mig& mig,
                          const std::vector<mig::Signal>& leaves,
                          OracleTally* tally = nullptr);

  // --- persistence of the 5-input cache -------------------------------------

  /// Aggregate view of the 5-input cache for reporting.
  struct CacheStats {
    size_t entries = 0;    ///< cached functions (successes + failures)
    size_t successes = 0;  ///< functions with a known replacement chain
    size_t failures = 0;   ///< functions cached as "no replacement"
    size_t dirty = 0;      ///< entries not yet persisted by save_cache
  };
  CacheStats cache_stats() const;

  enum class CacheLoadStatus {
    loaded,    ///< file parsed and merged
    missing,   ///< no file at `path` (a fresh cache; not an error)
    malformed  ///< rejected: bad header/line/duplicate/inconsistent chain
  };
  struct CacheLoadResult {
    CacheLoadStatus status = CacheLoadStatus::missing;
    size_t entries = 0;  ///< entries parsed from the file
    size_t adopted = 0;  ///< entries that changed or extended the in-memory cache
  };

  /// Merges the cache file at `path` into the in-memory 5-input cache.  The
  /// file is validated wholesale before any merge (bad magic/version, a
  /// malformed or duplicate line, a count mismatch, or a chain that does not
  /// realize its function reject the file without touching the cache).
  /// Merge semantics: unknown functions are adopted; a success on disk
  /// replaces an in-memory failure (never the reverse); between two
  /// failures the larger budget wins; between two successes the in-memory
  /// chain is kept (both are proven minima, and replacing it would dangle
  /// outstanding pointers).  Adopted entries are clean; surviving
  /// in-memory entries keep their dirty bit.  Thread-safe.
  CacheLoadResult load_cache(const std::string& path);
  /// Same validation and merge over an already-open stream (in-memory
  /// buffers, fuzz harnesses); a stream is never "missing", only malformed.
  CacheLoadResult load_cache(std::istream& is);

  /// Persists the whole 5-input cache to `path` (crash-safe: temp file +
  /// atomic rename; entries sorted by truth table so the file is
  /// deterministic).  Skipped entirely — returning 0 — when no entry is
  /// dirty and `path` is known to hold exactly this cache already (the last
  /// successful save or whole-file load went there), so repeated autosaves
  /// of an unchanged cache never rewrite the file while saves to a new
  /// location always write.  Returns the number of entries written and
  /// marks them clean.  Thread-safe.
  size_t save_cache(const std::string& path);

  /// Number of on-demand syntheses performed / failed (for reporting).
  uint64_t synthesized_count() const {
    return synthesized_.load(std::memory_order_relaxed);
  }
  uint64_t synthesis_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

  /// Query accounting across the oracle's lifetime (flows share one oracle
  /// over many passes, so these measure cross-pass cache effectiveness).
  uint64_t queries() const { return queries_.load(std::memory_order_relaxed); }
  /// Queries answered with a replacement structure (4-input lookups always
  /// hit; 5-input queries hit when cached or synthesized within budget).
  uint64_t answered() const { return answered_.load(std::memory_order_relaxed); }
  /// 5-input queries resolved from the cache without touching the SAT solver.
  uint64_t cache5_hits() const { return cache5_hits_.load(std::memory_order_relaxed); }
  /// Fraction of queries answered; 1.0 when no query was made.
  double hit_rate() const {
    const uint64_t q = queries();
    return q == 0 ? 1.0 : static_cast<double>(answered()) / q;
  }

private:
  /// Shared core of both load_cache overloads; an empty `path` means the
  /// stream has no on-disk identity for the clean-skip bookkeeping.
  CacheLoadResult load_cache_stream(std::istream& is, const std::string& path);

  /// One cached 5-input synthesis outcome.  `budget` is the conflict limit
  /// in force when the entry was produced: -1 means unlimited — for a
  /// failure that encodes "proved absent within max_gates, never retry",
  /// while a finite budget on a failure marks a timeout that a later query
  /// under a larger budget re-attempts.  `conflicts` is the solver effort
  /// spent producing the entry (summed over decision problems, accumulated
  /// across retries).  `dirty` tracks divergence from the last save/load.
  struct CacheEntry {
    std::optional<exact::MigChain> chain;  ///< nullopt = no replacement
    int64_t budget = 0;
    uint64_t conflicts = 0;
    bool dirty = true;
  };

  /// One lock-striped slice of the 5-input cache.  16 stripes keep cross-
  /// shard contention negligible while a per-stripe lock makes "look up or
  /// synthesize" a single atomic step.
  struct CacheStripe {
    mutable util::Mutex mutex{util::LockRank::oracle_stripe};  ///< cache_stats() locks from const
    std::unordered_map<uint64_t, CacheEntry> map MIGHTY_GUARDED_BY(mutex);
  };
  static constexpr size_t kCacheStripes = 16;

  CacheStripe& stripe_for(uint64_t key) {
    return cache5_[(key * 0x9e3779b97f4a7c15ull) >> 60 & (kCacheStripes - 1)];
  }

  /// Chains are created once and only ever replaced by a success overwriting
  /// a failure (never erased), and unordered_map never moves its elements,
  /// so the returned pointer stays valid after the stripe lock is released.
  const exact::MigChain* five_input_chain(const tt::TruthTable& f5,
                                          OracleTally* tally);

  const exact::Database& db_;
  OracleParams params_;
  std::array<CacheStripe, kCacheStripes> cache5_;
  /// Path whose on-disk contents are known to equal the in-memory cache —
  /// set by a successful save, or by a load that filled an empty cache
  /// wholesale; cleared when a load changes memory without that guarantee.
  /// Together with the dirty bits this gates save_cache's clean-skip, so a
  /// save to a *different* path never silently keeps a stale file.
  std::string persisted_path_ MIGHTY_GUARDED_BY(persist_mutex_);
  util::Mutex persist_mutex_{util::LockRank::oracle_persist};
  std::atomic<uint64_t> synthesized_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> answered_{0};
  std::atomic<uint64_t> cache5_hits_{0};
};

}  // namespace mighty::opt
