#include <algorithm>
#include <unordered_map>

#include "mig/ffr.hpp"
#include "mig/shard.hpp"
#include "mig/simulation.hpp"
#include "opt/oracle.hpp"
#include "opt/rewrite.hpp"
#include "util/thread_pool.hpp"

/// Bottom-up functional hashing (paper Algorithm 2): dynamic programming in
/// topological order.  For every node a bounded list of candidate
/// implementations in the new network is maintained; cuts are replaced by
/// database minima over every (capped) combination of leaf candidates, and
/// each output finally picks its best candidate.
///
/// In FFR mode the DP decomposes by region: cuts are confined to fanout-free
/// regions, and at every region root the candidate list is committed to its
/// single best entry anyway (so downstream users share one implementation).
/// A region's DP therefore needs only the committed (size, depth) of the
/// regions feeding it — never their structure — which yields a wave schedule:
/// regions of equal dependency level run concurrently, each building its
/// candidates in a private network, and a deterministic sequential splice
/// replays every region's committed implementation into the result in fixed
/// topological order.  The outcome is bit-identical for every thread count.
/// Global mode (no region confinement) keeps the sequential DP.

namespace mighty::opt {

namespace {

struct Candidate {
  mig::Signal sig;
  uint32_t size = 0;   ///< accumulated-new-gates estimate (tree accounting)
  uint32_t depth = 0;  ///< estimated level in the new network
};

/// Keeps the candidate list sorted by (size, depth) and bounded.
void insert_candidate(std::vector<Candidate>& list, const Candidate& c,
                      uint32_t max_candidates) {
  for (auto& existing : list) {
    if (existing.sig == c.sig) {
      // Same implementation reached twice: keep the better accounting.
      if (c.size < existing.size || (c.size == existing.size && c.depth < existing.depth)) {
        existing.size = c.size;
        existing.depth = c.depth;
      }
      std::sort(list.begin(), list.end(), [](const Candidate& a, const Candidate& b) {
        return a.size != b.size ? a.size < b.size : a.depth < b.depth;
      });
      return;
    }
  }
  list.push_back(c);
  std::sort(list.begin(), list.end(), [](const Candidate& a, const Candidate& b) {
    return a.size != b.size ? a.size < b.size : a.depth < b.depth;
  });
  if (list.size() > max_candidates) list.resize(max_candidates);
}

struct RegionCounters {
  uint64_t cuts_evaluated = 0;
  uint64_t replacements = 0;
};

/// One region's DP result: the committed implementation of its root as a
/// private network over the region's inputs, ready to be spliced.
struct RegionOutcome {
  mig::Mig net;                  ///< private network; PI j realizes inputs[j]
  std::vector<uint32_t> inputs;  ///< original node ids feeding the region
  mig::Signal chosen;            ///< committed root implementation in `net`
  uint32_t size = 0;             ///< committed tree-size accounting
  uint32_t depth = 0;            ///< committed depth accounting
  RegionCounters counters;
};

/// Runs the candidate DP of one region.  Reads only the original network,
/// the shared cut sets and the committed (size, depth) of lower-wave
/// regions; builds into its own private network.
RegionOutcome process_region(const mig::Mig& mig, ReplacementOracle& oracle,
                             const RewriteParams& params,
                             const std::vector<std::vector<cuts::Cut>>& cut_sets,
                             const std::vector<uint32_t>& levels,
                             const std::vector<uint32_t>& committed_size,
                             const std::vector<uint32_t>& committed_depth,
                             const std::vector<uint32_t>& members) {
  RegionOutcome outcome;
  const uint32_t root = members.back();  // largest index = the region root

  outcome.inputs = shard::region_inputs(mig, members);
  std::unordered_map<uint32_t, std::vector<Candidate>> cand;
  for (const uint32_t f : outcome.inputs) {
    cand.emplace(f, std::vector<Candidate>{{outcome.net.create_pi(),
                                            committed_size[f], committed_depth[f]}});
  }
  cand.emplace(mig::Mig::constant_node,
               std::vector<Candidate>{{outcome.net.get_constant(false), 0, 0}});

  for (const uint32_t v : members) {
    auto& list = cand[v];

    // Baseline candidate: rebuild the node over its fanins' best candidates.
    {
      const auto& f = mig.fanins(v);
      const Candidate& c0 = cand.at(f[0].index()).front();
      const Candidate& c1 = cand.at(f[1].index()).front();
      const Candidate& c2 = cand.at(f[2].index()).front();
      Candidate base;
      base.sig = outcome.net.create_maj(c0.sig ^ f[0].is_complemented(),
                                        c1.sig ^ f[1].is_complemented(),
                                        c2.sig ^ f[2].is_complemented());
      base.size = 1 + c0.size + c1.size + c2.size;
      base.depth = 1 + std::max({c0.depth, c1.depth, c2.depth});
      insert_candidate(list, base, params.max_candidates);
    }

    for (const auto& cut : cut_sets[v]) {
      if (cut.size == 1 && cut.leaves[0] == v) continue;
      const auto leaves = cut.leaf_vector();
      ++outcome.counters.cuts_evaluated;
      const auto f = mig::simulate_cut(mig, v, leaves);
      const auto info = oracle.query(f, params.tally);
      if (!info) continue;

      // Iterate (capped) combinations of leaf candidates in mixed radix.
      std::vector<uint32_t> radix(leaves.size());
      uint64_t total = 1;
      for (size_t i = 0; i < leaves.size(); ++i) {
        radix[i] = static_cast<uint32_t>(cand.at(leaves[i]).size());
        total *= radix[i];
      }
      total = std::min<uint64_t>(total, params.max_combinations);
      for (uint64_t combo = 0; combo < total; ++combo) {
        uint64_t rem = combo;
        std::vector<const Candidate*> chosen(leaves.size());
        std::vector<mig::Signal> leaf_signals(leaves.size());
        uint32_t size = info->size;
        for (size_t i = 0; i < leaves.size(); ++i) {
          chosen[i] = &cand.at(leaves[i])[rem % radix[i]];
          rem /= radix[i];
          leaf_signals[i] = chosen[i]->sig;
          size += chosen[i]->size;
        }
        // Depth estimate through the replacement's input-to-output paths.
        uint32_t depth = 0;
        for (size_t lv = 0; lv < leaves.size(); ++lv) {
          if (info->input_depths[lv] < 0) continue;
          depth = std::max(depth, chosen[lv]->depth +
                                      static_cast<uint32_t>(info->input_depths[lv]));
        }
        if (params.depth_preserving && depth > levels[v] + params.depth_slack) {
          continue;
        }
        Candidate c;
        c.sig = oracle.instantiate(f, outcome.net, leaf_signals, params.tally);
        c.size = size;
        c.depth = depth;
        insert_candidate(list, c, params.max_candidates);
        ++outcome.counters.replacements;
      }
    }
  }

  // Commit the root to its single best implementation (what the sequential
  // DP's boundary resize did); the PO confines the splice to its cone.
  const Candidate& best = cand.at(root).front();
  outcome.chosen = best.sig;
  outcome.size = best.size;
  outcome.depth = best.depth;
  outcome.net.create_po(best.sig);
  return outcome;
}

/// FFR mode: wave-parallel region DP, then a deterministic splice.
mig::Mig rewrite_bottom_up_ffr(const mig::Mig& mig, ReplacementOracle& oracle,
                               const RewriteParams& params, RewriteStats& stats) {
  cuts::CutEnumerationParams cut_params;
  cut_params.cut_size =
      params.five_input_cuts ? std::max(params.cut_size, 5u) : params.cut_size;
  cut_params.max_cuts = params.max_cuts;
  const auto partition = ffr::compute_ffrs(mig);
  const auto boundary = ffr::ffr_boundary(partition);
  cut_params.boundary = &boundary;
  const auto levels = mig.compute_levels();

  const uint32_t parallelism = params.pool ? params.pool->parallelism() : 1;
  const auto plan =
      shard::plan_ffr_shards(mig, partition, parallelism > 1 ? parallelism * 4 : 1);

  // Cut sets for every live gate, enumerated shard-parallel (disjoint slots).
  std::vector<std::vector<cuts::Cut>> cut_sets(mig.num_nodes());
  auto enumerate_shard = [&](size_t s) {
    enumerate_cuts_scoped(mig, cut_params, plan.shards[s].nodes, cut_sets);
  };
  if (params.pool != nullptr) {
    params.pool->parallel_for(plan.shards.size(), enumerate_shard);
  } else {
    for (size_t s = 0; s < plan.shards.size(); ++s) enumerate_shard(s);
  }

  const auto regions = shard::collect_region_members(mig, partition);
  const auto& live_roots = regions.live_roots;
  const auto& region_index = regions.region_index;
  const auto& members = regions.members;

  // Wave schedule: regions grouped by dependency level.
  const auto region_level = shard::region_levels(mig, partition);
  uint32_t max_level = 0;
  for (const uint32_t root : live_roots) {
    max_level = std::max(max_level, region_level[root]);
  }
  std::vector<std::vector<uint32_t>> waves(max_level + 1);
  for (const uint32_t root : live_roots) {
    waves[region_level[root]].push_back(region_index[root]);
  }

  std::vector<RegionOutcome> outcomes(live_roots.size());
  std::vector<uint32_t> committed_size(mig.num_nodes(), 0);
  std::vector<uint32_t> committed_depth(mig.num_nodes(), 0);
  for (const auto& wave : waves) {
    auto run_region = [&](size_t i) {
      const uint32_t r = wave[i];
      outcomes[r] = process_region(mig, oracle, params, cut_sets, levels,
                                   committed_size, committed_depth, members[r]);
      const uint32_t root = live_roots[r];
      committed_size[root] = outcomes[r].size;
      committed_depth[root] = outcomes[r].depth;
    };
    if (params.pool != nullptr) {
      params.pool->parallel_for(wave.size(), run_region);
    } else {
      for (size_t i = 0; i < wave.size(); ++i) run_region(i);
    }
  }

  // Splice: replay every region's committed cone into the result in fixed
  // topological (= root) order, so structural hashing re-establishes
  // cross-region sharing exactly as the sequential DP's shared build did.
  mig::Mig result;
  std::vector<mig::Signal> committed_sig(mig.num_nodes(), result.get_constant(false));
  for (uint32_t i = 0; i < mig.num_pis(); ++i) {
    committed_sig[1 + i] = result.create_pi();
  }
  for (const uint32_t root : live_roots) {
    const RegionOutcome& outcome = outcomes[region_index[root]];
    committed_sig[root] = shard::splice_region(outcome.net, outcome.inputs,
                                               outcome.chosen, committed_sig, result);
    stats.cuts_evaluated += outcome.counters.cuts_evaluated;
    stats.replacements += outcome.counters.replacements;
  }
  for (const mig::Signal o : mig.outputs()) {
    result.create_po(committed_sig[o.index()] ^ o.is_complemented());
  }
  return result;
}

}  // namespace

mig::Mig rewrite_bottom_up(const mig::Mig& mig, ReplacementOracle& oracle,
                           const RewriteParams& params, RewriteStats& stats) {
  if (params.ffr_partition) {
    return rewrite_bottom_up_ffr(mig, oracle, params, stats);
  }

  cuts::CutEnumerationParams cut_params;
  cut_params.cut_size =
      params.five_input_cuts ? std::max(params.cut_size, 5u) : params.cut_size;
  cut_params.max_cuts = params.max_cuts;
  const auto cut_sets = cuts::enumerate_cuts(mig, cut_params);
  const auto levels = mig.compute_levels();

  mig::Mig result;
  std::vector<std::vector<Candidate>> cand(mig.num_nodes());
  cand[mig::Mig::constant_node] = {{result.get_constant(false), 0, 0}};
  for (uint32_t i = 0; i < mig.num_pis(); ++i) {
    cand[1 + i] = {{result.create_pi(), 0, 0}};
  }

  const auto live = mig.live_mask();
  for (uint32_t v = 0; v < mig.num_nodes(); ++v) {
    if (!mig.is_gate(v) || !live[v]) continue;
    auto& list = cand[v];

    // Baseline candidate: rebuild the node over its fanins' best candidates.
    {
      const auto& f = mig.fanins(v);
      const Candidate& c0 = cand[f[0].index()].front();
      const Candidate& c1 = cand[f[1].index()].front();
      const Candidate& c2 = cand[f[2].index()].front();
      Candidate base;
      base.sig = result.create_maj(c0.sig ^ f[0].is_complemented(),
                                   c1.sig ^ f[1].is_complemented(),
                                   c2.sig ^ f[2].is_complemented());
      base.size = 1 + c0.size + c1.size + c2.size;
      base.depth = 1 + std::max({c0.depth, c1.depth, c2.depth});
      insert_candidate(list, base, params.max_candidates);
    }

    for (const auto& cut : cut_sets[v]) {
      if (cut.size == 1 && cut.leaves[0] == v) continue;
      const auto leaves = cut.leaf_vector();
      ++stats.cuts_evaluated;
      const auto f = mig::simulate_cut(mig, v, leaves);
      const auto info = oracle.query(f, params.tally);
      if (!info) continue;

      // Iterate (capped) combinations of leaf candidates in mixed radix.
      std::vector<uint32_t> radix(leaves.size());
      uint64_t total = 1;
      for (size_t i = 0; i < leaves.size(); ++i) {
        radix[i] = static_cast<uint32_t>(cand[leaves[i]].size());
        total *= radix[i];
      }
      total = std::min<uint64_t>(total, params.max_combinations);
      for (uint64_t combo = 0; combo < total; ++combo) {
        uint64_t rem = combo;
        std::vector<const Candidate*> chosen(leaves.size());
        std::vector<mig::Signal> leaf_signals(leaves.size());
        uint32_t size = info->size;
        for (size_t i = 0; i < leaves.size(); ++i) {
          chosen[i] = &cand[leaves[i]][rem % radix[i]];
          rem /= radix[i];
          leaf_signals[i] = chosen[i]->sig;
          size += chosen[i]->size;
        }
        // Depth estimate through the replacement's input-to-output paths.
        uint32_t depth = 0;
        for (size_t lv = 0; lv < leaves.size(); ++lv) {
          if (info->input_depths[lv] < 0) continue;
          depth = std::max(depth, chosen[lv]->depth +
                                      static_cast<uint32_t>(info->input_depths[lv]));
        }
        if (params.depth_preserving && depth > levels[v] + params.depth_slack) {
          continue;
        }
        Candidate c;
        c.sig = oracle.instantiate(f, result, leaf_signals, params.tally);
        c.size = size;
        c.depth = depth;
        insert_candidate(list, c, params.max_candidates);
        ++stats.replacements;
      }
    }
  }

  for (const mig::Signal o : mig.outputs()) {
    const Candidate& best = cand[o.index()].front();
    result.create_po(best.sig ^ o.is_complemented());
  }
  return result;
}

}  // namespace mighty::opt
