#include <algorithm>

#include "mig/ffr.hpp"
#include "mig/simulation.hpp"
#include "opt/oracle.hpp"
#include "opt/rewrite.hpp"

/// Bottom-up functional hashing (paper Algorithm 2): dynamic programming in
/// topological order.  For every node a bounded list of candidate
/// implementations in the new network is maintained; cuts are replaced by
/// database minima over every (capped) combination of leaf candidates, and
/// each output finally picks its best candidate.

namespace mighty::opt {

namespace {

struct Candidate {
  mig::Signal sig;
  uint32_t size = 0;   ///< accumulated-new-gates estimate (tree accounting)
  uint32_t depth = 0;  ///< estimated level in the new network
};

/// Keeps the candidate list sorted by (size, depth) and bounded.
void insert_candidate(std::vector<Candidate>& list, const Candidate& c,
                      uint32_t max_candidates) {
  for (auto& existing : list) {
    if (existing.sig == c.sig) {
      // Same implementation reached twice: keep the better accounting.
      if (c.size < existing.size || (c.size == existing.size && c.depth < existing.depth)) {
        existing.size = c.size;
        existing.depth = c.depth;
      }
      std::sort(list.begin(), list.end(), [](const Candidate& a, const Candidate& b) {
        return a.size != b.size ? a.size < b.size : a.depth < b.depth;
      });
      return;
    }
  }
  list.push_back(c);
  std::sort(list.begin(), list.end(), [](const Candidate& a, const Candidate& b) {
    return a.size != b.size ? a.size < b.size : a.depth < b.depth;
  });
  if (list.size() > max_candidates) list.resize(max_candidates);
}

}  // namespace

mig::Mig rewrite_bottom_up(const mig::Mig& mig, ReplacementOracle& oracle,
                           const RewriteParams& params, RewriteStats& stats) {
  cuts::CutEnumerationParams cut_params;
  cut_params.cut_size =
      params.five_input_cuts ? std::max(params.cut_size, 5u) : params.cut_size;
  cut_params.max_cuts = params.max_cuts;
  std::vector<bool> boundary;
  ffr::FfrPartition partition;
  if (params.ffr_partition) {
    partition = ffr::compute_ffrs(mig);
    boundary = ffr::ffr_boundary(partition);
    cut_params.boundary = &boundary;
  }
  const auto cut_sets = cuts::enumerate_cuts(mig, cut_params);
  const auto levels = mig.compute_levels();

  mig::Mig result;
  std::vector<std::vector<Candidate>> cand(mig.num_nodes());
  cand[mig::Mig::constant_node] = {{result.get_constant(false), 0, 0}};
  for (uint32_t i = 0; i < mig.num_pis(); ++i) {
    cand[1 + i] = {{result.create_pi(), 0, 0}};
  }

  const auto live = mig.live_mask();
  for (uint32_t v = 0; v < mig.num_nodes(); ++v) {
    if (!mig.is_gate(v) || !live[v]) continue;
    auto& list = cand[v];

    // Baseline candidate: rebuild the node over its fanins' best candidates.
    {
      const auto& f = mig.fanins(v);
      const Candidate& c0 = cand[f[0].index()].front();
      const Candidate& c1 = cand[f[1].index()].front();
      const Candidate& c2 = cand[f[2].index()].front();
      Candidate base;
      base.sig = result.create_maj(c0.sig ^ f[0].is_complemented(),
                                   c1.sig ^ f[1].is_complemented(),
                                   c2.sig ^ f[2].is_complemented());
      base.size = 1 + c0.size + c1.size + c2.size;
      base.depth = 1 + std::max({c0.depth, c1.depth, c2.depth});
      insert_candidate(list, base, params.max_candidates);
    }

    for (const auto& cut : cut_sets[v]) {
      if (cut.size == 1 && cut.leaves[0] == v) continue;
      const auto leaves = cut.leaf_vector();
      ++stats.cuts_evaluated;
      const auto f = mig::simulate_cut(mig, v, leaves);
      const auto info = oracle.query(f);
      if (!info) continue;

      // Iterate (capped) combinations of leaf candidates in mixed radix.
      std::vector<uint32_t> radix(leaves.size());
      uint64_t total = 1;
      for (size_t i = 0; i < leaves.size(); ++i) {
        radix[i] = static_cast<uint32_t>(cand[leaves[i]].size());
        total *= radix[i];
      }
      total = std::min<uint64_t>(total, params.max_combinations);
      for (uint64_t combo = 0; combo < total; ++combo) {
        uint64_t rem = combo;
        std::vector<const Candidate*> chosen(leaves.size());
        std::vector<mig::Signal> leaf_signals(leaves.size());
        uint32_t size = info->size;
        for (size_t i = 0; i < leaves.size(); ++i) {
          chosen[i] = &cand[leaves[i]][rem % radix[i]];
          rem /= radix[i];
          leaf_signals[i] = chosen[i]->sig;
          size += chosen[i]->size;
        }
        // Depth estimate through the replacement's input-to-output paths.
        uint32_t depth = 0;
        for (size_t lv = 0; lv < leaves.size(); ++lv) {
          if (info->input_depths[lv] < 0) continue;
          depth = std::max(depth, chosen[lv]->depth +
                                      static_cast<uint32_t>(info->input_depths[lv]));
        }
        if (params.depth_preserving && depth > levels[v] + params.depth_slack) {
          continue;
        }
        Candidate c;
        c.sig = oracle.instantiate(f, result, leaf_signals);
        c.size = size;
        c.depth = depth;
        insert_candidate(list, c, params.max_candidates);
        ++stats.replacements;
      }
    }

    // At fanout-free-region roots (and multi-fanout nodes in general) commit
    // to the single best implementation so downstream users share it.
    if (params.ffr_partition && v < boundary.size() && boundary[v] && list.size() > 1) {
      list.resize(1);
    }
  }

  for (const mig::Signal o : mig.outputs()) {
    const Candidate& best = cand[o.index()].front();
    result.create_po(best.sig ^ o.is_complemented());
  }
  return result;
}

}  // namespace mighty::opt
