#include <optional>

#include "mig/ffr.hpp"
#include "mig/shard.hpp"
#include "mig/simulation.hpp"
#include "opt/oracle.hpp"
#include "opt/rewrite.hpp"
#include "util/thread_pool.hpp"

/// Top-down functional hashing (paper Algorithm 1): starting from the
/// outputs, greedily replace the cut with the best size reduction and recur
/// on its leaves; where no cut improves, copy the node and recur on the
/// fanins.  Implemented as an explicit two-phase pass (plan top-down, build
/// bottom-up) so deep networks cannot overflow the stack.
///
/// In FFR mode the plan phase decomposes perfectly: cuts are confined to
/// fanout-free regions, so the plan chosen for a node depends only on its own
/// region (plus the shared read-only oracle) — never on planning order.  The
/// driver therefore plans balanced shards of whole regions concurrently and
/// merges by a deterministic sequential rebuild, which makes the result
/// bit-identical for every thread count.  Global mode keeps the sequential
/// walk: its cuts cross region boundaries, so no disjoint decomposition
/// exists.

namespace mighty::opt {

namespace {

struct Plan {
  bool replace = false;
  bool visited = false;  ///< planning reached this node (FFR mode bookkeeping)
  std::vector<uint32_t> leaves;
  tt::TruthTable func;  ///< cut function over the leaves
};

struct PlanCounters {
  uint64_t cuts_evaluated = 0;
  uint64_t replacements = 0;
};

/// Chooses the best replacement cut for `v`, or nullopt to keep the node.
std::optional<Plan> choose_plan(const mig::Mig& mig, ReplacementOracle& oracle,
                                const RewriteParams& params,
                                const std::vector<cuts::Cut>& cut_set,
                                const std::vector<uint32_t>& fanout,
                                const std::vector<uint32_t>& levels, uint32_t v,
                                PlanCounters& counters) {
  int best_gain = 0;
  std::optional<Plan> best;
  for (const auto& cut : cut_set) {
    if (cut.size == 1 && cut.leaves[0] == v) continue;  // trivial cut
    const auto leaves = cut.leaf_vector();
    const auto cone = cut_cone(mig, v, leaves);
    // In global mode, discard cuts whose internal nodes have external
    // fanout (paper Sec. IV-C, first option); FFR cuts are confined by
    // construction.
    if (!params.ffr_partition && !cone_is_replaceable(mig, cone, v, fanout)) {
      continue;
    }
    ++counters.cuts_evaluated;
    const auto f = mig::simulate_cut(mig, v, leaves);
    const auto info = oracle.query(f, params.tally);
    if (!info) continue;
    const int gain = static_cast<int>(cone.size()) - static_cast<int>(info->size);
    if (gain <= best_gain) continue;
    if (params.depth_preserving) {
      // Estimated level of the replacement root (paper Sec. IV-A: discard
      // cuts whose minimum MIG locally increases the depth).
      uint32_t new_level = 0;
      for (uint32_t lv = 0; lv < leaves.size(); ++lv) {
        if (info->input_depths[lv] < 0) continue;
        new_level = std::max(new_level, levels[leaves[lv]] +
                                            static_cast<uint32_t>(info->input_depths[lv]));
      }
      if (new_level > levels[v] + params.depth_slack) continue;
    }
    best_gain = gain;
    best = Plan{true, true, leaves, f};
  }
  return best;
}

/// Plans one fanout-free region top-down from its root.  Writes only to the
/// region's own plan slots, so regions plan concurrently without contention.
void plan_region(const mig::Mig& mig, ReplacementOracle& oracle,
                 const RewriteParams& params,
                 const std::vector<std::vector<cuts::Cut>>& cut_sets,
                 const std::vector<uint32_t>& fanout,
                 const std::vector<uint32_t>& levels,
                 const ffr::FfrPartition& partition, uint32_t root,
                 std::vector<Plan>& plans, PlanCounters& counters) {
  const auto in_region = [&](uint32_t n) {
    return mig.is_gate(n) && partition.region_root[n] == root;
  };
  std::vector<uint32_t> stack{root};
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    if (plans[v].visited) continue;
    plans[v].visited = true;

    auto best = choose_plan(mig, oracle, params, cut_sets[v], fanout, levels, v,
                            counters);
    if (best) {
      plans[v] = std::move(*best);
      ++counters.replacements;
      for (const uint32_t l : plans[v].leaves) {
        if (in_region(l)) stack.push_back(l);
      }
    } else {
      for (const mig::Signal s : mig.fanins(v)) {
        if (in_region(s.index())) stack.push_back(s.index());
      }
    }
  }
}

/// Phase 2 shared by both modes: walk the plans from the outputs to find the
/// needed nodes, then rebuild in ascending (= topological) node order.
mig::Mig rebuild_from_plans(const mig::Mig& mig, ReplacementOracle& oracle,
                            const std::vector<Plan>& plans,
                            OracleTally* tally) {
  std::vector<int8_t> needed(mig.num_nodes(), 0);
  std::vector<uint32_t> stack;
  for (const mig::Signal o : mig.outputs()) stack.push_back(o.index());
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    if (needed[v]) continue;
    needed[v] = 1;
    if (!mig.is_gate(v)) continue;
    if (plans[v].replace) {
      for (const uint32_t l : plans[v].leaves) stack.push_back(l);
    } else {
      for (const mig::Signal s : mig.fanins(v)) stack.push_back(s.index());
    }
  }

  mig::Mig result;
  std::vector<mig::Signal> map(mig.num_nodes(), result.get_constant(false));
  for (uint32_t i = 0; i < mig.num_pis(); ++i) {
    map[1 + i] = result.create_pi();
  }
  for (uint32_t v = 0; v < mig.num_nodes(); ++v) {
    if (!needed[v] || !mig.is_gate(v)) continue;
    if (plans[v].replace) {
      std::vector<mig::Signal> leaf_signals;
      leaf_signals.reserve(plans[v].leaves.size());
      for (const uint32_t l : plans[v].leaves) leaf_signals.push_back(map[l]);
      map[v] = oracle.instantiate(plans[v].func, result, leaf_signals, tally);
    } else {
      const auto& f = mig.fanins(v);
      map[v] = result.create_maj(map[f[0].index()] ^ f[0].is_complemented(),
                                 map[f[1].index()] ^ f[1].is_complemented(),
                                 map[f[2].index()] ^ f[2].is_complemented());
    }
  }
  for (const mig::Signal o : mig.outputs()) {
    result.create_po(map[o.index()] ^ o.is_complemented());
  }
  return result;
}

/// FFR mode: plan shards of whole regions concurrently, then rebuild.
///
/// Every live region is planned, including the rare region that ends up
/// unreachable because every replacement referencing its root bypassed it.
/// That is deliberate: reachability-under-plans is only known after planning,
/// so skipping such regions would reintroduce a sequential dependency (and
/// thread-count-dependent stats).  The cost is bounded by the region's cut
/// work and shows up identically at every thread count.
mig::Mig rewrite_top_down_ffr(const mig::Mig& mig, ReplacementOracle& oracle,
                              const RewriteParams& params, RewriteStats& stats) {
  cuts::CutEnumerationParams cut_params;
  cut_params.cut_size =
      params.five_input_cuts ? std::max(params.cut_size, 5u) : params.cut_size;
  cut_params.max_cuts = params.max_cuts;
  const auto partition = ffr::compute_ffrs(mig);
  const auto boundary = ffr::ffr_boundary(partition);
  cut_params.boundary = &boundary;
  const auto fanout = mig.compute_fanout_counts();
  const auto levels = mig.compute_levels();

  const uint32_t parallelism = params.pool ? params.pool->parallelism() : 1;
  // A few shards per thread lets the dynamic scheduler even out skewed
  // region sizes; the plan itself never affects the result.
  const auto plan =
      shard::plan_ffr_shards(mig, partition, parallelism > 1 ? parallelism * 4 : 1);

  std::vector<std::vector<cuts::Cut>> cut_sets(mig.num_nodes());
  std::vector<Plan> plans(mig.num_nodes());
  std::vector<PlanCounters> counters(plan.shards.size());
  auto run_shard = [&](size_t s) {
    const auto& shard = plan.shards[s];
    enumerate_cuts_scoped(mig, cut_params, shard.nodes, cut_sets);
    for (const uint32_t root : shard.roots) {
      plan_region(mig, oracle, params, cut_sets, fanout, levels, partition, root,
                  plans, counters[s]);
    }
  };
  if (params.pool != nullptr) {
    params.pool->parallel_for(plan.shards.size(), run_shard);
  } else {
    for (size_t s = 0; s < plan.shards.size(); ++s) run_shard(s);
  }
  for (const auto& c : counters) {
    stats.cuts_evaluated += c.cuts_evaluated;
    stats.replacements += c.replacements;
  }
  return rebuild_from_plans(mig, oracle, plans, params.tally);
}

}  // namespace

mig::Mig rewrite_top_down(const mig::Mig& mig, ReplacementOracle& oracle,
                          const RewriteParams& params, RewriteStats& stats) {
  if (params.ffr_partition) {
    return rewrite_top_down_ffr(mig, oracle, params, stats);
  }

  cuts::CutEnumerationParams cut_params;
  cut_params.cut_size =
      params.five_input_cuts ? std::max(params.cut_size, 5u) : params.cut_size;
  cut_params.max_cuts = params.max_cuts;
  const auto cut_sets = cuts::enumerate_cuts(mig, cut_params);
  const auto fanout = mig.compute_fanout_counts();
  const auto levels = mig.compute_levels();

  // Phase 1: choose, per needed node, the best replacement cut.  The choice
  // for a node never depends on other nodes' choices, only on which nodes
  // the walk reaches.
  std::vector<Plan> plans(mig.num_nodes());
  PlanCounters counters;
  std::vector<uint32_t> stack;
  for (const mig::Signal o : mig.outputs()) stack.push_back(o.index());
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    if (plans[v].visited) continue;
    plans[v].visited = true;
    if (!mig.is_gate(v)) continue;

    auto best =
        choose_plan(mig, oracle, params, cut_sets[v], fanout, levels, v, counters);
    if (best) {
      plans[v] = std::move(*best);
      ++counters.replacements;
      for (const uint32_t l : plans[v].leaves) stack.push_back(l);
    } else {
      for (const mig::Signal s : mig.fanins(v)) stack.push_back(s.index());
    }
  }
  stats.cuts_evaluated += counters.cuts_evaluated;
  stats.replacements += counters.replacements;
  return rebuild_from_plans(mig, oracle, plans, params.tally);
}

}  // namespace mighty::opt
