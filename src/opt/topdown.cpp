#include <optional>

#include "mig/ffr.hpp"
#include "mig/simulation.hpp"
#include "opt/oracle.hpp"
#include "opt/rewrite.hpp"

/// Top-down functional hashing (paper Algorithm 1): starting from the
/// outputs, greedily replace the cut with the best size reduction and recur
/// on its leaves; where no cut improves, copy the node and recur on the
/// fanins.  Implemented as an explicit two-phase pass (plan top-down, build
/// bottom-up) so deep networks cannot overflow the stack.

namespace mighty::opt {

namespace {

struct Plan {
  bool replace = false;
  std::vector<uint32_t> leaves;
  tt::TruthTable func;  ///< cut function over the leaves
};

}  // namespace

mig::Mig rewrite_top_down(const mig::Mig& mig, ReplacementOracle& oracle,
                          const RewriteParams& params, RewriteStats& stats) {
  cuts::CutEnumerationParams cut_params;
  cut_params.cut_size =
      params.five_input_cuts ? std::max(params.cut_size, 5u) : params.cut_size;
  cut_params.max_cuts = params.max_cuts;
  std::vector<bool> boundary;
  if (params.ffr_partition) {
    const auto partition = ffr::compute_ffrs(mig);
    boundary = ffr::ffr_boundary(partition);
    cut_params.boundary = &boundary;
  }
  const auto cut_sets = cuts::enumerate_cuts(mig, cut_params);
  const auto fanout = mig.compute_fanout_counts();
  const auto levels = mig.compute_levels();

  // --- phase 1: choose, per needed node, the best replacement cut ------------
  std::vector<int8_t> needed(mig.num_nodes(), 0);
  std::vector<Plan> plans(mig.num_nodes());
  std::vector<uint32_t> stack;
  for (const mig::Signal o : mig.outputs()) stack.push_back(o.index());

  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    if (needed[v]) continue;
    needed[v] = 1;
    if (!mig.is_gate(v)) continue;

    int best_gain = 0;
    std::optional<Plan> best;
    for (const auto& cut : cut_sets[v]) {
      if (cut.size == 1 && cut.leaves[0] == v) continue;  // trivial cut
      const auto leaves = cut.leaf_vector();
      const auto cone = cut_cone(mig, v, leaves);
      // In global mode, discard cuts whose internal nodes have external
      // fanout (paper Sec. IV-C, first option); FFR cuts are confined by
      // construction.
      if (!params.ffr_partition && !cone_is_replaceable(mig, cone, v, fanout)) {
        continue;
      }
      ++stats.cuts_evaluated;
      const auto f = mig::simulate_cut(mig, v, leaves);
      const auto info = oracle.query(f);
      if (!info) continue;
      const int gain = static_cast<int>(cone.size()) - static_cast<int>(info->size);
      if (gain <= best_gain) continue;
      if (params.depth_preserving) {
        // Estimated level of the replacement root (paper Sec. IV-A: discard
        // cuts whose minimum MIG locally increases the depth).
        uint32_t new_level = 0;
        for (uint32_t lv = 0; lv < leaves.size(); ++lv) {
          if (info->input_depths[lv] < 0) continue;
          new_level = std::max(new_level, levels[leaves[lv]] +
                                              static_cast<uint32_t>(info->input_depths[lv]));
        }
        if (new_level > levels[v] + params.depth_slack) continue;
      }
      best_gain = gain;
      best = Plan{true, leaves, f};
    }

    if (best) {
      plans[v] = std::move(*best);
      for (const uint32_t l : plans[v].leaves) stack.push_back(l);
      ++stats.replacements;
    } else {
      for (const mig::Signal s : mig.fanins(v)) stack.push_back(s.index());
    }
  }

  // --- phase 2: rebuild in ascending (= topological) node order --------------
  mig::Mig result;
  std::vector<mig::Signal> map(mig.num_nodes(), result.get_constant(false));
  for (uint32_t i = 0; i < mig.num_pis(); ++i) {
    map[1 + i] = result.create_pi();
  }
  for (uint32_t v = 0; v < mig.num_nodes(); ++v) {
    if (!needed[v] || !mig.is_gate(v)) continue;
    if (plans[v].replace) {
      std::vector<mig::Signal> leaf_signals;
      leaf_signals.reserve(plans[v].leaves.size());
      for (const uint32_t l : plans[v].leaves) leaf_signals.push_back(map[l]);
      map[v] = oracle.instantiate(plans[v].func, result, leaf_signals);
    } else {
      const auto& f = mig.fanins(v);
      map[v] = result.create_maj(map[f[0].index()] ^ f[0].is_complemented(),
                                 map[f[1].index()] ^ f[1].is_complemented(),
                                 map[f[2].index()] ^ f[2].is_complemented());
    }
  }
  for (const mig::Signal o : mig.outputs()) {
    result.create_po(map[o.index()] ^ o.is_complemented());
  }
  return result;
}

}  // namespace mighty::opt
