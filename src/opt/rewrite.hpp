#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exact/database.hpp"
#include "mig/cuts.hpp"
#include "mig/mig.hpp"

namespace mighty::util {
class ThreadPool;
}

/// \file rewrite.hpp
/// \brief MIG size optimization by functional hashing (paper Sec. IV).
///
/// Enumerates 4-feasible cuts and replaces them with precomputed minimum MIGs
/// from the NPN database.  Variants (paper Sec. V-C naming):
///   T   top-down                       B   bottom-up
///   TD  top-down, depth-preserving     BD  bottom-up, depth-preserving
///   TF  top-down over fanout-free regions, etc.
/// The letter F selects fanout-free-region partitioning, D the
/// depth-preserving heuristic.

namespace mighty::opt {

class ReplacementOracle;
struct OracleTally;

enum class Direction { top_down, bottom_up };

struct RewriteParams {
  Direction direction = Direction::top_down;
  /// Partition into fanout-free regions first (paper Sec. IV-C).
  bool ffr_partition = false;
  /// Depth-preserving heuristic: discard replacements that locally increase
  /// the node's level (paper Sec. IV-A) by more than `depth_slack`.
  bool depth_preserving = false;
  uint32_t depth_slack = 0;
  uint32_t cut_size = 4;
  /// Cap on stored cuts per node (0 = exhaustive).
  uint32_t max_cuts = 0;
  /// Bottom-up: number of candidates kept per node (paper: "a predetermined
  /// number of best candidates, similar to priority cuts").
  uint32_t max_candidates = 2;
  /// Bottom-up: cap on leaf-candidate combinations explored per cut.
  uint32_t max_combinations = 16;
  /// Extension discussed in the paper (Sec. IV, ref. [9]): also rewrite
  /// 5-input cuts, with minimum structures synthesized on demand and cached
  /// (the full 5-variable NPN enumeration being impractical).
  bool five_input_cuts = false;
  /// Conflict budget per on-demand synthesis decision problem.
  int64_t synthesis_conflict_limit = 20000;
  /// Worker pool for the fanout-free-region variants: their per-region
  /// analysis (cut enumeration, simulation, oracle queries, candidate
  /// search) runs on balanced FFR shards concurrently, followed by a
  /// deterministic sequential merge — so the result is bit-identical for
  /// any pool size, including none.  Global variants ignore the pool (their
  /// cuts cross region boundaries and serialize).  Not owned.
  util::ThreadPool* pool = nullptr;
  /// Per-call oracle accounting sink.  functional_hashing() installs its own
  /// when none is given, and reports the result through RewriteStats; set it
  /// only to aggregate several calls into one tally.  Not owned.
  OracleTally* tally = nullptr;
};

struct RewriteStats {
  uint32_t size_before = 0;
  uint32_t size_after = 0;
  uint32_t depth_before = 0;
  uint32_t depth_after = 0;
  uint64_t cuts_evaluated = 0;
  uint64_t replacements = 0;
  /// Oracle activity of exactly this call, tallied per query rather than
  /// snapshotted from the shared oracle's lifetime counters — so attribution
  /// stays exact when concurrent passes (batch runs) share one oracle.
  uint64_t oracle_queries = 0;
  uint64_t oracle_answered = 0;
  uint64_t oracle_cache5_hits = 0;
  uint64_t oracle_synthesized = 0;
  uint64_t oracle_failures = 0;
  double seconds = 0.0;
};

/// Applies one pass of functional hashing over a caller-owned replacement
/// oracle, so its caches (5-input synthesis results, hit statistics) persist
/// across passes.  This is the primary entry point; multi-pass scripts should
/// prefer the `flow::Session` / `flow::Pipeline` API, which owns the oracle.
mig::Mig functional_hashing(const mig::Mig& mig, ReplacementOracle& oracle,
                            const RewriteParams& params = {},
                            RewriteStats* stats = nullptr);

/// Single-shot convenience overload: builds a private oracle per call.
/// Deprecated shim for pre-`flow` callers — nothing is shared between calls,
/// so iterated flows pay the oracle warm-up every pass.
mig::Mig functional_hashing(const mig::Mig& mig, const exact::Database& db,
                            const RewriteParams& params = {},
                            RewriteStats* stats = nullptr);

/// Translates a paper acronym ("T", "TD", "TF", "TFD", "B", "BD", "BF",
/// "BFD", case-insensitive) into parameters.  Throws std::invalid_argument
/// (naming the offending string) on unknown names.
RewriteParams variant_params(const std::string& acronym);

/// All acronyms accepted by variant_params, in the paper's table order.
std::vector<std::string> all_variants();

// --- shared internals (exposed for the two drivers and for tests) -----------

/// Gates in the cone of (root, leaves), root included, leaves excluded.
/// Returns an empty vector if the cone would cross a terminal not listed as
/// leaf (which cannot happen for well-formed cuts).
std::vector<uint32_t> cut_cone(const mig::Mig& mig, uint32_t root,
                               const std::vector<uint32_t>& leaves);

/// True iff no internal cone node other than the root has fanout outside the
/// cone (the paper's condition for a replaceable cut in global mode).
bool cone_is_replaceable(const mig::Mig& mig, const std::vector<uint32_t>& cone,
                         uint32_t root, const std::vector<uint32_t>& fanout_counts);

/// For each chain input, the longest path (in gates) from that input to the
/// chain output; -1 when the input is unused.
std::vector<int> chain_input_depths(const exact::MigChain& chain);

/// Top-down driver (Algorithm 1).
mig::Mig rewrite_top_down(const mig::Mig& mig, ReplacementOracle& oracle,
                          const RewriteParams& params, RewriteStats& stats);

/// Bottom-up driver (Algorithm 2).
mig::Mig rewrite_bottom_up(const mig::Mig& mig, ReplacementOracle& oracle,
                           const RewriteParams& params, RewriteStats& stats);

}  // namespace mighty::opt
