#include "opt/oracle.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "exact/exact_synthesis.hpp"
#include "opt/rewrite.hpp"
#include "util/atomic_file.hpp"

namespace mighty::opt {

namespace {

constexpr const char* kCacheMagic = "mighty-mig-5cut-cache";
constexpr const char* kCacheVersion = "v1";

/// Bumps a lifetime counter and its optional per-scope mirror.
void bump(std::atomic<uint64_t>& global, OracleTally* tally,
          std::atomic<uint64_t> OracleTally::* member) {
  global.fetch_add(1, std::memory_order_relaxed);
  if (tally != nullptr) (tally->*member).fetch_add(1, std::memory_order_relaxed);
}

/// Orders conflict budgets with -1 (unlimited) on top, so "retry when
/// queried under a strictly larger budget" and "the larger failure budget
/// wins a merge" share one comparison.
int64_t budget_rank(int64_t budget) {
  return budget < 0 ? std::numeric_limits<int64_t>::max() : budget;
}

uint64_t total_conflicts(const exact::SynthesisResult& result) {
  uint64_t total = 0;
  for (const uint64_t c : result.conflicts_per_step) total += c;
  return total;
}

}  // namespace

ReplacementOracle::ReplacementOracle(const exact::Database& db,
                                     const OracleParams& params)
    : db_(db), params_(params) {}

const exact::MigChain* ReplacementOracle::five_input_chain(const tt::TruthTable& f5,
                                                           OracleTally* tally) {
  const uint64_t key = f5.bits();
  CacheStripe& stripe = stripe_for(key);
  // Synthesis runs under the stripe lock: concurrent queries for the same
  // function would otherwise both pay the SAT solver, and the hit/synthesis
  // counters would depend on thread interleaving.  Functions in other
  // stripes proceed unhindered.
  util::MutexLock lock(stripe.mutex);
  const auto it = stripe.map.find(key);
  bool retry = false;
  if (it != stripe.map.end()) {
    // A failure recorded under a smaller conflict budget is not an answer
    // for a query with a larger one — persisted caches would otherwise
    // freeze the failures of low-budget sessions forever.  Successes and
    // same-or-larger-budget failures are plain hits.
    retry = !it->second.chain &&
            budget_rank(params_.synthesis_conflict_limit) > budget_rank(it->second.budget);
    if (!retry) {
      bump(cache5_hits_, tally, &OracleTally::cache5_hits);
      return it->second.chain ? &*it->second.chain : nullptr;
    }
  }
  exact::SynthesisOptions options;
  options.max_gates = params_.max_gates;
  options.conflict_limit = params_.synthesis_conflict_limit;
  const auto result = exact::synthesize_minimum_mig(f5, options);
  bump(synthesized_, tally, &OracleTally::synthesized);

  CacheEntry& entry = retry ? it->second : stripe.map[key];
  if (retry) {
    entry.conflicts += total_conflicts(result);  // retries accumulate effort
  } else {
    entry.conflicts = total_conflicts(result);
  }
  entry.dirty = true;
  if (result.status == exact::SynthesisStatus::success) {
    entry.chain = result.chain;
    entry.budget = params_.synthesis_conflict_limit;
    return &*entry.chain;
  }
  bump(failures_, tally, &OracleTally::failures);
  // "exhausted" means every decision problem up to max_gates came back UNSAT
  // — a definitive no that no conflict budget overturns; record it as an
  // unlimited-budget failure so it is never retried.  A timeout keeps the
  // finite budget so a richer session can try again.
  entry.budget = result.status == exact::SynthesisStatus::exhausted
                     ? -1
                     : params_.synthesis_conflict_limit;
  entry.chain.reset();
  return nullptr;
}

std::optional<ReplacementOracle::Info> ReplacementOracle::query(const tt::TruthTable& f,
                                                                OracleTally* tally) {
  bump(queries_, tally, &OracleTally::queries);
  Info info;
  info.input_depths.assign(f.num_vars(), -1);

  if (f.support_size() <= 4) {
    std::vector<uint32_t> old_vars;
    const auto g = f.shrink_to_support(old_vars).extend(4);
    const auto lookup = db_.lookup(g);
    const auto inv = npn::inverse(lookup.transform);
    const auto depths = chain_input_depths(lookup.entry->chain);
    info.size = lookup.entry->chain.size();
    info.depth = lookup.entry->chain.depth();
    for (uint32_t i = 0; i < 4; ++i) {
      if (depths[i] < 0) continue;
      const uint32_t g_var = inv.perm[i];
      if (g_var < old_vars.size()) {
        info.input_depths[old_vars[g_var]] = depths[i];
      }
    }
    bump(answered_, tally, &OracleTally::answered);
    return info;
  }

  if (!params_.enable_five_input || f.num_vars() > 5) return std::nullopt;
  const auto* chain = five_input_chain(f.extend(5), tally);
  if (chain == nullptr) return std::nullopt;
  info.size = chain->size();
  info.depth = chain->depth();
  const auto depths = chain_input_depths(*chain);
  for (uint32_t v = 0; v < f.num_vars(); ++v) info.input_depths[v] = depths[v];
  bump(answered_, tally, &OracleTally::answered);
  return info;
}

ReplacementOracle::CacheStats ReplacementOracle::cache_stats() const {
  CacheStats stats;
  for (const auto& stripe : cache5_) {
    util::MutexLock lock(stripe.mutex);
    stats.entries += stripe.map.size();
    // mighty-lint: allow(nondeterministic-iteration): pure counting — every entry contributes commutatively to the tallies, so visit order cannot reach the result
    for (const auto& [key, entry] : stripe.map) {
      (void)key;
      if (entry.chain) {
        ++stats.successes;
      } else {
        ++stats.failures;
      }
      if (entry.dirty) ++stats.dirty;
    }
  }
  return stats;
}

ReplacementOracle::CacheLoadResult ReplacementOracle::load_cache(const std::string& path) {
  std::ifstream is(path);
  if (!is) return {CacheLoadStatus::missing, 0, 0};
  return load_cache_stream(is, path);
}

ReplacementOracle::CacheLoadResult ReplacementOracle::load_cache(std::istream& is) {
  // A stream has no on-disk identity, so the clean-skip bookkeeping below
  // can never claim "persisted at path X" for it.
  return load_cache_stream(is, std::string());
}

ReplacementOracle::CacheLoadResult ReplacementOracle::load_cache_stream(
    std::istream& is, const std::string& path) {
  const CacheLoadResult malformed{CacheLoadStatus::malformed, 0, 0};

  std::string header;
  std::getline(is, header);
  std::istringstream hs(header);
  std::string magic, version;
  size_t count = 0;
  if (!(hs >> magic >> version >> count) || magic != kCacheMagic ||
      version != kCacheVersion) {
    return malformed;
  }

  // Parse and validate the whole file before merging anything: a corrupted,
  // truncated or duplicate-carrying cache must be rejected without leaving a
  // partially merged in-memory state behind.  The header count is itself
  // unvalidated input, so the reserve is clamped — a garbage count must
  // produce `malformed`, not a length_error from a petabyte reserve.
  std::vector<std::pair<uint64_t, CacheEntry>> parsed;
  parsed.reserve(std::min<size_t>(count, 1u << 16));
  std::unordered_map<uint64_t, bool> seen;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string hex, status;
    CacheEntry entry;
    if (!(ls >> hex >> status >> entry.budget >> entry.conflicts)) return malformed;
    // 5-variable truth tables are exactly 8 hex digits; from_hex would
    // silently mask a longer string onto the wrong function.
    if (hex.size() != 8) return malformed;
    tt::TruthTable f(5);
    try {
      f = tt::TruthTable::from_hex(5, hex);
    } catch (const std::exception&) {
      return malformed;
    }
    if (status == "ok") {
      std::string rest;
      std::getline(ls, rest);
      try {
        entry.chain = exact::MigChain::from_string(rest);
      } catch (const std::exception&) {
        return malformed;
      }
      // The stored chain must realize the function it is filed under, and
      // the line must be exactly its canonical serialization — trailing
      // garbage would round-trip differently than it parsed.
      if (entry.chain->num_vars != 5 || entry.chain->simulate() != f) return malformed;
      const auto canonical = entry.chain->to_string();
      const auto start = rest.find_first_not_of(' ');
      if (start == std::string::npos || rest.substr(start) != canonical) {
        return malformed;
      }
    } else if (status == "fail") {
      std::string extra;
      if (ls >> extra) return malformed;  // trailing garbage
    } else {
      return malformed;
    }
    if (!seen.emplace(f.bits(), true).second) return malformed;  // duplicate line
    entry.dirty = false;  // disk content is by definition persisted
    parsed.emplace_back(f.bits(), std::move(entry));
  }
  if (parsed.size() != count) return malformed;

  CacheLoadResult result{CacheLoadStatus::loaded, parsed.size(), 0};
  for (auto& [key, disk] : parsed) {
    CacheStripe& stripe = stripe_for(key);
    util::MutexLock lock(stripe.mutex);
    const auto it = stripe.map.find(key);
    if (it == stripe.map.end()) {
      stripe.map.emplace(key, std::move(disk));
      ++result.adopted;
      continue;
    }
    CacheEntry& mem = it->second;
    // Union semantics: a success always beats a failure; between two
    // successes the in-memory one is kept — both are proven minima of the
    // same function, and replacing the chain would dangle the stable
    // pointers five_input_chain hands out; between failures the one
    // produced under the larger budget wins.
    const bool adopt =
        disk.chain ? !mem.chain
                   : (!mem.chain && budget_rank(disk.budget) > budget_rank(mem.budget));
    if (adopt) {
      mem = std::move(disk);
      ++result.adopted;
    }
  }

  // Update what the clean-skip in save_cache may rely on.  Memory equals
  // the file exactly when every file entry was adopted and nothing else was
  // cached; a load that merely changed memory invalidates any previous
  // "path X holds this cache" claim, and a no-op load leaves it intact.
  size_t total = 0;
  for (auto& stripe : cache5_) {
    util::MutexLock lock(stripe.mutex);
    total += stripe.map.size();
  }
  {
    util::MutexLock lock(persist_mutex_);
    if (!path.empty() && result.adopted == result.entries && total == result.entries) {
      persisted_path_ = path;
    } else if (result.adopted > 0) {
      persisted_path_.clear();
    }
  }
  return result;
}

size_t ReplacementOracle::save_cache(const std::string& path) {
  // Snapshot under the stripe locks; entries sorted by truth table so the
  // file contents are deterministic regardless of hashing or thread
  // interleaving.  The write itself is crash-safe (temp file + rename), so
  // a reader — or a crash — never sees a truncated cache.
  std::vector<std::pair<uint64_t, CacheEntry>> snapshot;
  size_t dirty = 0;
  for (auto& stripe : cache5_) {
    util::MutexLock lock(stripe.mutex);
    // mighty-lint: allow(nondeterministic-iteration): snapshot collection — the vector is sorted by key below, before anything order-sensitive reads it
    for (const auto& [key, entry] : stripe.map) {
      if (entry.dirty) ++dirty;
      snapshot.emplace_back(key, entry);
    }
  }
  // Dirty tracking: an autosave of a cache whose every entry already came
  // from (or went to) exactly this file must not rewrite it.  A different
  // target path always gets a write — its current contents are unknown and
  // skipping would silently keep a stale file there.
  {
    util::MutexLock lock(persist_mutex_);
    if (dirty == 0 && path == persisted_path_ && std::ifstream(path).good()) return 0;
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  util::write_file_atomically(path, [&snapshot](std::ostream& os) {
    os << kCacheMagic << ' ' << kCacheVersion << ' ' << snapshot.size() << '\n';
    for (const auto& [key, entry] : snapshot) {
      const auto f = tt::TruthTable(5, key);
      os << f.to_hex() << ' ' << (entry.chain ? "ok" : "fail") << ' '
         << entry.budget << ' ' << entry.conflicts;
      if (entry.chain) os << ' ' << entry.chain->to_string();
      os << '\n';
    }
  });

  // Only now — after the rename succeeded — mark what was written as clean.
  // Entries mutated since the snapshot keep their dirty bit because their
  // content no longer matches the snapshot's.
  for (auto& stripe : cache5_) {
    util::MutexLock lock(stripe.mutex);
    // mighty-lint: allow(nondeterministic-iteration): per-entry dirty-bit clear — each entry is judged against the sorted snapshot independently of every other
    for (auto& [key, entry] : stripe.map) {
      const auto it = std::lower_bound(
          snapshot.begin(), snapshot.end(), key,
          [](const auto& a, uint64_t k) { return a.first < k; });
      if (it != snapshot.end() && it->first == key && it->second.chain == entry.chain &&
          it->second.budget == entry.budget && it->second.conflicts == entry.conflicts) {
        entry.dirty = false;
      }
    }
  }
  {
    util::MutexLock lock(persist_mutex_);
    persisted_path_ = path;
  }
  return snapshot.size();
}

mig::Signal ReplacementOracle::instantiate(const tt::TruthTable& f, mig::Mig& mig,
                                           const std::vector<mig::Signal>& leaves,
                                           OracleTally* tally) {
  if (f.support_size() <= 4) {
    std::vector<uint32_t> old_vars;
    const auto g = f.shrink_to_support(old_vars).extend(4);
    std::vector<mig::Signal> mapped(4, mig.get_constant(false));
    for (uint32_t i = 0; i < old_vars.size(); ++i) {
      mapped[i] = leaves[old_vars[i]];
    }
    return db_.instantiate(g, mig, mapped);
  }
  const auto* chain = five_input_chain(f.extend(5), tally);
  if (chain == nullptr) {
    throw std::logic_error("instantiate called without a successful query");
  }
  return chain->instantiate(mig, leaves);
}

}  // namespace mighty::opt
