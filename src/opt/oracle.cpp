#include "opt/oracle.hpp"

#include <stdexcept>

#include "exact/exact_synthesis.hpp"
#include "opt/rewrite.hpp"

namespace mighty::opt {

namespace {

/// Bumps a lifetime counter and its optional per-scope mirror.
void bump(std::atomic<uint64_t>& global, OracleTally* tally,
          std::atomic<uint64_t> OracleTally::* member) {
  global.fetch_add(1, std::memory_order_relaxed);
  if (tally != nullptr) (tally->*member).fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ReplacementOracle::ReplacementOracle(const exact::Database& db,
                                     const OracleParams& params)
    : db_(db), params_(params) {}

const exact::MigChain* ReplacementOracle::five_input_chain(const tt::TruthTable& f5,
                                                           OracleTally* tally) {
  const uint64_t key = f5.bits();
  CacheStripe& stripe = cache5_[(key * 0x9e3779b97f4a7c15ull) >> 60 & (kCacheStripes - 1)];
  // Synthesis runs under the stripe lock: concurrent queries for the same
  // function would otherwise both pay the SAT solver, and the hit/synthesis
  // counters would depend on thread interleaving.  Functions in other
  // stripes proceed unhindered.
  std::lock_guard<std::mutex> lock(stripe.mutex);
  const auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    bump(cache5_hits_, tally, &OracleTally::cache5_hits);
    return it->second ? &*it->second : nullptr;
  }
  exact::SynthesisOptions options;
  options.max_gates = params_.max_gates;
  options.conflict_limit = params_.synthesis_conflict_limit;
  const auto result = exact::synthesize_minimum_mig(f5, options);
  bump(synthesized_, tally, &OracleTally::synthesized);
  if (result.status == exact::SynthesisStatus::success) {
    auto [pos, inserted] = stripe.map.emplace(key, result.chain);
    (void)inserted;
    return &*pos->second;
  }
  bump(failures_, tally, &OracleTally::failures);
  stripe.map.emplace(key, std::nullopt);
  return nullptr;
}

std::optional<ReplacementOracle::Info> ReplacementOracle::query(const tt::TruthTable& f,
                                                                OracleTally* tally) {
  bump(queries_, tally, &OracleTally::queries);
  Info info;
  info.input_depths.assign(f.num_vars(), -1);

  if (f.support_size() <= 4) {
    std::vector<uint32_t> old_vars;
    const auto g = f.shrink_to_support(old_vars).extend(4);
    const auto lookup = db_.lookup(g);
    const auto inv = npn::inverse(lookup.transform);
    const auto depths = chain_input_depths(lookup.entry->chain);
    info.size = lookup.entry->chain.size();
    info.depth = lookup.entry->chain.depth();
    for (uint32_t i = 0; i < 4; ++i) {
      if (depths[i] < 0) continue;
      const uint32_t g_var = inv.perm[i];
      if (g_var < old_vars.size()) {
        info.input_depths[old_vars[g_var]] = depths[i];
      }
    }
    bump(answered_, tally, &OracleTally::answered);
    return info;
  }

  if (!params_.enable_five_input || f.num_vars() > 5) return std::nullopt;
  const auto* chain = five_input_chain(f.extend(5), tally);
  if (chain == nullptr) return std::nullopt;
  info.size = chain->size();
  info.depth = chain->depth();
  const auto depths = chain_input_depths(*chain);
  for (uint32_t v = 0; v < f.num_vars(); ++v) info.input_depths[v] = depths[v];
  bump(answered_, tally, &OracleTally::answered);
  return info;
}

mig::Signal ReplacementOracle::instantiate(const tt::TruthTable& f, mig::Mig& mig,
                                           const std::vector<mig::Signal>& leaves,
                                           OracleTally* tally) {
  if (f.support_size() <= 4) {
    std::vector<uint32_t> old_vars;
    const auto g = f.shrink_to_support(old_vars).extend(4);
    std::vector<mig::Signal> mapped(4, mig.get_constant(false));
    for (uint32_t i = 0; i < old_vars.size(); ++i) {
      mapped[i] = leaves[old_vars[i]];
    }
    return db_.instantiate(g, mig, mapped);
  }
  const auto* chain = five_input_chain(f.extend(5), tally);
  if (chain == nullptr) {
    throw std::logic_error("instantiate called without a successful query");
  }
  return chain->instantiate(mig, leaves);
}

}  // namespace mighty::opt
