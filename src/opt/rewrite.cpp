#include "opt/rewrite.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <stdexcept>

#include "opt/oracle.hpp"

namespace mighty::opt {

mig::Mig functional_hashing(const mig::Mig& mig, ReplacementOracle& oracle,
                            const RewriteParams& params, RewriteStats* stats) {
  RewriteStats local;
  local.size_before = mig.count_live_gates();
  local.depth_before = mig.depth();
  const auto start = std::chrono::steady_clock::now();

  // Attribute oracle activity to exactly this call: the drivers record every
  // query into a local tally instead of the caller reading lifetime counters
  // (which interleave arbitrarily when concurrent passes share the oracle).
  OracleTally tally;
  RewriteParams driver_params = params;
  driver_params.tally = &tally;

  mig::Mig result = params.direction == Direction::top_down
                        ? rewrite_top_down(mig, oracle, driver_params, local)
                        : rewrite_bottom_up(mig, oracle, driver_params, local);
  result = result.cleanup();

  local.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  local.size_after = result.count_live_gates();
  local.depth_after = result.depth();
  local.oracle_queries = tally.queries.load(std::memory_order_relaxed);
  local.oracle_answered = tally.answered.load(std::memory_order_relaxed);
  local.oracle_cache5_hits = tally.cache5_hits.load(std::memory_order_relaxed);
  local.oracle_synthesized = tally.synthesized.load(std::memory_order_relaxed);
  local.oracle_failures = tally.failures.load(std::memory_order_relaxed);
  if (params.tally != nullptr) {
    params.tally->queries.fetch_add(local.oracle_queries, std::memory_order_relaxed);
    params.tally->answered.fetch_add(local.oracle_answered, std::memory_order_relaxed);
    params.tally->cache5_hits.fetch_add(local.oracle_cache5_hits,
                                        std::memory_order_relaxed);
    params.tally->synthesized.fetch_add(local.oracle_synthesized,
                                        std::memory_order_relaxed);
    params.tally->failures.fetch_add(local.oracle_failures, std::memory_order_relaxed);
  }
  if (stats != nullptr) *stats = local;
  return result;
}

mig::Mig functional_hashing(const mig::Mig& mig, const exact::Database& db,
                            const RewriteParams& params, RewriteStats* stats) {
  OracleParams oracle_params;
  oracle_params.enable_five_input = params.five_input_cuts;
  oracle_params.synthesis_conflict_limit = params.synthesis_conflict_limit;
  ReplacementOracle oracle(db, oracle_params);
  return functional_hashing(mig, oracle, params, stats);
}

RewriteParams variant_params(const std::string& acronym) {
  RewriteParams params;
  for (const char raw : acronym) {
    switch (std::toupper(static_cast<unsigned char>(raw))) {
      case 'T':
        params.direction = Direction::top_down;
        break;
      case 'B':
        params.direction = Direction::bottom_up;
        break;
      case 'F':
        params.ffr_partition = true;
        break;
      case 'D':
        params.depth_preserving = true;
        break;
      default:
        throw std::invalid_argument(std::string("unknown letter '") + raw +
                                    "' in variant acronym \"" + acronym + '"');
    }
  }
  const char head =
      acronym.empty()
          ? '\0'
          : static_cast<char>(std::toupper(static_cast<unsigned char>(acronym[0])));
  if (head != 'T' && head != 'B') {
    throw std::invalid_argument("variant must start with T or B: \"" + acronym + '"');
  }
  return params;
}

std::vector<std::string> all_variants() {
  return {"TF", "T", "TFD", "TD", "B", "BF", "BD", "BFD"};
}

std::vector<uint32_t> cut_cone(const mig::Mig& mig, uint32_t root,
                               const std::vector<uint32_t>& leaves) {
  std::vector<uint32_t> cone;
  std::vector<uint32_t> stack{root};
  auto is_leaf = [&](uint32_t n) {
    return std::find(leaves.begin(), leaves.end(), n) != leaves.end();
  };
  auto seen = [&](uint32_t n) {
    return std::find(cone.begin(), cone.end(), n) != cone.end();
  };
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    if (seen(n)) continue;
    cone.push_back(n);
    for (const mig::Signal s : mig.fanins(n)) {
      const uint32_t f = s.index();
      if (mig.is_constant(f) || is_leaf(f) || seen(f)) continue;
      stack.push_back(f);
    }
  }
  return cone;
}

bool cone_is_replaceable(const mig::Mig& mig, const std::vector<uint32_t>& cone,
                         uint32_t root, const std::vector<uint32_t>& fanout_counts) {
  for (const uint32_t n : cone) {
    if (n == root) continue;
    // Count references to n from inside the cone; any additional reference is
    // external fanout, which would keep the node alive after replacement.
    uint32_t internal = 0;
    for (const uint32_t m : cone) {
      for (const mig::Signal s : mig.fanins(m)) {
        if (s.index() == n) ++internal;
      }
    }
    if (internal < fanout_counts[n]) return false;
  }
  return true;
}

std::vector<int> chain_input_depths(const exact::MigChain& chain) {
  std::vector<int> result(chain.num_vars, -1);
  const uint32_t base = 1 + chain.num_vars;
  for (uint32_t v = 0; v < chain.num_vars; ++v) {
    // Longest path from input v through the steps to the output reference.
    std::vector<int> dist(base + chain.steps.size(), -1);
    dist[1 + v] = 0;
    for (uint32_t m = 0; m < chain.steps.size(); ++m) {
      int best = -1;
      for (const exact::RefLit l : chain.steps[m].fanin) {
        const uint32_t ref = exact::ref_of(l);
        if (dist[ref] >= 0) best = std::max(best, dist[ref] + 1);
      }
      dist[base + m] = best;
    }
    result[v] = dist[exact::ref_of(chain.output)];
  }
  return result;
}

}  // namespace mighty::opt
