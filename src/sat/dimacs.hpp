#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

/// \file dimacs.hpp
/// \brief DIMACS CNF import/export, mainly for debugging and interop.

namespace mighty::sat {

/// A plain CNF container (clauses of literals in the solver's encoding).
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Writes `cnf` in DIMACS format.
void write_dimacs(std::ostream& os, const Cnf& cnf);

/// Parses DIMACS text.  Throws std::runtime_error on malformed input.
Cnf read_dimacs(std::istream& is);

/// Loads a CNF into a fresh set of solver variables; returns false if the
/// formula is trivially unsatisfiable.
bool load_into_solver(const Cnf& cnf, Solver& solver);

}  // namespace mighty::sat
