#include "sat/solver.hpp"

#include <algorithm>
#include "util/assert.hpp"

namespace mighty::sat {

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(0);
  saved_phase_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  heap_index_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

void Solver::boost_activity(Var v, double amount) {
  activity_[static_cast<size_t>(v)] += amount;
  if (heap_contains(v)) heap_up(heap_index_[static_cast<size_t>(v)]);
}

bool Solver::add_clause(std::vector<Lit> lits) {
  MIGHTY_ASSERT(decision_level() == 0);
  if (!ok_) return false;

  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = -2;
  for (const Lit l : lits) {
    MIGHTY_ASSERT(var_of(l) < num_vars());
    if (l == prev) continue;                  // duplicate literal
    if (l == negate(prev)) return true;       // tautology
    if (value_lit(l) == 1) return true;       // satisfied at top level
    if (value_lit(l) == -1) continue;         // falsified at top level
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  ++num_problem_clauses_;
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kNoReason) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const auto cref = static_cast<ClauseRef>(clauses_.size());
  clauses_.push_back(Clause{std::move(out), 0.0, 0, false, false});
  attach_clause(cref);
  return true;
}

void Solver::attach_clause(ClauseRef cref) {
  const Clause& c = clauses_[static_cast<size_t>(cref)];
  MIGHTY_ASSERT(c.lits.size() >= 2);
  watches_[static_cast<size_t>(c.lits[0])].push_back({cref, c.lits[1]});
  watches_[static_cast<size_t>(c.lits[1])].push_back({cref, c.lits[0]});
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const Var v = var_of(l);
  MIGHTY_ASSERT(value_var(v) == 0);
  assigns_[static_cast<size_t>(v)] = is_negated(l) ? int8_t{-1} : int8_t{1};
  level_[static_cast<size_t>(v)] = decision_level();
  reason_[static_cast<size_t>(v)] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<size_t>(negate(p))];
    size_t i = 0;
    size_t j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value_lit(w.blocker) == 1) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[static_cast<size_t>(w.cref)];
      if (c.removed) {
        ++i;  // drop the stale watcher
        continue;
      }
      const Lit false_lit = negate(p);
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      MIGHTY_ASSERT(c.lits[1] == false_lit);
      const Lit first = c.lits[0];
      if (first != w.blocker && value_lit(first) == 1) {
        ws[j++] = {w.cref, first};
        ++i;
        continue;
      }
      bool found_watch = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (value_lit(c.lits[k]) != -1) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<size_t>(c.lits[1])].push_back({w.cref, first});
          found_watch = true;
          break;
        }
      }
      if (found_watch) {
        ++i;
        continue;
      }
      // Clause is unit under the current assignment, or conflicting.
      ws[j++] = {w.cref, first};
      ++i;
      if (value_lit(first) == -1) {
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        propagate_head_ = trail_.size();
        return w.cref;
      }
      enqueue(first, w.cref);
    }
    ws.resize(j);
  }
  return kNoReason;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& out_learnt, int& out_btlevel) {
  int path_count = 0;
  Lit p = -1;
  out_learnt.clear();
  out_learnt.push_back(0);  // reserved for the asserting literal
  size_t index = trail_.size();

  ClauseRef confl = conflict;
  do {
    MIGHTY_ASSERT(confl != kNoReason);
    Clause& c = clauses_[static_cast<size_t>(confl)];
    if (c.learnt) bump_clause(c);
    for (size_t k = (p == -1 ? 0 : 1); k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const Var v = var_of(q);
      if (!seen_[static_cast<size_t>(v)] && level_[static_cast<size_t>(v)] > 0) {
        seen_[static_cast<size_t>(v)] = 1;
        bump_var(v);
        if (level_[static_cast<size_t>(v)] >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    while (!seen_[static_cast<size_t>(var_of(trail_[--index]))]) {
    }
    p = trail_[index];
    confl = reason_[static_cast<size_t>(var_of(p))];
    seen_[static_cast<size_t>(var_of(p))] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = negate(p);

  // Conflict-clause minimization: drop literals implied by the rest.
  analyze_clear_.assign(out_learnt.begin() + 1, out_learnt.end());
  uint32_t abstract_levels = 0;
  for (size_t k = 1; k < out_learnt.size(); ++k) {
    abstract_levels |= 1u << (level_[static_cast<size_t>(var_of(out_learnt[k]))] & 31);
  }
  size_t keep = 1;
  for (size_t k = 1; k < out_learnt.size(); ++k) {
    const Lit q = out_learnt[k];
    if (reason_[static_cast<size_t>(var_of(q))] == kNoReason ||
        !literal_redundant(q, abstract_levels)) {
      out_learnt[keep++] = q;
    }
  }
  out_learnt.resize(keep);

  // Find backtrack level: the second-highest decision level in the clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t k = 2; k < out_learnt.size(); ++k) {
      if (level_[static_cast<size_t>(var_of(out_learnt[k]))] >
          level_[static_cast<size_t>(var_of(out_learnt[max_i]))]) {
        max_i = k;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[static_cast<size_t>(var_of(out_learnt[1]))];
  }

  for (const Lit l : analyze_clear_) seen_[static_cast<size_t>(var_of(l))] = 0;
  seen_[static_cast<size_t>(var_of(out_learnt[0]))] = 0;
}

bool Solver::literal_redundant(Lit l, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef r = reason_[static_cast<size_t>(var_of(q))];
    MIGHTY_ASSERT(r != kNoReason);
    const Clause& c = clauses_[static_cast<size_t>(r)];
    for (size_t k = 1; k < c.lits.size(); ++k) {
      const Lit p = c.lits[k];
      const Var v = var_of(p);
      if (seen_[static_cast<size_t>(v)] || level_[static_cast<size_t>(v)] == 0) continue;
      if (reason_[static_cast<size_t>(v)] == kNoReason ||
          ((1u << (level_[static_cast<size_t>(v)] & 31)) & abstract_levels) == 0) {
        // Not removable: undo the marks made during this check.
        for (size_t m = top; m < analyze_clear_.size(); ++m) {
          seen_[static_cast<size_t>(var_of(analyze_clear_[m]))] = 0;
        }
        analyze_clear_.resize(top);
        return false;
      }
      seen_[static_cast<size_t>(v)] = 1;
      analyze_clear_.push_back(p);
      analyze_stack_.push_back(p);
    }
  }
  return true;
}

void Solver::backtrack(int target_level) {
  if (decision_level() <= target_level) return;
  const int bound = trail_lim_[static_cast<size_t>(target_level)];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Var v = var_of(trail_[static_cast<size_t>(i)]);
    saved_phase_[static_cast<size_t>(v)] = assigns_[static_cast<size_t>(v)];
    assigns_[static_cast<size_t>(v)] = 0;
    reason_[static_cast<size_t>(v)] = kNoReason;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(static_cast<size_t>(bound));
  trail_lim_.resize(static_cast<size_t>(target_level));
  propagate_head_ = trail_.size();
}

Lit Solver::pick_branch_literal() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (value_var(v) == 0) {
      const bool phase_true = saved_phase_[static_cast<size_t>(v)] > 0;
      return lit(v, !phase_true);
    }
  }
  return -1;
}

int Solver::compute_lbd(const std::vector<Lit>& lits) {
  std::vector<int> levels;
  levels.reserve(lits.size());
  for (const Lit l : lits) levels.push_back(level_[static_cast<size_t>(var_of(l))]);
  std::sort(levels.begin(), levels.end());
  return static_cast<int>(std::unique(levels.begin(), levels.end()) - levels.begin());
}

void Solver::bump_var(Var v) {
  activity_[static_cast<size_t>(v)] += var_inc_;
  if (activity_[static_cast<size_t>(v)] > 1e100) rescale_var_activity();
  if (heap_contains(v)) heap_up(heap_index_[static_cast<size_t>(v)]);
}

void Solver::rescale_var_activity() {
  for (auto& a : activity_) a *= 1e-100;
  var_inc_ *= 1e-100;
}

void Solver::bump_clause(Clause& c) {
  c.activity += cla_inc_;
  if (c.activity > 1e20) {
    for (auto& cl : clauses_) {
      if (cl.learnt) cl.activity *= 1e-20;
    }
    cla_inc_ *= 1e-20;
  }
}

void Solver::reduce_db() {
  MIGHTY_ASSERT(decision_level() == 0);
  // Collect learnt, non-locked clauses and drop the worse half by (lbd, act).
  std::vector<ClauseRef> learnts;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    Clause& c = clauses_[i];
    if (c.removed || !c.learnt) continue;
    const bool locked = !c.lits.empty() && value_lit(c.lits[0]) == 1 &&
                        reason_[static_cast<size_t>(var_of(c.lits[0]))] ==
                            static_cast<ClauseRef>(i);
    if (locked || c.lits.size() <= 2 || c.lbd <= 2) continue;
    learnts.push_back(static_cast<ClauseRef>(i));
  }
  std::sort(learnts.begin(), learnts.end(), [&](ClauseRef a, ClauseRef b) {
    const Clause& ca = clauses_[static_cast<size_t>(a)];
    const Clause& cb = clauses_[static_cast<size_t>(b)];
    if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
    return ca.activity < cb.activity;
  });
  for (size_t i = 0; i < learnts.size() / 2; ++i) {
    clauses_[static_cast<size_t>(learnts[i])].removed = true;
    ++stats_.removed_clauses;
  }

  // Rebuild the watch lists over the surviving clauses; also simplify each
  // clause against the top-level assignment.
  for (auto& ws : watches_) ws.clear();
  for (size_t i = 0; i < clauses_.size(); ++i) {
    Clause& c = clauses_[i];
    if (c.removed) continue;
    bool satisfied = false;
    size_t keep = 0;
    for (const Lit l : c.lits) {
      if (value_lit(l) == 1 && level_[static_cast<size_t>(var_of(l))] == 0) {
        satisfied = true;
        break;
      }
      if (value_lit(l) == -1 && level_[static_cast<size_t>(var_of(l))] == 0) continue;
      c.lits[keep++] = l;
    }
    if (satisfied) {
      c.removed = true;
      continue;
    }
    c.lits.resize(keep);
    MIGHTY_ASSERT(!c.lits.empty());
    if (c.lits.size() == 1) {
      if (value_lit(c.lits[0]) == 0) enqueue(c.lits[0], kNoReason);
      c.removed = true;
      continue;
    }
    attach_clause(static_cast<ClauseRef>(i));
  }
}

uint64_t Solver::luby(uint64_t i) {
  // Index into the Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (1-based).
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return uint64_t{1} << seq;
}

Result Solver::solve(const std::vector<Lit>& assumptions, int64_t conflict_limit) {
  if (!ok_) return Result::unsat;
  model_.clear();
  backtrack(0);
  if (propagate() != kNoReason) {
    ok_ = false;
    return Result::unsat;
  }

  const uint64_t conflicts_start = stats_.conflicts;
  uint64_t restart_index = 0;
  uint64_t restart_budget = 100 * luby(++restart_index);
  uint64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  for (;;) {
    const ClauseRef confl = propagate();
    if (confl != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        ok_ = false;
        return Result::unsat;
      }
      int bt_level = 0;
      analyze(confl, learnt, bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const auto cref = static_cast<ClauseRef>(clauses_.size());
        Clause c;
        c.lits = learnt;
        c.learnt = true;
        c.lbd = compute_lbd(learnt);
        clauses_.push_back(std::move(c));
        attach_clause(cref);
        bump_clause(clauses_[static_cast<size_t>(cref)]);
        enqueue(learnt[0], cref);
        ++stats_.learnt_clauses;
      }
      decay_var_activity();
      cla_inc_ *= (1.0 / 0.999);

      if (conflict_limit >= 0 &&
          stats_.conflicts - conflicts_start >= static_cast<uint64_t>(conflict_limit)) {
        backtrack(0);
        return Result::unknown;
      }
      continue;
    }

    if (conflicts_since_restart >= restart_budget) {
      conflicts_since_restart = 0;
      restart_budget = 100 * luby(++restart_index);
      ++stats_.restarts;
      backtrack(0);
      if (stats_.learnt_clauses - stats_.removed_clauses > next_reduce_) {
        reduce_db();
        next_reduce_ += reduce_increment_;
      }
      continue;
    }

    // Assumption decisions come first, one level per assumption.
    if (static_cast<size_t>(decision_level()) < assumptions.size()) {
      const Lit a = assumptions[static_cast<size_t>(decision_level())];
      if (value_lit(a) == -1) {
        backtrack(0);
        return Result::unsat;  // assumption conflicts with the formula
      }
      new_decision_level();
      if (value_lit(a) == 0) enqueue(a, kNoReason);
      continue;
    }

    const Lit next = pick_branch_literal();
    if (next == -1) {
      // All variables assigned: a model has been found.
      model_.assign(assigns_.begin(), assigns_.end());
      backtrack(0);
      return Result::sat;
    }
    ++stats_.decisions;
    new_decision_level();
    enqueue(next, kNoReason);
  }
}

// --- activity-ordered binary heap -------------------------------------------

void Solver::heap_insert(Var v) {
  heap_index_[static_cast<size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_up(static_cast<int>(heap_.size()) - 1);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_index_[static_cast<size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_index_[static_cast<size_t>(heap_[0])] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::heap_up(int i) {
  const Var v = heap_[static_cast<size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[static_cast<size_t>(heap_[static_cast<size_t>(parent)])] >=
        activity_[static_cast<size_t>(v)]) {
      break;
    }
    heap_[static_cast<size_t>(i)] = heap_[static_cast<size_t>(parent)];
    heap_index_[static_cast<size_t>(heap_[static_cast<size_t>(i)])] = i;
    i = parent;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_index_[static_cast<size_t>(v)] = i;
}

void Solver::heap_down(int i) {
  const Var v = heap_[static_cast<size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<size_t>(heap_[static_cast<size_t>(child + 1)])] >
            activity_[static_cast<size_t>(heap_[static_cast<size_t>(child)])]) {
      ++child;
    }
    if (activity_[static_cast<size_t>(heap_[static_cast<size_t>(child)])] <=
        activity_[static_cast<size_t>(v)]) {
      break;
    }
    heap_[static_cast<size_t>(i)] = heap_[static_cast<size_t>(child)];
    heap_index_[static_cast<size_t>(heap_[static_cast<size_t>(i)])] = i;
    i = child;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_index_[static_cast<size_t>(v)] = i;
}

}  // namespace mighty::sat
