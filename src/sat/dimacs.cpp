#include "sat/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mighty::sat {

void write_dimacs(std::ostream& os, const Cnf& cnf) {
  os << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (const Lit l : clause) {
      const int dimacs = (var_of(l) + 1) * (is_negated(l) ? -1 : 1);
      os << dimacs << ' ';
    }
    os << "0\n";
  }
}

Cnf read_dimacs(std::istream& is) {
  Cnf cnf;
  std::string line;
  bool header_seen = false;
  std::vector<Lit> current;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream hs(line);
      std::string p, fmt;
      size_t num_clauses = 0;
      if (!(hs >> p >> fmt >> cnf.num_vars >> num_clauses) || fmt != "cnf") {
        throw std::runtime_error("malformed DIMACS header");
      }
      header_seen = true;
      continue;
    }
    std::istringstream ls(line);
    int v = 0;
    while (ls >> v) {
      if (v == 0) {
        cnf.clauses.push_back(current);
        current.clear();
      } else {
        const int idx = std::abs(v) - 1;
        if (idx >= cnf.num_vars) throw std::runtime_error("literal out of range");
        current.push_back(lit(idx, v < 0));
      }
    }
  }
  if (!header_seen) throw std::runtime_error("missing DIMACS header");
  if (!current.empty()) throw std::runtime_error("unterminated clause");
  return cnf;
}

bool load_into_solver(const Cnf& cnf, Solver& solver) {
  const int base = solver.num_vars();
  for (int i = 0; i < cnf.num_vars; ++i) solver.new_var();
  for (const auto& clause : cnf.clauses) {
    std::vector<Lit> shifted;
    shifted.reserve(clause.size());
    for (const Lit l : clause) shifted.push_back(lit(base + var_of(l), is_negated(l)));
    if (!solver.add_clause(std::move(shifted))) return false;
  }
  return true;
}

}  // namespace mighty::sat
