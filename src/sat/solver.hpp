#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file solver.hpp
/// \brief A self-contained CDCL SAT solver.
///
/// The paper solves its exact-synthesis decision problems with the SMT solver
/// Z3 over quantifier-free bit-vectors.  Z3 decides such instances by
/// bit-blasting to propositional SAT; this module provides the SAT engine for
/// our reproduction of that pipeline (see `smt/bitvector.hpp` for the
/// bit-blaster and `exact/` for the encodings).
///
/// Features: two-literal watching, first-UIP conflict analysis with clause
/// minimization, VSIDS decision heuristic with phase saving, Luby restarts,
/// and LBD-based learnt-clause database reduction.

namespace mighty::sat {

using Var = int32_t;
using Lit = int32_t;

/// Builds a literal from a variable; `negated` selects the negative phase.
constexpr Lit lit(Var v, bool negated = false) { return v * 2 + (negated ? 1 : 0); }
constexpr Lit negate(Lit l) { return l ^ 1; }
constexpr Var var_of(Lit l) { return l >> 1; }
constexpr bool is_negated(Lit l) { return (l & 1) != 0; }

enum class Result { sat, unsat, unknown };

/// Aggregate statistics of a solver instance, exposed for the benchmarks.
struct SolverStats {
  uint64_t conflicts = 0;
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t restarts = 0;
  uint64_t learnt_clauses = 0;
  uint64_t removed_clauses = 0;
};

class Solver {
public:
  Solver();

  /// Creates a fresh variable and returns its index.
  Var new_var();

  /// Seeds the VSIDS activity of a variable; encoders use this to steer the
  /// first decisions toward structural variables.
  void boost_activity(Var v, double amount);
  int num_vars() const { return static_cast<int>(assigns_.size()); }
  int num_clauses() const { return num_problem_clauses_; }
  const SolverStats& stats() const { return stats_; }

  /// Adds a clause; returns false if the formula became trivially
  /// unsatisfiable (conflict at decision level zero).
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::vector<Lit>(lits));
  }

  /// Solves under the given assumptions.  A non-negative `conflict_limit`
  /// bounds the search effort and may yield Result::unknown.
  Result solve(const std::vector<Lit>& assumptions = {}, int64_t conflict_limit = -1);

  /// Model access; valid only after solve() returned Result::sat.
  bool model_value(Var v) const { return model_[static_cast<size_t>(v)] > 0; }
  bool model_value_lit(Lit l) const { return model_value(var_of(l)) != is_negated(l); }

  /// True if the solver has already derived top-level unsatisfiability.
  bool in_conflict() const { return !ok_; }

private:
  using ClauseRef = int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    int lbd = 0;
    bool learnt = false;
    bool removed = false;
  };

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  // Assignment values: 0 = unassigned, 1 = true, -1 = false.
  int8_t value_var(Var v) const { return assigns_[static_cast<size_t>(v)]; }
  int8_t value_lit(Lit l) const {
    const int8_t v = assigns_[static_cast<size_t>(var_of(l))];
    return is_negated(l) ? static_cast<int8_t>(-v) : v;
  }

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }

  void attach_clause(ClauseRef cref);
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& out_learnt, int& out_btlevel);
  bool literal_redundant(Lit l, uint32_t abstract_levels);
  void backtrack(int level);
  Lit pick_branch_literal();
  void reduce_db();
  void bump_var(Var v);
  void bump_clause(Clause& c);
  void decay_var_activity() { var_inc_ *= (1.0 / 0.95); }
  void rescale_var_activity();
  int compute_lbd(const std::vector<Lit>& lits);
  static uint64_t luby(uint64_t i);

  // Heap-ordered-by-activity variable selection.
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(int i);
  void heap_down(int i);
  bool heap_contains(Var v) const { return heap_index_[static_cast<size_t>(v)] >= 0; }

  bool ok_ = true;
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<int8_t> assigns_;
  std::vector<int8_t> saved_phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<int> heap_index_;

  std::vector<int8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  std::vector<int8_t> model_;
  int num_problem_clauses_ = 0;
  double cla_inc_ = 1.0;
  uint64_t next_reduce_ = 4000;
  uint64_t reduce_increment_ = 300;
  SolverStats stats_;
};

}  // namespace mighty::sat
