#pragma once

#include <cstdint>
#include <vector>

#include "mig/ffr.hpp"
#include "mig/mig.hpp"

/// \file shard.hpp
/// \brief Balanced, disjoint shards of fanout-free regions.
///
/// The paper partitions the MIG into fanout-free regions precisely so that
/// functional hashing can treat them independently (Sec. IV-C); this planner
/// turns that independence into units of parallel work.  A shard is a group
/// of whole live FFRs: shards are pairwise disjoint, together cover every
/// output-reachable gate, and keep each shard's node list in ascending (=
/// topological) order so per-shard passes can run bottom-up sweeps locally.
///
/// The plan is a pure function of the network — region assignment uses
/// deterministic greedy balancing, never thread identity — which is the
/// foundation of the engine's `threads=N` == `threads=1` guarantee.

namespace mighty::shard {

struct Shard {
  /// Roots of the regions grouped into this shard, ascending (= topological).
  std::vector<uint32_t> roots;
  /// Every gate of those regions (roots included), ascending (= topological).
  std::vector<uint32_t> nodes;
};

struct ShardPlan {
  std::vector<Shard> shards;

  /// Total gates across all shards (= live gates of the partitioned network).
  uint64_t total_nodes() const {
    uint64_t total = 0;
    for (const auto& shard : shards) total += shard.nodes.size();
    return total;
  }
};

/// Groups the live regions of `partition` into at most `num_shards` balanced
/// shards (fewer when there are fewer live regions).  Balancing is greedy
/// largest-region-first onto the least-loaded shard with deterministic
/// tie-breaking; each shard's region set and node list come out sorted.
/// Only regions whose root is output-reachable are planned: dead regions
/// cannot influence the result network, so no pass should spend time there.
ShardPlan plan_ffr_shards(const mig::Mig& mig, const ffr::FfrPartition& partition,
                          uint32_t num_shards);

/// Dense view of the live regions for per-region passes.
struct RegionMembers {
  /// Live region roots in ascending (= topological) order.
  std::vector<uint32_t> live_roots;
  /// Dense index of each live root into `live_roots`/`members` (by node id;
  /// entries of other nodes are unspecified).
  std::vector<uint32_t> region_index;
  /// Member gates of each live region, ascending; the root is always last.
  std::vector<std::vector<uint32_t>> members;
};

/// Buckets every output-reachable gate into its region.
RegionMembers collect_region_members(const mig::Mig& mig,
                                     const ffr::FfrPartition& partition);

/// The distinct nodes feeding a region from outside (other regions' roots,
/// PIs — never the constant), in deterministic first-encounter order.  This
/// is the PI order of a region-private network: PI j realizes inputs[j].
std::vector<uint32_t> region_inputs(const mig::Mig& mig,
                                    const std::vector<uint32_t>& members);

/// Deterministic merge step shared by the shard-parallel passes: replays the
/// live cone of `chosen` — a signal in the region-private `net` whose PI j
/// realizes original node `inputs[j]` — into `result`, mapping each PI
/// through `committed_sig` (the signal realizing that original node in
/// `result`).  Returns the signal realizing the region's root.  Structural
/// hashing in `result` re-establishes cross-region sharing.
mig::Signal splice_region(const mig::Mig& net, const std::vector<uint32_t>& inputs,
                          mig::Signal chosen,
                          const std::vector<mig::Signal>& committed_sig,
                          mig::Mig& result);

/// Per-region topological levels: a region's level is one more than the
/// maximum level of the regions feeding its gates (pure-PI regions at 0).
/// Regions of equal level are independent, so wave-parallel passes process
/// levels in order and regions within a level concurrently.  Terminals and
/// dead regions get level 0.  Indexed by region root; non-root entries are 0.
std::vector<uint32_t> region_levels(const mig::Mig& mig,
                                    const ffr::FfrPartition& partition);

}  // namespace mighty::shard
