#include "mig/cuts.hpp"

#include <algorithm>
#include <cassert>

namespace mighty::cuts {

bool Cut::subset_of(const Cut& other) const {
  if (size > other.size) return false;
  if ((signature & ~other.signature) != 0) return false;
  uint8_t j = 0;
  for (uint8_t i = 0; i < size; ++i) {
    while (j < other.size && other.leaves[j] < leaves[i]) ++j;
    if (j == other.size || other.leaves[j] != leaves[i]) return false;
  }
  return true;
}

bool merge_cuts(const Cut& a, const Cut& b, uint32_t k, Cut& out) {
  out.size = 0;
  out.signature = a.signature | b.signature;
  uint8_t i = 0;
  uint8_t j = 0;
  while (i < a.size || j < b.size) {
    uint32_t next;
    if (j == b.size || (i < a.size && a.leaves[i] <= b.leaves[j])) {
      if (i < a.size && j < b.size && a.leaves[i] == b.leaves[j]) ++j;
      next = a.leaves[i++];
    } else {
      next = b.leaves[j++];
    }
    if (out.size == k) return false;
    out.leaves[out.size++] = next;
  }
  return true;
}

namespace {

/// Inserts `cut` into `set` unless dominated; removes cuts it dominates.
void insert_cut(std::vector<Cut>& set, const Cut& cut, uint32_t max_cuts) {
  for (const Cut& existing : set) {
    if (existing.subset_of(cut)) return;  // dominated (or duplicate)
  }
  std::erase_if(set, [&](const Cut& existing) { return cut.subset_of(existing); });
  if (max_cuts != 0 && set.size() >= max_cuts) return;
  set.push_back(cut);
}

Cut trivial_cut(uint32_t node) {
  Cut c;
  c.size = 1;
  c.leaves[0] = node;
  c.signature = Cut::hash_leaf(node);
  return c;
}

}  // namespace

std::vector<std::vector<Cut>> enumerate_cuts(const mig::Mig& mig,
                                             const CutEnumerationParams& params) {
  assert(params.cut_size <= Cut::max_size);
  const uint32_t k = params.cut_size;
  std::vector<std::vector<Cut>> sets(mig.num_nodes());

  // The constant node contributes the empty cut, so that paths to it are
  // exempt from the covering requirement.
  sets[mig::Mig::constant_node] = {Cut{}};

  const std::vector<Cut> empty_fallback;
  for (uint32_t n = 1; n < mig.num_nodes(); ++n) {
    if (mig.is_pi(n)) {
      sets[n] = {trivial_cut(n)};
      continue;
    }
    auto fanin_set = [&](mig::Signal s) -> std::vector<Cut> {
      const uint32_t f = s.index();
      const bool forced_leaf =
          params.boundary != nullptr && f < params.boundary->size() && (*params.boundary)[f];
      if (forced_leaf && !mig.is_constant(f)) return {trivial_cut(f)};
      return sets[f];
    };
    const auto& f = mig.fanins(n);
    const auto set0 = fanin_set(f[0]);
    const auto set1 = fanin_set(f[1]);
    const auto set2 = fanin_set(f[2]);

    std::vector<Cut>& out = sets[n];
    Cut ab;
    Cut abc;
    for (const Cut& c0 : set0) {
      for (const Cut& c1 : set1) {
        if (!merge_cuts(c0, c1, k, ab)) continue;
        for (const Cut& c2 : set2) {
          if (!merge_cuts(ab, c2, k, abc)) continue;
          insert_cut(out, abc, params.max_cuts);
        }
      }
    }
    if (params.include_trivial) {
      insert_cut(out, trivial_cut(n), /*max_cuts=*/0);
    }
  }
  return sets;
}

uint64_t total_cut_count(const std::vector<std::vector<Cut>>& cut_sets) {
  uint64_t total = 0;
  for (const auto& set : cut_sets) total += set.size();
  return total;
}

}  // namespace mighty::cuts
