#include "mig/cuts.hpp"

#include <algorithm>
#include "util/assert.hpp"

namespace mighty::cuts {

bool Cut::subset_of(const Cut& other) const {
  if (size > other.size) return false;
  if ((signature & ~other.signature) != 0) return false;
  uint8_t j = 0;
  for (uint8_t i = 0; i < size; ++i) {
    while (j < other.size && other.leaves[j] < leaves[i]) ++j;
    if (j == other.size || other.leaves[j] != leaves[i]) return false;
  }
  return true;
}

bool merge_cuts(const Cut& a, const Cut& b, uint32_t k, Cut& out) {
  out.size = 0;
  out.signature = a.signature | b.signature;
  uint8_t i = 0;
  uint8_t j = 0;
  while (i < a.size || j < b.size) {
    uint32_t next;
    if (j == b.size || (i < a.size && a.leaves[i] <= b.leaves[j])) {
      if (i < a.size && j < b.size && a.leaves[i] == b.leaves[j]) ++j;
      next = a.leaves[i++];
    } else {
      next = b.leaves[j++];
    }
    if (out.size == k) return false;
    out.leaves[out.size++] = next;
  }
  return true;
}

namespace {

/// Inserts `cut` into `set` unless dominated; removes cuts it dominates.
void insert_cut(std::vector<Cut>& set, const Cut& cut, uint32_t max_cuts) {
  for (const Cut& existing : set) {
    if (existing.subset_of(cut)) return;  // dominated (or duplicate)
  }
  std::erase_if(set, [&](const Cut& existing) { return cut.subset_of(existing); });
  if (max_cuts != 0 && set.size() >= max_cuts) return;
  set.push_back(cut);
}

Cut trivial_cut(uint32_t node) {
  Cut c;
  c.size = 1;
  c.leaves[0] = node;
  c.signature = Cut::hash_leaf(node);
  return c;
}

/// The merge kernel shared by global and shard-scoped enumeration: builds
/// gate n's cut set into `out` from its fanins' sets.  `forced_leaf(f)`
/// decides which fanins contribute only their trivial cut — the single
/// point where the two enumeration modes differ, kept as a predicate so the
/// kernels cannot drift apart (sharded cut sets must stay bit-identical to
/// global ones for the same boundary).
template <typename ForcedLeaf>
void build_node_cuts(const mig::Mig& mig, const CutEnumerationParams& params,
                     uint32_t n, ForcedLeaf&& forced_leaf,
                     const std::vector<std::vector<Cut>>& sets,
                     std::vector<Cut>& out) {
  auto fanin_set = [&](mig::Signal s) -> std::vector<Cut> {
    const uint32_t f = s.index();
    if (mig.is_constant(f)) return {Cut{}};  // empty cut: paths exempt
    if (forced_leaf(f)) return {trivial_cut(f)};
    return sets[f];
  };
  const auto& f = mig.fanins(n);
  const auto set0 = fanin_set(f[0]);
  const auto set1 = fanin_set(f[1]);
  const auto set2 = fanin_set(f[2]);

  Cut ab;
  Cut abc;
  for (const Cut& c0 : set0) {
    for (const Cut& c1 : set1) {
      if (!merge_cuts(c0, c1, params.cut_size, ab)) continue;
      for (const Cut& c2 : set2) {
        if (!merge_cuts(ab, c2, params.cut_size, abc)) continue;
        insert_cut(out, abc, params.max_cuts);
      }
    }
  }
  if (params.include_trivial) {
    insert_cut(out, trivial_cut(n), /*max_cuts=*/0);
  }
}

}  // namespace

std::vector<std::vector<Cut>> enumerate_cuts(const mig::Mig& mig,
                                             const CutEnumerationParams& params) {
  MIGHTY_ASSERT(params.cut_size <= Cut::max_size);
  std::vector<std::vector<Cut>> sets(mig.num_nodes());

  // The constant node contributes the empty cut, so that paths to it are
  // exempt from the covering requirement.
  sets[mig::Mig::constant_node] = {Cut{}};

  auto boundary_leaf = [&](uint32_t f) {
    return params.boundary != nullptr && f < params.boundary->size() &&
           (*params.boundary)[f];
  };
  for (uint32_t n = 1; n < mig.num_nodes(); ++n) {
    if (mig.is_pi(n)) {
      sets[n] = {trivial_cut(n)};
      continue;
    }
    build_node_cuts(mig, params, n, boundary_leaf, sets, sets[n]);
  }
  return sets;
}

void enumerate_cuts_scoped(const mig::Mig& mig, const CutEnumerationParams& params,
                           const std::vector<uint32_t>& scope,
                           std::vector<std::vector<Cut>>& sets) {
  MIGHTY_ASSERT(params.cut_size <= Cut::max_size);
  MIGHTY_ASSERT(sets.size() == mig.num_nodes());
  std::vector<bool> in_scope(mig.num_nodes(), false);
  for (const uint32_t n : scope) in_scope[n] = true;

  // Leaf decisions must never read another shard's slots: out-of-scope
  // fanins are cut off by value, exactly as the boundary mask would.
  auto forced_leaf = [&](uint32_t f) {
    return !in_scope[f] ||
           (params.boundary != nullptr && f < params.boundary->size() &&
            (*params.boundary)[f]);
  };
  for (const uint32_t n : scope) {
    MIGHTY_ASSERT(mig.is_gate(n));
    sets[n].clear();
    build_node_cuts(mig, params, n, forced_leaf, sets, sets[n]);
  }
}

uint64_t total_cut_count(const std::vector<std::vector<Cut>>& cut_sets) {
  uint64_t total = 0;
  for (const auto& set : cut_sets) total += set.size();
  return total;
}

}  // namespace mighty::cuts
