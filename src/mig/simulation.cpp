#include "mig/simulation.hpp"

#include "util/assert.hpp"
#include <stdexcept>

namespace mighty::mig {

std::vector<uint64_t> simulate_words(const Mig& mig, const std::vector<uint64_t>& pi_words) {
  MIGHTY_ASSERT(pi_words.size() == mig.num_pis());
  std::vector<uint64_t> words(mig.num_nodes(), 0);
  for (uint32_t i = 0; i < mig.num_pis(); ++i) words[1 + i] = pi_words[i];
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!mig.is_gate(n)) continue;
    const auto& f = mig.fanins(n);
    const uint64_t a = resolve(words, f[0]);
    const uint64_t b = resolve(words, f[1]);
    const uint64_t c = resolve(words, f[2]);
    words[n] = (a & b) | (a & c) | (b & c);
  }
  return words;
}

std::vector<tt::TruthTable> simulate_truth_tables(const Mig& mig) {
  if (mig.num_pis() > tt::TruthTable::max_vars) {
    throw std::invalid_argument("truth-table simulation limited to 6 inputs");
  }
  const uint32_t n = mig.num_pis();
  std::vector<uint64_t> pi_words(n);
  for (uint32_t i = 0; i < n; ++i) pi_words[i] = tt::TruthTable::var_mask(i);
  const auto words = simulate_words(mig, pi_words);
  std::vector<tt::TruthTable> tables;
  tables.reserve(words.size());
  for (const uint64_t w : words) tables.emplace_back(n, w);
  return tables;
}

std::vector<tt::TruthTable> output_truth_tables(const Mig& mig) {
  const auto tables = simulate_truth_tables(mig);
  std::vector<tt::TruthTable> result;
  result.reserve(mig.num_pos());
  for (const Signal s : mig.outputs()) {
    result.push_back(s.is_complemented() ? ~tables[s.index()] : tables[s.index()]);
  }
  return result;
}

tt::TruthTable simulate_cut(const Mig& mig, uint32_t root,
                            const std::vector<uint32_t>& leaves) {
  MIGHTY_ASSERT(leaves.size() <= tt::TruthTable::max_vars);
  const auto k = static_cast<uint32_t>(leaves.size());

  // Depth-first evaluation from the root down to the leaves, memoized per
  // node.  Uses an explicit stack; cones can be deep in large networks.
  std::unordered_map<uint32_t, tt::TruthTable> value;
  value.reserve(64);
  value[Mig::constant_node] = tt::TruthTable::constant(k, false);
  for (uint32_t i = 0; i < k; ++i) value[leaves[i]] = tt::TruthTable::projection(k, i);

  std::vector<uint32_t> stack{root};
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    if (value.count(n)) {
      stack.pop_back();
      continue;
    }
    if (!mig.is_gate(n)) {
      throw std::invalid_argument("cut leaves do not cover a terminal");
    }
    const auto& f = mig.fanins(n);
    bool ready = true;
    for (const Signal s : f) {
      if (!value.count(s.index())) {
        if (ready) stack.push_back(s.index());
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    auto get = [&](Signal s) {
      const auto& t = value.at(s.index());
      return s.is_complemented() ? ~t : t;
    };
    value.emplace(n, tt::TruthTable::maj(get(f[0]), get(f[1]), get(f[2])));
  }
  return value.at(root);
}

}  // namespace mighty::mig
