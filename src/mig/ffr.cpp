#include "mig/ffr.hpp"

namespace mighty::ffr {

FfrPartition compute_ffrs(const mig::Mig& mig) {
  const uint32_t n = mig.num_nodes();
  FfrPartition p;
  p.region_root.resize(n);
  p.is_root.assign(n, false);

  const auto fanout = mig.compute_fanout_counts();

  // Drivers of primary outputs are always roots, as are multi-fanout gates.
  std::vector<bool> drives_po(n, false);
  for (const mig::Signal s : mig.outputs()) drives_po[s.index()] = true;

  for (uint32_t i = 0; i < n; ++i) {
    if (!mig.is_gate(i)) {
      p.region_root[i] = i;
      continue;
    }
    p.is_root[i] = drives_po[i] || fanout[i] != 1;
  }

  // Single-fanout gates inherit the region of their unique parent.  Since a
  // child's unique parent has a larger index (nodes are topologically
  // ordered), a reverse sweep resolves every region in one pass once parents
  // are known.
  std::vector<uint32_t> parent(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    if (!mig.is_gate(i)) continue;
    for (const mig::Signal s : mig.fanins(i)) parent[s.index()] = i;
  }
  for (uint32_t i = n; i-- > 0;) {
    if (!mig.is_gate(i)) continue;
    if (p.is_root[i]) {
      p.region_root[i] = i;
    } else if (fanout[i] == 0) {
      // Dangling gate: its own (degenerate) region.
      p.region_root[i] = i;
      p.is_root[i] = true;
    } else {
      p.region_root[i] = p.region_root[parent[i]];
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (mig.is_gate(i) && p.is_root[i]) p.roots.push_back(i);
  }
  return p;
}

std::vector<bool> ffr_boundary(const FfrPartition& partition) {
  std::vector<bool> boundary(partition.is_root.size(), false);
  for (uint32_t i = 0; i < partition.is_root.size(); ++i) {
    boundary[i] = partition.is_root[i];
  }
  return boundary;
}

}  // namespace mighty::ffr
