#pragma once

#include <cstdint>
#include <vector>

#include "mig/mig.hpp"

/// \file ffr.hpp
/// \brief Fanout-free regions (paper Sec. IV-C).
///
/// A fanout-free region (FFR) is a maximal connected subgraph in which every
/// internal node has exactly one fanout, rooted at a node that has multiple
/// fanouts or drives a primary output.  Partitioning the MIG into FFRs before
/// functional hashing both speeds the algorithm up and avoids undoing the
/// sharing introduced by structural hashing.

namespace mighty::ffr {

struct FfrPartition {
  /// For every node, the root of its fanout-free region (roots map to
  /// themselves; terminals map to themselves).
  std::vector<uint32_t> region_root;
  /// True for nodes that are FFR roots (multi-fanout gates and PO drivers).
  std::vector<bool> is_root;
  /// The roots in topological order.
  std::vector<uint32_t> roots;
};

/// Computes the FFR partition of the network.
FfrPartition compute_ffrs(const mig::Mig& mig);

/// A boundary mask for cut enumeration: true for every node that must not be
/// a cut-internal node (all FFR roots).  Terminals are included for
/// uniformity; the enumerator already treats them as leaves.
std::vector<bool> ffr_boundary(const FfrPartition& partition);

}  // namespace mighty::ffr
