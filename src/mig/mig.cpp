#include "mig/mig.hpp"

#include <algorithm>
#include "util/assert.hpp"

namespace mighty::mig {

Mig::Mig() {
  // Node 0 is the constant-0 terminal; its fanins point to itself.
  nodes_.push_back(Node{{Signal(0, false), Signal(0, false), Signal(0, false)}});
}

Signal Mig::create_pi() {
  MIGHTY_ASSERT(num_gates() == 0 && "PIs must be created before any gate");
  nodes_.push_back(Node{{Signal(0, false), Signal(0, false), Signal(0, false)}});
  ++num_pis_;
  return Signal(num_nodes() - 1, false);
}

std::vector<Signal> Mig::create_pis(uint32_t n) {
  std::vector<Signal> pis;
  pis.reserve(n);
  for (uint32_t i = 0; i < n; ++i) pis.push_back(create_pi());
  return pis;
}

Signal Mig::create_maj(Signal a, Signal b, Signal c) {
  // Canonical fanin order; majority is fully symmetric.
  if (b < a) std::swap(a, b);
  if (c < b) std::swap(b, c);
  if (b < a) std::swap(a, b);

  // Trivial simplifications: <xxy> = x and <x!xy> = y.  After sorting, equal
  // indices are adjacent.
  if (a == b) return a;
  if (b == c) return b;
  if (a.index() == b.index()) return c;  // a == !b
  if (b.index() == c.index()) return a;  // b == !c

  // Self-duality normalization: with two or more complemented fanins, flip
  // all three and complement the output, so each function has one canonical
  // node.  Flipping preserves the index-sorted order.
  bool output_complemented = false;
  const int complemented = (a.is_complemented() ? 1 : 0) + (b.is_complemented() ? 1 : 0) +
                           (c.is_complemented() ? 1 : 0);
  if (complemented >= 2) {
    a = !a;
    b = !b;
    c = !c;
    output_complemented = true;
  }

  const FaninKey key{{a.raw(), b.raw(), c.raw()}};
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return Signal(it->second, output_complemented);
  }
  nodes_.push_back(Node{{a, b, c}});
  const uint32_t index = num_nodes() - 1;
  strash_.emplace(key, index);
  return Signal(index, output_complemented);
}

Signal Mig::create_xor(Signal a, Signal b) {
  // a ^ b = (a | b) & !(a & b) = <0, <1ab>, !<0ab>>.
  const Signal conj = create_and(a, b);
  const Signal disj = create_or(a, b);
  return create_and(disj, !conj);
}

Signal Mig::create_ite(Signal sel, Signal then_sig, Signal else_sig) {
  const Signal t = create_and(sel, then_sig);
  const Signal e = create_and(!sel, else_sig);
  return create_or(t, e);
}

Signal Mig::create_xor3(Signal a, Signal b, Signal c) {
  // The full-adder sum of Fig. 1: s = <!<abc>, <ab!c>, c> realizes a^b^c with
  // two gates on top of the carry <abc>.
  const Signal carry = create_maj(a, b, c);
  const Signal mid = create_maj(a, b, !c);
  return create_maj(!carry, mid, c);
}

void Mig::create_po(Signal s) { outputs_.push_back(s); }

std::vector<bool> Mig::live_mask() const {
  std::vector<bool> live(num_nodes(), false);
  std::vector<uint32_t> stack;
  for (const Signal s : outputs_) {
    if (!live[s.index()]) {
      live[s.index()] = true;
      stack.push_back(s.index());
    }
  }
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    if (!is_gate(n)) continue;
    for (const Signal f : fanins(n)) {
      if (!live[f.index()]) {
        live[f.index()] = true;
        stack.push_back(f.index());
      }
    }
  }
  return live;
}

uint32_t Mig::count_live_gates() const {
  const auto live = live_mask();
  uint32_t count = 0;
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (live[n] && is_gate(n)) ++count;
  }
  return count;
}

std::vector<uint32_t> Mig::compute_levels() const {
  std::vector<uint32_t> level(num_nodes(), 0);
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (!is_gate(n)) continue;
    uint32_t max_level = 0;
    for (const Signal f : fanins(n)) {
      max_level = std::max(max_level, level[f.index()]);
    }
    level[n] = max_level + 1;
  }
  return level;
}

uint32_t Mig::depth() const {
  const auto level = compute_levels();
  uint32_t d = 0;
  for (const Signal s : outputs_) d = std::max(d, level[s.index()]);
  return d;
}

std::vector<uint32_t> Mig::compute_fanout_counts() const {
  std::vector<uint32_t> fanout(num_nodes(), 0);
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (!is_gate(n)) continue;
    for (const Signal f : fanins(n)) ++fanout[f.index()];
  }
  for (const Signal s : outputs_) ++fanout[s.index()];
  return fanout;
}

Mig Mig::cleanup(std::vector<Signal>* old_to_new) const {
  Mig result;
  std::vector<Signal> map(num_nodes(), result.get_constant(false));
  for (uint32_t i = 0; i < num_pis_; ++i) map[1 + i] = result.create_pi();

  const auto live = live_mask();
  for (uint32_t n = 0; n < num_nodes(); ++n) {
    if (!live[n] || !is_gate(n)) continue;
    const auto& f = fanins(n);
    map[n] = result.create_maj(map[f[0].index()] ^ f[0].is_complemented(),
                               map[f[1].index()] ^ f[1].is_complemented(),
                               map[f[2].index()] ^ f[2].is_complemented());
  }
  for (const Signal s : outputs_) {
    result.create_po(map[s.index()] ^ s.is_complemented());
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return result;
}

}  // namespace mighty::mig
