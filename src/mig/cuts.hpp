#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mig/mig.hpp"

/// \file cuts.hpp
/// \brief k-feasible cut enumeration (paper Sec. II-C).
///
/// For a node v, a cut (v, L) is a set of leaves such that every path from v
/// to a terminal visits a leaf (paths to the constant node are exempt).  All
/// k-feasible cuts are generated bottom-up through the saturating union
/// `cuts(g1) (x)k cuts(g2) (x)k cuts(g3)`; the paper notes exhaustive
/// enumeration is feasible for k <= 6.  The optimizer uses k = 4.

namespace mighty::cuts {

/// A cut: sorted leaf node indices plus a Bloom signature for fast
/// subset/overflow tests.
struct Cut {
  static constexpr uint32_t max_size = 6;

  std::array<uint32_t, max_size> leaves{};
  uint8_t size = 0;
  uint64_t signature = 0;

  bool operator==(const Cut& other) const {
    if (size != other.size) return false;
    for (uint8_t i = 0; i < size; ++i) {
      if (leaves[i] != other.leaves[i]) return false;
    }
    return true;
  }

  /// True iff this cut's leaves are a subset of `other`'s (=> dominates it).
  bool subset_of(const Cut& other) const;

  /// The leaves as a vector (for interfacing with simulate_cut).
  std::vector<uint32_t> leaf_vector() const {
    return std::vector<uint32_t>(leaves.begin(), leaves.begin() + size);
  }

  static uint64_t hash_leaf(uint32_t leaf) { return uint64_t{1} << (leaf % 64); }
};

/// Merges two sorted cuts; returns false if the union exceeds `k` leaves.
bool merge_cuts(const Cut& a, const Cut& b, uint32_t k, Cut& out);

struct CutEnumerationParams {
  uint32_t cut_size = 4;
  /// Maximum cuts stored per node (0 = exhaustive).
  uint32_t max_cuts = 0;
  /// Include the trivial cut {v} in each gate's set (needed when cut sets are
  /// merged upward; the optimizer skips trivial cuts at replacement time).
  bool include_trivial = true;
  /// Optional mask of nodes that must not appear as cut-internal nodes: when
  /// such a node feeds a gate, only its trivial cut propagates upward.  Used
  /// to confine cuts to fanout-free regions (paper Sec. IV-C).
  const std::vector<bool>* boundary = nullptr;
};

/// Per-node cut sets, indexed by node id.  The constant node has the single
/// empty cut; PIs have their trivial cut.
std::vector<std::vector<Cut>> enumerate_cuts(const mig::Mig& mig,
                                             const CutEnumerationParams& params = {});

/// Shard-scoped enumeration: computes cut sets for exactly the gates in
/// `scope` (ascending node ids), writing each gate's set into `sets[gate]`.
/// Fanins outside the scope — and boundary nodes inside it — contribute only
/// their trivial cut (the constant node its empty cut), so a scope that is a
/// union of whole fanout-free regions reproduces, for its own nodes, exactly
/// what enumerate_cuts would compute over the full network with the same
/// boundary.  `sets` must be sized to mig.num_nodes(); concurrent calls over
/// disjoint scopes may share it, since each call touches only its own slots.
void enumerate_cuts_scoped(const mig::Mig& mig, const CutEnumerationParams& params,
                           const std::vector<uint32_t>& scope,
                           std::vector<std::vector<Cut>>& sets);

/// Total number of cuts across all nodes (reporting helper).
uint64_t total_cut_count(const std::vector<std::vector<Cut>>& cut_sets);

}  // namespace mighty::cuts
