#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

/// \file mig.hpp
/// \brief Majority-Inverter Graphs (paper Sec. II-B).
///
/// An MIG is a DAG whose only internal operation is the ternary majority
/// <abc>; edges carry optional complementation.  Terminals are the constant-0
/// node (index 0) and the primary inputs.  Nodes are stored in creation order,
/// which is always a topological order because fanins must exist before their
/// fanout.

namespace mighty::mig {

/// A (possibly complemented) pointer to a node: `index << 1 | complement`.
class Signal {
public:
  constexpr Signal() = default;
  constexpr Signal(uint32_t index, bool complemented)
      : data_((index << 1) | (complemented ? 1u : 0u)) {}
  static constexpr Signal from_raw(uint32_t raw) {
    Signal s;
    s.data_ = raw;
    return s;
  }

  constexpr uint32_t index() const { return data_ >> 1; }
  constexpr bool is_complemented() const { return (data_ & 1) != 0; }
  constexpr uint32_t raw() const { return data_; }

  constexpr Signal operator!() const { return from_raw(data_ ^ 1); }
  /// Complements the signal iff `complement` holds.
  constexpr Signal operator^(bool complement) const {
    return from_raw(data_ ^ (complement ? 1u : 0u));
  }

  constexpr bool operator==(const Signal&) const = default;
  constexpr bool operator<(const Signal& other) const { return data_ < other.data_; }

private:
  uint32_t data_ = 0;
};

class Mig {
public:
  /// Index of the constant-0 node.
  static constexpr uint32_t constant_node = 0;

  Mig();

  /// The constant signal (`value` selects polarity).
  Signal get_constant(bool value) const { return Signal(constant_node, value); }

  /// Adds a primary input.  All primary inputs must be created before gates.
  Signal create_pi();
  /// Creates `n` primary inputs and returns their signals.
  std::vector<Signal> create_pis(uint32_t n);

  /// Creates (or looks up) a majority gate.  Applies the trivial
  /// simplifications <aab> = a and <a!ab> = b, canonicalizes the fanin order,
  /// normalizes polarities through self-duality, and structurally hashes.
  Signal create_maj(Signal a, Signal b, Signal c);

  // Derived operators (paper Sec. II-B: <0ab> = a AND b, <1ab> = a OR b).
  Signal create_and(Signal a, Signal b) { return create_maj(get_constant(false), a, b); }
  Signal create_or(Signal a, Signal b) { return create_maj(get_constant(true), a, b); }
  Signal create_xor(Signal a, Signal b);
  Signal create_ite(Signal sel, Signal then_sig, Signal else_sig);
  /// Three-input exclusive or (used by the adder generators; 3 gates).
  Signal create_xor3(Signal a, Signal b, Signal c);

  /// Registers a primary output.
  void create_po(Signal s);

  // --- structural queries ----------------------------------------------------

  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }
  uint32_t num_pis() const { return num_pis_; }
  uint32_t num_pos() const { return static_cast<uint32_t>(outputs_.size()); }
  /// Number of majority gates ever created (including ones no longer
  /// reachable from the outputs; see count_live_gates()).
  uint32_t num_gates() const { return num_nodes() - 1 - num_pis_; }

  bool is_constant(uint32_t index) const { return index == constant_node; }
  bool is_pi(uint32_t index) const { return index >= 1 && index <= num_pis_; }
  bool is_gate(uint32_t index) const { return index > num_pis_; }
  /// For PIs: the 0-based input position.
  uint32_t pi_index(uint32_t index) const { return index - 1; }

  const std::array<Signal, 3>& fanins(uint32_t index) const {
    return nodes_[index].fanin;
  }
  const std::vector<Signal>& outputs() const { return outputs_; }
  Signal output(uint32_t i) const { return outputs_[i]; }
  void replace_output(uint32_t i, Signal s) { outputs_[i] = s; }

  // --- derived data ------------------------------------------------------------

  /// Gate count of the logic reachable from the outputs ("size" in the paper).
  uint32_t count_live_gates() const;

  /// Level of every node (constant and PIs at level 0; a gate is one above
  /// its highest fanin).  Computed over all nodes.
  std::vector<uint32_t> compute_levels() const;

  /// Longest output-to-terminal path in visited gates ("depth" in the paper;
  /// the full adder of Fig. 1 has depth 2).
  uint32_t depth() const;

  /// Number of gate fanins plus primary outputs referring to each node.
  std::vector<uint32_t> compute_fanout_counts() const;

  /// Copies the output-reachable logic into a fresh MIG (with the same number
  /// of PIs) and returns it; `old_to_new`, if given, receives the mapping of
  /// old node indices to new signals (identity polarity).
  Mig cleanup(std::vector<Signal>* old_to_new = nullptr) const;

  /// Marks reachability from the outputs; element i is true iff node i is
  /// needed.  Constants/PIs are included when referenced.
  std::vector<bool> live_mask() const;

private:
  struct Node {
    std::array<Signal, 3> fanin;
  };

  struct FaninKey {
    std::array<uint32_t, 3> raw;
    bool operator==(const FaninKey&) const = default;
  };
  struct FaninKeyHash {
    size_t operator()(const FaninKey& k) const {
      uint64_t h = 0xcbf29ce484222325ull;
      for (const uint32_t v : k.raw) {
        h ^= v;
        h *= 0x100000001b3ull;
      }
      return static_cast<size_t>(h);
    }
  };

  std::vector<Node> nodes_;
  std::vector<Signal> outputs_;
  uint32_t num_pis_ = 0;
  std::unordered_map<FaninKey, uint32_t, FaninKeyHash> strash_;
};

}  // namespace mighty::mig
