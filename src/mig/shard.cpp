#include "mig/shard.hpp"

#include <algorithm>
#include <unordered_set>

namespace mighty::shard {

ShardPlan plan_ffr_shards(const mig::Mig& mig, const ffr::FfrPartition& partition,
                          uint32_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  const auto live = mig.live_mask();

  // Member gates per live region, keyed by root.  region_root is total on
  // gates, so one sweep buckets everything; members come out ascending.
  std::vector<uint32_t> live_roots;
  std::vector<uint32_t> region_size(mig.num_nodes(), 0);
  for (const uint32_t root : partition.roots) {
    if (live[root]) live_roots.push_back(root);
  }
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (mig.is_gate(n) && live[n]) ++region_size[partition.region_root[n]];
  }

  ShardPlan plan;
  plan.shards.resize(std::min<size_t>(num_shards, std::max<size_t>(live_roots.size(), 1)));
  if (live_roots.empty()) return plan;

  // Greedy LPT: biggest regions first onto the least-loaded shard.  Ties are
  // broken by (size, root) resp. shard index, so the plan is a deterministic
  // function of the network alone.
  std::vector<uint32_t> by_size = live_roots;
  std::stable_sort(by_size.begin(), by_size.end(), [&](uint32_t a, uint32_t b) {
    return region_size[a] != region_size[b] ? region_size[a] > region_size[b]
                                            : a < b;
  });
  std::vector<uint64_t> load(plan.shards.size(), 0);
  std::vector<uint32_t> shard_of_root(mig.num_nodes(), 0);
  for (const uint32_t root : by_size) {
    const size_t target =
        std::min_element(load.begin(), load.end()) - load.begin();
    shard_of_root[root] = static_cast<uint32_t>(target);
    load[target] += region_size[root];
    plan.shards[target].roots.push_back(root);
  }
  for (auto& shard : plan.shards) std::sort(shard.roots.begin(), shard.roots.end());

  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!mig.is_gate(n) || !live[n]) continue;
    plan.shards[shard_of_root[partition.region_root[n]]].nodes.push_back(n);
  }
  return plan;
}

RegionMembers collect_region_members(const mig::Mig& mig,
                                     const ffr::FfrPartition& partition) {
  RegionMembers result;
  const auto live = mig.live_mask();
  result.region_index.assign(mig.num_nodes(), 0);
  for (const uint32_t root : partition.roots) {
    if (!live[root]) continue;
    result.region_index[root] = static_cast<uint32_t>(result.live_roots.size());
    result.live_roots.push_back(root);
  }
  result.members.resize(result.live_roots.size());
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!mig.is_gate(n) || !live[n]) continue;
    result.members[result.region_index[partition.region_root[n]]].push_back(n);
  }
  return result;
}

std::vector<uint32_t> region_inputs(const mig::Mig& mig,
                                    const std::vector<uint32_t>& members) {
  std::vector<uint32_t> inputs;
  // The set only deduplicates; the vector carries the deterministic
  // first-encounter order.  (A linear probe of `inputs` would go quadratic
  // on chain-shaped networks that collapse into one huge region.)
  std::unordered_set<uint32_t> seen;
  for (const uint32_t v : members) {
    for (const mig::Signal s : mig.fanins(v)) {
      const uint32_t f = s.index();
      if (mig.is_constant(f)) continue;
      if (mig.is_gate(f) && std::binary_search(members.begin(), members.end(), f)) {
        continue;  // in-region gate
      }
      if (seen.insert(f).second) inputs.push_back(f);
    }
  }
  return inputs;
}

mig::Signal splice_region(const mig::Mig& net, const std::vector<uint32_t>& inputs,
                          mig::Signal chosen,
                          const std::vector<mig::Signal>& committed_sig,
                          mig::Mig& result) {
  const auto keep = net.live_mask();
  std::vector<mig::Signal> map(net.num_nodes(), result.get_constant(false));
  for (uint32_t j = 0; j < inputs.size(); ++j) {
    map[1 + j] = committed_sig[inputs[j]];
  }
  for (uint32_t p = 0; p < net.num_nodes(); ++p) {
    if (!net.is_gate(p) || !keep[p]) continue;
    const auto& f = net.fanins(p);
    map[p] = result.create_maj(map[f[0].index()] ^ f[0].is_complemented(),
                               map[f[1].index()] ^ f[1].is_complemented(),
                               map[f[2].index()] ^ f[2].is_complemented());
  }
  return map[chosen.index()] ^ chosen.is_complemented();
}

std::vector<uint32_t> region_levels(const mig::Mig& mig,
                                    const ffr::FfrPartition& partition) {
  std::vector<uint32_t> level(mig.num_nodes(), 0);
  // Nodes are topologically ordered, so every gate's fanin regions are
  // resolved before its own root is finalized; accumulate into the root.
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!mig.is_gate(n)) continue;
    const uint32_t root = partition.region_root[n];
    for (const mig::Signal s : mig.fanins(n)) {
      const uint32_t f = s.index();
      if (!mig.is_gate(f)) continue;
      const uint32_t f_root = partition.region_root[f];
      if (f_root == root) continue;  // in-region edge
      level[root] = std::max(level[root], level[f_root] + 1);
    }
  }
  return level;
}

}  // namespace mighty::shard
