#include <algorithm>
#include <array>

#include "mig/algebra/algebra.hpp"

/// Algebraic size reduction: reverse distributivity
/// <<xyu><xyv>z> -> <xy<uvz>> (one gate saved when the pair shares two
/// operands and the shared gates have no other fanout), plus the built-in
/// majority simplifications of create_maj.

namespace mighty::algebra {

namespace {

struct GateView {
  bool is_gate = false;
  std::array<mig::Signal, 3> fanin;
};

GateView view_as_gate(const mig::Mig& m, mig::Signal s) {
  GateView v;
  if (!m.is_gate(s.index())) return v;
  v.is_gate = true;
  const auto& f = m.fanins(s.index());
  for (int i = 0; i < 3; ++i) {
    v.fanin[static_cast<size_t>(i)] =
        s.is_complemented() ? !f[static_cast<size_t>(i)] : f[static_cast<size_t>(i)];
  }
  return v;
}

}  // namespace

mig::Mig size_optimize(const mig::Mig& m, const SizeOptParams& params,
                       AlgebraStats* stats) {
  AlgebraStats local;
  local.size_before = m.count_live_gates();
  local.depth_before = m.depth();

  mig::Mig source = m.cleanup();
  for (uint32_t round = 0; round < params.max_rounds; ++round) {
    ++local.rounds;
    mig::Mig next;
    std::vector<mig::Signal> map(source.num_nodes(), next.get_constant(false));
    for (uint32_t i = 0; i < source.num_pis(); ++i) map[1 + i] = next.create_pi();
    const auto fanout = source.compute_fanout_counts();

    bool changed = false;
    for (uint32_t n = 0; n < source.num_nodes(); ++n) {
      if (!source.is_gate(n)) continue;
      const auto& f = source.fanins(n);
      std::array<mig::Signal, 3> in;
      std::array<uint32_t, 3> old_fanout{};
      for (int i = 0; i < 3; ++i) {
        const auto& s = f[static_cast<size_t>(i)];
        in[static_cast<size_t>(i)] = map[s.index()] ^ s.is_complemented();
        old_fanout[static_cast<size_t>(i)] = fanout[s.index()];
      }

      mig::Signal result;
      bool rewritten = false;
      // Try every pair of fanins as the shared-gate pair (A, B).
      for (int i = 0; i < 3 && !rewritten; ++i) {
        for (int j = i + 1; j < 3 && !rewritten; ++j) {
          const int k = 3 - i - j;
          const GateView a = view_as_gate(next, in[static_cast<size_t>(i)]);
          const GateView b = view_as_gate(next, in[static_cast<size_t>(j)]);
          if (!a.is_gate || !b.is_gate) continue;
          // Only profitable when both shared gates die afterwards.
          if (old_fanout[static_cast<size_t>(i)] > 1 ||
              old_fanout[static_cast<size_t>(j)] > 1) {
            continue;
          }
          // Find two common operands x, y of A and B.
          std::vector<mig::Signal> common;
          std::vector<mig::Signal> a_rest, b_rest;
          std::array<bool, 3> b_used{};
          for (const mig::Signal sa : a.fanin) {
            bool matched = false;
            for (int t = 0; t < 3; ++t) {
              if (!b_used[static_cast<size_t>(t)] &&
                  b.fanin[static_cast<size_t>(t)] == sa) {
                b_used[static_cast<size_t>(t)] = true;
                common.push_back(sa);
                matched = true;
                break;
              }
            }
            if (!matched) a_rest.push_back(sa);
          }
          for (int t = 0; t < 3; ++t) {
            if (!b_used[static_cast<size_t>(t)]) {
              b_rest.push_back(b.fanin[static_cast<size_t>(t)]);
            }
          }
          if (common.size() == 2 && a_rest.size() == 1 && b_rest.size() == 1) {
            // <<xyu><xyv>z> = <xy<uvz>>
            const mig::Signal inner =
                next.create_maj(a_rest[0], b_rest[0], in[static_cast<size_t>(k)]);
            result = next.create_maj(common[0], common[1], inner);
            rewritten = true;
            ++local.applied_distributivity;
          }
        }
      }
      if (!rewritten) {
        result = next.create_maj(in[0], in[1], in[2]);
      } else {
        changed = true;
      }
      map[n] = result;
    }
    for (const mig::Signal o : source.outputs()) {
      next.create_po(map[o.index()] ^ o.is_complemented());
    }
    next = next.cleanup();
    if (!changed || next.count_live_gates() >= source.count_live_gates()) {
      if (next.count_live_gates() < source.count_live_gates()) source = std::move(next);
      break;
    }
    source = std::move(next);
  }

  local.size_after = source.count_live_gates();
  local.depth_after = source.depth();
  if (stats != nullptr) *stats = local;
  return source;
}

}  // namespace mighty::algebra
