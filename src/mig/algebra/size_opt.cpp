#include <algorithm>
#include <array>
#include <unordered_map>

#include "mig/algebra/algebra.hpp"
#include "mig/ffr.hpp"
#include "mig/shard.hpp"
#include "util/thread_pool.hpp"

/// Algebraic size reduction: reverse distributivity
/// <<xyu><xyv>z> -> <xy<uvz>> (one gate saved when the pair shares two
/// operands and the shared gates have no other fanout), plus the built-in
/// majority simplifications of create_maj.
///
/// The rule requires both shared gates to be single-fanout, and single-
/// fanout gates belong to the same fanout-free region as their unique
/// fanout — so a round of rewriting decomposes exactly like the functional-
/// hashing passes: every region rewrites independently (in a private network
/// over the region's inputs, concurrently when a pool is given), and a
/// deterministic sequential splice replays the results.  Output is
/// bit-identical for any pool size.

namespace mighty::algebra {

namespace {

struct GateView {
  bool is_gate = false;
  std::array<mig::Signal, 3> fanin;
};

GateView view_as_gate(const mig::Mig& m, mig::Signal s) {
  GateView v;
  if (!m.is_gate(s.index())) return v;
  v.is_gate = true;
  const auto& f = m.fanins(s.index());
  for (int i = 0; i < 3; ++i) {
    v.fanin[static_cast<size_t>(i)] =
        s.is_complemented() ? !f[static_cast<size_t>(i)] : f[static_cast<size_t>(i)];
  }
  return v;
}

/// One region's rewritten implementation over its inputs.
struct RegionOutcome {
  mig::Mig net;                  ///< private network; PI j realizes inputs[j]
  std::vector<uint32_t> inputs;  ///< original node ids feeding the region
  mig::Signal chosen;            ///< the root's implementation in `net`
  uint32_t applied = 0;          ///< distributivity applications
};

/// Rebuilds one region with the reverse-distributivity rule.  Reads only
/// the source network and the global fanout counts.
RegionOutcome rewrite_region(const mig::Mig& source,
                             const std::vector<uint32_t>& fanout,
                             const std::vector<uint32_t>& members) {
  RegionOutcome outcome;
  const uint32_t root = members.back();  // largest index = the region root

  // Region-local mapping of original node ids to private signals (a full
  // per-node array per region would dwarf the actual rewriting work).
  outcome.inputs = shard::region_inputs(source, members);
  std::unordered_map<uint32_t, mig::Signal> map;
  map.emplace(mig::Mig::constant_node, outcome.net.get_constant(false));
  for (const uint32_t f : outcome.inputs) {
    map.emplace(f, outcome.net.create_pi());
  }

  for (const uint32_t v : members) {
    const auto& f = source.fanins(v);
    std::array<mig::Signal, 3> in;
    std::array<uint32_t, 3> old_fanout{};
    for (int i = 0; i < 3; ++i) {
      const auto& s = f[static_cast<size_t>(i)];
      in[static_cast<size_t>(i)] = map.at(s.index()) ^ s.is_complemented();
      old_fanout[static_cast<size_t>(i)] = fanout[s.index()];
    }

    mig::Signal result;
    bool rewritten = false;
    // Try every pair of fanins as the shared-gate pair (A, B).
    for (int i = 0; i < 3 && !rewritten; ++i) {
      for (int j = i + 1; j < 3 && !rewritten; ++j) {
        const int k = 3 - i - j;
        const GateView a = view_as_gate(outcome.net, in[static_cast<size_t>(i)]);
        const GateView b = view_as_gate(outcome.net, in[static_cast<size_t>(j)]);
        if (!a.is_gate || !b.is_gate) continue;
        // Only profitable when both shared gates die afterwards.
        if (old_fanout[static_cast<size_t>(i)] > 1 ||
            old_fanout[static_cast<size_t>(j)] > 1) {
          continue;
        }
        // Find two common operands x, y of A and B.
        std::vector<mig::Signal> common;
        std::vector<mig::Signal> a_rest, b_rest;
        std::array<bool, 3> b_used{};
        for (const mig::Signal sa : a.fanin) {
          bool matched = false;
          for (int t = 0; t < 3; ++t) {
            if (!b_used[static_cast<size_t>(t)] &&
                b.fanin[static_cast<size_t>(t)] == sa) {
              b_used[static_cast<size_t>(t)] = true;
              common.push_back(sa);
              matched = true;
              break;
            }
          }
          if (!matched) a_rest.push_back(sa);
        }
        for (int t = 0; t < 3; ++t) {
          if (!b_used[static_cast<size_t>(t)]) {
            b_rest.push_back(b.fanin[static_cast<size_t>(t)]);
          }
        }
        if (common.size() == 2 && a_rest.size() == 1 && b_rest.size() == 1) {
          // <<xyu><xyv>z> = <xy<uvz>>
          const mig::Signal inner =
              outcome.net.create_maj(a_rest[0], b_rest[0], in[static_cast<size_t>(k)]);
          result = outcome.net.create_maj(common[0], common[1], inner);
          rewritten = true;
          ++outcome.applied;
        }
      }
    }
    if (!rewritten) {
      result = outcome.net.create_maj(in[0], in[1], in[2]);
    }
    map[v] = result;
  }

  outcome.chosen = map.at(root);
  outcome.net.create_po(outcome.chosen);
  return outcome;
}

}  // namespace

mig::Mig size_optimize(const mig::Mig& m, const SizeOptParams& params,
                       AlgebraStats* stats) {
  AlgebraStats local;
  local.size_before = m.count_live_gates();
  local.depth_before = m.depth();

  mig::Mig source = m.cleanup();
  for (uint32_t round = 0; round < params.max_rounds; ++round) {
    ++local.rounds;
    const auto partition = ffr::compute_ffrs(source);
    const auto regions = shard::collect_region_members(source, partition);
    const auto fanout = source.compute_fanout_counts();

    // Rewrite regions concurrently; regions are independent for this rule.
    const uint32_t parallelism = params.pool ? params.pool->parallelism() : 1;
    const auto plan =
        shard::plan_ffr_shards(source, partition, parallelism > 1 ? parallelism * 4 : 1);
    std::vector<RegionOutcome> outcomes(regions.live_roots.size());
    auto run_shard = [&](size_t s) {
      for (const uint32_t root : plan.shards[s].roots) {
        const uint32_t r = regions.region_index[root];
        outcomes[r] = rewrite_region(source, fanout, regions.members[r]);
      }
    };
    if (params.pool != nullptr) {
      params.pool->parallel_for(plan.shards.size(), run_shard);
    } else {
      for (size_t s = 0; s < plan.shards.size(); ++s) run_shard(s);
    }

    // Deterministic splice in topological root order.  Replaying only live
    // region cones leaves at most stray strash-simplified gates, so rounds
    // skip the full cleanup copy and decide on reachable-gate counts; one
    // final cleanup below restores the compact-network guarantee.
    mig::Mig next;
    std::vector<mig::Signal> committed(source.num_nodes(), next.get_constant(false));
    for (uint32_t i = 0; i < source.num_pis(); ++i) {
      committed[1 + i] = next.create_pi();
    }
    bool changed = false;
    for (const uint32_t root : regions.live_roots) {
      const RegionOutcome& outcome = outcomes[regions.region_index[root]];
      if (outcome.applied > 0) changed = true;
      local.applied_distributivity += outcome.applied;
      committed[root] = shard::splice_region(outcome.net, outcome.inputs,
                                             outcome.chosen, committed, next);
    }
    for (const mig::Signal o : source.outputs()) {
      next.create_po(committed[o.index()] ^ o.is_complemented());
    }

    if (!changed || next.count_live_gates() >= source.count_live_gates()) {
      if (next.count_live_gates() < source.count_live_gates()) source = std::move(next);
      break;
    }
    source = std::move(next);
  }

  // Callers rely on size_optimize returning a compact network (every node
  // output-reachable), as the pre-shard implementation guaranteed.
  source = source.cleanup();

  local.size_after = source.count_live_gates();
  local.depth_after = source.depth();
  if (stats != nullptr) *stats = local;
  return source;
}

}  // namespace mighty::algebra
