#include "mig/algebra/algebra.hpp"

namespace mighty::algebra {

LevelTracker::LevelTracker(mig::Mig& m) : mig_(m) { refresh(); }

void LevelTracker::refresh() {
  const uint32_t old_size = static_cast<uint32_t>(levels_.size());
  levels_.resize(mig_.num_nodes(), 0);
  for (uint32_t n = old_size; n < mig_.num_nodes(); ++n) {
    if (!mig_.is_gate(n)) {
      levels_[n] = 0;
      continue;
    }
    uint32_t max_level = 0;
    for (const mig::Signal s : mig_.fanins(n)) {
      max_level = std::max(max_level, levels_[s.index()]);
    }
    levels_[n] = max_level + 1;
  }
}

mig::Signal LevelTracker::maj(mig::Signal a, mig::Signal b, mig::Signal c) {
  const mig::Signal s = mig_.create_maj(a, b, c);
  refresh();
  return s;
}

mig::Mig baseline_optimize(const mig::Mig& m, AlgebraStats* stats) {
  AlgebraStats local;
  local.size_before = m.count_live_gates();
  local.depth_before = m.depth();

  mig::Mig current = depth_optimize(m);
  current = size_optimize(current);
  current = depth_optimize(current);

  local.size_after = current.count_live_gates();
  local.depth_after = current.depth();
  if (stats != nullptr) *stats = local;
  return current;
}

}  // namespace mighty::algebra
