#include <algorithm>
#include <array>

#include "mig/algebra/algebra.hpp"

/// Critical-path depth reduction.  The network is rebuilt in topological
/// order; for every gate whose deepest fanin dominates the other two, the
/// associativity and distributivity axioms are applied to pull the critical
/// signal closer to the output (the move set of ref. [3]).

namespace mighty::algebra {

namespace {

/// View of a (possibly complemented) fanin as a gate with polarity pushed
/// into its children (Omega.I): s = <f0 f1 f2> or !<f0 f1 f2>.
struct GateView {
  bool is_gate = false;
  std::array<mig::Signal, 3> fanin;
};

GateView view_as_gate(const mig::Mig& m, mig::Signal s) {
  GateView v;
  if (!m.is_gate(s.index())) return v;
  v.is_gate = true;
  const auto& f = m.fanins(s.index());
  for (int i = 0; i < 3; ++i) {
    v.fanin[static_cast<size_t>(i)] =
        s.is_complemented() ? !f[static_cast<size_t>(i)] : f[static_cast<size_t>(i)];
  }
  return v;
}

}  // namespace

mig::Mig depth_optimize(const mig::Mig& m, const DepthOptParams& params,
                        AlgebraStats* stats) {
  AlgebraStats local;
  local.size_before = m.count_live_gates();
  local.depth_before = m.depth();

  mig::Mig source = m.cleanup();
  const auto size_budget =
      static_cast<uint64_t>(static_cast<double>(source.count_live_gates()) *
                            params.max_growth);
  for (uint32_t round = 0; round < params.max_rounds; ++round) {
    ++local.rounds;
    // Duplicating moves (distributivity, and associativity on multi-fanout
    // grandchildren) are allowed only while the network stays inside the
    // budget; this is checked both across rounds and within the rebuild.
    const bool round_may_grow = source.count_live_gates() < size_budget;
    mig::Mig next;
    std::vector<mig::Signal> map(source.num_nodes(), next.get_constant(false));
    for (uint32_t i = 0; i < source.num_pis(); ++i) map[1 + i] = next.create_pi();
    // The tracker must see the PIs at construction: levels are refreshed only
    // by tracker.maj(), so nodes created behind its back would be read out of
    // bounds on the first level() query (found by the TSan CI leg).
    LevelTracker tracker(next);

    bool changed = false;
    for (uint32_t n = 0; n < source.num_nodes(); ++n) {
      if (!source.is_gate(n)) continue;
      const auto& f = source.fanins(n);
      std::array<mig::Signal, 3> in;
      for (int i = 0; i < 3; ++i) {
        const auto& s = f[static_cast<size_t>(i)];
        in[static_cast<size_t>(i)] = map[s.index()] ^ s.is_complemented();
      }
      // Order the mapped fanins so in[2] is the deepest.
      std::sort(in.begin(), in.end(), [&](mig::Signal a, mig::Signal b) {
        return tracker.level(a) < tracker.level(b);
      });
      const mig::Signal x = in[0];
      const mig::Signal y = in[1];
      const mig::Signal z = in[2];
      const uint32_t lx = tracker.level(x);
      const uint32_t ly = tracker.level(y);
      const uint32_t lz = tracker.level(z);

      mig::Signal result;
      bool rewritten = false;
      const GateView g = view_as_gate(next, z);
      const bool may_grow = round_may_grow && next.num_gates() < size_budget;
      if (g.is_gate && lz > ly && may_grow) {
        // Find the deepest grandchild w and the others (u, v).
        std::array<mig::Signal, 3> gc = g.fanin;
        std::sort(gc.begin(), gc.end(), [&](mig::Signal a, mig::Signal b) {
          return tracker.level(a) < tracker.level(b);
        });
        const mig::Signal u = gc[0];
        const mig::Signal v = gc[1];
        const mig::Signal w = gc[2];

        // Omega.A: <xu<yuz'>>: if z shares an operand with {x, y}, swap the
        // shallow top operand with the deep grandchild.
        // Case u' == x or v' == x (common operand x): <yx<..x..w>> -> swap y/w.
        for (const mig::Signal common : {x, y}) {
          const mig::Signal other = common == x ? y : x;
          if ((u == common || v == common) && tracker.level(w) > tracker.level(other)) {
            const mig::Signal third = (u == common) ? v : u;
            // <other common <third common w>> = <w common <third common other>>
            const mig::Signal inner = tracker.maj(third, common, other);
            result = tracker.maj(w, common, inner);
            rewritten = true;
            ++local.applied_associativity;
            break;
          }
        }
        // Psi.C complementary associativity: common operand in opposite
        // polarity: <xu<y!uz>> = <xu<yxz>>.
        if (!rewritten) {
          for (const mig::Signal common : {x, y}) {
            const mig::Signal other = common == x ? y : x;
            if ((u == !common || v == !common) &&
                tracker.level(w) > tracker.level(other)) {
              const mig::Signal third = (u == !common) ? v : u;
              // Psi.C replaces the complemented shared operand by the other
              // top operand, after which Omega.A hoists the deep grandchild:
              // <other common <third !common w>> = <other common <third other w>>
              //                                 = <w other <third other common>>.
              const mig::Signal inner = tracker.maj(third, other, common);
              result = tracker.maj(w, other, inner);
              ++local.applied_complementary;
              rewritten = true;
              break;
            }
          }
        }
        // Omega.D distributivity (left-to-right): <xy<uvw>> =
        // <<xyu><xyv>w>, profitable when w towers over x and y.
        if (!rewritten && tracker.level(w) >= std::max(lx, ly) +
                                                  params.distributivity_threshold) {
          const mig::Signal left = tracker.maj(x, y, u);
          const mig::Signal right = tracker.maj(x, y, v);
          result = tracker.maj(left, right, w);
          ++local.applied_distributivity;
          rewritten = true;
        }
      }
      if (!rewritten) {
        result = tracker.maj(x, y, z);
      } else {
        changed = true;
      }
      map[n] = result;
    }
    for (const mig::Signal o : source.outputs()) {
      next.create_po(map[o.index()] ^ o.is_complemented());
    }
    next = next.cleanup();
    if (!changed || next.depth() >= source.depth()) {
      if (next.depth() < source.depth()) source = std::move(next);
      break;
    }
    source = std::move(next);
  }

  local.size_after = source.count_live_gates();
  local.depth_after = source.depth();
  if (stats != nullptr) *stats = local;
  return source;
}

}  // namespace mighty::algebra
