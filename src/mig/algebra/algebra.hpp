#pragma once

#include "util/assert.hpp"
#include <cstdint>
#include <vector>

#include "mig/mig.hpp"

namespace mighty::util {
class ThreadPool;
}

/// \file algebra.hpp
/// \brief MIG algebraic rewriting (the paper's baseline substrate).
///
/// The paper starts from "heavily optimized" MIGs produced by the algebraic
/// depth/size optimization of the original MIG papers (refs. [3], [4]).  This
/// module implements that algebra:
///   Omega.M  majority:        <xxy> = x, <x!xy> = y   (applied by create_maj)
///   Omega.A  associativity:   <xu<yuz>> = <zu<yux>>
///   Omega.D  distributivity:  <xy<uvz>> = <<xyu><xyv>z>
///   Omega.I  inverters:       !<xyz> = <!x!y!z>        (polarity normalization)
///   Psi.C    compl. assoc.:   <xu<y!uz>> = <xu<yxz>>
/// plus greedy critical-path depth reduction and an algebraic size-reduction
/// pass built from the right-to-left distributivity.

namespace mighty::algebra {

/// Tracks node levels of a growing MIG so rewriting decisions can compare
/// depths without recomputation.
class LevelTracker {
public:
  explicit LevelTracker(mig::Mig& m);

  mig::Signal maj(mig::Signal a, mig::Signal b, mig::Signal c);
  uint32_t level(mig::Signal s) const {
    // Nodes must be created through maj() (or exist at construction);
    // anything else would read a level the tracker never computed.
    MIGHTY_ASSERT(s.index() < levels_.size());
    return levels_[s.index()];
  }
  mig::Mig& network() { return mig_; }

private:
  void refresh();
  mig::Mig& mig_;
  std::vector<uint32_t> levels_;
};

struct AlgebraStats {
  uint32_t size_before = 0, size_after = 0;
  uint32_t depth_before = 0, depth_after = 0;
  uint32_t applied_associativity = 0;
  uint32_t applied_distributivity = 0;
  uint32_t applied_complementary = 0;
  uint32_t rounds = 0;
};

struct DepthOptParams {
  /// Maximum full passes over the network.
  uint32_t max_rounds = 10;
  /// Allow distributivity moves (duplicate support gates) only when the
  /// critical fanin is at least this many levels above the others.
  uint32_t distributivity_threshold = 2;
  /// Size budget: distributivity (which duplicates logic) is suppressed once
  /// the network has grown beyond this factor of the input size; the
  /// size-neutral associativity moves keep running.  Prevents the duplication
  /// cascade on long carry/borrow chains.
  double max_growth = 2.0;
};

/// Greedy critical-path depth reduction (after ref. [3]).
mig::Mig depth_optimize(const mig::Mig& m, const DepthOptParams& params = {},
                        AlgebraStats* stats = nullptr);

struct SizeOptParams {
  uint32_t max_rounds = 4;
  /// Worker pool for the shard-parallel rewrite.  The reverse-distributivity
  /// rule only ever fires on single-fanout gate pairs, which are confined to
  /// one fanout-free region by definition, so regions rewrite independently
  /// and merge deterministically — the result is bit-identical for any pool
  /// size, including none.  Not owned.
  util::ThreadPool* pool = nullptr;
};

/// Algebraic size reduction: reverse distributivity and majority/relevance
/// simplifications (after ref. [4]).
mig::Mig size_optimize(const mig::Mig& m, const SizeOptParams& params = {},
                       AlgebraStats* stats = nullptr);

/// The paper's baseline script: interleaved depth and size passes.
mig::Mig baseline_optimize(const mig::Mig& m, AlgebraStats* stats = nullptr);

}  // namespace mighty::algebra
