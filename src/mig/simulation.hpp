#pragma once

#include <cstdint>
#include <vector>

#include "mig/mig.hpp"
#include "tt/truth_table.hpp"

/// \file simulation.hpp
/// \brief Bit-parallel simulation of MIGs.
///
/// Two flavours: full truth-table simulation for networks with at most six
/// inputs (used by the exact-synthesis tests and the cut-function machinery),
/// and 64-pattern word simulation for large networks (used by the
/// equivalence checker and the generators' validation tests).

namespace mighty::mig {

/// Simulates every node over the given 64-bit input patterns (one word per
/// PI).  Returns one word per node; complemented outputs must be resolved by
/// the caller through `resolve`.
std::vector<uint64_t> simulate_words(const Mig& mig, const std::vector<uint64_t>& pi_words);

/// The value of a signal given a node-indexed word vector.
inline uint64_t resolve(const std::vector<uint64_t>& words, Signal s) {
  return s.is_complemented() ? ~words[s.index()] : words[s.index()];
}

/// Simulates the whole network symbolically; requires num_pis() <= 6.
/// Returns one truth table (over num_pis variables) per node.
std::vector<tt::TruthTable> simulate_truth_tables(const Mig& mig);

/// Truth tables of the primary outputs; requires num_pis() <= 6.
std::vector<tt::TruthTable> output_truth_tables(const Mig& mig);

/// The local function of `root` expressed over the given leaves (at most six).
/// Every path from `root` to a terminal must pass through a leaf (i.e.
/// (root, leaves) is a cut, paper Sec. II-C); paths to the constant node are
/// exempt.
tt::TruthTable simulate_cut(const Mig& mig, uint32_t root,
                            const std::vector<uint32_t>& leaves);

}  // namespace mighty::mig
