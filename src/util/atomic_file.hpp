#pragma once

#include <functional>
#include <ostream>
#include <string>

/// \file atomic_file.hpp
/// \brief Crash-safe whole-file writes.
///
/// Writing a database or cache file in place leaves a truncated file behind a
/// crash mid-write, and a concurrent reader can observe the half-written
/// state.  write_file_atomically() writes to a uniquely named temporary in
/// the same directory and renames it over the target: on POSIX the rename is
/// atomic, so readers only ever see the complete old or the complete new
/// contents, and a crash leaves at worst a stray *.tmp.* file.

namespace mighty::util {

/// Writes a file via tmp-file + atomic rename.  Creates missing parent
/// directories.  `write` receives the temporary file's stream and must leave
/// it in a good state; the temporary is removed and std::runtime_error thrown
/// if the stream fails or the rename does.  Concurrent writers racing to the
/// same target are safe: each writes its own temporary and the last rename
/// wins wholesale.
void write_file_atomically(const std::string& path,
                           const std::function<void(std::ostream&)>& write);

}  // namespace mighty::util
