#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/annotations.hpp"
#include "util/assert.hpp"

/// \file mutex.hpp
/// \brief Capability-annotated lock types: the only mutexes src/ uses.
///
/// util::Mutex / util::SharedMutex / util::CondVar wrap their std
/// counterparts with two layers of checking:
///
///  * **Compile time** — the types carry Clang thread-safety capability
///    attributes (util/annotations.hpp), so data declared
///    `MIGHTY_GUARDED_BY(mutex_)` cannot be touched without the lock, and
///    `MIGHTY_REQUIRES(mutex_)` helpers cannot be called without it.  The CI
///    leg building with `-Wthread-safety -Wthread-safety-beta -Werror`
///    rejects any violation; tests/annotations_negative/ proves the analysis
///    is live.
///
///  * **Run time (Debug)** — every Mutex carries a LockRank from the
///    documented hierarchy (docs/concurrency.md), and acquisitions maintain a
///    process-global acquisition-order graph: acquiring rank B while holding
///    rank A records the edge A->B, and an acquisition that would close a
///    cycle (a lock-order inversion — deadlock potential, even if this run
///    never deadlocks) aborts via MIGHTY_ASSERT naming both ranks.  The
///    checker compiles out under NDEBUG / MIGHTY_UNCHECKED, and disables
///    itself under ThreadSanitizer: its internal graph lock would add
///    happens-before edges between unrelated threads and mask real races
///    from the TSan CI leg.
///
/// Scoped wrappers replace std::lock_guard/unique_lock/shared_lock:
/// `MutexLock` (exclusive, relockable, works with CondVar), `WriterLock`
/// (exclusive on a SharedMutex) and `SharedLock` (shared).  Bare
/// lock()/unlock() calls outside a wrapper are reserved for patterns the
/// wrappers cannot express and need a reason in a comment.

namespace mighty::util {

/// The documented lock hierarchy, outermost first: a thread may only acquire
/// a mutex whose rank it has already been *observed* to acquire before — the
/// Debug checker learns edges dynamically and rejects inversions, so the
/// enum order is documentation while the graph is the mechanism.  `none`
/// opts a mutex out of order tracking (tests, leaf-only locals); every
/// production mutex in src/ names its rank.  See docs/concurrency.md.
enum class LockRank : uint8_t {
  none = 0,                  ///< untracked
  serve_server_join,         ///< serve::Server stop() serialization
  serve_server_connections,  ///< serve::Server connection table
  serve_client,              ///< serve::RemoteService roundtrip serialization
  api_service_jobs,          ///< api::LocalService job table + queue
  api_service_session,       ///< api::LocalService session read/write gate
  flow_session_persist,      ///< flow::Session::persist() choke point
  oracle_persist,            ///< opt::ReplacementOracle persisted-path state
  oracle_stripe,             ///< opt::ReplacementOracle 5-cut cache stripes
  db_lookup_stripe,          ///< exact::Database lookup-memo stripes
  pool_queue,                ///< util::ThreadPool queue + group states
  pool_for_job,              ///< util::ThreadPool per-parallel_for job state
  test_outer,                ///< reserved for tests/lock_order_test.cpp
  test_inner,                ///< reserved for tests/lock_order_test.cpp
  count
};

/// Human-readable rank name for diagnostics.
const char* lock_rank_name(LockRank rank);

// The runtime lock-order checker is a Debug facility: NDEBUG and
// MIGHTY_UNCHECKED compile it out, and ThreadSanitizer builds disable it so
// the checker's own synchronization cannot hide races from TSan.
#if defined(__SANITIZE_THREAD__)
#define MIGHTY_LOCK_ORDER_CHECKS 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MIGHTY_LOCK_ORDER_CHECKS 0
#endif
#endif
#if !defined(MIGHTY_LOCK_ORDER_CHECKS)
#if !defined(NDEBUG) && !defined(MIGHTY_UNCHECKED)
#define MIGHTY_LOCK_ORDER_CHECKS 1
#else
#define MIGHTY_LOCK_ORDER_CHECKS 0
#endif
#endif

namespace lock_order {

/// True when acquisitions feed the order graph and inversions abort.
inline constexpr bool kEnabled = MIGHTY_LOCK_ORDER_CHECKS != 0;

#if MIGHTY_LOCK_ORDER_CHECKS
/// Called by Mutex/SharedMutex before blocking on the underlying lock:
/// records held->rank edges and aborts on a same-rank acquisition or a
/// cycle-closing inversion.  `none` is ignored.
void note_acquire(LockRank rank);
/// Called after releasing: drops the rank from this thread's held set.
void note_release(LockRank rank);
/// Test introspection: has the edge before->after been observed?
bool observed(LockRank before, LockRank after);
#else
inline void note_acquire(LockRank) {}
inline void note_release(LockRank) {}
inline bool observed(LockRank, LockRank) { return false; }
#endif

}  // namespace lock_order

/// Exclusive mutex with a capability annotation and a lock-order rank.
class MIGHTY_CAPABILITY("mutex") Mutex {
public:
  explicit Mutex(LockRank rank = LockRank::none) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MIGHTY_ACQUIRE() {
    lock_order::note_acquire(rank_);  // before blocking: report, don't hang
    m_.lock();
    set_owner();
  }

  void unlock() MIGHTY_RELEASE() {
    clear_owner();
    m_.unlock();
    lock_order::note_release(rank_);
  }

  /// Tells the compile-time analysis this mutex is held — used where a
  /// capability expression cannot be spelled at the access site (e.g. data
  /// guarded through a back-pointer the analysis cannot alias).  In Debug
  /// builds the claim is verified: the calling thread must actually hold
  /// the lock.
  void assert_held() const MIGHTY_ASSERT_CAPABILITY(this) {
#if MIGHTY_LOCK_ORDER_CHECKS
    MIGHTY_ASSERT(owner_.load(std::memory_order_relaxed) == thread_hash() &&
                  "assert_held: mutex is not held by this thread");
#endif
  }

  LockRank rank() const { return rank_; }

private:
#if MIGHTY_LOCK_ORDER_CHECKS
  static size_t thread_hash() {
    const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
    return h == 0 ? 1 : h;  // 0 is the "unowned" sentinel
  }
  void set_owner() { owner_.store(thread_hash(), std::memory_order_relaxed); }
  void clear_owner() { owner_.store(0, std::memory_order_relaxed); }
#else
  static void set_owner() {}
  static void clear_owner() {}
#endif

  std::mutex m_;
  const LockRank rank_;
#if MIGHTY_LOCK_ORDER_CHECKS
  std::atomic<size_t> owner_{0};
#endif
};

/// Reader/writer mutex.  Shared acquisitions participate in lock-order
/// tracking with the same rank as exclusive ones (an inversion through a
/// shared hold deadlocks just as surely once a writer queues up).
class MIGHTY_CAPABILITY("shared_mutex") SharedMutex {
public:
  explicit SharedMutex(LockRank rank = LockRank::none) : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MIGHTY_ACQUIRE() {
    lock_order::note_acquire(rank_);
    m_.lock();
  }
  void unlock() MIGHTY_RELEASE() {
    m_.unlock();
    lock_order::note_release(rank_);
  }
  void lock_shared() MIGHTY_ACQUIRE_SHARED() {
    lock_order::note_acquire(rank_);
    m_.lock_shared();
  }
  void unlock_shared() MIGHTY_RELEASE_SHARED() {
    m_.unlock_shared();
    lock_order::note_release(rank_);
  }

private:
  std::shared_mutex m_;
  const LockRank rank_;
};

/// Scoped exclusive lock on a Mutex; replaces std::lock_guard and
/// std::unique_lock.  Relockable (unlock()/lock()) so wait loops and
/// drop-the-lock-around-work patterns keep their annotations, and CondVar
/// waits on it directly.
class MIGHTY_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex& mu) MIGHTY_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    held_ = true;
  }

  ~MutexLock() MIGHTY_RELEASE() {
    if (held_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() MIGHTY_RELEASE() {
    mu_->unlock();
    held_ = false;
  }

  void lock() MIGHTY_ACQUIRE() {
    mu_->lock();
    held_ = true;
  }

private:
  Mutex* mu_;
  bool held_;
};

/// Scoped exclusive lock on a SharedMutex (the writer side).
class MIGHTY_SCOPED_CAPABILITY WriterLock {
public:
  explicit WriterLock(SharedMutex& mu) MIGHTY_ACQUIRE(mu) : mu_(&mu) { mu_->lock(); }
  ~WriterLock() MIGHTY_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

private:
  SharedMutex* mu_;
};

/// Scoped shared lock on a SharedMutex (the reader side).
class MIGHTY_SCOPED_CAPABILITY SharedLock {
public:
  explicit SharedLock(SharedMutex& mu) MIGHTY_ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->lock_shared();
  }
  ~SharedLock() MIGHTY_RELEASE() { mu_->unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

private:
  SharedMutex* mu_;
};

/// Condition variable paired with util::Mutex.  Waits take the scoped
/// MutexLock, so releasing and reacquiring during the wait flows through the
/// annotated (and order-tracked) Mutex methods.  Callers use explicit
/// predicate loops —
///     while (!predicate) cv.wait(lock);
/// — rather than a predicate lambda: the thread-safety analysis checks the
/// guarded reads in the loop condition directly in the scope that holds the
/// lock, where a lambda body would lose the capability context.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, waits, and reacquires before returning.
  /// The capability state is unchanged across the call, which is exactly
  /// what the analysis (correctly) assumes of an unannotated function.
  void wait(MutexLock& lock) { cv_.wait(lock); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

private:
  // condition_variable_any drives the lock through MutexLock::lock()/
  // unlock(), keeping ownership bookkeeping and order tracking truthful
  // while the wait has the mutex dropped.
  std::condition_variable_any cv_;
};

}  // namespace mighty::util
