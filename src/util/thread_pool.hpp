#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// \brief A small work-sharing thread pool for shard-parallel passes.
///
/// The pool implements exactly one primitive, parallel_for: run fn(i) for
/// every i in [0, count), distributing indices dynamically over the workers
/// and the calling thread.  Dynamic distribution is safe for the sharded
/// optimization passes because every task writes only to slots it owns —
/// results are a pure function of the task index, never of the schedule —
/// which is what makes `--threads N` bit-identical to `--threads 1`.
///
/// A pool of parallelism 1 has no worker threads at all; parallel_for then
/// degenerates to an inline loop on the caller.

namespace mighty::util {

class ThreadPool {
public:
  /// Hard cap on pool width: the shard planners stop profiting far earlier,
  /// and an absurd request must not try to spawn thousands of OS threads.
  static constexpr uint32_t kMaxParallelism = 256;

  /// `parallelism` counts the calling thread: a pool of parallelism N spawns
  /// N-1 workers.  0 is treated as 1; values above kMaxParallelism clamp.
  explicit ThreadPool(uint32_t parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread.
  uint32_t parallelism() const { return static_cast<uint32_t>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, count); returns when all invocations have
  /// finished.  The first exception thrown by any invocation is rethrown on
  /// the caller after the remaining claimed items complete (unclaimed items
  /// are abandoned).  Not reentrant: fn must not call parallel_for on the
  /// same pool.
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

private:
  void worker_loop();
  /// Claims and runs items of the current job until none are left or an
  /// error is recorded.  Called by workers and by the parallel_for caller.
  void drain(const std::function<void(size_t)>& fn, size_t count);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  uint64_t generation_ = 0;
  bool stop_ = false;
  const std::function<void(size_t)>* job_fn_ = nullptr;
  size_t job_count_ = 0;
  std::atomic<size_t> next_{0};
  uint32_t active_workers_ = 0;
  std::exception_ptr error_;
};

}  // namespace mighty::util
