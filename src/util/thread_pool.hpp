#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

/// \file thread_pool.hpp
/// \brief A small work-sharing thread pool for shard-parallel passes and for
/// the two-level batch scheduler.
///
/// Two primitives share one set of workers and one FIFO task queue:
///
///  * parallel_for: run fn(i) for every i in [0, count), distributing indices
///    dynamically over the workers and the calling thread.  Dynamic
///    distribution is safe for the sharded optimization passes because every
///    task writes only to slots it owns — results are a pure function of the
///    task index, never of the schedule — which is what makes `--threads N`
///    bit-identical to `--threads 1`.
///
///  * TaskGroup: submit independent tasks (the batch runner's (network, pass)
///    units) and wait for all of them; a task may submit follow-up tasks into
///    its own group, so a chain of dependent passes is expressed as a task
///    that enqueues its successor.  wait() participates in draining the
///    queue, so the caller is a worker too.
///
/// The two levels compose: a TaskGroup task may call parallel_for on the same
/// pool (its inner shard fan-out); the caller of parallel_for always drains
/// its own job, so completion never depends on idle workers being available.
///
/// A pool of parallelism 1 has no worker threads at all; parallel_for then
/// degenerates to an inline loop and TaskGroup::submit runs tasks
/// immediately, in submission order.
///
/// Locking contract (machine-checked; see docs/concurrency.md): the pool's
/// queue and stop flag are guarded by `mutex_` (rank pool_queue), each
/// parallel_for call's error slot by its ForJob's own mutex (rank
/// pool_for_job), and a TaskGroup's pending/error state by the pool's mutex
/// through the group's back-pointer.  No pool code path acquires another
/// tracked lock while holding either rank — tasks always run with the queue
/// mutex dropped.

namespace mighty::util {

class ThreadPool {
public:
  /// Hard cap on pool width: the shard planners stop profiting far earlier,
  /// and an absurd request must not try to spawn thousands of OS threads.
  static constexpr uint32_t kMaxParallelism = 256;

  /// `parallelism` counts the calling thread: a pool of parallelism N spawns
  /// N-1 workers.  0 is treated as 1; values above kMaxParallelism clamp.
  explicit ThreadPool(uint32_t parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread.
  uint32_t parallelism() const { return static_cast<uint32_t>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, count); returns when all invocations have
  /// finished.  The first exception thrown by any invocation is rethrown on
  /// the caller once in-flight items complete (items not yet started are
  /// skipped).  May be called from inside a TaskGroup task or another
  /// parallel_for item on the same pool: each job is independent and the
  /// caller drains its own job, so nesting cannot deadlock.
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

  /// A set of independently scheduled tasks with a completion barrier: the
  /// unit the batch runner schedules is one (network, pass) task, and each
  /// task submits its network's next pass into the same group.  Tasks may run
  /// on any worker or on the thread calling wait().
  class TaskGroup {
  public:
    explicit TaskGroup(ThreadPool& pool);
    /// Waits for outstanding tasks; a pending task exception is dropped here
    /// (destructors must not throw) — call wait() to observe it.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueues a task.  Safe to call from inside a running task of the same
    /// group (the chain-scheduling case).  On a single-threaded pool the task
    /// runs inline before submit returns.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task (including transitively submitted
    /// ones) has finished, helping to drain the pool's queue meanwhile.
    /// Rethrows the first exception that escaped a task.
    void wait();

  private:
    /// Group state shared with the wrapper closures still in the queue.  The
    /// guarding mutex lives in the pool, reached through `pool` — the
    /// annotations spell that path out, and the access sites pin the alias
    /// with Mutex::assert_held() (the analysis cannot prove on its own that
    /// `pool_.mutex_` and `state_->pool->mutex_` are one object).
    struct State {
      ThreadPool* pool = nullptr;
      size_t pending MIGHTY_GUARDED_BY(pool->mutex_) = 0;
      std::exception_ptr error MIGHTY_GUARDED_BY(pool->mutex_);
    };

    ThreadPool& pool_;
    std::shared_ptr<State> state_;
  };

private:
  /// Shared state of one parallel_for call.  Index claiming is a single
  /// fetch_add, so an index is either run by exactly one drainer or skipped
  /// after an error; `finished` counts both and completion is exactly
  /// `finished == count` — no claim/accounting race window.  The per-item
  /// path is two relaxed atomic increments; the mutex is touched only to
  /// record an error and to publish completion.
  struct ForJob {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> finished{0};
    std::atomic<bool> failed{false};
    Mutex mutex{LockRank::pool_for_job};
    CondVar done;
    std::exception_ptr error MIGHTY_GUARDED_BY(mutex);
  };

  static void drain(ForJob& job);
  void enqueue(std::vector<std::function<void()>> tasks);
  void worker_loop();

  std::vector<std::thread> workers_;

  Mutex mutex_{LockRank::pool_queue};
  /// Queue activity and group completion share one condition variable:
  /// workers wake on stop/queue-non-empty, group waiters additionally on
  /// pending reaching zero.  notify_all keeps the predicates honest.
  CondVar wake_;
  std::deque<std::function<void()>> queue_ MIGHTY_GUARDED_BY(mutex_);
  bool stop_ MIGHTY_GUARDED_BY(mutex_) = false;
};

}  // namespace mighty::util
