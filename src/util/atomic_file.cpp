#include "util/atomic_file.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "api/error.hpp"

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace mighty::util {

namespace {

/// Temporary name unique across processes (pid) and within one (counter), so
/// concurrent writers never clobber each other's half-written temporaries.
std::string unique_tmp_name(const std::string& path) {
  static std::atomic<uint64_t> serial{0};
#if defined(_WIN32)
  const auto pid = _getpid();
#else
  const auto pid = getpid();
#endif
  return path + ".tmp." + std::to_string(static_cast<long long>(pid)) + "." +
         std::to_string(serial.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

void write_file_atomically(const std::string& path,
                           const std::function<void(std::ostream&)>& write) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // best effort; open reports
  }
  const std::string tmp = unique_tmp_name(path);
  try {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      throw api::Error(api::ErrorCode::io_error, "cannot write file " + tmp);
    }
    write(os);
    os.flush();
    if (!os) {
      throw api::Error(api::ErrorCode::io_error, "write failed for " + tmp);
    }
  } catch (...) {
    // Also covers a throwing `write` callback: no stray temporaries.
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignore;
    std::filesystem::remove(tmp, ignore);
    throw api::Error(api::ErrorCode::io_error, "cannot rename " + tmp +
                                                   " over " + path + ": " +
                                                   ec.message());
  }
}

}  // namespace mighty::util
