#pragma once

#include <cstdio>
#include <cstdlib>

/// \file assert.hpp
/// \brief Always-armed invariant assertions.
///
/// The standard `assert` vanishes under NDEBUG, which is exactly the build
/// the benches (and any production binary) run — so the invariants guarding
/// the hot paths were only ever exercised by the Debug CI leg.  MIGHTY_ASSERT
/// stays armed in every build type as a cheap check; it compiles out only
/// under an explicit -DMIGHTY_UNCHECKED (the CMake option of the same name),
/// so dropping the checks is a deliberate, visible decision rather than a
/// side effect of the build type.
///
/// Usage mirrors assert: the condition may carry a message via the usual
/// `MIGHTY_ASSERT(cond && "message")` idiom.

namespace mighty::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "MIGHTY_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace mighty::util

#if defined(MIGHTY_UNCHECKED)
#define MIGHTY_ASSERT(cond) ((void)0)
#else
#define MIGHTY_ASSERT(cond) \
  (static_cast<bool>(cond)  \
       ? (void)0            \
       : ::mighty::util::assert_fail(#cond, __FILE__, __LINE__))
#endif
