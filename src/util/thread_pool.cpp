#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace mighty::util {

ThreadPool::ThreadPool(uint32_t parallelism) {
  parallelism = std::min(parallelism, kMaxParallelism);
  const uint32_t workers = parallelism > 1 ? parallelism - 1 : 0;
  workers_.reserve(workers);
  try {
    for (uint32_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation can fail (std::system_error); shut down the workers
    // already spawned before rethrowing, or unwinding would destroy
    // joinable std::threads and terminate the process.
    {
      MutexLock lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
  // Anything still queued is a stale parallel_for driver whose job already
  // completed (parallel_for and TaskGroup::wait return only when their work
  // is done); dropping it merely releases the job's shared state.  Workers
  // are gone, but the queue keeps its guarded-by contract.
  MutexLock lock(mutex_);
  queue_.clear();
}

void ThreadPool::drain(ForJob& job) {
  // fetch_add may overshoot count when several drainers race past the end;
  // indices >= count were never claimed by anyone, so the drainer just exits.
  for (size_t i = job.next.fetch_add(1, std::memory_order_relaxed); i < job.count;
       i = job.next.fetch_add(1, std::memory_order_relaxed)) {
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.fn)(i);
      } catch (...) {
        job.failed.store(true, std::memory_order_relaxed);
        MutexLock lock(job.mutex);
        if (!job.error) job.error = std::current_exception();
      }
    }
    if (job.finished.fetch_add(1, std::memory_order_acq_rel) + 1 == job.count) {
      // Empty critical section: the waiter must be either inside its
      // predicate check or asleep when the notification fires, never between
      // the two, or the wakeup would be lost.
      { MutexLock barrier(job.mutex); }
      job.done.notify_all();
    }
  }
}

void ThreadPool::enqueue(std::vector<std::function<void()>> tasks) {
  {
    MutexLock lock(mutex_);
    for (auto& task : tasks) queue_.push_back(std::move(task));
  }
  wake_.notify_all();
}

void ThreadPool::worker_loop() {
  MutexLock lock(mutex_);
  while (true) {
    while (!stop_ && queue_.empty()) wake_.wait(lock);
    if (stop_) return;
    auto task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void ThreadPool::parallel_for(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // The job outlives this frame only inside driver closures; a driver that
  // runs after completion claims an index >= count and never touches fn,
  // which is the only pointer into this frame.
  auto job = std::make_shared<ForJob>();
  job->fn = &fn;
  job->count = count;
  const size_t drivers = std::min(workers_.size(), count - 1);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(drivers);
  for (size_t d = 0; d < drivers; ++d) {
    tasks.emplace_back([job] { drain(*job); });
  }
  enqueue(std::move(tasks));
  drain(*job);
  std::exception_ptr error;
  {
    MutexLock lock(job->mutex);
    while (job->finished.load(std::memory_order_acquire) != job->count) {
      job->done.wait(lock);
    }
    if (job->error) {
      error = std::move(job->error);
      job->error = nullptr;
    }
  }
  if (error) std::rethrow_exception(error);
}

// --- TaskGroup ---------------------------------------------------------------

ThreadPool::TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(pool), state_(std::make_shared<State>()) {
  state_->pool = &pool_;
}

ThreadPool::TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Completion is what the destructor owes; the error was only observable
    // through an explicit wait().
  }
}

void ThreadPool::TaskGroup::submit(std::function<void()> task) {
  if (pool_.workers_.empty()) {
    // Single-threaded pool: run inline so submission order is execution
    // order.  Errors still surface through wait(), as in the parallel case.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    if (error) {
      MutexLock lock(pool_.mutex_);
      state_->pool->mutex_.assert_held();  // pool_.mutex_ under its State alias
      if (!state_->error) state_->error = error;
    }
    return;
  }
  auto wrapper = [pool = &pool_, state = state_, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      MutexLock lock(pool->mutex_);
      state->pool->mutex_.assert_held();  // pool->mutex_ under its State alias
      if (error && !state->error) state->error = error;
      --state->pending;
    }
    pool->wake_.notify_all();
  };
  {
    MutexLock lock(pool_.mutex_);
    state_->pool->mutex_.assert_held();  // pool_.mutex_ under its State alias
    ++state_->pending;
    pool_.queue_.push_back(std::move(wrapper));
  }
  pool_.wake_.notify_all();
}

void ThreadPool::TaskGroup::wait() {
  std::exception_ptr error;
  {
    MutexLock lock(pool_.mutex_);
    state_->pool->mutex_.assert_held();  // pool_.mutex_ under its State alias
    while (state_->pending > 0) {
      if (!pool_.queue_.empty()) {
        // Help drain: the task may belong to this group, another group, or be
        // a parallel_for driver — any of them is progress.
        auto task = std::move(pool_.queue_.front());
        pool_.queue_.pop_front();
        lock.unlock();
        task();
        lock.lock();
        state_->pool->mutex_.assert_held();  // re-pin after relock
      } else {
        while (state_->pending > 0 && pool_.queue_.empty()) {
          pool_.wake_.wait(lock);
        }
      }
    }
    error = std::move(state_->error);
    state_->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mighty::util
