#include "util/thread_pool.hpp"

#include <algorithm>

namespace mighty::util {

ThreadPool::ThreadPool(uint32_t parallelism) {
  parallelism = std::min(parallelism, kMaxParallelism);
  const uint32_t workers = parallelism > 1 ? parallelism - 1 : 0;
  workers_.reserve(workers);
  try {
    for (uint32_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread creation can fail (std::system_error); shut down the workers
    // already spawned before rethrowing, or unwinding would destroy
    // joinable std::threads and terminate the process.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::drain(const std::function<void(size_t)>& fn, size_t count) {
  for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < count;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      // Stop claiming further items; peers finish their current one and exit.
      next_.store(count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_loop() {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      fn = job_fn_;
      count = job_count_;
    }
    drain(*fn, count);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    active_workers_ = static_cast<uint32_t>(workers_.size());
    error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  drain(fn, count);
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return active_workers_ == 0; });
  if (error_) {
    auto error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace mighty::util
