#pragma once

/// \file annotations.hpp
/// \brief Clang thread-safety analysis attributes behind MIGHTY_ macros.
///
/// These wrap the capability attributes of Clang's `-Wthread-safety` static
/// analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the
/// locking contracts of the concurrent layers — which mutex guards which
/// data, which functions require which locks, in what order locks nest — are
/// declared in the types and checked at compile time by the dedicated CI leg
/// (`-Wthread-safety -Wthread-safety-beta -Werror`).  Under any non-Clang
/// compiler every macro expands to nothing, so the annotations cost exactly
/// zero everywhere else.
///
/// Conventions (see docs/concurrency.md for the full contract):
///
///  * lock types (util::Mutex, util::SharedMutex) are `MIGHTY_CAPABILITY`;
///    scoped lock wrappers are `MIGHTY_SCOPED_CAPABILITY`;
///  * data is declared with `MIGHTY_GUARDED_BY(mutex)` next to the mutex
///    that protects it;
///  * `_locked`-suffixed helpers carry `MIGHTY_REQUIRES(mutex)` so a caller
///    that forgot the lock fails to compile;
///  * a pattern the analysis genuinely cannot express gets
///    `MIGHTY_NO_THREAD_SAFETY_ANALYSIS` with a one-line reason beside it —
///    never silently.

#if defined(__clang__)
#define MIGHTY_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MIGHTY_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no analysis
#endif

/// Marks a type as a capability (a lock).  The string names the capability
/// kind in diagnostics: "mutex" reads naturally in warning text.
#define MIGHTY_CAPABILITY(x) MIGHTY_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (util::MutexLock and friends).
#define MIGHTY_SCOPED_CAPABILITY MIGHTY_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define MIGHTY_GUARDED_BY(x) MIGHTY_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define MIGHTY_PT_GUARDED_BY(x) MIGHTY_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declared lock-ordering edges, enforced under -Wthread-safety-beta: this
/// mutex must be acquired before/after the listed ones.  The runtime
/// lock-order graph in util::Mutex checks the same property dynamically in
/// Debug builds; these attributes make the documented hierarchy part of the
/// compile-time contract where the nesting is static.
#define MIGHTY_ACQUIRED_BEFORE(...) MIGHTY_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MIGHTY_ACQUIRED_AFTER(...) MIGHTY_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the given mutex(es)
/// exclusively / shared.
#define MIGHTY_REQUIRES(...) MIGHTY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MIGHTY_REQUIRES_SHARED(...) \
  MIGHTY_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the given mutex(es) and does not release them
/// before returning (no argument = the enclosing capability/scoped object).
#define MIGHTY_ACQUIRE(...) MIGHTY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MIGHTY_ACQUIRE_SHARED(...) \
  MIGHTY_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the given mutex(es), which must be held on entry.
/// The no-argument form on a scoped wrapper releases whatever it manages,
/// exclusive or shared.
#define MIGHTY_RELEASE(...) MIGHTY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MIGHTY_RELEASE_SHARED(...) \
  MIGHTY_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The function attempts the lock and returns `x` on success.
#define MIGHTY_TRY_ACQUIRE(...) MIGHTY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the given mutex(es)
/// (deadlock documentation for self-locking entry points).
#define MIGHTY_EXCLUDES(...) MIGHTY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the given capability is held here without acquiring
/// it (used by Mutex::assert_held, which additionally verifies the claim at
/// runtime in Debug builds).
#define MIGHTY_ASSERT_CAPABILITY(x) MIGHTY_THREAD_ANNOTATION(assert_capability(x))

/// The function returns a reference to the given capability.
#define MIGHTY_RETURN_CAPABILITY(x) MIGHTY_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis.  Every use carries a comment
/// explaining why the pattern is not expressible — the negative-compile
/// tests in tests/annotations_negative/ prove the analysis itself works, so
/// an unexplained opt-out is a review failure, not a convenience.
#define MIGHTY_NO_THREAD_SAFETY_ANALYSIS \
  MIGHTY_THREAD_ANNOTATION(no_thread_safety_analysis)
