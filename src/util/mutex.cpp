#include "util/mutex.hpp"

#include <cstdio>
#include <vector>

namespace mighty::util {

const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::none: return "none";
    case LockRank::serve_server_join: return "serve::Server::join_mutex_";
    case LockRank::serve_server_connections: return "serve::Server::connections_mutex_";
    case LockRank::serve_client: return "serve::RemoteService::mutex_";
    case LockRank::api_service_jobs: return "api::LocalService::mutex_";
    case LockRank::api_service_session: return "api::LocalService::session_rw_";
    case LockRank::flow_session_persist: return "flow::Session::persist_mutex_";
    case LockRank::oracle_persist: return "opt::ReplacementOracle::persist_mutex_";
    case LockRank::oracle_stripe: return "opt::ReplacementOracle stripe";
    case LockRank::db_lookup_stripe: return "exact::Database lookup stripe";
    case LockRank::pool_queue: return "util::ThreadPool::mutex_";
    case LockRank::pool_for_job: return "util::ThreadPool ForJob::mutex";
    case LockRank::test_outer: return "test_outer";
    case LockRank::test_inner: return "test_inner";
    case LockRank::count: break;
  }
  return "?";
}

#if MIGHTY_LOCK_ORDER_CHECKS

namespace lock_order {

namespace {

constexpr size_t kRanks = static_cast<size_t>(LockRank::count);
static_assert(kRanks <= 32, "edge masks below are uint32_t bitsets");

/// The process-global acquisition-order graph: bit `b` of `edges[a]` means
/// "a lock of rank a was held while rank b was acquired" has been observed.
/// Guarded by a raw std::mutex, deliberately not a util::Mutex — the checker
/// must not recurse into itself, and this lock is a leaf held only inside
/// the note_* functions.
std::mutex graph_mutex;
uint32_t edges[kRanks];  // zero-initialized

/// The ranks this thread currently holds, in acquisition order.  Tracked
/// per-thread, so concurrent holders of the same rank (cache stripes under
/// different threads) never interact.  A plain vector: the stack is at most
/// a handful deep, and the checker only runs in Debug builds.
thread_local std::vector<LockRank> held;

/// Is `to` reachable from `from` following observed edges?  Iterative DFS
/// over at most kRanks nodes; called with graph_mutex held.
bool reachable(size_t from, size_t to) {
  uint32_t visited = 0;
  uint32_t frontier = edges[from];
  while (frontier != 0) {
    if ((frontier >> to) & 1u) return true;
    visited |= frontier;
    uint32_t next = 0;
    for (size_t node = 0; node < kRanks; ++node) {
      if ((frontier >> node) & 1u) next |= edges[node];
    }
    frontier = next & ~visited;
  }
  return false;
}

}  // namespace

void note_acquire(LockRank rank) {
  if (rank == LockRank::none) return;
  const size_t r = static_cast<size_t>(rank);
  {
    const std::lock_guard<std::mutex> lock(graph_mutex);
    for (const LockRank held_rank : held) {
      const size_t h = static_cast<size_t>(held_rank);
      if (held_rank == rank) {
        std::fprintf(stderr,
                     "lock-order violation: thread acquires a second lock of "
                     "rank '%s' while already holding one (same-rank nesting "
                     "has no defined order)\n",
                     lock_rank_name(rank));
        MIGHTY_ASSERT(!"lock-order inversion: same-rank nesting");
      }
      // Adding h -> r: if r already reaches h, some thread acquired these
      // ranks in the opposite nesting — the classic ABBA deadlock shape.
      if (reachable(r, h)) {
        std::fprintf(stderr,
                     "lock-order inversion: acquiring '%s' while holding "
                     "'%s', but the opposite order was observed before "
                     "(deadlock potential; see docs/concurrency.md)\n",
                     lock_rank_name(rank), lock_rank_name(held_rank));
        MIGHTY_ASSERT(!"lock-order inversion: cycle in acquisition graph");
      }
      edges[h] |= 1u << r;
    }
  }
  held.push_back(rank);
}

void note_release(LockRank rank) {
  if (rank == LockRank::none) return;
  // Out-of-order release is legal (unique_lock-style juggling), so remove
  // the most recent matching entry rather than popping the top.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == rank) {
      held.erase(std::next(it).base());
      return;
    }
  }
  MIGHTY_ASSERT(!"lock-order tracking: released a rank this thread does not hold");
}

bool observed(LockRank before, LockRank after) {
  const std::lock_guard<std::mutex> lock(graph_mutex);
  return (edges[static_cast<size_t>(before)] >>
          static_cast<size_t>(after)) & 1u;
}

}  // namespace lock_order

#endif  // MIGHTY_LOCK_ORDER_CHECKS

}  // namespace mighty::util
