#include <ostream>

#include "io/io.hpp"

namespace mighty::io {

namespace {

std::string signal_expr(const mig::Mig& mig, mig::Signal s) {
  std::string base;
  if (mig.is_constant(s.index())) {
    return s.is_complemented() ? "1'b1" : "1'b0";
  }
  if (mig.is_pi(s.index())) {
    base = "x" + std::to_string(mig.pi_index(s.index()));
  } else {
    base = "n" + std::to_string(s.index());
  }
  return s.is_complemented() ? "~" + base : base;
}

}  // namespace

void write_verilog(std::ostream& os, const mig::Mig& mig, const std::string& module_name) {
  os << "module " << module_name << "(";
  for (uint32_t i = 0; i < mig.num_pis(); ++i) os << "x" << i << ", ";
  for (uint32_t o = 0; o < mig.num_pos(); ++o) {
    os << "y" << o << (o + 1 < mig.num_pos() ? ", " : "");
  }
  os << ");\n";
  for (uint32_t i = 0; i < mig.num_pis(); ++i) os << "  input x" << i << ";\n";
  for (uint32_t o = 0; o < mig.num_pos(); ++o) os << "  output y" << o << ";\n";

  const auto live = mig.live_mask();
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!live[n] || !mig.is_gate(n)) continue;
    os << "  wire n" << n << ";\n";
  }
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!live[n] || !mig.is_gate(n)) continue;
    const auto& f = mig.fanins(n);
    const std::string a = signal_expr(mig, f[0]);
    const std::string b = signal_expr(mig, f[1]);
    const std::string c = signal_expr(mig, f[2]);
    os << "  assign n" << n << " = (" << a << " & " << b << ") | (" << a << " & " << c
       << ") | (" << b << " & " << c << ");\n";
  }
  for (uint32_t o = 0; o < mig.num_pos(); ++o) {
    os << "  assign y" << o << " = " << signal_expr(mig, mig.output(o)) << ";\n";
  }
  os << "endmodule\n";
}

}  // namespace mighty::io
