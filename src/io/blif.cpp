#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "api/error.hpp"
#include "io/io.hpp"
#include "tt/truth_table.hpp"
#include "util/atomic_file.hpp"

namespace mighty::io {

namespace {

std::string node_name(const mig::Mig& mig, uint32_t index) {
  // Prefix via insert on an lvalue, not operator+(const char*, string&&):
  // the rvalue overload trips a GCC 12 -Wrestrict false positive here.
  if (mig.is_constant(index)) return "const0";
  std::string name = std::to_string(mig.is_pi(index) ? mig.pi_index(index) : index);
  name.insert(0, 1, mig.is_pi(index) ? 'x' : 'n');
  return name;
}

/// Builds an arbitrary function of up to 6 leaves by Shannon decomposition.
mig::Signal build_function(mig::Mig& m, const tt::TruthTable& f,
                           const std::vector<mig::Signal>& leaves) {
  if (f.is_const0()) return m.get_constant(false);
  if (f.is_const1()) return m.get_constant(true);
  for (uint32_t v = 0; v < f.num_vars(); ++v) {
    if (f == tt::TruthTable::projection(f.num_vars(), v)) return leaves[v];
    if (f == ~tt::TruthTable::projection(f.num_vars(), v)) return !leaves[v];
  }
  // Majority of three (possibly complemented) leaves becomes one gate, so a
  // write_blif/read_blif round trip reconstructs a MIG gate-for-gate instead
  // of inflating each gate into its Shannon decomposition.  Eight input
  // polarity combinations suffice: majority is self-dual, so a complemented
  // output is some all-complemented input combination.
  if (f.num_vars() == 3) {
    const auto p0 = tt::TruthTable::projection(3, 0);
    const auto p1 = tt::TruthTable::projection(3, 1);
    const auto p2 = tt::TruthTable::projection(3, 2);
    for (uint32_t polarity = 0; polarity < 8; ++polarity) {
      const auto a = (polarity & 1) != 0 ? ~p0 : p0;
      const auto b = (polarity & 2) != 0 ? ~p1 : p1;
      const auto c = (polarity & 4) != 0 ? ~p2 : p2;
      if (f == ((a & b) | (a & c) | (b & c))) {
        return m.create_maj((polarity & 1) != 0 ? !leaves[0] : leaves[0],
                            (polarity & 2) != 0 ? !leaves[1] : leaves[1],
                            (polarity & 4) != 0 ? !leaves[2] : leaves[2]);
      }
    }
  }
  // Split on the highest support variable.
  uint32_t var = 0;
  for (uint32_t v = 0; v < f.num_vars(); ++v) {
    if (f.depends_on(v)) var = v;
  }
  const auto f0 = build_function(m, f.cofactor(var, false), leaves);
  const auto f1 = build_function(m, f.cofactor(var, true), leaves);
  return m.create_ite(leaves[var], f1, f0);
}

}  // namespace

void write_blif(std::ostream& os, const mig::Mig& mig, const std::string& model_name) {
  os << ".model " << model_name << '\n';
  os << ".inputs";
  for (uint32_t i = 0; i < mig.num_pis(); ++i) os << " x" << i;
  os << '\n';
  os << ".outputs";
  for (uint32_t o = 0; o < mig.num_pos(); ++o) os << " y" << o;
  os << '\n';

  const auto live = mig.live_mask();
  bool const_used = live[mig::Mig::constant_node];
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!live[n] || !mig.is_gate(n)) continue;
    const auto& f = mig.fanins(n);
    if (f[0].index() == mig::Mig::constant_node) const_used = true;
  }
  if (const_used) os << ".names const0\n";  // empty cover = constant 0

  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!live[n] || !mig.is_gate(n)) continue;
    const auto& f = mig.fanins(n);
    os << ".names " << node_name(mig, f[0].index()) << ' ' << node_name(mig, f[1].index())
       << ' ' << node_name(mig, f[2].index()) << ' ' << node_name(mig, n) << '\n';
    // Majority ON-set {11-, 1-1, -11}, with complemented fanins flipping the
    // corresponding care literal.
    const char one[3] = {f[0].is_complemented() ? '0' : '1',
                         f[1].is_complemented() ? '0' : '1',
                         f[2].is_complemented() ? '0' : '1'};
    os << one[0] << one[1] << "- 1\n";
    os << one[0] << '-' << one[2] << " 1\n";
    os << '-' << one[1] << one[2] << " 1\n";
  }

  for (uint32_t o = 0; o < mig.num_pos(); ++o) {
    const mig::Signal s = mig.output(o);
    os << ".names " << node_name(mig, s.index()) << " y" << o << '\n';
    os << (s.is_complemented() ? "0 1\n" : "1 1\n");
  }
  os << ".end\n";
}

void write_blif_file(const std::string& path, const mig::Mig& mig,
                     const std::string& model_name) {
  // Atomic tmp+rename: a crash mid-write must not leave a truncated BLIF
  // behind (downstream flows re-read these files).
  try {
    util::write_file_atomically(
        path, [&](std::ostream& os) { write_blif(os, mig, model_name); });
  } catch (const api::Error&) {
    throw;
  } catch (const std::exception& e) {
    throw api::Error(api::ErrorCode::io_error, e.what());
  }
}

mig::Mig read_blif(std::istream& is) {
  struct Table {
    std::vector<std::string> inputs;
    std::string output;
    std::vector<std::string> rows;
    size_t line = 0;  ///< physical line of the .names directive (for errors)
  };
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  size_t outputs_line = 0;
  std::vector<Table> tables;

  auto error_at = [](size_t line, const std::string& what) {
    // Still a std::runtime_error for pre-taxonomy catch sites, now carrying
    // the stable code the api layer and wire protocol report.
    return api::Error(api::ErrorCode::invalid_network,
                      "BLIF line " + std::to_string(line) + ": " + what);
  };

  // Tokenize into logical lines: strip '\r' (CRLF exports), cut '#' comments,
  // and join backslash continuations (tolerating whitespace after the
  // backslash, which common exporters emit).  Each logical line remembers the
  // physical line it started on, so parse errors point into the file.
  struct LogicalLine {
    std::string text;
    size_t line;
  };
  std::string line, pending;
  size_t line_number = 0, pending_line = 0;
  std::vector<LogicalLine> logical_lines;
  while (std::getline(is, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    if (pending.empty()) pending_line = line_number;
    const auto last = line.find_last_not_of(" \t");
    if (last != std::string::npos && line[last] == '\\') {
      pending += line.substr(0, last);
      pending += ' ';  // the continuation joins tokens, it must not fuse them
      continue;
    }
    pending += line;
    if (pending.find_first_not_of(" \t") != std::string::npos) {
      logical_lines.push_back({std::move(pending), pending_line});
    }
    pending.clear();
  }
  if (!pending.empty()) {
    throw error_at(pending_line, "backslash continuation at end of file");
  }

  Table* current = nullptr;
  for (const auto& logical : logical_lines) {
    std::istringstream ls(logical.text);
    std::string head;
    if (!(ls >> head)) continue;
    if (head == ".model" || head == ".end") {
      current = nullptr;
      continue;
    }
    if (head == ".inputs") {
      std::string name;
      while (ls >> name) input_names.push_back(name);
      current = nullptr;
      continue;
    }
    if (head == ".outputs") {
      std::string name;
      while (ls >> name) output_names.push_back(name);
      outputs_line = logical.line;
      current = nullptr;
      continue;
    }
    if (head == ".names") {
      Table t;
      t.line = logical.line;
      std::string name;
      std::vector<std::string> names;
      while (ls >> name) names.push_back(name);
      if (names.empty()) throw error_at(logical.line, ".names without signals");
      t.output = names.back();
      names.pop_back();
      t.inputs = std::move(names);
      tables.push_back(std::move(t));
      current = &tables.back();
      continue;
    }
    if (head[0] == '.') {
      throw error_at(logical.line, "unsupported BLIF construct: " + head);
    }
    if (current == nullptr) {
      throw error_at(logical.line, "cover row outside .names");
    }
    // Keep every token: extra columns must surface as a parse error below,
    // not be silently dropped.
    std::string rest;
    std::string row = head;
    while (ls >> rest) row += " " + rest;
    current->rows.push_back(row);
  }

  mig::Mig m;
  std::map<std::string, mig::Signal> signals;
  for (const auto& name : input_names) signals[name] = m.create_pi();

  std::map<std::string, const Table*> by_output;
  for (const auto& t : tables) by_output[t.output] = &t;

  // Builds one table's function over already-resolved leaves.
  auto build_table = [&](const Table& t,
                         const std::vector<mig::Signal>& leaves) -> mig::Signal {
    const std::string& name = t.output;
    const auto k = static_cast<uint32_t>(t.inputs.size());
    tt::TruthTable on_set(k);
    bool output_one = true;
    for (const auto& row : t.rows) {
      std::istringstream rs(row);
      std::string pattern, value, extra;
      if (k == 0) {
        rs >> value;
        pattern.clear();
      } else if (!(rs >> pattern >> value)) {
        throw error_at(t.line, "malformed cover row in table '" + name +
                                   "': " + row);
      }
      if (rs >> extra) {
        throw error_at(t.line, "trailing tokens in cover row of table '" + name +
                                   "': " + row);
      }
      if (pattern.size() != k) {
        throw error_at(t.line, "cover row width mismatch in table '" + name +
                                   "': " + row);
      }
      output_one = value == "1";
      // Expand don't-cares.
      std::vector<uint32_t> minterms{0};
      for (uint32_t i = 0; i < k; ++i) {
        std::vector<uint32_t> next;
        for (const uint32_t base : minterms) {
          if (pattern[i] == '0') {
            next.push_back(base);
          } else if (pattern[i] == '1') {
            next.push_back(base | (1u << i));
          } else {
            next.push_back(base);
            next.push_back(base | (1u << i));
          }
        }
        minterms = std::move(next);
      }
      for (const uint32_t mt : minterms) on_set.set_bit(mt, true);
    }
    tt::TruthTable f = on_set;
    if (!t.rows.empty() && !output_one) f = ~f;
    if (t.rows.empty()) f = tt::TruthTable::constant(k, false);
    return build_function(m, f, leaves);
  };

  // Resolve signals with an explicit stack (BLIF does not promise
  // topological order, and call-stack recursion would overflow on deeply
  // chained tables — adversarial inputs nest thousands).  `referenced_at`
  // is the line mentioning the name, so "signal without driver" points at
  // the use, not somewhere downstream.  A name reached again while its own
  // table is still being resolved is a combinational cycle, which recursion
  // would chase forever.
  struct Frame {
    std::string name;
    const Table* table;
    std::vector<mig::Signal> leaves;  ///< resolved inputs so far
  };
  std::set<std::string> in_progress;
  std::vector<Frame> stack;

  // Returns the signal when `name` is already resolved, otherwise pushes a
  // frame for its driving table and returns nullptr.
  auto lookup_or_push = [&](const std::string& name,
                            size_t referenced_at) -> const mig::Signal* {
    if (const auto it = signals.find(name); it != signals.end()) return &it->second;
    const auto t_it = by_output.find(name);
    if (t_it == by_output.end()) {
      throw error_at(referenced_at, "signal without driver: " + name);
    }
    const Table& t = *t_it->second;
    if (t.inputs.size() > 4) {
      throw error_at(t.line, "table with more than 4 inputs: " + name);
    }
    if (!in_progress.insert(name).second) {
      throw error_at(t.line, "combinational cycle through signal: " + name);
    }
    stack.push_back({name, &t, {}});
    return nullptr;
  };

  auto resolve = [&](const std::string& root, size_t referenced_at) -> mig::Signal {
    if (const auto* s = lookup_or_push(root, referenced_at)) return *s;
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.leaves.size() < top.table->inputs.size()) {
        const std::string& next = top.table->inputs[top.leaves.size()];
        // Either consumes an already-resolved leaf or pushes its table;
        // the loop revisits this frame after the new frame completes.
        if (const auto* s = lookup_or_push(next, top.table->line)) {
          top.leaves.push_back(*s);
        }
        continue;
      }
      signals[top.name] = build_table(*top.table, top.leaves);
      in_progress.erase(top.name);
      stack.pop_back();
    }
    return signals.at(root);
  };

  for (const auto& name : output_names) {
    m.create_po(resolve(name, outputs_line));
  }
  return m;
}

mig::Mig read_blif_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw api::Error(api::ErrorCode::io_error, "cannot open " + path);
  try {
    return read_blif(is);
  } catch (const api::Error& e) {
    // Parse errors carry the line; corpus loads read many files, so name
    // the file too.  Rethrown with the same code — prefixing the path must
    // not downgrade invalid_network to internal.
    throw api::Error(e.code(), path + ": " + e.what());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace mighty::io
