#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mig/mig.hpp"

/// \file io.hpp
/// \brief Interchange formats: BLIF (read/write), structural Verilog (write)
/// and Graphviz DOT (write) for MIGs.
///
/// BLIF models every majority gate as a three-input `.names` table; the
/// reader accepts arbitrary single-output tables of up to four inputs and
/// rebuilds them through majority decompositions, so round-tripping and
/// importing foreign combinational BLIF both work.

namespace mighty::io {

void write_blif(std::ostream& os, const mig::Mig& mig,
                const std::string& model_name = "mig");
void write_blif_file(const std::string& path, const mig::Mig& mig,
                     const std::string& model_name = "mig");

/// Parses a combinational BLIF model.  Accepts CRLF line endings and
/// backslash line-continuations (as exported by common tools).  Throws
/// std::runtime_error on unsupported constructs (latches, tables over 4
/// inputs) and malformed input; messages carry the offending line number.
mig::Mig read_blif(std::istream& is);
/// Like read_blif; error messages are prefixed with `path`.
mig::Mig read_blif_file(const std::string& path);

void write_verilog(std::ostream& os, const mig::Mig& mig,
                   const std::string& module_name = "mig");

void write_dot(std::ostream& os, const mig::Mig& mig);

}  // namespace mighty::io
