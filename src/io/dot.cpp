#include <ostream>

#include "io/io.hpp"

namespace mighty::io {

void write_dot(std::ostream& os, const mig::Mig& mig) {
  os << "digraph mig {\n  rankdir=BT;\n";
  const auto live = mig.live_mask();
  if (live[mig::Mig::constant_node]) {
    os << "  n0 [shape=box,label=\"0\"];\n";
  }
  for (uint32_t i = 0; i < mig.num_pis(); ++i) {
    if (live[1 + i]) {
      os << "  n" << (1 + i) << " [shape=box,label=\"x" << i << "\"];\n";
    }
  }
  for (uint32_t n = 0; n < mig.num_nodes(); ++n) {
    if (!live[n] || !mig.is_gate(n)) continue;
    os << "  n" << n << " [shape=circle,label=\"MAJ\"];\n";
    for (const mig::Signal s : mig.fanins(n)) {
      os << "  n" << s.index() << " -> n" << n
         << (s.is_complemented() ? " [style=dashed]" : "") << ";\n";
    }
  }
  for (uint32_t o = 0; o < mig.num_pos(); ++o) {
    const mig::Signal s = mig.output(o);
    os << "  y" << o << " [shape=plaintext];\n";
    os << "  n" << s.index() << " -> y" << o
       << (s.is_complemented() ? " [style=dashed]" : "") << ";\n";
  }
  os << "}\n";
}

}  // namespace mighty::io
