#pragma once

#include <cstdint>

#include "util/thread_pool.hpp"

/// \file executor.hpp
/// \brief The session's parallel execution engine.
///
/// An Executor owns the worker pool that shard-parallel passes share for the
/// lifetime of a Session, so repeated pipeline runs never pay thread startup.
/// Passes obtain it through Session::worker_pool(), which returns nullptr at
/// parallelism 1 — the drivers then take their inline path, which executes
/// the very same sharded algorithms, keeping `threads=N` bit-identical to
/// `threads=1` (see shard.hpp for why the decomposition is deterministic).
///
/// The same pool carries both levels of a batch run (see batch.hpp): the
/// BatchRunner's (network, pass) tasks go through its task queue, and each
/// pass's FFR shards fan out over it via parallel_for underneath — one set
/// of workers, two granularities.

namespace mighty::flow {

class Executor {
public:
  /// `threads` is total parallelism including the thread calling run();
  /// an Executor of 1 thread performs no work (worker_pool() is nullptr).
  explicit Executor(uint32_t threads) : pool_(threads) {}

  uint32_t threads() const { return pool_.parallelism(); }

  /// The pool to hand to shard-parallel passes; nullptr when this executor
  /// is single-threaded (callers then run inline).
  util::ThreadPool* worker_pool() {
    return pool_.parallelism() > 1 ? &pool_ : nullptr;
  }

private:
  util::ThreadPool pool_;
};

}  // namespace mighty::flow
