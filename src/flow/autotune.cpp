#include "flow/autotune.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <random>
#include <set>
#include <stdexcept>
#include <utility>

#include "flow/batch.hpp"
#include "flow/session.hpp"

namespace mighty::flow {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// --- candidate representation ------------------------------------------------
//
// Mutations need structure (which '*' belongs to which group, where a group
// begins), so candidates live as a tiny AST mirroring the script grammar, and
// are rendered to script text for everything else: validation and
// canonicalization through Pipeline::parse, evaluation, reporting.

struct Item;
using Sequence = std::vector<Item>;

enum class Mod : uint8_t { once, repeat, converge };

struct Item {
  std::string word;  ///< leaf when non-empty ("TF", "size", "map4")
  Sequence body;     ///< group when non-empty
  Mod mod = Mod::once;
  uint32_t count = 0;  ///< repeat times / convergence round cap

  bool is_group() const { return word.empty(); }
};

/// Renders one candidate back to script text.  `cap` clamps every
/// convergence-round budget — the successive-halving rungs evaluate the same
/// structure under smaller budgets, so losers cost one round, not sixteen.
std::string render(const Sequence& sequence, uint32_t cap);

std::string render_item(const Item& item, uint32_t cap) {
  std::string out;
  if (item.is_group()) {
    // Built by append, not operator+: GCC 12's -Wrestrict misfires on the
    // `"(" + rvalue-string` overload (GCC PR105329).
    out += '(';
    out += render(item.body, cap);
    out += ')';
  } else {
    out = item.word;
    // A modifier on a bare word still round-trips without parentheses, but a
    // parenthesized single word is equally valid; keep words bare so the
    // canonical form matches what Pipeline::to_script emits.
  }
  switch (item.mod) {
    case Mod::once:
      break;
    case Mod::repeat:
      out += '*';
      out += std::to_string(item.count);
      break;
    case Mod::converge: {
      const uint32_t rounds = std::min(item.count, cap);
      out += '*';
      if (rounds != kDefaultConvergenceRounds) {
        out += '<';
        out += std::to_string(rounds);
      }
      break;
    }
  }
  return out;
}

std::string render(const Sequence& sequence, uint32_t cap) {
  std::string out;
  for (const auto& item : sequence) {
    if (!out.empty()) out += ";";
    out += render_item(item, cap);
  }
  return out;
}

size_t count_words(const Sequence& sequence) {
  size_t n = 0;
  for (const auto& item : sequence) {
    n += item.is_group() ? count_words(item.body) : 1;
  }
  return n;
}

/// Minimal recursive-descent parser from script text into the mutation AST.
/// Accepts exactly the candidate subset of the grammar: words, groups,
/// '*'-modifiers.  Session directives ("parallel:n", "cache:<path>") are
/// rejected up front — batch evaluation cannot run them, and the search must
/// not waste a generation discovering that.
class AstParser {
public:
  explicit AstParser(const std::string& script) : script_(script) {}

  Sequence parse() {
    Sequence result = sequence();
    skip_space();
    if (pos_ < script_.size()) {
      throw std::invalid_argument("autotune seed script: unexpected '" +
                                  std::string(1, script_[pos_]) + "' in \"" +
                                  script_ + '"');
    }
    return result;
  }

private:
  void skip_space() {
    while (pos_ < script_.size() &&
           std::isspace(static_cast<unsigned char>(script_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_space();
    return pos_ < script_.size() ? script_[pos_] : '\0';
  }

  Sequence sequence() {
    Sequence result;
    while (true) {
      const char c = peek();
      if (c == '\0' || c == ')') break;
      if (c == ';') {
        ++pos_;
        continue;
      }
      result.push_back(item());
    }
    return result;
  }

  Item item() {
    Item result;
    if (peek() == '(') {
      ++pos_;
      result.body = sequence();
      if (peek() != ')') {
        throw std::invalid_argument("autotune seed script: missing ')' in \"" +
                                    script_ + '"');
      }
      ++pos_;
      if (result.body.empty()) {
        throw std::invalid_argument("autotune seed script: empty group in \"" +
                                    script_ + '"');
      }
    } else {
      result.word = word();
    }
    if (peek() == '*') {
      ++pos_;
      if (peek() == '<') {
        ++pos_;
        result.mod = Mod::converge;
        result.count = integer();
      } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
        result.mod = Mod::repeat;
        result.count = integer();
      } else {
        result.mod = Mod::converge;
        result.count = kDefaultConvergenceRounds;
      }
    }
    return result;
  }

  std::string word() {
    skip_space();
    std::string text;
    while (pos_ < script_.size() &&
           std::isalnum(static_cast<unsigned char>(script_[pos_]))) {
      text += static_cast<char>(
          std::tolower(static_cast<unsigned char>(script_[pos_])));
      ++pos_;
    }
    if (pos_ < script_.size() && script_[pos_] == ':') {
      throw std::invalid_argument(
          "autotune search space excludes session directives ('" + text +
          ":...'): configure the session instead");
    }
    if (text.empty()) {
      throw std::invalid_argument("autotune seed script: expected a pass name in \"" +
                                  script_ + '"');
    }
    return text;
  }

  uint32_t integer() {
    // Mirrors the main grammar's integer(): consume every digit with a
    // saturating accumulator, then reject oversized counts outright — a
    // huge seed count must fail as "too large", not stop mid-number or wrap.
    constexpr uint64_t kMaxCount = 1'000'000;
    skip_space();
    uint64_t value = 0;
    size_t digits = 0;
    while (pos_ < script_.size() &&
           std::isdigit(static_cast<unsigned char>(script_[pos_]))) {
      if (value <= kMaxCount) {
        value = value * 10 + static_cast<uint64_t>(script_[pos_] - '0');
      }
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      throw std::invalid_argument("autotune seed script: expected a count in \"" +
                                  script_ + '"');
    }
    if (value > kMaxCount) {
      throw std::invalid_argument("autotune seed script: count too large in \"" +
                                  script_ + '"');
    }
    return static_cast<uint32_t>(value);
  }

  const std::string& script_;
  size_t pos_ = 0;
};

// --- mutation ----------------------------------------------------------------

/// Deterministic helper: r(n) below draws uniformly-enough from [0, n) with
/// identical results on every standard library (uniform_int_distribution is
/// implementation-defined, which would make the "same seed, same search"
/// guarantee compiler-dependent).
struct Rng {
  std::mt19937 engine;
  explicit Rng(uint32_t seed) : engine(seed) {}
  size_t operator()(size_t n) { return n == 0 ? 0 : engine() % n; }
};

/// Every sequence of a candidate, outermost first — the mutation sites.
void collect_sequences(Sequence& root, std::vector<Sequence*>& out) {
  out.push_back(&root);
  for (auto& item : root) {
    if (item.is_group()) collect_sequences(item.body, out);
  }
}

void collect_items(Sequence& root, std::vector<Item*>& out) {
  for (auto& item : root) {
    out.push_back(&item);
    if (item.is_group()) collect_items(item.body, out);
  }
}

/// Applies one structural mutation in place; returns false when the drawn
/// operator has no applicable site (the caller redraws).
bool mutate_once(Sequence& root, const std::vector<std::string>& vocabulary,
                 uint32_t max_words, uint32_t max_cap, Rng& rng) {
  std::vector<Sequence*> sequences;
  collect_sequences(root, sequences);
  std::vector<Item*> items;
  collect_items(root, items);

  switch (rng(6)) {
    case 0: {  // swap adjacent passes
      std::vector<Sequence*> sites;
      for (auto* seq : sequences) {
        if (seq->size() >= 2) sites.push_back(seq);
      }
      if (sites.empty()) return false;
      Sequence& seq = *sites[rng(sites.size())];
      const size_t i = rng(seq.size() - 1);
      std::swap(seq[i], seq[i + 1]);
      return true;
    }
    case 1: {  // bump/shrink a repeat count or convergence cap
      if (items.empty()) return false;
      Item& item = *items[rng(items.size())];
      const bool bump = rng(2) == 0;
      switch (item.mod) {
        case Mod::once:
          // An unmodified item is an implicit repeat of 1: bumping it makes
          // the "x*N" region of the grammar reachable.
          if (!bump) return false;
          item.mod = Mod::repeat;
          item.count = 2;
          return true;
        case Mod::repeat:
          // Repeats are exact work multipliers; keep them small, and fold
          // "x*1" back into the bare item.
          if (bump) {
            item.count = std::min(item.count + 1, 4u);
          } else if (--item.count <= 1) {
            item.mod = Mod::once;
            item.count = 0;
          }
          return true;
        case Mod::converge:
          // Caps above the full budget would be clamped away at render time;
          // bumping past max_cap only manufactures duplicates.
          item.count = bump ? std::min(item.count * 2, max_cap)
                            : std::max(item.count / 2, 1u);
          return true;
      }
      return false;
    }
    case 2: {  // wrap a span in a "(...)*" convergence group
      if (count_words(root) >= max_words) return false;  // groups invite growth
      Sequence& seq = *sequences[rng(sequences.size())];
      if (seq.empty()) return false;
      const size_t begin = rng(seq.size());
      const size_t len = 1 + rng(seq.size() - begin);
      Item group;
      group.mod = Mod::converge;
      group.count = max_cap;
      group.body.assign(seq.begin() + static_cast<long>(begin),
                        seq.begin() + static_cast<long>(begin + len));
      seq.erase(seq.begin() + static_cast<long>(begin),
                seq.begin() + static_cast<long>(begin + len));
      seq.insert(seq.begin() + static_cast<long>(begin), std::move(group));
      return true;
    }
    case 3: {  // unwrap a group (drop its modifier, splice the body)
      std::vector<std::pair<Sequence*, size_t>> sites;
      for (auto* seq : sequences) {
        for (size_t i = 0; i < seq->size(); ++i) {
          if ((*seq)[i].is_group()) sites.emplace_back(seq, i);
        }
      }
      if (sites.empty()) return false;
      auto [seq, index] = sites[rng(sites.size())];
      Sequence body = std::move((*seq)[index].body);
      seq->erase(seq->begin() + static_cast<long>(index));
      seq->insert(seq->begin() + static_cast<long>(index),
                  std::make_move_iterator(body.begin()),
                  std::make_move_iterator(body.end()));
      return true;
    }
    case 4: {  // replace a pass word
      std::vector<Item*> sites;
      for (auto* item : items) {
        if (!item->is_group()) sites.push_back(item);
      }
      if (sites.empty()) return false;
      Item& item = *sites[rng(sites.size())];
      const std::string& word = vocabulary[rng(vocabulary.size())];
      if (word == item.word) return false;
      item.word = word;
      return true;
    }
    default: {  // insert or delete a pass word
      if (rng(2) == 0 && count_words(root) < max_words) {
        Sequence& seq = *sequences[rng(sequences.size())];
        Item item;
        item.word = vocabulary[rng(vocabulary.size())];
        seq.insert(seq.begin() + static_cast<long>(rng(seq.size() + 1)),
                   std::move(item));
        return true;
      }
      if (count_words(root) <= 1 || items.empty()) return false;
      std::vector<std::pair<Sequence*, size_t>> sites;
      for (auto* seq : sequences) {
        for (size_t i = 0; i < seq->size(); ++i) sites.emplace_back(seq, i);
      }
      auto [seq, index] = sites[rng(sites.size())];
      seq->erase(seq->begin() + static_cast<long>(index));
      // Dropping a group's last sibling may leave an empty group upstream;
      // prune those so the render always parses.
      std::function<void(Sequence&)> prune = [&](Sequence& s) {
        for (auto& item : s) {
          if (item.is_group()) prune(item.body);
        }
        s.erase(std::remove_if(s.begin(), s.end(),
                               [](const Item& item) {
                                 return item.is_group() && item.body.empty();
                               }),
                s.end());
      };
      prune(root);
      return count_words(root) >= 1;
    }
  }
}

// --- evaluation --------------------------------------------------------------

struct Evaluation {
  uint32_t size = 0;
  uint64_t depth = 0;
  uint64_t objective = 0;
  double seconds = 0.0;
  bool failed = false;
};

uint64_t objective_value(Objective objective, const BatchReport& batch) {
  switch (objective) {
    case Objective::size:
      return batch.size_after;
    case Objective::depth:
      return batch.depth_after;
    case Objective::product: {
      uint64_t total = 0;
      for (const auto& network : batch.networks) {
        total += static_cast<uint64_t>(network.flow.size_after) *
                 network.flow.depth_after;
      }
      return total;
    }
  }
  return 0;
}

struct Candidate {
  Sequence ast;
  std::string canonical;  ///< Pipeline::parse(render).to_script()
};

}  // namespace

// --- objective names ---------------------------------------------------------

Objective parse_objective(const std::string& name) {
  std::string lower;
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "size") return Objective::size;
  if (lower == "depth") return Objective::depth;
  if (lower == "product" || lower == "size*depth") return Objective::product;
  throw std::invalid_argument("unknown autotune objective \"" + name +
                              "\" (size, depth, product)");
}

const char* objective_name(Objective objective) {
  switch (objective) {
    case Objective::size:
      return "size";
    case Objective::depth:
      return "depth";
    case Objective::product:
      return "product";
  }
  return "?";
}

// --- TuneReport --------------------------------------------------------------

const TuneEntry& TuneReport::best() const {
  return evaluated.empty() ? baseline : evaluated.front();
}

std::vector<TuneEntry> TuneReport::pareto_front() const {
  std::vector<TuneEntry> front;
  for (const auto& entry : evaluated) {
    if (entry.pareto) front.push_back(entry);
  }
  return front;
}

std::string TuneReport::summary() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-8s %8s %7s %12s %8s  %s\n", "", "size",
                "depth", "objective", "time[s]", "script");
  out += line;
  for (const auto& entry : evaluated) {
    std::snprintf(line, sizeof(line), "%-8s %8u %7llu %12llu %8.2f  %s\n",
                  entry.pareto ? "pareto" : "", entry.size,
                  static_cast<unsigned long long>(entry.depth),
                  static_cast<unsigned long long>(entry.objective), entry.seconds,
                  entry.script.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-8s %8u %7llu %12llu %8.2f  %s\n", "baseline",
                baseline.size, static_cast<unsigned long long>(baseline.depth),
                static_cast<unsigned long long>(baseline.objective),
                baseline.seconds, baseline.script.c_str());
  out += line;
  const TuneEntry& winner = best();
  const double gain =
      baseline.objective == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(winner.objective) /
                               static_cast<double>(baseline.objective));
  std::snprintf(line, sizeof(line),
                "best: %s (objective %llu, %+.1f%% vs baseline)\n"
                "search: %zu candidates, %zu duplicates pruned, %zu invalid, "
                "%zu evaluations, %.2fs\n",
                winner.script.c_str(),
                static_cast<unsigned long long>(winner.objective), gain,
                candidates_generated, duplicates_pruned, invalid_rejected,
                evaluations, seconds);
  out += line;
  return out;
}

// --- Autotuner ---------------------------------------------------------------

Autotuner::Autotuner(Session& session, TuneParams params)
    : session_(session), params_(std::move(params)) {}

Pipeline Autotuner::tune(const mig::Mig& network, TuneReport* report) {
  Corpus corpus;
  corpus.add("network", network);
  return tune(corpus, report);
}

Pipeline Autotuner::tune(const Corpus& corpus, TuneReport* report) {
  if (corpus.empty()) {
    throw std::invalid_argument("autotune needs a non-empty corpus");
  }
  if (params_.population == 0) {
    throw std::invalid_argument("autotune population must be at least 1");
  }
  if (params_.full_round_cap == 0) {
    throw std::invalid_argument("autotune round cap must be at least 1");
  }

  TuneReport local;
  TuneReport& out = report != nullptr ? (*report = TuneReport{}, *report) : local;
  const auto search_start = std::chrono::steady_clock::now();

  std::vector<std::string> vocabulary = params_.vocabulary;
  if (vocabulary.empty()) {
    vocabulary = {"TF", "TFD", "BF", "BFD", "size", "depth"};
    if (params_.five_input_words) {
      for (const char* word : {"TF5", "TFD5", "BF5", "BFD5"}) {
        vocabulary.push_back(word);
      }
    }
  }
  for (auto& word : vocabulary) {
    Pipeline::parse(word);  // throws with the offending word on a bad vocabulary
    // AST words are stored lowercase (the grammar is case-insensitive);
    // vocabulary words must match, or the replace-mutation's no-op guard
    // ("drew the item's own word") never fires.
    for (auto& c : word) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }

  std::vector<std::string> seeds = params_.seed_scripts;
  if (seeds.empty()) {
    // The paper's flows: the default baseline, its unrolled prefix form, a
    // depth-first warmup, the depth-preserving dual and a cheap two-pass —
    // diverse enough that first-generation mutants cover order, grouping and
    // budget changes.
    seeds = {kBaselineScript, "TF;(BFD;size)*", "depth;(TF;size)*", "(TFD;size)*",
             "BF;size"};
  } else {
    // The baseline is always part of the search: it is the bar to beat and
    // the fallback winner.
    if (std::find(seeds.begin(), seeds.end(), kBaselineScript) == seeds.end()) {
      seeds.insert(seeds.begin(), kBaselineScript);
    }
  }

  // Canonicalize one candidate script: parse into the engine's structure and
  // re-emit.  Throws on scripts the grammar rejects.
  const auto canonicalize = [](const std::string& script) {
    const Pipeline pipeline = Pipeline::parse(script);
    if (pipeline.mutates_session()) {
      throw std::invalid_argument(
          "autotune candidates must not contain session directives: " + script);
    }
    if (pipeline.empty()) {
      throw std::invalid_argument("autotune candidate is empty: " + script);
    }
    return pipeline.to_script();
  };

  // One batch evaluation of `script`, memoized on the script text alone —
  // the rung budget is already baked into the rendered caps, so a candidate
  // without convergence groups costs one evaluation across all rungs.  The
  // memo makes re-encounters free *and* keeps the search deterministic: a
  // cached result is bit-identical to a fresh one, so hitting the memo can
  // never change a selection.
  std::map<std::string, Evaluation> memo;
  const auto evaluate = [&](const std::string& script) -> const Evaluation& {
    auto it = memo.find(script);
    if (it != memo.end()) return it->second;
    Evaluation eval;
    BatchReport batch;
    try {
      BatchRunner(session_).run(corpus, Pipeline::parse(script), &batch);
      if (batch.failures() > 0) {
        eval.failed = true;
      } else {
        eval.size = batch.size_after;
        eval.depth = batch.depth_after;
        eval.objective = objective_value(params_.objective, batch);
        eval.seconds = batch.seconds;
      }
    } catch (const std::exception&) {
      eval.failed = true;
    }
    ++out.evaluations;
    return memo.emplace(script, std::move(eval)).first->second;
  };

  // Budget ladder for successive halving: losers get one convergence round,
  // the middle rung a few, and only graduates pay the full budget.
  std::vector<uint32_t> ladder;
  for (const uint32_t cap : {1u, 4u}) {
    if (cap < params_.full_round_cap) ladder.push_back(cap);
  }
  ladder.push_back(params_.full_round_cap);

  Rng rng(params_.seed);
  std::set<std::string> seen;            // canonical forms ever pooled
  std::map<std::string, TuneEntry> graduated;  // canonical -> full-budget entry

  // Record one full-budget evaluation as a report entry.
  const auto graduate = [&](const Candidate& candidate) {
    if (graduated.count(candidate.canonical) > 0) return;
    const Evaluation& eval = evaluate(candidate.canonical);
    if (eval.failed) {
      ++out.invalid_rejected;
      return;
    }
    TuneEntry entry;
    entry.script = candidate.canonical;
    entry.size = eval.size;
    entry.depth = eval.depth;
    entry.objective = eval.objective;
    entry.seconds = eval.seconds;
    graduated.emplace(candidate.canonical, std::move(entry));
  };

  // Seed pool.
  std::vector<Candidate> pool;
  for (const auto& seed : seeds) {
    Candidate candidate;
    candidate.ast = AstParser(seed).parse();
    candidate.canonical = canonicalize(render(candidate.ast, params_.full_round_cap));
    if (!seen.insert(candidate.canonical).second) continue;
    ++out.candidates_generated;
    pool.push_back(std::move(candidate));
  }

  // The baseline always graduates, even if a rung would prune it — the
  // report's bar to beat must exist.
  {
    Candidate baseline;
    baseline.ast = AstParser(kBaselineScript).parse();
    // Rendered under the same full-budget clamp as every candidate: with a
    // non-default full_round_cap the bar to beat must run the same number of
    // convergence rounds the winners are allowed, or the comparison (and the
    // bench's "strictly beats baseline" gate) would use unequal budgets.
    baseline.canonical = canonicalize(render(baseline.ast, params_.full_round_cap));
    graduate(baseline);
    const auto it = graduated.find(baseline.canonical);
    if (it == graduated.end()) {
      throw std::runtime_error("autotune baseline failed to evaluate on this corpus");
    }
    out.baseline = it->second;
  }

  const size_t parents = std::max<size_t>(2, params_.population / 4);
  for (uint32_t generation = 0;; ++generation) {
    // Grow the pool to `population` with mutants of the current members
    // (generation 0 mutates the seeds).
    const std::vector<Candidate> basis = pool;
    size_t attempts = 0;
    const size_t max_attempts = 20u * params_.population + 100u;
    while (pool.size() < params_.population && !basis.empty() &&
           attempts < max_attempts) {
      ++attempts;
      Candidate mutant = basis[rng(basis.size())];
      if (!mutate_once(mutant.ast, vocabulary, params_.max_words,
                       params_.full_round_cap, rng)) {
        continue;
      }
      std::string canonical;
      try {
        canonical = canonicalize(render(mutant.ast, params_.full_round_cap));
      } catch (const std::invalid_argument&) {
        ++out.invalid_rejected;
        continue;
      }
      if (!seen.insert(canonical).second) {
        ++out.duplicates_pruned;
        continue;
      }
      mutant.canonical = std::move(canonical);
      ++out.candidates_generated;
      pool.push_back(std::move(mutant));
    }

    // Successive halving over the budget ladder: evaluate everyone under the
    // rung's cap, keep the better half (ties break on the canonical script,
    // so selection is deterministic), graduate whoever survives the last rung.
    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      const uint32_t cap = ladder[rung];
      std::vector<std::pair<std::pair<uint64_t, std::string>, size_t>> ranked;
      for (size_t i = 0; i < pool.size(); ++i) {
        const std::string budgeted =
            rung + 1 == ladder.size()
                ? pool[i].canonical
                : canonicalize(render(pool[i].ast, cap));
        const Evaluation& eval = evaluate(budgeted);
        if (eval.failed) {
          ++out.invalid_rejected;
          continue;
        }
        ranked.push_back({{eval.objective, pool[i].canonical}, i});
      }
      std::sort(ranked.begin(), ranked.end());
      const size_t keep = rung + 1 == ladder.size()
                              ? ranked.size()
                              : std::max<size_t>(parents, (ranked.size() + 1) / 2);
      std::vector<Candidate> survivors;
      for (size_t i = 0; i < ranked.size() && i < keep; ++i) {
        survivors.push_back(std::move(pool[ranked[i].second]));
      }
      pool = std::move(survivors);
    }
    for (const auto& candidate : pool) graduate(candidate);

    if (generation >= params_.generations) break;

    // Parents of the next generation: the best graduates so far.
    std::vector<const TuneEntry*> entries;
    entries.reserve(graduated.size());
    for (const auto& [script, entry] : graduated) entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const TuneEntry* a, const TuneEntry* b) {
                return std::make_pair(a->objective, a->script) <
                       std::make_pair(b->objective, b->script);
              });
    pool.clear();
    for (size_t i = 0; i < entries.size() && i < parents; ++i) {
      Candidate parent;
      parent.ast = AstParser(entries[i]->script).parse();
      parent.canonical = entries[i]->script;
      pool.push_back(std::move(parent));
    }
  }

  // Report: every graduate, best objective first; Pareto flags on (size,
  // depth) — wall time is informative, never a dominance criterion.
  out.evaluated.reserve(graduated.size());
  for (auto& [script, entry] : graduated) out.evaluated.push_back(entry);
  std::sort(out.evaluated.begin(), out.evaluated.end(),
            [](const TuneEntry& a, const TuneEntry& b) {
              return std::make_pair(a.objective, a.script) <
                     std::make_pair(b.objective, b.script);
            });
  for (auto& entry : out.evaluated) {
    entry.pareto = true;
    for (const auto& other : out.evaluated) {
      const bool leq = other.size <= entry.size && other.depth <= entry.depth;
      const bool strict = other.size < entry.size || other.depth < entry.depth;
      if (leq && strict) {
        entry.pareto = false;
        break;
      }
    }
    // The baseline entry was copied out before the flags existed; keep the
    // copy's pareto field in sync with its twin in `evaluated`.
    if (entry.script == out.baseline.script) out.baseline.pareto = entry.pareto;
  }
  out.seconds = seconds_since(search_start);
  return Pipeline::parse(out.best().script);
}

}  // namespace mighty::flow
