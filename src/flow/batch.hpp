#pragma once

#include <string>
#include <vector>

#include "flow/corpus.hpp"
#include "flow/pass.hpp"
#include "flow/pipeline.hpp"

/// \file batch.hpp
/// \brief Corpus-level batch execution: many networks in flight on one
/// session, oracle shared corpus-wide.
///
/// A standalone Pipeline::run optimizes one network; BatchRunner executes the
/// same pipeline over a whole Corpus with a two-level scheduler:
///
///   * outer level — the unit of scheduling is a *(network, pass)* task.
///     Every network starts with its first top-level pass queued; finishing
///     pass i enqueues pass i+1 of the same network, so many networks are in
///     flight at once and short networks never wait for long ones.
///   * inner level — each pass still fans out over FFR shards through the
///     very same util::ThreadPool (the shard-parallel drivers of PR 2),
///     soaking up idle workers whenever fewer networks than threads remain.
///
/// The session's ReplacementOracle — including the 5-input synthesis cache —
/// and the NPN-lookup memo serve every task of every network, so one
/// benchmark's synthesis work warms the next: the corpus-wide reuse the
/// paper's functional hashing is built on.
///
/// Determinism: a network's result in a `threads=N` batch is bit-identical
/// to its standalone `threads=1` run.  Both levels only decide *where* and
/// *when* work executes, never *what* is computed — passes are bit-identical
/// at any thread count (PR 2), and oracle answers are a pure function of the
/// queried truth table, so sharing the cache across networks changes cost,
/// never results.
///
///   flow::Session session;
///   session.set_threads(8);
///   auto corpus = flow::Corpus::from_directory("data/corpus");
///   flow::BatchReport report;
///   auto optimized = flow::BatchRunner(session).run(
///       corpus, flow::Pipeline::parse("TF; (BFD; size)*"), &report);
///   fputs(report.summary().c_str(), stdout);

namespace mighty::flow {

/// One network's outcome in a batch run.
struct NetworkReport {
  std::string name;
  /// Per-pass trajectory and totals, exactly as a standalone Pipeline::run
  /// would report them (seconds sums task execution time, excluding time the
  /// network spent queued behind others).
  FlowReport flow;
  /// Non-empty when the pipeline failed on this network; the batch continues
  /// with the remaining networks and the result keeps the input unchanged.
  std::string error;
};

/// Roll-up over a whole batch: per-network reports plus corpus-wide totals.
struct BatchReport {
  std::vector<NetworkReport> networks;
  double seconds = 0.0;  ///< wall time of the whole batch run

  // Corpus-wide totals, summed over networks that completed.
  uint32_t size_before = 0;
  uint32_t size_after = 0;
  uint64_t depth_before = 0;  ///< sum of per-network depths (for delta ratios)
  uint64_t depth_after = 0;
  uint64_t oracle_queries = 0;
  uint64_t oracle_answered = 0;
  uint64_t oracle_cache5_hits = 0;
  uint64_t oracle_synthesized = 0;
  uint64_t oracle_failures = 0;

  size_t failures() const;
  /// Fraction of oracle queries answered with a replacement; 1.0 if none.
  double oracle_hit_rate() const;
  /// Fraction of 5-input cache lookups served without touching the SAT
  /// solver — the number that grows when networks share one warm oracle
  /// (cold sessions re-synthesize what the corpus already knows).  1.0 when
  /// the flow never looked at a 5-input cut.
  double cache5_reuse_rate() const;

  /// Recomputes the corpus-wide totals from the per-network reports.
  void finalize();

  /// Per-network table plus the corpus totals line.
  std::string summary() const;
};

/// Executes one Pipeline over a Corpus on a shared Session.
class BatchRunner {
public:
  explicit BatchRunner(Session& session) : session_(session) {}

  /// Runs `pipeline` over every corpus entry; returns the optimized networks
  /// in corpus order.  With session parallelism 1 networks run sequentially
  /// in corpus order; otherwise the two-level scheduler above applies — the
  /// results are bit-identical either way.  When `report` is given it is
  /// reset and filled with per-network reports and the corpus roll-up.
  ///
  /// Throws std::invalid_argument if the pipeline contains a "parallel:n"
  /// directive: that knob rebuilds the session's executor, which must not
  /// happen while batch tasks run on it — set Session::set_threads (or the
  /// session params) before the batch instead.
  std::vector<mig::Mig> run(const Corpus& corpus, const Pipeline& pipeline,
                            BatchReport* report = nullptr);

private:
  Session& session_;
};

}  // namespace mighty::flow
