#pragma once

/// \file flow.hpp
/// \brief Umbrella header for the composable optimization-flow API.
///
/// Quickstart:
///
///   #include "flow/flow.hpp"
///
///   flow::Session session;                       // owns db + oracle + stats
///   auto pipeline = flow::Pipeline::parse("TF; (BFD; size)*; map");
///   flow::FlowReport report;
///   auto optimized = pipeline.run(mig, session, &report);
///   fputs(report.summary().c_str(), stdout);
///
/// Whole corpus at once, oracle shared across every network:
///
///   auto corpus = flow::Corpus::from_directory("data/corpus");
///   flow::BatchReport batch;
///   auto optimized = flow::BatchRunner(session).run(corpus, pipeline, &batch);
///
/// Searching the script grammar itself for the best flow under an objective:
///
///   flow::Autotuner tuner(session, {.objective = flow::Objective::size});
///   flow::TuneReport tuned;
///   auto best = tuner.tune(corpus, &tuned);   // best().script reproduces it
///
/// See session.hpp (shared state), pass.hpp (the pass vocabulary),
/// pipeline.hpp (composition, combinators and the script grammar),
/// corpus.hpp / batch.hpp (corpus-level batch execution), and autotune.hpp
/// (flow search over the script grammar).

#include "flow/autotune.hpp"  // IWYU pragma: export
#include "flow/batch.hpp"     // IWYU pragma: export
#include "flow/corpus.hpp"    // IWYU pragma: export
#include "flow/pass.hpp"      // IWYU pragma: export
#include "flow/pipeline.hpp"  // IWYU pragma: export
#include "flow/session.hpp"   // IWYU pragma: export
