#pragma once

/// \file flow.hpp
/// \brief Umbrella header for the composable optimization-flow API.
///
/// Quickstart:
///
///   #include "flow/flow.hpp"
///
///   flow::Session session;                       // owns db + oracle + stats
///   auto pipeline = flow::Pipeline::parse("TF; (BFD; size)*; map");
///   flow::FlowReport report;
///   auto optimized = pipeline.run(mig, session, &report);
///   fputs(report.summary().c_str(), stdout);
///
/// See session.hpp (shared state), pass.hpp (the pass vocabulary) and
/// pipeline.hpp (composition, combinators and the script grammar).

#include "flow/pass.hpp"      // IWYU pragma: export
#include "flow/pipeline.hpp"  // IWYU pragma: export
#include "flow/session.hpp"   // IWYU pragma: export
