#include <algorithm>
#include <cctype>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "check/check.hpp"
#include "flow/pass.hpp"
#include "flow/session.hpp"

namespace mighty::flow {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Functional hashing through the session's shared oracle.
class RewritePass final : public Pass {
public:
  RewritePass(const opt::RewriteParams& params, std::string name)
      : params_(params), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  mig::Mig run(const mig::Mig& mig, Session& session,
               FlowReport& report) const override {
    // 5-input passes whose oracle budget differs from the session's cannot
    // share the session oracle (its synthesis results depend on the budget);
    // they fall back to a private per-pass oracle, like the legacy API.
    const auto& session_oracle = session.params().oracle;
    const bool needs_private_oracle =
        params_.five_input_cuts &&
        (!session_oracle.enable_five_input ||
         session_oracle.synthesis_conflict_limit != params_.synthesis_conflict_limit);
    std::optional<opt::ReplacementOracle> private_oracle;
    if (needs_private_oracle) {
      opt::OracleParams oracle_params;
      oracle_params.enable_five_input = true;
      oracle_params.synthesis_conflict_limit = params_.synthesis_conflict_limit;
      private_oracle.emplace(session.database(), oracle_params);
    }
    opt::ReplacementOracle& oracle =
        private_oracle ? *private_oracle : session.oracle();

    opt::RewriteStats stats;
    // The session's worker pool is injected at run time, so one Pipeline can
    // serve sessions of any parallelism (results are identical either way).
    opt::RewriteParams params = params_;
    params.pool = session.worker_pool();
    auto result = opt::functional_hashing(mig, oracle, params, &stats);

    PassStats entry;
    entry.name = name_;
    entry.size_before = stats.size_before;
    entry.size_after = stats.size_after;
    entry.depth_before = stats.depth_before;
    entry.depth_after = stats.depth_after;
    entry.cuts_evaluated = stats.cuts_evaluated;
    entry.replacements = stats.replacements;
    // Per-call tally, not lifetime-counter deltas: exact attribution even
    // while other networks of a batch hammer the same shared oracle.
    entry.oracle_queries = stats.oracle_queries;
    entry.oracle_answered = stats.oracle_answered;
    entry.oracle_cache5_hits = stats.oracle_cache5_hits;
    entry.oracle_synthesized = stats.oracle_synthesized;
    entry.oracle_failures = stats.oracle_failures;
    entry.seconds = stats.seconds;
    report.passes.push_back(std::move(entry));
    return result;
  }

  bool uses_oracle() const override { return true; }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<RewritePass>(params_, name_);
  }

private:
  opt::RewriteParams params_;
  std::string name_;
};

class SizePass final : public Pass {
public:
  explicit SizePass(const algebra::SizeOptParams& params) : params_(params) {}

  std::string name() const override { return "size"; }

  mig::Mig run(const mig::Mig& mig, Session& session,
               FlowReport& report) const override {
    const auto start = std::chrono::steady_clock::now();
    algebra::AlgebraStats stats;
    algebra::SizeOptParams params = params_;
    params.pool = session.worker_pool();
    auto result = algebra::size_optimize(mig, params, &stats);
    PassStats entry;
    entry.name = name();
    entry.size_before = stats.size_before;
    entry.size_after = stats.size_after;
    entry.depth_before = stats.depth_before;
    entry.depth_after = stats.depth_after;
    entry.seconds = seconds_since(start);
    report.passes.push_back(std::move(entry));
    return result;
  }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<SizePass>(params_);
  }

private:
  algebra::SizeOptParams params_;
};

class DepthPass final : public Pass {
public:
  explicit DepthPass(const algebra::DepthOptParams& params) : params_(params) {}

  std::string name() const override { return "depth"; }

  mig::Mig run(const mig::Mig& mig, Session&, FlowReport& report) const override {
    const auto start = std::chrono::steady_clock::now();
    algebra::AlgebraStats stats;
    auto result = algebra::depth_optimize(mig, params_, &stats);
    PassStats entry;
    entry.name = name();
    entry.size_before = stats.size_before;
    entry.size_after = stats.size_after;
    entry.depth_before = stats.depth_before;
    entry.depth_after = stats.depth_after;
    entry.seconds = seconds_since(start);
    report.passes.push_back(std::move(entry));
    return result;
  }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<DepthPass>(params_);
  }

private:
  algebra::DepthOptParams params_;
};

/// Analysis pass: maps onto k-LUTs for reporting and passes the MIG through.
class LutMapPass final : public Pass {
public:
  explicit LutMapPass(const map::MapParams& params) : params_(params) {}

  std::string name() const override {
    return params_.lut_size == 6 ? "map" : "map" + std::to_string(params_.lut_size);
  }

  mig::Mig run(const mig::Mig& mig, Session&, FlowReport& report) const override {
    const auto start = std::chrono::steady_clock::now();
    const auto mapping = map::map_luts(mig, params_);
    PassStats entry;
    entry.name = name();
    entry.size_before = entry.size_after = mig.count_live_gates();
    entry.depth_before = entry.depth_after = mig.depth();
    entry.is_mapping = true;
    entry.num_luts = mapping.num_luts;
    entry.lut_depth = mapping.depth;
    entry.seconds = seconds_since(start);
    report.passes.push_back(std::move(entry));
    return mig;
  }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<LutMapPass>(params_);
  }

private:
  map::MapParams params_;
};

/// Execution directive: "parallel:n" adjusts the session's thread count and
/// leaves both the network and the trajectory untouched.
class ParallelPass final : public Pass {
public:
  explicit ParallelPass(uint32_t threads) : threads_(threads) {}

  std::string name() const override {
    return "parallel:" + std::to_string(threads_);
  }

  mig::Mig run(const mig::Mig& mig, Session& session, FlowReport&) const override {
    session.set_threads(threads_);
    return mig;
  }

  bool mutates_session() const override { return true; }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<ParallelPass>(threads_);
  }

private:
  uint32_t threads_;
};

/// Session directive: "cache:<path>" attaches the persistent 5-input oracle
/// cache.  Like ParallelPass it reconfigures the session, not the network.
class CachePass final : public Pass {
public:
  explicit CachePass(std::string path) : path_(std::move(path)) {}

  std::string name() const override { return "cache:" + path_; }

  mig::Mig run(const mig::Mig& mig, Session& session, FlowReport&) const override {
    // Attach once: inside a repeated pipeline the path is unchanged after
    // the first round, and the file must not be re-parsed every iteration.
    if (session.cache_path() != path_) {
      session.set_cache_path(path_);
      // A live oracle merges now; a lazy one merges when it materializes.
      if (session.oracle_if_created() != nullptr) session.load_cache();
    }
    return mig;
  }

  bool mutates_session() const override { return true; }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<CachePass>(path_);
  }

private:
  std::string path_;
};

/// Explicit validation point: the "check" script word runs the full
/// invariant suite on the current network no matter what the session's
/// between-pass level is, so scripts can assert well-formedness exactly
/// where it matters (after an untrusted reader, before an expensive flow).
class CheckPass final : public Pass {
public:
  std::string name() const override { return "check"; }

  mig::Mig run(const mig::Mig& mig, Session&, FlowReport& report) const override {
    const auto start = std::chrono::steady_clock::now();
    const auto result = check::validate_at(mig, /*full=*/true);
    PassStats entry;
    entry.name = name();
    entry.size_before = entry.size_after = mig.count_live_gates();
    entry.depth_before = entry.depth_after = mig.depth();
    entry.seconds = seconds_since(start);
    report.passes.push_back(std::move(entry));
    if (!result.ok()) {
      throw std::logic_error("check failed:\n" + result.summary());
    }
    return mig;
  }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<CheckPass>();
  }
};

}  // namespace

std::unique_ptr<Pass> make_rewrite_pass(const std::string& variant) {
  std::string canonical = variant;
  std::transform(canonical.begin(), canonical.end(), canonical.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // A trailing '5' selects the 5-input-cut extension of the variant ("TF5"),
  // served by the session's shared synthesis cache — the flavor whose work
  // batch runs amortize corpus-wide.
  opt::RewriteParams params;
  if (canonical.size() > 1 && canonical.back() == '5') {
    params = opt::variant_params(canonical.substr(0, canonical.size() - 1));
    params.five_input_cuts = true;
  } else {
    params = opt::variant_params(canonical);
  }
  return std::make_unique<RewritePass>(params, std::move(canonical));
}

std::unique_ptr<Pass> make_rewrite_pass(const opt::RewriteParams& params,
                                        std::string name) {
  return std::make_unique<RewritePass>(params, std::move(name));
}

std::unique_ptr<Pass> make_size_pass(const algebra::SizeOptParams& params) {
  return std::make_unique<SizePass>(params);
}

std::unique_ptr<Pass> make_depth_pass(const algebra::DepthOptParams& params) {
  return std::make_unique<DepthPass>(params);
}

std::unique_ptr<Pass> make_lut_map_pass(const map::MapParams& params) {
  return std::make_unique<LutMapPass>(params);
}

std::unique_ptr<Pass> make_parallel_pass(uint32_t threads) {
  return std::make_unique<ParallelPass>(threads == 0 ? 1 : threads);
}

std::unique_ptr<Pass> make_cache_pass(std::string path) {
  return std::make_unique<CachePass>(std::move(path));
}

std::unique_ptr<Pass> make_check_pass() {
  return std::make_unique<CheckPass>();
}

}  // namespace mighty::flow
