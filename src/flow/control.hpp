#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

/// \file control.hpp
/// \brief Cooperative cancellation and resource budgets for pipeline runs.
///
/// A RunControl rides along a Pipeline::run via FlowReport::control and is
/// consulted at every pass boundary — composite passes (repeat, convergence)
/// recurse through run_into, so enforcement reaches every nesting level
/// without threading a parameter through Pass::run.  Checks are cooperative:
/// a pass that is mid-rewrite finishes its pass before the budget verdict
/// lands, which bounds overshoot to one pass.
///
/// The api layer owns one RunControl per job; cancel() from any thread stops
/// the job at the next boundary.

namespace mighty::flow {

struct RunControl {
  /// Set from any thread to stop the run at the next pass boundary
  /// (api::ErrorCode::cancelled).
  std::atomic<bool> cancel{false};

  /// Largest live-gate count an intermediate network may reach; 0 = no cap.
  uint32_t node_budget = 0;

  /// Total SAT-conflict allowance, measured as synthesis attempts times the
  /// session's per-call conflict limit; 0 = no cap.
  uint64_t conflict_budget = 0;

  /// Wall-clock deadline; only consulted when has_deadline is set.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  /// Arms the deadline `seconds` from now (<= 0 disarms).
  void arm_deadline(double seconds) {
    has_deadline = seconds > 0.0;
    if (has_deadline) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
    }
  }
};

}  // namespace mighty::flow
