#include "flow/pipeline.hpp"

#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "api/error.hpp"
#include "check/check.hpp"
#include "flow/control.hpp"
#include "flow/session.hpp"

namespace mighty::flow {

namespace {

/// Pass-boundary verdict on the run control riding on the report: throws
/// api::Error with the matching stable code on cancellation or a blown
/// budget.  The conflict budget is charged per synthesis attempt (successes
/// and failures both ran the solver) at the session's per-call conflict
/// limit — the same coin the oracle spends.
void enforce_run_control(const RunControl* control, const mig::Mig& current,
                         const FlowReport& report, const Session& session) {
  if (control == nullptr) return;
  if (control->cancel.load(std::memory_order_relaxed)) {
    throw api::Error(api::ErrorCode::cancelled, "flow cancelled");
  }
  if (control->has_deadline &&
      std::chrono::steady_clock::now() >= control->deadline) {
    throw api::Error(api::ErrorCode::wall_budget_exceeded,
                     "flow exceeded its wall-clock budget");
  }
  if (control->node_budget != 0) {
    const uint32_t size = current.count_live_gates();
    if (size > control->node_budget) {
      throw api::Error(api::ErrorCode::node_budget_exceeded,
                       "network grew to " + std::to_string(size) +
                           " gates (budget " +
                           std::to_string(control->node_budget) + ")");
    }
  }
  if (control->conflict_budget != 0) {
    uint64_t attempts = 0;
    for (const auto& pass : report.passes) {
      attempts += pass.oracle_synthesized + pass.oracle_failures;
    }
    const uint64_t spent =
        attempts * session.params().oracle.synthesis_conflict_limit;
    if (spent > control->conflict_budget) {
      throw api::Error(api::ErrorCode::conflict_budget_exceeded,
                       "flow spent ~" + std::to_string(spent) +
                           " SAT conflicts (budget " +
                           std::to_string(control->conflict_budget) + ")");
    }
  }
}

/// A pipeline nested as a single pass: the body of repeat()/until_convergence()
/// and of parenthesized script groups.
class GroupPass : public Pass {
public:
  explicit GroupPass(Pipeline body) : body_(std::move(body)) {}

  bool uses_oracle() const override { return body_.uses_oracle(); }
  bool mutates_session() const override { return body_.mutates_session(); }

protected:
  /// Body in script form, parenthesized whenever it is not a single plain
  /// word — nested combinators ("BF*2" inside a repeat) must group, or the
  /// emitted script would stack '*' suffixes the grammar rejects.
  std::string body_script() const {
    const auto script = body_.to_string();
    const bool plain_word =
        body_.num_passes() == 1 &&
        script.find_first_of("*();") == std::string::npos;
    return plain_word ? script : "(" + script + ")";
  }

  Pipeline body_;
};

class RepeatPass final : public GroupPass {
public:
  RepeatPass(Pipeline body, uint32_t times)
      : GroupPass(std::move(body)), times_(times) {}

  std::string name() const override {
    return body_script() + "*" + std::to_string(times_);
  }

  mig::Mig run(const mig::Mig& mig, Session& session,
               FlowReport& report) const override {
    mig::Mig current = mig;
    for (uint32_t i = 0; i < times_; ++i) {
      current = body_.run_into(current, session, report);
    }
    return current;
  }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<RepeatPass>(body_, times_);
  }

private:
  uint32_t times_;
};

class ConvergePass final : public GroupPass {
public:
  static constexpr uint32_t kDefaultMaxRounds = kDefaultConvergenceRounds;

  ConvergePass(Pipeline body, uint32_t max_rounds)
      : GroupPass(std::move(body)), max_rounds_(max_rounds) {}

  std::string name() const override {
    // "*" alone means the default round cap; a custom cap needs the explicit
    // "*<N" form so the script re-parses to the same pipeline.
    if (max_rounds_ == kDefaultMaxRounds) return body_script() + "*";
    return body_script() + "*<" + std::to_string(max_rounds_);
  }

  mig::Mig run(const mig::Mig& mig, Session& session,
               FlowReport& report) const override {
    mig::Mig best = mig;
    uint32_t best_size = best.count_live_gates();
    uint32_t best_depth = best.depth();
    for (uint32_t round = 0; round < max_rounds_; ++round) {
      const size_t mark = report.passes.size();
      mig::Mig candidate = body_.run_into(best, session, report);
      const uint32_t size = candidate.count_live_gates();
      const uint32_t depth = candidate.depth();
      // A round must improve (size, depth) lexicographically to continue —
      // size-neutral depth reductions count, so depth-oriented bodies
      // converge too.  The non-improving round is rolled back entirely: its
      // output is discarded and its trajectory entries removed, so the
      // report describes exactly the network that is returned.
      if (size > best_size || (size == best_size && depth >= best_depth)) {
        report.passes.resize(mark);
        break;
      }
      best = std::move(candidate);
      best_size = size;
      best_depth = depth;
    }
    return best;
  }

  std::unique_ptr<Pass> clone() const override {
    return std::make_unique<ConvergePass>(body_, max_rounds_);
  }

private:
  uint32_t max_rounds_;
};

}  // namespace

Pipeline::Pipeline(const Pipeline& other) {
  passes_.reserve(other.passes_.size());
  for (const auto& pass : other.passes_) passes_.push_back(pass->clone());
}

Pipeline& Pipeline::operator=(const Pipeline& other) {
  if (this != &other) *this = Pipeline(other);
  return *this;
}

Pipeline& Pipeline::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

Pipeline& Pipeline::then(const Pipeline& other) {
  // Fixing the count first keeps self-append (p.then(p)) well defined.
  const size_t count = other.passes_.size();
  passes_.reserve(passes_.size() + count);
  for (size_t i = 0; i < count; ++i) passes_.push_back(other.passes_[i]->clone());
  return *this;
}

Pipeline& Pipeline::rewrite(const std::string& variant) {
  return add(make_rewrite_pass(variant));
}

Pipeline& Pipeline::rewrite(const opt::RewriteParams& params, std::string name) {
  return add(make_rewrite_pass(params, std::move(name)));
}

Pipeline& Pipeline::size_opt(const algebra::SizeOptParams& params) {
  return add(make_size_pass(params));
}

Pipeline& Pipeline::depth_opt(const algebra::DepthOptParams& params) {
  return add(make_depth_pass(params));
}

Pipeline& Pipeline::lut_map(const map::MapParams& params) {
  return add(make_lut_map_pass(params));
}

Pipeline& Pipeline::parallel(uint32_t threads) {
  return add(make_parallel_pass(threads));
}

Pipeline& Pipeline::cache(std::string path) {
  return add(make_cache_pass(std::move(path)));
}

Pipeline& Pipeline::check() {
  return add(make_check_pass());
}

Pipeline Pipeline::repeat(uint32_t times) const {
  Pipeline result;
  result.add(std::make_unique<RepeatPass>(*this, times));
  return result;
}

Pipeline Pipeline::until_convergence(uint32_t max_rounds) const {
  Pipeline result;
  result.add(std::make_unique<ConvergePass>(*this, max_rounds));
  return result;
}

Pipeline Pipeline::interleave(std::initializer_list<Pipeline> phases) {
  return interleave(std::vector<Pipeline>(phases));
}

Pipeline Pipeline::interleave(const std::vector<Pipeline>& phases) {
  Pipeline result;
  for (size_t i = 0;; ++i) {
    bool any = false;
    for (const auto& phase : phases) {
      if (i < phase.passes_.size()) {
        result.passes_.push_back(phase.passes_[i]->clone());
        any = true;
      }
    }
    if (!any) break;
  }
  return result;
}

mig::Mig Pipeline::run(const mig::Mig& mig, Session& session,
                       FlowReport* report, const RunControl* control) const {
  FlowReport local;
  FlowReport& out = report != nullptr ? (*report = FlowReport{}, *report) : local;
  out.control = control;  // after the reset above, which cleared it

  out.size_before = mig.count_live_gates();
  out.depth_before = mig.depth();
  const auto start = std::chrono::steady_clock::now();

  mig::Mig current = run_into(mig, session, out);

  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  out.size_after = current.count_live_gates();
  out.depth_after = current.depth();
  out.accumulate_oracle_totals();
  return current;
}

mig::Mig Pipeline::run_into(const mig::Mig& mig, Session& session,
                            FlowReport& report) const {
  mig::Mig current = mig;
  enforce_run_control(report.control, current, report, session);
  for (const auto& pass : passes_) {
    current = pass->run(current, session, report);
    enforce_run_control(report.control, current, report, session);
    // Between-pass invariant checking: composite passes recurse through
    // run_into, so every intermediate network of every nesting level is
    // covered.  A violation here is a bug in the pass that just ran — stop
    // at the first one, before later passes smear the evidence.
    const CheckLevel level = session.check_level();
    if (level != CheckLevel::off) {
      const auto checked =
          check::validate_at(current, level == CheckLevel::full);
      if (!checked.ok()) {
        throw std::logic_error("invariant check failed after pass '" +
                               pass->name() + "':\n" + checked.summary());
      }
    }
  }
  return current;
}

bool Pipeline::uses_oracle() const {
  for (const auto& pass : passes_) {
    if (pass->uses_oracle()) return true;
  }
  return false;
}

bool Pipeline::mutates_session() const {
  for (const auto& pass : passes_) {
    if (pass->mutates_session()) return true;
  }
  return false;
}

std::string Pipeline::to_script() const {
  std::string result;
  for (const auto& pass : passes_) {
    if (!result.empty()) result += ";";
    result += pass->name();
  }
  return result;
}

// --- FlowReport --------------------------------------------------------------

uint64_t FlowReport::cuts_evaluated() const {
  uint64_t total = 0;
  for (const auto& pass : passes) total += pass.cuts_evaluated;
  return total;
}

uint64_t FlowReport::replacements() const {
  uint64_t total = 0;
  for (const auto& pass : passes) total += pass.replacements;
  return total;
}

void FlowReport::accumulate_oracle_totals() {
  oracle_queries = oracle_answered = oracle_cache5_hits = 0;
  oracle_synthesized = oracle_failures = 0;
  for (const auto& pass : passes) {
    oracle_queries += pass.oracle_queries;
    oracle_answered += pass.oracle_answered;
    oracle_cache5_hits += pass.oracle_cache5_hits;
    oracle_synthesized += pass.oracle_synthesized;
    oracle_failures += pass.oracle_failures;
  }
}

double FlowReport::oracle_hit_rate() const {
  return oracle_rate(oracle_answered, oracle_queries);
}

double FlowReport::cache5_reuse_rate() const {
  return oracle_rate(oracle_cache5_hits, oracle_cache5_hits + oracle_synthesized);
}

const PassStats* FlowReport::last_mapping() const {
  for (auto it = passes.rbegin(); it != passes.rend(); ++it) {
    if (it->is_mapping) return &*it;
  }
  return nullptr;
}

std::string FlowReport::summary() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%4s  %-10s %18s %13s %9s  %s\n", "#", "pass",
                "size", "depth", "time[s]", "detail");
  out += line;
  for (size_t i = 0; i < passes.size(); ++i) {
    const auto& p = passes[i];
    char detail[64] = "";
    if (p.is_mapping) {
      std::snprintf(detail, sizeof(detail), "%u LUTs, depth %u", p.num_luts,
                    p.lut_depth);
    } else if (p.cuts_evaluated > 0 || p.replacements > 0) {
      std::snprintf(detail, sizeof(detail), "%llu cuts, %llu replacements",
                    static_cast<unsigned long long>(p.cuts_evaluated),
                    static_cast<unsigned long long>(p.replacements));
    }
    std::snprintf(line, sizeof(line), "%4zu  %-10s %8u -> %6u %5u -> %4u %9.2f  %s\n",
                  i + 1, p.name.c_str(), p.size_before, p.size_after, p.depth_before,
                  p.depth_after, p.seconds, detail);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total %8u -> %6u gates, %4u -> %4u depth, %.2fs, "
                "oracle %llu/%llu answered (%.0f%%)\n",
                size_before, size_after, depth_before, depth_after, seconds,
                static_cast<unsigned long long>(oracle_answered),
                static_cast<unsigned long long>(oracle_queries),
                100.0 * oracle_hit_rate());
  out += line;
  return out;
}

}  // namespace mighty::flow
