#include "flow/session.hpp"

#include <algorithm>

namespace mighty::flow {

Session::Session(exact::Database db, SessionParams params)
    : params_(std::move(params)), database_(std::move(db)) {}

std::string Session::database_path() const {
  return params_.database_path.empty() ? exact::default_database_path()
                                       : params_.database_path;
}

const exact::Database& Session::database() {
  if (!database_) {
    database_ = exact::Database::load_or_build(database_path(), params_.synthesis);
  }
  return *database_;
}

opt::ReplacementOracle& Session::oracle() {
  if (!oracle_) oracle_.emplace(database(), params_.oracle);
  return *oracle_;
}

void Session::set_threads(uint32_t threads) {
  if (threads == 0) threads = 1;
  // Same ceiling the script grammar enforces; C++ callers get clamped
  // rather than an absurd spawn attempt.
  threads = std::min(threads, util::ThreadPool::kMaxParallelism);
  if (threads == params_.threads) return;
  params_.threads = threads;
  executor_.reset();  // re-materializes lazily at the new width
}

Executor& Session::executor() {
  if (!executor_ || executor_->threads() != threads()) {
    executor_ = std::make_unique<Executor>(threads());
  }
  return *executor_;
}

}  // namespace mighty::flow
