#include "flow/session.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

namespace mighty::flow {

Session::Session(exact::Database db, SessionParams params)
    : params_(std::move(params)), database_(std::move(db)) {}

Session::~Session() {
  // Autosave is best effort: destructors must not throw, and losing a save
  // only costs the next process its warm start, never correctness.  Routed
  // through persist() so a daemon whose signal handler already persisted
  // does not race (or redundantly rewrite) the same file here.
  try {
    persist();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: oracle cache autosave to %s failed: %s\n",
                 params_.oracle_cache_path.c_str(), e.what());
  }
}

std::string Session::database_path() const {
  return params_.database_path.empty() ? exact::default_database_path()
                                       : params_.database_path;
}

const exact::Database& Session::database() {
  if (!database_) {
    database_ = exact::Database::load_or_build(database_path(), params_.synthesis);
  }
  return *database_;
}

opt::ReplacementOracle& Session::oracle() {
  if (!oracle_) {
    oracle_.emplace(database(), params_.oracle);
    // Warm-start from the persisted cache the moment the oracle exists, so
    // the very first pass already reuses other processes' syntheses.
    if (!params_.oracle_cache_path.empty()) merge_cache_file();
  }
  return *oracle_;
}

void Session::set_cache_path(std::string path) {
  // Recording only — no I/O.  The merge happens when the oracle
  // materializes or through an explicit load_cache(); a side-effectful
  // setter would make `cache save <new-path>` read the destination file
  // and double-parse every `cache load`.
  params_.oracle_cache_path = std::move(path);
}

opt::ReplacementOracle::CacheLoadResult Session::load_cache() {
  if (params_.oracle_cache_path.empty()) return {};
  if (!oracle_) {
    // Materializing the oracle already merges the file (and reports its
    // result); calling oracle() here and merging again would double-parse
    // and always report "0 adopted".
    oracle_.emplace(database(), params_.oracle);
  }
  return merge_cache_file();
}

opt::ReplacementOracle::CacheLoadResult Session::merge_cache_file() {
  const auto result = oracle_->load_cache(params_.oracle_cache_path);
  if (result.status == opt::ReplacementOracle::CacheLoadStatus::malformed) {
    std::fprintf(stderr, "warning: ignoring malformed oracle cache %s\n",
                 params_.oracle_cache_path.c_str());
  }
  return result;
}

size_t Session::save_cache() {
  if (params_.oracle_cache_path.empty() || !oracle_) return 0;
  return oracle_->save_cache(params_.oracle_cache_path);
}

size_t Session::persist() {
  // One mutex serializes every shutdown path (destructor, service shutdown,
  // SIGTERM) into the same save; the oracle's dirty tracking then turns the
  // losers of the race into no-ops instead of duplicate writes.
  const util::MutexLock lock(persist_mutex_);
  return save_cache();
}

void Session::set_threads(uint32_t threads) {
  if (threads == 0) threads = 1;
  // Same ceiling the script grammar enforces; C++ callers get clamped
  // rather than an absurd spawn attempt.
  threads = std::min(threads, util::ThreadPool::kMaxParallelism);
  if (threads == params_.threads) return;
  params_.threads = threads;
  executor_.reset();  // re-materializes lazily at the new width
}

Executor& Session::executor() {
  if (!executor_ || executor_->threads() != threads()) {
    executor_ = std::make_unique<Executor>(threads());
  }
  return *executor_;
}

}  // namespace mighty::flow
