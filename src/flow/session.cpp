#include "flow/session.hpp"

namespace mighty::flow {

Session::Session(exact::Database db, SessionParams params)
    : params_(std::move(params)), database_(std::move(db)) {}

std::string Session::database_path() const {
  return params_.database_path.empty() ? exact::default_database_path()
                                       : params_.database_path;
}

const exact::Database& Session::database() {
  if (!database_) {
    database_ = exact::Database::load_or_build(database_path(), params_.synthesis);
  }
  return *database_;
}

opt::ReplacementOracle& Session::oracle() {
  if (!oracle_) oracle_.emplace(database(), params_.oracle);
  return *oracle_;
}

}  // namespace mighty::flow
