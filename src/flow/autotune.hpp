#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/corpus.hpp"
#include "flow/pipeline.hpp"

/// \file autotune.hpp
/// \brief Automatic search over the flow-script grammar.
///
/// The paper's best results come from hand-tuned iterated/interleaved flows
/// ("running it several times or combining it with other optimization
/// algorithms will likely lead to further improvements", Sec. V-C).  The
/// Autotuner makes that tuning automatic: the script grammar *is* the search
/// space.  Candidates are whole flow scripts — pass words, repeat counts,
/// round caps, group structure — seeded with the paper's flows and mutated
/// structurally (swap adjacent passes, bump/shrink counts, wrap or unwrap
/// "(...)*" groups, replace/insert/delete pass words).
///
///   flow::Session session;
///   auto corpus = flow::Corpus::generated_arithmetic();
///   flow::Autotuner tuner(session, {.objective = flow::Objective::size});
///   flow::TuneReport report;
///   auto best = tuner.tune(corpus, &report);
///   fputs(report.summary().c_str(), stdout);
///   // reproduce later:  Pipeline::parse(report.best().script)
///
/// Mechanics:
///
///  * every candidate is evaluated with the existing BatchRunner on the one
///    shared Session, so the 5-input oracle (and the NPN memo) stays warm
///    across the whole search — evaluating hundreds of scripts costs far
///    less than hundreds of cold runs;
///  * candidates are deduplicated by canonical script form: two mutants that
///    Pipeline::parse to the same structure share one evaluation
///    (Pipeline::to_script() is the dedup key);
///  * successive halving prunes losers early: every rung clamps the
///    convergence-round caps of all "(...)*" groups to a small budget,
///    halves the pool on the objective, and only the leaders graduate to the
///    full-budget rung that the report records;
///  * the search is deterministic: mutation uses a seeded RNG, selection
///    breaks objective ties on the canonical script, and pass execution is
///    bit-identical at any thread count — tuning with `threads=N` returns
///    the same report (and Pareto front) as `threads=1`, only faster.
///
/// Wall time is reported per entry but is never a selection or dominance
/// criterion — that would make the result depend on machine noise.

namespace mighty::flow {

class Session;

/// What the search minimizes, summed over the corpus.
enum class Objective {
  size,     ///< live majority gates
  depth,    ///< network depth
  product,  ///< per-network size * depth, summed
};

/// Parses "size" / "depth" / "product" (alias "size*depth"), case-insensitive.
/// Throws std::invalid_argument naming the offending string otherwise.
Objective parse_objective(const std::string& name);
const char* objective_name(Objective objective);

/// The paper-default flow every search is seeded with — and the baseline any
/// tuned script has to beat (bench/autotune gates on exactly this).
inline constexpr const char* kBaselineScript = "(TF;BFD;size)*";

struct TuneParams {
  Objective objective = Objective::size;
  /// Candidate pool per generation (after deduplication).
  uint32_t population = 16;
  /// Mutate-and-evaluate cycles after the seed generation.
  uint32_t generations = 2;
  /// RNG seed for mutation; same seed + same corpus = same search.
  uint32_t seed = 1;
  /// Upper bound on pass words per candidate; mutations that would exceed it
  /// are discarded (scripts grow without bound otherwise).
  uint32_t max_words = 12;
  /// Convergence-round cap of the final (full-budget) rung; intermediate
  /// successive-halving rungs use fixed smaller caps.
  uint32_t full_round_cap = kDefaultConvergenceRounds;
  /// Adds the 5-input-cut words (TF5, TFD5, BF5, BFD5) to the mutation
  /// vocabulary.  Off by default: 5-cut passes synthesize through SAT, which
  /// multiplies evaluation cost (the warm persistent cache mitigates, but a
  /// first search pays).
  bool five_input_words = false;
  /// Mutation vocabulary; empty selects the default (the four F-variants
  /// plus size and depth, extended by five_input_words).
  std::vector<std::string> vocabulary;
  /// Seed scripts; empty selects the paper's flows (always including
  /// kBaselineScript).  Must parse and must not contain session directives
  /// ("parallel:n", "cache:<path>") — batch evaluation rejects those.
  std::vector<std::string> seed_scripts;
};

/// One fully evaluated candidate.
struct TuneEntry {
  std::string script;      ///< canonical form; Pipeline::parse-able
  uint32_t size = 0;       ///< live gates, summed over the corpus
  uint64_t depth = 0;      ///< depth, summed over the corpus
  uint64_t objective = 0;  ///< value under TuneParams::objective (lower wins)
  double seconds = 0.0;    ///< wall of the full-budget evaluation (informative)
  bool pareto = false;     ///< on the (size, depth) Pareto front
};

struct TuneReport {
  /// The paper-default kBaselineScript at full budget — the bar to beat.
  TuneEntry baseline;
  /// Every candidate that graduated to the full-budget rung, best objective
  /// first (ties broken on the script, so the order is deterministic).
  std::vector<TuneEntry> evaluated;

  size_t candidates_generated = 0;  ///< accepted into some pool
  size_t duplicates_pruned = 0;     ///< mutants canonicalizing to a seen script
  size_t invalid_rejected = 0;      ///< mutants that failed to parse or run
  size_t evaluations = 0;           ///< batch evaluations, all rungs
  double seconds = 0.0;             ///< wall of the whole search

  /// Best full-budget entry; the baseline when nothing else graduated.
  const TuneEntry& best() const;
  /// The (size, depth) Pareto front among `evaluated`, best objective first.
  /// Wall time is listed per entry but never decides dominance (determinism).
  std::vector<TuneEntry> pareto_front() const;
  /// Human-readable table: Pareto front, baseline, best, search counters.
  std::string summary() const;
};

/// Searches the flow-script grammar for the best pipeline under an objective.
class Autotuner {
public:
  explicit Autotuner(Session& session, TuneParams params = {});

  /// Tunes over a whole corpus; returns the best pipeline found (re-parsed
  /// from its canonical script, so running it reproduces the reported
  /// metrics bit-identically).  When `report` is given it is reset and
  /// filled.  Throws std::invalid_argument on an empty corpus or malformed
  /// TuneParams (bad seed script, empty vocabulary word, population 0).
  Pipeline tune(const Corpus& corpus, TuneReport* report = nullptr);

  /// Tunes a single network (a corpus of one).
  Pipeline tune(const mig::Mig& network, TuneReport* report = nullptr);

private:
  Session& session_;
  TuneParams params_;
};

}  // namespace mighty::flow
