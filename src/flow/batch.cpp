#include "flow/batch.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <functional>
#include <stdexcept>

#include "flow/session.hpp"
#include "util/thread_pool.hpp"

namespace mighty::flow {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::vector<mig::Mig> BatchRunner::run(const Corpus& corpus, const Pipeline& pipeline,
                                       BatchReport* report) {
  // Session directives ('parallel:n', 'cache:<path>') reconfigure the
  // session mid-flight: parallel:n tears down the very pool the batch is
  // running on, and cache:<path> would merge into the oracle while every
  // network hammers it.  Group passes answer for their bodies, so the check
  // reaches any nesting depth.
  if (pipeline.mutates_session()) {
    throw std::invalid_argument(
        "batch pipelines must not contain a session directive ('parallel:n', "
        "'cache:<path>'); configure the session before the run");
  }

  BatchReport local;
  BatchReport& out = report != nullptr ? (*report = BatchReport{}, *report) : local;

  const size_t count = corpus.size();
  std::vector<mig::Mig> results;
  results.reserve(count);
  out.networks.resize(count);
  for (size_t i = 0; i < count; ++i) {
    results.push_back(corpus[i].mig);
    out.networks[i].name = corpus[i].name;
    out.networks[i].flow.size_before = corpus[i].mig.count_live_gates();
    out.networks[i].flow.depth_before = corpus[i].mig.depth();
  }
  if (count == 0) return results;

  // Materialize the database and oracle before any concurrent task asks for
  // them: Session's lazy initialization is single-threaded by design.  A
  // pipeline of purely algebraic/mapping passes never queries them, and must
  // not pay (or trigger) a database load.
  if (pipeline.uses_oracle()) session_.oracle();

  const auto start = std::chrono::steady_clock::now();

  // One (network, pass) execution: transforms results[i] in place and
  // appends to its private per-network report.  Tasks of different networks
  // touch disjoint elements, so no locking is needed.
  auto execute_pass = [&](size_t i, size_t pass_index) {
    const auto pass_start = std::chrono::steady_clock::now();
    results[i] = pipeline.pass(pass_index).run(results[i], session_,
                                               out.networks[i].flow);
    out.networks[i].flow.seconds += seconds_since(pass_start);
  };
  auto fail_network = [&](size_t i, const char* what) {
    out.networks[i].error = what;
    results[i] = corpus[i].mig;  // a failed network passes through unchanged
  };
  auto finalize_network = [&](size_t i) {
    FlowReport& flow = out.networks[i].flow;
    flow.size_after = results[i].count_live_gates();
    flow.depth_after = results[i].depth();
    flow.accumulate_oracle_totals();
  };

  util::ThreadPool* pool = session_.worker_pool();
  if (pool == nullptr) {
    // Parallelism 1: networks run to completion in corpus order.
    for (size_t i = 0; i < count; ++i) {
      try {
        for (size_t p = 0; p < pipeline.num_passes(); ++p) execute_pass(i, p);
      } catch (const std::exception& e) {
        fail_network(i, e.what());
      }
      finalize_network(i);
    }
  } else {
    // Two-level scheduling: each (network, pass) unit is one task, and a
    // finished pass enqueues its network's next pass — so up to `threads`
    // networks are in flight, and a pass's own FFR shards fan out over the
    // same pool underneath.
    util::ThreadPool::TaskGroup group(*pool);
    std::function<void(size_t, size_t)> step = [&](size_t i, size_t pass_index) {
      if (pass_index < pipeline.num_passes()) {
        try {
          execute_pass(i, pass_index);
        } catch (const std::exception& e) {
          fail_network(i, e.what());
          finalize_network(i);
          return;
        }
        group.submit([&step, i, pass_index] { step(i, pass_index + 1); });
        return;
      }
      finalize_network(i);
    };
    for (size_t i = 0; i < count; ++i) {
      group.submit([&step, i] { step(i, 0); });
    }
    group.wait();
  }

  out.seconds = seconds_since(start);
  out.finalize();
  // Persist everything this batch synthesized in one write (a no-op without
  // a session cache path, or when the corpus brought nothing new).
  session_.save_cache();
  return results;
}

// --- BatchReport -------------------------------------------------------------

size_t BatchReport::failures() const {
  size_t n = 0;
  for (const auto& network : networks) {
    if (!network.error.empty()) ++n;
  }
  return n;
}

double BatchReport::oracle_hit_rate() const {
  return oracle_rate(oracle_answered, oracle_queries);
}

double BatchReport::cache5_reuse_rate() const {
  return oracle_rate(oracle_cache5_hits, oracle_cache5_hits + oracle_synthesized);
}

void BatchReport::finalize() {
  size_before = size_after = 0;
  depth_before = depth_after = 0;
  oracle_queries = oracle_answered = oracle_cache5_hits = 0;
  oracle_synthesized = oracle_failures = 0;
  for (const auto& network : networks) {
    if (!network.error.empty()) continue;
    size_before += network.flow.size_before;
    size_after += network.flow.size_after;
    depth_before += network.flow.depth_before;
    depth_after += network.flow.depth_after;
    oracle_queries += network.flow.oracle_queries;
    oracle_answered += network.flow.oracle_answered;
    oracle_cache5_hits += network.flow.oracle_cache5_hits;
    oracle_synthesized += network.flow.oracle_synthesized;
    oracle_failures += network.flow.oracle_failures;
  }
}

std::string BatchReport::summary() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-16s %18s %13s %9s  %s\n", "network", "size",
                "depth", "time[s]", "detail");
  out += line;
  for (const auto& network : networks) {
    const auto& f = network.flow;
    if (!network.error.empty()) {
      std::snprintf(line, sizeof(line), "%-16s %18s %13s %9s  FAILED: %s\n",
                    network.name.c_str(), "-", "-", "-", network.error.c_str());
      out += line;
      continue;
    }
    char detail[64] = "";
    if (f.oracle_queries > 0) {
      std::snprintf(detail, sizeof(detail), "%llu queries, %llu replacements",
                    static_cast<unsigned long long>(f.oracle_queries),
                    static_cast<unsigned long long>(f.replacements()));
    }
    std::snprintf(line, sizeof(line), "%-16s %8u -> %6u %5u -> %4u %9.2f  %s\n",
                  network.name.c_str(), f.size_before, f.size_after, f.depth_before,
                  f.depth_after, f.seconds, detail);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "corpus %8u -> %6u gates, %5llu -> %5llu depth, %.2fs wall, "
                "oracle %llu/%llu answered (%.0f%%), 5-cut cache reuse %.0f%%\n",
                size_before, size_after,
                static_cast<unsigned long long>(depth_before),
                static_cast<unsigned long long>(depth_after), seconds,
                static_cast<unsigned long long>(oracle_answered),
                static_cast<unsigned long long>(oracle_queries),
                100.0 * oracle_hit_rate(), 100.0 * cache5_reuse_rate());
  out += line;
  if (const size_t failed = failures(); failed > 0) {
    std::snprintf(line, sizeof(line), "%zu network(s) FAILED\n", failed);
    out += line;
  }
  return out;
}

}  // namespace mighty::flow
