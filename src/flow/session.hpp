#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string>

#include "exact/database.hpp"
#include "exact/exact_synthesis.hpp"
#include "flow/executor.hpp"
#include "opt/oracle.hpp"
#include "util/mutex.hpp"

/// \file session.hpp
/// \brief Shared state for optimization flows.
///
/// Every pre-`flow` entry point re-created its expensive context per call:
/// the NPN-4 database was re-loaded (or worse, re-synthesized) and each
/// functional-hashing pass built a private ReplacementOracle, throwing away
/// the 5-input synthesis cache between passes.  A Session owns both once, so
/// iterated and interleaved pipelines amortize them across every pass — and,
/// through flow::BatchRunner, across every network of a corpus: the oracle
/// is concurrency-safe, so many networks in flight share one warm cache.
///
/// Lazy initialization (database(), oracle(), executor()) is single-threaded
/// by design; materialize before handing the session to concurrent tasks
/// (BatchRunner does this itself).

namespace mighty::flow {

/// How much invariant checking Pipeline::run_into performs between passes
/// (see check/check.hpp).  `fast` runs the O(nodes) structural validation of
/// every intermediate network; `full` additionally re-derives levels/fanouts/
/// live counts and validates a fresh FFR partition, shard plan and wave
/// order.  A failed check throws std::logic_error naming the offending pass.
enum class CheckLevel { off, fast, full };

struct SessionParams {
  /// On-disk NPN-4 database location; empty selects
  /// exact::default_database_path() (which honors $MIGHTY_DB_PATH).
  std::string database_path;
  /// Synthesis options used only when the database must be built from
  /// scratch (first run on a fresh checkout).
  exact::SynthesisOptions synthesis;
  /// Configuration of the shared replacement oracle.  Five-input synthesis
  /// is enabled by default: passes that never enumerate 5-cuts never query
  /// it, and passes that do share one cache for the whole session.
  opt::OracleParams oracle{.enable_five_input = true};
  /// On-disk location of the persistent 5-input oracle cache; empty turns
  /// persistence off.  When set, the file is merged into the oracle when it
  /// materializes, and the cache is written back by Session::save_cache(),
  /// once per BatchRunner::run, and automatically on session destruction —
  /// so a later process warm-starts where this one left off.
  std::string oracle_cache_path;
  /// Parallelism for shard-parallel passes (1 = everything inline).  The
  /// sharded FFR passes produce bit-identical networks for every value; the
  /// script token "parallel:n" and Session::set_threads() change it later.
  uint32_t threads = 1;
};

class Session {
public:
  Session() : Session(SessionParams{}) {}
  explicit Session(SessionParams params) : params_(std::move(params)) {}

  /// Adopts an already-loaded database (no disk access, no lazy build).
  explicit Session(exact::Database db, SessionParams params = {});

  /// Not copyable or movable: the materialized oracle holds a reference into
  /// this object's database, which a move would silently leave dangling.
  /// (Factory functions returning a Session prvalue still work — guaranteed
  /// copy elision constructs it in place.)
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Autosaves the oracle cache when a cache path is set (best effort: a
  /// failure is reported on stderr, never thrown).
  ~Session();

  /// The NPN-4 database, loaded (or built and saved) on first use.
  const exact::Database& database();

  /// The shared replacement oracle; materializes the database on first use.
  opt::ReplacementOracle& oracle();

  /// Non-materializing observer for reporting: nullptr until some pass has
  /// asked for the oracle.
  const opt::ReplacementOracle* oracle_if_created() const {
    return oracle_ ? &*oracle_ : nullptr;
  }

  /// Path the database is (or would be) loaded from.
  std::string database_path() const;

  const SessionParams& params() const { return params_; }

  // --- persistent 5-input oracle cache ----------------------------------------

  /// Location of the on-disk oracle cache; empty = persistence off.
  const std::string& cache_path() const { return params_.oracle_cache_path; }

  /// Points the session at an on-disk oracle cache (the `cache:<path>`
  /// script directive and the shell's `cache` command land here).  Records
  /// the path without touching the disk: the file is merged when the oracle
  /// materializes, or immediately via load_cache().  An empty path turns
  /// persistence (and destructor autosave) off.
  void set_cache_path(std::string path);

  /// Merges the cache file into the oracle, materializing it.  A missing
  /// file is normal (status `missing`: it appears on first save); a
  /// malformed one is reported on stderr, left untouched on disk, and
  /// ignored — the next save overwrites it wholesale.
  opt::ReplacementOracle::CacheLoadResult load_cache();

  /// Persists the oracle cache to cache_path().  Returns the number of
  /// entries written: 0 when no path is set, the oracle never materialized,
  /// or nothing changed since the last save/load (dirty-entry tracking).
  size_t save_cache();

  /// The single choke point every shutdown path persists through: the
  /// destructor autosave, api::Service shutdown, and the daemon's SIGTERM
  /// handler all call this, serialized by an internal mutex so concurrent
  /// shutdown paths never interleave writes.  Idempotent: the first call
  /// writes the dirty entries, a repeat with nothing new returns 0 (the
  /// oracle's dirty tracking makes the save itself a no-op).
  size_t persist();

  // --- parallel execution -----------------------------------------------------

  /// Sets the parallelism of subsequent pipeline runs (0 is treated as 1).
  /// Shard-parallel passes produce bit-identical networks for every value,
  /// so this is purely a throughput knob.  Rebuilds the executor on change.
  void set_threads(uint32_t threads);
  /// Effective parallelism.  Clamped exactly as the executor's pool clamps,
  /// also for widths smuggled in through SessionParams — otherwise executor()
  /// would see a perpetual mismatch and respawn its pool on every pass.
  uint32_t threads() const {
    const uint32_t t = params_.threads == 0 ? 1 : params_.threads;
    return std::min(t, util::ThreadPool::kMaxParallelism);
  }

  /// The session's parallel execution engine, created on first use.
  Executor& executor();

  // --- between-pass invariant checking ----------------------------------------

  /// Selects the between-pass check level.  Defaults to `fast` in builds
  /// without NDEBUG (every Debug test run doubles as an invariant test) and
  /// `off` otherwise, so Release benches measure the passes, not the checks.
  void set_check_level(CheckLevel level) { check_level_ = level; }
  CheckLevel check_level() const { return check_level_; }

  /// Pool for shard-parallel passes: nullptr at parallelism 1, so passes
  /// take the inline path without materializing an executor.
  util::ThreadPool* worker_pool() {
    return threads() > 1 ? executor().worker_pool() : nullptr;
  }

private:
  /// Merges cache_path() into the materialized oracle, warning on stderr
  /// about a malformed file.  Requires oracle_ to exist.
  opt::ReplacementOracle::CacheLoadResult merge_cache_file();

  SessionParams params_;
  /// Serializes persist() across shutdown paths.
  util::Mutex persist_mutex_{util::LockRank::flow_session_persist};
#ifndef NDEBUG
  CheckLevel check_level_ = CheckLevel::fast;
#else
  CheckLevel check_level_ = CheckLevel::off;
#endif
  std::optional<exact::Database> database_;
  std::optional<opt::ReplacementOracle> oracle_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace mighty::flow
