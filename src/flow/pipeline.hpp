#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "flow/pass.hpp"

/// \file pipeline.hpp
/// \brief Composition of passes into optimization flows.
///
/// A Pipeline is an ordered sequence of passes with combinators for the
/// iterated and interleaved flows behind the paper's best results (Sec. V-C:
/// "running it several times or combining it with other optimization ...
/// algorithms will likely lead to further improvements"):
///
///   flow::Session session;
///   auto flow = flow::Pipeline()
///                   .rewrite("TF")
///                   .then(flow::Pipeline().rewrite("BFD").size_opt()
///                             .until_convergence())
///                   .lut_map();
///   flow::FlowReport report;
///   auto optimized = flow.run(mig, session, &report);
///
/// The same flow as a script, for CLIs and shells:
///
///   auto flow = flow::Pipeline::parse("TF; (BFD; size)*; map");
///
/// Script grammar (case-insensitive; whitespace between tokens is ignored):
///   sequence := item (';' item)*
///   item     := atom ['*' count             -- repeat n times
///                    | '*' '<' count        -- to convergence, round cap
///                    | '*']                 -- to convergence, default cap
///   atom     := '(' sequence ')' | word
///   word     := T|TD|TF|TFD|B|BD|BF|BFD     -- functional-hashing variants
///             | variant '5'                 -- 5-input-cut extension (TF5, ...)
///             | size | depth                -- algebraic optimization
///             | map[k]                      -- k-LUT mapping, default k=6
///             | parallel:n                  -- run later passes on n threads
///             | cache:path                  -- persistent 5-input oracle cache
///             | check                       -- full invariant validation

namespace mighty::flow {

struct RunControl;

/// Round cap until_convergence() applies when none is given; the bare "x*"
/// script form maps to exactly this value.
inline constexpr uint32_t kDefaultConvergenceRounds = 16;

class Pipeline {
public:
  Pipeline() = default;
  Pipeline(const Pipeline& other);
  Pipeline& operator=(const Pipeline& other);
  Pipeline(Pipeline&&) noexcept = default;
  Pipeline& operator=(Pipeline&&) noexcept = default;

  // --- building --------------------------------------------------------------

  /// Appends an arbitrary pass; returns *this for chaining.
  Pipeline& add(std::unique_ptr<Pass> pass);
  /// Appends a copy of every pass of `other`.
  Pipeline& then(const Pipeline& other);
  /// Appends a functional-hashing pass by paper acronym ("TF", "bfd", ...).
  Pipeline& rewrite(const std::string& variant);
  /// Appends a functional-hashing pass with explicit parameters.
  Pipeline& rewrite(const opt::RewriteParams& params, std::string name);
  /// Appends algebraic size optimization.
  Pipeline& size_opt(const algebra::SizeOptParams& params = {});
  /// Appends algebraic depth optimization.
  Pipeline& depth_opt(const algebra::DepthOptParams& params = {});
  /// Appends a k-LUT mapping (analysis) pass.
  Pipeline& lut_map(const map::MapParams& params = {});
  /// Appends a "parallel:n" directive: later passes run on n threads.
  Pipeline& parallel(uint32_t threads);
  /// Appends a "cache:<path>" directive: attaches the session's persistent
  /// 5-input oracle cache before later passes run.
  Pipeline& cache(std::string path);
  /// Appends a "check" pass: full invariant validation of the current
  /// network (check::validate_at full level, regardless of the session's
  /// check level), throwing std::logic_error on the first violation.
  Pipeline& check();

  // --- combinators (value semantics; *this is not modified) ------------------

  /// The whole pipeline as one unit, executed `times` times.
  Pipeline repeat(uint32_t times) const;

  /// The whole pipeline as one unit, executed until a round fails to improve
  /// the network (or `max_rounds` is reached).  A round improves when it
  /// reduces (live gates, depth) lexicographically — so size-oriented and
  /// depth-oriented bodies both converge.  The non-improving final round is
  /// rolled back: its output and its trajectory entries are discarded, and
  /// the best network seen is returned.  Terminates by strict improvement.
  Pipeline until_convergence(uint32_t max_rounds = kDefaultConvergenceRounds) const;

  /// Round-robin interleaving: the first pass of every phase, then the second
  /// of every phase, and so on (phases shorter than the longest simply drop
  /// out).  With single-pass phases this is plain concatenation — combine
  /// with repeat()/until_convergence() for alternating rounds.
  static Pipeline interleave(std::initializer_list<Pipeline> phases);
  static Pipeline interleave(const std::vector<Pipeline>& phases);

  /// Parses the flow-script grammar above.  Throws std::invalid_argument
  /// with the offending token on malformed scripts.
  static Pipeline parse(const std::string& script);

  // --- execution -------------------------------------------------------------

  /// Runs every pass in order.  When `report` is given it is reset and filled
  /// with the per-pass trajectory, whole-flow totals and the oracle counters
  /// accumulated during this run.  When `control` is given, cancellation and
  /// the node/wall/conflict budgets are enforced at every pass boundary (any
  /// nesting depth); a violation throws api::Error with the matching code
  /// (cancelled, node_budget_exceeded, wall_budget_exceeded,
  /// conflict_budget_exceeded).  `control` must outlive the call.
  mig::Mig run(const mig::Mig& mig, Session& session,
               FlowReport* report = nullptr,
               const RunControl* control = nullptr) const;

  /// Executes the passes appending their trajectory entries to `report`
  /// without touching its totals — the building block of composite passes
  /// (repeat, until_convergence).  Most callers want run().
  mig::Mig run_into(const mig::Mig& mig, Session& session,
                    FlowReport& report) const;

  // --- inspection ------------------------------------------------------------

  size_t num_passes() const { return passes_.size(); }
  bool empty() const { return passes_.empty(); }
  const Pass& pass(size_t i) const { return *passes_[i]; }

  /// True when any pass (at any nesting depth) may query the session oracle.
  bool uses_oracle() const;
  /// True when any pass (at any nesting depth) reconfigures the session.
  bool mutates_session() const;

  /// Canonical script form; parse(p.to_script()) is structurally identical
  /// to p (the round trip is what deduplication, reporting and reproducing a
  /// tuned flow rely on — see autotune.hpp).
  std::string to_script() const;
  /// Alias of to_script(), kept for symmetry with the standard conversion
  /// idiom.
  std::string to_string() const { return to_script(); }

private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace mighty::flow
