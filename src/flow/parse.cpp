#include <cctype>
#include <stdexcept>
#include <string>

#include "api/error.hpp"
#include "flow/pipeline.hpp"
#include "util/thread_pool.hpp"

/// Recursive-descent parser for the flow-script grammar (see pipeline.hpp):
///
///   sequence := item (';' item)*
///   item     := atom ['*' count | '*' '<' count | '*']
///   atom     := '(' sequence ')' | word
///   word     := variant acronym | size | depth | map[k] | parallel[:]n
///             | cache:path | check
///
/// Case-insensitive; whitespace between tokens is insignificant (a token
/// itself cannot be split: "ma p" is not "map"); empty items ("TF;;BF",
/// trailing ';') are permitted and skipped so shell-assembled scripts don't
/// need trimming.

namespace mighty::flow {

namespace {

class Parser {
public:
  explicit Parser(const std::string& script) : script_(script) {}

  Pipeline parse() {
    Pipeline result = sequence();
    if (!at_end()) {
      fail(std::string("unexpected '") + peek() + "'");
    }
    return result;
  }

private:
  /// Reports `what` anchored at `pos` — always a token's *start*, so the
  /// column survives leading whitespace and multi-character tokens (a count
  /// error must not point past the digits it rejects).
  [[noreturn]] void fail_at(size_t pos, const std::string& what) const {
    // ScriptError derives std::invalid_argument (the documented contract of
    // Pipeline::parse) and carries ErrorCode::invalid_script for the api
    // layer and the wire protocol.
    throw api::ScriptError("flow script error at position " +
                           std::to_string(pos) + ": " + what + " in \"" +
                           script_ + '"');
  }

  [[noreturn]] void fail(const std::string& what) const { fail_at(pos_, what); }

  void skip_space() {
    while (pos_ < script_.size() &&
           std::isspace(static_cast<unsigned char>(script_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_space();
    return pos_ >= script_.size();
  }

  char peek() {
    skip_space();
    return pos_ < script_.size() ? script_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  Pipeline sequence() {
    Pipeline result;
    while (true) {
      if (at_end() || peek() == ')') break;
      if (consume(';')) continue;  // empty item
      result.then(item());
      if (!at_end() && peek() != ')' && !consume(';')) {
        fail(std::string("expected ';' before '") + peek() + "'");
      }
    }
    return result;
  }

  Pipeline item() {
    Pipeline base = atom();
    if (!consume('*')) return base;
    if (consume('<')) {  // "x*<N": until convergence, at most N rounds
      const uint32_t rounds = integer();
      if (rounds == 0) fail_at(int_start_, "round cap must be at least 1");
      return base.until_convergence(rounds);
    }
    skip_space();
    if (pos_ < script_.size() &&
        std::isdigit(static_cast<unsigned char>(script_[pos_]))) {
      const uint32_t count = integer();
      if (count == 0) fail_at(int_start_, "repeat count must be at least 1");
      return base.repeat(count);
    }
    return base.until_convergence();
  }

  Pipeline atom() {
    if (consume('(')) {
      Pipeline inner = sequence();
      if (!consume(')')) fail("missing ')'");
      if (inner.empty()) fail("empty group '()'");
      return inner;
    }
    return word();
  }

  Pipeline word() {
    skip_space();
    const size_t start = pos_;
    std::string text;
    while (pos_ < script_.size() &&
           std::isalpha(static_cast<unsigned char>(script_[pos_]))) {
      text += static_cast<char>(
          std::tolower(static_cast<unsigned char>(script_[pos_])));
      ++pos_;
    }
    if (text.empty()) {
      fail(at_end() ? std::string("expected a pass name")
                    : std::string("expected a pass name, got '") + script_[pos_] +
                          "'");
    }

    Pipeline result;
    if (text == "size") return result.size_opt(), result;
    if (text == "depth") return result.depth_opt(), result;
    if (text == "check") return result.check(), result;
    if (text == "parallel") {
      // "parallel:n" (the canonical form emitted by to_string) or "paralleln".
      consume(':');
      skip_space();
      if (pos_ >= script_.size() ||
          !std::isdigit(static_cast<unsigned char>(script_[pos_]))) {
        fail("expected a thread count after 'parallel'");
      }
      const uint32_t threads = integer();
      if (threads == 0 || threads > util::ThreadPool::kMaxParallelism) {
        fail_at(int_start_, "thread count out of range in 'parallel:" +
                                std::to_string(threads) + "'");
      }
      return result.add(make_parallel_pass(threads)), result;
    }
    if (text == "cache") {
      // "cache:<path>" attaches the persistent 5-input oracle cache.  The
      // path runs to the next whitespace, ';', ')' or '*' and keeps its
      // case ('*' stays a repeat suffix, as for every other word — it must
      // not be swallowed into the filename).
      if (!consume(':')) fail("expected ':<path>' after 'cache'");
      skip_space();
      std::string path;
      while (pos_ < script_.size() && script_[pos_] != ';' && script_[pos_] != ')' &&
             script_[pos_] != '*' &&
             !std::isspace(static_cast<unsigned char>(script_[pos_]))) {
        path += script_[pos_];
        ++pos_;
      }
      if (path.empty()) fail("expected a file path after 'cache:'");
      return result.add(make_cache_pass(std::move(path))), result;
    }
    if (text == "map") {
      map::MapParams params;
      if (pos_ < script_.size() &&
          std::isdigit(static_cast<unsigned char>(script_[pos_]))) {
        params.lut_size = integer();
        if (params.lut_size < 2 || params.lut_size > 16) {
          fail_at(int_start_, "LUT size out of range in 'map" +
                                  std::to_string(params.lut_size) + "'");
        }
      }
      return result.lut_map(params), result;
    }
    // A trailing '5' selects the variant's 5-input-cut extension ("TF5");
    // it is part of the word, not a repeat count (those need '*').
    if (pos_ < script_.size() && script_[pos_] == '5') {
      text += '5';
      ++pos_;
    }
    try {
      result.rewrite(text);
    } catch (const std::invalid_argument&) {
      fail_at(start, "unknown pass \"" + text + '"');
    }
    return result;
  }

  /// Largest count any production accepts; far below UINT32_MAX, so inputs
  /// like "TF*4294967296" are rejected as too large instead of wrapping to a
  /// silently different pipeline.
  static constexpr uint64_t kMaxCount = 1'000'000;

  uint32_t integer() {
    skip_space();
    const size_t start = pos_;
    uint64_t value = 0;
    while (pos_ < script_.size() &&
           std::isdigit(static_cast<unsigned char>(script_[pos_]))) {
      // Saturate instead of accumulating: a thousand-digit count must neither
      // overflow the accumulator nor change the error reported.
      if (value <= kMaxCount) {
        value = value * 10 + static_cast<uint64_t>(script_[pos_] - '0');
      }
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    if (value > kMaxCount) {
      fail_at(start, "count too large (at most " + std::to_string(kMaxCount) + ")");
    }
    int_start_ = start;
    return static_cast<uint32_t>(value);
  }

  const std::string& script_;
  size_t pos_ = 0;
  /// Start position of the count integer() consumed last; range checks in the
  /// callers anchor their error there, at the token, not after it.
  size_t int_start_ = 0;
};

}  // namespace

Pipeline Pipeline::parse(const std::string& script) {
  return Parser(script).parse();
}

}  // namespace mighty::flow
