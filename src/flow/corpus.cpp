#include "flow/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "gen/arith.hpp"
#include "io/io.hpp"
#include "mig/algebra/algebra.hpp"

namespace mighty::flow {

Corpus& Corpus::add(std::string name, mig::Mig mig) {
  if (!names_.insert(name).second) {
    throw std::invalid_argument("duplicate corpus entry name: " + name);
  }
  entries_.push_back(CorpusEntry{std::move(name), std::move(mig)});
  return *this;
}

size_t Corpus::find(const std::string& name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return i;
  }
  return entries_.size();
}

Corpus Corpus::from_directory(const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(directory, ec)) {
    throw std::runtime_error("corpus directory does not exist: " + directory);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".blif") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end(), [](const fs::path& a, const fs::path& b) {
    return a.filename().string() < b.filename().string();
  });
  Corpus corpus;
  for (const auto& path : files) {
    corpus.add(path.stem().string(), io::read_blif_file(path.string()));
  }
  return corpus;
}

Corpus Corpus::generated_arithmetic() {
  // Small enough that a whole-corpus flow stays test-sized, large enough
  // that every network has nontrivial cut structure to hash.  Names sort
  // in this order, so directory-loaded exports keep the same sequence.
  //
  // Each network is depth-optimized, mirroring the paper's "heavily
  // optimized" starting points (bench::prepare_suite does the same): the raw
  // generator structures are so regular that most cuts collapse to <= 4
  // support, and the 5-input oracle — the thing corpus-wide sharing
  // amortizes — would sit idle.
  Corpus corpus;
  corpus.add("adder16", algebra::depth_optimize(gen::make_adder_n(16)));
  corpus.add("divider8", algebra::depth_optimize(gen::make_divisor_n(8)));
  corpus.add("log2_4", algebra::depth_optimize(gen::make_log2_n(4)));
  corpus.add("max16", algebra::depth_optimize(gen::make_max_n(16)));
  corpus.add("multiplier8", algebra::depth_optimize(gen::make_multiplier_n(8)));
  corpus.add("sine8", algebra::depth_optimize(gen::make_sine_n(8)));
  corpus.add("sqrt8", algebra::depth_optimize(gen::make_sqrt_n(8)));
  return corpus;
}

}  // namespace mighty::flow
