#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "mig/mig.hpp"

/// \file corpus.hpp
/// \brief An ordered set of named networks — the unit a batch run executes
/// over.
///
/// The paper's functional-hashing gains come from reusing exact NPN
/// replacements across many cut instances; a Corpus extends that reuse past a
/// single network: `flow::BatchRunner` runs one Pipeline over every entry
/// with the session's replacement oracle (and its 5-input synthesis cache)
/// shared corpus-wide, so one benchmark's synthesis work warms the next.
///
/// Entries keep their insertion order (from_directory sorts filenames first),
/// so corpus iteration — and therefore every report — is deterministic.

namespace mighty::flow {

struct CorpusEntry {
  std::string name;
  mig::Mig mig;
};

class Corpus {
public:
  Corpus() = default;

  /// Appends a named network.  Names must be unique within the corpus
  /// (reports and result lookup are by name); throws std::invalid_argument
  /// on a duplicate.
  Corpus& add(std::string name, mig::Mig mig);

  /// Loads every `*.blif` file of `directory` (non-recursive), sorted by
  /// filename so the corpus order is independent of directory enumeration;
  /// the entry name is the filename without extension.  Throws
  /// std::runtime_error when the directory does not exist or a file fails to
  /// parse (the reader's message names the file and line).
  static Corpus from_directory(const std::string& directory);

  /// The built-in generator corpus: the seven `src/gen` arithmetic networks
  /// at reduced widths (adder/divider/log2/max/multiplier/sine/sqrt).  This
  /// is exactly the set `tools/make_corpus.cmake` exports to `data/corpus/`
  /// as BLIF, so directory-loaded and generated corpora are interchangeable
  /// in tests and benches (up to the BLIF round-trip's restructuring).
  static Corpus generated_arithmetic();

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const CorpusEntry& operator[](size_t i) const { return entries_[i]; }

  /// Index of the entry called `name`, or size() when absent.
  size_t find(const std::string& name) const;

  std::vector<CorpusEntry>::const_iterator begin() const { return entries_.begin(); }
  std::vector<CorpusEntry>::const_iterator end() const { return entries_.end(); }

private:
  std::vector<CorpusEntry> entries_;
  /// Mirror of the entry names, so add() stays O(1) on corpora of thousands
  /// of files (find() stays linear: it returns an index and is rare).
  std::unordered_set<std::string> names_;
};

}  // namespace mighty::flow
