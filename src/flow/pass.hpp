#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "map/lut_mapper.hpp"
#include "mig/algebra/algebra.hpp"
#include "mig/mig.hpp"
#include "opt/rewrite.hpp"

/// \file pass.hpp
/// \brief The unit of composition of optimization flows.
///
/// A Pass transforms an MIG using the shared Session context and records what
/// it did into a FlowReport.  Concrete passes wrap the library's primitive
/// manipulations: the eight functional-hashing variants (T/TD/TF/TFD and
/// their bottom-up duals), algebraic size and depth optimization, and k-LUT
/// mapping (an analysis pass: it reports area/depth and leaves the network
/// untouched).  Pipelines compose passes; see pipeline.hpp.

namespace mighty::flow {

class Session;
struct RunControl;

/// What one primitive pass did: size/depth before and after, effort counters
/// and wall time.  A FlowReport is the trajectory of these.
struct PassStats {
  std::string name;  ///< script-form name ("TF", "size", "map6", ...)
  uint32_t size_before = 0;
  uint32_t size_after = 0;
  uint32_t depth_before = 0;
  uint32_t depth_after = 0;
  uint64_t cuts_evaluated = 0;  ///< rewriting passes only
  uint64_t replacements = 0;    ///< rewriting passes only
  bool is_mapping = false;      ///< set by mapping passes (0 LUTs is legal)
  uint32_t num_luts = 0;        ///< mapping passes only
  uint32_t lut_depth = 0;       ///< mapping passes only
  /// Oracle activity during this pass (rewriting passes; includes private
  /// per-pass oracles that never touch the session counters).
  uint64_t oracle_queries = 0;
  uint64_t oracle_answered = 0;
  uint64_t oracle_cache5_hits = 0;
  uint64_t oracle_synthesized = 0;
  uint64_t oracle_failures = 0;
  double seconds = 0.0;
};

/// numerator/denominator as a fraction, 1.0 when there was no activity —
/// the single definition behind every oracle rate (FlowReport and
/// BatchReport must never disagree on the convention, the CI "_rate" gate
/// compares them across runs).
inline double oracle_rate(uint64_t numerator, uint64_t denominator) {
  return denominator == 0 ? 1.0
                          : static_cast<double>(numerator) / denominator;
}

/// Aggregated outcome of a Pipeline::run: the per-pass trajectory plus
/// whole-flow totals and a snapshot of the shared oracle's cache behavior
/// over this run.
struct FlowReport {
  std::vector<PassStats> passes;

  /// Cancellation / budget control for the run in flight, or nullptr.  Set
  /// by Pipeline::run and consulted at every pass boundary (composite passes
  /// recurse through run_into, so enforcement reaches every nesting level).
  /// Non-owning; only valid for the duration of the run that set it.
  const RunControl* control = nullptr;

  uint32_t size_before = 0;
  uint32_t size_after = 0;
  uint32_t depth_before = 0;
  uint32_t depth_after = 0;
  double seconds = 0.0;

  /// Oracle activity during this run (sums of the per-pass deltas, so
  /// private per-pass oracles are accounted for as well).
  uint64_t oracle_queries = 0;
  uint64_t oracle_answered = 0;
  uint64_t oracle_cache5_hits = 0;
  uint64_t oracle_synthesized = 0;
  uint64_t oracle_failures = 0;

  uint64_t cuts_evaluated() const;
  uint64_t replacements() const;
  /// Fraction of oracle queries answered with a replacement; 1.0 if none.
  double oracle_hit_rate() const;
  /// Fraction of 5-input cache lookups served without touching the SAT
  /// solver; 1.0 when the flow never looked at a 5-input cut.  The number
  /// corpus-wide oracle sharing improves (see batch.hpp).
  double cache5_reuse_rate() const;
  /// Last mapping result in the trajectory, if any pass mapped.
  const PassStats* last_mapping() const;

  /// Recomputes the oracle_* totals as sums of the per-pass deltas (which
  /// also accounts for private per-pass oracles).  Idempotent: totals are
  /// reset before summing.  Pipeline::run and the batch runner both finalize
  /// reports through this.
  void accumulate_oracle_totals();

  /// Human-readable per-pass table plus the totals line.
  std::string summary() const;
};

class Pass {
public:
  virtual ~Pass() = default;

  /// Script-form name; Pipeline::to_string() joins these with ';' such that
  /// the result re-parses to an equivalent pipeline.
  virtual std::string name() const = 0;

  /// Transforms the network.  Appends one PassStats entry to `report` per
  /// primitive pass executed (composite passes append several).
  virtual mig::Mig run(const mig::Mig& mig, Session& session,
                       FlowReport& report) const = 0;

  /// True when executing this pass may query the session's oracle (and so
  /// its NPN database).  The batch runner materializes both upfront exactly
  /// when some pass needs them — lazy Session init is single-threaded.
  /// Composite passes answer for their bodies.
  virtual bool uses_oracle() const { return false; }

  /// True when the pass reconfigures the session's execution engine rather
  /// than transforming the network (the "parallel:n" directive).  Such
  /// passes are rejected inside batch runs, where tearing down the executor
  /// mid-flight would destroy the pool the batch is running on.
  virtual bool mutates_session() const { return false; }

  virtual std::unique_ptr<Pass> clone() const = 0;
};

/// Functional hashing with a paper-acronym variant ("TF", "bfd", ...).
std::unique_ptr<Pass> make_rewrite_pass(const std::string& variant);
/// Functional hashing with explicit parameters under a display name.
std::unique_ptr<Pass> make_rewrite_pass(const opt::RewriteParams& params,
                                        std::string name);
/// Algebraic size optimization (Omega rules, right-to-left distributivity).
std::unique_ptr<Pass> make_size_pass(const algebra::SizeOptParams& params = {});
/// Algebraic depth optimization (greedy critical-path reduction).
std::unique_ptr<Pass> make_depth_pass(const algebra::DepthOptParams& params = {});
/// k-LUT mapping; records LUT count and LUT depth, returns the MIG unchanged.
std::unique_ptr<Pass> make_lut_map_pass(const map::MapParams& params = {});
/// Execution directive: sets the session's parallelism for every subsequent
/// pass (script form "parallel:n").  Returns the network unchanged and adds
/// no trajectory entry — it transforms the engine, not the MIG.
std::unique_ptr<Pass> make_parallel_pass(uint32_t threads);
/// Session directive: points the session at a persistent 5-input oracle
/// cache (script form "cache:<path>") — the file is merged into the oracle
/// and written back on save/autosave.  Returns the network unchanged and
/// adds no trajectory entry.
std::unique_ptr<Pass> make_cache_pass(std::string path);

/// The "check" script word: full invariant validation of the current network
/// (check::validate_at at full level), throwing std::logic_error with the
/// diagnostic summary on the first violation.  The network passes through
/// untouched; the trajectory records the validation time.
std::unique_ptr<Pass> make_check_pass();

}  // namespace mighty::flow
