#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "serve/protocol.hpp"
#include "util/mutex.hpp"

namespace mighty::serve {

namespace {

using api::Error;
using api::ErrorCode;

std::string errno_message(const std::string& what) {
  return what + ": " + std::generic_category().message(errno);
}

}  // namespace

struct RemoteService::Impl {
  explicit Impl(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorCode::invalid_request,
                  "unusable socket path: \"" + socket_path + '"');
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw Error(ErrorCode::io_error, errno_message("socket"));
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const std::string what = errno_message("connect " + socket_path);
      ::close(fd_);
      fd_ = -1;
      throw Error(ErrorCode::io_error, what);
    }
    try {
      const Frame reply =
          roundtrip(Tag::hello, encode_hello(kProtocolVersion), Tag::hello_ok);
      decode_hello(reply.payload);  // validated layout; content is the echo
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
  }

  ~Impl() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// One request/reply exchange.  Throws the decoded api::Error on an ERROR
  /// reply, connection_lost when the server vanishes, and unknown_message
  /// when the reply tag is not the expected one (a protocol break).
  Frame roundtrip(Tag request, const std::vector<uint8_t>& payload,
                  Tag expected) {
    const util::MutexLock lock(mutex_);
    send_frame(request, payload);
    const Frame reply = read_frame();
    if (static_cast<Tag>(reply.tag) == Tag::error) {
      throw decode_error(reply.payload);
    }
    if (static_cast<Tag>(reply.tag) != expected) {
      throw Error(ErrorCode::unknown_message,
                  "unexpected reply tag " + std::to_string(reply.tag));
    }
    return reply;
  }

  void send_frame(Tag tag, const std::vector<uint8_t>& payload) MIGHTY_REQUIRES(mutex_) {
    const auto bytes = encode_frame(tag, payload);
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw Error(ErrorCode::connection_lost, errno_message("send"));
      }
      sent += static_cast<size_t>(n);
    }
  }

  Frame read_frame() MIGHTY_REQUIRES(mutex_) {
    uint8_t buffer[64 * 1024];
    for (;;) {
      if (auto frame = decoder_.next()) return *frame;
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        throw Error(ErrorCode::connection_lost,
                    n == 0 ? "server closed the connection"
                           : errno_message("recv"));
      }
      decoder_.feed(buffer, static_cast<size_t>(n));
    }
  }

  int fd_ = -1;
  /// Serializes roundtrips: one in flight per client.
  util::Mutex mutex_{util::LockRank::serve_client};
  FrameDecoder decoder_ MIGHTY_GUARDED_BY(mutex_);
};

RemoteService::RemoteService(const std::string& socket_path)
    : impl_(std::make_unique<Impl>(socket_path)) {}

RemoteService::~RemoteService() = default;

api::JobId RemoteService::submit(const api::JobRequest& request) {
  const Frame reply =
      impl_->roundtrip(Tag::submit, encode_submit(request), Tag::submit_ok);
  return decode_job_id(reply.payload);
}

api::JobStatus RemoteService::status(api::JobId id) {
  const Frame reply =
      impl_->roundtrip(Tag::status, encode_job_id(id), Tag::status_ok);
  return decode_status_ok(reply.payload);
}

api::JobResult RemoteService::result(api::JobId id) {
  const Frame reply =
      impl_->roundtrip(Tag::result, encode_job_id(id), Tag::result_ok);
  return decode_result_ok(reply.payload);
}

bool RemoteService::cancel(api::JobId id) {
  const Frame reply =
      impl_->roundtrip(Tag::cancel, encode_job_id(id), Tag::cancel_ok);
  return decode_cancel_ok(reply.payload);
}

api::ServiceStats RemoteService::stats() {
  const Frame reply = impl_->roundtrip(Tag::stats, {}, Tag::stats_ok);
  return decode_stats_ok(reply.payload);
}

void RemoteService::shutdown() {
  impl_->roundtrip(Tag::shutdown, {}, Tag::shutdown_ok);
}

api::CacheInfo RemoteService::cache_load(const std::string& path) {
  throw Error(ErrorCode::unsupported,
              "the daemon owns its cache; cannot load " + path + " remotely");
}

size_t RemoteService::cache_save(const std::string&) {
  throw Error(ErrorCode::unsupported, "the daemon owns its cache");
}

api::CacheInfo RemoteService::cache_stats() {
  // Cache counters do travel: STATS carries them.
  const api::ServiceStats stats = this->stats();
  api::CacheInfo info;
  info.entries = stats.cache_entries;
  info.dirty = stats.cache_dirty;
  return info;
}

}  // namespace mighty::serve
