#pragma once

#include <functional>
#include <memory>
#include <string>

#include "api/api.hpp"

/// \file server.hpp
/// \brief The mighty-serve connection layer: a unix-domain-socket front end
/// for any api::Service.
///
/// The server owns the listening socket and one thread per connection; all
/// optimization work happens in the Service's own job workers, so a slow job
/// never blocks another client's frames.  Request handling is a thin
/// translation loop: decode frame -> Service call -> encode reply, with every
/// exception mapped to an ERROR frame carrying its stable code
/// (api::classify), so a protocol-level mistake can never crash the daemon.
///
/// Shutdown discipline (the daemon relies on this order): a SHUTDOWN frame
/// acknowledges, flips the server into shutting_down (every later request is
/// refused with that code) and invokes ServerParams::on_shutdown_request —
/// it does NOT stop the server itself.  The owner then calls
/// Service::shutdown() first (which wakes any connection blocked in
/// result()) and Server::stop() second (which unblocks recv/accept and joins
/// the threads).  Stopping first would deadlock on a connection waiting for
/// a running job.

namespace mighty::serve {

struct ServerParams {
  std::string socket_path;
  /// Invoked (once) when a client requests SHUTDOWN, after the reply is
  /// sent.  Called from a connection thread: do not call Server::stop()
  /// directly from it — signal the owner's main loop instead (the daemon
  /// writes its self-pipe here, same as SIGTERM).
  std::function<void()> on_shutdown_request;
};

class Server {
 public:
  /// Binds and listens on params.socket_path (replacing a stale socket
  /// file) and starts accepting.  Throws api::Error(io_error) when the
  /// socket cannot be set up.  `service` must outlive the server.
  Server(api::Service& service, ServerParams params);
  ~Server();  ///< stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, unblocks and joins every connection thread, and
  /// removes the socket file.  Idempotent.
  void stop();

  const std::string& socket_path() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mighty::serve
