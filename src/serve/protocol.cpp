#include "serve/protocol.hpp"

#include <cstring>

namespace mighty::serve {

namespace {

using api::Error;
using api::ErrorCode;

[[noreturn]] void malformed(const std::string& what) {
  throw Error(ErrorCode::malformed_frame, "malformed frame: " + what);
}

/// ErrorCode travels as u32; values outside the enum (a newer peer) land on
/// `internal` rather than forging a code this build never defined.
ErrorCode code_from_wire(uint32_t raw) {
  if (raw > static_cast<uint32_t>(ErrorCode::internal)) {
    return ErrorCode::internal;
  }
  return static_cast<ErrorCode>(raw);
}

api::JobState state_from_wire(uint8_t raw) {
  if (raw > static_cast<uint8_t>(api::JobState::cancelled)) {
    malformed("job state " + std::to_string(raw));
  }
  return static_cast<api::JobState>(raw);
}

}  // namespace

// --- framing -----------------------------------------------------------------

bool is_known_tag(uint8_t raw) {
  switch (static_cast<Tag>(raw)) {
    case Tag::hello:
    case Tag::submit:
    case Tag::status:
    case Tag::result:
    case Tag::cancel:
    case Tag::stats:
    case Tag::shutdown:
    case Tag::hello_ok:
    case Tag::submit_ok:
    case Tag::status_ok:
    case Tag::result_ok:
    case Tag::cancel_ok:
    case Tag::stats_ok:
    case Tag::shutdown_ok:
    case Tag::error:
      return true;
  }
  return false;
}

std::vector<uint8_t> encode_frame(Tag tag, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  out.reserve(5 + payload.size());
  out.push_back(static_cast<uint8_t>(tag));
  const auto length = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<uint8_t>(length >> shift));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(const uint8_t* data, size_t size) {
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // a long conversation does not degrade to O(n^2) erases.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  const size_t available = buffer_.size() - consumed_;
  if (available < 5) return std::nullopt;
  const uint8_t* head = buffer_.data() + consumed_;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(head[1 + i]) << (8 * i);
  }
  // Reject before buffering: a hostile 4 GiB declaration must not drive
  // allocation.  The header alone convicts it.
  if (length > kMaxPayloadBytes) {
    throw Error(ErrorCode::oversized_frame,
                "frame declares " + std::to_string(length) +
                    " payload bytes (cap " + std::to_string(kMaxPayloadBytes) +
                    ")");
  }
  if (available < 5 + static_cast<size_t>(length)) return std::nullopt;
  Frame frame;
  frame.tag = head[0];
  frame.payload.assign(head + 5, head + 5 + length);
  consumed_ += 5 + static_cast<size_t>(length);
  return frame;
}

// --- payload primitives ------------------------------------------------------

void Writer::u8(uint8_t v) { bytes_.push_back(v); }

void Writer::u32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void Writer::u64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void Writer::f64(double v) {
  static_assert(sizeof(double) == sizeof(uint64_t));
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& v) {
  u32(static_cast<uint32_t>(v.size()));
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void Reader::require(size_t n) const {
  if (size_ - pos_ < n) malformed("truncated payload");
}

uint8_t Reader::u8() {
  require(1);
  return data_[pos_++];
}

uint32_t Reader::u32() {
  require(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t Reader::u64() {
  require(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::f64() {
  const uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const uint32_t length = u32();
  require(length);
  std::string v(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return v;
}

void Reader::expect_end() const {
  if (!at_end()) malformed("trailing bytes");
}

// --- message codecs ----------------------------------------------------------

std::vector<uint8_t> encode_hello(uint32_t version) {
  Writer w;
  w.u32(version);
  return w.take();
}

uint32_t decode_hello(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  const uint32_t version = r.u32();
  r.expect_end();
  return version;
}

std::vector<uint8_t> encode_submit(const api::JobRequest& request) {
  Writer w;
  w.str(request.name);
  w.str(request.script);
  w.str(request.network_blif);
  w.u32(request.node_budget);
  w.u64(request.conflict_budget);
  w.f64(request.wall_budget_seconds);
  return w.take();
}

api::JobRequest decode_submit(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  api::JobRequest request;
  request.name = r.str();
  request.script = r.str();
  request.network_blif = r.str();
  request.node_budget = r.u32();
  request.conflict_budget = r.u64();
  request.wall_budget_seconds = r.f64();
  r.expect_end();
  return request;
}

std::vector<uint8_t> encode_job_id(api::JobId id) {
  Writer w;
  w.u64(id);
  return w.take();
}

api::JobId decode_job_id(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  const api::JobId id = r.u64();
  r.expect_end();
  return id;
}

std::vector<uint8_t> encode_status_ok(const api::JobStatus& status) {
  Writer w;
  w.u8(static_cast<uint8_t>(status.state));
  return w.take();
}

api::JobStatus decode_status_ok(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  api::JobStatus status;
  status.state = state_from_wire(r.u8());
  r.expect_end();
  return status;
}

namespace {

void write_pass_stats(Writer& w, const flow::PassStats& pass) {
  w.str(pass.name);
  w.u32(pass.size_before);
  w.u32(pass.size_after);
  w.u32(pass.depth_before);
  w.u32(pass.depth_after);
  w.u64(pass.cuts_evaluated);
  w.u64(pass.replacements);
  w.u8(pass.is_mapping ? 1 : 0);
  w.u32(pass.num_luts);
  w.u32(pass.lut_depth);
  w.u64(pass.oracle_queries);
  w.u64(pass.oracle_answered);
  w.u64(pass.oracle_cache5_hits);
  w.u64(pass.oracle_synthesized);
  w.u64(pass.oracle_failures);
  w.f64(pass.seconds);
}

flow::PassStats read_pass_stats(Reader& r) {
  flow::PassStats pass;
  pass.name = r.str();
  pass.size_before = r.u32();
  pass.size_after = r.u32();
  pass.depth_before = r.u32();
  pass.depth_after = r.u32();
  pass.cuts_evaluated = r.u64();
  pass.replacements = r.u64();
  pass.is_mapping = r.u8() != 0;
  pass.num_luts = r.u32();
  pass.lut_depth = r.u32();
  pass.oracle_queries = r.u64();
  pass.oracle_answered = r.u64();
  pass.oracle_cache5_hits = r.u64();
  pass.oracle_synthesized = r.u64();
  pass.oracle_failures = r.u64();
  pass.seconds = r.f64();
  return pass;
}

}  // namespace

std::vector<uint8_t> encode_result_ok(const api::JobResult& result) {
  Writer w;
  w.u32(static_cast<uint32_t>(result.code));
  w.str(result.message);
  w.str(result.network_blif);
  const auto& report = result.report;
  w.u32(report.size_before);
  w.u32(report.size_after);
  w.u32(report.depth_before);
  w.u32(report.depth_after);
  w.f64(report.seconds);
  w.u64(report.oracle_queries);
  w.u64(report.oracle_answered);
  w.u64(report.oracle_cache5_hits);
  w.u64(report.oracle_synthesized);
  w.u64(report.oracle_failures);
  w.u32(static_cast<uint32_t>(report.passes.size()));
  for (const auto& pass : report.passes) write_pass_stats(w, pass);
  return w.take();
}

api::JobResult decode_result_ok(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  api::JobResult result;
  result.code = code_from_wire(r.u32());
  result.message = r.str();
  result.network_blif = r.str();
  auto& report = result.report;
  report.size_before = r.u32();
  report.size_after = r.u32();
  report.depth_before = r.u32();
  report.depth_after = r.u32();
  report.seconds = r.f64();
  report.oracle_queries = r.u64();
  report.oracle_answered = r.u64();
  report.oracle_cache5_hits = r.u64();
  report.oracle_synthesized = r.u64();
  report.oracle_failures = r.u64();
  const uint32_t num_passes = r.u32();
  // Each pass costs >= 65 payload bytes; a count the payload cannot hold is
  // a forged header, not a big report.
  if (static_cast<size_t>(num_passes) > payload.size() / 65 + 1) {
    malformed("pass count " + std::to_string(num_passes));
  }
  report.passes.reserve(num_passes);
  for (uint32_t i = 0; i < num_passes; ++i) {
    report.passes.push_back(read_pass_stats(r));
  }
  r.expect_end();
  return result;
}

std::vector<uint8_t> encode_cancel_ok(bool had_effect) {
  Writer w;
  w.u8(had_effect ? 1 : 0);
  return w.take();
}

bool decode_cancel_ok(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  const bool had_effect = r.u8() != 0;
  r.expect_end();
  return had_effect;
}

std::vector<uint8_t> encode_stats_ok(const api::ServiceStats& stats) {
  Writer w;
  w.u64(stats.submitted);
  w.u64(stats.completed);
  w.u64(stats.failed);
  w.u64(stats.cancelled);
  w.u64(stats.queued);
  w.u64(stats.running);
  w.u64(stats.oracle_queries);
  w.u64(stats.oracle_cache5_hits);
  w.u64(stats.oracle_synthesized);
  w.u64(stats.cache_entries);
  w.u64(stats.cache_dirty);
  w.u32(stats.threads);
  w.u32(stats.job_workers);
  return w.take();
}

api::ServiceStats decode_stats_ok(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  api::ServiceStats stats;
  stats.submitted = r.u64();
  stats.completed = r.u64();
  stats.failed = r.u64();
  stats.cancelled = r.u64();
  stats.queued = r.u64();
  stats.running = r.u64();
  stats.oracle_queries = r.u64();
  stats.oracle_cache5_hits = r.u64();
  stats.oracle_synthesized = r.u64();
  stats.cache_entries = r.u64();
  stats.cache_dirty = r.u64();
  stats.threads = r.u32();
  stats.job_workers = r.u32();
  r.expect_end();
  return stats;
}

std::vector<uint8_t> encode_error(api::ErrorCode code, const std::string& message) {
  Writer w;
  w.u32(static_cast<uint32_t>(code));
  w.str(message);
  return w.take();
}

api::Error decode_error(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  const ErrorCode code = code_from_wire(r.u32());
  std::string message = r.str();
  r.expect_end();
  return {code, message};
}

}  // namespace mighty::serve
