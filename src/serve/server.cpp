#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <system_error>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "util/mutex.hpp"

namespace mighty::serve {

namespace {

using api::Error;
using api::ErrorCode;

std::string errno_message(const std::string& what) {
  return what + ": " + std::generic_category().message(errno);
}

/// Writes the whole buffer; MSG_NOSIGNAL so a vanished peer surfaces as
/// EPIPE instead of killing the process.  Returns false when the peer is
/// gone (the caller just drops the connection).
bool send_all(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Impl {
  Impl(api::Service& service, ServerParams params)
      : service_(service), params_(std::move(params)) {
    if (params_.socket_path.empty()) {
      throw Error(ErrorCode::invalid_request, "server needs a socket path");
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (params_.socket_path.size() >= sizeof(addr.sun_path)) {
      throw Error(ErrorCode::invalid_request,
                  "socket path too long: " + params_.socket_path);
    }
    std::memcpy(addr.sun_path, params_.socket_path.c_str(),
                params_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      throw Error(ErrorCode::io_error, errno_message("socket"));
    }
    // A previous daemon instance that died hard leaves its socket file
    // behind; binding over it is the expected restart path.
    ::unlink(params_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(listen_fd_, 64) < 0) {
      const std::string what = errno_message("bind " + params_.socket_path);
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw Error(ErrorCode::io_error, what);
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~Impl() { stop(); }

  void stop() {
    stopping_.store(true);
    {
      // Serializes concurrent stop() calls: the second caller blocks here
      // until the first finished joining, then finds nothing left to do.
      const util::MutexLock lock(join_mutex_);
      if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
      }
      if (accept_thread_.joinable()) accept_thread_.join();
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(params_.socket_path.c_str());
      }
      std::vector<std::unique_ptr<Connection>> connections;
      {
        const util::MutexLock conn_lock(connections_mutex_);
        connections.swap(connections_);
      }
      for (auto& connection : connections) {
        ::shutdown(connection->fd, SHUT_RDWR);  // unblocks recv()
      }
      for (auto& connection : connections) {
        if (connection->thread.joinable()) connection->thread.join();
        ::close(connection->fd);
      }
    }
  }

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener was shut down (or broke); stop() cleans up
      }
      if (stopping_.load()) {
        ::close(fd);
        return;
      }
      const util::MutexLock lock(connections_mutex_);
      reap_finished_locked();
      auto connection = std::make_unique<Connection>();
      connection->fd = fd;
      Connection* raw = connection.get();
      connections_.push_back(std::move(connection));
      raw->thread = std::thread([this, raw] {
        serve_connection(raw->fd);
        // Half-close so the peer sees EOF now, not at server stop; the fd
        // itself is closed by the reaper or stop() after the join (closing
        // here would race a concurrent stop() into reusing the fd number).
        ::shutdown(raw->fd, SHUT_RDWR);
        raw->finished.store(true);
      });
    }
  }

  /// Joins and closes connections whose handler has returned, so a
  /// long-lived daemon's fd table is bounded by *live* clients, not by every
  /// client it ever served.  Caller holds connections_mutex_ (enforced).
  void reap_finished_locked() MIGHTY_REQUIRES(connections_mutex_) {
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if ((*it)->finished.load()) {
        (*it)->thread.join();
        ::close((*it)->fd);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }

  bool reply(int fd, Tag tag, const std::vector<uint8_t>& payload) {
    return send_all(fd, encode_frame(tag, payload));
  }

  bool reply_error(int fd, ErrorCode code, const std::string& message) {
    return reply(fd, Tag::error, encode_error(code, message));
  }

  void serve_connection(int fd) {
    FrameDecoder decoder;
    bool hello_done = false;
    std::vector<uint8_t> buffer(64 * 1024);
    for (;;) {
      const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer closed (or stop() shut the socket down)
      try {
        decoder.feed(buffer.data(), static_cast<size_t>(n));
        std::optional<Frame> frame;
        while ((frame = decoder.next())) {
          if (!handle_frame(fd, *frame, hello_done)) return;
        }
      } catch (const std::exception& e) {
        // A framing violation (oversized declared length) poisons the byte
        // stream — nothing after it can be trusted, so report and hang up.
        reply_error(fd, api::classify(e), e.what());
        return;
      }
    }
  }

  /// Returns false when the connection should close.
  bool handle_frame(int fd, const Frame& frame, bool& hello_done) {
    const Tag tag = static_cast<Tag>(frame.tag);
    if (!hello_done) {
      if (tag != Tag::hello) {
        reply_error(fd, ErrorCode::invalid_request,
                    "the first frame must be HELLO");
        return false;
      }
      const uint32_t version = decode_hello(frame.payload);
      if (version != kProtocolVersion) {
        reply_error(fd, ErrorCode::version_mismatch,
                    "client speaks protocol " + std::to_string(version) +
                        ", server speaks " + std::to_string(kProtocolVersion));
        return false;
      }
      hello_done = true;
      return reply(fd, Tag::hello_ok, encode_hello(kProtocolVersion));
    }
    if (shutdown_requested_.load()) {
      // One client asked the daemon to stop; refusing everything afterwards
      // (including a second SHUTDOWN) keeps the wind-down deterministic.
      reply_error(fd, ErrorCode::shutting_down, "server is shutting down");
      return tag != Tag::shutdown;
    }
    if (!is_known_tag(frame.tag)) {
      // Unknown tags are survivable: the frame boundary is intact, so answer
      // and keep listening (a newer client probing an optional message must
      // not lose its connection).
      return reply_error(fd, ErrorCode::unknown_message,
                         "unknown frame tag " + std::to_string(frame.tag));
    }
    try {
      switch (tag) {
        case Tag::hello:
          return reply(fd, Tag::hello_ok, encode_hello(kProtocolVersion));
        case Tag::submit:
          return reply(fd, Tag::submit_ok,
                       encode_job_id(service_.submit(decode_submit(frame.payload))));
        case Tag::status:
          return reply(fd, Tag::status_ok,
                       encode_status_ok(service_.status(decode_job_id(frame.payload))));
        case Tag::result:
          return reply(fd, Tag::result_ok,
                       encode_result_ok(service_.result(decode_job_id(frame.payload))));
        case Tag::cancel:
          return reply(fd, Tag::cancel_ok,
                       encode_cancel_ok(service_.cancel(decode_job_id(frame.payload))));
        case Tag::stats:
          return reply(fd, Tag::stats_ok, encode_stats_ok(service_.stats()));
        case Tag::shutdown: {
          if (shutdown_requested_.exchange(true)) {
            reply_error(fd, ErrorCode::shutting_down, "server is shutting down");
            return false;
          }
          reply(fd, Tag::shutdown_ok, {});
          if (params_.on_shutdown_request) params_.on_shutdown_request();
          return false;  // the requester's conversation is over
        }
        case Tag::hello_ok:
        case Tag::submit_ok:
        case Tag::status_ok:
        case Tag::result_ok:
        case Tag::cancel_ok:
        case Tag::stats_ok:
        case Tag::shutdown_ok:
        case Tag::error:
          // Reply tags are real wire values a server never accepts; answer
          // exactly like an out-of-enum byte so a confused peer keeps its
          // connection.
          return reply_error(fd, ErrorCode::unknown_message,
                             "unknown frame tag " + std::to_string(frame.tag));
      }
      return true;  // not reached: every enumerator above returns
    } catch (const std::exception& e) {
      // Service-level failures (bad script, unknown job, shutting down...)
      // belong to this request only; the connection stays up.
      return reply_error(fd, api::classify(e), e.what());
    }
  }

  api::Service& service_;
  ServerParams params_;
  /// Written only by the constructor and by stop() under join_mutex_; the
  /// accept loop reads it concurrently, which is safe because stop() shuts
  /// the socket down (unblocking accept) before closing and clearing it.
  /// Not annotated: the constructor cannot hold the lock it initializes.
  int listen_fd_ = -1;
  std::thread accept_thread_;
  /// Outermost rank: stop() acquires connections_mutex_ while holding it.
  util::Mutex join_mutex_{util::LockRank::serve_server_join};
  util::Mutex connections_mutex_{util::LockRank::serve_server_connections};
  std::vector<std::unique_ptr<Connection>> connections_ MIGHTY_GUARDED_BY(connections_mutex_);
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};
};

Server::Server(api::Service& service, ServerParams params)
    : impl_(std::make_unique<Impl>(service, std::move(params))) {}

Server::~Server() { stop(); }

void Server::stop() { impl_->stop(); }

const std::string& Server::socket_path() const { return impl_->params_.socket_path; }

}  // namespace mighty::serve
