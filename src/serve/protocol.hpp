#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/api.hpp"

/// \file protocol.hpp
/// \brief The mighty-serve wire protocol: framing and message codecs.
///
/// Transport-agnostic: this header knows bytes, not sockets (the fuzz_frame
/// harness drives the decoder straight from a byte buffer).  See
/// docs/protocol.md for the normative spec.
///
/// Every message is one frame:
///
///   +-----+-------------------+------------------------+
///   | tag |  payload length   |  payload               |
///   | u8  |  u32 little-endian|  `length` bytes        |
///   +-----+-------------------+------------------------+
///
/// Payload scalars are little-endian; strings are u32 length + raw bytes.
/// A declared length above kMaxPayloadBytes is rejected before any
/// allocation (oversized_frame); payload bytes that do not decode as the
/// tagged message are malformed_frame.
///
/// The conversation starts with HELLO carrying the client's protocol
/// version; the server accepts only an exact match of kProtocolVersion
/// (version_mismatch otherwise) — the version bumps on any change to these
/// layouts, and artifact identifiers (job ids) stay stable within a version
/// so later sharded-database work can reference them.

namespace mighty::serve {

inline constexpr uint32_t kProtocolVersion = 1;

/// Upper bound on a frame payload.  Generous for BLIF networks (16 MiB text)
/// while keeping a hostile 4 GiB declared length from ever allocating.
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

/// Frame tags.  Requests have the high bit clear, replies set; ERROR is the
/// universal failure reply.  Values are wire format — append, never renumber.
enum class Tag : uint8_t {
  hello = 0x01,
  submit = 0x02,
  status = 0x03,
  result = 0x04,
  cancel = 0x05,
  stats = 0x06,
  shutdown = 0x07,

  hello_ok = 0x81,
  submit_ok = 0x82,
  status_ok = 0x83,
  result_ok = 0x84,
  cancel_ok = 0x85,
  stats_ok = 0x86,
  shutdown_ok = 0x87,

  error = 0xFF,
};

/// True when `raw` is one of the Tag enumerators above.  Consumers validate
/// the raw byte HERE, before casting and switching on Tag, so their switches
/// can list every enumerator with no default: label — then -Wswitch (and the
/// wire-enum-switch lint) flags any appended tag at compile time instead of
/// letting it fall into a default silently.
bool is_known_tag(uint8_t raw);

struct Frame {
  uint8_t tag = 0;
  std::vector<uint8_t> payload;
};

/// Serializes one frame (header + payload).
std::vector<uint8_t> encode_frame(Tag tag, const std::vector<uint8_t>& payload);

/// Incremental frame parser over an arbitrarily-chunked byte stream.  feed()
/// appends; next() yields complete frames in order, nullopt when more bytes
/// are needed, and throws api::Error(oversized_frame) the moment a header
/// declares more than kMaxPayloadBytes — before buffering the payload.
class FrameDecoder {
 public:
  void feed(const uint8_t* data, size_t size);
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  size_t pending() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
};

// --- payload primitives ------------------------------------------------------

/// Append-only payload builder (little-endian scalars, length-prefixed
/// strings).
class Writer {
 public:
  void u8(uint8_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void f64(double v);
  void str(const std::string& v);
  std::vector<uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked payload reader; any read past the end (or a string whose
/// declared length overruns the payload) throws api::Error(malformed_frame).
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& payload)
      : Reader(payload.data(), payload.size()) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  double f64();
  std::string str();
  bool at_end() const { return pos_ == size_; }
  /// Decoders call this last: trailing bytes are malformed_frame, so a
  /// message is exactly its layout, nothing more.
  void expect_end() const;

 private:
  void require(size_t n) const;
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- message codecs ----------------------------------------------------------
// encode_* returns the payload for the named tag; decode_* parses it,
// throwing api::Error(malformed_frame) on any violation.

std::vector<uint8_t> encode_hello(uint32_t version);
uint32_t decode_hello(const std::vector<uint8_t>& payload);

std::vector<uint8_t> encode_submit(const api::JobRequest& request);
api::JobRequest decode_submit(const std::vector<uint8_t>& payload);

std::vector<uint8_t> encode_job_id(api::JobId id);
api::JobId decode_job_id(const std::vector<uint8_t>& payload);

std::vector<uint8_t> encode_status_ok(const api::JobStatus& status);
api::JobStatus decode_status_ok(const std::vector<uint8_t>& payload);

std::vector<uint8_t> encode_result_ok(const api::JobResult& result);
api::JobResult decode_result_ok(const std::vector<uint8_t>& payload);

std::vector<uint8_t> encode_cancel_ok(bool had_effect);
bool decode_cancel_ok(const std::vector<uint8_t>& payload);

std::vector<uint8_t> encode_stats_ok(const api::ServiceStats& stats);
api::ServiceStats decode_stats_ok(const std::vector<uint8_t>& payload);

std::vector<uint8_t> encode_error(api::ErrorCode code, const std::string& message);
/// Returns the coded error; the caller decides whether to throw it.
api::Error decode_error(const std::vector<uint8_t>& payload);

}  // namespace mighty::serve
