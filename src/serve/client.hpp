#pragma once

#include <memory>
#include <string>

#include "api/api.hpp"

/// \file client.hpp
/// \brief api::Service over a unix socket: the client side of mighty-serve.
///
/// RemoteService fulfills the same contract as api::LocalService, so a
/// front end (the shell, a batch driver) switches between "optimize here"
/// and "optimize on the warm daemon" by swapping one pointer.  Calls are
/// synchronous request/reply roundtrips serialized on one connection;
/// result() blocks server-side until the job is terminal, exactly like the
/// local call.  An ERROR reply is rethrown as api::Error with the code the
/// server sent; a vanished server surfaces as connection_lost.

namespace mighty::serve {

class RemoteService final : public api::Service {
 public:
  /// Connects to a daemon at `socket_path` and performs the HELLO version
  /// handshake.  Throws api::Error(io_error) when the socket cannot be
  /// reached and api::Error(version_mismatch) when the daemon speaks a
  /// different protocol version.
  explicit RemoteService(const std::string& socket_path);
  ~RemoteService() override;

  RemoteService(const RemoteService&) = delete;
  RemoteService& operator=(const RemoteService&) = delete;

  api::JobId submit(const api::JobRequest& request) override;
  api::JobStatus status(api::JobId id) override;
  api::JobResult result(api::JobId id) override;
  bool cancel(api::JobId id) override;
  api::ServiceStats stats() override;
  /// Asks the daemon to shut down (it persists its cache and exits); this
  /// client's connection is finished afterwards.
  void shutdown() override;

  /// The daemon owns its cache lifecycle; these throw api::Error(unsupported).
  api::CacheInfo cache_load(const std::string& path) override;
  size_t cache_save(const std::string& path) override;
  api::CacheInfo cache_stats() override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mighty::serve
