#include "api/api.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "flow/control.hpp"
#include "flow/pipeline.hpp"
#include "io/io.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace mighty::api {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::done: return "done";
    case JobState::failed: return "failed";
    case JobState::cancelled: return "cancelled";
  }
  return "?";
}

struct LocalService::Impl {
  struct Job {
    JobId id = 0;
    JobRequest request;
    flow::Pipeline pipeline;  ///< parsed at submit: script errors are sync
    flow::RunControl control;
    JobState state = JobState::queued;
    JobResult result;
  };

  explicit Impl(Params params) : params_(std::move(params)), session_(params_.session) {
    params_.job_workers = std::clamp<uint32_t>(params_.job_workers, 1,
                                               util::ThreadPool::kMaxParallelism);
    // The spawned workers immediately contend on mutex_ in worker_loop, so
    // holding it while filling workers_ only delays their first queue check.
    util::MutexLock lock(mutex_);
    workers_.reserve(params_.job_workers);
    for (uint32_t i = 0; i < params_.job_workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  JobId submit(const JobRequest& request) {
    // Parse before taking the lock: a bad script is the submitter's error
    // and reports synchronously (ScriptError -> invalid_script).
    flow::Pipeline pipeline = flow::Pipeline::parse(request.script);
    util::MutexLock lock(mutex_);
    if (stopping_) {
      throw Error(ErrorCode::shutting_down, "service is shutting down");
    }
    if (params_.job_workers > 1 && pipeline.mutates_session()) {
      throw Error(ErrorCode::invalid_request,
                  "session directives ('parallel:', 'cache:') require a "
                  "single-worker service: they reconfigure the engine under "
                  "every concurrent job");
    }
    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->request = request;
    job->pipeline = std::move(pipeline);
    jobs_.emplace(job->id, job);
    queue_.push_back(job);
    ++submitted_;
    queue_cv_.notify_one();
    return job->id;
  }

  JobStatus status(JobId id) {
    util::MutexLock lock(mutex_);
    return JobStatus{find_locked(id)->state};
  }

  JobResult result(JobId id) {
    util::MutexLock lock(mutex_);
    auto job = find_locked(id);
    while (!is_terminal(job->state)) done_cv_.wait(lock);
    return job->result;
  }

  bool cancel(JobId id) {
    util::MutexLock lock(mutex_);
    auto job = find_locked(id);
    if (is_terminal(job->state)) return false;
    if (job->state == JobState::queued) {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), job), queue_.end());
      finalize_locked(*job, JobState::cancelled,
                      {ErrorCode::cancelled, "cancelled before start", {}, {}});
      return true;
    }
    // Running: flag it; the pipeline stops at its next pass boundary.
    job->control.cancel.store(true, std::memory_order_relaxed);
    return true;
  }

  ServiceStats stats() {
    ServiceStats s;
    {
      util::MutexLock lock(mutex_);
      s.submitted = submitted_;
      s.completed = completed_;
      s.failed = failed_;
      s.cancelled = cancelled_;
      s.queued = queue_.size();
      s.running = running_;
    }
    if (const auto* oracle = session_.oracle_if_created()) {
      s.oracle_queries = oracle->queries();
      s.oracle_cache5_hits = oracle->cache5_hits();
      s.oracle_synthesized = oracle->synthesized_count();
      const auto cache = oracle->cache_stats();
      s.cache_entries = cache.entries;
      s.cache_dirty = cache.dirty;
    }
    s.threads = session_.threads();
    s.job_workers = params_.job_workers;
    return s;
  }

  void shutdown() {
    std::vector<std::thread> workers;
    {
      util::MutexLock lock(mutex_);
      stopping_ = true;
      for (auto& job : queue_) {
        finalize_locked(*job, JobState::cancelled,
                        {ErrorCode::shutting_down,
                         "service shut down before the job started",
                         {},
                         {}});
      }
      queue_.clear();
      workers.swap(workers_);  // empty on repeat calls: idempotent
    }
    queue_cv_.notify_all();
    for (auto& worker : workers) worker.join();
    // After the last job: the single choke point every shutdown path shares
    // (the Session destructor persists again and no-ops on clean state).
    session_.persist();
  }

  CacheInfo cache_load(const std::string& path) {
    const util::WriterLock lock(session_rw_);
    if (!path.empty()) session_.set_cache_path(path);
    if (session_.cache_path().empty()) {
      throw Error(ErrorCode::invalid_request, "no cache path set");
    }
    const auto loaded = session_.load_cache();
    CacheInfo info;
    info.adopted = loaded.adopted;
    switch (loaded.status) {
      case opt::ReplacementOracle::CacheLoadStatus::loaded:
        info.status = "loaded";
        break;
      case opt::ReplacementOracle::CacheLoadStatus::missing:
        info.status = "missing";
        break;
      case opt::ReplacementOracle::CacheLoadStatus::malformed:
        info.status = "malformed";
        break;
    }
    fill_cache_counts(info);
    return info;
  }

  size_t cache_save(const std::string& path) {
    const util::WriterLock lock(session_rw_);
    if (!path.empty()) session_.set_cache_path(path);
    if (session_.cache_path().empty()) {
      throw Error(ErrorCode::invalid_request, "no cache path set");
    }
    return session_.save_cache();
  }

  CacheInfo cache_stats() {
    CacheInfo info;
    fill_cache_counts(info);
    return info;
  }

  void fill_cache_counts(CacheInfo& info) {
    if (const auto* oracle = session_.oracle_if_created()) {
      const auto cache = oracle->cache_stats();
      info.entries = cache.entries;
      info.dirty = cache.dirty;
    }
  }

  void worker_loop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        util::MutexLock lock(mutex_);
        while (!stopping_ && queue_.empty()) queue_cv_.wait(lock);
        if (queue_.empty()) return;  // only true here when stopping
        job = queue_.front();
        queue_.pop_front();
        if (job->state != JobState::queued) continue;  // raced with cancel
        job->state = JobState::running;
        ++running_;
      }
      run_job(*job);
    }
  }

  void run_job(Job& job) {
    JobResult res;
    try {
      std::istringstream blif(job.request.network_blif);
      const mig::Mig input = io::read_blif(blif);
      if (job.pipeline.uses_oracle() && session_.oracle_if_created() == nullptr) {
        // Lazy oracle/database init is single-threaded by design; take the
        // session exclusively for the first materialization.
        const util::WriterLock init(session_rw_);
        if (job.pipeline.uses_oracle()) session_.oracle();
      }
      const util::SharedLock run(session_rw_);
      job.control.arm_deadline(job.request.wall_budget_seconds);
      job.control.node_budget = job.request.node_budget;
      job.control.conflict_budget = job.request.conflict_budget;
      const mig::Mig optimized =
          job.pipeline.run(input, session_, &res.report, &job.control);
      std::ostringstream out;
      // Fixed model name: the artifact must be bit-identical across local
      // and remote runs, and a client-chosen name would be spliced verbatim
      // into BLIF text.
      io::write_blif(out, optimized);
      res.network_blif = out.str();
      res.code = ErrorCode::ok;
    } catch (const std::exception& e) {
      res.code = classify(e);
      res.message = e.what();
    }
    const JobState state = res.code == ErrorCode::ok ? JobState::done
                           : res.code == ErrorCode::cancelled
                               ? JobState::cancelled
                               : JobState::failed;
    util::MutexLock lock(mutex_);
    --running_;
    finalize_locked(job, state, std::move(res));
  }

  // --- helpers (mutex_ held, enforced by MIGHTY_REQUIRES) ---------------------

  std::shared_ptr<Job> find_locked(JobId id) MIGHTY_REQUIRES(mutex_) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      throw Error(ErrorCode::job_not_found, "no job " + std::to_string(id));
    }
    return it->second;
  }

  void finalize_locked(Job& job, JobState state, JobResult result) MIGHTY_REQUIRES(mutex_) {
    job.state = state;
    job.result = std::move(result);
    if (state == JobState::done) ++completed_;
    if (state == JobState::failed) ++failed_;
    if (state == JobState::cancelled) ++cancelled_;
    done_cv_.notify_all();
  }

  Params params_;
  flow::Session session_;
  /// Jobs hold this shared while running; the one-time oracle
  /// materialization and the cache commands take it exclusively.
  util::SharedMutex session_rw_{util::LockRank::api_service_session};

  util::Mutex mutex_{util::LockRank::api_service_jobs};
  util::CondVar queue_cv_;  ///< workers wait for work / stop
  util::CondVar done_cv_;   ///< result() waits for terminal states
  // A Job's state/result are guarded by mutex_ too, but through the
  // shared_ptr in jobs_ — a per-field annotation cannot name the guard from
  // inside the nested struct, so the contract is enforced at the access
  // sites: only *_locked helpers and lock-holding scopes touch them.
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_ MIGHTY_GUARDED_BY(mutex_);
  std::deque<std::shared_ptr<Job>> queue_ MIGHTY_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_ MIGHTY_GUARDED_BY(mutex_);
  JobId next_id_ MIGHTY_GUARDED_BY(mutex_) = 1;
  bool stopping_ MIGHTY_GUARDED_BY(mutex_) = false;
  uint64_t submitted_ MIGHTY_GUARDED_BY(mutex_) = 0;
  uint64_t completed_ MIGHTY_GUARDED_BY(mutex_) = 0;
  uint64_t failed_ MIGHTY_GUARDED_BY(mutex_) = 0;
  uint64_t cancelled_ MIGHTY_GUARDED_BY(mutex_) = 0;
  uint64_t running_ MIGHTY_GUARDED_BY(mutex_) = 0;
};

LocalService::LocalService() : LocalService(Params{}) {}

LocalService::LocalService(Params params)
    : impl_(std::make_unique<Impl>(std::move(params))) {}

LocalService::~LocalService() {
  try {
    impl_->shutdown();
  } catch (...) {  // NOLINT(bugprone-empty-catch) destructor must not throw
  }
}

JobId LocalService::submit(const JobRequest& request) { return impl_->submit(request); }
JobStatus LocalService::status(JobId id) { return impl_->status(id); }
JobResult LocalService::result(JobId id) { return impl_->result(id); }
bool LocalService::cancel(JobId id) { return impl_->cancel(id); }
ServiceStats LocalService::stats() { return impl_->stats(); }
void LocalService::shutdown() { impl_->shutdown(); }
CacheInfo LocalService::cache_load(const std::string& path) {
  return impl_->cache_load(path);
}
size_t LocalService::cache_save(const std::string& path) {
  return impl_->cache_save(path);
}
CacheInfo LocalService::cache_stats() { return impl_->cache_stats(); }
flow::Session& LocalService::session() { return impl_->session_; }

}  // namespace mighty::api
