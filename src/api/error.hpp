#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

/// \file error.hpp
/// \brief Stable error taxonomy for the public job API and the wire protocol.
///
/// Every failure a client can observe — through the in-process
/// api::LocalService, the mighty-serve daemon, or the shell — carries one of
/// these codes.  The numeric values are part of the wire protocol
/// (docs/protocol.md) and must never be renumbered; new codes append.
///
/// Exceptions carry codes through the CodedError mixin: api::Error for
/// runtime failures (I/O, malformed networks, exhausted budgets) and
/// api::ScriptError for flow-script parse errors (which historically — and
/// contractually, for existing callers — derive from std::invalid_argument).
/// classify() maps any exception to its code, so catch sites report
/// machine-readable errors without string matching.

namespace mighty::api {

enum class ErrorCode : uint32_t {
  ok = 0,

  // --- request validation -----------------------------------------------------
  invalid_script = 1,   ///< flow script does not parse
  invalid_network = 2,  ///< network (BLIF) does not parse or is unsupported
  invalid_request = 3,  ///< structurally valid pieces, but an unusable request
  job_not_found = 4,    ///< no job with the given id

  // --- job lifecycle ----------------------------------------------------------
  cancelled = 5,                 ///< job cancelled by the client
  node_budget_exceeded = 6,      ///< an intermediate network outgrew the cap
  wall_budget_exceeded = 7,      ///< the job ran past its wall-clock budget
  conflict_budget_exceeded = 8,  ///< the job spent its SAT-conflict allowance
  shutting_down = 9,             ///< service no longer accepts work

  // --- environment ------------------------------------------------------------
  io_error = 10,      ///< file or socket I/O failed
  check_failed = 11,  ///< invariant validation rejected a network
  unsupported = 12,   ///< operation not available on this service

  // --- protocol ---------------------------------------------------------------
  version_mismatch = 13,  ///< HELLO version differs from the server's
  malformed_frame = 14,   ///< payload bytes do not decode as the tagged message
  oversized_frame = 15,   ///< declared frame length exceeds the protocol cap
  unknown_message = 16,   ///< frame tag the server does not recognize
  connection_lost = 17,   ///< peer vanished mid-conversation

  internal = 18,  ///< anything that escaped the taxonomy (a bug to classify)
};

/// Stable lowercase identifier ("invalid_script", ...) for logs, the shell
/// and test assertions; "?" for values outside the enum.
const char* error_code_name(ErrorCode code);

/// Mixin for exceptions that carry an ErrorCode.  A mixin rather than a
/// single base class because the script parser's exceptions must stay
/// std::invalid_argument (the documented contract of Pipeline::parse) while
/// runtime failures stay std::runtime_error — both worlds get codes without
/// breaking an existing catch site.
class CodedError {
 public:
  CodedError() = default;
  CodedError(const CodedError&) = default;
  CodedError& operator=(const CodedError&) = default;
  virtual ~CodedError() = default;
  virtual ErrorCode code() const = 0;
};

/// A runtime failure with a stable code.  Derives from std::runtime_error, so
/// every pre-taxonomy catch site keeps working.
class Error : public std::runtime_error, public CodedError {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const override { return code_; }

 private:
  ErrorCode code_;
};

/// A flow-script parse failure: still a std::invalid_argument (callers and
/// tests rely on that), now carrying ErrorCode::invalid_script.
class ScriptError : public std::invalid_argument, public CodedError {
 public:
  explicit ScriptError(const std::string& what) : std::invalid_argument(what) {}
  ErrorCode code() const override { return ErrorCode::invalid_script; }
};

/// Maps any exception to its ErrorCode: coded exceptions report their own
/// code; bare std::invalid_argument means a rejected argument
/// (invalid_request); std::logic_error is the invariant checker's voice
/// (check_failed); everything else is internal.
ErrorCode classify(const std::exception& e);

}  // namespace mighty::api
