#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "api/error.hpp"
#include "flow/pass.hpp"
#include "flow/session.hpp"

/// \file api.hpp
/// \brief The public job API: one facade over Session/Pipeline for every
/// front end.
///
/// The entry points that grew organically — Pipeline::run for one network,
/// BatchRunner for a corpus, the shell's ad-hoc driver calls — are unified
/// behind Service: a client describes work as a JobRequest (network + flow
/// script + resource budgets), gets back a JobId, and polls or blocks for a
/// JobResult (optimized network + FlowReport + stable ErrorCode).  Two
/// implementations share the contract:
///
///   - api::LocalService — in-process, owns the flow::Session.  The shell
///     and the examples run through this.
///   - serve::RemoteService — the same calls over a unix socket to a
///     mighty-serve daemon (serve/client.hpp), so "local or remote" is a
///     connection choice, not a code path.
///
/// Results are deterministic: the same JobRequest produces a bit-identical
/// optimized BLIF whether it ran in-process or through the daemon (the
/// serve_test e2e asserts exactly this).

namespace mighty::api {

using JobId = uint64_t;

enum class JobState : uint8_t {
  queued = 0,
  running = 1,
  done = 2,       ///< terminal: result.code == ok
  failed = 3,     ///< terminal: result.code names the failure
  cancelled = 4,  ///< terminal: stopped by cancel() or shutdown
};

const char* job_state_name(JobState state);
inline bool is_terminal(JobState state) {
  return state == JobState::done || state == JobState::failed ||
         state == JobState::cancelled;
}

/// One unit of work: a network, a flow script, and optional resource caps.
/// Budgets are enforced at pass boundaries (flow::RunControl), so overshoot
/// is bounded by a single pass.
struct JobRequest {
  std::string name;          ///< client-side label (reporting only)
  std::string script;        ///< flow script, e.g. "TF5; (BFD; size)*; map"
  std::string network_blif;  ///< input network in BLIF text form

  uint32_t node_budget = 0;         ///< max live gates mid-flow; 0 = uncapped
  uint64_t conflict_budget = 0;     ///< total SAT-conflict allowance; 0 = uncapped
  double wall_budget_seconds = 0;   ///< wall-clock cap; <= 0 = uncapped
};

struct JobStatus {
  JobState state = JobState::queued;
};

/// Terminal outcome of a job.  `code == ok` means `network_blif` holds the
/// optimized network and `report` its trajectory; otherwise `message`
/// explains the failure and the artifacts are empty (a partial trajectory
/// may remain in `report` for budget failures).
struct JobResult {
  ErrorCode code = ErrorCode::ok;
  std::string message;
  std::string network_blif;  ///< optimized network (BLIF) when code == ok
  flow::FlowReport report;
};

/// Counters a STATS call reports; session-level, not per-job.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;  ///< terminal with code == ok
  uint64_t failed = 0;
  uint64_t cancelled = 0;
  uint64_t queued = 0;   ///< currently waiting
  uint64_t running = 0;  ///< currently executing

  /// Shared-oracle counters (zero until some job materializes the oracle).
  uint64_t oracle_queries = 0;
  uint64_t oracle_cache5_hits = 0;
  uint64_t oracle_synthesized = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_dirty = 0;

  uint32_t threads = 0;      ///< session parallelism (shards within a job)
  uint32_t job_workers = 0;  ///< concurrent jobs
};

/// Outcome of a cache_load / snapshot of cache_stats.
struct CacheInfo {
  size_t entries = 0;  ///< entries in the in-memory 5-input cache
  size_t dirty = 0;    ///< entries not yet persisted
  size_t adopted = 0;  ///< entries a load newly merged (load only)
  /// Load outcome: "loaded", "missing" or "malformed"; empty for stats.
  std::string status;
};

/// The service contract both the in-process implementation and the daemon
/// client fulfill.  All methods are thread-safe.
class Service {
 public:
  virtual ~Service() = default;

  /// Enqueues a job.  Throws ScriptError (invalid_script) when the script
  /// does not parse, Error(invalid_request) when the request is unusable
  /// (e.g. a session-mutating script on a multi-worker service), and
  /// Error(shutting_down) after shutdown().  Network parsing is part of the
  /// job: a malformed BLIF fails the job with invalid_network.
  virtual JobId submit(const JobRequest& request) = 0;

  /// Current state.  Throws Error(job_not_found) for unknown ids.
  virtual JobStatus status(JobId id) = 0;

  /// Blocks until the job is terminal, then returns its result.  Throws
  /// Error(job_not_found) for unknown ids.
  virtual JobResult result(JobId id) = 0;

  /// Requests cancellation.  Returns true when the call had an effect (the
  /// job was queued, or running and now flagged to stop at the next pass
  /// boundary); false when the job was already terminal.  Throws
  /// Error(job_not_found) for unknown ids.
  virtual bool cancel(JobId id) = 0;

  virtual ServiceStats stats() = 0;

  /// Stops accepting work, cancels queued jobs (their results carry
  /// shutting_down), waits for running jobs to finish, and persists the
  /// oracle cache.  Idempotent; every later submit throws shutting_down.
  virtual void shutdown() = 0;

  // --- oracle-cache management (in-process services) ---------------------------
  // The daemon owns its cache lifecycle, so RemoteService throws
  // Error(unsupported) for these three.

  /// Points the session at `path` and merges the file into the oracle.
  virtual CacheInfo cache_load(const std::string& path) = 0;
  /// Persists to `path` (or the current path when empty).  Returns entries
  /// written; 0 when nothing is dirty.
  virtual size_t cache_save(const std::string& path) = 0;
  virtual CacheInfo cache_stats() = 0;
};

/// The in-process implementation: owns one flow::Session and a small job
/// queue on `job_workers` threads.  With the default single worker, jobs
/// run strictly in submission order and session-mutating scripts
/// ("parallel:n", "cache:p") are allowed; with more workers such scripts
/// are rejected at submit (invalid_request) because they would reconfigure
/// the engine under concurrent jobs.
class LocalService final : public Service {
 public:
  struct Params {
    flow::SessionParams session;
    uint32_t job_workers = 1;
  };

  LocalService();  ///< default Params
  explicit LocalService(Params params);
  ~LocalService() override;  ///< shutdown() if the owner has not already

  LocalService(const LocalService&) = delete;
  LocalService& operator=(const LocalService&) = delete;

  JobId submit(const JobRequest& request) override;
  JobStatus status(JobId id) override;
  JobResult result(JobId id) override;
  bool cancel(JobId id) override;
  ServiceStats stats() override;
  void shutdown() override;

  CacheInfo cache_load(const std::string& path) override;
  size_t cache_save(const std::string& path) override;
  CacheInfo cache_stats() override;

  /// The underlying session, for owners that need direct access (the
  /// daemon warms the oracle at boot; tests inspect counters).  Do not run
  /// pipelines on it while jobs are in flight.
  flow::Session& session();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mighty::api
