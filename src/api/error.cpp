#include "api/error.hpp"

namespace mighty::api {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::ok: return "ok";
    case ErrorCode::invalid_script: return "invalid_script";
    case ErrorCode::invalid_network: return "invalid_network";
    case ErrorCode::invalid_request: return "invalid_request";
    case ErrorCode::job_not_found: return "job_not_found";
    case ErrorCode::cancelled: return "cancelled";
    case ErrorCode::node_budget_exceeded: return "node_budget_exceeded";
    case ErrorCode::wall_budget_exceeded: return "wall_budget_exceeded";
    case ErrorCode::conflict_budget_exceeded: return "conflict_budget_exceeded";
    case ErrorCode::shutting_down: return "shutting_down";
    case ErrorCode::io_error: return "io_error";
    case ErrorCode::check_failed: return "check_failed";
    case ErrorCode::unsupported: return "unsupported";
    case ErrorCode::version_mismatch: return "version_mismatch";
    case ErrorCode::malformed_frame: return "malformed_frame";
    case ErrorCode::oversized_frame: return "oversized_frame";
    case ErrorCode::unknown_message: return "unknown_message";
    case ErrorCode::connection_lost: return "connection_lost";
    case ErrorCode::internal: return "internal";
  }
  return "?";
}

ErrorCode classify(const std::exception& e) {
  if (const auto* coded = dynamic_cast<const CodedError*>(&e)) {
    return coded->code();
  }
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return ErrorCode::invalid_request;
  }
  // The between-pass invariant checker and the "check" pass throw
  // std::logic_error naming the offending pass.
  if (dynamic_cast<const std::logic_error*>(&e) != nullptr) {
    return ErrorCode::check_failed;
  }
  return ErrorCode::internal;
}

}  // namespace mighty::api
