#include "tt/truth_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace mighty::tt {

TruthTable TruthTable::swap_vars(uint32_t a, uint32_t b) const {
  MIGHTY_ASSERT(a < num_vars_ && b < num_vars_);
  if (a == b) return *this;
  TruthTable result(num_vars_);
  for (uint32_t m = 0; m < num_bits(); ++m) {
    uint32_t src = m;
    const bool bit_a = (m >> a) & 1;
    const bool bit_b = (m >> b) & 1;
    src &= ~((1u << a) | (1u << b));
    src |= (uint32_t{bit_b} << a) | (uint32_t{bit_a} << b);
    result.set_bit(m, get_bit(src));
  }
  return result;
}

TruthTable TruthTable::permute(const std::array<uint8_t, max_vars>& perm) const {
  TruthTable result(num_vars_);
  for (uint32_t m = 0; m < num_bits(); ++m) {
    // Variable i of the original function reads result-variable perm[i].
    uint32_t src = 0;
    for (uint32_t v = 0; v < num_vars_; ++v) {
      if ((m >> perm[v]) & 1) src |= 1u << v;
    }
    result.set_bit(m, get_bit(src));
  }
  return result;
}

TruthTable TruthTable::extend(uint32_t new_num_vars) const {
  MIGHTY_ASSERT(new_num_vars >= num_vars_ && new_num_vars <= max_vars);
  uint64_t b = bits_;
  for (uint32_t v = num_vars_; v < new_num_vars; ++v) {
    b |= b << (1u << v);
  }
  return TruthTable(new_num_vars, b);
}

TruthTable TruthTable::shrink_to_support(std::vector<uint32_t>& old_vars) const {
  old_vars.clear();
  for (uint32_t v = 0; v < num_vars_; ++v) {
    if (depends_on(v)) old_vars.push_back(v);
  }
  const auto k = static_cast<uint32_t>(old_vars.size());
  TruthTable result(k);
  for (uint32_t m = 0; m < result.num_bits(); ++m) {
    uint32_t src = 0;
    for (uint32_t v = 0; v < k; ++v) {
      if ((m >> v) & 1) src |= 1u << old_vars[v];
    }
    result.set_bit(m, get_bit(src));
  }
  return result;
}

std::string TruthTable::to_hex() const {
  const uint32_t nibbles = std::max(1u, num_bits() / 4);
  std::string out(nibbles, '0');
  for (uint32_t i = 0; i < nibbles; ++i) {
    const auto nib = static_cast<uint32_t>((bits_ >> (4 * (nibbles - 1 - i))) & 0xf);
    out[i] = "0123456789abcdef"[nib];
  }
  return out;
}

std::string TruthTable::to_binary() const {
  std::string out(num_bits(), '0');
  for (uint32_t i = 0; i < num_bits(); ++i) {
    out[i] = get_bit(num_bits() - 1 - i) ? '1' : '0';
  }
  return out;
}

TruthTable TruthTable::from_hex(uint32_t num_vars, const std::string& hex) {
  uint64_t bits = 0;
  for (char c : hex) {
    uint64_t nib = 0;
    if (c >= '0' && c <= '9') {
      nib = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nib = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nib = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("invalid hex digit in truth table literal");
    }
    bits = (bits << 4) | nib;
  }
  return TruthTable(num_vars, bits);
}

}  // namespace mighty::tt
