#pragma once

#include <array>
#include "util/assert.hpp"
#include <cstdint>
#include <string>
#include <vector>

/// \file truth_table.hpp
/// \brief Truth tables over up to six variables, packed into one 64-bit word.
///
/// This is the basic functional-representation substrate of the library.  All
/// cut functions handled by the functional-hashing optimizer have at most four
/// variables; six are supported so that the LUT mapper and the cut enumerator
/// can share the same type (the paper notes exhaustive cut enumeration is
/// feasible for k <= 6).

namespace mighty::tt {

/// A Boolean function of `num_vars` variables (0 <= num_vars <= 6) stored as a
/// bit string: bit `i` is the function value under the assignment whose j-th
/// variable equals the j-th bit of `i`.
class TruthTable {
public:
  static constexpr uint32_t max_vars = 6;

  /// Constructs the constant-zero function over zero variables.
  constexpr TruthTable() = default;

  /// Constructs a table over `num_vars` variables from raw bits; bits beyond
  /// the table length are discarded.
  constexpr explicit TruthTable(uint32_t num_vars, uint64_t bits = 0)
      : bits_(bits & length_mask(num_vars)), num_vars_(num_vars) {
    MIGHTY_ASSERT(num_vars <= max_vars);
  }

  /// The constant-`value` function over `num_vars` variables.
  static constexpr TruthTable constant(uint32_t num_vars, bool value) {
    return TruthTable(num_vars, value ? ~uint64_t{0} : 0);
  }

  /// The (possibly complemented) projection x_var over `num_vars` variables.
  static constexpr TruthTable projection(uint32_t num_vars, uint32_t var,
                                         bool complemented = false) {
    MIGHTY_ASSERT(var < num_vars);
    return TruthTable(num_vars, complemented ? ~var_mask(var) : var_mask(var));
  }

  /// The ternary majority of three equally sized tables.
  static constexpr TruthTable maj(const TruthTable& a, const TruthTable& b,
                                  const TruthTable& c) {
    MIGHTY_ASSERT(a.num_vars_ == b.num_vars_ && b.num_vars_ == c.num_vars_);
    return TruthTable(a.num_vars_,
                      (a.bits_ & b.bits_) | (a.bits_ & c.bits_) | (b.bits_ & c.bits_));
  }

  /// If-then-else: sel ? t : e.
  static constexpr TruthTable ite(const TruthTable& sel, const TruthTable& t,
                                  const TruthTable& e) {
    MIGHTY_ASSERT(sel.num_vars_ == t.num_vars_ && t.num_vars_ == e.num_vars_);
    return TruthTable(sel.num_vars_, (sel.bits_ & t.bits_) | (~sel.bits_ & e.bits_));
  }

  constexpr uint32_t num_vars() const { return num_vars_; }
  constexpr uint64_t bits() const { return bits_; }
  constexpr uint32_t num_bits() const { return 1u << num_vars_; }

  constexpr bool get_bit(uint32_t index) const {
    MIGHTY_ASSERT(index < num_bits());
    return (bits_ >> index) & 1;
  }
  constexpr void set_bit(uint32_t index, bool value) {
    MIGHTY_ASSERT(index < num_bits());
    bits_ = (bits_ & ~(uint64_t{1} << index)) | (uint64_t{value} << index);
  }

  constexpr TruthTable operator~() const {
    return TruthTable(num_vars_, ~bits_);
  }
  constexpr TruthTable operator&(const TruthTable& other) const {
    MIGHTY_ASSERT(num_vars_ == other.num_vars_);
    return TruthTable(num_vars_, bits_ & other.bits_);
  }
  constexpr TruthTable operator|(const TruthTable& other) const {
    MIGHTY_ASSERT(num_vars_ == other.num_vars_);
    return TruthTable(num_vars_, bits_ | other.bits_);
  }
  constexpr TruthTable operator^(const TruthTable& other) const {
    MIGHTY_ASSERT(num_vars_ == other.num_vars_);
    return TruthTable(num_vars_, bits_ ^ other.bits_);
  }
  constexpr bool operator==(const TruthTable& other) const {
    return num_vars_ == other.num_vars_ && bits_ == other.bits_;
  }
  constexpr bool operator!=(const TruthTable& other) const { return !(*this == other); }
  /// Numeric order on equally sized tables; used to pick NPN representatives
  /// ("the function with the smallest truth table", paper Sec. II-D).
  constexpr bool operator<(const TruthTable& other) const {
    MIGHTY_ASSERT(num_vars_ == other.num_vars_);
    return bits_ < other.bits_;
  }

  constexpr bool is_const0() const { return bits_ == 0; }
  constexpr bool is_const1() const { return bits_ == length_mask(num_vars_); }

  constexpr uint32_t count_ones() const { return __builtin_popcountll(bits_); }

  /// Complemented-or-plain complement handling: returns the table with the
  /// given output polarity (polarity false complements).
  constexpr TruthTable with_polarity(bool polarity) const {
    return polarity ? *this : ~*this;
  }

  /// Positive/negative cofactor w.r.t. variable `var`.  The result keeps the
  /// same variable count (the cofactored variable becomes irrelevant).
  constexpr TruthTable cofactor(uint32_t var, bool value) const {
    MIGHTY_ASSERT(var < num_vars_);
    const uint64_t m = var_mask(var);
    const uint32_t shift = 1u << var;
    uint64_t half = value ? (bits_ & m) : (bits_ & ~m);
    uint64_t b = value ? (half | (half >> shift)) : (half | (half << shift));
    return TruthTable(num_vars_, b);
  }

  /// True iff the function value depends on variable `var`.
  constexpr bool depends_on(uint32_t var) const {
    return cofactor(var, false) != cofactor(var, true);
  }

  /// Bitmask of the functional support: bit i set iff the function depends on
  /// variable i.
  constexpr uint32_t support_mask() const {
    uint32_t mask = 0;
    for (uint32_t v = 0; v < num_vars_; ++v) {
      if (depends_on(v)) mask |= 1u << v;
    }
    return mask;
  }
  constexpr uint32_t support_size() const { return __builtin_popcount(support_mask()); }

  /// Complements input variable `var` (x_var -> !x_var).
  constexpr TruthTable flip(uint32_t var) const {
    MIGHTY_ASSERT(var < num_vars_);
    const uint64_t m = var_mask(var);
    const uint32_t shift = 1u << var;
    return TruthTable(num_vars_, ((bits_ & m) >> shift) | ((bits_ & ~m) << shift));
  }

  /// Exchanges input variables `a` and `b`.
  TruthTable swap_vars(uint32_t a, uint32_t b) const;

  /// Applies a full input permutation: in the result, variable `perm[i]`
  /// plays the role of original variable `i`; i.e.
  /// result(x_0..x_{n-1}) = f(x_{perm[0]}, ..., x_{perm[n-1]}).
  TruthTable permute(const std::array<uint8_t, max_vars>& perm) const;

  /// Re-expresses the function over `new_num_vars >= num_vars()` variables
  /// (added variables are irrelevant).
  TruthTable extend(uint32_t new_num_vars) const;

  /// Compacts the function onto its support.  Returns the reduced table and
  /// fills `old_vars` with, for each new variable index, the original
  /// variable index it came from.
  TruthTable shrink_to_support(std::vector<uint32_t>& old_vars) const;

  /// Hexadecimal string, most significant nibble first (kitty convention).
  std::string to_hex() const;
  /// Binary string, bit (2^n - 1) first.
  std::string to_binary() const;
  /// Parses a hex string for a table over `num_vars` variables.
  static TruthTable from_hex(uint32_t num_vars, const std::string& hex);

  /// Mask with the low 2^num_vars bits set.
  static constexpr uint64_t length_mask(uint32_t num_vars) {
    return num_vars == max_vars ? ~uint64_t{0}
                                : (uint64_t{1} << (uint64_t{1} << num_vars)) - 1;
  }

  /// The canonical bit pattern of projection variable `var` over 6 variables.
  static constexpr uint64_t var_mask(uint32_t var) {
    constexpr std::array<uint64_t, max_vars> masks = {
        0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
        0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};
    return masks[var];
  }

private:
  uint64_t bits_ = 0;
  uint32_t num_vars_ = 0;
};

/// Evaluates the function on a single assignment given as a bitmask.
constexpr bool evaluate(const TruthTable& f, uint32_t assignment) {
  return f.get_bit(assignment);
}

}  // namespace mighty::tt
