// Fuzz target: the mighty-serve wire protocol (serve/protocol.hpp).
//
// Three properties over arbitrary byte streams:
//
//   1. FrameDecoder is chunking-independent: feeding the stream whole or in
//      3-byte slices yields the same frames (or the same oversized_frame
//      rejection at the same point).  The daemon sees arbitrary TCP-style
//      fragmentation, so framing must not depend on read() boundaries.
//   2. The decoder's only throw is api::Error(oversized_frame), raised from
//      the header alone; truncated input is "wait for more", never a crash.
//   3. Every message decoder either throws api::Error(malformed_frame) or
//      produces a value whose encoding is a fixpoint: encode(decode(p))
//      re-decodes to the identical bytes.  (Plain round-trip equality is too
//      strong: decoders normalize, e.g. an out-of-range error code clamps to
//      `internal`.)

#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/error.hpp"
#include "driver.hpp"
#include "serve/protocol.hpp"

using namespace mighty;

namespace {

struct DecodeOutcome {
  std::vector<serve::Frame> frames;
  bool oversized = false;
};

DecodeOutcome decode_all(const uint8_t* data, size_t size, size_t chunk) {
  DecodeOutcome out;
  serve::FrameDecoder decoder;
  size_t pos = 0;
  try {
    while (pos < size) {
      const size_t n = size - pos < chunk ? size - pos : chunk;
      decoder.feed(data + pos, n);
      pos += n;
      while (auto frame = decoder.next()) out.frames.push_back(std::move(*frame));
    }
  } catch (const api::Error& e) {
    FUZZ_REQUIRE(e.code() == api::ErrorCode::oversized_frame);
    out.oversized = true;
  }
  return out;
}

/// Applies one decode/encode pair to `payload`; requires malformed_frame on
/// rejection and an encoding fixpoint on success.
template <typename Decode, typename Encode>
void check_codec(const std::vector<uint8_t>& payload, Decode decode, Encode encode) {
  std::vector<uint8_t> once;
  try {
    once = encode(decode(payload));
  } catch (const api::Error& e) {
    FUZZ_REQUIRE(e.code() == api::ErrorCode::malformed_frame);
    return;
  }
  // A value the codec itself produced must decode cleanly and re-encode to
  // the same bytes — normalization happens at most once.
  const std::vector<uint8_t> twice = encode(decode(once));
  FUZZ_REQUIRE(once == twice);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 16)) return 0;

  const DecodeOutcome whole = decode_all(data, size, size == 0 ? 1 : size);
  const DecodeOutcome split = decode_all(data, size, 3);
  FUZZ_REQUIRE(whole.oversized == split.oversized);
  FUZZ_REQUIRE(whole.frames.size() == split.frames.size());
  for (size_t i = 0; i < whole.frames.size(); ++i) {
    FUZZ_REQUIRE(whole.frames[i].tag == split.frames[i].tag);
    FUZZ_REQUIRE(whole.frames[i].payload == split.frames[i].payload);
  }

  for (const auto& frame : whole.frames) {
    const auto& p = frame.payload;
    check_codec(p, serve::decode_hello, serve::encode_hello);
    check_codec(p, serve::decode_submit, serve::encode_submit);
    check_codec(p, serve::decode_job_id, serve::encode_job_id);
    check_codec(p, serve::decode_status_ok, serve::encode_status_ok);
    check_codec(p, serve::decode_result_ok, serve::encode_result_ok);
    check_codec(p, serve::decode_cancel_ok, serve::encode_cancel_ok);
    check_codec(p, serve::decode_stats_ok, serve::encode_stats_ok);
    check_codec(p, serve::decode_error, [](const api::Error& e) {
      return serve::encode_error(e.code(), e.what());
    });
  }
  return 0;
}
