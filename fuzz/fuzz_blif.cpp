// Fuzz target: the BLIF reader (src/io/blif.cpp), the widest untrusted
// input surface of the library.  Differential properties on every accepted
// input:
//   1. the parsed network passes the full structural validation
//      (check::validate — a reader must never construct a malformed MIG);
//   2. write_blif -> read_blif round-trips: the re-read network parses,
//      matches PI/PO counts, and is semantically equivalent (simulation
//      check; a mismatch is a definite bug in the reader or writer).
// Rejected inputs must be rejected by exception, never by crash.

#include <sstream>
#include <stdexcept>
#include <string>

#include "cec/cec.hpp"
#include "check/check.hpp"
#include "driver.hpp"
#include "io/io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 16)) return 0;  // keep single inputs cheap
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream is(text);
  mighty::mig::Mig parsed;
  try {
    parsed = mighty::io::read_blif(is);
  } catch (const std::runtime_error&) {
    return 0;  // clean rejection is the contract for malformed input
  }

  FUZZ_REQUIRE(mighty::check::validate(parsed).ok());

  std::ostringstream os;
  mighty::io::write_blif(os, parsed, "fuzz");
  std::istringstream round(os.str());
  mighty::mig::Mig reread;
  try {
    reread = mighty::io::read_blif(round);
  } catch (const std::runtime_error&) {
    FUZZ_REQUIRE(!"write_blif output must re-read");
  }
  FUZZ_REQUIRE(reread.num_pis() == parsed.num_pis());
  FUZZ_REQUIRE(reread.num_pos() == parsed.num_pos());
  FUZZ_REQUIRE(mighty::check::validate(reread).ok());
  // Simulation-based equivalence: sound for "different", fast enough to run
  // on every input (a SAT proof of equivalence would dominate the fuzz
  // budget without sharpening the property).
  FUZZ_REQUIRE(mighty::cec::random_simulation_equal(parsed, reread, 8, 0x5eed));
  return 0;
}
