// Fuzz target: the flow-script parser (src/flow/parse.cpp).  Differential
// property on every accepted script: the canonical form to_script() must
// itself parse, and be a fixed point — parse(to_script(p)).to_script() ==
// p.to_script().  That round trip is what flow deduplication, reporting and
// autotune reproduction rely on (see pipeline.hpp).  Rejected scripts must
// be rejected with std::invalid_argument, never by crash.

#include <stdexcept>
#include <string>

#include "driver.hpp"
#include "flow/pipeline.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 12)) return 0;  // scripts are short; huge ones only cost time
  const std::string text(reinterpret_cast<const char*>(data), size);
  mighty::flow::Pipeline pipeline;
  try {
    pipeline = mighty::flow::Pipeline::parse(text);
  } catch (const std::invalid_argument&) {
    return 0;  // clean rejection is the contract for malformed scripts
  }

  const std::string script = pipeline.to_script();
  mighty::flow::Pipeline reparsed;
  try {
    reparsed = mighty::flow::Pipeline::parse(script);
  } catch (const std::invalid_argument&) {
    FUZZ_REQUIRE(!"canonical script form must re-parse");
  }
  FUZZ_REQUIRE(reparsed.to_script() == script);
  FUZZ_REQUIRE(reparsed.num_passes() == pipeline.num_passes());
  return 0;
}
