#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>

/// \file driver.hpp
/// \brief Dual-mode entry point for the fuzz harnesses.
///
/// Every harness defines LLVMFuzzerTestOneInput and nothing else.  Under
/// Clang with -fsanitize=fuzzer the symbol is picked up by libFuzzer for
/// coverage-guided exploration (the CI fuzz-smoke leg).  Under any other
/// toolchain the build defines MIGHTY_FUZZ_STANDALONE, and this header
/// provides a main() that replays corpus files or directories passed as
/// arguments through the same entry point — so the checked-in seed corpora
/// run as plain ctest cases on every build, compiler support or not.
///
/// A violated differential property aborts via FUZZ_REQUIRE: both libFuzzer
/// and ctest treat the abort as a crash, and the message names the property.

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#define FUZZ_REQUIRE(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "fuzz property failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                 \
      __builtin_trap();                                                 \
    }                                                                   \
  } while (0)

#if defined(MIGHTY_FUZZ_STANDALONE)

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  size_t replayed = 0;
  auto run_file = [&](const fs::path& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
      std::exit(1);
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  };
  for (int i = 1; i < argc; ++i) {
    const fs::path path(argv[i]);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      // Sorted for a deterministic replay order (directory_iterator's is not).
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) run_file(file);
    } else {
      run_file(path);
    }
  }
  std::printf("replayed %zu input%s\n", replayed, replayed == 1 ? "" : "s");
  return 0;
}

#endif  // MIGHTY_FUZZ_STANDALONE
