// Fuzz target: the persistent 5-input oracle cache loader
// (ReplacementOracle::load_cache, src/opt/oracle.cpp).  The loader promises
// wholesale validation — a malformed file is rejected without touching the
// in-memory cache — so the property here is that the answer is always
// `loaded` or `malformed` (a stream is never `missing`), that a loaded
// stream reports entries >= adopted, and that loading never crashes.  The
// oracle sits on an empty database: the loader path never consults it.

#include <sstream>
#include <string>

#include "driver.hpp"
#include "exact/database.hpp"
#include "opt/oracle.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);

  const mighty::exact::Database empty_db;
  mighty::opt::OracleParams params;
  params.enable_five_input = true;
  mighty::opt::ReplacementOracle oracle(empty_db, params);

  std::istringstream is(text);
  const auto result = oracle.load_cache(is);
  using Status = mighty::opt::ReplacementOracle::CacheLoadStatus;
  FUZZ_REQUIRE(result.status != Status::missing);
  FUZZ_REQUIRE(result.adopted <= result.entries);
  if (result.status == Status::loaded) {
    // Into a fresh oracle, every parsed entry must have been adopted, and
    // the cache must hold exactly those entries.
    FUZZ_REQUIRE(result.adopted == result.entries);
    FUZZ_REQUIRE(oracle.cache_stats().entries == result.entries);
  } else {
    // Rejection is wholesale: nothing may leak into the cache.
    FUZZ_REQUIRE(oracle.cache_stats().entries == 0);
  }
  return 0;
}
