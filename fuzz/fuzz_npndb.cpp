// Fuzz target: the NPN-4 database loader (Database::load,
// src/exact/database.cpp).  A malformed stream must yield std::nullopt,
// never a crash.  On every accepted stream the loader has already verified
// that each chain realizes its representative; the properties here exercise
// what sits on top of the parsed data: every chain's text serialization
// round-trips, and the size histogram accounts for every entry.

#include <sstream>
#include <string>

#include "driver.hpp"
#include "exact/chain.hpp"
#include "exact/database.hpp"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream is(text);
  const auto db = mighty::exact::Database::load(is);
  if (!db) return 0;  // clean rejection is the contract for malformed input

  uint64_t histogram_total = 0;
  for (const uint32_t bucket : db->size_histogram()) histogram_total += bucket;
  FUZZ_REQUIRE(histogram_total == db->num_entries());

  for (const auto& entry : db->entries()) {
    const auto reparsed =
        mighty::exact::MigChain::from_string(entry.chain.to_string());
    FUZZ_REQUIRE(reparsed == entry.chain);
    FUZZ_REQUIRE(reparsed.simulate() == entry.representative);
  }
  return 0;
}
