// End-to-end arithmetic optimization: generate a multiplier, produce the
// depth-optimized baseline, run every functional-hashing variant, and map the
// results onto 6-LUTs -- the full pipeline behind Tables III and IV.
//
//   $ ./build/examples/optimize_arithmetic          # 16x16 multiplier
//   $ ./build/examples/optimize_arithmetic 24       # 24x24

#include <cstdio>
#include <string>

#include "cec/cec.hpp"
#include "exact/database.hpp"
#include "gen/arith.hpp"
#include "map/lut_mapper.hpp"
#include "mig/algebra/algebra.hpp"
#include "opt/rewrite.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const uint32_t bits = argc > 1 ? static_cast<uint32_t>(std::stoul(argv[1])) : 16;
  printf("generating %ux%u multiplier...\n", bits, bits);
  const auto original = gen::make_multiplier_n(bits);
  printf("  raw        : %6u gates, depth %3u\n", original.count_live_gates(),
         original.depth());

  algebra::AlgebraStats astats;
  const auto baseline = algebra::depth_optimize(original, {}, &astats);
  printf("  depth-opt  : %6u gates, depth %3u (associativity %u, "
         "distributivity %u moves)\n",
         astats.size_after, astats.depth_after, astats.applied_associativity,
         astats.applied_distributivity);

  const auto db = exact::Database::load_or_build(exact::default_database_path());
  const auto base_map = map::map_luts(baseline);
  printf("  mapping    : %6u LUT6, depth %3u\n\n", base_map.num_luts, base_map.depth);

  printf("%-6s | %8s %5s %7s | %8s %5s | %s\n", "variant", "gates", "depth", "time",
         "LUT6", "depth", "equivalent");
  for (const auto& variant : opt::all_variants()) {
    opt::RewriteStats stats;
    const auto optimized =
        opt::functional_hashing(baseline, db, opt::variant_params(variant), &stats);
    const auto mapped = map::map_luts(optimized);
    const bool equal = cec::random_simulation_equal(baseline, optimized, 16, 7);
    printf("%-6s | %8u %5u %6.2fs | %8u %5u | %s\n", variant.c_str(), stats.size_after,
           stats.depth_after, stats.seconds, mapped.num_luts, mapped.depth,
           equal ? "yes (64x16 random patterns)" : "NO");
  }
  return 0;
}
