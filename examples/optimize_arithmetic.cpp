// End-to-end arithmetic optimization: generate a multiplier, produce the
// depth-optimized baseline, run every functional-hashing variant as a
// "<variant>; map" flow, and compare the mapped results -- the full pipeline
// behind Tables III and IV, one flow::Session for the whole run.
//
//   $ ./build/examples/optimize_arithmetic          # 16x16 multiplier
//   $ ./build/examples/optimize_arithmetic 24       # 24x24

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cec/cec.hpp"
#include "flow/flow.hpp"
#include "gen/arith.hpp"

using namespace mighty;

namespace {

/// Parses the width argument; `std::stoul` alone would abort the example
/// with an unhandled exception on "abc" or "999999999999".
bool parse_width(const char* text, uint32_t& bits) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value < 2 || value > 64) return false;
  bits = static_cast<uint32_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t bits = 16;
  if (argc > 1 && !parse_width(argv[1], bits)) {
    fprintf(stderr, "usage: %s [bits]   (multiplier width, 2..64; default 16)\n",
            argv[0]);
    return 1;
  }
  printf("generating %ux%u multiplier...\n", bits, bits);
  const auto original = gen::make_multiplier_n(bits);
  printf("  raw        : %6u gates, depth %3u\n", original.count_live_gates(),
         original.depth());

  flow::Session session;
  session.database();  // load (or build) outside the timed region
  flow::FlowReport base_report;
  const auto baseline = flow::Pipeline().depth_opt().lut_map().run(
      original, session, &base_report);
  printf("  depth-opt  : %6u gates, depth %3u\n", base_report.size_after,
         base_report.depth_after);
  const auto* base_map = base_report.last_mapping();
  printf("  mapping    : %6u LUT6, depth %3u\n\n", base_map->num_luts,
         base_map->lut_depth);

  printf("%-6s | %8s %5s %7s | %8s %5s | %s\n", "variant", "gates", "depth", "time",
         "LUT6", "depth", "equivalent");
  for (const auto& variant : opt::all_variants()) {
    flow::FlowReport report;
    const auto optimized = flow::Pipeline::parse(variant + "; map")
                               .run(baseline, session, &report);
    const auto* mapped = report.last_mapping();
    const bool equal = cec::random_simulation_equal(baseline, optimized, 16, 7);
    printf("%-6s | %8u %5u %6.2fs | %8u %5u | %s\n", variant.c_str(),
           report.size_after, report.depth_after, report.seconds, mapped->num_luts,
           mapped->lut_depth, equal ? "yes (64x16 random patterns)" : "NO");
  }
  return 0;
}
