// End-to-end arithmetic optimization: generate a multiplier, produce the
// depth-optimized baseline, run every functional-hashing variant as a
// "<variant>; map" job, and compare the mapped results -- the full pipeline
// behind Tables III and IV, one api::LocalService (and therefore one warm
// flow::Session) for the whole run.  Each experiment is a JobRequest, so the
// identical program could target a mighty-serve daemon instead.
//
//   $ ./build/examples/optimize_arithmetic          # 16x16 multiplier
//   $ ./build/examples/optimize_arithmetic 24       # 24x24

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "api/api.hpp"
#include "cec/cec.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "opt/rewrite.hpp"

using namespace mighty;

namespace {

/// Parses the width argument; `std::stoul` alone would abort the example
/// with an unhandled exception on "abc" or "999999999999".
bool parse_width(const char* text, uint32_t& bits) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value < 2 || value > 64) return false;
  bits = static_cast<uint32_t>(value);
  return true;
}

std::string to_blif(const mig::Mig& mig) {
  std::ostringstream os;
  io::write_blif(os, mig);
  return os.str();
}

/// Submits one script over `blif` and blocks for the outcome.  Exits the
/// example on failure: every job here is expected to succeed, and a stable
/// ErrorCode plus message is exactly what a user should see when one does
/// not (e.g. a malformed width pushed the wall budget).
api::JobResult run_or_die(api::Service& service, const std::string& name,
                          const std::string& script, const std::string& blif) {
  api::JobRequest request;
  request.name = name;
  request.script = script;
  request.network_blif = blif;
  api::JobResult result = service.result(service.submit(request));
  if (result.code != api::ErrorCode::ok) {
    fprintf(stderr, "job '%s' failed [%s]: %s\n", name.c_str(),
            api::error_code_name(result.code), result.message.c_str());
    exit(1);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  uint32_t bits = 16;
  if (argc > 1 && !parse_width(argv[1], bits)) {
    fprintf(stderr, "usage: %s [bits]   (multiplier width, 2..64; default 16)\n",
            argv[0]);
    return 1;
  }
  printf("generating %ux%u multiplier...\n", bits, bits);
  const auto original = gen::make_multiplier_n(bits);
  printf("  raw        : %6u gates, depth %3u\n", original.count_live_gates(),
         original.depth());

  api::LocalService service;
  service.session().database();  // load (or build) outside the timed region

  const auto base =
      run_or_die(service, "baseline", "depth; map", to_blif(original));
  printf("  depth-opt  : %6u gates, depth %3u\n", base.report.size_after,
         base.report.depth_after);
  const auto* base_map = base.report.last_mapping();
  printf("  mapping    : %6u LUT6, depth %3u\n\n", base_map->num_luts,
         base_map->lut_depth);

  std::istringstream base_blif(base.network_blif);
  const auto baseline = io::read_blif(base_blif);

  printf("%-6s | %8s %5s %7s | %8s %5s | %s\n", "variant", "gates", "depth", "time",
         "LUT6", "depth", "equivalent");
  for (const auto& variant : opt::all_variants()) {
    const auto result =
        run_or_die(service, variant, variant + "; map", base.network_blif);
    std::istringstream blif(result.network_blif);
    const auto optimized = io::read_blif(blif);
    const auto* mapped = result.report.last_mapping();
    const bool equal = cec::random_simulation_equal(baseline, optimized, 16, 7);
    printf("%-6s | %8u %5u %6.2fs | %8u %5u | %s\n", variant.c_str(),
           result.report.size_after, result.report.depth_after,
           result.report.seconds, mapped->num_luts, mapped->lut_depth,
           equal ? "yes (64x16 random patterns)" : "NO");
  }
  return 0;
}
