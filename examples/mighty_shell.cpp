// An interactive (or scripted) mini-shell over the library, in the spirit of
// ABC / CirKit: load a network, optimize, map, verify, export.
//
//   $ ./build/examples/mighty_shell
//   mighty> gen multiplier 16
//   mighty> flow depth; TF; (BFD; size)*; map
//   mighty> cec
//   mighty> write_blif /tmp/out.blif
//
// Or non-interactively:  echo "gen adder 32; fh TF; ps" | ./build/examples/mighty_shell
//
// Every optimization command is a JobRequest against a mighty::api::Service —
// by default the in-process api::LocalService (one warm flow::Session for the
// shell's lifetime), or, after `connect <socket>`, a mighty-serve daemon over
// the wire.  Local and remote take the identical code path, and the daemon's
// results are bit-identical to in-process runs.

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "cec/cec.hpp"
#include "flow/flow.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "mig/mig.hpp"
#include "serve/client.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

using namespace mighty;

namespace {

std::string to_blif(const mig::Mig& mig) {
  std::ostringstream os;
  io::write_blif(os, mig);
  return os.str();
}

struct Shell {
  std::optional<mig::Mig> current;
  std::optional<mig::Mig> original;  ///< snapshot for cec
  api::LocalService local;
  std::unique_ptr<serve::RemoteService> remote;

  /// Where jobs go: the daemon when connected, the in-process service
  /// otherwise.  Same contract either way.
  api::Service& service() { return remote ? *static_cast<api::Service*>(remote.get()) : local; }
  const char* service_name() const { return remote ? "daemon" : "local"; }

  bool require_network() {
    if (!current) {
      printf("no network loaded; use `gen` or `read_blif`\n");
      return false;
    }
    return true;
  }

  void print_stats(const char* tag) {
    printf("%s: pis=%u pos=%u gates=%u depth=%u\n", tag, current->num_pis(),
           current->num_pos(), current->count_live_gates(), current->depth());
  }

  /// Submits the current network with `script` as one job, waits for the
  /// result, prints the trajectory and (when `adopt`) replaces the current
  /// network with the optimized artifact.  Returns false when the job failed.
  bool run_job(const std::string& script, bool adopt) {
    api::JobRequest request;
    request.name = "shell";
    request.script = script;
    request.network_blif = to_blif(*current);
    const api::JobId id = service().submit(request);
    const api::JobResult result = service().result(id);
    if (result.code != api::ErrorCode::ok) {
      printf("error [%s]: %s\n", api::error_code_name(result.code),
             result.message.c_str());
      return false;
    }
    fputs(result.report.summary().c_str(), stdout);
    if (adopt) {
      std::istringstream blif(result.network_blif);
      current = io::read_blif(blif);
    }
    return true;
  }

  void command(const std::string& line);
};

void Shell::command(const std::string& line) {
  std::istringstream is(line);
  std::string cmd;
  if (!(is >> cmd)) return;

  if (cmd == "help") {
    printf(
        "commands:\n"
        "  gen <adder|divisor|log2|max|multiplier|sine|sqrt|square> [width]\n"
        "  read_blif <path> | write_blif <path> | write_verilog <path> | "
        "write_dot <path>\n"
        "  ps                    network statistics\n"
        "  check                 validate structural invariants of the network\n"
        "                        (also a flow-script word: `flow TF; check`)\n"
        "  depth_opt | size_opt  algebraic optimization (refs. [3], [4])\n"
        "  fh [variant]          functional hashing (default BF; T/TD/TF/TFD/B/...)\n"
        "  flow <script>         run a flow script, e.g.  TF;(BFD;size)*;map\n"
        "                        (x*3 repeats, x* iterates to convergence,\n"
        "                        parallel:4 runs later passes on 4 threads)\n"
        "  batch <dir|gen> <script>\n"
        "                        run a flow script over a whole corpus (every\n"
        "                        .blif in <dir>, or the built-in generator\n"
        "                        corpus), one job per network on the service\n"
        "  autotune <size|depth|product> [dir|gen]\n"
        "                        search the flow-script grammar for the best\n"
        "                        flow under an objective (corpus as in batch;\n"
        "                        default gen); prints the Pareto front and the\n"
        "                        winning script — rerun it with `flow <script>`\n"
        "  connect <socket>      send later jobs to a mighty-serve daemon\n"
        "  disconnect            go back to the in-process service\n"
        "  shutdown              ask the connected daemon to shut down\n"
        "  stats                 service counters (jobs, oracle, cache)\n"
        "  threads [n]           set/show session parallelism (deterministic)\n"
        "  cache load <path>     merge a persistent 5-input oracle cache\n"
        "  cache save [path]     persist the oracle cache (also on exit)\n"
        "  cache stats           show oracle cache size and dirty entries\n"
        "  map [k]               k-LUT mapping (default 6)\n"
        "  cec                   SAT equivalence vs. the originally loaded network\n"
        "  snapshot              make the current network the cec reference\n"
        "  quit\n");
    return;
  }
  if (cmd == "gen") {
    std::string kind;
    uint32_t width = 0;
    is >> kind >> width;
    if (kind == "adder") {
      current = width ? gen::make_adder_n(width) : gen::make_adder();
    } else if (kind == "divisor") {
      current = width ? gen::make_divisor_n(width) : gen::make_divisor();
    } else if (kind == "log2") {
      current = width ? gen::make_log2_n(width) : gen::make_log2();
    } else if (kind == "max") {
      current = width ? gen::make_max_n(width) : gen::make_max();
    } else if (kind == "multiplier") {
      current = width ? gen::make_multiplier_n(width) : gen::make_multiplier();
    } else if (kind == "sine") {
      current = width ? gen::make_sine_n(width) : gen::make_sine();
    } else if (kind == "sqrt") {
      current = width ? gen::make_sqrt_n(width) : gen::make_sqrt();
    } else if (kind == "square") {
      current = width ? gen::make_square_n(width) : gen::make_square();
    } else {
      printf("unknown generator '%s'\n", kind.c_str());
      return;
    }
    original = current;
    print_stats("generated");
    return;
  }
  if (cmd == "connect") {
    std::string path;
    is >> path;
    if (path.empty()) {
      printf("usage: connect <socket path>\n");
      return;
    }
    try {
      remote = std::make_unique<serve::RemoteService>(path);
      const auto s = remote->stats();
      printf("connected to %s (%llu jobs served, %llu cached syntheses)\n",
             path.c_str(), static_cast<unsigned long long>(s.submitted),
             static_cast<unsigned long long>(s.cache_entries));
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (cmd == "disconnect") {
    if (!remote) {
      printf("not connected\n");
      return;
    }
    remote.reset();
    printf("back to the in-process service\n");
    return;
  }
  if (cmd == "shutdown") {
    if (!remote) {
      printf("not connected to a daemon (the local service stops on quit)\n");
      return;
    }
    try {
      remote->shutdown();
      printf("daemon is shutting down (cache persisted)\n");
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    remote.reset();
    return;
  }
  if (cmd == "stats") {
    try {
      const auto s = service().stats();
      printf("%s service: %llu submitted, %llu done, %llu failed, %llu "
             "cancelled (%llu queued, %llu running) on %u job worker%s x %u "
             "thread%s\n",
             service_name(), static_cast<unsigned long long>(s.submitted),
             static_cast<unsigned long long>(s.completed),
             static_cast<unsigned long long>(s.failed),
             static_cast<unsigned long long>(s.cancelled),
             static_cast<unsigned long long>(s.queued),
             static_cast<unsigned long long>(s.running), s.job_workers,
             s.job_workers == 1 ? "" : "s", s.threads,
             s.threads == 1 ? "" : "s");
      printf("oracle: %llu queries, %llu cache hits, %llu synthesized; cache "
             "%llu entries (%llu dirty)\n",
             static_cast<unsigned long long>(s.oracle_queries),
             static_cast<unsigned long long>(s.oracle_cache5_hits),
             static_cast<unsigned long long>(s.oracle_synthesized),
             static_cast<unsigned long long>(s.cache_entries),
             static_cast<unsigned long long>(s.cache_dirty));
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (cmd == "threads") {
    uint32_t n = 0;
    if (is >> n) {
      if (n == 0 || n > util::ThreadPool::kMaxParallelism) {
        printf("thread count must be between 1 and %u\n",
               util::ThreadPool::kMaxParallelism);
        return;
      }
      local.session().set_threads(n);
    }
    printf("session parallelism: %u thread%s (results are identical at any "
           "count)\n", local.session().threads(),
           local.session().threads() == 1 ? "" : "s");
    return;
  }
  if (cmd == "cache") {
    std::string sub, path;
    is >> sub >> path;
    try {
      if (sub == "load") {
        if (path.empty()) {
          printf("usage: cache load <path>\n");
          return;
        }
        const auto info = service().cache_load(path);
        if (info.status == "missing") {
          printf("no cache file at %s yet (it will be created on save)\n",
                 path.c_str());
        } else if (info.status == "malformed") {
          printf("rejected malformed cache %s (next save rewrites it)\n",
                 path.c_str());
        } else {
          printf("loaded: %zu entr%s in the cache (%zu newly adopted) from %s\n",
                 info.entries, info.entries == 1 ? "y" : "ies", info.adopted,
                 path.c_str());
        }
      } else if (sub == "save") {
        const size_t written = service().cache_save(path);
        if (written == 0) {
          printf("nothing new to save (cache is up to date)\n");
        } else {
          printf("saved %zu entr%s\n", written, written == 1 ? "y" : "ies");
        }
      } else if (sub == "stats") {
        const auto info = service().cache_stats();
        printf("5-input cache (%s service): %zu entries, %zu dirty\n",
               service_name(), info.entries, info.dirty);
      } else {
        printf("usage: cache <load|save|stats> [path]\n");
      }
    } catch (const api::Error& e) {
      printf("error [%s]: %s\n", api::error_code_name(e.code()), e.what());
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (cmd == "batch") {
    // Corpus-level execution needs no `current` network: it brings its own.
    // One job per network, all submitted before the first result is fetched,
    // so a multi-worker service (or the daemon) runs them concurrently.
    std::string source, script;
    is >> source;
    std::getline(is, script);
    if (source.empty() || script.find_first_not_of(" \t") == std::string::npos) {
      printf("usage: batch <dir|gen> <script>\n");
      return;
    }
    try {
      const auto corpus = source == "gen" ? flow::Corpus::generated_arithmetic()
                                          : flow::Corpus::from_directory(source);
      if (corpus.empty()) {
        printf("corpus '%s' contains no networks\n", source.c_str());
        return;
      }
      std::vector<api::JobId> ids;
      ids.reserve(corpus.size());
      for (size_t i = 0; i < corpus.size(); ++i) {
        api::JobRequest request;
        request.name = corpus[i].name;
        request.script = script;
        request.network_blif = to_blif(corpus[i].mig);
        ids.push_back(service().submit(request));
      }
      uint32_t gates_before = 0, gates_after = 0, failures = 0;
      for (size_t i = 0; i < corpus.size(); ++i) {
        const auto result = service().result(ids[i]);
        if (result.code != api::ErrorCode::ok) {
          printf("%-16s error [%s]: %s\n", corpus[i].name.c_str(),
                 api::error_code_name(result.code), result.message.c_str());
          ++failures;
          continue;
        }
        printf("%-16s %6u -> %5u gates, %4u -> %3u depth, %6.2fs\n",
               corpus[i].name.c_str(), result.report.size_before,
               result.report.size_after, result.report.depth_before,
               result.report.depth_after, result.report.seconds);
        gates_before += result.report.size_before;
        gates_after += result.report.size_after;
      }
      printf("batch total: %u -> %u gates over %zu network%s, %u failure%s\n",
             gates_before, gates_after, corpus.size(),
             corpus.size() == 1 ? "" : "s", failures, failures == 1 ? "" : "s");
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (cmd == "autotune") {
    // Autotune explores many candidate flows against the in-process session;
    // it stays a local driver (rerun the winner anywhere with `flow`).
    std::string objective, source;
    is >> objective >> source;
    if (objective.empty()) {
      printf("usage: autotune <size|depth|product> [dir|gen]\n");
      return;
    }
    if (source.empty()) source = "gen";
    flow::TuneParams params;
    params.objective = flow::parse_objective(objective);
    params.population = 8;
    params.generations = 1;
    const auto corpus = source == "gen" ? flow::Corpus::generated_arithmetic()
                                        : flow::Corpus::from_directory(source);
    if (corpus.empty()) {
      printf("corpus '%s' contains no networks\n", source.c_str());
      return;
    }
    printf("tuning %s over %zu network%s (population %u, this takes a while)...\n",
           flow::objective_name(params.objective), corpus.size(),
           corpus.size() == 1 ? "" : "s", params.population);
    flow::TuneReport report;
    flow::Autotuner(local.session(), params).tune(corpus, &report);
    fputs(report.summary().c_str(), stdout);
    return;
  }
  if (cmd == "read_blif") {
    std::string path;
    is >> path;
    try {
      current = io::read_blif_file(path);
      original = current;
      print_stats("loaded");
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (!require_network()) return;

  if (cmd == "ps") {
    print_stats("network");
  } else if (cmd == "check") {
    // The "check" script word: full validation on the service (throws into
    // the job result on violation).  The network is not adopted — check is
    // an assertion, not a transformation.
    if (run_job("check", /*adopt=*/false)) printf("all invariants hold\n");
  } else if (cmd == "depth_opt") {
    run_job("depth", /*adopt=*/true);
  } else if (cmd == "size_opt") {
    run_job("size", /*adopt=*/true);
  } else if (cmd == "fh") {
    std::string variant = "BF";
    is >> variant;
    run_job(variant, /*adopt=*/true);
  } else if (cmd == "flow") {
    std::string script;
    std::getline(is, script);
    run_job(script, /*adopt=*/true);
  } else if (cmd == "map") {
    uint32_t lut_size = 6;
    is >> lut_size;
    if (!is) lut_size = 6;
    if (lut_size < 2 || lut_size > 16) {
      printf("LUT size must be between 2 and 16\n");
      return;
    }
    run_job("map" + std::to_string(lut_size), /*adopt=*/false);
  } else if (cmd == "cec") {
    if (!original) {
      printf("no reference network\n");
      return;
    }
    const auto r = cec::check_equivalence(*original, *current);
    switch (r.status) {
      case cec::CecStatus::equivalent:
        printf("equivalent (SAT proof)\n");
        break;
      case cec::CecStatus::not_equivalent:
        printf("NOT equivalent!\n");
        break;
      case cec::CecStatus::unknown:
        printf("unknown (budget exhausted)\n");
        break;
    }
  } else if (cmd == "snapshot") {
    original = current;
    printf("reference updated\n");
  } else if (cmd == "write_blif") {
    std::string path;
    is >> path;
    io::write_blif_file(path, *current);
    printf("written %s\n", path.c_str());
  } else if (cmd == "write_verilog") {
    std::string path;
    is >> path;
    util::write_file_atomically(
        path, [&](std::ostream& os) { io::write_verilog(os, *current); });
    printf("written %s\n", path.c_str());
  } else if (cmd == "write_dot") {
    std::string path;
    is >> path;
    util::write_file_atomically(
        path, [&](std::ostream& os) { io::write_dot(os, *current); });
    printf("written %s\n", path.c_str());
  } else {
    printf("unknown command '%s' (try `help`)\n", cmd.c_str());
  }
}

}  // namespace

int main() {
  Shell shell;
  const bool interactive = isatty(0);
  if (interactive) printf("mighty shell -- `help` for commands\n");
  std::string line;
  while (true) {
    if (interactive) {
      printf("mighty> ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    // Commands may be ;-chained; `flow` and `batch` commands swallow the
    // rest of the line, since their scripts use ';' as the pass separator.
    size_t start = 0;
    while (start <= line.size()) {
      const size_t word = line.find_first_not_of(" \t", start);
      bool swallows_line = false;
      for (const std::string head : {"flow", "batch"}) {
        if (word != std::string::npos && line.compare(word, head.size(), head) == 0 &&
            (word + head.size() == line.size() || line[word + head.size()] == ' ' ||
             line[word + head.size()] == '\t')) {
          swallows_line = true;
        }
      }
      // No command may take the REPL down with it: a bad script, an
      // unreadable corpus/cache path or an out-of-range argument prints its
      // message and leaves the session — and its warm oracle — alive.
      const auto dispatch = [&shell](const std::string& text) {
        try {
          shell.command(text);
        } catch (const api::Error& e) {
          printf("error [%s]: %s\n", api::error_code_name(e.code()), e.what());
        } catch (const std::exception& e) {
          printf("error: %s\n", e.what());
        }
      };
      if (swallows_line) {
        dispatch(line.substr(word));
        break;
      }
      const size_t semi = line.find(';', start);
      const std::string part = line.substr(start, semi - start);
      if (part == "quit" || part == "exit") return 0;
      dispatch(part);
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }
  return 0;
}
