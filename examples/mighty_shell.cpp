// An interactive (or scripted) mini-shell over the library, in the spirit of
// ABC / CirKit: load a network, optimize, map, verify, export.
//
//   $ ./build/examples/mighty_shell
//   mighty> gen multiplier 16
//   mighty> flow depth; TF; (BFD; size)*; map
//   mighty> cec
//   mighty> write_blif /tmp/out.blif
//
// Or non-interactively:  echo "gen adder 32; fh TF; ps" | ./build/examples/mighty_shell
//
// All optimization commands are thin wrappers over flow::Pipeline running in
// one flow::Session, so the NPN database and the 5-input oracle cache are
// shared across every command of the shell's lifetime.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cec/cec.hpp"
#include "check/check.hpp"
#include "flow/flow.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "mig/mig.hpp"
#include "util/thread_pool.hpp"

using namespace mighty;

namespace {

struct Shell {
  std::optional<mig::Mig> current;
  std::optional<mig::Mig> original;  ///< snapshot for cec
  flow::Session session;

  bool require_network() {
    if (!current) {
      printf("no network loaded; use `gen` or `read_blif`\n");
      return false;
    }
    return true;
  }

  void print_stats(const char* tag) {
    printf("%s: pis=%u pos=%u gates=%u depth=%u\n", tag, current->num_pis(),
           current->num_pos(), current->count_live_gates(), current->depth());
  }

  /// Runs a pipeline on the current network and prints its trajectory.
  void run_pipeline(const flow::Pipeline& pipeline) {
    flow::FlowReport report;
    current = pipeline.run(*current, session, &report);
    fputs(report.summary().c_str(), stdout);
  }

  void command(const std::string& line);
};

void Shell::command(const std::string& line) {
  std::istringstream is(line);
  std::string cmd;
  if (!(is >> cmd)) return;

  if (cmd == "help") {
    printf(
        "commands:\n"
        "  gen <adder|divisor|log2|max|multiplier|sine|sqrt|square> [width]\n"
        "  read_blif <path> | write_blif <path> | write_verilog <path> | "
        "write_dot <path>\n"
        "  ps                    network statistics\n"
        "  check                 validate structural invariants of the network\n"
        "                        (also a flow-script word: `flow TF; check`)\n"
        "  depth_opt | size_opt  algebraic optimization (refs. [3], [4])\n"
        "  fh [variant]          functional hashing (default BF; T/TD/TF/TFD/B/...)\n"
        "  flow <script>         run a flow script, e.g.  TF;(BFD;size)*;map\n"
        "                        (x*3 repeats, x* iterates to convergence,\n"
        "                        parallel:4 runs later passes on 4 threads)\n"
        "  batch <dir|gen> <script>\n"
        "                        run a flow script over a whole corpus (every\n"
        "                        .blif in <dir>, or the built-in generator\n"
        "                        corpus) with the oracle shared corpus-wide;\n"
        "                        networks run concurrently at `threads` > 1\n"
        "  autotune <size|depth|product> [dir|gen]\n"
        "                        search the flow-script grammar for the best\n"
        "                        flow under an objective (corpus as in batch;\n"
        "                        default gen); prints the Pareto front and the\n"
        "                        winning script — rerun it with `flow <script>`\n"
        "  threads [n]           set/show session parallelism (deterministic)\n"
        "  cache load <path>     merge a persistent 5-input oracle cache\n"
        "  cache save [path]     persist the oracle cache (also on exit)\n"
        "  cache stats           show oracle cache size and dirty entries\n"
        "  map [k]               k-LUT mapping (default 6)\n"
        "  cec                   SAT equivalence vs. the originally loaded network\n"
        "  snapshot              make the current network the cec reference\n"
        "  quit\n");
    return;
  }
  if (cmd == "gen") {
    std::string kind;
    uint32_t width = 0;
    is >> kind >> width;
    if (kind == "adder") {
      current = width ? gen::make_adder_n(width) : gen::make_adder();
    } else if (kind == "divisor") {
      current = width ? gen::make_divisor_n(width) : gen::make_divisor();
    } else if (kind == "log2") {
      current = width ? gen::make_log2_n(width) : gen::make_log2();
    } else if (kind == "max") {
      current = width ? gen::make_max_n(width) : gen::make_max();
    } else if (kind == "multiplier") {
      current = width ? gen::make_multiplier_n(width) : gen::make_multiplier();
    } else if (kind == "sine") {
      current = width ? gen::make_sine_n(width) : gen::make_sine();
    } else if (kind == "sqrt") {
      current = width ? gen::make_sqrt_n(width) : gen::make_sqrt();
    } else if (kind == "square") {
      current = width ? gen::make_square_n(width) : gen::make_square();
    } else {
      printf("unknown generator '%s'\n", kind.c_str());
      return;
    }
    original = current;
    print_stats("generated");
    return;
  }
  if (cmd == "threads") {
    uint32_t n = 0;
    if (is >> n) {
      if (n == 0 || n > util::ThreadPool::kMaxParallelism) {
        printf("thread count must be between 1 and %u\n",
               util::ThreadPool::kMaxParallelism);
        return;
      }
      session.set_threads(n);
    }
    printf("session parallelism: %u thread%s (results are identical at any "
           "count)\n", session.threads(), session.threads() == 1 ? "" : "s");
    return;
  }
  if (cmd == "cache") {
    std::string sub, path;
    is >> sub >> path;
    try {
      if (sub == "load") {
        if (path.empty()) {
          printf("usage: cache load <path>\n");
          return;
        }
        session.set_cache_path(path);  // records only; the load below merges
        const auto r = session.load_cache();
        using Status = opt::ReplacementOracle::CacheLoadStatus;
        if (r.status == Status::missing) {
          printf("no cache file at %s yet (it will be created on save)\n",
                 path.c_str());
        } else if (r.status == Status::malformed) {
          printf("rejected malformed cache %s (next save rewrites it)\n",
                 path.c_str());
        } else {
          printf("loaded %zu entr%s (%zu adopted) from %s\n", r.entries,
                 r.entries == 1 ? "y" : "ies", r.adopted, path.c_str());
        }
      } else if (sub == "save") {
        if (!path.empty()) session.set_cache_path(path);
        if (session.cache_path().empty()) {
          printf("no cache path set; use `cache save <path>`\n");
          return;
        }
        const size_t written = session.save_cache();
        if (written == 0) {
          printf("nothing new to save (cache %s is up to date)\n",
                 session.cache_path().c_str());
        } else {
          printf("saved %zu entr%s to %s\n", written, written == 1 ? "y" : "ies",
                 session.cache_path().c_str());
        }
      } else if (sub == "stats") {
        printf("cache path: %s\n",
               session.cache_path().empty() ? "(none)" : session.cache_path().c_str());
        if (const auto* oracle = session.oracle_if_created()) {
          const auto s = oracle->cache_stats();
          printf("5-input cache: %zu entries (%zu replacements, %zu failures), "
                 "%zu dirty\n", s.entries, s.successes, s.failures, s.dirty);
        } else {
          printf("5-input cache: oracle not materialized yet\n");
        }
      } else {
        printf("usage: cache <load|save|stats> [path]\n");
      }
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (cmd == "batch") {
    // Corpus-level execution needs no `current` network: it brings its own.
    std::string source, script;
    is >> source;
    std::getline(is, script);
    if (source.empty() || script.find_first_not_of(" \t") == std::string::npos) {
      printf("usage: batch <dir|gen> <script>\n");
      return;
    }
    try {
      const auto corpus = source == "gen" ? flow::Corpus::generated_arithmetic()
                                          : flow::Corpus::from_directory(source);
      if (corpus.empty()) {
        printf("corpus '%s' contains no networks\n", source.c_str());
        return;
      }
      flow::BatchReport report;
      flow::BatchRunner(session).run(corpus, flow::Pipeline::parse(script), &report);
      fputs(report.summary().c_str(), stdout);
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (cmd == "autotune") {
    // Like `batch`, autotune brings its own corpus; no `current` needed.
    std::string objective, source;
    is >> objective >> source;
    if (objective.empty()) {
      printf("usage: autotune <size|depth|product> [dir|gen]\n");
      return;
    }
    if (source.empty()) source = "gen";
    flow::TuneParams params;
    params.objective = flow::parse_objective(objective);
    params.population = 8;
    params.generations = 1;
    const auto corpus = source == "gen" ? flow::Corpus::generated_arithmetic()
                                        : flow::Corpus::from_directory(source);
    if (corpus.empty()) {
      printf("corpus '%s' contains no networks\n", source.c_str());
      return;
    }
    printf("tuning %s over %zu network%s (population %u, this takes a while)...\n",
           flow::objective_name(params.objective), corpus.size(),
           corpus.size() == 1 ? "" : "s", params.population);
    flow::TuneReport report;
    flow::Autotuner(session, params).tune(corpus, &report);
    fputs(report.summary().c_str(), stdout);
    return;
  }
  if (cmd == "read_blif") {
    std::string path;
    is >> path;
    try {
      current = io::read_blif_file(path);
      original = current;
      print_stats("loaded");
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (!require_network()) return;

  if (cmd == "ps") {
    print_stats("network");
  } else if (cmd == "check") {
    const auto report = check::validate_at(*current, /*full=*/true);
    fputs(report.summary().c_str(), stdout);
  } else if (cmd == "depth_opt") {
    run_pipeline(flow::Pipeline().depth_opt());
  } else if (cmd == "size_opt") {
    run_pipeline(flow::Pipeline().size_opt());
  } else if (cmd == "fh") {
    std::string variant = "BF";
    is >> variant;
    try {
      run_pipeline(flow::Pipeline().rewrite(variant));
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
  } else if (cmd == "flow") {
    std::string script;
    std::getline(is, script);
    try {
      run_pipeline(flow::Pipeline::parse(script));
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
  } else if (cmd == "map") {
    map::MapParams params;
    is >> params.lut_size;
    if (!is) params.lut_size = 6;
    if (params.lut_size < 2 || params.lut_size > 16) {
      printf("LUT size must be between 2 and 16\n");
      return;
    }
    run_pipeline(flow::Pipeline().lut_map(params));
  } else if (cmd == "cec") {
    if (!original) {
      printf("no reference network\n");
      return;
    }
    const auto r = cec::check_equivalence(*original, *current);
    switch (r.status) {
      case cec::CecStatus::equivalent:
        printf("equivalent (SAT proof)\n");
        break;
      case cec::CecStatus::not_equivalent:
        printf("NOT equivalent!\n");
        break;
      case cec::CecStatus::unknown:
        printf("unknown (budget exhausted)\n");
        break;
    }
  } else if (cmd == "snapshot") {
    original = current;
    printf("reference updated\n");
  } else if (cmd == "write_blif") {
    std::string path;
    is >> path;
    io::write_blif_file(path, *current);
    printf("written %s\n", path.c_str());
  } else if (cmd == "write_verilog") {
    std::string path;
    is >> path;
    std::ofstream os(path);
    io::write_verilog(os, *current);
    printf("written %s\n", path.c_str());
  } else if (cmd == "write_dot") {
    std::string path;
    is >> path;
    std::ofstream os(path);
    io::write_dot(os, *current);
    printf("written %s\n", path.c_str());
  } else {
    printf("unknown command '%s' (try `help`)\n", cmd.c_str());
  }
}

}  // namespace

int main() {
  Shell shell;
  const bool interactive = isatty(0);
  if (interactive) printf("mighty shell -- `help` for commands\n");
  std::string line;
  while (true) {
    if (interactive) {
      printf("mighty> ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    // Commands may be ;-chained; `flow` and `batch` commands swallow the
    // rest of the line, since their scripts use ';' as the pass separator.
    size_t start = 0;
    while (start <= line.size()) {
      const size_t word = line.find_first_not_of(" \t", start);
      bool swallows_line = false;
      for (const std::string head : {"flow", "batch"}) {
        if (word != std::string::npos && line.compare(word, head.size(), head) == 0 &&
            (word + head.size() == line.size() || line[word + head.size()] == ' ' ||
             line[word + head.size()] == '\t')) {
          swallows_line = true;
        }
      }
      // No command may take the REPL down with it: a bad script, an
      // unreadable corpus/cache path or an out-of-range argument prints its
      // message and leaves the session — and its warm oracle — alive.
      const auto dispatch = [&shell](const std::string& text) {
        try {
          shell.command(text);
        } catch (const std::exception& e) {
          printf("error: %s\n", e.what());
        }
      };
      if (swallows_line) {
        dispatch(line.substr(word));
        break;
      }
      const size_t semi = line.find(';', start);
      const std::string part = line.substr(start, semi - start);
      if (part == "quit" || part == "exit") return 0;
      dispatch(part);
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }
  return 0;
}
