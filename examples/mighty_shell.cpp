// An interactive (or scripted) mini-shell over the library, in the spirit of
// ABC / CirKit: load a network, optimize, map, verify, export.
//
//   $ ./build/examples/mighty_shell
//   mighty> gen multiplier 16
//   mighty> depth_opt
//   mighty> fh BF
//   mighty> map
//   mighty> cec
//   mighty> write_blif /tmp/out.blif
//
// Or non-interactively:  echo "gen adder 32; fh TF; ps" | ./build/examples/mighty_shell

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cec/cec.hpp"
#include "exact/database.hpp"
#include "gen/arith.hpp"
#include "io/io.hpp"
#include "map/lut_mapper.hpp"
#include "mig/algebra/algebra.hpp"
#include "mig/mig.hpp"
#include "opt/rewrite.hpp"

using namespace mighty;

namespace {

struct Shell {
  std::optional<mig::Mig> current;
  std::optional<mig::Mig> original;  ///< snapshot for cec
  std::optional<exact::Database> db;

  const exact::Database& database() {
    if (!db) db = exact::Database::load_or_build(exact::default_database_path());
    return *db;
  }

  bool require_network() {
    if (!current) {
      printf("no network loaded; use `gen` or `read_blif`\n");
      return false;
    }
    return true;
  }

  void print_stats(const char* tag) {
    printf("%s: pis=%u pos=%u gates=%u depth=%u\n", tag, current->num_pis(),
           current->num_pos(), current->count_live_gates(), current->depth());
  }

  void command(const std::string& line);
};

void Shell::command(const std::string& line) {
  std::istringstream is(line);
  std::string cmd;
  if (!(is >> cmd)) return;

  if (cmd == "help") {
    printf(
        "commands:\n"
        "  gen <adder|divisor|log2|max|multiplier|sine|sqrt|square> [width]\n"
        "  read_blif <path> | write_blif <path> | write_verilog <path> | "
        "write_dot <path>\n"
        "  ps                    network statistics\n"
        "  depth_opt | size_opt  algebraic optimization (refs. [3], [4])\n"
        "  fh [variant]          functional hashing (default BF; T/TD/TF/TFD/B/...)\n"
        "  map [k]               k-LUT mapping (default 6)\n"
        "  cec                   SAT equivalence vs. the originally loaded network\n"
        "  snapshot              make the current network the cec reference\n"
        "  quit\n");
    return;
  }
  if (cmd == "gen") {
    std::string kind;
    uint32_t width = 0;
    is >> kind >> width;
    if (kind == "adder") {
      current = width ? gen::make_adder_n(width) : gen::make_adder();
    } else if (kind == "divisor") {
      current = width ? gen::make_divisor_n(width) : gen::make_divisor();
    } else if (kind == "log2") {
      current = width ? gen::make_log2_n(width) : gen::make_log2();
    } else if (kind == "max") {
      current = width ? gen::make_max_n(width) : gen::make_max();
    } else if (kind == "multiplier") {
      current = width ? gen::make_multiplier_n(width) : gen::make_multiplier();
    } else if (kind == "sine") {
      current = width ? gen::make_sine_n(width) : gen::make_sine();
    } else if (kind == "sqrt") {
      current = width ? gen::make_sqrt_n(width) : gen::make_sqrt();
    } else if (kind == "square") {
      current = width ? gen::make_square_n(width) : gen::make_square();
    } else {
      printf("unknown generator '%s'\n", kind.c_str());
      return;
    }
    original = current;
    print_stats("generated");
    return;
  }
  if (cmd == "read_blif") {
    std::string path;
    is >> path;
    try {
      current = io::read_blif_file(path);
      original = current;
      print_stats("loaded");
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
    return;
  }
  if (!require_network()) return;

  if (cmd == "ps") {
    print_stats("network");
  } else if (cmd == "depth_opt") {
    algebra::AlgebraStats stats;
    current = algebra::depth_optimize(*current, {}, &stats);
    printf("depth %u -> %u, size %u -> %u\n", stats.depth_before, stats.depth_after,
           stats.size_before, stats.size_after);
  } else if (cmd == "size_opt") {
    algebra::AlgebraStats stats;
    current = algebra::size_optimize(*current, {}, &stats);
    printf("size %u -> %u, depth %u -> %u\n", stats.size_before, stats.size_after,
           stats.depth_before, stats.depth_after);
  } else if (cmd == "fh") {
    std::string variant = "BF";
    is >> variant;
    try {
      opt::RewriteStats stats;
      current = opt::functional_hashing(*current, database(),
                                        opt::variant_params(variant), &stats);
      printf("%s: size %u -> %u, depth %u -> %u (%.2fs, %lu replacements)\n",
             variant.c_str(), stats.size_before, stats.size_after, stats.depth_before,
             stats.depth_after, stats.seconds,
             static_cast<unsigned long>(stats.replacements));
    } catch (const std::exception& e) {
      printf("error: %s\n", e.what());
    }
  } else if (cmd == "map") {
    uint32_t k = 6;
    is >> k;
    map::MapParams params;
    params.lut_size = k;
    const auto result = map::map_luts(*current, params);
    printf("mapping: %u LUT%u, depth %u\n", result.num_luts, k, result.depth);
  } else if (cmd == "cec") {
    if (!original) {
      printf("no reference network\n");
      return;
    }
    const auto r = cec::check_equivalence(*original, *current);
    switch (r.status) {
      case cec::CecStatus::equivalent:
        printf("equivalent (SAT proof)\n");
        break;
      case cec::CecStatus::not_equivalent:
        printf("NOT equivalent!\n");
        break;
      case cec::CecStatus::unknown:
        printf("unknown (budget exhausted)\n");
        break;
    }
  } else if (cmd == "snapshot") {
    original = current;
    printf("reference updated\n");
  } else if (cmd == "write_blif") {
    std::string path;
    is >> path;
    io::write_blif_file(path, *current);
    printf("written %s\n", path.c_str());
  } else if (cmd == "write_verilog") {
    std::string path;
    is >> path;
    std::ofstream os(path);
    io::write_verilog(os, *current);
    printf("written %s\n", path.c_str());
  } else if (cmd == "write_dot") {
    std::string path;
    is >> path;
    std::ofstream os(path);
    io::write_dot(os, *current);
    printf("written %s\n", path.c_str());
  } else {
    printf("unknown command '%s' (try `help`)\n", cmd.c_str());
  }
}

}  // namespace

int main() {
  Shell shell;
  const bool interactive = isatty(0);
  if (interactive) printf("mighty shell -- `help` for commands\n");
  std::string line;
  while (true) {
    if (interactive) {
      printf("mighty> ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    // Allow ;-separated command sequences.
    std::istringstream split(line);
    std::string part;
    while (std::getline(split, part, ';')) {
      if (part == "quit" || part == "exit") return 0;
      shell.command(part);
    }
  }
  return 0;
}
