// Quickstart: build a small MIG, optimize it with functional hashing, and
// inspect the result.
//
//   $ ./build/examples/quickstart
//
// Walks through the public job API: network construction, a JobRequest
// against the in-process api::LocalService, equivalence checking and BLIF
// export.  The same request, submitted to a mighty-serve daemon through
// serve::RemoteService, returns a bit-identical artifact.

#include <cstdio>
#include <sstream>

#include "api/api.hpp"
#include "cec/cec.hpp"
#include "io/io.hpp"
#include "mig/mig.hpp"
#include "mig/simulation.hpp"

using namespace mighty;

int main() {
  // 1. Build a 2-bit adder from AND/OR/XOR operations -- the kind of
  //    structure a conventional synthesis flow would produce.
  mig::Mig m;
  const auto a0 = m.create_pi();
  const auto a1 = m.create_pi();
  const auto b0 = m.create_pi();
  const auto b1 = m.create_pi();

  const auto s0 = m.create_xor(a0, b0);
  const auto c0 = m.create_and(a0, b0);
  const auto t1 = m.create_xor(a1, b1);
  const auto s1 = m.create_xor(t1, c0);
  const auto c1 = m.create_or(m.create_and(a1, b1), m.create_and(t1, c0));
  m.create_po(s0);
  m.create_po(s1);
  m.create_po(c1);

  printf("initial MIG : %u majority gates, depth %u\n", m.count_live_gates(),
         m.depth());

  // 2. Open the in-process service: it owns one flow::Session, which loads
  //    (or builds once) the database of minimum MIGs for all 222 NPN classes
  //    of 4-variable functions and the replacement oracle every job shares.
  api::LocalService service;
  printf("database    : %zu NPN classes\n",
         service.session().database().num_entries());

  // 3. Describe the work as a JobRequest: the network (as BLIF text), a flow
  //    script, and optional budgets.  "B" is one pass of global bottom-up
  //    functional hashing; on a circuit this small the global variant sees
  //    across the fanout boundaries and recovers the majority-form carries.
  api::JobRequest request;
  request.name = "quickstart";
  request.script = "B";
  {
    std::ostringstream blif;
    io::write_blif(blif, m);
    request.network_blif = blif.str();
  }
  const api::JobResult result = service.result(service.submit(request));
  if (result.code != api::ErrorCode::ok) {
    printf("job failed [%s]: %s\n", api::error_code_name(result.code),
           result.message.c_str());
    return 1;
  }
  printf("optimized   : %u gates, depth %u  (%.1f%% size reduction)\n",
         result.report.size_after, result.report.depth_after,
         100.0 * (result.report.size_before - result.report.size_after) /
             result.report.size_before);

  // 4. Prove the rewrite preserved the function.
  std::istringstream optimized_blif(result.network_blif);
  const auto optimized = io::read_blif(optimized_blif);
  const auto cec = cec::check_equivalence(m, optimized);
  printf("equivalence : %s\n",
         cec.status == cec::CecStatus::equivalent ? "proven by SAT" : "FAILED");

  // 5. The result artifact IS the export: BLIF text, ready to write out.
  printf("\nBLIF of the optimized network:\n%s", result.network_blif.c_str());
  return cec.status == cec::CecStatus::equivalent ? 0 : 1;
}
