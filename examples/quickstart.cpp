// Quickstart: build a small MIG, optimize it with functional hashing, and
// inspect the result.
//
//   $ ./build/examples/quickstart
//
// Walks through the core API: network construction, the precomputed NPN
// database, a rewriting pass, equivalence checking and BLIF export.

#include <cstdio>
#include <sstream>

#include "cec/cec.hpp"
#include "flow/flow.hpp"
#include "io/io.hpp"
#include "mig/mig.hpp"
#include "mig/simulation.hpp"

using namespace mighty;

int main() {
  // 1. Build a 2-bit adder from AND/OR/XOR operations -- the kind of
  //    structure a conventional synthesis flow would produce.
  mig::Mig m;
  const auto a0 = m.create_pi();
  const auto a1 = m.create_pi();
  const auto b0 = m.create_pi();
  const auto b1 = m.create_pi();

  const auto s0 = m.create_xor(a0, b0);
  const auto c0 = m.create_and(a0, b0);
  const auto t1 = m.create_xor(a1, b1);
  const auto s1 = m.create_xor(t1, c0);
  const auto c1 = m.create_or(m.create_and(a1, b1), m.create_and(t1, c0));
  m.create_po(s0);
  m.create_po(s1);
  m.create_po(c1);

  printf("initial MIG : %u majority gates, depth %u\n", m.count_live_gates(),
         m.depth());

  // 2. Open a flow session: it loads (or builds once) the database of minimum
  //    MIGs for all 222 NPN classes of 4-variable functions, and owns the
  //    replacement oracle every pass shares.
  flow::Session session;
  printf("database    : %zu NPN classes\n", session.database().num_entries());

  // 3. One pass of global bottom-up functional hashing ("B"); on a circuit
  //    this small the global variant sees across the fanout boundaries and
  //    recovers the majority-form carries.
  flow::FlowReport report;
  const auto optimized = flow::Pipeline().rewrite("B").run(m, session, &report);
  printf("optimized   : %u gates, depth %u  (%.1f%% size reduction)\n",
         report.size_after, report.depth_after,
         100.0 * (report.size_before - report.size_after) / report.size_before);

  // 4. Prove the rewrite preserved the function.
  const auto cec = cec::check_equivalence(m, optimized);
  printf("equivalence : %s\n",
         cec.status == cec::CecStatus::equivalent ? "proven by SAT" : "FAILED");

  // 5. Export the result.
  std::ostringstream blif;
  io::write_blif(blif, optimized, "adder2");
  printf("\nBLIF of the optimized network:\n%s", blif.str().c_str());
  return cec.status == cec::CecStatus::equivalent ? 0 : 1;
}
