// Exact synthesis from the command line: find a size-minimum and a
// depth-minimum MIG for a given truth table.
//
//   $ ./build/examples/exact_synthesis 3 e8        # <x1 x2 x3>
//   $ ./build/examples/exact_synthesis 4 6996      # 4-input parity
//   $ ./build/examples/exact_synthesis 4 1ee1 --smt # use the SMT-BV encoder
//
// The first argument is the number of variables (up to 4 for quick results,
// more is possible but slow), the second the truth table in hex (LSB =
// function value at the all-zero assignment).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "exact/exact_synthesis.hpp"

using namespace mighty;

namespace {

void print_chain(const exact::MigChain& chain) {
  if (chain.steps.empty()) {
    printf("  trivial: output = %s%u (0 = const0, 1.. = inputs)\n",
           exact::ref_complemented(chain.output) ? "~" : "",
           exact::ref_of(chain.output));
    return;
  }
  for (uint32_t i = 0; i < chain.size(); ++i) {
    const auto& step = chain.steps[i];
    printf("  %2u := <", chain.num_vars + 1 + i);
    for (int c = 0; c < 3; ++c) {
      const auto l = step.fanin[static_cast<size_t>(c)];
      printf("%s%u%s", exact::ref_complemented(l) ? "~" : "", exact::ref_of(l),
             c < 2 ? " " : "");
    }
    printf(">\n");
  }
  printf("  out = %s%u\n", exact::ref_complemented(chain.output) ? "~" : "",
         exact::ref_of(chain.output));
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [&] {
    fprintf(stderr, "usage: %s <num_vars> <hex_truth_table> [--smt]\n", argv[0]);
    return 1;
  };
  if (argc < 3) return usage();

  // `std::stoul(argv[1])` unguarded would abort on "abc" (invalid_argument)
  // or "99999999999999999999" (out_of_range); parse and range-check instead.
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(argv[1], &end, 10);
  if (end == argv[1] || *end != '\0' || parsed < 1 || parsed > 6) {
    fprintf(stderr, "invalid variable count \"%s\": need an integer in 1..6\n",
            argv[1]);
    return usage();
  }
  const auto num_vars = static_cast<uint32_t>(parsed);

  tt::TruthTable f(num_vars);
  try {
    f = tt::TruthTable::from_hex(num_vars, argv[2]);
  } catch (const std::exception& e) {
    fprintf(stderr, "invalid truth table \"%s\": %s\n", argv[2], e.what());
    return usage();
  }
  printf("function: 0x%s over %u variables\n\n", f.to_hex().c_str(), num_vars);

  exact::SynthesisOptions options;
  if (argc > 3 && std::strcmp(argv[3], "--smt") == 0) {
    options.encoder = exact::EncoderKind::smt;
    printf("encoder: SMT bit-vector formulation (bit-blasted)\n");
  } else {
    printf("encoder: one-hot CNF\n");
  }

  const auto size_result = exact::synthesize_minimum_mig(f, options);
  if (size_result.status != exact::SynthesisStatus::success) {
    printf("size-minimum synthesis did not complete\n");
    return 1;
  }
  printf("\nminimum size: %u majority gates (depth %u)\n", size_result.chain.size(),
         size_result.chain.depth());
  print_chain(size_result.chain);

  if (num_vars <= 4) {
    const auto depth_result = exact::synthesize_minimum_depth_mig(f);
    if (depth_result.status == exact::SynthesisStatus::success) {
      printf("\nminimum depth: %u levels (%u gates as a tree)\n", depth_result.depth,
             depth_result.chain.size());
      print_chain(depth_result.chain);
    }
  }
  return 0;
}
