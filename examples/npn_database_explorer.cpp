// Explore the NPN classification and the precomputed-optimum database:
// canonize a function, show its class representative, the minimum MIG from
// the database, and how the stored structure is instantiated through the
// transform.
//
//   $ ./build/examples/npn_database_explorer          # overview of all classes
//   $ ./build/examples/npn_database_explorer cafe     # inspect one function

#include <cstdio>
#include <map>

#include "exact/database.hpp"
#include "mig/simulation.hpp"
#include "npn/npn.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const auto db = exact::Database::load_or_build(exact::default_database_path());

  if (argc > 1) {
    const auto f = tt::TruthTable::from_hex(4, argv[1]);
    printf("function        : 0x%s\n", f.to_hex().c_str());
    const auto canon = npn::canonize(f);
    printf("NPN rep         : 0x%s\n", canon.representative.to_hex().c_str());
    printf("transform       : perm=(%u %u %u %u) input_neg=0x%x output_neg=%d\n",
           canon.transform.perm[0], canon.transform.perm[1], canon.transform.perm[2],
           canon.transform.perm[3], canon.transform.input_negations,
           canon.transform.output_negation);
    printf("orbit size      : %lu functions\n",
           static_cast<unsigned long>(npn::orbit_size(canon.representative)));

    const auto lookup = db.lookup(f);
    printf("minimum MIG size: %u gates, depth %u\n", lookup.entry->chain.size(),
           lookup.entry->chain.depth());

    mig::Mig m;
    const auto pis = m.create_pis(4);
    m.create_po(db.instantiate(f, m, pis));
    const bool ok = mig::output_truth_tables(m)[0] == f;
    printf("instantiation   : %u gates after strashing, %s\n", m.count_live_gates(),
           ok ? "verified" : "MISMATCH");
    return ok ? 0 : 1;
  }

  printf("NPN classes of 4-variable functions and their minimum MIGs\n\n");
  std::map<uint32_t, std::pair<uint32_t, uint64_t>> by_size;  // size -> classes, funcs
  for (const auto& entry : db.entries()) {
    auto& [classes, functions] = by_size[entry.chain.size()];
    ++classes;
    functions += npn::orbit_size(entry.representative);
  }
  printf("%-6s %8s %10s\n", "gates", "classes", "functions");
  for (const auto& [size, counts] : by_size) {
    printf("%-6u %8u %10lu\n", size, counts.first,
           static_cast<unsigned long>(counts.second));
  }
  printf("\nlargest class representatives per size:\n");
  for (const auto& entry : db.entries()) {
    if (entry.chain.size() >= 7) {
      printf("  0x%s needs %u gates (the hardest class, S_{0,2}; paper Fig. 2)\n",
             entry.representative.to_hex().c_str(), entry.chain.size());
    }
  }
  printf("\nrun with a hex truth table argument to inspect a single function\n");
  return 0;
}
