// Reproduces Table III of the paper: MIG size (S), depth (D) and runtime (RT)
// of the functional-hashing variants TF, T, TFD, TD and BF on the eight
// arithmetic benchmarks, against the depth-optimized baselines.
//
// Absolute sizes differ from the paper (our starting points are regenerated,
// not the authors' accumulated best results), but the qualitative shape must
// hold: the fanout-free-region variants beat the global ones, the
// depth-preserving heuristic keeps D near the baseline, and BF achieves the
// best average size reduction at a modest depth increase (paper: 0.92 size
// ratio).
//
// All variants run as flow::Pipelines in one flow::Session, so the NPN
// database loads once and the oracle cache is shared across the whole table.
//
// Flags: --small (reduced operand widths), --full (paper-size operands;
// default), --with-b (add the global bottom-up variant B), --threads n
// (parallel session; results are bit-identical to --threads 1), --json FILE
// (machine-readable BENCH_*.json for the tools/check_bench.py gate).

#include <cmath>

#include "bench_util.hpp"
#include "cec/cec.hpp"
#include "flow/flow.hpp"
#include "suite_common.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const bool small = bench::has_flag(argc, argv, "--small");
  const bool with_b = bench::has_flag(argc, argv, "--with-b");
  const int threads = bench::int_flag(argc, argv, "--threads", 1);
  const std::string json_path = bench::string_flag(argc, argv, "--json");
  std::vector<std::string> variants{"TF", "T", "TFD", "TD", "BF"};
  if (with_b) variants.push_back("B");

  printf("Table III: functional hashing (MIG size and depth)\n");
  printf("baseline = generated circuit after algebraic depth optimization\n");
  printf("mode: %s, %d thread%s\n\n",
         small ? "--small (reduced widths)" : "full (paper I/O sizes)", threads,
         threads == 1 ? "" : "s");

  flow::Session session;
  session.set_threads(static_cast<uint32_t>(threads > 0 ? threads : 1));
  session.database();  // load (or build) outside the timed region
  auto suite = bench::prepare_suite(small);
  std::vector<bench::BenchRecord> records;

  printf("%-12s %6s | %8s %5s |", "Benchmark", "I/O", "S", "D");
  for (const auto& v : variants) printf(" %21s |", (v + "  (S, D, RT)").c_str());
  printf("\n");
  bench::print_rule(32 + 24 * static_cast<int>(variants.size()));

  std::vector<double> size_ratio_sum(variants.size(), 0.0);
  std::vector<double> depth_ratio_sum(variants.size(), 0.0);
  int rows = 0;
  bool all_equivalent = true;

  for (const auto& benchmark : suite) {
    const uint32_t s0 = benchmark.baseline.count_live_gates();
    const uint32_t d0 = benchmark.baseline.depth();
    printf("%-12s %3u/%-3u | %8u %5u |", benchmark.name.c_str(),
           benchmark.baseline.num_pis(), benchmark.baseline.num_pos(), s0, d0);
    bench::BenchRecord record;
    record.name = benchmark.name;
    record.baseline = {{"size", static_cast<double>(s0)},
                       {"depth", static_cast<double>(d0)}};

    for (size_t vi = 0; vi < variants.size(); ++vi) {
      flow::FlowReport report;
      const auto optimized = flow::Pipeline::parse(variants[vi])
                                 .run(benchmark.baseline, session, &report);
      printf(" %8u %5u %6.2f |", report.size_after, report.depth_after,
             report.seconds);
      record.variants.emplace_back(
          variants[vi],
          std::vector<std::pair<std::string, double>>{
              {"size", static_cast<double>(report.size_after)},
              {"depth", static_cast<double>(report.depth_after)},
              {"seconds", report.seconds}});
      size_ratio_sum[vi] += static_cast<double>(report.size_after) / s0;
      depth_ratio_sum[vi] += static_cast<double>(report.depth_after) / d0;
      // Fast equivalence filter on every result (full SAT proofs of the
      // arithmetic miters are exercised in the test suite).
      if (!cec::random_simulation_equal(benchmark.baseline, optimized, 8, 123)) {
        all_equivalent = false;
      }
      fflush(stdout);
    }
    printf("\n");
    records.push_back(std::move(record));
    ++rows;
  }

  bench::print_rule(32 + 24 * static_cast<int>(variants.size()));
  printf("%-12s %6s | %8s %5s |", "Avg (new/old)", "", "", "");
  for (size_t vi = 0; vi < variants.size(); ++vi) {
    printf(" %8.2f %5.2f %6s |", size_ratio_sum[vi] / rows, depth_ratio_sum[vi] / rows,
           "");
  }
  printf("\n\n(paper: TF 0.96/1.09, T 1.02/1.12, TFD 1.00/1.00, TD 0.99/1.02, "
         "BF 0.92/1.14)\n");
  printf("random-simulation equivalence filter: %s\n",
         all_equivalent ? "all pass" : "FAILURE DETECTED");
  if (!json_path.empty()) {
    if (bench::write_bench_json(json_path, "table3_functional_hashing",
                                small ? "small" : "full", threads, records)) {
      printf("machine-readable results: %s\n", json_path.c_str());
    } else {
      fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return all_equivalent ? 0 : 1;
}
