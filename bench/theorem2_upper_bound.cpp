// Reproduces Theorem 2 of the paper: for n >= 4 the majority/inverter
// combinational complexity obeys C(n) <= 10*(2^(n-4)-1)+7.  The proof's
// Shannon construction f = <1 <0 !x f0> <0 x f1>> is executed on random
// functions of 5 and 6 variables (bottoming out at the exhaustive 4-variable
// database) and the measured sizes are checked against the bound.

#include <random>

#include "bench_util.hpp"
#include "exact/bounds.hpp"

using namespace mighty;

int main() {
  printf("Theorem 2: C(n) <= 10*(2^(n-4)-1)+7\n\n");
  printf("%3s %12s\n", "n", "bound");
  bench::print_rule(16);
  for (uint32_t n = 4; n <= 10; ++n) {
    printf("%3u %12lu\n", n, static_cast<unsigned long>(exact::theorem2_bound(n)));
  }

  const auto db = exact::Database::load_or_build(exact::default_database_path());
  std::mt19937_64 rng(2016);

  printf("\nconstructive witness (Shannon expansion to the 4-var database):\n");
  printf("%3s %8s | %10s %10s %10s | %s\n", "n", "samples", "max size", "avg size",
         "bound", "within");
  bench::print_rule(64);
  bool all_ok = true;
  for (uint32_t n = 4; n <= 6; ++n) {
    const int samples = n == 4 ? 500 : (n == 5 ? 200 : 50);
    uint32_t max_size = 0;
    uint64_t total = 0;
    for (int i = 0; i < samples; ++i) {
      const tt::TruthTable f(n, (static_cast<uint64_t>(rng()) << 32) | rng());
      const uint32_t size = exact::shannon_size(db, f);
      max_size = std::max(max_size, size);
      total += size;
      if (size > exact::theorem2_bound(n)) all_ok = false;
    }
    printf("%3u %8d | %10u %10.1f %10lu | %s\n", n, samples, max_size,
           static_cast<double>(total) / samples,
           static_cast<unsigned long>(exact::theorem2_bound(n)),
           max_size <= exact::theorem2_bound(n) ? "yes" : "NO");
  }

  printf("\nbase case: the exhaustive database's worst class has 7 gates "
         "(= bound for n = 4)\n");
  uint32_t worst = 0;
  for (const auto& entry : db.entries()) worst = std::max(worst, entry.chain.size());
  printf("measured worst class size: %u\n", worst);
  all_ok = all_ok && worst == 7;
  printf("\nTheorem 2 holds on all samples: %s\n", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
