// Cross-process warm start through the persisted 5-input oracle cache
// (ROADMAP "persist the oracle cache to disk" item).
//
// Two phases simulate two processes sharing one cache file:
//
//   * first  — a fresh Session attached to the cache file runs the corpus
//     batch; BatchRunner persists the 5-input cache once at the end.  (When
//     the file already exists — e.g. restored from a CI cache — the first
//     phase itself warm-starts from it; every criterion below still holds.)
//   * second — a process-equivalent cold start: a brand-new Session and
//     oracle whose only shared state is the file on disk, running the same
//     batch after loading it.
//
// Criteria, self-checked (the binary exits nonzero when any fails):
//
//   * the second phase's networks are bit-identical to the first's —
//     persistence changes cost, never results;
//   * the second phase performs zero SAT syntheses: every 5-input function
//     the script queries is already in the file (same script, same budget);
//   * the second phase's corpus-wide 5-cut reuse rate is >= the first's
//     in-process warm rate — a cold process with the file does at least as
//     well as PR 3's many-networks-one-session sharing.
//
// Flags: --corpus DIR (default: built-in generator corpus), --script S
// (default "TF5;size"), --threads n, --cache FILE (default
// "warmstart_5cut_cache.db" in the working directory; pre-existing contents
// are honored, not wiped), --json FILE (BENCH_warmstart.json for the
// tools/check_bench.py gate).

#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "flow/flow.hpp"
#include "io/io.hpp"

using namespace mighty;

namespace {

std::string to_blif(const mig::Mig& m) {
  std::ostringstream os;
  io::write_blif(os, m);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string corpus_dir = bench::string_flag(argc, argv, "--corpus");
  const std::string script = bench::string_flag(argc, argv, "--script", "TF5;size");
  const int threads = bench::int_flag(argc, argv, "--threads", 1);
  const std::string cache_path =
      bench::string_flag(argc, argv, "--cache", "warmstart_5cut_cache.db");
  const std::string json_path = bench::string_flag(argc, argv, "--json");
  const uint32_t width = static_cast<uint32_t>(threads > 0 ? threads : 1);

  printf("Warm start across processes: script \"%s\", %d thread%s, cache %s\n",
         script.c_str(), threads, threads == 1 ? "" : "s", cache_path.c_str());

  const auto corpus = corpus_dir.empty() ? flow::Corpus::generated_arithmetic()
                                         : flow::Corpus::from_directory(corpus_dir);
  printf("corpus: %zu networks (%s)\n\n", corpus.size(),
         corpus_dir.empty() ? "built-in generators" : corpus_dir.c_str());
  const auto pipeline = flow::Pipeline::parse(script);

  // --- first process: run the batch, persist the cache -----------------------
  flow::Session first;
  first.set_threads(width);
  first.set_cache_path(cache_path);
  const exact::Database& db = first.database();  // share the load below

  flow::BatchReport warm;
  const auto first_out = flow::BatchRunner(first).run(corpus, pipeline, &warm);
  fputs(warm.summary().c_str(), stdout);
  if (warm.failures() > 0) {
    fprintf(stderr, "first batch failed on %zu network(s)\n", warm.failures());
    return 1;
  }

  // --- second process: only the file survives --------------------------------
  flow::SessionParams params;
  params.threads = width;
  params.oracle_cache_path = cache_path;
  flow::Session second(exact::Database(db), std::move(params));
  const auto loaded = second.load_cache();
  if (loaded.status != opt::ReplacementOracle::CacheLoadStatus::loaded) {
    fprintf(stderr, "persisted cache %s did not load back\n", cache_path.c_str());
    return 1;
  }
  printf("\nsecond process: loaded %zu cache entries from %s\n", loaded.entries,
         cache_path.c_str());

  flow::BatchReport persisted;
  const auto second_out = flow::BatchRunner(second).run(corpus, pipeline, &persisted);
  if (persisted.failures() > 0) {
    fprintf(stderr, "second batch failed on %zu network(s)\n", persisted.failures());
    return 1;
  }

  // --- criteria ---------------------------------------------------------------
  bool identical = true;
  for (size_t i = 0; i < corpus.size(); ++i) {
    if (to_blif(first_out[i]) != to_blif(second_out[i])) {
      fprintf(stderr, "results diverge on %s\n", corpus[i].name.c_str());
      identical = false;
    }
  }
  const double warm_rate = warm.cache5_reuse_rate();
  const double persisted_rate = persisted.cache5_reuse_rate();

  printf("\n%-32s %12s %12s\n", "", "in-process", "persisted");
  printf("%-32s %12.2f %12.2f\n", "wall time [s]", warm.seconds, persisted.seconds);
  printf("%-32s %12llu %12llu\n", "5-input syntheses",
         static_cast<unsigned long long>(warm.oracle_synthesized),
         static_cast<unsigned long long>(persisted.oracle_synthesized));
  printf("%-32s %11.1f%% %11.1f%%\n", "5-cut cache reuse", 100.0 * warm_rate,
         100.0 * persisted_rate);
  printf("results: %s\n", identical ? "bit-identical across processes" : "MISMATCH");

  const bool no_resynthesis = persisted.oracle_synthesized == 0;
  if (!no_resynthesis) {
    fprintf(stderr,
            "cold process re-synthesized %llu cached function(s) despite the "
            "persisted cache\n",
            static_cast<unsigned long long>(persisted.oracle_synthesized));
  }
  const bool reuse_holds = persisted_rate + 1e-9 >= warm_rate;
  if (!reuse_holds) {
    fprintf(stderr, "persisted reuse %.4f fell below the in-process warm rate %.4f\n",
            persisted_rate, warm_rate);
  }

  if (!json_path.empty()) {
    std::vector<bench::BenchRecord> records;
    bench::BenchRecord record;
    record.name = "warmstart";
    record.baseline = {{"networks", static_cast<double>(corpus.size())},
                       {"size", static_cast<double>(warm.size_before)}};
    record.variants.emplace_back(
        "warm", std::vector<std::pair<std::string, double>>{
                    {"size", static_cast<double>(warm.size_after)},
                    {"cache5_reuse_rate", warm_rate},
                    {"seconds", warm.seconds}});
    record.variants.emplace_back(
        "persisted", std::vector<std::pair<std::string, double>>{
                         {"size", static_cast<double>(persisted.size_after)},
                         {"cache5_reuse_rate", persisted_rate},
                         {"syntheses", static_cast<double>(persisted.oracle_synthesized)},
                         {"seconds", persisted.seconds}});
    records.push_back(std::move(record));
    if (bench::write_bench_json(json_path, "warm_start",
                                corpus_dir.empty() ? "generated" : "directory",
                                threads, records)) {
      printf("machine-readable results: %s\n", json_path.c_str());
    } else {
      fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return identical && no_resynthesis && reuse_holds ? 0 : 1;
}
