// Reproduces Fig. 2 of the paper: the optimal MIG for the symmetric function
// S_{0,2}(x1,x2,x3,x4) -- the representative of the single most expensive NPN
// class, requiring 7 majority nodes.
//
// S_{0,2} is true iff the input weight is 0 or 2; it is NPN-equivalent to
// (x1 ^ x2 ^ x3 ^ x4) | (x1 x2 x3 x4).

#include "bench_util.hpp"
#include "exact/exact_synthesis.hpp"
#include "npn/npn.hpp"
#include "tt/truth_table.hpp"

using namespace mighty;

int main() {
  printf("Fig. 2: optimal MIG for S_{0,2}(x1, x2, x3, x4)\n\n");

  // Build S_{0,2}: bit set iff popcount(assignment) is 0 or 2.
  tt::TruthTable s02(4);
  for (uint32_t assignment = 0; assignment < 16; ++assignment) {
    const int weight = __builtin_popcount(assignment);
    s02.set_bit(assignment, weight == 0 || weight == 2);
  }
  printf("truth table: 0x%s\n", s02.to_hex().c_str());

  // Sanity: NPN-equivalent to parity-or-all-ones as the paper states.
  const auto x1 = tt::TruthTable::projection(4, 0);
  const auto x2 = tt::TruthTable::projection(4, 1);
  const auto x3 = tt::TruthTable::projection(4, 2);
  const auto x4 = tt::TruthTable::projection(4, 3);
  const auto alt = (x1 ^ x2 ^ x3 ^ x4) | (x1 & x2 & x3 & x4);
  const bool same_class =
      npn::canonize(s02).representative == npn::canonize(alt).representative;
  printf("NPN-equivalent to (x1^x2^x3^x4) | x1x2x3x4: %s\n\n",
         same_class ? "yes" : "NO");

  bench::Stopwatch sw;
  const auto result = exact::synthesize_minimum_mig(s02);
  if (result.status != exact::SynthesisStatus::success) {
    printf("synthesis failed\n");
    return 1;
  }
  printf("exact synthesis: %u majority nodes in %.2fs (paper: 7 nodes)\n",
         result.chain.size(), sw.seconds());
  printf("depth: %u\n\n", result.chain.depth());

  printf("chain (step = <f1 f2 f3>, refs: 0=const, 1..4=x1..x4, 5+=steps, ~=INV):\n");
  for (uint32_t i = 0; i < result.chain.size(); ++i) {
    const auto& step = result.chain.steps[i];
    printf("  step %u = <", 5 + i);
    for (int c = 0; c < 3; ++c) {
      const auto l = step.fanin[static_cast<size_t>(c)];
      printf("%s%u%s", exact::ref_complemented(l) ? "~" : "", exact::ref_of(l),
             c < 2 ? " " : "");
    }
    printf(">\n");
  }
  printf("  output = %s%u\n\n", exact::ref_complemented(result.chain.output) ? "~" : "",
         exact::ref_of(result.chain.output));

  const bool verified = result.chain.simulate() == s02;
  printf("chain verifies: %s\n", verified ? "yes" : "NO");
  const bool match = result.chain.size() == 7 && verified && same_class;
  printf("matches paper Fig. 2 / Table I: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
