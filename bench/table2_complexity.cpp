// Reproduces Table II of the paper: complexity of 4-variable MIGs.  Three
// distributions over the 222 NPN classes:
//   C(f) combinational complexity (minimum gate count; from Table I's DB),
//   L(f) minimum formula length (function-space dynamic programming),
//   D(f) minimum depth (depth-constrained exact synthesis).
//
// Paper reference (classes / functions):
//   C: 2/10 2/80 5/640 18/3300 42/10352 117/40064 35/11058 1/32
//   L: 2/10 2/80 5/640 18/3300 37/9312 84/28680 63/22568 7/832 2/80 2/34
//   D: 2/10 2/80 48/10260 169/55184 1/2

#include "bench_util.hpp"
#include "exact/complexity.hpp"

using namespace mighty;

namespace {

void print_rows(const char* measure, const std::vector<exact::ComplexityRow>& rows) {
  printf("%-5s %8s %10s\n", measure, "Classes", "Functions");
  bench::print_rule(26);
  uint32_t classes = 0;
  uint64_t functions = 0;
  for (const auto& row : rows) {
    printf("%-5u %8u %10lu\n", row.value, row.classes,
           static_cast<unsigned long>(row.functions));
    classes += row.classes;
    functions += row.functions;
  }
  bench::print_rule(26);
  printf("%-5s %8u %10lu\n\n", "Sum", classes, static_cast<unsigned long>(functions));
}

}  // namespace

int main() {
  printf("Table II: complexity of 4-variable MIGs\n\n");
  const auto db = exact::Database::load_or_build(exact::default_database_path());

  bench::Stopwatch sw;
  const auto c_rows = exact::size_distribution(db);
  printf("C(f) computed in %.2fs (database cached)\n", sw.seconds());
  print_rows("C(f)", c_rows);

  sw.reset();
  const auto lengths = exact::compute_formula_lengths(4);
  const auto l_rows = exact::length_distribution(lengths);
  printf("L(f) computed in %.2fs (function-space DP over 65536 functions)\n",
         sw.seconds());
  print_rows("L(f)", l_rows);

  sw.reset();
  const auto d_rows = exact::depth_distribution();
  printf("D(f) computed in %.2fs (depth-constrained exact synthesis per class)\n",
         sw.seconds());
  print_rows("D(f)", d_rows);

  const bool c_ok = c_rows.size() == 8 && c_rows[7].classes == 1;
  const bool l_ok = l_rows.size() == 10 && l_rows[9].functions == 34;
  const bool d_ok = d_rows.size() == 5 && d_rows[4].classes == 1 &&
                    d_rows[4].functions == 2 && d_rows[2].classes == 48 &&
                    d_rows[3].classes == 169;
  printf("matches paper Table II: C %s, L %s, D %s\n", c_ok ? "yes" : "NO",
         l_ok ? "yes" : "NO", d_ok ? "yes" : "NO");
  return (c_ok && l_ok && d_ok) ? 0 : 1;
}
