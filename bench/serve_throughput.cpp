// Daemon throughput over the wire (ROADMAP "optimization as a service").
//
// One in-process daemon — api::LocalService behind serve::Server on a unix
// socket — serves the generator corpus to RemoteService clients, in two
// phases:
//
//   * cold — a single client submits every corpus network once; the daemon's
//     shared oracle pays the 5-input synthesis cost here.
//   * warm — `--clients` concurrent connections each resubmit the identical
//     corpus; everything the script queries is already cached, so this
//     phase measures protocol + scheduling overhead, not SAT.
//
// Criteria, self-checked (the binary exits nonzero when any fails):
//
//   * no job fails in either phase;
//   * every warm artifact is bit-identical to its cold counterpart — the
//     transport and job queue change cost, never results;
//   * the warm phase performs zero SAT syntheses (the e2e reuse guarantee
//     serve_test proves once, measured here at throughput scale);
//   * the warm 5-cut reuse rate is 1.0: every oracle query hits the cache.
//
// Flags: --script S (default "TF5;size"), --clients n (default 4),
// --workers n (daemon job workers, default 2), --socket PATH (default a
// pid-unique /tmp path), --json FILE (BENCH_serve.json for the
// tools/check_bench.py gate).

#include <unistd.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "bench_util.hpp"
#include "flow/corpus.hpp"
#include "io/io.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace mighty;

namespace {

std::string to_blif(const mig::Mig& m) {
  std::ostringstream os;
  io::write_blif(os, m);
  return os.str();
}

struct PhaseOutcome {
  std::vector<std::string> artifacts;  ///< optimized BLIF per job, in order
  uint64_t failures = 0;
  uint64_t size_after = 0;
  double seconds = 0;
};

/// Submits every request up front, then fetches results in order — the same
/// two-beat pattern the shell's `batch` command uses, so the daemon's queue
/// (not client pacing) sets the concurrency.
PhaseOutcome run_client(const std::string& socket_path,
                        const std::vector<api::JobRequest>& requests) {
  PhaseOutcome outcome;
  serve::RemoteService client(socket_path);
  std::vector<api::JobId> ids;
  ids.reserve(requests.size());
  for (const auto& request : requests) ids.push_back(client.submit(request));
  for (const api::JobId id : ids) {
    api::JobResult result = client.result(id);
    if (result.code != api::ErrorCode::ok) {
      fprintf(stderr, "job failed [%s]: %s\n", api::error_code_name(result.code),
              result.message.c_str());
      ++outcome.failures;
      outcome.artifacts.emplace_back();
      continue;
    }
    outcome.size_after += result.report.size_after;
    outcome.artifacts.push_back(std::move(result.network_blif));
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string script = bench::string_flag(argc, argv, "--script", "TF5;size");
  const int clients = bench::int_flag(argc, argv, "--clients", 4);
  const int workers = bench::int_flag(argc, argv, "--workers", 2);
  const std::string socket_path = bench::string_flag(
      argc, argv, "--socket",
      "/tmp/mighty_bench_serve_" + std::to_string(::getpid()) + ".sock");
  const std::string json_path = bench::string_flag(argc, argv, "--json");

  const auto corpus = flow::Corpus::generated_arithmetic();
  std::vector<api::JobRequest> requests;
  requests.reserve(corpus.size());
  for (const auto& entry : corpus) {
    api::JobRequest request;
    request.name = entry.name;
    request.script = script;
    request.network_blif = to_blif(entry.mig);
    requests.push_back(std::move(request));
  }

  printf("Daemon throughput: script \"%s\", %d client%s, %d worker%s, %zu networks\n",
         script.c_str(), clients, clients == 1 ? "" : "s", workers,
         workers == 1 ? "" : "s", corpus.size());

  api::LocalService::Params params;
  params.job_workers = static_cast<uint32_t>(workers > 0 ? workers : 1);
  api::LocalService service(params);
  serve::ServerParams server_params;
  server_params.socket_path = socket_path;
  serve::Server server(service, server_params);

  // --- cold: one client pays the synthesis cost -------------------------------
  bench::Stopwatch cold_watch;
  PhaseOutcome cold = run_client(socket_path, requests);
  cold.seconds = cold_watch.seconds();
  const api::ServiceStats after_cold = service.stats();
  printf("cold: %zu jobs, %llu syntheses, %.2fs\n", requests.size(),
         static_cast<unsigned long long>(after_cold.oracle_synthesized),
         cold.seconds);

  // --- warm: concurrent clients, fully cached oracle --------------------------
  const size_t fleet = static_cast<size_t>(clients > 0 ? clients : 1);
  std::vector<PhaseOutcome> outcomes(fleet);
  bench::Stopwatch warm_watch;
  {
    std::vector<std::thread> threads;
    threads.reserve(fleet);
    for (size_t c = 0; c < fleet; ++c) {
      threads.emplace_back([&, c] { outcomes[c] = run_client(socket_path, requests); });
    }
    for (auto& thread : threads) thread.join();
  }
  const double warm_seconds = warm_watch.seconds();
  const api::ServiceStats after_warm = service.stats();

  // The owner stops the service before the server: the reverse deadlocks on
  // connections still blocked in result().
  service.shutdown();
  server.stop();

  // --- criteria ---------------------------------------------------------------
  PhaseOutcome warm;
  warm.seconds = warm_seconds;
  bool identical = cold.failures == 0;
  for (const auto& outcome : outcomes) {
    warm.failures += outcome.failures;
    warm.size_after += outcome.size_after;
    for (size_t i = 0; i < outcome.artifacts.size(); ++i) {
      if (outcome.artifacts[i] != cold.artifacts[i]) {
        fprintf(stderr, "warm result diverges from cold on %s\n",
                corpus[i].name.c_str());
        identical = false;
      }
    }
  }
  const uint64_t warm_jobs = fleet * requests.size();
  const uint64_t resyntheses =
      after_warm.oracle_synthesized - after_cold.oracle_synthesized;
  const uint64_t warm_queries = after_warm.oracle_queries - after_cold.oracle_queries;
  const uint64_t warm_hits =
      after_warm.oracle_cache5_hits - after_cold.oracle_cache5_hits;
  const double reuse_rate =
      warm_queries == 0 ? 0.0
                        : static_cast<double>(warm_hits) / static_cast<double>(warm_queries);

  printf("warm: %llu jobs over %zu connections, %llu syntheses, %.1f%% 5-cut "
         "reuse, %.2fs\n",
         static_cast<unsigned long long>(warm_jobs), fleet,
         static_cast<unsigned long long>(resyntheses), 100.0 * reuse_rate,
         warm.seconds);

  const bool no_failures = cold.failures == 0 && warm.failures == 0;
  if (!no_failures) {
    fprintf(stderr, "%llu job(s) failed\n",
            static_cast<unsigned long long>(cold.failures + warm.failures));
  }
  if (!identical) fprintf(stderr, "warm artifacts are not bit-identical to cold\n");
  const bool no_resynthesis = resyntheses == 0;
  if (!no_resynthesis) {
    fprintf(stderr,
            "warm phase re-synthesized %llu function(s) despite the warm oracle\n",
            static_cast<unsigned long long>(resyntheses));
  }

  if (!json_path.empty()) {
    std::vector<bench::BenchRecord> records;
    bench::BenchRecord record;
    record.name = "serve";
    record.baseline = {{"networks", static_cast<double>(corpus.size())},
                       {"clients", static_cast<double>(fleet)},
                       {"workers", static_cast<double>(params.job_workers)}};
    record.variants.emplace_back(
        "cold", std::vector<std::pair<std::string, double>>{
                    {"size", static_cast<double>(cold.size_after)},
                    {"failures", static_cast<double>(cold.failures)},
                    {"seconds", cold.seconds}});
    record.variants.emplace_back(
        "warm", std::vector<std::pair<std::string, double>>{
                    {"size", static_cast<double>(warm.size_after)},
                    {"failures", static_cast<double>(warm.failures)},
                    {"syntheses", static_cast<double>(resyntheses)},
                    {"cache5_reuse_rate", reuse_rate},
                    {"seconds", warm.seconds}});
    records.push_back(std::move(record));
    if (bench::write_bench_json(json_path, "serve_throughput", "generated",
                                static_cast<int>(fleet), records)) {
      printf("machine-readable results: %s\n", json_path.c_str());
    } else {
      fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return no_failures && identical && no_resynthesis ? 0 : 1;
}
