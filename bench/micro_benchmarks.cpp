// Micro-benchmarks (google-benchmark) for the kernels the optimizer spends
// its time in: structural hashing, cut enumeration, cut-function simulation,
// exact NPN canonization, database lookup and word-parallel simulation.

#include <benchmark/benchmark.h>

#include <random>

#include "exact/database.hpp"
#include "gen/arith.hpp"
#include "mig/cuts.hpp"
#include "mig/simulation.hpp"
#include "npn/npn.hpp"

using namespace mighty;

namespace {

const mig::Mig& multiplier16() {
  static const mig::Mig m = gen::make_multiplier_n(16);
  return m;
}

const exact::Database& database() {
  static const exact::Database db =
      exact::Database::load_or_build(exact::default_database_path());
  return db;
}

void BM_CreateMajStrash(benchmark::State& state) {
  for (auto _ : state) {
    mig::Mig m;
    const auto pis = m.create_pis(8);
    std::mt19937 rng(1);
    mig::Signal last = pis[0];
    for (int i = 0; i < 1000; ++i) {
      const auto a = pis[rng() % 8] ^ ((rng() & 1) != 0);
      const auto b = pis[rng() % 8] ^ ((rng() & 1) != 0);
      last = m.create_maj(a, b, last);
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CreateMajStrash);

void BM_CutEnumeration(benchmark::State& state) {
  const auto& m = multiplier16();
  for (auto _ : state) {
    const auto sets = cuts::enumerate_cuts(m, {.cut_size = 4});
    benchmark::DoNotOptimize(sets);
  }
  state.SetItemsProcessed(state.iterations() * m.num_gates());
}
BENCHMARK(BM_CutEnumeration);

void BM_CutFunction(benchmark::State& state) {
  const auto& m = multiplier16();
  const auto sets = cuts::enumerate_cuts(m, {.cut_size = 4});
  // Pick a node in the middle with nontrivial cuts.
  const uint32_t node = m.num_pis() + m.num_gates() / 2;
  const auto& cut = sets[node].front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mig::simulate_cut(m, node, cut.leaf_vector()));
  }
}
BENCHMARK(BM_CutFunction);

void BM_NpnCanonize(benchmark::State& state) {
  std::mt19937 rng(7);
  for (auto _ : state) {
    const tt::TruthTable f(4, rng());
    benchmark::DoNotOptimize(npn::canonize(f));
  }
}
BENCHMARK(BM_NpnCanonize);

void BM_DatabaseLookupCached(benchmark::State& state) {
  const auto& db = database();
  std::mt19937 rng(8);
  // Warm the cache with the queried functions.
  std::vector<tt::TruthTable> queries;
  for (int i = 0; i < 256; ++i) queries.emplace_back(4, rng());
  for (const auto& q : queries) db.lookup(q);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.lookup(queries[i++ & 255]));
  }
}
BENCHMARK(BM_DatabaseLookupCached);

void BM_WordSimulation(benchmark::State& state) {
  const auto& m = multiplier16();
  std::mt19937_64 rng(9);
  std::vector<uint64_t> words(m.num_pis());
  for (auto& w : words) w = rng();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mig::simulate_words(m, words));
  }
  state.SetItemsProcessed(state.iterations() * m.num_gates() * 64);
}
BENCHMARK(BM_WordSimulation);

void BM_ExactSynthesisXor4(benchmark::State& state) {
  const tt::TruthTable parity(4, 0x6996);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact::synthesize_minimum_mig(parity));
  }
}
BENCHMARK(BM_ExactSynthesisXor4);

}  // namespace

BENCHMARK_MAIN();
