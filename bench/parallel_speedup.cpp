// Measures the parallel flow engine on the acceptance workload: the
// generated 32-bit multiplier under the "(TF;BFD;size)*" convergence
// pipeline, run once per thread count.  Results must be bit-identical
// across thread counts (verified here via size/depth and random
// simulation); wall time should scale with the cores available.
//
// Flags: --threads n   parallel leg width (default 4)
//        --small       8-bit multiplier (quick smoke)
//        --require x   exit 1 unless speedup >= x (CI gates use this only
//                      on machines with dedicated cores; default: report)

#include <cstdlib>

#include "bench_util.hpp"
#include "cec/cec.hpp"
#include "flow/flow.hpp"
#include "gen/arith.hpp"
#include "mig/algebra/algebra.hpp"
#include "suite_common.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const int threads = bench::int_flag(argc, argv, "--threads", 4);
  const bool small = bench::has_flag(argc, argv, "--small");
  const double required = std::atof(bench::string_flag(argc, argv, "--require", "0").c_str());
  const char* script = "(TF;BFD;size)*";

  printf("parallel speedup: %s on the %d-bit multiplier, threads 1 vs %d\n",
         script, small ? 8 : 32, threads);
  const auto m = algebra::depth_optimize(gen::make_multiplier_n(small ? 8 : 32));
  printf("input: %u gates, depth %u\n", m.count_live_gates(), m.depth());

  flow::Session session;
  session.database();  // load outside the timed region
  const auto pipeline = flow::Pipeline::parse(script);

  // Warm-up run fills the oracle's lookup memos, so both timed legs see the
  // same cache state and the comparison isolates the execution engine.
  pipeline.run(m, session);

  flow::FlowReport sequential, parallel;
  bench::Stopwatch watch;
  const auto out1 = pipeline.run(m, session, &sequential);
  const double t1 = watch.seconds();
  session.set_threads(static_cast<uint32_t>(threads > 0 ? threads : 1));
  watch.reset();
  const auto outn = pipeline.run(m, session, &parallel);
  const double tn = watch.seconds();

  printf("threads=1: %u gates, depth %u, %.3fs\n", sequential.size_after,
         sequential.depth_after, t1);
  printf("threads=%d: %u gates, depth %u, %.3fs\n", threads, parallel.size_after,
         parallel.depth_after, tn);
  const double speedup = tn > 0 ? t1 / tn : 0.0;
  printf("speedup: %.2fx\n", speedup);

  const bool identical = sequential.size_after == parallel.size_after &&
                         sequential.depth_after == parallel.depth_after &&
                         sequential.passes.size() == parallel.passes.size();
  const bool equivalent = cec::random_simulation_equal(out1, outn, 16, 0xCAFE);
  printf("deterministic: %s\n", identical && equivalent ? "yes (identical results)"
                                                        : "NO — BUG");
  if (!identical || !equivalent) return 1;
  if (required > 0 && speedup < required) {
    printf("FAIL: speedup %.2fx below required %.2fx\n", speedup, required);
    return 1;
  }
  return 0;
}
