// Reproduces Table I of the paper: optimal MIGs for all 222 NPN classes of
// 4-variable functions, partitioned by the number of majority nodes, with the
// CPU time spent by exact synthesis.
//
// Paper reference values (Z3-based, 2016 hardware):
//   nodes:    0    1    2     3      4      5      6     7
//   classes:  2    2    5    18     42    117     35     1
//   funcs:   10   80  640  3300  10352  40064  11058    32
//
// Run with --cached to load the on-disk database instead of re-synthesizing
// (the distribution is then reported without fresh timings).

#include <cstring>
#include <map>

#include "bench_util.hpp"
#include "exact/database.hpp"
#include "npn/npn.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const bool cached = bench::has_flag(argc, argv, "--cached");

  printf("Table I: optimal MIGs for all 4-variable NPN classes\n");
  printf("(exact synthesis via bit-blasted SAT; the paper used Z3 on SMT(BV))\n\n");

  struct Row {
    uint32_t classes = 0;
    uint64_t functions = 0;
    double time = 0.0;
  };
  std::map<uint32_t, Row> rows;

  exact::Database db = [&] {
    if (cached) {
      if (auto loaded = exact::Database::load(exact::default_database_path())) {
        return std::move(*loaded);
      }
      printf("note: no cached database found, synthesizing fresh\n");
    }
    return exact::Database::build();
  }();
  if (!cached) db.save(exact::default_database_path());

  double total_time = 0.0;
  uint32_t total_classes = 0;
  uint64_t total_functions = 0;
  for (const auto& entry : db.entries()) {
    Row& row = rows[entry.chain.size()];
    ++row.classes;
    row.functions += npn::orbit_size(entry.representative);
    row.time += entry.build_seconds;
  }

  printf("%-14s %8s %10s %10s %10s\n", "Majority nodes", "Classes", "Functions",
         "Time", "Avg. time");
  bench::print_rule(56);
  for (const auto& [size, row] : rows) {
    printf("%-14u %8u %10lu %10.2f %10.2f\n", size, row.classes,
           static_cast<unsigned long>(row.functions), row.time,
           row.time / row.classes);
    total_time += row.time;
    total_classes += row.classes;
    total_functions += row.functions;
  }
  bench::print_rule(56);
  printf("%-14s %8u %10lu %10.2f\n", "Total", total_classes,
         static_cast<unsigned long>(total_functions), total_time);

  const bool distribution_ok =
      rows[0].classes == 2 && rows[1].classes == 2 && rows[2].classes == 5 &&
      rows[3].classes == 18 && rows[4].classes == 42 && rows[5].classes == 117 &&
      rows[6].classes == 35 && rows[7].classes == 1;
  printf("\ndistribution matches paper Table I: %s\n", distribution_ok ? "yes" : "NO");
  return distribution_ok ? 0 : 1;
}
