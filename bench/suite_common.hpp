#pragma once

#include <string>
#include <vector>

#include "gen/arith.hpp"
#include "mig/algebra/algebra.hpp"

/// Shared pipeline of the Table III / Table IV benches: generate the eight
/// arithmetic circuits and produce the "heavily optimized" starting points by
/// algebraic depth optimization, mirroring the paper's setting ("Most of the
/// best results were obtained using the depth reduction proposed in [3] and
/// [4]").

namespace mighty::bench {

struct PreparedBenchmark {
  std::string name;
  mig::Mig baseline;  ///< depth-optimized starting point for the optimizers
};

inline std::vector<PreparedBenchmark> prepare_suite(bool small) {
  std::vector<std::pair<std::string, mig::Mig>> raw;
  if (small) {
    raw.emplace_back("Adder", gen::make_adder_n(32));
    raw.emplace_back("Divisor", gen::make_divisor_n(16));
    raw.emplace_back("Log2", gen::make_log2_n(8));
    raw.emplace_back("Max", gen::make_max_n(32));
    raw.emplace_back("Multiplier", gen::make_multiplier_n(16));
    raw.emplace_back("Sine", gen::make_sine_n(12));
    raw.emplace_back("Square-root", gen::make_sqrt_n(16));
    raw.emplace_back("Square", gen::make_square_n(24));
  } else {
    for (auto& b : gen::epfl_arithmetic_suite()) {
      raw.emplace_back(b.name, std::move(b.mig));
    }
  }
  std::vector<PreparedBenchmark> prepared;
  for (auto& [name, m] : raw) {
    PreparedBenchmark p;
    p.name = name;
    p.baseline = algebra::depth_optimize(m);
    prepared.push_back(std::move(p));
  }
  return prepared;
}

}  // namespace mighty::bench
