// Ablation D: iterated functional hashing.  The paper applies the algorithm
// once and notes that "running it several times or combining it with other
// optimization or reshaping algorithms will likely lead to further
// improvements" (Sec. V-C).  This bench measures that with flow::Pipeline
// combinators: a variant iterated to its fixpoint, and rounds of BF
// interleaved with the algebraic size optimization.

#include "bench_util.hpp"
#include "flow/flow.hpp"
#include "suite_common.hpp"

using namespace mighty;

namespace {

void print_trajectory(const flow::FlowReport& report) {
  printf("  %5s | %-10s %8s %6s %8s\n", "pass", "name", "size", "depth", "time[s]");
  for (size_t i = 0; i < report.passes.size(); ++i) {
    const auto& p = report.passes[i];
    printf("  %5zu | %-10s %8u %6u %8.2f\n", i + 1, p.name.c_str(), p.size_after,
           p.depth_after, p.seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  printf("Ablation: iterating the functional-hashing pass\n\n");

  flow::Session session;
  session.database();  // load (or build) outside the reported timings
  const auto baseline = flow::Pipeline().depth_opt().run(
      full ? gen::make_sqrt_n(64) : gen::make_sqrt_n(16), session);
  printf("input: square-root, %u gates, depth %u\n\n", baseline.count_live_gates(),
         baseline.depth());

  for (const auto& variant : {"TF", "BF"}) {
    printf("variant %s, iterated to convergence (max 5 passes):\n", variant);
    const auto pipeline =
        flow::Pipeline().rewrite(variant).until_convergence(/*max_rounds=*/5);
    flow::FlowReport report;
    pipeline.run(baseline, session, &report);
    print_trajectory(report);
    printf("  %zu pass(es) until fixpoint\n\n", report.passes.size());
  }

  printf("alternating BF with algebraic size optimization (max 4 rounds):\n");
  const auto alternating =
      flow::Pipeline::interleave({flow::Pipeline().rewrite("BF"),
                                  flow::Pipeline().size_opt()})
          .until_convergence(/*max_rounds=*/4);
  flow::FlowReport report;
  alternating.run(baseline, session, &report);
  print_trajectory(report);
  printf("  script form: %s\n", alternating.to_string().c_str());

  printf("\nexpected shape: most of the gain lands in pass 1; later passes add\n"
         "diminishing returns, supporting the paper's single-pass protocol.\n");
  return 0;
}
