// Ablation D: iterated functional hashing.  The paper applies the algorithm
// once and notes that "running it several times or combining it with other
// optimization or reshaping algorithms will likely lead to further
// improvements" (Sec. V-C).  This bench measures that: repeated passes of the
// same variant, and alternating passes with the algebraic size optimization.

#include "bench_util.hpp"
#include "mig/algebra/algebra.hpp"
#include "opt/rewrite.hpp"
#include "suite_common.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  printf("Ablation: iterating the functional-hashing pass\n\n");

  const auto db = exact::Database::load_or_build(exact::default_database_path());
  auto baseline = algebra::depth_optimize(
      full ? gen::make_sqrt_n(64) : gen::make_sqrt_n(16));
  printf("input: square-root, %u gates, depth %u\n\n", baseline.count_live_gates(),
         baseline.depth());

  for (const auto& variant : {"TF", "BF"}) {
    printf("variant %s:\n", variant);
    printf("  %5s | %8s %6s %8s\n", "pass", "size", "depth", "time[s]");
    mig::Mig current = baseline;
    uint32_t previous = current.count_live_gates();
    for (int pass = 1; pass <= 5; ++pass) {
      opt::RewriteStats stats;
      current = opt::functional_hashing(current, db, opt::variant_params(variant),
                                        &stats);
      printf("  %5d | %8u %6u %8.2f\n", pass, stats.size_after, stats.depth_after,
             stats.seconds);
      if (stats.size_after == previous) {
        printf("  fixpoint reached\n");
        break;
      }
      previous = stats.size_after;
    }
    printf("\n");
  }

  printf("alternating BF with algebraic size optimization:\n");
  printf("  %5s | %8s %6s\n", "round", "size", "depth");
  mig::Mig current = baseline;
  uint32_t previous = current.count_live_gates();
  for (int round = 1; round <= 4; ++round) {
    current = opt::functional_hashing(current, db, opt::variant_params("BF"));
    current = algebra::size_optimize(current);
    printf("  %5d | %8u %6u\n", round, current.count_live_gates(), current.depth());
    if (current.count_live_gates() == previous) break;
    previous = current.count_live_gates();
  }
  printf("\nexpected shape: most of the gain lands in pass 1; later passes add\n"
         "diminishing returns, supporting the paper's single-pass protocol.\n");
  return 0;
}
