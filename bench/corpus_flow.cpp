// Corpus-level batch execution: one Pipeline over many networks, one Session,
// replacement oracle shared corpus-wide (ROADMAP "Batch workloads" item).
//
// Two configurations run the same script over the same corpus:
//
//   * warm — flow::BatchRunner, many networks in flight on the session pool,
//     the 5-input synthesis cache serving every network;
//   * cold — one fresh Session per network, the pre-batch baseline: every
//     network pays its own oracle warm-up.
//
// Both produce bit-identical networks (oracle answers are a pure function of
// the queried truth table); what changes is the work: the warm corpus-wide
// 5-cut cache reuse rate must be strictly higher than the mean of the cold
// sessions' rates — synthesis one network already paid is a lookup for the
// next.  The binary exits nonzero when that inequality fails.
//
// Flags: --corpus DIR (load every *.blif of DIR; default: the built-in
// generator corpus, which `tools/make_corpus.cmake` exports to
// build/data/corpus), --script S (default "TF5;size"), --threads n,
// --json FILE (BENCH_corpus.json for the tools/check_bench.py gate).

#include <cmath>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cec/cec.hpp"
#include "flow/flow.hpp"

using namespace mighty;

int main(int argc, char** argv) {
  const std::string corpus_dir = bench::string_flag(argc, argv, "--corpus");
  const std::string script = bench::string_flag(argc, argv, "--script", "TF5;size");
  const int threads = bench::int_flag(argc, argv, "--threads", 1);
  const std::string json_path = bench::string_flag(argc, argv, "--json");

  printf("Corpus batch execution: script \"%s\", %d thread%s\n", script.c_str(),
         threads, threads == 1 ? "" : "s");

  const auto corpus = corpus_dir.empty() ? flow::Corpus::generated_arithmetic()
                                         : flow::Corpus::from_directory(corpus_dir);
  printf("corpus: %zu networks (%s)\n\n", corpus.size(),
         corpus_dir.empty() ? "built-in generators" : corpus_dir.c_str());
  const auto pipeline = flow::Pipeline::parse(script);

  // Load the database once; every session below shares the same contents.
  flow::Session warm_session;
  warm_session.set_threads(static_cast<uint32_t>(threads > 0 ? threads : 1));
  const exact::Database& db = warm_session.database();

  // --- warm: one batch, oracle shared corpus-wide ----------------------------
  flow::BatchReport warm;
  const auto optimized = flow::BatchRunner(warm_session).run(corpus, pipeline, &warm);
  fputs(warm.summary().c_str(), stdout);
  if (warm.failures() > 0) {
    fprintf(stderr, "batch run failed on %zu network(s)\n", warm.failures());
    return 1;
  }

  // --- cold: a fresh session (and oracle) per network ------------------------
  std::vector<flow::FlowReport> cold(corpus.size());
  double cold_seconds = 0.0;
  bool all_equivalent = true;
  for (size_t i = 0; i < corpus.size(); ++i) {
    flow::SessionParams params;
    params.threads = static_cast<uint32_t>(threads > 0 ? threads : 1);
    flow::Session session(exact::Database(db), std::move(params));
    const auto out = pipeline.run(corpus[i].mig, session, &cold[i]);
    cold_seconds += cold[i].seconds;
    // The warm and cold runs must agree network for network — sharing the
    // oracle changes cost, never results.  Fast simulation filter here; the
    // structural proof lives in tests/batch_flow_test.cpp.
    if (!cec::random_simulation_equal(out, optimized[i], 8, 0xC0FFEE + i)) {
      all_equivalent = false;
    }
  }

  // --- comparison ------------------------------------------------------------
  // The number warmth moves: the fraction of 5-input lookups served from
  // cache instead of the SAT solver.  (answered/queries is a pure function
  // of the queried truth tables, identical warm or cold.)
  double cold_rate_sum = 0.0;
  uint64_t cold_lookups = 0, cold_synthesized = 0;
  for (const auto& report : cold) {
    cold_rate_sum += report.cache5_reuse_rate();
    cold_lookups += report.oracle_cache5_hits + report.oracle_synthesized;
    cold_synthesized += report.oracle_synthesized;
  }
  const double cold_mean_rate = corpus.empty() ? 1.0 : cold_rate_sum / corpus.size();
  const double warm_rate = warm.cache5_reuse_rate();

  printf("\n%-28s %10s %10s\n", "", "warm", "cold");
  printf("%-28s %10.2f %10.2f\n", "wall time [s]", warm.seconds, cold_seconds);
  printf("%-28s %10llu %10llu\n", "5-input syntheses",
         static_cast<unsigned long long>(warm.oracle_synthesized),
         static_cast<unsigned long long>(cold_synthesized));
  printf("%-28s %9.1f%% %9.1f%%  (corpus-wide vs. mean of cold sessions)\n",
         "5-cut cache reuse", 100.0 * warm_rate, 100.0 * cold_mean_rate);
  printf("equivalence filter: %s\n", all_equivalent ? "warm == cold" : "MISMATCH");

  const bool reuse_improved = cold_lookups == 0 || warm_rate > cold_mean_rate;
  if (!reuse_improved) {
    fprintf(stderr, "corpus-wide reuse did not beat cold sessions\n");
  }

  if (!json_path.empty()) {
    std::vector<bench::BenchRecord> records;
    for (size_t i = 0; i < corpus.size(); ++i) {
      const auto& flow_report = warm.networks[i].flow;
      bench::BenchRecord record;
      record.name = corpus[i].name;
      record.baseline = {{"size", static_cast<double>(flow_report.size_before)},
                         {"depth", static_cast<double>(flow_report.depth_before)}};
      // Per-network 5-cut attribution is schedule-dependent in a batch (the
      // first network to ask pays the synthesis), so only deterministic
      // metrics are recorded per network; cache metrics are corpus-level.
      record.variants.emplace_back(
          "batch", std::vector<std::pair<std::string, double>>{
                       {"size", static_cast<double>(flow_report.size_after)},
                       {"depth", static_cast<double>(flow_report.depth_after)},
                       {"seconds", flow_report.seconds}});
      record.variants.emplace_back(
          "cold", std::vector<std::pair<std::string, double>>{
                      {"size", static_cast<double>(cold[i].size_after)},
                      {"depth", static_cast<double>(cold[i].depth_after)},
                      {"seconds", cold[i].seconds}});
      records.push_back(std::move(record));
    }
    bench::BenchRecord corpus_record;
    corpus_record.name = "corpus";
    corpus_record.baseline = {
        {"networks", static_cast<double>(corpus.size())},
        {"size", static_cast<double>(warm.size_before)}};
    corpus_record.variants.emplace_back(
        "warm", std::vector<std::pair<std::string, double>>{
                    {"size", static_cast<double>(warm.size_after)},
                    {"cache5_reuse_rate", warm_rate},
                    {"oracle_hit_rate", warm.oracle_hit_rate()},
                    {"seconds", warm.seconds}});
    corpus_record.variants.emplace_back(
        "cold", std::vector<std::pair<std::string, double>>{
                    {"mean_cache5_reuse_rate", cold_mean_rate},
                    {"seconds", cold_seconds}});
    records.push_back(std::move(corpus_record));
    if (bench::write_bench_json(json_path, "corpus_flow",
                                corpus_dir.empty() ? "generated" : "directory",
                                threads, records)) {
      printf("machine-readable results: %s\n", json_path.c_str());
    } else {
      fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return all_equivalent && reuse_improved ? 0 : 1;
}
