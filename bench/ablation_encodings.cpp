// Ablation C: exact-synthesis encodings.  The paper solves the synthesis
// constraints as SMT over bit-vectors with Z3; this library implements both a
// direct one-hot CNF encoding and the paper's bit-vector formulation
// bit-blasted onto the same CDCL core.  The bench compares them on all
// 3-variable NPN classes and a sample of 4-variable classes.

#include "bench_util.hpp"
#include "exact/exact_synthesis.hpp"
#include "npn/npn.hpp"

using namespace mighty;

namespace {

struct Totals {
  double seconds = 0;
  uint64_t conflicts = 0;
  uint32_t gates = 0;
};

Totals run(const std::vector<tt::TruthTable>& functions, exact::EncoderKind kind) {
  Totals totals;
  for (const auto& f : functions) {
    exact::SynthesisOptions options;
    options.encoder = kind;
    bench::Stopwatch sw;
    const auto r = exact::synthesize_minimum_mig(f, options);
    totals.seconds += sw.seconds();
    if (r.status != exact::SynthesisStatus::success) {
      printf("  synthesis failed for 0x%s!\n", f.to_hex().c_str());
      continue;
    }
    for (const auto c : r.conflicts_per_step) totals.conflicts += c;
    totals.gates += r.chain.size();
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::has_flag(argc, argv, "--full");
  printf("Ablation: one-hot CNF vs. bit-blasted SMT(BV) exact synthesis\n\n");

  const auto classes3 = npn::enumerate_classes(3);
  std::vector<tt::TruthTable> sample4;
  {
    const auto classes4 = npn::enumerate_classes(4);
    const size_t stride = full ? 1 : 16;
    for (size_t i = 0; i < classes4.size(); i += stride) sample4.push_back(classes4[i]);
  }

  for (const auto& [name, functions] :
       {std::pair<std::string, std::vector<tt::TruthTable>>{"all 14 3-var classes",
                                                            classes3},
        {full ? "all 222 4-var classes" : "14 sampled 4-var classes", sample4}}) {
    printf("%s:\n", name.c_str());
    printf("  %-18s %10s %12s %8s\n", "encoding", "time[s]", "conflicts", "gates");
    const auto onehot = run(functions, exact::EncoderKind::onehot);
    printf("  %-18s %10.2f %12lu %8u\n", "one-hot CNF", onehot.seconds,
           static_cast<unsigned long>(onehot.conflicts), onehot.gates);
    const auto smt = run(functions, exact::EncoderKind::smt);
    printf("  %-18s %10.2f %12lu %8u\n", "SMT(BV) blasted", smt.seconds,
           static_cast<unsigned long>(smt.conflicts), smt.gates);
    if (onehot.gates != smt.gates) {
      printf("  ENCODING DISAGREEMENT on total minimum gates!\n");
      return 1;
    }
    printf("  encodings agree on every minimum (total %u gates)\n\n", onehot.gates);
  }
  printf("expected shape: identical optima; the one-hot encoding propagates\n"
         "structure directly and is the faster of the two, which is why the\n"
         "database builder uses it by default.\n");
  return 0;
}
