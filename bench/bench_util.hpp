#pragma once

#include <chrono>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "util/atomic_file.hpp"

/// Shared helpers for the table-reproduction benchmark binaries.

namespace mighty::bench {

class Stopwatch {
public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point start_;
};

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Value of "--flag value"; `fallback` when absent.
inline std::string string_flag(int argc, char** argv, const std::string& flag,
                               const std::string& fallback = "") {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return fallback;
}

/// Integer value of "--flag n"; `fallback` when absent or malformed.
inline int int_flag(int argc, char** argv, const std::string& flag, int fallback) {
  const std::string value = string_flag(argc, argv, flag);
  if (value.empty()) return fallback;
  try {
    return std::stoi(value);
  } catch (...) {
    return fallback;
  }
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// --- machine-readable results (consumed by tools/check_bench.py) -------------

/// One benchmark row: named baseline metrics plus per-variant metric groups.
/// Metrics named "seconds" are treated as wall time by the regression gate
/// (warn-only); every other metric fails the gate when it regresses.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> baseline;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      variants;
};

inline void write_json_value(std::ostream& os, double value) {
  // snprintf keeps the exact historical formatting ("%lld" / "%.6f"), so the
  // artifact stays byte-identical to what the fprintf writer produced.
  char buffer[32];
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof buffer, "%.6f", value);
  }
  os << buffer;
}

/// Writes the BENCH_*.json artifact: stable schema, two-space indent, keys
/// in emission order so diffs against a checked-in baseline stay readable.
/// Atomic tmp+rename, so a crashed or interrupted bench run never leaves a
/// truncated artifact for check_bench.py to choke on.
inline bool write_bench_json(const std::string& path, const std::string& bench,
                             const std::string& mode, int threads,
                             const std::vector<BenchRecord>& records) {
  // The build stamps in the sanitizer (CMake's MIGHTY_SANITIZER_NAME, empty
  // for plain builds): check_bench.py downgrades wall-clock gates to
  // warnings for instrumented runs, whose timings mean nothing.
#if !defined(MIGHTY_SANITIZER_NAME)
#define MIGHTY_SANITIZER_NAME ""
#endif
  try {
    util::write_file_atomically(path, [&](std::ostream& os) {
      os << "{\n  \"bench\": \"" << bench << "\",\n  \"mode\": \"" << mode
         << "\",\n  \"threads\": " << threads << ",\n";
      os << "  \"sanitizer\": \"" << MIGHTY_SANITIZER_NAME << "\",\n";
      os << "  \"benchmarks\": [\n";
      for (size_t r = 0; r < records.size(); ++r) {
        const auto& rec = records[r];
        os << "    {\"name\": \"" << rec.name << "\",\n     \"baseline\": {";
        for (size_t i = 0; i < rec.baseline.size(); ++i) {
          os << (i ? ", " : "") << "\"" << rec.baseline[i].first << "\": ";
          write_json_value(os, rec.baseline[i].second);
        }
        os << "},\n     \"variants\": {";
        for (size_t v = 0; v < rec.variants.size(); ++v) {
          os << (v ? "," : "") << "\n       \"" << rec.variants[v].first << "\": {";
          const auto& metrics = rec.variants[v].second;
          for (size_t i = 0; i < metrics.size(); ++i) {
            os << (i ? ", " : "") << "\"" << metrics[i].first << "\": ";
            write_json_value(os, metrics[i].second);
          }
          os << "}";
        }
        os << "\n     }}" << (r + 1 < records.size() ? "," : "") << "\n";
      }
      os << "  ]\n}\n";
    });
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace mighty::bench
