#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

/// Shared helpers for the table-reproduction benchmark binaries.

namespace mighty::bench {

class Stopwatch {
public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point start_;
};

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace mighty::bench
