#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

/// Shared helpers for the table-reproduction benchmark binaries.

namespace mighty::bench {

class Stopwatch {
public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point start_;
};

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Value of "--flag value"; `fallback` when absent.
inline std::string string_flag(int argc, char** argv, const std::string& flag,
                               const std::string& fallback = "") {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return fallback;
}

/// Integer value of "--flag n"; `fallback` when absent or malformed.
inline int int_flag(int argc, char** argv, const std::string& flag, int fallback) {
  const std::string value = string_flag(argc, argv, flag);
  if (value.empty()) return fallback;
  try {
    return std::stoi(value);
  } catch (...) {
    return fallback;
  }
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// --- machine-readable results (consumed by tools/check_bench.py) -------------

/// One benchmark row: named baseline metrics plus per-variant metric groups.
/// Metrics named "seconds" are treated as wall time by the regression gate
/// (warn-only); every other metric fails the gate when it regresses.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> baseline;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      variants;
};

inline void write_json_value(std::FILE* os, double value) {
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::fprintf(os, "%lld", static_cast<long long>(value));
  } else {
    std::fprintf(os, "%.6f", value);
  }
}

/// Writes the BENCH_*.json artifact: stable schema, two-space indent, keys
/// in emission order so diffs against a checked-in baseline stay readable.
inline bool write_bench_json(const std::string& path, const std::string& bench,
                             const std::string& mode, int threads,
                             const std::vector<BenchRecord>& records) {
  std::FILE* os = std::fopen(path.c_str(), "w");
  if (os == nullptr) return false;
  std::fprintf(os, "{\n  \"bench\": \"%s\",\n  \"mode\": \"%s\",\n  \"threads\": %d,\n",
               bench.c_str(), mode.c_str(), threads);
  // The build stamps in the sanitizer (CMake's MIGHTY_SANITIZER_NAME, empty
  // for plain builds): check_bench.py downgrades wall-clock gates to
  // warnings for instrumented runs, whose timings mean nothing.
#if !defined(MIGHTY_SANITIZER_NAME)
#define MIGHTY_SANITIZER_NAME ""
#endif
  std::fprintf(os, "  \"sanitizer\": \"%s\",\n", MIGHTY_SANITIZER_NAME);
  std::fprintf(os, "  \"benchmarks\": [\n");
  for (size_t r = 0; r < records.size(); ++r) {
    const auto& rec = records[r];
    std::fprintf(os, "    {\"name\": \"%s\",\n     \"baseline\": {", rec.name.c_str());
    for (size_t i = 0; i < rec.baseline.size(); ++i) {
      std::fprintf(os, "%s\"%s\": ", i ? ", " : "", rec.baseline[i].first.c_str());
      write_json_value(os, rec.baseline[i].second);
    }
    std::fprintf(os, "},\n     \"variants\": {");
    for (size_t v = 0; v < rec.variants.size(); ++v) {
      std::fprintf(os, "%s\n       \"%s\": {", v ? "," : "",
                   rec.variants[v].first.c_str());
      const auto& metrics = rec.variants[v].second;
      for (size_t i = 0; i < metrics.size(); ++i) {
        std::fprintf(os, "%s\"%s\": ", i ? ", " : "", metrics[i].first.c_str());
        write_json_value(os, metrics[i].second);
      }
      std::fprintf(os, "}");
    }
    std::fprintf(os, "\n     }}%s\n", r + 1 < records.size() ? "," : "");
  }
  std::fprintf(os, "  ]\n}\n");
  return std::fclose(os) == 0;
}

}  // namespace mighty::bench
