// Reproduces Fig. 1 of the paper: the MIG of a full adder with size 3 and
// depth 2, where the sum shares the carry node:
//   cout = <a b cin>,  s = <!cout <a b !cin> cin>.

#include <sstream>

#include "bench_util.hpp"
#include "io/io.hpp"
#include "mig/mig.hpp"
#include "mig/simulation.hpp"

using namespace mighty;

int main() {
  printf("Fig. 1: MIG for a full adder\n\n");

  mig::Mig m;
  const auto a = m.create_pi();
  const auto b = m.create_pi();
  const auto cin = m.create_pi();
  const auto cout = m.create_maj(a, b, cin);
  const auto sum = m.create_xor3(a, b, cin);
  m.create_po(sum);
  m.create_po(cout);

  printf("size  = %u (paper: 3)\n", m.count_live_gates());
  printf("depth = %u (paper: 2)\n\n", m.depth());

  // Verify a + b + cin = 2*cout + s over all assignments.
  const auto tts = mig::output_truth_tables(m);
  bool ok = true;
  for (uint32_t assignment = 0; assignment < 8; ++assignment) {
    const int inputs = __builtin_popcount(assignment);
    const int outputs = (tts[1].get_bit(assignment) ? 2 : 0) +
                        (tts[0].get_bit(assignment) ? 1 : 0);
    if (inputs != outputs) ok = false;
  }
  printf("functional check (a+b+cin = 2*cout+s): %s\n\n", ok ? "pass" : "FAIL");

  printf("structure (DOT):\n");
  std::ostringstream dot;
  io::write_dot(dot, m);
  printf("%s\n", dot.str().c_str());

  const bool match = m.count_live_gates() == 3 && m.depth() == 2 && ok;
  printf("matches paper Fig. 1: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
